// A proactive network-size monitor — the paper's flagship use case.
//
// A long-running deployment estimates its own size every epoch with the
// COUNT protocol (§5): a handful of self-elected leaders (P_lead = C/N̂,
// using the previous epoch's estimate) start concurrent instances; at the
// epoch boundary every node combines the instance outputs with the §7.3
// trimmed mean. The network meanwhile churns and suffers a partial
// outage; the monitor's report follows the true size within an epoch.
//
// Run:  build/examples/network_monitoring
#include <cstdio>

#include "core/count.hpp"
#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace gossip;
  using experiment::CycleSimulation;
  using experiment::SimConfig;
  using experiment::TopologyConfig;

  Rng rng(7);
  std::uint32_t true_size = 8000;
  double n_hat = 10000.0;  // bootstrap guess, deliberately off by 25%
  core::LeaderElection election(/*desired_instances=*/16.0, n_hat);

  std::printf("proactive COUNT monitor — epochs of 30 cycles, trimmed\n"
              "multi-instance estimates, C=16 desired leaders\n\n");
  std::printf("epoch   event                true_N    reported_N    error%%\n");

  for (int epoch = 0; epoch < 8; ++epoch) {
    const char* event = "steady";
    std::unique_ptr<failure::FailurePlan> plan =
        std::make_unique<failure::NoFailures>();
    if (epoch == 3) {
      event = "outage: 25% crash";
      plan = std::make_unique<failure::SuddenDeath>(/*death_cycle=*/12, 0.25);
    } else if (epoch == 5) {
      event = "churn: 1%/cycle";
      plan = std::make_unique<failure::Churn>(true_size / 100);
    }

    // Leader election with the previous epoch's estimate (§5): expected
    // leader count is C, Poisson-distributed.
    std::uint32_t leaders = 0;
    for (std::uint32_t u = 0; u < true_size; ++u) {
      leaders += election.should_lead(rng) ? 1 : 0;
    }
    leaders = std::max(leaders, 1u);

    SimConfig cfg;
    cfg.nodes = true_size;
    cfg.cycles = 30;
    cfg.instances = leaders;
    cfg.topology = TopologyConfig::newscast(30);
    CycleSimulation sim(cfg, rng.split());
    sim.init_count_leaders();
    sim.run(*plan);

    const auto sizes = stats::summarize(sim.size_estimates());
    const double error =
        100.0 * (sizes.median - true_size) / static_cast<double>(true_size);
    std::printf("%5d   %-20s %6u   %11.1f   %+6.2f\n", epoch, event,
                true_size, sizes.median, error);

    n_hat = sizes.median;
    election.update_size_estimate(n_hat);

    // The world moves on between epochs.
    if (epoch == 3) true_size = true_size * 3 / 4;  // outage became real
    if (epoch == 6) true_size += 1500;              // a flash crowd joins
  }
  std::printf("\nthe reported size tracks the true size across an outage "
              "and a flash crowd,\nwith no coordinator and messages of a "
              "few dozen bytes per node per second.\n");
  return 0;
}
