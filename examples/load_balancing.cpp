// Load balancing driven by gossip aggregation — the application the
// paper's introduction cites ([6]): "knowing the average load ... can be
// exploited to implement near-optimal load-balancing schemes: a node can
// stop transferring load once it reaches the average."
//
// The loop: each round, every node learns the global average load via one
// epoch of push–pull AVERAGE (no coordinator, no global view), then
// overloaded nodes shed load toward underloaded peers, stopping at the
// learned average. A few rounds flatten a heavily skewed initial load.
//
// Run:  build/examples/load_balancing
#include <algorithm>
#include <cstdio>
#include <vector>

#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace gossip;
  using experiment::CycleSimulation;
  using experiment::SimConfig;
  using experiment::TopologyConfig;

  constexpr std::uint32_t kNodes = 2000;
  Rng rng(99);

  // Heavily skewed initial load: 5% hot nodes carry most of the work.
  std::vector<double> load(kNodes);
  for (auto& l : load) {
    l = rng.chance(0.05) ? rng.uniform(800.0, 1200.0) : rng.uniform(0.0, 20.0);
  }

  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.cycles = 30;  // one aggregation epoch per balancing round
  cfg.topology = TopologyConfig::newscast(30);

  std::printf("gossip-driven load balancing — %u nodes\n\n", kNodes);
  std::printf("round    max_load    mean_load    p99_load    imbalance\n");

  for (int round = 0; round < 6; ++round) {
    const auto loads = stats::summarize(load);
    const double p99 = stats::percentile(load, 0.99);
    std::printf("%5d  %10.1f   %10.3f  %10.1f   %10.3f\n", round, loads.max,
                loads.mean, p99, loads.max / loads.mean);

    // 1. every node learns the average load by gossip (decentralized).
    CycleSimulation sim(cfg, rng.split());
    sim.init_scalar([&load](NodeId id) { return load[id.value()]; });
    sim.run(failure::NoFailures{});

    // 2. local decision only: a node above its *learned* average sheds
    //    the excess to a random peer below it (modelled directly; the
    //    transfer channel is the application's business).
    std::vector<std::uint32_t> under;
    for (std::uint32_t u = 0; u < kNodes; ++u) {
      if (load[u] < sim.estimate(NodeId(u), 0)) under.push_back(u);
    }
    if (under.empty()) break;
    for (std::uint32_t u = 0; u < kNodes; ++u) {
      const double target = sim.estimate(NodeId(u), 0);
      if (load[u] <= target) continue;
      // Shed in chunks, stopping at the learned average (paper [6]).
      double excess = load[u] - target;
      while (excess > 1e-9) {
        const auto v = under[rng.below(under.size())];
        const double headroom =
            std::max(0.0, target - load[v]);
        const double moved = std::min(excess, std::max(headroom, 1.0));
        load[u] -= moved;
        load[v] += moved;
        excess -= moved;
      }
    }
  }
  const auto final_loads = stats::summarize(load);
  std::printf("\nfinal: max/mean imbalance = %.3f (1.0 is perfect)\n",
              final_loads.max / final_loads.mean);
  return 0;
}
