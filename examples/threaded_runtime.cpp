// The protocol on real threads — no simulator anywhere.
//
// 24 nodes, each running the paper's fig. 1 verbatim: an active thread
// (sleep δ, push to a random neighbor, pull the reply with a timeout) and
// a passive thread (serve pushes). Messages cross real thread boundaries
// through mailboxes; 5% are dropped to show the timeout path.
//
// Run:  build/examples/threaded_runtime
#include <chrono>
#include <cstdio>

#include "runtime/threaded.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace gossip;
  using namespace std::chrono_literals;

  runtime::ThreadedConfig cfg;
  cfg.cycle = 20ms;     // δ
  cfg.timeout = 100ms;  // exchange timeout
  cfg.p_loss = 0.05;

  constexpr std::uint32_t kNodes = 24;
  runtime::Cluster cluster(kNodes, 5, cfg, /*seed=*/31);
  // Peak distribution: one node holds kNodes, true average = 1.
  cluster.set_value(NodeId(0), static_cast<double>(kNodes));

  std::printf("threaded runtime — %u nodes x 2 threads, delta=20ms, "
              "5%% message loss\n\n", kNodes);
  std::printf("t(ms)      mean       min       max   variance\n");

  cluster.start();
  double initial_variance = 0.0, final_variance = 0.0;
  for (int tick = 0; tick <= 8; ++tick) {
    const auto s = stats::summarize(cluster.estimates());
    if (tick == 0) initial_variance = s.variance;
    final_variance = s.variance;
    std::printf("%5d  %8.4f  %8.4f  %8.4f  %9.2e\n", tick * 250, s.mean,
                s.min, s.max, s.variance);
    if (tick < 8) runtime::Cluster::run_for(250ms);
  }
  cluster.stop();

  std::uint64_t completed = 0, timeouts = 0, refusals = 0;
  for (std::uint32_t u = 0; u < kNodes; ++u) {
    const auto& node = cluster.node(NodeId(u));
    completed += node.exchanges_completed();
    timeouts += node.timeouts();
    refusals += node.refusals();
  }
  std::printf("\nexchanges completed=%llu  timeouts(lost msgs)=%llu  "
              "busy-refusals=%llu\n",
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(timeouts),
              static_cast<unsigned long long>(refusals));
  std::printf("clean shutdown: all %u nodes joined both threads.\n", kNodes);

  // Smoke assertions (ctest: threaded_runtime_smoke). ~100 δ-cycles must
  // collapse the peak's variance by orders of magnitude even with 5%
  // loss, and every node must have completed real exchanges.
  if (completed == 0) {
    std::printf("SMOKE FAIL: no exchanges completed\n");
    return 1;
  }
  if (!(final_variance < initial_variance / 100.0)) {
    std::printf("SMOKE FAIL: variance %.3e did not converge from %.3e\n",
                final_variance, initial_variance);
    return 1;
  }
  std::printf("threaded runtime smoke OK\n");
  return 0;
}
