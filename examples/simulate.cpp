// gossip `simulate` — command-line driver for the cycle simulator.
//
// Reproduce any paper scenario (or your own) without writing code:
//
//   simulate --nodes 10000 --topology newscast --aggregate count
//            --instances 20 --msg-loss 0.2
//   simulate --topology ws --beta 0.25 --cycles 50
//   simulate --aggregate avg --crash-rate 0.1
//
// Prints per-cycle estimate statistics and a final summary.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/update.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/table.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"

namespace {

using namespace gossip;
using namespace gossip::experiment;

struct Options {
  std::uint32_t nodes = 10000;
  std::uint32_t cycles = 30;
  std::string topology = "newscast";
  std::uint32_t degree = 20;
  double beta = 0.25;
  std::size_t cache = 30;
  std::string aggregate = "avg";
  std::uint32_t instances = 1;
  double link_failure = 0.0;
  double msg_loss = 0.0;
  double crash_rate = 0.0;
  std::uint32_t churn = 0;
  std::uint64_t seed = 1;
};

void usage() {
  std::puts(
      "usage: simulate [options]\n"
      "  --nodes N          network size              (default 10000)\n"
      "  --cycles C         epoch length              (default 30)\n"
      "  --topology T       complete|random|ring|ws|ba|newscast\n"
      "  --degree K         static-topology degree    (default 20)\n"
      "  --beta B           Watts-Strogatz rewiring   (default 0.25)\n"
      "  --cache C          newscast cache size       (default 30)\n"
      "  --aggregate A      avg|min|max|geo|count     (default avg)\n"
      "  --instances T      concurrent COUNT leaders  (default 1)\n"
      "  --link-failure P   per-exchange link failure (fig 7a)\n"
      "  --msg-loss P       per-message loss          (fig 7b)\n"
      "  --crash-rate Pf    per-cycle crash fraction  (fig 5)\n"
      "  --churn R          crash+join R nodes/cycle  (fig 6b)\n"
      "  --seed S           RNG seed");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    const std::string value = argv[++i];
    try {
      if (flag == "--nodes") opt.nodes = static_cast<std::uint32_t>(std::stoul(value));
      else if (flag == "--cycles") opt.cycles = static_cast<std::uint32_t>(std::stoul(value));
      else if (flag == "--topology") opt.topology = value;
      else if (flag == "--degree") opt.degree = static_cast<std::uint32_t>(std::stoul(value));
      else if (flag == "--beta") opt.beta = std::stod(value);
      else if (flag == "--cache") opt.cache = std::stoul(value);
      else if (flag == "--aggregate") opt.aggregate = value;
      else if (flag == "--instances") opt.instances = static_cast<std::uint32_t>(std::stoul(value));
      else if (flag == "--link-failure") opt.link_failure = std::stod(value);
      else if (flag == "--msg-loss") opt.msg_loss = std::stod(value);
      else if (flag == "--crash-rate") opt.crash_rate = std::stod(value);
      else if (flag == "--churn") opt.churn = static_cast<std::uint32_t>(std::stoul(value));
      else if (flag == "--seed") opt.seed = std::stoull(value);
      else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return false;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value '%s' for %s\n", value.c_str(),
                   flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 1;
  }

  SimConfig cfg;
  cfg.nodes = opt.nodes;
  cfg.cycles = opt.cycles;
  cfg.instances = opt.aggregate == "count" ? opt.instances : 1;
  cfg.comm = failure::CommFailureModel(opt.link_failure, opt.msg_loss);
  if (opt.topology == "complete") cfg.topology = TopologyConfig::complete();
  else if (opt.topology == "random") cfg.topology = TopologyConfig::random_k_out(opt.degree);
  else if (opt.topology == "ring") cfg.topology = TopologyConfig::ring_lattice(opt.degree);
  else if (opt.topology == "ws") cfg.topology = TopologyConfig::watts_strogatz(opt.degree, opt.beta);
  else if (opt.topology == "ba") cfg.topology = TopologyConfig::barabasi_albert(opt.degree);
  else if (opt.topology == "newscast") cfg.topology = TopologyConfig::newscast(opt.cache);
  else {
    std::fprintf(stderr, "unknown topology %s\n", opt.topology.c_str());
    return 1;
  }
  if (opt.aggregate == "avg") cfg.update = core::UpdateKind::kAverage;
  else if (opt.aggregate == "min") cfg.update = core::UpdateKind::kMin;
  else if (opt.aggregate == "max") cfg.update = core::UpdateKind::kMax;
  else if (opt.aggregate == "geo") cfg.update = core::UpdateKind::kGeometric;
  else if (opt.aggregate != "count") {
    std::fprintf(stderr, "unknown aggregate %s\n", opt.aggregate.c_str());
    return 1;
  }

  std::unique_ptr<failure::FailurePlan> plan;
  if (opt.crash_rate > 0.0) {
    plan = std::make_unique<failure::ProportionalCrash>(opt.crash_rate);
  } else if (opt.churn > 0) {
    plan = std::make_unique<failure::Churn>(opt.churn);
  } else {
    plan = std::make_unique<failure::NoFailures>();
  }

  try {
    CycleSimulation sim(cfg, Rng(opt.seed));
    if (opt.aggregate == "count") {
      sim.init_count_leaders();
    } else {
      // Peak distribution (true average 1) — the paper's workload; other
      // initializations are available through the library API.
      sim.init_peak(static_cast<double>(opt.nodes));
    }
    sim.run(*plan);

    std::printf("cycle        mean         var         min         max\n");
    const auto& per_cycle = sim.cycle_stats();
    for (std::size_t c = 0; c < per_cycle.size(); ++c) {
      const auto& rs = per_cycle[c];
      std::printf("%5zu  %10.4g  %10.4g  %10.4g  %10.4g\n", c, rs.mean(),
                  rs.variance(), rs.min(), rs.max());
    }
    std::printf("\nconvergence factor (full run): %.4f\n",
                sim.tracker().mean_factor(cfg.cycles));
    if (opt.aggregate == "count") {
      const auto sizes = stats::summarize(sim.size_estimates());
      std::printf("size estimate: mean=%.1f median=%.1f min=%.1f max=%.1f "
                  "(true initial %u)\n",
                  sizes.mean, sizes.median, sizes.min, sizes.max, opt.nodes);
    }
  } catch (const require_error& e) {
    std::fprintf(stderr, "configuration rejected: %s\n", e.what());
    return 1;
  }
  return 0;
}
