// Quickstart: the library in five minutes.
//
//   1. build an overlay (NEWSCAST, the paper's deployable choice),
//   2. run the push–pull AVERAGE protocol for one 30-cycle epoch,
//   3. watch the variance collapse at the theoretical rate 1/(2√e),
//   4. derive COUNT / SUM / VARIANCE from averaging runs (§5).
//
// Run:  build/examples/quickstart
#include <cstdio>

#include "core/count.hpp"
#include "core/derived.hpp"
#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"
#include "theory/predictions.hpp"

int main() {
  using namespace gossip;
  using experiment::CycleSimulation;
  using experiment::SimConfig;
  using experiment::TopologyConfig;

  constexpr std::uint32_t kNodes = 5000;
  std::printf("gossip quickstart — %u nodes, newscast overlay (c=30)\n\n",
              kNodes);

  // --- 1+2: AVERAGE over a peak distribution (true average = 1). -------
  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.cycles = 30;
  cfg.topology = TopologyConfig::newscast(30);
  CycleSimulation avg_sim(cfg, Rng(2024));
  avg_sim.init_peak(static_cast<double>(kNodes));
  avg_sim.run(failure::NoFailures{});

  // --- 3: variance collapse vs theory. ---------------------------------
  const auto tracker = avg_sim.tracker();
  std::printf("cycle   sigma^2/sigma0^2      theory rho^i\n");
  const double rho = theory::push_pull_factor();
  const auto norm = tracker.normalized(1e-30);
  for (std::size_t i = 0; i <= 30; i += 5) {
    double predicted = 1.0;
    for (std::size_t k = 0; k < i; ++k) predicted *= rho;
    std::printf("%5zu   %16.3e   %15.3e\n", i, norm[i], predicted);
  }
  std::printf("\nmeasured convergence factor: %.4f (theory 1/(2*sqrt(e)) = "
              "%.4f)\n",
              tracker.mean_factor(20), rho);
  const auto estimates = stats::summarize(avg_sim.scalar_estimates());
  std::printf("estimates after one epoch: mean=%.6f  min=%.6f  max=%.6f\n\n",
              estimates.mean, estimates.min, estimates.max);

  // --- 4: derived aggregates (§5). --------------------------------------
  // COUNT: peak value 1 at a leader => average = 1/N.
  SimConfig count_cfg = cfg;
  CycleSimulation count_sim(count_cfg, Rng(2025));
  count_sim.init_count_leaders();
  count_sim.run(failure::NoFailures{});
  const double n_hat = stats::summarize(count_sim.size_estimates()).mean;

  // AVERAGE of a synthetic load (uniform 0..10) and of its squares.
  const auto run_average_of = [&](auto value_of) {
    CycleSimulation sim(cfg, Rng(2026));
    sim.init_scalar(value_of);
    sim.run(failure::NoFailures{});
    return stats::summarize(sim.scalar_estimates()).mean;
  };
  Rng values_rng(7);
  std::vector<double> load(kNodes);
  for (auto& v : load) v = values_rng.uniform(0.0, 10.0);
  const double avg = run_average_of(
      [&load](NodeId id) { return load[id.value()]; });
  const double avg_sq = run_average_of(
      [&load](NodeId id) { return load[id.value()] * load[id.value()]; });

  std::printf("COUNT    : N_hat = %.1f (true %u)\n", n_hat, kNodes);
  std::printf("SUM      : %.1f (true %.1f)\n",
              core::sum_estimate(avg, n_hat),
              [&] { double s = 0; for (double v : load) s += v; return s; }());
  std::printf("VARIANCE : %.3f (uniform(0,10) true %.3f)\n",
              core::variance_estimate(avg_sq, avg), 100.0 / 12.0);
  std::printf("\nNext: examples/load_balancing, examples/network_monitoring,"
              " examples/threaded_runtime\n");
  return 0;
}
