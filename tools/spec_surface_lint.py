#!/usr/bin/env python3
"""spec-surface-lint: cross-surface consistency analyzer for the
ScenarioSpec field-descriptor table.

src/experiment/spec_fields.hpp is the single source of truth for the
declarative spec vocabulary: parse, canonical serialization, the --set
override table and the typo-suggestion candidates all expand from its
X-macro rows. The compiler therefore guarantees those four surfaces —
but it cannot see the two human-maintained ones. This analyzer closes
the loop: for every descriptor row it fails CI unless

  missing-error-test    the field's dotted JSON path appears in
                        tests/spec_test.cpp (the golden wrong-type
                        SpecError table asserts it covers the whole
                        introspection table, so presence here means a
                        pinned error message, not a stray mention)
  missing-doc           the JSON path is documented in EXPERIMENTS.md
                        (the field reference table)
  missing-set-roundtrip the --set key of every SET row appears in
                        tests/spec_test.cpp (the round-trip table is
                        sequence-checked against spec_set_keys())

The checks are textual by design — dependency-free (python3 stdlib
only), no compiler needed — and the C++ tests they anchor to are
exactness-checked against spec_field_table() at runtime, so a mention
cannot silently rot into non-coverage.

Suppressions name the rule AND the field, from the comment channel of
spec_fields.hpp (descriptor rows live inside #define blocks where
trailing comments are impossible, so adjacency is not usable):

  // spec-surface-lint: allow(rule-name, json.path): why this is safe

A suppression must name a real rule, carry a justification (>= 10
characters), and actually suppress something — a stale allow is itself
reported (unused-suppression).

Usage:
  tools/spec_surface_lint.py                 # audit the real tree
  tools/spec_surface_lint.py --self-test     # run the fixture suite
  tools/spec_surface_lint.py --list-rules    # print the rule table
  tools/spec_surface_lint.py --format=github # ::error annotations

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEC_FIELDS = REPO_ROOT / "src" / "experiment" / "spec_fields.hpp"
SPEC_TEST = REPO_ROOT / "tests" / "spec_test.cpp"
DOCS = REPO_ROOT / "EXPERIMENTS.md"
FIXTURE_DIR = REPO_ROOT / "tests" / "lint" / "spec_surface"
EXPECTED_FILE = FIXTURE_DIR / "expected.txt"
EXPECTED_GITHUB_FILE = FIXTURE_DIR / "expected_github.txt"
MIN_JUSTIFICATION = 10

RULES = {
    "missing-error-test": {
        "summary": "descriptor field without a golden SpecError test",
        "hint": "add a wrong-type case for this JSON path to the "
                "FieldErrorCase table in tests/spec_test.cpp "
                "(SpecSurface.EveryDescriptorFieldHasAGoldenWrongTypeError "
                "asserts the table covers every descriptor row)",
    },
    "missing-doc": {
        "summary": "descriptor field absent from EXPERIMENTS.md",
        "hint": "document the field's JSON path in the EXPERIMENTS.md "
                "field reference so the declarative vocabulary stays "
                "discoverable without reading spec_fields.hpp",
    },
    "missing-set-roundtrip": {
        "summary": "--set key without a round-trip test",
        "hint": "add the key to the SetKeyCase table in tests/spec_test.cpp "
                "(SpecSurface.EveryGeneratedSetKeyRoundTrips applies every "
                "key to a default spec and requires an observable change)",
    },
}
META_RULES = ("bad-suppression", "unused-suppression")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str,
                 hint: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.hint = hint

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    hint: {self.hint}")

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation (same contract as
        gossip_lint.py): one line, with %, CR, LF percent-escaped."""
        msg = f"[{self.rule}] {self.message} (hint: {self.hint})"
        msg = (msg.replace("%", "%25").replace("\r", "%0D")
                  .replace("\n", "%0A"))
        return f"::error file={self.path},line={self.line}::{msg}"


# ------------------------------------------------------- table extraction


class FieldRow:
    def __init__(self, group: str, prefix: str, line: int, args: list[str]):
        self.group = group
        self.line = line
        (self.member, json_key, self.tag, self.extra, self.default,
         self.emit, self.set_tok, set_key, self.sweep) = args
        self.json_path = prefix + json_key.strip('"')
        self.set_key = set_key.strip('"')


GROUP_ROW = re.compile(r"^\s*G\((\w+),\s*\"([^\"]*)\",\s*\"([^\"]*)\"\)",
                       re.MULTILINE)


def macro_block(text: str, macro: str) -> tuple[int, str]:
    """Returns (1-based start line, body) of `#define macro(X)` including
    all backslash-continued lines."""
    pat = re.compile(rf"^#define\s+{re.escape(macro)}\(X\)", re.MULTILINE)
    m = pat.search(text)
    if not m:
        raise ValueError(f"spec-surface-lint: {macro} not found")
    start_line = text.count("\n", 0, m.start()) + 1
    lines = text[m.start():].splitlines()
    body = []
    for ln in lines:
        body.append(ln)
        if not ln.rstrip().endswith("\\"):
            break
    return start_line, "\n".join(body)


def split_row_args(row: str) -> list[str]:
    """Splits one X(...) argument list at top-level commas."""
    args, depth, cur = [], 0, ""
    for ch in row:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            args.append(cur.strip())
            cur = ""
        else:
            cur += ch
    args.append(cur.strip())
    return [re.sub(r"\s*\\\s*", " ", a).strip() for a in args]


def extract_rows(text: str) -> list[FieldRow]:
    """All descriptor rows of every group listed in
    GOSSIP_SPEC_ALL_GROUPS, with their spec_fields.hpp line numbers."""
    groups = GROUP_ROW.findall(text)
    if not groups:
        raise ValueError(
            "spec-surface-lint: no GOSSIP_SPEC_ALL_GROUPS entries found")
    rows: list[FieldRow] = []
    for macro, label, prefix in groups:
        start_line, body = macro_block(text, macro)
        for m in re.finditer(r"(?<![\w])X\(", body):
            depth, i = 0, m.end() - 1
            while i < len(body):
                if body[i] == "(":
                    depth += 1
                elif body[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            row_text = body[m.end():i]
            line = start_line + body.count("\n", 0, m.start())
            args = split_row_args(row_text)
            if len(args) != 9:
                raise ValueError(
                    f"spec-surface-lint: row at line {line} has "
                    f"{len(args)} args, expected 9: {row_text!r}")
            rows.append(FieldRow(label, prefix, line, args))
    return rows


# ----------------------------------------------------------------- checks

ALLOW = re.compile(
    r"spec-surface-lint:\s*allow\(([\w-]+),\s*([\w.]+)\)\s*[:—–-]*\s*(.*)")


def word_present(needle: str, haystack: str) -> bool:
    """True when `needle` occurs as a standalone dotted identifier —
    not as a prefix/suffix/segment of a longer one."""
    return re.search(rf"(?<![\w.]){re.escape(needle)}(?![\w.])",
                     haystack) is not None


def audit(fields_path: str, fields_text: str, test_text: str,
          docs_text: str) -> list[Finding]:
    findings: list[Finding] = []
    rows = extract_rows(fields_text)

    # Suppressions: collected from the full header text (comments in
    # spec_fields.hpp necessarily live outside the #define blocks).
    allows: list[dict] = []
    for lineno, line in enumerate(fields_text.splitlines(), start=1):
        m = ALLOW.search(line)
        if not m:
            continue
        rule_name, path, why = m.group(1), m.group(2), m.group(3).strip()
        if rule_name not in RULES:
            findings.append(Finding(
                fields_path, lineno, "bad-suppression",
                f"allow({rule_name}, {path}) names no such rule",
                "valid rules: " + ", ".join(sorted(RULES))))
            continue
        if len(why) < MIN_JUSTIFICATION:
            findings.append(Finding(
                fields_path, lineno, "bad-suppression",
                f"allow({rule_name}, {path}) has no justification",
                "a suppression must say WHY the missing surface is "
                "acceptable: // spec-surface-lint: allow(rule, path): "
                "reason"))
            continue
        allows.append({"rule": rule_name, "path": path, "line": lineno,
                       "used": False})

    def emit(row: FieldRow, rule_name: str, message: str) -> None:
        for a in allows:
            if a["rule"] == rule_name and a["path"] == row.json_path:
                a["used"] = True
                return
        findings.append(Finding(fields_path, row.line, rule_name,
                                message, RULES[rule_name]["hint"]))

    for row in rows:
        if not word_present(row.json_path, test_text):
            emit(row, "missing-error-test",
                 f"{RULES['missing-error-test']['summary']}: "
                 f"`{row.json_path}` never appears in tests/spec_test.cpp")
        if not (word_present(row.json_path, docs_text)
                or (row.set_key and word_present(row.set_key, docs_text))):
            emit(row, "missing-doc",
                 f"{RULES['missing-doc']['summary']}: `{row.json_path}` "
                 f"is not mentioned in EXPERIMENTS.md")
        if row.set_tok == "SET" and not word_present(row.set_key, test_text):
            emit(row, "missing-set-roundtrip",
                 f"{RULES['missing-set-roundtrip']['summary']}: --set "
                 f"`{row.set_key}` never appears in tests/spec_test.cpp")

    for a in allows:
        if not a["used"]:
            findings.append(Finding(
                fields_path, a["line"], "unused-suppression",
                f"allow({a['rule']}, {a['path']}) suppresses nothing",
                "remove the stale suppression (or fix its path) so "
                "allows stay auditable"))

    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


# ------------------------------------------------------------------- scan


def run_scan(fmt: str) -> int:
    findings = audit(
        SPEC_FIELDS.relative_to(REPO_ROOT).as_posix(),
        SPEC_FIELDS.read_text(encoding="utf-8"),
        SPEC_TEST.read_text(encoding="utf-8"),
        DOCS.read_text(encoding="utf-8"))
    for fd in findings:
        print(fd.render_github() if fmt == "github" else fd.render())
    rows = len(extract_rows(SPEC_FIELDS.read_text(encoding="utf-8")))
    if findings:
        print(f"spec-surface-lint: {len(findings)} finding(s) across "
              f"{rows} descriptor rows")
        return 1
    print(f"spec-surface-lint: clean ({rows} descriptor rows, "
          f"{len(RULES)} rules)")
    return 0


# --------------------------------------------------------------- self-test


def run_self_test() -> int:
    findings: list[Finding] = []
    for tree in ("bad", "good"):
        base = FIXTURE_DIR / tree
        if not base.is_dir():
            print(f"spec-surface-lint self-test: missing fixture tree "
                  f"{base}", file=sys.stderr)
            return 2
        findings.extend(audit(
            f"spec_surface/{tree}/spec_fields.hpp",
            (base / "spec_fields.hpp").read_text(encoding="utf-8"),
            (base / "spec_test.cpp").read_text(encoding="utf-8"),
            (base / "EXPERIMENTS.md").read_text(encoding="utf-8")))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))

    ok = True
    import difflib
    for golden, render in ((EXPECTED_FILE, Finding.render),
                           (EXPECTED_GITHUB_FILE, Finding.render_github)):
        got = "\n".join(render(fd) for fd in findings) + "\n"
        expected = golden.read_text(encoding="utf-8")
        if got.strip() != expected.strip():
            ok = False
            print(f"spec-surface-lint self-test: OUTPUT DIFFERS FROM "
                  f"{golden.name}")
            for line in difflib.unified_diff(
                    expected.splitlines(), got.splitlines(),
                    fromfile=golden.name, tofile="observed", lineterm=""):
                print(line)

    fired = {fd.rule for fd in findings}
    missing = (set(RULES) | set(META_RULES)) - fired
    if missing:
        ok = False
        print("spec-surface-lint self-test: rules with no fixture "
              "coverage: " + ", ".join(sorted(missing)))

    noisy = [fd for fd in findings if fd.path.startswith("spec_surface/good")]
    if noisy:
        ok = False
        print(f"spec-surface-lint self-test: the good/ tree must be clean "
              f"but got {len(noisy)} finding(s)")

    if ok:
        print(f"spec-surface-lint self-test OK: {len(findings)} golden "
              f"findings, all rules detected, good tree silent")
        return 0
    return 1


def print_rules() -> None:
    width = max(len(n) for n in RULES)
    for name in sorted(RULES):
        print(f"{name:<{width}}  {RULES[name]['summary']}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite against the golden output")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--format", choices=("text", "github"), default="text",
                    help="finding output format (github = ::error "
                         "annotations for GitHub Actions)")
    args = ap.parse_args()

    if args.list_rules:
        print_rules()
        return 0
    if args.self_test:
        return run_self_test()
    return run_scan(args.format)


if __name__ == "__main__":
    sys.exit(main())
