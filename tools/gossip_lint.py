#!/usr/bin/env python3
"""gossip-lint: project-specific determinism/safety static analyzer.

Every result in this repository rests on bit-identical determinism
across engines, shards, threads and processes. The invariants that
guarantee it are cheap to state and expensive to rediscover from a
corrupted golden, so this analyzer machine-checks them on every commit:

  banned-rng            no nondeterministic randomness sources
  banned-clock          no wall-clock reads (steady_clock-only timing)
  unordered-iteration   no iteration over unordered containers that
                        could feed a recorded statistic or an RNG draw
  raw-accumulate        float reductions go through stats::merge_tree
  raw-assert            decode/protocol paths use GOSSIP_REQUIRE
  unchecked-wire-read   every raw read in wire decode is bounds-guarded
  raw-stream-salt       RNG salts/multipliers come from the registry
                        (src/common/stream_salt.hpp), never raw hex
  atomic-memory-order   every atomic load/store/fetch_*/compare_exchange
                        spells its memory_order explicitly
  thread-detach         no detached threads (join or std::jthread)
  bare-mutex-lock       no manual mutex .lock()/.unlock() — RAII guards
                        (lock_guard/scoped_lock/unique_lock) only
  volatile-sync         volatile is not a synchronization primitive

Dependency-free (python3 stdlib only). A lightweight tokenizer strips
comments and string literals first, so prose mentioning rand() never
trips a rule, and suppressions are read from the *comment* channel:

  // gossip-lint: allow(rule-name): why this occurrence is safe

A suppression covers its own line and the next line that contains code
(intervening comment-only lines — e.g. the rest of the justification —
are skipped), must name a real rule, and must carry a justification
(>= 10 characters); a suppression that fires nothing is itself reported
(unused-suppression), so stale allows cannot accumulate.

Usage:
  tools/gossip_lint.py                   # lint src/ bench/ tests/ examples/
  tools/gossip_lint.py src/proto         # lint specific paths
  tools/gossip_lint.py --self-test       # run the fixture suite
  tools/gossip_lint.py --list-rules      # print the rule table
  tools/gossip_lint.py --format=github   # findings as ::error annotations

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SCAN = ["src", "bench", "tests", "examples"]
FIXTURE_DIR = REPO_ROOT / "tests" / "lint" / "fixtures"
EXPECTED_FILE = REPO_ROOT / "tests" / "lint" / "expected.txt"
EXPECTED_GITHUB_FILE = REPO_ROOT / "tests" / "lint" / "expected_github.txt"
CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h", ".cxx"}
MIN_JUSTIFICATION = 10

# --------------------------------------------------------------- tokenizer


def split_code_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines): the source with comments and
    string/char literals blanked out, and the comment text per line.
    Handles //, /* */, "...", '...', raw strings and digit separators."""
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    code_lines = [""]
    comment_lines = [""]

    def emit(ch: str, channel: str) -> None:
        nonlocal code_lines, comment_lines
        if ch == "\n":
            code_lines.append("")
            comment_lines.append("")
        elif channel == "code":
            code_lines[-1] += ch
        else:
            comment_lines[-1] += ch

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                # raw string literal R"delim( ... )delim"
                m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i - 1 : i + 18])
                if i > 0 and text[i - 1] == "R" and m:
                    raw_delim = ")" + m.group(1) + '"'
                    end = text.find(raw_delim, i)
                    if end == -1:
                        end = n
                    for j in range(i, min(end + len(raw_delim), n)):
                        if text[j] == "\n":
                            emit("\n", "code")
                    i = end + len(raw_delim)
                    continue
                state = "string"
                i += 1
                continue
            if ch == "'":
                prev = text[i - 1] if i > 0 else ""
                if prev.isalnum() and nxt.isalnum():
                    i += 1  # digit separator: 500'000
                    continue
                state = "char"
                i += 1
                continue
            emit(ch, "code")
            i += 1
        elif state == "line_comment":
            if ch == "\n":
                emit("\n", "code")
                state = "code"
            else:
                emit(ch, "comment")
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                emit(ch, "comment" if ch != "\n" else "code")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                state = "code"
            elif ch == "\n":  # unterminated; resync
                emit("\n", "code")
                state = "code"
            i += 1

    return code_lines, comment_lines


# ------------------------------------------------------------------- rules


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str,
                 hint: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.hint = hint

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    hint: {self.hint}")

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation: shows the finding
        inline on the PR diff. Data after :: must be one line, with the
        characters %, CR and LF percent-escaped (in that order)."""
        msg = f"[{self.rule}] {self.message} (hint: {self.hint})"
        msg = (msg.replace("%", "%25").replace("\r", "%0D")
                  .replace("\n", "%0A"))
        return f"::error file={self.path},line={self.line}::{msg}"


class FileCtx:
    """One analyzed file: scoping path + comment-stripped code lines."""

    def __init__(self, report_path: str, scope_path: str,
                 code: list[str], comments: list[str]):
        self.report_path = report_path
        self.scope_path = scope_path.replace("\\", "/")
        self.code = code
        self.comments = comments

    def in_dir(self, *prefixes: str) -> bool:
        return any(self.scope_path.startswith(p) for p in prefixes)


RULES: dict[str, dict] = {}


def rule(name: str, summary: str, hint: str):
    def wrap(fn):
        RULES[name] = {"fn": fn, "summary": summary, "hint": hint}
        return fn

    return wrap


def _matches(ctx: FileCtx, pattern: re.Pattern) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(ctx.code, start=1):
        m = pattern.search(line)
        if m:
            out.append((lineno, m.group(0).strip()))
    return out


BANNED_RNG = re.compile(
    r"std::random_device|(?<![\w.:])s?rand\s*\(|(?<![\w.:])random\s*\(|"
    r"[dlm]rand48|random_shuffle")


@rule("banned-rng",
      "nondeterministic or unseeded randomness source",
      "draw from a gossip::Rng seeded via the stream-salt registry "
      "(src/common/stream_salt.hpp); results must replay bit-identically "
      "from the ScenarioSpec seed")
def check_banned_rng(ctx: FileCtx) -> list[tuple[int, str]]:
    return _matches(ctx, BANNED_RNG)


BANNED_CLOCK = re.compile(
    r"std::chrono::system_clock|high_resolution_clock|gettimeofday|"
    r"(?<![\w.])time\s*\(|(?<![\w.])clock\s*\(|(?<![\w.])localtime|"
    r"(?<![\w.])gmtime|(?<![\w.])ctime\s*\(")


@rule("banned-clock",
      "wall-clock read (nondeterministic across runs/hosts)",
      "wall time must never influence a result; for timing-report "
      "durations use std::chrono::steady_clock, which is allowed")
def check_banned_clock(ctx: FileCtx) -> list[tuple[int, str]]:
    return _matches(ctx, BANNED_CLOCK)


UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*(\w+)\s*"
    r"[;={(,)]")


@rule("unordered-iteration",
      "iteration over an unordered container (implementation-defined "
      "order can feed a recorded statistic or an RNG draw)",
      "iterate in id order (sort a copy / use an ordered index) before "
      "anything recorded or random consumes the sequence, or suppress "
      "with a justification that the loop is order-independent")
def check_unordered_iteration(ctx: FileCtx) -> list[tuple[int, str]]:
    names = set()
    for line in ctx.code:
        for m in UNORDERED_DECL.finditer(line):
            names.add(m.group(1))
    if not names:
        return []
    alt = "|".join(sorted(re.escape(n) for n in names))
    iter_pat = re.compile(
        rf"for\s*\([^;)]*:\s*(?:this->)?({alt})\s*\)|"
        rf"\b({alt})\s*\.\s*c?begin\s*\(")
    return _matches(ctx, iter_pat)


RAW_ACCUMULATE = re.compile(r"std::(?:accumulate|reduce)\s*\(")


@rule("raw-accumulate",
      "raw float reduction (shape follows the call site, not the data)",
      "per-node double reductions must be fixed-shape so results are "
      "invariant over shard/thread geometry: use stats::merge_tree "
      "(src/stats/reduction.hpp)")
def check_raw_accumulate(ctx: FileCtx) -> list[tuple[int, str]]:
    if ctx.scope_path.startswith("src/stats/reduction"):
        return []
    return _matches(ctx, RAW_ACCUMULATE)


RAW_ASSERT = re.compile(r"(?<!static_)\bassert\s*\(|#\s*include\s*<(?:cassert|assert\.h)>")


@rule("raw-assert",
      "raw assert in a protocol/decode path (vanishes in release builds)",
      "malformed input must fail loudly in every build type: use "
      "GOSSIP_REQUIRE (src/common/require.hpp)")
def check_raw_assert(ctx: FileCtx) -> list[tuple[int, str]]:
    if not ctx.in_dir("src/proto/", "src/net/", "src/runtime/"):
        return []
    return _matches(ctx, RAW_ASSERT)


WIRE_READ = re.compile(r"get_u(?:8|16|32|64)\s*\(|\bbytes_\[|\bbuffer\[|"
                       r"buffer\.data\(\)\s*\+")
WIRE_GUARD = re.compile(r"GOSSIP_REQUIRE|while\s*\(.*(?:size\(\)|len|remaining"
                        r"|kHeaderSize)|if\s*\(.*(?:size\(\)|len|remaining"
                        r"|kHeaderSize)")
WIRE_GUARD_WINDOW = 8


@rule("unchecked-wire-read",
      "raw buffer read in a decode path with no bounds guard in sight",
      "every read from received bytes must be preceded by a bounds check "
      "(GOSSIP_REQUIRE / an if-while guard on the remaining length) "
      f"within {WIRE_GUARD_WINDOW} lines — truncated or hostile frames "
      "must reject, not overread")
def check_unchecked_wire_read(ctx: FileCtx) -> list[tuple[int, str]]:
    if not ctx.in_dir("src/proto/", "src/runtime/"):
        return []
    out = []
    for lineno, line in enumerate(ctx.code, start=1):
        m = WIRE_READ.search(line)
        if not m:
            continue
        lo = max(0, lineno - 1 - WIRE_GUARD_WINDOW)
        window = ctx.code[lo:lineno]  # includes the read's own line
        if any(WIRE_GUARD.search(w) for w in window):
            continue
        out.append((lineno, m.group(0).strip()))
    return out


SALT_XOR = re.compile(r"\^=?\s*0x[0-9a-fA-F]{4,}")
SALT_MUL = re.compile(r"\*=?\s*0x[0-9a-fA-F]{9,}")


@rule("raw-stream-salt",
      "raw hex constant XOR'd/multiplied into a stream key outside the "
      "salt registry",
      "RNG stream salts and keying multipliers must be named constexpr "
      "entries in src/common/stream_salt.hpp — the registry's "
      "static_assert makes a colliding pair a compile error instead of "
      "a silently aliased stream")
def check_raw_stream_salt(ctx: FileCtx) -> list[tuple[int, str]]:
    if not ctx.in_dir("src/", "bench/"):
        return []
    if ctx.scope_path in ("src/common/stream_salt.hpp", "src/common/rng.hpp"):
        # The registry itself, and the splitmix64/xoshiro mixing
        # constants that are the *algorithm*, not a stream selection.
        return []
    return _matches(ctx, SALT_XOR) + _matches(ctx, SALT_MUL)


ATOMIC_OP = re.compile(
    r"\.\s*(load|store|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\(")
MEMORY_ORDER = re.compile(r"\bmemory_order\b|\bstd::memory_order_\w+")


def _call_args(ctx: FileCtx, lineno: int, col: int) -> str:
    """The argument text of a call whose opening '(' sits at (lineno, col),
    joined across continuation lines until the parentheses balance."""
    out, depth = [], 0
    line_idx, i = lineno - 1, col
    while line_idx < len(ctx.code):
        line = ctx.code[line_idx]
        while i < len(line):
            ch = line[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    out.append(line[:i])
                    return " ".join(out)[col:]
            i += 1
        out.append(line)
        line_idx, i = line_idx + 1, 0
    return " ".join(out)[col:]


@rule("atomic-memory-order",
      "atomic operation with an implicit (seq_cst) memory order",
      "spell the ordering: memory_order_relaxed for monotonic counters, "
      "acquire/release (or acq_rel RMW) where the operation publishes or "
      "consumes data — implicit seq_cst hides which orderings are "
      "load-bearing and costs a full fence on weak architectures")
def check_atomic_memory_order(ctx: FileCtx) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(ctx.code, start=1):
        for m in ATOMIC_OP.finditer(line):
            args = _call_args(ctx, lineno, m.end() - 1)
            if not MEMORY_ORDER.search(args):
                out.append((lineno, m.group(0).strip()))
    return out


THREAD_DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")


@rule("thread-detach",
      "detached thread (outlives scope, races teardown, hides failures)",
      "join explicitly or use std::jthread so every worker's lifetime is "
      "bounded by an owner — a detached thread can touch freed executor "
      "state during shutdown")
def check_thread_detach(ctx: FileCtx) -> list[tuple[int, str]]:
    return _matches(ctx, THREAD_DETACH)


MUTEX_MANUAL = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?\.\s*(?:try_lock|lock|unlock)"
    r"\s*\(\s*\)")
# Receivers that are themselves RAII lock objects (std::unique_lock
# et al.), whose .lock()/.unlock() keep the owning-guard invariant.
LOCK_WRAPPER_NAME = re.compile(r"^(?:lock|lk|guard|ul|sl|locker)\d*_?$")


@rule("bare-mutex-lock",
      "manual mutex lock/unlock (leaks the lock on any early return or "
      "exception)",
      "hold mutexes through std::lock_guard/std::scoped_lock/"
      "std::unique_lock; calling .lock()/.unlock() on a std::unique_lock "
      "variable is fine and not flagged")
def check_bare_mutex_lock(ctx: FileCtx) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(ctx.code, start=1):
        for m in MUTEX_MANUAL.finditer(line):
            if LOCK_WRAPPER_NAME.match(m.group(1)):
                continue
            out.append((lineno, m.group(0).strip()))
    return out


VOLATILE = re.compile(r"\bvolatile\b")


@rule("volatile-sync",
      "volatile used where a synchronization primitive belongs",
      "volatile neither orders memory nor makes access atomic; "
      "cross-thread flags and counters must be std::atomic<> with an "
      "explicit memory_order")
def check_volatile_sync(ctx: FileCtx) -> list[tuple[int, str]]:
    return _matches(ctx, VOLATILE)


# ------------------------------------------------------------ suppressions

ALLOW = re.compile(r"gossip-lint:\s*allow\(([\w-]+)\)\s*[:—–-]*\s*(.*)")
FIXTURE_PATH = re.compile(r"lint-fixture-path:\s*(\S+)")


def analyze_file(report_path: str, scope_path: str, text: str) -> list[Finding]:
    code, comments = split_code_comments(text)
    ctx = FileCtx(report_path, scope_path, code, comments)

    findings: list[Finding] = []
    # allow line -> (rule, justification_ok, used)
    allows: dict[int, dict] = {}
    for lineno, comment in enumerate(comments, start=1):
        m = ALLOW.search(comment)
        if not m:
            continue
        name, why = m.group(1), m.group(2).strip()
        if name not in RULES:
            findings.append(Finding(
                report_path, lineno, "bad-suppression",
                f"allow({name}) names no such rule",
                "valid rules: " + ", ".join(sorted(RULES))))
            continue
        if len(why) < MIN_JUSTIFICATION:
            findings.append(Finding(
                report_path, lineno, "bad-suppression",
                f"allow({name}) has no justification",
                "a suppression must say WHY this occurrence is safe: "
                "// gossip-lint: allow(rule): reason"))
            continue
        allows[lineno] = {"rule": name, "used": False}

    # An allow covers its own line plus the next line carrying code —
    # comment-only continuation lines of the justification are skipped.
    covered: dict[int, list[dict]] = {}
    for lineno, a in allows.items():
        covered.setdefault(lineno, []).append(a)
        for nxt in range(lineno + 1, min(lineno + 50, len(code) + 1)):
            if code[nxt - 1].strip():
                covered.setdefault(nxt, []).append(a)
                break

    for name, spec in RULES.items():
        for lineno, token in spec["fn"](ctx):
            suppressed = False
            for a in covered.get(lineno, []):
                if a["rule"] == name:
                    a["used"] = True
                    suppressed = True
                    break
            if not suppressed:
                findings.append(Finding(
                    report_path, lineno, name,
                    f"{spec['summary']}: `{token}`", spec["hint"]))

    for lineno, a in allows.items():
        if not a["used"]:
            findings.append(Finding(
                report_path, lineno, "unused-suppression",
                f"allow({a['rule']}) suppresses nothing on this or the "
                "next line",
                "remove the stale suppression (or move it to the "
                "offending line) so allows stay auditable"))

    return findings


# -------------------------------------------------------------------- scan


def iter_files(paths: list[Path]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        if p.is_file() and p.suffix in CPP_SUFFIXES:
            out.append(p)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CPP_SUFFIXES and f.is_file():
                    # The fixture corpus contains deliberate violations.
                    if FIXTURE_DIR in f.parents:
                        continue
                    out.append(f)
    return out


def run_scan(paths: list[Path], fmt: str = "text") -> int:
    files = iter_files(paths)
    if not files:
        print("gossip-lint: no C++ sources found under given paths",
              file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for f in files:
        rel = f.resolve().relative_to(REPO_ROOT).as_posix() \
            if f.resolve().is_relative_to(REPO_ROOT) else f.as_posix()
        findings.extend(analyze_file(rel, rel, f.read_text(encoding="utf-8")))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    for fd in findings:
        print(fd.render_github() if fmt == "github" else fd.render())
    if findings:
        print(f"gossip-lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"gossip-lint: clean ({len(files)} files, {len(RULES)} rules)")
    return 0


# --------------------------------------------------------------- self-test


def run_self_test() -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.cpp"))
    if not fixtures:
        print(f"gossip-lint self-test: no fixtures in {FIXTURE_DIR}",
              file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for f in fixtures:
        text = f.read_text(encoding="utf-8")
        m = FIXTURE_PATH.search(text)
        scope = m.group(1) if m else f"src/fixture/{f.name}"
        findings.extend(
            analyze_file(f"fixtures/{f.name}", scope, text))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    got = "\n".join(fd.render() for fd in findings) + "\n"

    expected = EXPECTED_FILE.read_text(encoding="utf-8")
    ok = True
    if got.strip() != expected.strip():
        ok = False
        print("gossip-lint self-test: FINDINGS DIFFER FROM GOLDEN")
        import difflib
        for line in difflib.unified_diff(
                expected.splitlines(), got.splitlines(),
                fromfile="tests/lint/expected.txt", tofile="observed",
                lineterm=""):
            print(line)

    # The GitHub annotation rendering is part of the CI contract: pin it
    # against its own golden so the ::error format cannot drift.
    got_gh = "\n".join(fd.render_github() for fd in findings) + "\n"
    expected_gh = EXPECTED_GITHUB_FILE.read_text(encoding="utf-8")
    if got_gh.strip() != expected_gh.strip():
        ok = False
        print("gossip-lint self-test: GITHUB FORMAT DIFFERS FROM GOLDEN")
        import difflib
        for line in difflib.unified_diff(
                expected_gh.splitlines(), got_gh.splitlines(),
                fromfile="tests/lint/expected_github.txt",
                tofile="observed", lineterm=""):
            print(line)

    # Every rule must have fired at least once across the seeded
    # fixtures — a rule that detects nothing is a rule that rotted.
    fired = {fd.rule for fd in findings}
    missing = (set(RULES) | {"bad-suppression", "unused-suppression"}) - fired
    if missing:
        ok = False
        print("gossip-lint self-test: rules with no fixture coverage: "
              + ", ".join(sorted(missing)))

    # The clean fixture and the correctly-suppressed fixture must be
    # silent: zero findings attributed to either file.
    for silent in ("clean.cpp", "suppressed_ok.cpp", "concurrency_ok.cpp",
                   "concurrency_suppressed.cpp"):
        noisy = [fd for fd in findings if fd.path.endswith(silent)]
        if noisy:
            ok = False
            print(f"gossip-lint self-test: {silent} must be clean but got "
                  f"{len(noisy)} finding(s)")

    if ok:
        print(f"gossip-lint self-test OK: {len(findings)} golden findings, "
              f"{len(RULES)} rules all detected, clean fixtures silent")
        return 0
    return 1


def print_rules() -> None:
    width = max(len(n) for n in RULES)
    for name in sorted(RULES):
        print(f"{name:<{width}}  {RULES[name]['summary']}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: src bench tests "
                         "examples)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite against the golden output")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--format", choices=("text", "github"), default="text",
                    help="finding output format (github = ::error "
                         "annotations for GitHub Actions)")
    args = ap.parse_args()

    if args.list_rules:
        print_rules()
        return 0
    if args.self_test:
        return run_self_test()
    paths = ([Path(p) for p in args.paths] if args.paths
             else [REPO_ROOT / d for d in DEFAULT_SCAN])
    return run_scan(paths, args.format)


if __name__ == "__main__":
    sys.exit(main())
