// Tests for the deployment-runtime executor (src/runtime/executor.*,
// src/runtime/transport.*): exact sum conservation under zero loss, the
// loss-exact quiescence discipline (no timeout and no late reply ever
// happens without real loss), liveness under injected loss, N >= 1000 on
// the Engine path in one process, and a two-process socket run hosted on
// two threads. Runs are wall-clock concurrent and not bit-deterministic,
// so every assertion is a protocol invariant, never a golden.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "runtime/executor.hpp"
#include "runtime/transport.hpp"

namespace gossip::runtime {
namespace {

using experiment::DriverKind;
using experiment::RunResult;
using experiment::RuntimeSpec;
using experiment::ScenarioSpec;

ExecutorConfig peak_config(std::uint32_t nodes, std::uint32_t cycles,
                           std::uint32_t workers) {
  ExecutorConfig cfg;
  cfg.nodes = nodes;
  cfg.local_lo = 0;
  cfg.local_hi = nodes;
  cfg.cycles = cycles;
  cfg.workers = workers;
  cfg.overlay = OverlayMode::kComplete;
  cfg.seed = 42;
  cfg.initial.assign(nodes, 0.0);
  cfg.initial[0] = static_cast<double>(nodes);
  return cfg;
}

// Zero injected loss: the quiescence rule guarantees no pending is ever
// expired while its reply is alive, so the global estimate sum is
// conserved *exactly* — and the timeout/late-reply counters prove the
// discipline held, not just the sums.
TEST(Executor, LoopbackZeroLossConservesSumExactly) {
  LoopbackTransport transport;
  Executor executor(peak_config(64, 15, 4), transport);
  const ExecutorResult result =
      executor.run(failure::NoFailures());

  EXPECT_EQ(result.participants, 64u);
  EXPECT_DOUBLE_EQ(result.sum_final, result.sum_initial);
  EXPECT_DOUBLE_EQ(result.sum_initial, 64.0);

  const RuntimeCounters& c = result.counters;
  EXPECT_GT(c.exchanges_completed, 0u);
  EXPECT_EQ(c.timeouts, 0u);
  EXPECT_EQ(c.late_replies, 0u);
  EXPECT_EQ(c.dropped_loss, 0u);
  EXPECT_EQ(c.replies_sent, c.replies_received);
  EXPECT_GE(c.pushes_sent, c.exchanges_completed);
  EXPECT_GT(c.bytes_encoded, 0u);
  EXPECT_EQ(c.bytes_encoded, c.bytes_decoded);

  // Peak converges toward the true mean 1.0.
  ASSERT_FALSE(result.per_cycle.empty());
  EXPECT_LT(result.per_cycle.back().variance(),
            result.per_cycle.front().variance() / 100.0);
}

// Injected loss: the run still terminates, drops are counted, and every
// lost request/response surfaces as a timeout instead of hanging a node.
TEST(Executor, LoopbackSurvivesMessageLoss) {
  FaultConfig faults;
  faults.p_loss = 0.2;
  faults.seed = 7;
  LoopbackTransport transport(faults);
  Executor executor(peak_config(64, 10, 2), transport);
  const ExecutorResult result =
      executor.run(failure::NoFailures());

  EXPECT_EQ(result.participants, 64u);
  EXPECT_GT(result.counters.dropped_loss, 0u);
  EXPECT_GT(result.counters.timeouts, 0u);
  EXPECT_GT(result.counters.exchanges_completed, 0u);
}

// Injected delay: frames are held to their deadline and still settle
// within the cycle (the wall timeout is never the resolution path). The
// δ pacing staggers initiations across wheel slots so the 200 us
// round-trips interleave with free nodes instead of all colliding.
TEST(Executor, LoopbackDeliversDelayedFrames) {
  FaultConfig faults;
  faults.latency = std::make_shared<net::FixedLatency>(200);  // 200 us
  LoopbackTransport transport(faults);
  ExecutorConfig cfg = peak_config(32, 5, 2);
  cfg.delta_us = 20000;
  Executor executor(std::move(cfg), transport);
  const ExecutorResult result =
      executor.run(failure::NoFailures());

  EXPECT_DOUBLE_EQ(result.sum_final, result.sum_initial);
  EXPECT_EQ(result.counters.timeouts, 0u);
  EXPECT_GT(result.counters.exchanges_completed, 0u);
}

// The ScenarioSpec path at scale: N = 1000 live nodes in one process on
// the NEWSCAST overlay, driven end-to-end through the Engine facade.
TEST(Executor, EngineRunsThousandNodesInOneProcess) {
  ScenarioSpec spec = ScenarioSpec::average_peak("runtime_1k", 1000, 20)
                          .with_driver(DriverKind::kRuntime)
                          .with_seed(11);
  spec.runtime.workers = 4;
  experiment::validate(spec);

  experiment::Engine engine;
  const RunResult result = engine.run_single(spec, spec.seed);

  EXPECT_TRUE(result.runtime_enabled);
  EXPECT_EQ(result.participants, 1000u);
  ASSERT_FALSE(result.per_cycle.empty());
  EXPECT_EQ(result.per_cycle.front().count(), 1000u);
  EXPECT_LT(result.per_cycle.back().variance(),
            result.per_cycle.front().variance() / 100.0);
  EXPECT_GT(result.runtime_counters.exchanges_completed, 1000u);
  EXPECT_EQ(result.runtime_counters.timeouts, 0u);
  EXPECT_NEAR(result.runtime_sum_final, result.runtime_sum_initial,
              1e-6 * 1000.0);
}

// Churn through the spec vocabulary: joiners sit out the epoch as
// non-participants, crashes shrink the live set, the run stays live.
TEST(Executor, EngineRunsChurnOnNewscast) {
  ScenarioSpec spec = ScenarioSpec::average_peak("runtime_churn", 200, 10)
                          .with_driver(DriverKind::kRuntime)
                          .with_seed(5)
                          .with_failure(experiment::FailureSpec::churn(4));
  spec.runtime.workers = 2;
  experiment::validate(spec);

  experiment::Engine engine;
  const RunResult result = engine.run_single(spec, spec.seed);

  EXPECT_TRUE(result.runtime_enabled);
  EXPECT_GT(result.participants, 0u);
  EXPECT_LT(result.participants, 200u);  // kills hit participants too
  EXPECT_GT(result.runtime_counters.exchanges_completed, 0u);
}

// Two cooperating processes (hosted on two threads here, real processes
// in tests/cli/runtime_two_proc.sh) over the TCP socket transport: the
// id space splits [0,32) / [32,64), frames cross a real socket, and the
// *combined* estimate sum is conserved exactly under zero loss.
TEST(Executor, TwoProcessSocketRunConservesCombinedSum) {
  constexpr std::uint32_t kNodes = 64;
  constexpr std::uint32_t kCycles = 8;
  constexpr std::uint16_t kPortBase = 29411;

  std::vector<ExecutorResult> results(2);
  std::vector<std::string> errors(2);
  std::vector<std::jthread> procs;
  for (std::uint32_t p = 0; p < 2; ++p) {
    procs.emplace_back([p, &results, &errors] {
      try {
        ProcessPartition partition{kNodes, 2};
        SocketConfig sock;
        sock.nodes = kNodes;
        sock.processes = 2;
        sock.process_index = p;
        sock.port_base = kPortBase;
        SocketTransport transport({}, sock);

        ExecutorConfig cfg = peak_config(kNodes, kCycles, 2);
        cfg.local_lo = partition.lo(p);
        cfg.local_hi = partition.hi(p);
        Executor executor(std::move(cfg), transport);
        results[p] = executor.run(failure::NoFailures());
      } catch (const std::exception& e) {
        errors[p] = e.what();
      }
    });
  }
  procs.clear();  // join

  ASSERT_EQ(errors[0], "");
  ASSERT_EQ(errors[1], "");
  EXPECT_EQ(results[0].participants + results[1].participants, kNodes);
  const double sum_initial = results[0].sum_initial + results[1].sum_initial;
  const double sum_final = results[0].sum_final + results[1].sum_final;
  EXPECT_DOUBLE_EQ(sum_initial, static_cast<double>(kNodes));
  EXPECT_DOUBLE_EQ(sum_final, sum_initial);
  EXPECT_EQ(results[0].counters.timeouts, 0u);
  EXPECT_EQ(results[1].counters.timeouts, 0u);
  // Frames actually crossed the socket: each side completed exchanges and
  // the peak (held by node 0, process 0) reached the other half.
  EXPECT_GT(results[1].sum_final, 1.0);
}

// Config validation: the executor rejects malformed shapes up front.
TEST(Executor, RejectsMalformedConfig) {
  LoopbackTransport transport;
  ExecutorConfig bad = peak_config(64, 10, 2);
  bad.initial.pop_back();
  EXPECT_THROW(Executor(std::move(bad), transport), require_error);

  LoopbackTransport transport2;
  ExecutorConfig empty = peak_config(64, 10, 2);
  empty.local_lo = empty.local_hi = 0;
  EXPECT_THROW(Executor(std::move(empty), transport2), require_error);
}

}  // namespace
}  // namespace gossip::runtime
