// Tests for src/runtime: the real-thread deployment — mailbox semantics,
// clean startup/shutdown, convergence of concurrent push–pull averaging,
// sum conservation, loss tolerance.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "common/require.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/threaded.hpp"
#include "stats/summary.hpp"

namespace gossip::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, PushPopFifo) {
  Mailbox<int> box;
  EXPECT_TRUE(box.push(1));
  EXPECT_TRUE(box.push(2));
  EXPECT_EQ(box.try_pop(), 1);
  EXPECT_EQ(box.try_pop(), 2);
  EXPECT_EQ(box.try_pop(), std::nullopt);
}

TEST(Mailbox, PopWaitTimesOut) {
  Mailbox<int> box;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(box.pop_wait(30ms), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - begin, 25ms);
}

TEST(Mailbox, PopWaitWakesOnPush) {
  Mailbox<int> box;
  std::jthread producer([&box] {
    std::this_thread::sleep_for(10ms);
    box.push(42);
  });
  EXPECT_EQ(box.pop_wait(500ms), 42);
}

TEST(Mailbox, CloseWakesWaitersAndRejectsPushes) {
  Mailbox<int> box;
  std::jthread closer([&box] {
    std::this_thread::sleep_for(10ms);
    box.close();
  });
  EXPECT_EQ(box.pop_wait(5s), std::nullopt);
  EXPECT_TRUE(box.closed());
  EXPECT_FALSE(box.push(1));
}

TEST(Mailbox, DrainAfterClose) {
  Mailbox<int> box;
  box.push(7);
  box.close();
  EXPECT_EQ(box.try_pop(), 7);  // pending items stay poppable
}

TEST(LocalNetwork, DeliversToMailbox) {
  LocalNetwork net(2, 0.0, 1);
  EXPECT_TRUE(net.send(NodeId(1), Push{NodeId(0), 1, 3.5}));
  const auto msg = net.mailbox(NodeId(1)).try_pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_DOUBLE_EQ(std::get<Push>(*msg).value, 3.5);
}

TEST(LocalNetwork, LossDropsApproximately) {
  LocalNetwork net(2, 0.5, 2);
  int delivered = 0;
  constexpr int kMsgs = 10000;
  for (int i = 0; i < kMsgs; ++i) {
    delivered += net.send(NodeId(1), Push{NodeId(0), 1, 0.0});
  }
  EXPECT_NEAR(delivered, kMsgs / 2, 300);
}

TEST(LocalNetwork, Guards) {
  LocalNetwork net(2, 0.0, 3);
  EXPECT_THROW(net.send(NodeId(5), Push{}), require_error);
  EXPECT_THROW((void)net.mailbox(NodeId::invalid()), require_error);
  EXPECT_THROW(LocalNetwork(2, 1.5, 4), require_error);
}

ThreadedConfig fast_config() {
  ThreadedConfig cfg;
  cfg.cycle = 5ms;
  cfg.timeout = 200ms;
  return cfg;
}

TEST(Cluster, StartsAndStopsCleanly) {
  Cluster cluster(16, 4, fast_config(), 5);
  cluster.start();
  Cluster::run_for(30ms);
  cluster.stop();  // must not hang or crash
  cluster.stop();  // idempotent
}

TEST(Cluster, ConvergesToTrueAverageOnRealThreads) {
  // Two threads per node on a possibly tiny machine: keep the cluster
  // small and the tolerances scheduler-friendly. The strict assertion is
  // conservation (mean exactly 1); convergence tightness is best-effort
  // wall-clock physics.
  Cluster cluster(16, 4, fast_config(), 7);
  // Peak distribution: node 0 holds 16, true average 1.
  cluster.set_value(NodeId(0), 16.0);
  cluster.start();
  Cluster::run_for(900ms);  // ~180 cycles
  cluster.stop();
  const auto s = stats::summarize(cluster.estimates());
  // Conservation holds per completed exchange; a rare early reply that
  // misses its timeout on a loaded scheduler perturbs the sum slightly
  // (see SumConservedUpToInFlightExchanges).
  EXPECT_NEAR(s.mean, 1.0, 0.05);
  // Wall-clock convergence depends on the scheduler; the trend assertion
  // is generous (initial variance was 16 with min 0 / max 16).
  EXPECT_NEAR(s.min, 1.0, 0.6);
  EXPECT_NEAR(s.max, 1.0, 0.6);
  EXPECT_LT(s.variance, 0.3);
}

TEST(Cluster, SumConservedUpToInFlightExchanges) {
  // On real threads conservation is exact per *completed* exchange, but a
  // snapshot can catch exchanges half-applied: a reply still in a
  // mailbox, or one that missed its timeout on a loaded scheduler (the
  // §7.2 response-loss asymmetry, for real). Both carry at most
  // |a-b|/2 ≈ the current spread, so the sum stays within a tight band
  // of the true total.
  Cluster cluster(24, 5, fast_config(), 11);
  for (std::uint32_t u = 0; u < 24; ++u) {
    cluster.set_value(NodeId(u), static_cast<double>(u));
  }
  cluster.start();
  Cluster::run_for(200ms);
  cluster.stop();
  const auto est = cluster.estimates();
  // gossip-lint: allow(raw-accumulate): test-local serial conservation
  // sum in fixed id order against a loose EXPECT_NEAR tolerance.
  const double sum = std::accumulate(est.begin(), est.end(), 0.0);
  EXPECT_NEAR(sum, 23.0 * 24.0 / 2.0, 0.5);
}

TEST(Cluster, ExchangesActuallyHappen) {
  Cluster cluster(16, 4, fast_config(), 13);
  cluster.start();
  Cluster::run_for(150ms);
  cluster.stop();
  std::uint64_t total = 0;
  for (std::uint32_t u = 0; u < 16; ++u) {
    total += cluster.node(NodeId(u)).exchanges_completed();
  }
  // ~30 cycles x 16 nodes, minus refusals; anything substantial proves
  // the threads really exchanged.
  EXPECT_GT(total, 100u);
}

TEST(Cluster, ToleratesMessageLoss) {
  ThreadedConfig cfg = fast_config();
  cfg.p_loss = 0.2;
  cfg.timeout = 20ms;  // lost replies must not stall cycles for long
  Cluster cluster(16, 4, cfg, 17);
  cluster.set_value(NodeId(0), 16.0);
  cluster.start();
  Cluster::run_for(600ms);
  cluster.stop();
  const auto s = stats::summarize(cluster.estimates());
  // Contracted far below the initial spread of 16; the mean may drift
  // (response loss) and scheduler jitter widens the residual band.
  EXPECT_LT(s.max - s.min, 2.0);
  std::uint64_t timeouts = 0;
  for (std::uint32_t u = 0; u < 16; ++u) {
    timeouts += cluster.node(NodeId(u)).timeouts();
  }
  EXPECT_GT(timeouts, 0u);
}

TEST(Cluster, SetValueAfterStartThrows) {
  Cluster cluster(8, 3, fast_config(), 19);
  cluster.start();
  EXPECT_THROW(cluster.set_value(NodeId(0), 1.0), require_error);
  cluster.stop();
}

TEST(Cluster, Guards) {
  EXPECT_THROW(Cluster(1, 1, fast_config(), 21), require_error);
  Cluster cluster(8, 3, fast_config(), 23);
  EXPECT_THROW((void)cluster.node(NodeId(8)), require_error);
  EXPECT_THROW(cluster.set_value(NodeId(9), 0.0), require_error);
}

}  // namespace
}  // namespace gossip::runtime
