// The declarative ScenarioSpec API: JSON round-trip identity on every
// registered scenario, golden validation-error messages, strict
// GOSSIP_THREADS / GOSSIP_SHARDS / GOSSIP_FULL knob parsing, --set
// overrides, spec hashing, and the underlying JSON module's exactness
// guarantees (doubles round-trip bit-for-bit, u64 seeds survive).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "common/env.hpp"
#include "common/json.hpp"
#include "experiment/engine.hpp"
#include "experiment/parallel_runner.hpp"
#include "experiment/registry.hpp"
#include "experiment/scale.hpp"
#include "experiment/spec.hpp"

namespace gossip::experiment {
namespace {

// ----------------------------------------------------------- round-trip

TEST(SpecRoundTrip, EveryRegisteredScenarioSurvivesParseSerializeParse) {
  const Scale scale{400, 3, 0x5eed, false};
  for (const ScenarioDef& def : ScenarioRegistry::instance().all()) {
    for (const ScenarioSpec& spec : def.build(scale)) {
      SCOPED_TRACE(spec.name);
      const std::string text = to_json(spec);
      const ScenarioSpec reparsed = spec_from_json(text);
      EXPECT_EQ(reparsed, spec);
      // parse ∘ serialize ∘ parse is the identity, textually too.
      EXPECT_EQ(to_json(reparsed), text);
      // Compact form round-trips the same way.
      EXPECT_EQ(spec_from_json(to_json(spec, -1)), spec);
    }
  }
}

TEST(SpecRoundTrip, DoublesSurviveBitForBit) {
  ScenarioSpec spec = ScenarioSpec::average_peak("doubles", 100, 5);
  spec.topology.beta = 0.1 + 0.2;  // 0.30000000000000004
  spec.comm.message_loss = 1.0 / 3.0;
  spec.failure = FailureSpec::churn_fraction(0.005 * 3);
  spec.with_sweep(SweepAxis::kLossP, {{0.1, 7, ""}, {1.0 / 7.0, 8, ""}});
  const ScenarioSpec reparsed = spec_from_json(to_json(spec));
  EXPECT_EQ(reparsed.topology.beta, spec.topology.beta);
  EXPECT_EQ(reparsed.comm.message_loss, spec.comm.message_loss);
  EXPECT_EQ(reparsed.failure.fraction, spec.failure.fraction);
  EXPECT_EQ(reparsed.sweep.points[1].value, spec.sweep.points[1].value);
}

TEST(SpecRoundTrip, U64SeedSurvives) {
  ScenarioSpec spec = ScenarioSpec::average_peak("seed", 100, 5);
  spec.seed = 0xfedcba9876543210ULL;  // would lose precision as a double
  EXPECT_EQ(spec_from_json(to_json(spec)).seed, spec.seed);
}

TEST(SpecDefaults, MissingFieldsFillDefaults) {
  const ScenarioSpec spec = spec_from_json(R"({"name": "minimal"})");
  EXPECT_EQ(spec.name, "minimal");
  EXPECT_EQ(spec.driver, DriverKind::kCycle);
  EXPECT_EQ(spec.aggregate, AggregateKind::kAverage);
  EXPECT_EQ(spec.nodes, 10000u);
  EXPECT_EQ(spec.engine, EngineKind::kAuto);
  EXPECT_EQ(spec.sweep.points.size(), 1u);
}

// ------------------------------------------- golden validation messages

void expect_spec_error(const std::string& json_text,
                       const std::string& expected) {
  try {
    (void)spec_from_json(json_text);
    FAIL() << "expected SpecError for: " << json_text;
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()), expected) << json_text;
  }
}

TEST(SpecValidation, GoldenErrorMessages) {
  expect_spec_error(R"({})", "spec: 'name' must be a non-empty string");
  expect_spec_error(R"({"name": "x", "nodes": 1})",
                    "spec: nodes must be >= 2, got 1");
  expect_spec_error(R"({"name": "x", "cycles": 0})",
                    "spec: cycles must be >= 1");
  // The packed 32-bit logical clock (membership::CacheEntry) bounds the
  // timestamps a run can stamp.
  expect_spec_error(R"({"name": "x", "cycles": 4294967295})",
                    "spec: cycles must fit the packed 32-bit logical clock "
                    "(<= 4294967294), got 4294967295");
  expect_spec_error(
      R"({"name": "x", "driver": "event", "cycles": 4295})",
      "spec: driver 'event' stamps simulated microseconds into the packed "
      "32-bit logical clock; cycles must be <= 4294, got 4295");
  expect_spec_error(R"({"name": "x", "reps": 0})",
                    "spec: reps must be >= 1");
  expect_spec_error(
      R"({"name": "x", "instances": 3})",
      "spec: aggregate 'average' requires instances == 1, got 3");
  expect_spec_error(
      R"({"name": "x", "bogus_field": 1})",
      "spec: unknown field 'bogus_field' in spec");
  expect_spec_error(
      R"({"name": "x", "topology": {"kind": "hypercube"}})",
      "spec: topology.kind must be one of "
      "complete|random_k_out|ring_lattice|watts_strogatz|barabasi_albert|"
      "newscast, got 'hypercube'");
  expect_spec_error(
      R"({"name": "x", "comm": {"message_loss": 1.5}})",
      "spec: comm.message_loss must be a probability in [0,1], got "
      "1.500000");
  expect_spec_error(
      R"({"name": "x", "failure": {"kind": "sometimes"}})",
      "spec: failure.kind must be one of "
      "none|proportional_crash|sudden_death|churn|churn_fraction|"
      "constant_crash|correlated_waves|partition|restart, got 'sometimes'");
  expect_spec_error(
      R"({"name": "x", "sweep": {"axis": "loss_p", "points": []}})",
      "spec: sweep.points must hold at least one point (use sweep axis "
      "'none' with a single seed_point for unswept runs)");
  expect_spec_error(
      R"({"name": "x", "driver": "push_sum", "engine": "intra_rep"})",
      "spec: engine 'intra_rep' requires driver 'cycle', got driver "
      "'push_sum'");
  expect_spec_error(
      R"({"name": "x", "match_rounds": 0})",
      "spec: match_rounds must be in [1,16], got 0");
  expect_spec_error(
      R"({"name": "x", "match_rounds": 17, "engine": "intra_rep"})",
      "spec: match_rounds must be in [1,16], got 17");
  expect_spec_error(
      R"({"name": "x", "match_rounds": 3})",
      "spec: match_rounds > 1 requires engine 'intra_rep' (other engines "
      "have no match phase), got engine 'auto'");
  expect_spec_error(
      R"({"name": "x", "driver": "event", "aggregate": "count",
          "instances": 2})",
      "spec: driver 'event' supports aggregate 'average' only");
  expect_spec_error(R"(not json)",
                    "spec: invalid JSON: invalid literal at offset 0");
}

TEST(SpecValidation, GoldenAdversarialErrorMessages) {
  // Unknown-field errors now carry a nearest-key suggestion when a
  // plausible typo exists...
  expect_spec_error(
      R"({"name": "x", "failure": {"kind": "churn", "fractoin": 0.1}})",
      "spec: unknown field 'fractoin' in failure (did you mean "
      "'fraction'?)");
  expect_spec_error(
      R"({"name": "x", "adversary": {"behaviour": "always_max"}})",
      "spec: unknown field 'behaviour' in adversary (did you mean "
      "'behavior'?)");
  // ...and stay suggestion-free when nothing is close (the pre-existing
  // 'bogus_field' golden above pins the top-level case).
  expect_spec_error(
      R"({"name": "x", "combine": {"quorum": 3}})",
      "spec: unknown field 'quorum' in combine");
  expect_spec_error(
      R"({"name": "x", "adversary": {"behavior": "grief"}})",
      "spec: adversary.behavior must be one of "
      "none|value_inject|always_max|cache_pollute, got 'grief'");
  expect_spec_error(
      R"({"name": "x", "combine": {"kind": "mode"}})",
      "spec: combine.kind must be one of "
      "mean|trimmed_mean|median_of_means, got 'mode'");
  expect_spec_error(
      R"({"name": "x",
          "adversary": {"behavior": "value_inject", "fraction": 1.0}})",
      "spec: adversary.fraction must be in [0,1), got 1.000000");
  expect_spec_error(
      R"({"name": "x", "adversary": {"fraction": 0.1}})",
      "spec: adversary.fraction > 0 requires an adversary.behavior "
      "(value_inject|always_max|cache_pollute)");
  expect_spec_error(
      R"({"name": "x", "driver": "push_sum",
          "adversary": {"behavior": "always_max", "fraction": 0.1}})",
      "spec: adversary.behavior requires driver 'cycle', got driver "
      "'push_sum'");
  expect_spec_error(
      R"({"name": "x", "combine": {"kind": "trimmed_mean", "alpha": 0.5}})",
      "spec: combine.alpha must be in (0,0.5) for trimmed_mean, got "
      "0.500000");
  expect_spec_error(
      R"({"name": "x", "combine": {"kind": "median_of_means"}})",
      "spec: combine.groups must be >= 1 for median_of_means");
  expect_spec_error(
      R"({"name": "x",
          "combine": {"kind": "median_of_means", "groups": 12,
                      "window": 4}})",
      "spec: combine.groups must be <= combine.window + 1 (each group "
      "needs at least one report), got groups 12 with window 4");
  expect_spec_error(
      R"({"name": "x",
          "combine": {"kind": "trimmed_mean", "alpha": 0.25, "window": 1}})",
      "spec: combine.window must be in [2,64], got 1");
  expect_spec_error(
      R"({"name": "x", "failure": {"kind": "partition", "duration": 5}})",
      "spec: failure.components must be >= 2 for partition, got 0");
  expect_spec_error(
      R"({"name": "x",
          "failure": {"kind": "partition", "components": 2}})",
      "spec: failure.duration must be >= 1 for partition, got 0");
  expect_spec_error(
      R"({"name": "x", "failure": {"kind": "correlated_waves"}})",
      "spec: failure.waves must be >= 1 for correlated_waves, got 0");
  expect_spec_error(
      R"({"name": "x", "nodes": 100,
          "failure": {"kind": "correlated_waves", "waves": 3,
                      "fraction": 0.001}})",
      "spec: correlated_waves wave width floor(nodes * fraction) must be "
      ">= 1 (nodes 100, fraction 0.001000)");
  expect_spec_error(
      R"({"name": "x", "failure": {"kind": "restart"}})",
      "spec: failure.cycle is the restart period for kind 'restart'; "
      "it must be >= 1");
}

TEST(SpecValidation, GoldenDriftServiceErrorMessages) {
  // The packed lane index [node * instances + i] is 32-bit; validation
  // rejects the overflow at the top-level field…
  expect_spec_error(
      R"({"name": "x", "aggregate": "count", "nodes": 1000000,
          "instances": 100000})",
      "spec: nodes * instances must fit the packed 32-bit lane index "
      "(<= 4294967295), got 100000000000");
  // …and at every instances sweep point, so a sweep can't smuggle one in.
  expect_spec_error(
      R"({"name": "x", "aggregate": "count", "nodes": 1000000,
          "sweep": {"axis": "instances",
                    "points": [{"value": 100000, "seed_point": 1}]}})",
      "spec: nodes * instances must fit the packed 32-bit lane index "
      "(<= 4294967295), got 100000000000 at sweep point 100000.000000");
  expect_spec_error(
      R"({"name": "x", "drift": {"kind": "none", "rate": 0.5}})",
      "spec: drift kind 'none' takes no parameters; leave rate, magnitude "
      "and start_cycle at 0");
  expect_spec_error(
      R"({"name": "x", "driver": "push_sum",
          "drift": {"kind": "linear", "rate": 0.01}})",
      "spec: drift requires driver 'cycle' or 'runtime', got driver "
      "'push_sum'");
  expect_spec_error(
      R"({"name": "x", "aggregate": "count",
          "drift": {"kind": "linear", "rate": 0.01}})",
      "spec: drift tracks a moving mean and requires aggregate 'average', "
      "got 'count'");
  expect_spec_error(
      R"({"name": "x", "cycles": 8,
          "drift": {"kind": "linear", "rate": 0.01, "start_cycle": 20}})",
      "spec: drift.start_cycle must be < cycles (a drift that starts "
      "after the run ends is a no-op), got 20 with cycles 8");
  expect_spec_error(
      R"({"name": "x", "drift": {"kind": "step"}})",
      "spec: drift.magnitude must be finite and non-zero for kind "
      "'step', got 0.000000");
  expect_spec_error(
      R"({"name": "x",
          "drift": {"kind": "step", "magnitude": 1.0, "rate": 0.5}})",
      "spec: drift.rate is only meaningful for kinds "
      "'linear'/'random_walk'; leave it at 0 for 'step'");
  expect_spec_error(
      R"({"name": "x", "drift": {"kind": "linear"}})",
      "spec: drift.rate must be finite, non-zero and within [-1e6,1e6] "
      "for kind 'linear', got 0.000000");
  expect_spec_error(
      R"({"name": "x", "drift": {"kind": "random_walk", "rate": 2000000}})",
      "spec: drift.rate must be finite, non-zero and within [-1e6,1e6] "
      "for kind 'random_walk', got 2000000.000000");
  expect_spec_error(
      R"({"name": "x",
          "drift": {"kind": "linear", "rate": 0.01, "magnitude": 1.0}})",
      "spec: drift.magnitude is only meaningful for kind 'step'; leave "
      "it at 0");
  expect_spec_error(
      R"({"name": "x", "service": {"epoch_cycles": 5}})",
      "spec: service parameters need service.pipeline = true; leave "
      "epoch_cycles and staleness_bound at 0");
  expect_spec_error(
      R"({"name": "x", "driver": "push_sum",
          "service": {"pipeline": true, "epoch_cycles": 5,
                      "staleness_bound": 6}})",
      "spec: service.pipeline requires driver 'cycle', got driver "
      "'push_sum'");
  expect_spec_error(
      R"({"name": "x", "aggregate": "count",
          "service": {"pipeline": true, "epoch_cycles": 5,
                      "staleness_bound": 6}})",
      "spec: service.pipeline publishes the scalar mean and requires "
      "aggregate 'average', got 'count'");
  expect_spec_error(
      R"({"name": "x", "cycles": 8,
          "service": {"pipeline": true, "epoch_cycles": 20,
                      "staleness_bound": 6}})",
      "spec: service.epoch_cycles must be in [1, cycles] (an epoch "
      "longer than the run never publishes), got 20 with cycles 8");
  expect_spec_error(
      R"({"name": "x", "service": {"pipeline": true, "epoch_cycles": 5}})",
      "spec: service.staleness_bound must be >= 1 (a freshly published "
      "snapshot is already 1 cycle old when queried)");
  expect_spec_error(
      R"({"name": "x",
          "service": {"pipeline": true, "epoch_cycles": 5,
                      "staleness_bound": 6},
          "failure": {"kind": "restart", "cycle": 4}})",
      "spec: service.pipeline replaces epoch restarts; failure.kind "
      "'restart' is incompatible");
}

TEST(SpecRoundTrip, AdversarialSpecsSurviveAndValidate) {
  ScenarioSpec spec =
      ScenarioSpec::average_peak("adv", 500, 20)
          .with_topology(TopologyConfig::newscast(30))
          .with_failure(FailureSpec::partition(5, 10, 4))
          .with_adversary(AdversarySpec::value_inject(0.1, 100.0))
          .with_combine(CombineSpec::trimmed_mean(0.25));
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);
  EXPECT_EQ(spec_from_json(to_json(spec, -1)), spec);

  spec.failure = FailureSpec::correlated_waves(4, 3, 0.05);
  spec.adversary = AdversarySpec::cache_pollute(0.2);
  spec.combine = CombineSpec::median_of_means(3, 12);
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);

  spec.failure = FailureSpec::restart(10);
  spec.adversary = AdversarySpec::none();
  spec.combine = CombineSpec::mean();
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);
}

TEST(SpecRoundTrip, DriftAndServiceSpecsSurviveAndValidate) {
  ScenarioSpec spec = ScenarioSpec::average_peak("svc", 500, 40)
                          .with_topology(TopologyConfig::newscast(30))
                          .with_drift(DriftSpec::linear(0.01))
                          .with_service(ServiceSpec::pipelined(10, 12));
  spec.init = InitKind::kUniform;
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);
  EXPECT_EQ(spec_from_json(to_json(spec, -1)), spec);

  spec.drift = DriftSpec::random_walk(0.05, 4);
  spec.failure = FailureSpec::churn_fraction(0.02);
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);

  spec.drift = DriftSpec::step(0.5, 20);
  spec.service = ServiceSpec::none();
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);
}

TEST(SpecRoundTrip, DefaultAdversaryAndCombineKeepCanonicalJsonUnchanged) {
  // The adversarial vocabulary must not move a single byte of any
  // pre-existing spec's canonical JSON (provenance hashes are pinned).
  const ScenarioSpec spec = ScenarioSpec::average_peak("plain", 100, 5);
  const std::string text = to_json(spec, -1);
  EXPECT_EQ(text.find("adversary"), std::string::npos) << text;
  EXPECT_EQ(text.find("combine"), std::string::npos) << text;
  EXPECT_EQ(text.find("waves"), std::string::npos) << text;
  EXPECT_EQ(text.find("duration"), std::string::npos) << text;
  EXPECT_EQ(text.find("components"), std::string::npos) << text;
}

TEST(SpecRoundTrip, DefaultDriftAndServiceKeepCanonicalJsonUnchanged) {
  // Same guarantee for the continuous-service vocabulary: a spec that
  // never mentions drift or service must serialize to the exact bytes it
  // did before those fields existed, or every pinned spec_hash breaks.
  const ScenarioSpec spec = ScenarioSpec::average_peak("plain", 100, 5);
  const std::string text = to_json(spec, -1);
  EXPECT_EQ(text.find("drift"), std::string::npos) << text;
  EXPECT_EQ(text.find("service"), std::string::npos) << text;
  EXPECT_EQ(text.find("epoch_cycles"), std::string::npos) << text;
  EXPECT_EQ(text.find("staleness"), std::string::npos) << text;
}

TEST(SpecValidation, AdversarialSweepAxes) {
  ScenarioSpec spec =
      ScenarioSpec::average_peak("x", 500, 20)
          .with_adversary(AdversarySpec::value_inject(0.0, 100.0));
  spec.with_sweep(SweepAxis::kByzFraction,
                  {{0.0, 1, ""}, {0.1, 2, ""}, {0.2, 3, ""}});
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec.at_point(1).adversary.fraction, 0.1);
  spec.sweep.points[1].value = 1.0;  // fractions live in [0,1)
  EXPECT_THROW(validate(spec), SpecError);
  spec.sweep.points[1].value = 0.1;
  spec.adversary = AdversarySpec::none();  // sweeping a no-op adversary
  EXPECT_THROW(validate(spec), SpecError);

  ScenarioSpec part = ScenarioSpec::average_peak("p", 500, 20)
                          .with_failure(FailureSpec::partition(5, 10, 2));
  part.with_sweep(SweepAxis::kPartitionComponents,
                  {{2.0, 1, ""}, {4.0, 2, ""}});
  EXPECT_NO_THROW(validate(part));
  EXPECT_EQ(part.at_point(1).failure.components, 4u);
  part.with_sweep(SweepAxis::kPartitionDuration, {{5.0, 1, ""}});
  EXPECT_NO_THROW(validate(part));
  EXPECT_EQ(part.at_point(0).failure.duration, 5u);
  part.failure = FailureSpec::none();  // axis without a partition failure
  EXPECT_THROW(validate(part), SpecError);
}

TEST(SpecOverride, AdversaryAndCombineKeysApply) {
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5);
  apply_override(spec, "adversary", "value_inject");
  apply_override(spec, "adversary_fraction", "0.1");
  apply_override(spec, "adversary_value", "100");
  apply_override(spec, "combine", "trimmed_mean");
  apply_override(spec, "combine_alpha", "0.25");
  apply_override(spec, "combine_window", "16");
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec.adversary.behavior, AdversarySpec::Behavior::kValueInject);
  EXPECT_EQ(spec.adversary.fraction, 0.1);
  EXPECT_EQ(spec.adversary.value, 100.0);
  EXPECT_EQ(spec.combine.kind, CombineSpec::Kind::kTrimmedMean);
  EXPECT_EQ(spec.combine.alpha, 0.25);
  EXPECT_EQ(spec.combine.window, 16u);
  apply_override(spec, "combine", "median_of_means");
  apply_override(spec, "combine_alpha", "0");
  apply_override(spec, "combine_groups", "3");
  EXPECT_NO_THROW(validate(spec));
  EXPECT_THROW(apply_override(spec, "combine_alpha", "lots"), SpecError);
  EXPECT_THROW(apply_override(spec, "combine", "mode"), SpecError);
  try {
    apply_override(spec, "combine_grops", "3");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'combine_groups'?"),
              std::string::npos)
        << e.what();
  }
}

TEST(SpecOverride, DriftAndServiceKeysApply) {
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 20);
  apply_override(spec, "drift", "random_walk");
  apply_override(spec, "drift_rate", "0.05");
  apply_override(spec, "drift_start_cycle", "4");
  apply_override(spec, "service_pipeline", "true");
  apply_override(spec, "service_epoch_cycles", "5");
  apply_override(spec, "service_staleness_bound", "6");
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec.drift.kind, DriftSpec::Kind::kRandomWalk);
  EXPECT_EQ(spec.drift.rate, 0.05);
  EXPECT_EQ(spec.drift.start_cycle, 4u);
  EXPECT_TRUE(spec.service.pipeline);
  EXPECT_EQ(spec.service.epoch_cycles, 5u);
  EXPECT_EQ(spec.service.staleness_bound, 6u);
  apply_override(spec, "drift", "step");
  apply_override(spec, "drift_rate", "0");
  apply_override(spec, "drift_magnitude", "0.5");
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec.drift.kind, DriftSpec::Kind::kStep);
  EXPECT_EQ(spec.drift.magnitude, 0.5);
  apply_override(spec, "service_pipeline", "false");
  apply_override(spec, "service_epoch_cycles", "0");
  apply_override(spec, "service_staleness_bound", "0");
  EXPECT_NO_THROW(validate(spec));
  EXPECT_THROW(apply_override(spec, "drift", "zigzag"), SpecError);
  EXPECT_THROW(apply_override(spec, "drift_rate", "fast"), SpecError);
  EXPECT_THROW(apply_override(spec, "service_pipeline", "maybe"), SpecError);
  try {
    apply_override(spec, "drift_rte", "0.1");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'drift_rate'?"),
              std::string::npos)
        << e.what();
  }
  try {
    apply_override(spec, "service_pipelin", "true");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(
        std::string(e.what()).find("did you mean 'service_pipeline'?"),
        std::string::npos)
        << e.what();
  }
}

TEST(SpecValidation, IntraRepAcceptsCountAndMultiInstance) {
  // The historical scalar-AVERAGE-only restriction is gone: intra_rep
  // runs COUNT and multi-instance workloads (and match_rounds with it).
  ScenarioSpec spec = ScenarioSpec::count("giant-count", 1000, 10, 8)
                          .with_topology(TopologyConfig::newscast(20))
                          .with_engine(EngineKind::kIntraRep)
                          .with_match_rounds(3);
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec_from_json(to_json(spec)), spec);  // match_rounds survives
  EXPECT_NO_THROW((void)resolve_engine(spec, {EngineKind::kIntraRep}));
}

TEST(SpecValidation, EngineOverrideCannotSilentlyDropMatchRounds) {
  // A CLI --set engine=… override bypasses validate()'s spec.engine
  // check; the resolver must reject the combination rather than let a
  // non-matching engine silently drop match_rounds and mislabel the
  // series.
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5)
                          .with_engine(EngineKind::kIntraRep)
                          .with_match_rounds(2);
  EXPECT_NO_THROW(validate(spec));
  EXPECT_NO_THROW((void)resolve_engine(spec, {EngineKind::kIntraRep}));
  EXPECT_THROW((void)resolve_engine(spec, {EngineKind::kSerial}), SpecError);
  EXPECT_THROW((void)resolve_engine(spec, {EngineKind::kRepParallel}),
               SpecError);
}

TEST(SpecOverride, UnknownKeysSuggestTheNearestValidKey) {
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5);
  try {
    apply_override(spec, "agregate", "count");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got 'agregate'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'aggregate'?"), std::string::npos)
        << what;
  }
  try {
    apply_override(spec, "match-rounds", "2");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'match_rounds'?"),
              std::string::npos)
        << e.what();
  }
  // Nothing close: no suggestion tail.
  try {
    apply_override(spec, "zzzzzzzzzz", "1");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"),
              std::string::npos)
        << e.what();
  }
  apply_override(spec, "match_rounds", "3");
  EXPECT_EQ(spec.match_rounds, 3u);
}

TEST(SpecValidation, InitSweepPointsRangeChecked) {
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5);
  spec.with_sweep(SweepAxis::kInit, {{7.0, 1, ""}});
  EXPECT_THROW(validate(spec), SpecError);
}

TEST(SpecValidation, SweepPointRangesCheckedPerAxis) {
  // at_point() casts point values to unsigned fields; validation must
  // reject anything that would be UB or degenerate before it gets there.
  const auto sweep_spec = [](SweepAxis axis, double value,
                             AggregateKind agg = AggregateKind::kAverage) {
    ScenarioSpec spec = agg == AggregateKind::kCount
                            ? ScenarioSpec::count("x", 100, 5)
                            : ScenarioSpec::average_peak("x", 100, 5);
    spec.with_sweep(axis, {{value, 1, ""}});
    return spec;
  };
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kNodes, -5.0)), SpecError);
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kNodes, 1e15)), SpecError);
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kNodes, 1.0)), SpecError);
  EXPECT_NO_THROW(validate(sweep_spec(SweepAxis::kNodes, 500.0)));
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kCacheSize, 0.0)), SpecError);
  EXPECT_THROW(
      validate(sweep_spec(SweepAxis::kCycles, -1.0, AggregateKind::kCount)),
      SpecError);
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kLossP, 1.5,
                                   AggregateKind::kCount)),
               SpecError);
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kChurnFraction, -0.1,
                                   AggregateKind::kCount)),
               SpecError);
  // instances sweeps only make sense for COUNT.
  EXPECT_THROW(validate(sweep_spec(SweepAxis::kInstances, 4.0)), SpecError);
  EXPECT_NO_THROW(
      validate(sweep_spec(SweepAxis::kInstances, 4.0, AggregateKind::kCount)));
}

TEST(SpecValidation, DriversRejectFieldsTheyWouldSilentlyDrop) {
  // push_sum never executes a failure plan; a churn spec must error, not
  // emit a clean no-failure series labeled as a churn run.
  ScenarioSpec ps = ScenarioSpec::average_peak("ps", 100, 5);
  ps.driver = DriverKind::kPushSum;
  ps.failure = FailureSpec::churn(50);
  EXPECT_THROW(validate(ps), SpecError);
  ps.failure = FailureSpec::none();
  ps.comm.link_failure = 0.9;  // push-sum models message loss only
  EXPECT_THROW(validate(ps), SpecError);
  ps.comm.link_failure = 0.0;
  ps.comm.message_loss = 0.2;
  EXPECT_NO_THROW(validate(ps));

  ScenarioSpec ev = ScenarioSpec::average_peak("ev", 100, 5);
  ev.driver = DriverKind::kEvent;
  EXPECT_NO_THROW(validate(ev));
  ev.failure = FailureSpec::sudden_death(3, 0.5);
  EXPECT_THROW(validate(ev), SpecError);
  ev.failure = FailureSpec::none();
  ev.topology = TopologyConfig::random_k_out(20);  // event ignores topology
  EXPECT_THROW(validate(ev), SpecError);
  ev.topology = TopologyConfig{};
  ev.init = InitKind::kUniform;  // event world seeds its own values
  EXPECT_THROW(validate(ev), SpecError);
}

// ------------------------------------------------------------ overrides

TEST(SpecOverride, ScalarFieldsApply) {
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5);
  apply_override(spec, "nodes", "2048");
  EXPECT_EQ(spec.nodes, 2048u);
  apply_override(spec, "engine", "serial");
  EXPECT_EQ(spec.engine, EngineKind::kSerial);
  apply_override(spec, "seed", "0xdead");
  EXPECT_EQ(spec.seed, 0xdeadu);
  apply_override(spec, "init", "bimodal");
  EXPECT_EQ(spec.init, InitKind::kBimodal);
  EXPECT_THROW(apply_override(spec, "nodes", "lots"), SpecError);
  EXPECT_THROW(apply_override(spec, "warp", "9"), SpecError);
}

TEST(SpecOverride, CombinationsValidateAsAWholeNotPerSet) {
  // `instances=4` is invalid for AVERAGE but fine once `aggregate=count`
  // lands too — overrides must not be order-sensitive, so apply_override
  // defers validation to one validate() after the last --set.
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5);
  apply_override(spec, "instances", "4");   // transiently invalid
  apply_override(spec, "aggregate", "count");
  EXPECT_NO_THROW(validate(spec));
  EXPECT_EQ(spec.instances, 4u);
  // A combination that stays invalid is caught by the final validate.
  apply_override(spec, "nodes", "1");
  EXPECT_THROW(validate(spec), SpecError);
}

TEST(SpecOverride, EngineKindParserSharedWithCli) {
  EXPECT_EQ(engine_kind_from_string("intra_rep"), EngineKind::kIntraRep);
  EXPECT_THROW(engine_kind_from_string("warp"), SpecError);
  EXPECT_EQ(parse_u64_field("seed", "0x10"), 16u);
  EXPECT_THROW(parse_u64_field("seed", "ten"), SpecError);
  // std::stoull would wrap "-1" to 2^64-1; the parser must reject signs.
  EXPECT_THROW(parse_u64_field("reps", "-1"), SpecError);
  EXPECT_THROW(parse_u64_field("reps", "+3"), SpecError);
  EXPECT_THROW(parse_u64_field("reps", ""), SpecError);
}

TEST(SpecValidation, InitSweepRequiresAverage) {
  // COUNT never reads spec.init; an init sweep over COUNT would emit
  // identical rows labeled as different distributions.
  ScenarioSpec spec = ScenarioSpec::count("x", 100, 5);
  spec.with_sweep(SweepAxis::kInit, {{0.0, 1, "peak"}, {1.0, 2, "uniform"}});
  EXPECT_THROW(validate(spec), SpecError);
}

// --------------------------------------------------------- spec surface
//
// The descriptor table (spec_fields.hpp) is the single source of truth
// for the spec surface; these tests pin every row to a golden SpecError
// and a --set round-trip, and assert the hand-maintained case tables
// cover the generated table EXACTLY — adding a field without extending
// the cases here fails the coverage assertion (and
// tools/spec_surface_lint.py fails CI if the dotted path never appears
// in this file at all).

struct FieldErrorCase {
  const char* json_path;  ///< dotted path, must match a descriptor row
  const char* json;       ///< spec JSON with that one field mistyped
  const char* expected;   ///< exact SpecError message
};

TEST(SpecSurface, EveryDescriptorFieldHasAGoldenWrongTypeError) {
  static const FieldErrorCase kCases[] = {
      // ---- top level ---------------------------------------------------
      {"name", R"({"name": 7})", "spec: name must be a string"},
      {"title", R"({"name": "x", "title": 7})",
       "spec: title must be a string"},
      {"driver", R"({"name": "x", "driver": "zzz"})",
       "spec: driver must be one of cycle|event|push_sum|runtime, got "
       "'zzz'"},
      {"aggregate", R"({"name": "x", "aggregate": "zzz"})",
       "spec: aggregate must be one of average|count, got 'zzz'"},
      {"instances", R"({"name": "x", "instances": "many"})",
       "spec: instances must be a non-negative integer"},
      {"init", R"({"name": "x", "init": "zzz"})",
       "spec: init must be one of peak|uniform|bimodal|exponential, got "
       "'zzz'"},
      {"nodes", R"({"name": "x", "nodes": "many"})",
       "spec: nodes must be a non-negative integer"},
      {"cycles", R"({"name": "x", "cycles": "many"})",
       "spec: cycles must be a non-negative integer"},
      {"reps", R"({"name": "x", "reps": "many"})",
       "spec: reps must be a non-negative integer"},
      {"seed", R"({"name": "x", "seed": "0x5eed"})",
       "spec: seed must be a non-negative integer"},
      {"topology", R"({"name": "x", "topology": 7})",
       "spec: topology must be an object"},
      {"failure", R"({"name": "x", "failure": 7})",
       "spec: failure must be an object"},
      {"comm", R"({"name": "x", "comm": 7})",
       "spec: comm must be an object"},
      {"adversary", R"({"name": "x", "adversary": 7})",
       "spec: adversary must be an object"},
      {"combine", R"({"name": "x", "combine": 7})",
       "spec: combine must be an object"},
      {"drift", R"({"name": "x", "drift": 7})",
       "spec: drift must be an object"},
      {"service", R"({"name": "x", "service": 7})",
       "spec: service must be an object"},
      {"runtime", R"({"name": "x", "runtime": 7})",
       "spec: runtime must be an object"},
      {"atomic_exchanges", R"({"name": "x", "atomic_exchanges": 7})",
       "spec: atomic_exchanges must be a boolean"},
      {"engine", R"({"name": "x", "engine": "zzz"})",
       "spec: engine must be one of auto|serial|rep_parallel|intra_rep, "
       "got 'zzz'"},
      {"threads", R"({"name": "x", "threads": "many"})",
       "spec: threads must be a non-negative integer"},
      {"shards", R"({"name": "x", "shards": "many"})",
       "spec: shards must be a non-negative integer"},
      {"match_rounds", R"({"name": "x", "match_rounds": "many"})",
       "spec: match_rounds must be a non-negative integer"},
      {"sweep", R"({"name": "x", "sweep": 7})",
       "spec: sweep must be an object"},
      // ---- topology ----------------------------------------------------
      {"topology.kind", R"({"name": "x", "topology": {"kind": "zzz"}})",
       "spec: topology.kind must be one of "
       "complete|random_k_out|ring_lattice|watts_strogatz|barabasi_albert|"
       "newscast, got 'zzz'"},
      {"topology.degree", R"({"name": "x", "topology": {"degree": "k"}})",
       "spec: topology.degree must be a non-negative integer"},
      {"topology.beta", R"({"name": "x", "topology": {"beta": "small"}})",
       "spec: topology.beta must be a number"},
      {"topology.cache_size",
       R"({"name": "x", "topology": {"cache_size": "big"}})",
       "spec: topology.cache_size must be a non-negative integer"},
      // ---- failure -----------------------------------------------------
      {"failure.kind", R"({"name": "x", "failure": {"kind": "zzz"}})",
       "spec: failure.kind must be one of "
       "none|proportional_crash|sudden_death|churn|churn_fraction|"
       "constant_crash|correlated_waves|partition|restart, got 'zzz'"},
      {"failure.p", R"({"name": "x", "failure": {"p": 1.5}})",
       "spec: failure.p must be a probability in [0,1], got 1.500000"},
      {"failure.cycle", R"({"name": "x", "failure": {"cycle": "soon"}})",
       "spec: failure.cycle must be a non-negative integer"},
      {"failure.fraction", R"({"name": "x", "failure": {"fraction": 1.5}})",
       "spec: failure.fraction must be a probability in [0,1], got "
       "1.500000"},
      {"failure.rate", R"({"name": "x", "failure": {"rate": "fast"}})",
       "spec: failure.rate must be a non-negative integer"},
      {"failure.waves", R"({"name": "x", "failure": {"waves": "three"}})",
       "spec: failure.waves must be a non-negative integer"},
      {"failure.duration",
       R"({"name": "x", "failure": {"duration": "long"}})",
       "spec: failure.duration must be a non-negative integer"},
      {"failure.components",
       R"({"name": "x", "failure": {"components": "two"}})",
       "spec: failure.components must be a non-negative integer"},
      // ---- comm --------------------------------------------------------
      {"comm.link_failure", R"({"name": "x", "comm": {"link_failure": 1.5}})",
       "spec: comm.link_failure must be a probability in [0,1], got "
       "1.500000"},
      {"comm.message_loss", R"({"name": "x", "comm": {"message_loss": 1.5}})",
       "spec: comm.message_loss must be a probability in [0,1], got "
       "1.500000"},
      // ---- adversary ---------------------------------------------------
      {"adversary.behavior",
       R"({"name": "x", "adversary": {"behavior": "zzz"}})",
       "spec: adversary.behavior must be one of "
       "none|value_inject|always_max|cache_pollute, got 'zzz'"},
      {"adversary.fraction",
       R"({"name": "x", "adversary": {"fraction": "some"}})",
       "spec: adversary.fraction must be a number"},
      {"adversary.value", R"({"name": "x", "adversary": {"value": "big"}})",
       "spec: adversary.value must be a number"},
      // ---- combine -----------------------------------------------------
      {"combine.kind", R"({"name": "x", "combine": {"kind": "zzz"}})",
       "spec: combine.kind must be one of mean|trimmed_mean|median_of_means, "
       "got 'zzz'"},
      {"combine.alpha", R"({"name": "x", "combine": {"alpha": "some"}})",
       "spec: combine.alpha must be a number"},
      {"combine.groups", R"({"name": "x", "combine": {"groups": "few"}})",
       "spec: combine.groups must be a non-negative integer"},
      {"combine.window", R"({"name": "x", "combine": {"window": "wide"}})",
       "spec: combine.window must be a non-negative integer"},
      // ---- drift -------------------------------------------------------
      {"drift.kind", R"({"name": "x", "drift": {"kind": "zzz"}})",
       "spec: drift.kind must be one of none|linear|random_walk|step, got "
       "'zzz'"},
      {"drift.rate", R"({"name": "x", "drift": {"rate": "slow"}})",
       "spec: drift.rate must be a number"},
      {"drift.magnitude", R"({"name": "x", "drift": {"magnitude": "big"}})",
       "spec: drift.magnitude must be a number"},
      {"drift.start_cycle",
       R"({"name": "x", "drift": {"start_cycle": "soon"}})",
       "spec: drift.start_cycle must be a non-negative integer"},
      // ---- service -----------------------------------------------------
      {"service.pipeline", R"({"name": "x", "service": {"pipeline": 7}})",
       "spec: service.pipeline must be a boolean"},
      {"service.epoch_cycles",
       R"({"name": "x", "service": {"epoch_cycles": "long"}})",
       "spec: service.epoch_cycles must be a non-negative integer"},
      {"service.staleness_bound",
       R"({"name": "x", "service": {"staleness_bound": "low"}})",
       "spec: service.staleness_bound must be a non-negative integer"},
      // ---- runtime -----------------------------------------------------
      {"runtime.workers", R"({"name": "x", "runtime": {"workers": "few"}})",
       "spec: runtime.workers must be a non-negative integer"},
      {"runtime.wheel_slots",
       R"({"name": "x", "runtime": {"wheel_slots": "many"}})",
       "spec: runtime.wheel_slots must be a non-negative integer"},
      {"runtime.delta_us",
       R"({"name": "x", "runtime": {"delta_us": "short"}})",
       "spec: runtime.delta_us must be a non-negative integer"},
      {"runtime.timeout_ms",
       R"({"name": "x", "runtime": {"timeout_ms": "long"}})",
       "spec: runtime.timeout_ms must be a non-negative integer"},
      {"runtime.transport",
       R"({"name": "x", "runtime": {"transport": "zzz"}})",
       "spec: runtime.transport must be one of loopback|socket, got 'zzz'"},
      {"runtime.processes",
       R"({"name": "x", "runtime": {"processes": "two"}})",
       "spec: runtime.processes must be a non-negative integer"},
      {"runtime.process_index",
       R"({"name": "x", "runtime": {"process_index": "one"}})",
       "spec: runtime.process_index must be a non-negative integer"},
      {"runtime.port_base",
       R"({"name": "x", "runtime": {"port_base": "high"}})",
       "spec: runtime.port_base must be a non-negative integer"},
      {"runtime.latency", R"({"name": "x", "runtime": {"latency": "zzz"}})",
       "spec: runtime.latency must be one of "
       "none|fixed|uniform|exponential, got 'zzz'"},
      {"runtime.delay_lo_us",
       R"({"name": "x", "runtime": {"delay_lo_us": "low"}})",
       "spec: runtime.delay_lo_us must be a non-negative integer"},
      {"runtime.delay_hi_us",
       R"({"name": "x", "runtime": {"delay_hi_us": "high"}})",
       "spec: runtime.delay_hi_us must be a non-negative integer"},
      // ---- sweep -------------------------------------------------------
      {"sweep.axis", R"({"name": "x", "sweep": {"axis": "zzz"}})",
       "spec: sweep.axis must be one of "
       "none|nodes|beta|cache_size|crash_p|death_cycle|churn_fraction|"
       "link_p|loss_p|instances|cycles|init|atomicity|byz_fraction|"
       "partition_components|partition_duration, got 'zzz'"},
      {"sweep.points", R"({"name": "x", "sweep": {"points": 7}})",
       "spec: sweep.points must be an array"},
      {"sweep.points.value",
       R"({"name": "x", "sweep": {"points": [{"value": "big"}]}})",
       "spec: sweep.points.value must be a number"},
      {"sweep.points.seed_point",
       R"({"name": "x", "sweep": {"points": [{"seed_point": "one"}]}})",
       "spec: sweep.points.seed_point must be a non-negative integer"},
      {"sweep.points.label",
       R"({"name": "x", "sweep": {"points": [{"label": 7}]}})",
       "spec: sweep.points.label must be a string"},
  };
  std::set<std::string> covered;
  for (const FieldErrorCase& c : kCases) {
    SCOPED_TRACE(c.json_path);
    expect_spec_error(c.json, c.expected);
    covered.insert(c.json_path);
  }
  // Exactness both ways: a descriptor row without a case, or a case for
  // a path no longer in the table, fails here.
  std::set<std::string> table;
  for (const SpecFieldDescriptor& d : spec_field_table()) {
    table.insert(d.json_path);
  }
  EXPECT_EQ(covered, table);
}

TEST(SpecSurface, EveryGeneratedSetKeyRoundTrips) {
  // One sample value per --set key, each chosen to differ from the
  // default so the override observably lands. Sequence-compared against
  // spec_set_keys() so this table can never drift from the generated
  // dispatch (order included — the order is the supported-keys list).
  struct SetKeyCase {
    const char* key;
    const char* value;
  };
  static const SetKeyCase kCases[] = {
      {"name", "y"},
      {"title", "a title"},
      {"driver", "event"},
      {"aggregate", "count"},
      {"instances", "2"},
      {"init", "uniform"},
      {"nodes", "123"},
      {"cycles", "7"},
      {"reps", "2"},
      {"seed", "0xabc"},
      {"atomic_exchanges", "false"},
      {"engine", "serial"},
      {"threads", "2"},
      {"shards", "2"},
      {"match_rounds", "2"},
      {"adversary", "always_max"},
      {"adversary_fraction", "0.1"},
      {"adversary_value", "5"},
      {"combine", "trimmed_mean"},
      {"combine_alpha", "0.1"},
      {"combine_groups", "2"},
      {"combine_window", "9"},
      {"drift", "linear"},
      {"drift_rate", "0.5"},
      {"drift_magnitude", "1.5"},
      {"drift_start_cycle", "2"},
      {"service_pipeline", "true"},
      {"service_epoch_cycles", "3"},
      {"service_staleness_bound", "4"},
      {"runtime_workers", "2"},
      {"runtime_wheel_slots", "9"},
      {"runtime_delta_us", "5"},
      {"runtime_timeout_ms", "100"},
      {"runtime_transport", "socket"},
      {"runtime_processes", "2"},
      {"runtime_process_index", "1"},
      {"runtime_port_base", "2000"},
      {"runtime_latency", "fixed"},
      {"runtime_delay_lo_us", "10"},
      {"runtime_delay_hi_us", "20"},
  };
  const std::vector<const char*>& keys = spec_set_keys();
  ASSERT_EQ(std::size(kCases), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_STREQ(kCases[i].key, keys[i]) << "at index " << i;
  }
  for (const SetKeyCase& c : kCases) {
    SCOPED_TRACE(c.key);
    ScenarioSpec spec;  // default-constructed; overrides don't validate
    EXPECT_NO_THROW(apply_override(spec, c.key, c.value));
    EXPECT_NE(spec, ScenarioSpec{}) << "--set " << c.key
                                    << " did not change the spec";
  }
}

TEST(SpecSurface, UnknownSetKeyErrorNamesExactlyTheGeneratedKeys) {
  // The "supports ..." list is built from spec_set_keys() at runtime;
  // regenerating the expectation from the same table means this golden
  // can never drift when a field is added.
  std::string supported;
  for (const char* k : spec_set_keys()) {
    if (!supported.empty()) supported += "|";
    supported += k;
  }
  ScenarioSpec spec = ScenarioSpec::average_peak("x", 100, 5);
  try {
    apply_override(spec, "zzzzzzzzzz", "1");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()),
              "spec: --set supports " + supported + ", got 'zzzzzzzzzz'");
  }
}

TEST(SpecSurface, FieldTableIsWellFormed) {
  // No duplicate dotted paths, no duplicate --set keys, and every
  // settable row's key is in the generated key list (and vice versa —
  // spec_set_keys() is exactly the SET rows, in table order).
  std::set<std::string> paths;
  std::vector<std::string> set_keys_from_table;
  for (const SpecFieldDescriptor& d : spec_field_table()) {
    EXPECT_TRUE(paths.insert(d.json_path).second)
        << "duplicate json path " << d.json_path;
    if (std::string(d.set_key) != "") {
      set_keys_from_table.push_back(d.set_key);
    }
  }
  std::vector<std::string> generated;
  for (const char* k : spec_set_keys()) generated.emplace_back(k);
  // The descriptor table walks groups in JSON order while the set-key
  // list walks the settable groups only; contents must match as sets
  // and stay duplicate-free.
  std::set<std::string> a(set_keys_from_table.begin(),
                          set_keys_from_table.end());
  std::set<std::string> b(generated.begin(), generated.end());
  EXPECT_EQ(set_keys_from_table.size(), a.size()) << "duplicate set keys";
  EXPECT_EQ(generated.size(), b.size()) << "duplicate generated set keys";
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- hash

TEST(SpecHash, StableAndSensitive) {
  ScenarioSpec a = ScenarioSpec::average_peak("hash", 100, 5);
  ScenarioSpec b = a;
  EXPECT_EQ(spec_hash(a), spec_hash(b));
  EXPECT_EQ(spec_hash_hex(a).size(), 16u);
  b.seed ^= 1;
  EXPECT_NE(spec_hash(a), spec_hash(b));
  b = a;
  b.comm.message_loss = 0.25;
  EXPECT_NE(spec_hash(a), spec_hash(b));
}

// -------------------------------------------------- strict env knobs

class EnvKnobTest : public ::testing::Test {
protected:
  void TearDown() override {
    ::unsetenv("GOSSIP_THREADS");
    ::unsetenv("GOSSIP_SHARDS");
    ::unsetenv("GOSSIP_FULL");
    ::unsetenv("GOSSIP_N");
    ::unsetenv("GOSSIP_REPS");
    ::unsetenv("GOSSIP_SEED");
  }
};

TEST_F(EnvKnobTest, MalformedThreadsIsAOneLineError) {
  ::setenv("GOSSIP_THREADS", "1O", 1);  // the typo that motivated this
  try {
    (void)runner_threads();
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    EXPECT_STREQ(e.what(),
                 "GOSSIP_THREADS: expected a positive integer, got '1O'");
  }
}

TEST_F(EnvKnobTest, ZeroThreadsRejected) {
  ::setenv("GOSSIP_THREADS", "0", 1);
  EXPECT_THROW((void)runner_threads(), EnvError);
}

TEST_F(EnvKnobTest, ValidThreadsStillResolve) {
  ::setenv("GOSSIP_THREADS", "6", 1);
  EXPECT_EQ(runner_threads(), 6u);
}

TEST_F(EnvKnobTest, MalformedShardsIsAOneLineError) {
  ::setenv("GOSSIP_SHARDS", "-4", 1);
  try {
    (void)runner_shards();
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    EXPECT_STREQ(e.what(),
                 "GOSSIP_SHARDS: expected a positive integer, got '-4'");
  }
}

TEST_F(EnvKnobTest, ZeroShardsRejected) {
  ::setenv("GOSSIP_SHARDS", "0", 1);
  EXPECT_THROW((void)runner_shards(), EnvError);
}

TEST_F(EnvKnobTest, MalformedScaleKnobsAreOneLineErrors) {
  // The same strictness as THREADS/SHARDS: GOSSIP_N=1O00 must not
  // quietly simulate a single node.
  ::setenv("GOSSIP_N", "1O00", 1);
  EXPECT_THROW((void)bench_scale(100, 2, 1000, 5), EnvError);
  ::unsetenv("GOSSIP_N");
  ::setenv("GOSSIP_REPS", "0", 1);
  EXPECT_THROW((void)bench_scale(100, 2, 1000, 5), EnvError);
  ::unsetenv("GOSSIP_REPS");
  ::setenv("GOSSIP_SEED", "5eed", 1);  // hex without 0x is malformed
  EXPECT_THROW((void)bench_scale(100, 2, 1000, 5), EnvError);
  ::setenv("GOSSIP_SEED", "0", 1);  // ...but zero is a valid seed
  EXPECT_EQ(bench_scale(100, 2, 1000, 5).seed, 0u);
  ::unsetenv("GOSSIP_SEED");
}

TEST_F(EnvKnobTest, MalformedFullIsAOneLineError) {
  ::setenv("GOSSIP_FULL", "ture", 1);
  try {
    (void)bench_scale(100, 2, 1000, 5);
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    EXPECT_STREQ(
        e.what(),
        "GOSSIP_FULL: expected a boolean (1/0/true/false/on/off), got "
        "'ture'");
  }
}

TEST_F(EnvKnobTest, FullAcceptsTheStrictVocabulary) {
  for (const char* yes : {"1", "true", "on", "YES"}) {
    ::setenv("GOSSIP_FULL", yes, 1);
    EXPECT_TRUE(bench_scale(100, 2, 1000, 5).full) << yes;
  }
  for (const char* no : {"0", "false", "OFF", "no"}) {
    ::setenv("GOSSIP_FULL", no, 1);
    EXPECT_FALSE(bench_scale(100, 2, 1000, 5).full) << no;
  }
}

// ------------------------------------------------------------- raw JSON

TEST(JsonModule, DuplicateObjectKeysRejected) {
  // First-wins lookup vs last-wins tooling must never disagree about
  // what a spec says: duplicates are a parse error.
  try {
    (void)json::parse(R"({"nodes": 400, "nodes": 100000})");
    FAIL() << "expected json::Error";
  } catch (const json::Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key 'nodes'"),
              std::string::npos);
  }
}

TEST(JsonModule, ParseErrorsCarryOffsets) {
  EXPECT_THROW((void)json::parse("{\"a\": }"), json::Error);
  EXPECT_THROW((void)json::parse("[1, 2"), json::Error);
  EXPECT_THROW((void)json::parse("{\"a\": 1} trailing"), json::Error);
  try {
    (void)json::parse("{\"key\" 1}");
    FAIL();
  } catch (const json::Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected ':' after object key"),
              std::string::npos);
  }
}

TEST(JsonModule, NumbersKeepIntVsDoubleDistinction) {
  const json::Value v = json::parse(R"({"i": 42, "d": 42.0, "s": 1e3})");
  EXPECT_EQ(v.find("i")->kind(), json::Kind::kInt);
  EXPECT_EQ(v.find("d")->kind(), json::Kind::kDouble);
  EXPECT_EQ(v.find("s")->kind(), json::Kind::kDouble);
  EXPECT_EQ(v.find("i")->as_u64(), 42u);
  EXPECT_EQ(v.find("d")->as_double(), 42.0);
  // Dumping preserves the distinction.
  EXPECT_EQ(json::parse(v.dump()), v);
}

TEST(JsonModule, StringsEscapeAndRoundTrip) {
  json::Value v = json::Object{};
  v.set("s", std::string("line\n\"quote\"\ttab"));
  EXPECT_EQ(json::parse(v.dump()), v);
}

}  // namespace
}  // namespace gossip::experiment
