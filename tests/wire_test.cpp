// Tests for src/proto wire format: round-trips for every message type
// (including randomized content), malformed-input rejection, and the
// paper's message-size claims (§7.3 / §4.4).
#include <gtest/gtest.h>

#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "proto/wire.hpp"

namespace gossip::proto {
namespace {

template <typename T>
T roundtrip(const T& in) {
  const auto bytes = encode(Message{in});
  EXPECT_EQ(bytes.size(), encoded_size(Message{in}));
  const Message out = decode(bytes);
  return std::get<T>(out);
}

TEST(Wire, AggPushRoundTrip) {
  AggPush in{.epoch = 42, .request_id = 7, .value = -3.25};
  const AggPush out = roundtrip(in);
  EXPECT_EQ(out.epoch, 42u);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_DOUBLE_EQ(out.value, -3.25);
}

TEST(Wire, AggReplyRoundTripBothRefusedStates) {
  for (bool refused : {false, true}) {
    AggReply in{.epoch = 1, .request_id = 2, .value = 0.5,
                .refused = refused};
    EXPECT_EQ(roundtrip(in).refused, refused);
  }
}

TEST(Wire, NewsPushRoundTripPreservesEntries) {
  NewsPush in;
  in.fresh = {NodeId(9), 1234};
  for (std::uint32_t i = 0; i < 30; ++i) {
    in.entries.push_back({NodeId(i), 1000 + i});
  }
  const NewsPush out = roundtrip(in);
  EXPECT_EQ(out.fresh.id, NodeId(9));
  EXPECT_EQ(out.fresh.timestamp, 1234u);
  ASSERT_EQ(out.entries.size(), 30u);
  EXPECT_EQ(out.entries, in.entries);
}

TEST(Wire, NewsReplyEmptyCache) {
  NewsReply in;
  in.fresh = {NodeId(1), 5};
  const NewsReply out = roundtrip(in);
  EXPECT_TRUE(out.entries.empty());
}

TEST(Wire, InvalidFreshIdSurvives) {
  NewsPush in;
  in.fresh = {NodeId::invalid(), 0};
  const NewsPush out = roundtrip(in);
  EXPECT_FALSE(out.fresh.id.is_valid());
}

TEST(Wire, OversizedTimestampRejected) {
  // The wire keeps its historical 64-bit timestamp field, but the packed
  // in-memory CacheEntry carries a 32-bit logical clock — a larger wire
  // value is a malformed message, not a silent truncation. Layout of a
  // NewsPush: tag u8, fresh id u32, fresh timestamp u64 little-endian.
  NewsPush in;
  in.fresh = {NodeId(3), 17};
  auto bytes = encode(Message{in});
  bytes[1 + 4 + 4] = std::byte{1};  // timestamp bit 32 -> 2^32 + 17
  EXPECT_THROW(decode(bytes), require_error);
}

TEST(Wire, RandomizedRoundTrips) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    switch (rng.below(4)) {
      case 0: {
        AggPush m{rng(), rng(), rng.uniform(-1e9, 1e9)};
        const auto out = roundtrip(m);
        EXPECT_EQ(out.epoch, m.epoch);
        EXPECT_DOUBLE_EQ(out.value, m.value);
        break;
      }
      case 1: {
        AggReply m{rng(), rng(), rng.uniform(-1.0, 1.0), rng.chance(0.5)};
        const auto out = roundtrip(m);
        EXPECT_EQ(out.request_id, m.request_id);
        break;
      }
      default: {
        // Timestamps draw from the full packed 32-bit logical clock
        // (CacheEntry::kMaxTimestamp); larger wire values are malformed
        // by contract and rejected — see OversizedTimestampRejected.
        constexpr std::uint64_t kClock =
            membership::CacheEntry::kMaxTimestamp + 1;
        NewsPush m;
        m.fresh = {NodeId(static_cast<std::uint32_t>(rng.below(1000))),
                   rng.below(kClock)};
        const auto n = rng.below(50);
        for (std::uint64_t i = 0; i < n; ++i) {
          m.entries.push_back(
              {NodeId(static_cast<std::uint32_t>(rng.below(100000))),
               rng.below(kClock)});
        }
        EXPECT_EQ(roundtrip(m).entries, m.entries);
        break;
      }
    }
  }
}

TEST(Wire, SpecialDoublesSurvive) {
  for (double v : {0.0, -0.0, 1e308, 5e-324,
                   std::numeric_limits<double>::infinity()}) {
    AggPush in{1, 2, v};
    const auto out = roundtrip(in);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.value),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Wire, RejectsEmptyAndUnknownTag) {
  EXPECT_THROW((void)decode({}), require_error);
  const std::vector<std::byte> bad{std::byte{0x7f}};
  EXPECT_THROW((void)decode(bad), require_error);
}

TEST(Wire, RejectsTruncation) {
  const auto bytes = encode(Message{AggPush{1, 2, 3.0}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_THROW(
        (void)decode(std::span<const std::byte>(bytes.data(), cut)),
        require_error)
        << "cut at " << cut;
  }
}

TEST(Wire, RejectsTrailingBytes) {
  auto bytes = encode(Message{AggPush{1, 2, 3.0}});
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)decode(bytes), require_error);
}

TEST(Wire, RejectsOversizedEntryCount) {
  // Hand-craft a NewsPush claiming 2^20 entries.
  std::vector<std::byte> bytes;
  bytes.push_back(std::byte{3});                       // NewsPush tag
  for (int i = 0; i < 12; ++i) bytes.push_back(std::byte{0});  // fresh
  const std::uint32_t count = 1u << 20;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::byte>((count >> (8 * i)) & 0xff));
  }
  EXPECT_THROW((void)decode(bytes), require_error);
}

TEST(Wire, BitFlipCorpusIsRejectedOrBenign) {
  // Single-bit corruption over every bit of every message type: decode
  // must either reject with require_error or produce a structurally
  // valid message that re-encodes within the original frame size. No
  // other exception, no crash, no growth — the deployment runtime feeds
  // decode() straight from the socket, so this is its safety contract.
  NewsPush news;
  news.fresh = {NodeId(9), 77};
  for (std::uint32_t i = 0; i < 30; ++i) news.entries.push_back({NodeId(i), i});
  const std::vector<Message> corpus{
      Message{AggPush{3, 0x1234567887654321ull, 1.5}},
      Message{AggReply{1, 42, -0.25, true}},
      Message{news},
      Message{NewsReply{{{NodeId(5), 6}}, {NodeId(7), 8}}},
  };
  for (const Message& message : corpus) {
    const auto original = encode(message);
    for (std::size_t bit = 0; bit < original.size() * 8; ++bit) {
      auto mutated = original;
      mutated[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      try {
        const Message out = decode(mutated);
        EXPECT_LE(encoded_size(out), mutated.size())
            << "decoded frame grew after flipping bit " << bit;
      } catch (const require_error&) {
        // rejected — the expected outcome for structural bits
      }
    }
  }
}

TEST(Wire, RandomizedTruncationRejectedForEveryType) {
  // Every strict prefix of every message type must be rejected — not
  // just the AggPush sweep above. Randomized content keeps the sweep
  // from overfitting one encoding.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    NewsPush news;
    news.fresh = {NodeId(static_cast<std::uint32_t>(rng.below(1000))), 3};
    const auto n = rng.below(40);
    for (std::uint64_t i = 0; i < n; ++i) {
      news.entries.push_back(
          {NodeId(static_cast<std::uint32_t>(rng.below(1000))),
           rng.below(membership::CacheEntry::kMaxTimestamp + 1)});
    }
    const std::vector<Message> corpus{
        Message{AggPush{rng(), rng(), rng.uniform(-1.0, 1.0)}},
        Message{AggReply{rng(), rng(), 0.0, rng.chance(0.5)}},
        Message{news},
    };
    for (const Message& message : corpus) {
      const auto bytes = encode(message);
      for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_THROW(
            (void)decode(std::span<const std::byte>(bytes.data(), cut)),
            require_error)
            << "cut at " << cut;
      }
    }
  }
}

TEST(Wire, PaperMessageSizeClaims) {
  // §4.4/§7.3 cost model: a full NEWSCAST exchange message with c = 30
  // entries, and the aggregation pair, are each "a few hundred bytes" at
  // most.
  NewsPush news;
  news.fresh = {NodeId(1), 1};
  for (std::uint32_t i = 0; i < 30; ++i) news.entries.push_back({NodeId(i), 1});
  const std::size_t news_size = encoded_size(Message{news});
  EXPECT_GT(news_size, 300u);
  EXPECT_LT(news_size, 500u);  // 377 bytes with c=30

  EXPECT_EQ(encoded_size(Message{AggPush{}}), 25u);
  EXPECT_EQ(encoded_size(Message{AggReply{}}), 26u);
  // 20 concurrent COUNT instances at 8 bytes each would add 160 bytes to
  // a push — still "a few hundred bytes" per §7.3.
  EXPECT_LT(25u + 20u * 8u, 300u);
}

TEST(Wire, PaperPerCycleByteBudget) {
  // §7.3 pins the whole per-cycle cost: one NEWSCAST cache exchange at
  // c = 30 (377 bytes) plus one aggregation push for each of 20
  // concurrent instances (25 bytes each) stays within a 1 KiB budget per
  // initiated exchange — the "modest communication cost" claim the
  // deployment runtime's bytes-on-wire counters measure live.
  NewsPush news;
  news.fresh = {NodeId(1), 1};
  for (std::uint32_t i = 0; i < 30; ++i) news.entries.push_back({NodeId(i), 1});
  const std::size_t cycle_bytes =
      encoded_size(Message{news}) + 20u * encoded_size(Message{AggPush{}});
  EXPECT_EQ(cycle_bytes, 377u + 20u * 25u);  // 877
  EXPECT_LT(cycle_bytes, 1024u);
}

}  // namespace
}  // namespace gossip::proto
