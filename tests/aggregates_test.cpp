// End-to-end tests of the full §5 aggregate family on the cycle driver:
// MIN/MAX as epidemic broadcast, GEOMETRIC-MEAN with product conservation,
// derived SUM/PRODUCT/VARIANCE pipelines, plus a parameterized invariant
// matrix across topologies × communication-failure models.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/count.hpp"
#include "core/derived.hpp"
#include "core/update.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {
namespace {

SimConfig config_with(core::UpdateKind kind, std::uint32_t n,
                      std::uint32_t cycles) {
  SimConfig cfg;
  cfg.nodes = n;
  cfg.cycles = cycles;
  cfg.topology = TopologyConfig::newscast(20);
  cfg.update = kind;
  return cfg;
}

/// COUNT through the Engine facade (raw seed, newscast c=20 as above).
RunResult count_via_engine(std::uint32_t n, std::uint32_t cycles,
                           std::uint64_t seed) {
  ScenarioSpec spec = ScenarioSpec::count("test", n, cycles)
                          .with_topology(TopologyConfig::newscast(20))
                          .with_engine(EngineKind::kSerial);
  Engine engine;
  return engine.run_single(spec, seed);
}

TEST(MinMax, MinBroadcastsToAllNodes) {
  auto cfg = config_with(core::UpdateKind::kMin, 2000, 15);
  CycleSimulation sim(cfg, Rng(1));
  sim.init_scalar([](NodeId id) {
    return id.value() == 1234 ? -5.0 : static_cast<double>(id.value());
  });
  sim.run(failure::NoFailures{});
  const auto s = stats::summarize(sim.scalar_estimates());
  // §5: the global minimum spreads like an epidemic — O(log N) cycles.
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, -5.0);
}

TEST(MinMax, MaxBroadcastsToAllNodes) {
  auto cfg = config_with(core::UpdateKind::kMax, 2000, 15);
  CycleSimulation sim(cfg, Rng(2));
  sim.init_scalar([](NodeId id) { return static_cast<double>(id.value()); });
  sim.run(failure::NoFailures{});
  const auto s = stats::summarize(sim.scalar_estimates());
  EXPECT_DOUBLE_EQ(s.min, 1999.0);
}

TEST(MinMax, SpreadIsSuperExponential) {
  // Epidemic growth: holders of the extremum should more than double per
  // early cycle (push–pull infects both sides of every exchange).
  auto cfg = config_with(core::UpdateKind::kMin, 4000, 6);
  CycleSimulation sim(cfg, Rng(3));
  sim.init_scalar([](NodeId id) { return id.value() == 0 ? 0.0 : 1.0; });
  sim.run(failure::NoFailures{});
  std::size_t holders = 0;
  for (double v : sim.scalar_estimates()) holders += (v == 0.0);
  // 6 cycles of at-least-doubling from 1 would give >= 64; push-pull is
  // much faster (factor ~3 per cycle with 2 exchanges/node).
  EXPECT_GT(holders, 200u);
  EXPECT_LT(holders, 4000u);  // but not everyone yet at cycle 6
}

TEST(MinMax, RobustToMessageLoss) {
  // Extrema cannot be corrupted by the §7.2 asymmetry: a lost response
  // only delays the spread (no mass to mis-count).
  auto cfg = config_with(core::UpdateKind::kMin, 1500, 30);
  cfg.comm = failure::CommFailureModel::message_loss(0.3);
  CycleSimulation sim(cfg, Rng(4));
  sim.init_scalar([](NodeId id) {
    return id.value() == 7 ? -1.0 : static_cast<double>(id.value() % 97);
  });
  sim.run(failure::NoFailures{});
  const auto s = stats::summarize(sim.scalar_estimates());
  EXPECT_DOUBLE_EQ(s.max, -1.0);
}

TEST(Geometric, ConvergesToGeometricMean) {
  auto cfg = config_with(core::UpdateKind::kGeometric, 2000, 30);
  CycleSimulation sim(cfg, Rng(5));
  sim.init_scalar([](NodeId id) { return id.value() % 2 == 0 ? 9.0 : 1.0; });
  sim.run(failure::NoFailures{});
  const auto s = stats::summarize(sim.scalar_estimates());
  EXPECT_NEAR(s.mean, 3.0, 1e-6);  // sqrt(9*1)
  EXPECT_NEAR(s.min, 3.0, 1e-3);
  EXPECT_NEAR(s.max, 3.0, 1e-3);
}

TEST(Geometric, ProductConservedWithoutLoss) {
  auto cfg = config_with(core::UpdateKind::kGeometric, 500, 10);
  CycleSimulation sim(cfg, Rng(6));
  Rng values(7);
  std::vector<double> initial(500);
  double log_product = 0.0;
  for (auto& v : initial) {
    v = values.uniform(0.5, 2.0);
    log_product += std::log(v);
  }
  sim.init_scalar([&initial](NodeId id) { return initial[id.value()]; });
  sim.run(failure::NoFailures{});
  double log_after = 0.0;
  for (double v : sim.scalar_estimates()) log_after += std::log(v);
  EXPECT_NEAR(log_after, log_product, 1e-9);
}

TEST(Derived, SumPipeline) {
  // SUM = AVERAGE × COUNT, both computed by gossip (§5).
  constexpr std::uint32_t kNodes = 2000;
  Rng values(8);
  std::vector<double> load(kNodes);
  for (auto& v : load) v = values.uniform(0.0, 100.0);
  // gossip-lint: allow(raw-accumulate): test-local serial sum over a
  // fixed-order vector; never folded across shard/thread geometries.
  const double true_sum = std::accumulate(load.begin(), load.end(), 0.0);

  auto avg_cfg = config_with(core::UpdateKind::kAverage, kNodes, 30);
  CycleSimulation avg_sim(avg_cfg, Rng(9));
  avg_sim.init_scalar([&load](NodeId id) { return load[id.value()]; });
  avg_sim.run(failure::NoFailures{});
  const double avg = stats::summarize(avg_sim.scalar_estimates()).mean;

  const RunResult count = count_via_engine(kNodes, 30, 10);
  const double sum = core::sum_estimate(avg, count.sizes.mean);
  EXPECT_NEAR(sum, true_sum, true_sum * 1e-3);
}

TEST(Derived, ProductPipeline) {
  // PRODUCT = GEOMETRIC-MEAN ^ COUNT (§5); compare in log space.
  constexpr std::uint32_t kNodes = 500;
  Rng values(11);
  std::vector<double> factors(kNodes);
  double true_log_product = 0.0;
  for (auto& v : factors) {
    v = values.uniform(0.9, 1.1);
    true_log_product += std::log(v);
  }
  auto geo_cfg = config_with(core::UpdateKind::kGeometric, kNodes, 30);
  CycleSimulation geo_sim(geo_cfg, Rng(12));
  geo_sim.init_scalar([&factors](NodeId id) { return factors[id.value()]; });
  geo_sim.run(failure::NoFailures{});
  const double geo = stats::summarize(geo_sim.scalar_estimates()).mean;

  const RunResult count = count_via_engine(kNodes, 30, 13);
  const double product = core::product_estimate(geo, count.sizes.mean);
  EXPECT_NEAR(std::log(product), true_log_product, 0.05);
}

TEST(Derived, VariancePipeline) {
  // VARIANCE = avg(x²) − avg(x)² (§5), both averages by gossip.
  constexpr std::uint32_t kNodes = 2000;
  Rng values(14);
  std::vector<double> xs(kNodes);
  for (auto& v : xs) v = values.uniform(-3.0, 3.0);  // variance 3
  const auto run_avg = [&](auto f, std::uint64_t seed) {
    auto cfg = config_with(core::UpdateKind::kAverage, kNodes, 30);
    CycleSimulation sim(cfg, Rng(seed));
    sim.init_scalar(f);
    sim.run(failure::NoFailures{});
    return stats::summarize(sim.scalar_estimates()).mean;
  };
  const double avg = run_avg([&xs](NodeId id) { return xs[id.value()]; }, 15);
  const double avg_sq =
      run_avg([&xs](NodeId id) { return xs[id.value()] * xs[id.value()]; },
              16);
  EXPECT_NEAR(core::variance_estimate(avg_sq, avg), 3.0, 0.15);
}

TEST(CountGuard, CountRequiresAverage) {
  auto cfg = config_with(core::UpdateKind::kMin, 100, 5);
  CycleSimulation sim(cfg, Rng(17));
  EXPECT_THROW(sim.init_count_leaders(), require_error);
}

// ---- Parameterized invariant matrix: topologies × comm failures. ------

struct MatrixCase {
  const char* name;
  TopologyConfig topology;
  failure::CommFailureModel comm;
  bool lossless;  // mass conservation + monotone variance expected
};

class InvariantMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(InvariantMatrix, AverageInvariantsHold) {
  const auto& param = GetParam();
  SimConfig cfg;
  cfg.nodes = 1200;
  cfg.cycles = 25;
  cfg.topology = param.topology;
  cfg.comm = param.comm;
  CycleSimulation sim(cfg, Rng(42));
  Rng values(43);
  std::vector<double> initial(cfg.nodes);
  double min0 = 1e300, max0 = -1e300, sum0 = 0.0;
  for (auto& v : initial) {
    v = values.uniform(-50.0, 50.0);
    min0 = std::min(min0, v);
    max0 = std::max(max0, v);
    sum0 += v;
  }
  sim.init_scalar([&initial](NodeId id) { return initial[id.value()]; });
  sim.run(failure::NoFailures{});

  // Bounds always hold: averaging cannot escape [min0, max0] even with
  // losses (a half-applied update is still a convex combination).
  const auto estimates = sim.scalar_estimates();
  for (double v : estimates) {
    ASSERT_GE(v, min0 - 1e-9);
    ASSERT_LE(v, max0 + 1e-9);
  }

  if (param.lossless) {
    // gossip-lint: allow(raw-accumulate): conservation check in a serial
    // test, fixed id-order input; tolerance absorbs rounding shape.
    const double sum1 = std::accumulate(estimates.begin(), estimates.end(), 0.0);
    EXPECT_NEAR(sum1, sum0, std::abs(sum0) * 1e-9 + 1e-6);
    const auto vars = sim.tracker().variances();
    for (std::size_t i = 1; i < vars.size(); ++i) {
      EXPECT_LE(vars[i], vars[i - 1] * (1.0 + 1e-12)) << "cycle " << i;
    }
  }

  // Determinism: an identical run produces identical estimates.
  CycleSimulation again(cfg, Rng(42));
  again.init_scalar([&initial](NodeId id) { return initial[id.value()]; });
  again.run(failure::NoFailures{});
  const auto estimates2 = again.scalar_estimates();
  ASSERT_EQ(estimates.size(), estimates2.size());
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    ASSERT_EQ(estimates[i], estimates2[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndFailures, InvariantMatrix,
    ::testing::Values(
        MatrixCase{"complete_clean", TopologyConfig::complete(),
                   failure::CommFailureModel::none(), true},
        MatrixCase{"random_clean", TopologyConfig::random_k_out(20),
                   failure::CommFailureModel::none(), true},
        MatrixCase{"ring_clean", TopologyConfig::ring_lattice(20),
                   failure::CommFailureModel::none(), true},
        MatrixCase{"ws50_clean", TopologyConfig::watts_strogatz(20, 0.5),
                   failure::CommFailureModel::none(), true},
        MatrixCase{"ba_clean", TopologyConfig::barabasi_albert(20),
                   failure::CommFailureModel::none(), true},
        MatrixCase{"newscast_clean", TopologyConfig::newscast(30),
                   failure::CommFailureModel::none(), true},
        MatrixCase{"newscast_linkfail",
                   TopologyConfig::newscast(30),
                   failure::CommFailureModel::link_failure(0.4), true},
        MatrixCase{"complete_linkfail", TopologyConfig::complete(),
                   failure::CommFailureModel::link_failure(0.7), true},
        MatrixCase{"newscast_msgloss", TopologyConfig::newscast(30),
                   failure::CommFailureModel::message_loss(0.2), false},
        MatrixCase{"random_msgloss", TopologyConfig::random_k_out(20),
                   failure::CommFailureModel::message_loss(0.4), false}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gossip::experiment
