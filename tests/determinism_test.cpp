// Determinism guarantees of the experiment engine.
//
//  * Golden values: CycleSimulation results at small N are pinned to the
//    exact doubles the simulator produced before the scratch-buffer and
//    SoA-cache-pool refactor — the hot-path optimizations must not
//    change a single bit of any published figure.
//  * Thread-count invariance: the ParallelRunner merges per-rep results
//    in rep order, so the same seed yields identical output for 1, 2 and
//    8 worker threads.
//  * ParallelRunner mechanics: index-ordered map, pool reuse across
//    batches, exception propagation, split-seed derivation.
//  * Engine-facade determinism: the same ScenarioSpec executed with
//    engine = serial and rep_parallel (1/2/8 threads) produces
//    bit-identical RunResults, and the intra-rep engine is invariant
//    across every shards x threads combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/stream_salt.hpp"
#include "experiment/engine.hpp"
#include "experiment/intra_rep.hpp"
#include "experiment/parallel_runner.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "overlay/population.hpp"
#include "overlay/sharded_population.hpp"

namespace gossip::experiment {
namespace {

// ------------------------------------------------------------- goldens
//
// Captured from the seed implementation (vector<NewscastCache> storage,
// per-cycle order allocations) at full double precision.

TEST(GoldenValues, AverageUnderChurnOnNewscast) {
  ScenarioSpec spec = ScenarioSpec::average_peak("golden", 64, 12)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_failure(FailureSpec::churn(3))
                          .with_engine(EngineKind::kSerial);
  Engine engine;
  const RunResult run = engine.run_single(spec, 12345);

  const double expected[][2] = {
      {1.0000000000000007, 63.999999999999986},
      {1.0491803278688521, 13.114207650273221},
      {1.1034482758620692, 5.236429444097852},
      {1.1090909090909091, 4.0386557110230923},
      {1.148399939903846, 3.0309214304042587},
      {1.0904882812500001, 0.90398243583640803},
      {1.0751238883809844, 0.5023063153878361},
      {1.0836293507706034, 0.2786159901123294},
      {1.0830719321966171, 0.22501772256971989},
      {1.0895031029131355, 0.17059394090376628},
      {1.1055755259958695, 0.12828696865734604},
      {1.1096672766442151, 0.11482929479653822},
      {1.106508705090578, 0.090650351690037434},
  };
  ASSERT_EQ(run.per_cycle.size(), std::size(expected));
  for (std::size_t c = 0; c < std::size(expected); ++c) {
    EXPECT_EQ(run.per_cycle[c].mean(), expected[c][0]) << "cycle " << c;
    EXPECT_EQ(run.per_cycle[c].variance(), expected[c][1]) << "cycle " << c;
  }
}

TEST(GoldenValues, CountUnderLossAndSuddenDeathOnNewscast) {
  ScenarioSpec spec = ScenarioSpec::count("golden", 50, 15, 4)
                          .with_topology(TopologyConfig::newscast(6))
                          .with_comm({0.0, 0.1})
                          .with_failure(FailureSpec::sudden_death(4, 0.2))
                          .with_engine(EngineKind::kSerial);
  Engine engine;
  const RunResult run = engine.run_single(spec, 777);

  EXPECT_EQ(run.sizes.mean, 53.317370145213985);
  EXPECT_EQ(run.sizes.min, 39.874218245408372);
  EXPECT_EQ(run.sizes.max, 69.281370517376303);
  EXPECT_EQ(run.sizes.median, 50.766800575081241);
  EXPECT_EQ(run.participants, 40u);
}

TEST(GoldenValues, AverageUnderProportionalCrashOnKOut) {
  ScenarioSpec spec = ScenarioSpec::average_peak("golden", 40, 10)
                          .with_topology(TopologyConfig::random_k_out(5))
                          .with_failure(FailureSpec::proportional_crash(0.05))
                          .with_engine(EngineKind::kSerial);
  Engine engine;
  const RunResult run = engine.run_single(spec, 99);

  EXPECT_EQ(run.per_cycle.back().mean(), 1.1794175772831357);
  EXPECT_EQ(run.per_cycle.back().variance(), 0.084835512286016407);
}

// --------------------------------------------- thread-count invariance

/// Bit-level double equality: the determinism contract is "identical
/// bits", which must also hold for runs that legitimately diverge to
/// inf/NaN (an EXPECT_EQ on NaN would always fail).
void expect_same_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.per_cycle.size(), b.per_cycle.size());
  for (std::size_t c = 0; c < a.per_cycle.size(); ++c) {
    EXPECT_EQ(a.per_cycle[c].count(), b.per_cycle[c].count());
    expect_same_bits(a.per_cycle[c].mean(), b.per_cycle[c].mean());
    expect_same_bits(a.per_cycle[c].variance(), b.per_cycle[c].variance());
    expect_same_bits(a.per_cycle[c].min(), b.per_cycle[c].min());
    expect_same_bits(a.per_cycle[c].max(), b.per_cycle[c].max());
  }
  ASSERT_EQ(a.tracker.variances().size(), b.tracker.variances().size());
  for (std::size_t c = 0; c < a.tracker.variances().size(); ++c) {
    expect_same_bits(a.tracker.variances()[c], b.tracker.variances()[c]);
  }
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.sizes.count, b.sizes.count);
  expect_same_bits(a.sizes.mean, b.sizes.mean);
  expect_same_bits(a.sizes.variance, b.sizes.variance);
  expect_same_bits(a.sizes.min, b.sizes.min);
  expect_same_bits(a.sizes.max, b.sizes.max);
  expect_same_bits(a.sizes.median, b.sizes.median);
}

TEST(ParallelDeterminism, AverageRepsIdenticalAcrossThreadCounts) {
  constexpr std::uint32_t kReps = 12;
  ScenarioSpec spec = ScenarioSpec::average_peak("det", 200, 8)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_failure(FailureSpec::churn(2))
                          .with_reps(kReps)
                          .with_seed(0x5eed)
                          .with_seed_point(7);

  Engine serial({EngineKind::kSerial});
  const auto baseline = serial.run_point(spec, 0);
  ASSERT_EQ(baseline.size(), kReps);

  for (unsigned threads : {1u, 2u, 8u}) {
    Engine parallel_engine({EngineKind::kRepParallel, threads});
    const auto parallel = parallel_engine.run_point(spec, 0);
    ASSERT_EQ(parallel.size(), kReps);
    for (std::uint32_t r = 0; r < kReps; ++r) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " rep=" << r);
      expect_identical(baseline[r], parallel[r]);
    }
  }
}

TEST(ParallelDeterminism, CountRepsIdenticalAcrossThreadCounts) {
  constexpr std::uint32_t kReps = 10;
  ScenarioSpec spec = ScenarioSpec::count("det", 150, 10, 3)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_comm({0.0, 0.05})
                          .with_reps(kReps)
                          .with_seed(42)
                          .with_seed_point(3);

  Engine serial({EngineKind::kSerial});
  const auto baseline = serial.run_point(spec, 0);

  for (unsigned threads : {1u, 2u, 8u}) {
    Engine parallel_engine({EngineKind::kRepParallel, threads});
    const auto parallel = parallel_engine.run_point(spec, 0);
    ASSERT_EQ(parallel.size(), kReps);
    for (std::uint32_t r = 0; r < kReps; ++r) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " rep=" << r);
      expect_identical(baseline[r], parallel[r]);
    }
  }
}

// ------------------------------------- sharded population vs dense seed
//
// The sharded live list must be *observationally identical* to the dense
// seed implementation: an op trace of kills, joins and samples replayed
// against both, with lock-stepped rng streams, yields bit-identical
// returned ids and live orderings — for any shard count.

TEST(ShardedPopulation, MatchesDenseUnderRecordedOpTrace) {
  for (unsigned shards : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    overlay::Population dense(40);
    overlay::ShardedPopulation sharded(40, shards);
    Rng trace(0xf00d);       // decides which op comes next
    Rng dense_rng(0x1111);   // lock-stepped draw streams
    Rng sharded_rng(0x1111);
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t what = trace.below(10);
      if (what < 3 && dense.live_count() > 1) {  // kill a random live node
        const NodeId va = dense.sample_live(dense_rng);
        const NodeId vb = sharded.sample_live(sharded_rng);
        ASSERT_EQ(va, vb) << "op " << op;
        dense.kill(va);
        sharded.kill(vb);
      } else if (what < 5) {  // join
        ASSERT_EQ(dense.add(), sharded.add()) << "op " << op;
      } else if (what < 8) {  // sample_live
        ASSERT_EQ(dense.sample_live(dense_rng),
                  sharded.sample_live(sharded_rng))
            << "op " << op;
      } else {  // sample_live_other from a random id (live or dead)
        const NodeId self(
            static_cast<std::uint32_t>(trace.below(dense.total())));
        ASSERT_EQ(dense.sample_live_other(self, dense_rng),
                  sharded.sample_live_other(self, sharded_rng))
            << "op " << op;
      }
      ASSERT_EQ(dense.live_count(), sharded.live_count());
      ASSERT_EQ(dense.total(), sharded.total());
    }
    // Final structural equality: same live list in the same order, same
    // alive bits.
    EXPECT_EQ(dense.live(), sharded.live());
    for (std::uint32_t u = 0; u < dense.total(); ++u) {
      EXPECT_EQ(dense.alive(NodeId(u)), sharded.alive(NodeId(u)));
    }
  }
}

TEST(ShardedPopulation, KillManyIsStableAndShardCountInvariant) {
  // kill_many's stable compaction: survivors keep their relative order,
  // and the result is identical for any shard count and for serial vs
  // pooled execution of the phases.
  const auto build = [](unsigned shards) {
    overlay::ShardedPopulation pop(30, shards);
    pop.kill(NodeId(7));  // pre-churn so live order isn't just 0..29
    pop.kill(NodeId(2));
    (void)pop.add();
    return pop;
  };
  const std::vector<NodeId> victims{NodeId(0), NodeId(29), NodeId(15),
                                    NodeId(30), NodeId(4)};

  auto reference = build(1);
  const std::vector<NodeId> before = reference.live();
  reference.kill_many(victims, nullptr);
  // Stability: the reference result is exactly `before` minus victims.
  std::vector<NodeId> expected;
  for (NodeId id : before) {
    if (std::find(victims.begin(), victims.end(), id) == victims.end()) {
      expected.push_back(id);
    }
  }
  EXPECT_EQ(reference.live(), expected);

  ParallelRunner pool(4);
  const overlay::ParallelFor par =
      [&pool](std::size_t count,
              const std::function<void(std::size_t)>& job) {
        pool.run(count, job);
      };
  for (unsigned shards : {2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    auto pop = build(shards);
    pop.kill_many(victims, &par);
    EXPECT_EQ(pop.live(), reference.live());
    for (std::uint32_t u = 0; u < pop.total(); ++u) {
      EXPECT_EQ(pop.alive(NodeId(u)), reference.alive(NodeId(u)));
    }
  }
}

// --------------------------------------------- intra-rep mode goldens
//
// The domain-decomposed engine has its own pinned trajectory (its
// matched-cycle model is deliberately not bit-comparable with the serial
// driver), and that trajectory must be bit-identical for every
// GOSSIP_SHARDS × thread-count combination.

TEST(IntraRepDeterminism, GoldenValuesAndShardCountInvariance) {
  ScenarioSpec spec = ScenarioSpec::average_peak("intra", 64, 10)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_failure(FailureSpec::churn(3))
                          .with_engine(EngineKind::kIntraRep);

  Engine serial({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = serial.run_single(spec, 12345);

  const double expected[][2] = {
      // {mean, variance} per cycle, captured at shards=1, threads=1 from
      // the parallel-matching engine (deterministic reservations keyed
      // by per-round priority draws, segmented stats folded through the
      // fixed-shape reduction tree — regenerated with that change; the
      // serial-greedy-scan trajectory is retired).
      {1.0, 64.0},
      {1.0491803278688525, 33.014207650273221},
      {0.55172413793103448, 8.6727162734422265},
      {0.2857142857142857, 2.244155844155844},
      {0.30188679245283018, 1.1378809869375908},
      {0.31999999999999995, 0.54857142857142849},
      {0.29166666666666663, 0.33865248226950351},
      {0.28260869565217389, 0.22946859903381644},
      {0.29545454545454547, 0.16939746300211417},
      {0.29761904761904762, 0.15697590011614404},
      {0.30182926829268297, 0.15779344512195123},
  };
  ASSERT_EQ(baseline.per_cycle.size(), std::size(expected));
  for (std::size_t c = 0; c < std::size(expected); ++c) {
    EXPECT_EQ(baseline.per_cycle[c].mean(), expected[c][0]) << "cycle " << c;
    EXPECT_EQ(baseline.per_cycle[c].variance(), expected[c][1])
        << "cycle " << c;
  }

  for (unsigned shards : {2u, 8u}) {
    for (unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      Engine engine({EngineKind::kIntraRep, threads, shards});
      expect_identical(baseline, engine.run_single(spec, 12345));
    }
  }
}

TEST(IntraRepDeterminism, CompleteTopologySuddenDeathInvariance) {
  ScenarioSpec spec = ScenarioSpec::average_peak("intra", 300, 8)
                          .with_topology(TopologyConfig::complete())
                          .with_comm({0.0, 0.1})
                          .with_failure(FailureSpec::sudden_death(3, 0.4))
                          .with_engine(EngineKind::kIntraRep);

  Engine serial({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = serial.run_single(spec, 777);
  for (unsigned shards : {2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    Engine engine({EngineKind::kIntraRep, 4, shards});
    expect_identical(baseline, engine.run_single(spec, 777));
  }
}

TEST(IntraRepDeterminism, DegenerateShardGeometrySurvivesMassCrash) {
  // Shards > N, and shards left without a single live node after a
  // fig06a-style mass death (75% of an N=8 network dies at once): the
  // run must neither crash nor let the emptied shards skew the match
  // scan — output stays bit-identical to the 1-shard reference.
  for (const auto& topology :
       {TopologyConfig::newscast(4), TopologyConfig::complete()}) {
    ScenarioSpec spec = ScenarioSpec::average_peak("degenerate", 8, 6)
                            .with_topology(topology)
                            .with_failure(FailureSpec::sudden_death(1, 0.75))
                            .with_engine(EngineKind::kIntraRep);
    Engine reference({EngineKind::kIntraRep, 1, 1});
    const RunResult baseline = reference.run_single(spec, 31337);
    EXPECT_EQ(baseline.per_cycle.back().count(), 2u);  // 8 - 6 survivors
    for (unsigned shards : {8u, 16u}) {  // == N and > N
      SCOPED_TRACE(testing::Message()
                   << "kind=" << static_cast<int>(topology.kind)
                   << " shards=" << shards);
      Engine engine({EngineKind::kIntraRep, 4, shards});
      expect_identical(baseline, engine.run_single(spec, 31337));
    }
  }
}

TEST(IntraRepDeterminism, RacedShardsUnderHeavyChurn) {
  // Stress shape for the sanitizer jobs: many shards, a big thread pool,
  // kills + joins every cycle, so TSan sees the propose/match/apply and
  // kill_many phases genuinely raced.
  ScenarioSpec spec = ScenarioSpec::average_peak("intra", 600, 6)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_failure(FailureSpec::churn(20))
                          .with_engine(EngineKind::kIntraRep);

  Engine serial({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = serial.run_single(spec, 4242);
  Engine raced_engine({EngineKind::kIntraRep, 8, 16});
  expect_identical(baseline, raced_engine.run_single(spec, 4242));
}

// ------------------------------------------- spec-level engine sweep
//
// The satellite determinism contract of the ScenarioSpec API: one spec,
// every engine the spec is eligible for, bit-identical output (intra_rep
// against its own reference — its matched-cycle model is a different
// trajectory from the serial driver by design).

TEST(EngineFacade, FullSweepIdenticalAcrossEngineAndThreads) {
  ScenarioSpec spec = ScenarioSpec::count("det-sweep", 120, 8, 2)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_failure(FailureSpec::churn_fraction(0.01))
                          .with_comm({0.1, 0.05})
                          .with_reps(5)
                          .with_seed(0xfeed);
  spec.with_sweep(SweepAxis::kChurnFraction,
                  {{0.0, 11, ""}, {0.01, 12, ""}, {0.02, 13, ""}});

  Engine serial({EngineKind::kSerial});
  const ScenarioResult baseline = serial.run(spec);
  ASSERT_EQ(baseline.points.size(), 3u);

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    Engine parallel_engine({EngineKind::kRepParallel, threads});
    const ScenarioResult parallel = parallel_engine.run(spec);
    ASSERT_EQ(parallel.points.size(), baseline.points.size());
    for (std::size_t p = 0; p < baseline.points.size(); ++p) {
      ASSERT_EQ(parallel.points[p].reps.size(),
                baseline.points[p].reps.size());
      for (std::size_t r = 0; r < baseline.points[p].reps.size(); ++r) {
        expect_identical(baseline.points[p].reps[r],
                         parallel.points[p].reps[r]);
      }
    }
  }
}

TEST(EngineFacade, IntraRepPointIdenticalAcrossShardThreadMatrix) {
  // Same spec, engine=intra_rep, multi-rep sweep point: reps run in
  // order, each internally decomposed — identical for every shards x
  // threads combination.
  ScenarioSpec spec = ScenarioSpec::average_peak("det-intra", 100, 6)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_reps(3)
                          .with_seed(0xabcdef)
                          .with_seed_point(5)
                          .with_engine(EngineKind::kIntraRep);

  Engine reference({EngineKind::kIntraRep, 1, 1});
  const auto baseline = reference.run_point(spec, 0);
  ASSERT_EQ(baseline.size(), 3u);
  for (unsigned shards : {2u, 8u}) {
    for (unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      Engine engine({EngineKind::kIntraRep, threads, shards});
      const auto runs = engine.run_point(spec, 0);
      ASSERT_EQ(runs.size(), baseline.size());
      for (std::size_t r = 0; r < runs.size(); ++r) {
        expect_identical(baseline[r], runs[r]);
      }
    }
  }
}

TEST(EngineFacade, AutoPicksRepParallelForMultiRep) {
  ScenarioSpec spec = ScenarioSpec::average_peak("auto", 100, 4)
                          .with_reps(4);
  EXPECT_EQ(resolve_engine(spec).kind, EngineKind::kRepParallel);
  spec.reps = 1;
  EXPECT_EQ(resolve_engine(spec).kind, EngineKind::kSerial);
  spec.nodes = 1'000'000;  // giant single rep -> intra_rep
  EXPECT_EQ(resolve_engine(spec).kind, EngineKind::kIntraRep);
  spec.aggregate = AggregateKind::kCount;  // giant COUNT is eligible too
  spec.instances = 16;
  EXPECT_EQ(resolve_engine(spec).kind, EngineKind::kIntraRep);
  spec.driver = DriverKind::kPushSum;  // ...but only the cycle driver
  EXPECT_EQ(resolve_engine(spec).kind, EngineKind::kSerial);
}

// ------------------------------------------------ runner mechanics

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  ParallelRunner runner(4);
  const auto out = runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner runner(3);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    runner.run(17, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(std::memory_order_relaxed), 20u * (16u * 17u / 2u));
}

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  ParallelRunner runner(4);
  std::vector<std::atomic<int>> hits(257);
  runner.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1);
  }
}

TEST(ParallelRunner, PropagatesJobExceptions) {
  for (unsigned threads : {1u, 4u}) {
    ParallelRunner runner(threads);
    EXPECT_THROW(
        runner.run(8,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
        std::runtime_error);
    // The pool must survive a throwing batch.
    EXPECT_NO_THROW(runner.run(4, [](std::size_t) {}));
  }
}

TEST(ParallelRunner, ZeroCountIsANoOp) {
  ParallelRunner runner(2);
  bool touched = false;
  runner.run(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelRunner, SplitSeedsAreStableAndDistinct) {
  const auto a = split_seeds(123, 64);
  const auto b = split_seeds(123, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  const std::set<std::uint64_t> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), a.size());
  // Prefix stability: asking for fewer seeds yields a prefix.
  const auto prefix = split_seeds(123, 8);
  for (std::size_t i = 0; i < prefix.size(); ++i) EXPECT_EQ(prefix[i], a[i]);
  EXPECT_NE(split_seeds(124, 1)[0], a[0]);
}

TEST(ParallelRunner, ThreadCountResolution) {
  EXPECT_GE(runner_threads(), 1u);
  ParallelRunner one(1);
  EXPECT_EQ(one.threads(), 1u);
  ParallelRunner six(6);
  EXPECT_EQ(six.threads(), 6u);
  ParallelRunner def;
  EXPECT_EQ(def.threads(), runner_threads());
}

// ------------------------------------------- seed-derivation goldens
//
// The stream-salt registry (src/common/stream_salt.hpp) centralized
// every scattered seed constant. These u64s were captured from the
// pre-registry call sites: if any of them moves, a refactor silently
// re-keyed an RNG stream and every published figure shifts with it.

TEST(SeedDerivationGolden, RepSeedExactValues) {
  EXPECT_EQ(rep_seed(42, 0, 0), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(rep_seed(42, 1, 0), 0x28efe333b266f103ULL);
  EXPECT_EQ(rep_seed(42, 0, 1), 0x2662e781ec8e4b66ULL);
  EXPECT_EQ(rep_seed(42, 3, 7), 0xe4003c9b1082141cULL);
  EXPECT_EQ(rep_seed(0xdeadbeefULL, 2, 5), 0xfdd4df798b848e8dULL);
}

TEST(SeedDerivationGolden, NodeStreamKeyExactValues) {
  EXPECT_EQ(salt::node_stream_key(777, 0, 0, salt::agg_round_salt(0)),
            0x2e643b88c4aff1fdULL);
  EXPECT_EQ(salt::node_stream_key(777, 5, 17, salt::agg_round_salt(2)),
            0x4821b0991d8f71afULL);
}

}  // namespace
}  // namespace gossip::experiment
