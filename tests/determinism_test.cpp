// Determinism guarantees of the experiment engine.
//
//  * Golden values: CycleSimulation results at small N are pinned to the
//    exact doubles the simulator produced before the scratch-buffer and
//    SoA-cache-pool refactor — the hot-path optimizations must not
//    change a single bit of any published figure.
//  * Thread-count invariance: the ParallelRunner merges per-rep results
//    in rep order, so the same seed yields identical output for 1, 2 and
//    8 worker threads.
//  * ParallelRunner mechanics: index-ordered map, pool reuse across
//    batches, exception propagation, split-seed derivation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "experiment/parallel_runner.hpp"
#include "experiment/workloads.hpp"
#include "failure/failure_plan.hpp"

namespace gossip::experiment {
namespace {

// ------------------------------------------------------------- goldens
//
// Captured from the seed implementation (vector<NewscastCache> storage,
// per-cycle order allocations) at full double precision.

TEST(GoldenValues, AverageUnderChurnOnNewscast) {
  SimConfig cfg;
  cfg.nodes = 64;
  cfg.cycles = 12;
  cfg.topology = TopologyConfig::newscast(8);
  const AverageRun run = run_average_peak(cfg, failure::Churn(3), 12345);

  const double expected[][2] = {
      {1.0000000000000007, 63.999999999999986},
      {1.0491803278688521, 13.114207650273221},
      {1.1034482758620692, 5.236429444097852},
      {1.1090909090909091, 4.0386557110230923},
      {1.148399939903846, 3.0309214304042587},
      {1.0904882812500001, 0.90398243583640803},
      {1.0751238883809844, 0.5023063153878361},
      {1.0836293507706034, 0.2786159901123294},
      {1.0830719321966171, 0.22501772256971989},
      {1.0895031029131355, 0.17059394090376628},
      {1.1055755259958695, 0.12828696865734604},
      {1.1096672766442151, 0.11482929479653822},
      {1.106508705090578, 0.090650351690037434},
  };
  ASSERT_EQ(run.per_cycle.size(), std::size(expected));
  for (std::size_t c = 0; c < std::size(expected); ++c) {
    EXPECT_EQ(run.per_cycle[c].mean(), expected[c][0]) << "cycle " << c;
    EXPECT_EQ(run.per_cycle[c].variance(), expected[c][1]) << "cycle " << c;
  }
}

TEST(GoldenValues, CountUnderLossAndSuddenDeathOnNewscast) {
  SimConfig cfg;
  cfg.nodes = 50;
  cfg.cycles = 15;
  cfg.instances = 4;
  cfg.topology = TopologyConfig::newscast(6);
  cfg.comm = failure::CommFailureModel::message_loss(0.1);
  const CountRun run = run_count(cfg, failure::SuddenDeath(4, 0.2), 777);

  EXPECT_EQ(run.sizes.mean, 53.317370145213985);
  EXPECT_EQ(run.sizes.min, 39.874218245408372);
  EXPECT_EQ(run.sizes.max, 69.281370517376303);
  EXPECT_EQ(run.sizes.median, 50.766800575081241);
  EXPECT_EQ(run.participants, 40u);
}

TEST(GoldenValues, AverageUnderProportionalCrashOnKOut) {
  SimConfig cfg;
  cfg.nodes = 40;
  cfg.cycles = 10;
  cfg.topology = TopologyConfig::random_k_out(5);
  const AverageRun run =
      run_average_peak(cfg, failure::ProportionalCrash(0.05), 99);

  EXPECT_EQ(run.per_cycle.back().mean(), 1.1794175772831357);
  EXPECT_EQ(run.per_cycle.back().variance(), 0.084835512286016407);
}

// --------------------------------------------- thread-count invariance

void expect_identical(const AverageRun& a, const AverageRun& b) {
  ASSERT_EQ(a.per_cycle.size(), b.per_cycle.size());
  for (std::size_t c = 0; c < a.per_cycle.size(); ++c) {
    EXPECT_EQ(a.per_cycle[c].count(), b.per_cycle[c].count());
    EXPECT_EQ(a.per_cycle[c].mean(), b.per_cycle[c].mean());
    EXPECT_EQ(a.per_cycle[c].variance(), b.per_cycle[c].variance());
    EXPECT_EQ(a.per_cycle[c].min(), b.per_cycle[c].min());
    EXPECT_EQ(a.per_cycle[c].max(), b.per_cycle[c].max());
  }
  ASSERT_EQ(a.tracker.variances().size(), b.tracker.variances().size());
  for (std::size_t c = 0; c < a.tracker.variances().size(); ++c) {
    EXPECT_EQ(a.tracker.variances()[c], b.tracker.variances()[c]);
  }
}

TEST(ParallelDeterminism, AverageRepsIdenticalAcrossThreadCounts) {
  SimConfig cfg;
  cfg.nodes = 200;
  cfg.cycles = 8;
  cfg.topology = TopologyConfig::newscast(10);
  constexpr std::uint32_t kReps = 12;

  ParallelRunner serial(1);
  const auto baseline = run_average_peak_reps(
      serial, cfg, failure::Churn(2), /*base_seed=*/0x5eed, /*point=*/7,
      kReps);
  ASSERT_EQ(baseline.size(), kReps);

  for (unsigned threads : {2u, 8u}) {
    ParallelRunner runner(threads);
    const auto parallel = run_average_peak_reps(
        runner, cfg, failure::Churn(2), 0x5eed, 7, kReps);
    ASSERT_EQ(parallel.size(), kReps);
    for (std::uint32_t r = 0; r < kReps; ++r) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " rep=" << r);
      expect_identical(baseline[r], parallel[r]);
    }
  }
}

TEST(ParallelDeterminism, CountRepsIdenticalAcrossThreadCounts) {
  SimConfig cfg;
  cfg.nodes = 150;
  cfg.cycles = 10;
  cfg.instances = 3;
  cfg.topology = TopologyConfig::newscast(8);
  cfg.comm = failure::CommFailureModel::message_loss(0.05);
  constexpr std::uint32_t kReps = 10;

  ParallelRunner serial(1);
  const auto baseline =
      run_count_reps(serial, cfg, failure::NoFailures{}, 42, 3, kReps);

  for (unsigned threads : {2u, 8u}) {
    ParallelRunner runner(threads);
    const auto parallel =
        run_count_reps(runner, cfg, failure::NoFailures{}, 42, 3, kReps);
    ASSERT_EQ(parallel.size(), kReps);
    for (std::uint32_t r = 0; r < kReps; ++r) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " rep=" << r);
      EXPECT_EQ(baseline[r].sizes.mean, parallel[r].sizes.mean);
      EXPECT_EQ(baseline[r].sizes.variance, parallel[r].sizes.variance);
      EXPECT_EQ(baseline[r].sizes.min, parallel[r].sizes.min);
      EXPECT_EQ(baseline[r].sizes.max, parallel[r].sizes.max);
      EXPECT_EQ(baseline[r].participants, parallel[r].participants);
    }
  }
}

// ------------------------------------------------ runner mechanics

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  ParallelRunner runner(4);
  const auto out = runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner runner(3);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    runner.run(17, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 20u * (16u * 17u / 2u));
}

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  ParallelRunner runner(4);
  std::vector<std::atomic<int>> hits(257);
  runner.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunner, PropagatesJobExceptions) {
  for (unsigned threads : {1u, 4u}) {
    ParallelRunner runner(threads);
    EXPECT_THROW(
        runner.run(8,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
        std::runtime_error);
    // The pool must survive a throwing batch.
    EXPECT_NO_THROW(runner.run(4, [](std::size_t) {}));
  }
}

TEST(ParallelRunner, ZeroCountIsANoOp) {
  ParallelRunner runner(2);
  bool touched = false;
  runner.run(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelRunner, SplitSeedsAreStableAndDistinct) {
  const auto a = split_seeds(123, 64);
  const auto b = split_seeds(123, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  const std::set<std::uint64_t> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), a.size());
  // Prefix stability: asking for fewer seeds yields a prefix.
  const auto prefix = split_seeds(123, 8);
  for (std::size_t i = 0; i < prefix.size(); ++i) EXPECT_EQ(prefix[i], a[i]);
  EXPECT_NE(split_seeds(124, 1)[0], a[0]);
}

TEST(ParallelRunner, ThreadCountResolution) {
  EXPECT_GE(runner_threads(), 1u);
  ParallelRunner one(1);
  EXPECT_EQ(one.threads(), 1u);
  ParallelRunner six(6);
  EXPECT_EQ(six.threads(), 6u);
  ParallelRunner def;
  EXPECT_EQ(def.threads(), runner_threads());
}

}  // namespace
}  // namespace gossip::experiment
