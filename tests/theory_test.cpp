// Tests for src/theory: the paper's closed forms evaluate to the values the
// text quotes, and behave correctly at the edges.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "theory/predictions.hpp"

namespace gossip::theory {
namespace {

TEST(Theory, PushPullFactorValue) {
  // ρ = 1/(2√e) ≈ 0.3033 (paper §3).
  EXPECT_NEAR(push_pull_factor(), 0.30326532985, 1e-10);
}

TEST(Theory, UniformPairingFactorValue) {
  // ρ = 1/e ≈ 0.3679 (paper §6.2).
  EXPECT_NEAR(uniform_pairing_factor(), 0.36787944117, 1e-10);
}

TEST(Theory, LinkFailureBoundEndpoints) {
  // eq. 5: ρ_d = e^(P_d - 1); at P_d = 0 this is 1/e, at P_d = 1 it is 1.
  EXPECT_NEAR(link_failure_bound(0.0), uniform_pairing_factor(), 1e-12);
  EXPECT_NEAR(link_failure_bound(1.0), 1.0, 1e-12);
}

TEST(Theory, LinkFailureBoundMonotone) {
  double prev = 0.0;
  for (double pd = 0.0; pd <= 1.0; pd += 0.1) {
    const double b = link_failure_bound(pd);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Theory, LinkFailureBoundSlowdownIdentity) {
  // The bound is derived from "1/(1-Pd)-times slower at ρ=1/e", so
  // ρ_d^{1/(1-P_d)} must equal 1/e for every P_d < 1.
  for (double pd : {0.0, 0.2, 0.5, 0.9}) {
    EXPECT_NEAR(std::pow(link_failure_bound(pd), 1.0 / (1.0 - pd)),
                uniform_pairing_factor(), 1e-12)
        << pd;
  }
}

TEST(Theory, LinkFailureBoundRejectsNonProbability) {
  EXPECT_THROW(link_failure_bound(-0.1), require_error);
  EXPECT_THROW(link_failure_bound(1.1), require_error);
}

TEST(Theory, MuVarianceZeroFailure) {
  EXPECT_DOUBLE_EQ(mu_variance(0.0, 1000, 1.0, 0.3, 20), 0.0);
  EXPECT_DOUBLE_EQ(mu_variance(0.1, 1000, 1.0, 0.3, 0), 0.0);
}

TEST(Theory, MuVarianceMatchesExplicitSum) {
  // Cross-check the closed form against the raw Σ Var(d_j) of eq. 4.
  const double pf = 0.1, rho = push_pull_factor(), s0 = 2.5;
  const std::uint64_t n = 10000, cycles = 20;
  double expect = 0.0;
  for (std::uint64_t j = 0; j < cycles; ++j) {
    expect += pf / (1.0 - pf) * s0 * std::pow(rho, static_cast<double>(j)) /
              (static_cast<double>(n) * std::pow(1.0 - pf, static_cast<double>(j)));
  }
  EXPECT_NEAR(mu_variance(pf, n, s0, rho, cycles), expect, expect * 1e-10);
}

TEST(Theory, MuVarianceDegenerateRatio) {
  // ρ = 1 - P_f makes the geometric ratio exactly 1; the series must be
  // `cycles` terms of the constant prefix.
  const double rho = 0.5, pf = 0.5;
  const double v = mu_variance(pf, 100, 1.0, rho, 10);
  const double prefix = pf / (100.0 * (1.0 - pf));
  EXPECT_NEAR(v, prefix * 10.0, 1e-12);
}

TEST(Theory, MuVarianceGrowsWithFailureRate) {
  double prev = 0.0;
  for (double pf : {0.05, 0.1, 0.2, 0.3}) {
    const double v = mu_variance(pf, 100000, 1.0, push_pull_factor(), 20);
    EXPECT_GT(v, prev) << pf;
    prev = v;
  }
}

TEST(Theory, MuVarianceShrinksWithNetworkSize) {
  // §6.1: "increasing network size decreases the variance of the
  // approximation" — 1/N scaling, the paper's scalability claim.
  const double small = mu_variance(0.1, 1000, 1.0, push_pull_factor(), 20);
  const double large = mu_variance(0.1, 100000, 1.0, push_pull_factor(), 20);
  EXPECT_NEAR(small / large, 100.0, 1e-6);
}

TEST(Theory, MuVarianceBoundedness) {
  // Bounded iff ρ <= 1 - P_f (§6.1).
  EXPECT_FALSE(mu_variance_unbounded(0.3, push_pull_factor()));
  EXPECT_TRUE(mu_variance_unbounded(0.8, push_pull_factor()));
  EXPECT_TRUE(mu_variance_unbounded(0.7, 0.31));
}

TEST(Theory, MuVarianceRejectsBadInputs) {
  EXPECT_THROW(mu_variance(1.0, 100, 1.0, 0.3, 5), require_error);
  EXPECT_THROW(mu_variance(-0.1, 100, 1.0, 0.3, 5), require_error);
  EXPECT_THROW(mu_variance(0.1, 0, 1.0, 0.3, 5), require_error);
  EXPECT_THROW(mu_variance(0.1, 100, 1.0, 1.5, 5), require_error);
}

TEST(Theory, RequiredCyclesMatchesDefinition) {
  // γ ≥ log_ρ ε (§4.5). With ρ = 0.1 and ε = 1e-10, γ = 10.
  EXPECT_EQ(required_cycles(0.1, 1e-10), 10u);
  // ρ^γ must actually reach ε.
  const double rho = push_pull_factor();
  const auto g = required_cycles(rho, 1e-6);
  EXPECT_LE(std::pow(rho, static_cast<double>(g)), 1e-6);
  EXPECT_GT(std::pow(rho, static_cast<double>(g - 1)), 1e-6);
}

TEST(Theory, RequiredCyclesPaperEpochLength) {
  // The paper's 30-cycle epochs with ρ≈0.303 push the variance below 1e-15
  // — consistent with fig. 3b where random topologies bottom out by ~cycle 30.
  const auto g = required_cycles(push_pull_factor(), 1e-15);
  EXPECT_GE(g, 25u);
  EXPECT_LE(g, 32u);
}

TEST(Theory, ExpectedExchanges) {
  EXPECT_DOUBLE_EQ(expected_exchanges_per_cycle(), 2.0);
}

TEST(Theory, PeakVarianceClosedForm) {
  // For N = 10^5 and peak = 10^5 the initial variance is ≈ 10^5
  // (paper fig. 5's E(σ²_0)); exact value (peak²(1-1/n))/(n-1).
  const double v = peak_distribution_variance(100000, 100000.0);
  EXPECT_NEAR(v, 100000.0, 1.0);
  EXPECT_THROW(peak_distribution_variance(1, 1.0), require_error);
}

}  // namespace
}  // namespace gossip::theory
