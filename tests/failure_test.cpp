// Tests for src/failure: the §6/§7 node-failure plans and the
// communication failure model (including the asymmetric response-loss
// semantics fig. 7b depends on).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"

namespace gossip::failure {
namespace {

TEST(NoFailures, AlwaysEmpty) {
  NoFailures plan;
  for (std::uint32_t c = 0; c < 50; ++c) {
    const auto ev = plan.before_cycle(c, 1000);
    EXPECT_EQ(ev.kills, 0u);
    EXPECT_EQ(ev.joins, 0u);
  }
}

TEST(ProportionalCrash, KillsFloorOfCurrentLive) {
  ProportionalCrash plan(0.3);
  EXPECT_EQ(plan.before_cycle(0, 1000).kills, 300u);
  EXPECT_EQ(plan.before_cycle(5, 700).kills, 210u);
  EXPECT_EQ(plan.before_cycle(9, 10).kills, 3u);
  EXPECT_EQ(plan.before_cycle(0, 3).kills, 0u);  // floor(0.9)
  EXPECT_EQ(plan.before_cycle(0, 1000).joins, 0u);
}

TEST(ProportionalCrash, DecaySequenceMatchesTheorem1Model) {
  // Applying the plan repeatedly must give N(1-Pf)^i up to flooring —
  // the population model Theorem 1 assumes.
  ProportionalCrash plan(0.1);
  std::uint32_t live = 100000;
  for (std::uint32_t c = 0; c < 20; ++c) {
    live -= plan.before_cycle(c, live).kills;
  }
  EXPECT_NEAR(static_cast<double>(live), 100000.0 * std::pow(0.9, 20),
              30.0);
}

TEST(ProportionalCrash, RejectsBadProbability) {
  EXPECT_THROW(ProportionalCrash(1.0), require_error);
  EXPECT_THROW(ProportionalCrash(-0.1), require_error);
}

TEST(SuddenDeath, FiresExactlyOnce) {
  SuddenDeath plan(7, 0.5);
  for (std::uint32_t c = 0; c < 20; ++c) {
    const auto ev = plan.before_cycle(c, 1000);
    EXPECT_EQ(ev.kills, c == 7 ? 500u : 0u) << c;
  }
}

TEST(SuddenDeath, RejectsFullDeath) {
  EXPECT_THROW(SuddenDeath(0, 1.0), require_error);
}

TEST(Churn, KeepsSizeConstant) {
  Churn plan(250);
  const auto ev = plan.before_cycle(3, 10000);
  EXPECT_EQ(ev.kills, 250u);
  EXPECT_EQ(ev.joins, 250u);
}

TEST(Churn, NeverKillsLastNode) {
  Churn plan(100);
  const auto ev = plan.before_cycle(0, 50);
  EXPECT_EQ(ev.kills, 49u);
  EXPECT_EQ(ev.joins, 100u);
}

TEST(ConstantCrash, FixedRateNoJoins) {
  ConstantCrash plan(1000);
  const auto ev = plan.before_cycle(2, 100000);
  EXPECT_EQ(ev.kills, 1000u);
  EXPECT_EQ(ev.joins, 0u);
}

TEST(CorrelatedWaves, SchedulesContiguousIdBlocks) {
  // Trigger at cycle 3, 4 waves of 100 ids each: cycles 3..6 kill
  // [0,100), [100,200), [200,300), [300,400); nothing before or after.
  CorrelatedWaves plan(3, 4, 100);
  for (std::uint32_t c = 0; c < 12; ++c) {
    const auto ev = plan.before_cycle(c, 1000);
    EXPECT_EQ(ev.kills, 0u) << c;   // all kills are targeted
    EXPECT_EQ(ev.joins, 0u) << c;
    if (c >= 3 && c < 7) {
      const std::uint32_t wave = c - 3;
      EXPECT_EQ(ev.kill_lo, wave * 100) << c;
      EXPECT_EQ(ev.kill_hi, wave * 100 + 100) << c;
    } else {
      EXPECT_EQ(ev.kill_lo, 0u) << c;
      EXPECT_EQ(ev.kill_hi, 0u) << c;
    }
  }
}

TEST(CorrelatedWaves, TriggerAtCycleZeroFiresImmediately) {
  CorrelatedWaves plan(0, 1, 50);
  EXPECT_EQ(plan.before_cycle(0, 100).kill_hi, 50u);
  EXPECT_EQ(plan.before_cycle(1, 100).kill_hi, 0u);
}

TEST(CorrelatedWaves, RejectsDegenerateShapes) {
  EXPECT_THROW(CorrelatedWaves(0, 0, 100), require_error);  // no waves
  EXPECT_THROW(CorrelatedWaves(0, 3, 0), require_error);    // zero width
}

TEST(EpochRestart, FiresEveryPeriodAfterCycleZero) {
  EpochRestart plan(5);
  for (std::uint32_t c = 0; c < 21; ++c) {
    const auto ev = plan.before_cycle(c, 1000);
    EXPECT_EQ(ev.kills, 0u) << c;
    EXPECT_EQ(ev.joins, 0u) << c;
    EXPECT_EQ(ev.restart, c > 0 && c % 5 == 0) << c;
  }
}

TEST(EpochRestart, RejectsZeroPeriod) {
  EXPECT_THROW(EpochRestart(0), require_error);
}

TEST(CommFailure, NoneAlwaysCompletes) {
  auto model = CommFailureModel::none();
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.sample(rng), ExchangeOutcome::kCompleted);
  }
}

TEST(CommFailure, PureLinkFailureRate) {
  auto model = CommFailureModel::link_failure(0.4);
  Rng rng(2);
  int down = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const auto outcome = model.sample(rng);
    ASSERT_TRUE(outcome == ExchangeOutcome::kLinkDown ||
                outcome == ExchangeOutcome::kCompleted);
    down += (outcome == ExchangeOutcome::kLinkDown);
  }
  EXPECT_NEAR(static_cast<double>(down) / kTrials, 0.4, 0.01);
}

TEST(CommFailure, MessageLossSplitsRequestAndResponse) {
  // With loss p: request lost w.p. p, response lost w.p. (1-p)p,
  // completed w.p. (1-p)².
  auto model = CommFailureModel::message_loss(0.2);
  Rng rng(3);
  int req = 0, resp = 0, done = 0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    switch (model.sample(rng)) {
      case ExchangeOutcome::kRequestLost: ++req; break;
      case ExchangeOutcome::kResponseLost: ++resp; break;
      case ExchangeOutcome::kCompleted: ++done; break;
      case ExchangeOutcome::kLinkDown: FAIL() << "no link failure here";
    }
  }
  EXPECT_NEAR(static_cast<double>(req) / kTrials, 0.2, 0.005);
  EXPECT_NEAR(static_cast<double>(resp) / kTrials, 0.16, 0.005);
  EXPECT_NEAR(static_cast<double>(done) / kTrials, 0.64, 0.005);
}

TEST(CommFailure, LinkCheckedBeforeMessages) {
  // With P_d = 1 nothing else is ever sampled.
  CommFailureModel model(1.0, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(rng), ExchangeOutcome::kLinkDown);
  }
}

TEST(CommFailure, RejectsBadProbabilities) {
  EXPECT_THROW(CommFailureModel(-0.1, 0.0), require_error);
  EXPECT_THROW(CommFailureModel(0.0, 1.5), require_error);
}

}  // namespace
}  // namespace gossip::failure
