#!/usr/bin/env bash
# Two REAL gossip_run processes cooperating over the TCP socket
# transport: each hosts one half of the id space per runtime_two_proc.json
# and the frames cross 127.0.0.1 sockets. The check is the deployment
# runtime's headline invariant — the *combined* estimate sum across both
# processes is conserved exactly under zero loss.
#
# Usage: runtime_two_proc.sh <gossip_run binary> <spec.json>
set -u

BIN="$1"
SPEC="$2"
OUT0="$(mktemp)"
OUT1="$(mktemp)"
trap 'rm -f "$OUT0" "$OUT1"' EXIT

"$BIN" --runtime --spec "$SPEC" --format json \
       --set runtime_process_index=1 >"$OUT1" 2>&1 &
PID1=$!
"$BIN" --runtime --spec "$SPEC" --format json \
       --set runtime_process_index=0 >"$OUT0" 2>&1
RC0=$?
wait "$PID1"
RC1=$?

if [ "$RC0" -ne 0 ] || [ "$RC1" -ne 0 ]; then
  echo "runtime_two_proc: process exit codes $RC0 / $RC1" >&2
  echo "--- process 0 output ---" >&2
  cat "$OUT0" >&2
  echo "--- process 1 output ---" >&2
  cat "$OUT1" >&2
  exit 1
fi

# Pull the runtime sums out of each process's JSON emission and compare
# the combined initial/final mass. %.17g emission re-parses exactly, so
# the 1e-9 slack only covers awk's own arithmetic.
extract() {  # extract <file> <key>
  grep -o "\"$2\": [-0-9.e+]*" "$1" | head -1 | awk '{print $2}'
}
I0="$(extract "$OUT0" sum_initial)"
I1="$(extract "$OUT1" sum_initial)"
F0="$(extract "$OUT0" sum_final)"
F1="$(extract "$OUT1" sum_final)"
if [ -z "$I0" ] || [ -z "$I1" ] || [ -z "$F0" ] || [ -z "$F1" ]; then
  echo "runtime_two_proc: missing runtime sums in output" >&2
  cat "$OUT0" "$OUT1" >&2
  exit 1
fi

awk -v i0="$I0" -v i1="$I1" -v f0="$F0" -v f1="$F1" 'BEGIN {
  initial = i0 + i1; final = f0 + f1;
  delta = final - initial; if (delta < 0) delta = -delta;
  if (delta > 1e-9) {
    printf "runtime_two_proc: sum NOT conserved: %.17g -> %.17g\n",
           initial, final > "/dev/stderr";
    exit 1;
  }
  printf "two-process sum conserved: %.17g == %.17g\n", initial, final;
}'
