// Cross-module integration: full protocol stacks under compound failure
// scenarios, engine-vs-engine agreement, and end-to-end storylines the
// individual module tests cannot cover.
#include <gtest/gtest.h>

#include <cmath>

#include "core/count.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"
#include "proto/node.hpp"
#include "proto/wire.hpp"
#include "proto/world.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"
#include "theory/predictions.hpp"

namespace gossip {
namespace {

TEST(Integration, CompoundFailuresStillGiveUsableCounts) {
  // Churn AND message loss AND multi-instance trimming, together — the
  // §7.3 takeaway: the combined system stays within a usable band.
  experiment::ScenarioSpec spec =
      experiment::ScenarioSpec::count("integration", 4000, 30, 20)
          .with_topology(experiment::TopologyConfig::newscast(30))
          .with_comm({0.0, 0.1})
          .with_failure(experiment::FailureSpec::churn(40))
          .with_engine(experiment::EngineKind::kSerial);
  experiment::Engine engine;
  stats::RunningStats means;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    const auto run =
        engine.run_single(spec, experiment::rep_seed(1, 99, rep));
    ASSERT_TRUE(std::isfinite(run.sizes.mean));
    means.add(run.sizes.mean);
  }
  EXPECT_GT(means.mean(), 2800.0);
  EXPECT_LT(means.mean(), 6000.0);
}

TEST(Integration, EventEngineSurvivesCrashStorm) {
  // Event-driven stack: 40% of nodes die mid-epoch while 10% of messages
  // drop; survivors keep converging and epochs keep rolling.
  proto::WorldConfig cfg;
  cfg.nodes = 400;
  cfg.seed = 5;
  cfg.p_loss = 0.1;
  cfg.protocol.cycles_per_epoch = 10;
  cfg.protocol.cache_size = 20;
  proto::World world(cfg);
  world.start();
  world.run_cycles(4);
  Rng rng(17);
  for (int k = 0; k < 160; ++k) {
    for (;;) {
      const NodeId victim(static_cast<std::uint32_t>(rng.below(400)));
      if (world.alive(victim)) {
        world.crash(victim);
        break;
      }
    }
  }
  world.run_cycles(26);
  const auto estimates = world.estimates();
  EXPECT_EQ(estimates.size(), 240u);
  // Every survivor has kept rolling epochs through the storm (estimates
  // themselves were just re-initialized by the restart, so the epoch
  // counter and the reports are the meaningful observables).
  EXPECT_EQ(world.reports().size(), 240u);
  for (std::uint32_t u = 0; u < 400; ++u) {
    if (world.alive(NodeId(u))) {
      EXPECT_GE(world.node(NodeId(u)).epoch(), 2u) << u;
    }
  }
}

TEST(Integration, JoinWaveAdoptsRunningSystem) {
  // A founding population plus a 25% join wave: the joiners must not
  // disturb the running epoch, then fully participate in the next.
  proto::WorldConfig cfg;
  cfg.nodes = 200;
  cfg.seed = 7;
  cfg.protocol.cycles_per_epoch = 12;
  proto::World world(cfg);
  world.start();
  world.run_cycles(5);
  Rng rng(23);
  std::vector<NodeId> joiners;
  for (int k = 0; k < 50; ++k) {
    const NodeId contact(static_cast<std::uint32_t>(rng.below(200)));
    joiners.push_back(world.join(contact, 3.0));
  }
  world.run_cycles(8.5);  // epoch 0 ends
  // Epoch-0 reports only come from founders and average 1.
  const auto reports = world.reports();
  EXPECT_NEAR(stats::summarize(reports).mean, 1.0, 0.1);
  // Joiners adopt epoch 1 epidemically some time within its first cycles,
  // then need a full γ of their own to produce their first report.
  world.run_cycles(16);
  for (NodeId j : joiners) {
    EXPECT_TRUE(world.node(j).participating());
    EXPECT_TRUE(world.node(j).last_report().has_value());
  }
  // Epoch 1's true average includes the joiners' 3.0 values:
  // (200·1 + 50·3)/250 = 1.4.
  const auto second = world.reports();
  EXPECT_NEAR(stats::summarize(second).mean, 1.4, 0.15);
}

TEST(Integration, WireFormatCarriesTheProtocol) {
  // Encode→decode every message an exchange produces and feed the decoded
  // copy to the peer: the protocol must behave identically.
  sim::EventLoop loop;
  net::Network<proto::Message> network(
      loop, std::make_unique<net::FixedLatency>(10), 0.0, Rng(1));
  proto::ProtocolConfig pcfg;
  pcfg.cache_size = 4;
  proto::Node a(NodeId(0), 4.0, pcfg, loop, network, Rng(2));
  proto::Node b(NodeId(1), 2.0, pcfg, loop, network, Rng(3));
  network.register_node(NodeId(0), [&a](NodeId from, const proto::Message& m) {
    a.on_message(from, proto::decode(proto::encode(m)));
  });
  network.register_node(NodeId(1), [&b](NodeId from, const proto::Message& m) {
    b.on_message(from, proto::decode(proto::encode(m)));
  });
  a.bootstrap_view(std::vector<membership::CacheEntry>{{NodeId(1), 0}});
  b.bootstrap_view(std::vector<membership::CacheEntry>{{NodeId(0), 0}});
  a.start();
  b.start();
  loop.run_until(5'000'000);  // 5 cycles
  EXPECT_NEAR(a.estimate(), 3.0, 1e-12);
  EXPECT_NEAR(b.estimate(), 3.0, 1e-12);
  EXPECT_GT(a.stats().exchanges_completed + b.stats().exchanges_completed,
            0u);
}

TEST(Integration, CycleAndEventEnginesAgreeOnCountAccuracy) {
  // COUNT through the cycle driver vs AVERAGE-of-peak through the event
  // engine at matched size: both recover N within a fraction of a
  // percent once converged.
  constexpr std::uint32_t kNodes = 1000;
  experiment::ScenarioSpec ccfg =
      experiment::ScenarioSpec::count("integration", kNodes, 30)
          .with_topology(experiment::TopologyConfig::newscast(20))
          .with_engine(experiment::EngineKind::kSerial);
  experiment::Engine cengine;
  const auto count = cengine.run_single(ccfg, 31);
  EXPECT_NEAR(count.sizes.mean, kNodes, 1.0);

  proto::WorldConfig wcfg;
  wcfg.nodes = kNodes;
  wcfg.seed = 37;
  wcfg.protocol.cache_size = 20;
  proto::World world(wcfg);
  world.start();
  world.run_cycles(30);
  const auto s = world.estimate_summary();
  // avg of peak = 1 ⇒ implied size = peak/avg.
  EXPECT_NEAR(core::size_from_average(s.mean, kNodes), kNodes,
              kNodes * 0.01);
}

TEST(Integration, TheoremOneHoldsOnTheEventEngine) {
  // The §6.1 variance result is engine-independent: crash half the
  // population mid-run on the event engine; the surviving mean stays an
  // unbiased estimate of 1 across repetitions.
  stats::RunningStats mu;
  for (std::uint64_t rep = 0; rep < 6; ++rep) {
    proto::WorldConfig cfg;
    cfg.nodes = 300;
    cfg.seed = 100 + rep;
    cfg.protocol.cache_size = 20;
    proto::World world(cfg);
    world.start();
    world.run_cycles(6);
    Rng rng(rep);
    for (int k = 0; k < 150; ++k) {
      for (;;) {
        const NodeId victim(static_cast<std::uint32_t>(rng.below(300)));
        if (world.alive(victim)) {
          world.crash(victim);
          break;
        }
      }
    }
    // Run past every node's epoch-0 boundary (γ=30 plus phase) and use
    // the *reports* — end-of-run estimates have been re-initialized by
    // the restart.
    world.run_cycles(26);
    const auto reports = world.reports();
    ASSERT_FALSE(reports.empty());
    mu.add(stats::summarize(reports).mean);
  }
  EXPECT_NEAR(mu.mean(), 1.0, 0.2);
  EXPECT_GT(mu.variance(), 0.0);  // crashes do scatter the mean
}

}  // namespace
}  // namespace gossip
