// Statistical guard for every concrete GETNEIGHBOR() implementation.
//
// The paper's convergence results (§3, Theorem 1) hold only if the peer
// sampler is *uniform* over the intended support — the static graph's
// neighbor set, the live population, or the NEWSCAST view. Both related
// lines of work the repo tracks (scalable secure aggregation, in-network
// aggregation under churn) stress that aggregation-quality claims rest on
// sampler uniformity under membership change, so this suite pins it with
// chi-square goodness-of-fit tests at fixed seeds — including the
// post-kill() live-set distribution, which is exactly what the
// devirtualized dispatch must not regress.
//
// Draw counts and the α = 0.001 critical values are sized so a correct
// sampler passes with wide margin at these seeds while a bias of a few
// percent per bin fails reliably.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "membership/newscast.hpp"
#include "overlay/generators.hpp"
#include "overlay/peer_sampler.hpp"
#include "overlay/population.hpp"
#include "overlay/sharded_population.hpp"

namespace gossip {
namespace {

using membership::NewscastNetwork;
using membership::NewscastPeerSampler;
using overlay::CompletePeerSampler;
using overlay::GraphPeerSampler;
using overlay::Population;
using overlay::ShardedPopulation;

/// χ² statistic of `counts` against the uniform distribution.
double chi_square_uniform(const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double stat = 0.0;
  for (std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

/// Upper critical value of the χ² distribution with `df` degrees of
/// freedom at α = 0.001 (Wilson–Hilferty approximation; accurate to a
/// fraction of a percent for df >= 5, plenty for a pass/fail gate).
double chi_square_critical(std::size_t df) {
  constexpr double z = 3.090232306167814;  // Φ⁻¹(0.999)
  const double k = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

// ------------------------------------------------------------- graph

TEST(SamplerStats, GraphSamplerUniformOverRingNeighbors) {
  const auto g = overlay::ring_lattice(60, 10);
  GraphPeerSampler sampler(g);
  const auto ns = g.neighbors(NodeId(7));
  ASSERT_EQ(ns.size(), 10u);

  Rng rng(0xa11ce);
  std::vector<std::uint64_t> counts(ns.size(), 0);
  constexpr std::uint64_t kDraws = 100000;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const NodeId pick = sampler.sample(NodeId(7), rng);
    auto it = std::find(ns.begin(), ns.end(), pick);
    ASSERT_NE(it, ns.end()) << "sampled a non-neighbor: " << pick;
    ++counts[static_cast<std::size_t>(it - ns.begin())];
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_critical(ns.size() - 1));
}

TEST(SamplerStats, GraphSamplerUniformOverRandomKOutNeighbors) {
  Rng build(99);
  const auto g = overlay::random_k_out(200, 16, build);
  GraphPeerSampler sampler(g);
  const auto ns = g.neighbors(NodeId(42));
  ASSERT_EQ(ns.size(), 16u);

  Rng rng(0xbee);
  std::vector<std::uint64_t> counts(ns.size(), 0);
  for (std::uint64_t i = 0; i < 160000; ++i) {
    const NodeId pick = sampler.sample(NodeId(42), rng);
    auto it = std::find(ns.begin(), ns.end(), pick);
    ASSERT_NE(it, ns.end());
    ++counts[static_cast<std::size_t>(it - ns.begin())];
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_critical(ns.size() - 1));
}

// ---------------------------------------------------------- complete

TEST(SamplerStats, CompleteSamplerUniformOverOthers) {
  Population pop(64);
  CompletePeerSampler sampler(pop);
  Rng rng(0x5eed);
  std::vector<std::uint64_t> counts(64, 0);
  constexpr std::uint64_t kDraws = 252000;  // 4000 per live bin
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const NodeId pick = sampler.sample(NodeId(0), rng);
    ASSERT_TRUE(pick.is_valid());
    ASSERT_NE(pick, NodeId(0)) << "sampler handed back the caller";
    ++counts[pick.value()];
  }
  EXPECT_EQ(counts[0], 0u);
  counts.erase(counts.begin());  // support is the 63 other nodes
  EXPECT_LT(chi_square_uniform(counts), chi_square_critical(counts.size() - 1));
}

TEST(SamplerStats, CompleteSamplerUniformAfterKills) {
  // The §4.2-relevant case: the live set changed under the sampler. Kill
  // a third of the population, then check the distribution is uniform
  // over the *remaining* live nodes and gives crashed nodes zero mass.
  Population pop(60);
  CompletePeerSampler sampler(pop);
  Rng churn(0xdead);
  for (int k = 0; k < 20; ++k) {
    NodeId victim = pop.sample_live(churn);
    if (victim == NodeId(3)) victim = pop.sample_live(churn);  // keep caller
    if (victim == NodeId(3)) continue;
    pop.kill(victim);
  }
  ASSERT_TRUE(pop.alive(NodeId(3)));

  Rng rng(0xfeed);
  std::vector<std::uint64_t> counts(pop.total(), 0);
  constexpr std::uint64_t kDraws = 200000;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const NodeId pick = sampler.sample(NodeId(3), rng);
    ASSERT_TRUE(pick.is_valid());
    ASSERT_TRUE(pop.alive(pick)) << "sampled a crashed node";
    ASSERT_NE(pick, NodeId(3));
    ++counts[pick.value()];
  }
  std::vector<std::uint64_t> live_counts;
  for (std::uint32_t u = 0; u < pop.total(); ++u) {
    if (!pop.alive(NodeId(u))) {
      EXPECT_EQ(counts[u], 0u) << "node " << u;
    } else if (u != 3) {
      live_counts.push_back(counts[u]);
    }
  }
  ASSERT_EQ(live_counts.size(), pop.live_count() - 1);
  EXPECT_LT(chi_square_uniform(live_counts),
            chi_square_critical(live_counts.size() - 1));
}

// ---------------------------------------------------------- newscast

TEST(SamplerStats, NewscastSamplerUniformOverView) {
  NewscastNetwork net(20);
  Rng build(0xcafe);
  net.bootstrap_random(200, 0, build);
  const auto entries = net.view(NodeId(11));
  ASSERT_EQ(entries.size(), 20u);

  NewscastPeerSampler sampler(net);
  Rng rng(0x9a9a);
  std::vector<std::uint64_t> counts(entries.size(), 0);
  for (std::uint64_t i = 0; i < 200000; ++i) {
    const NodeId pick = sampler.sample(NodeId(11), rng);
    std::size_t slot = entries.size();
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (entries[e].id == pick) slot = e;
    }
    ASSERT_LT(slot, entries.size()) << "sampled outside the view";
    ++counts[slot];
  }
  EXPECT_LT(chi_square_uniform(counts),
            chi_square_critical(counts.size() - 1));
}

TEST(SamplerStats, NewscastFastPathMatchesCacheViewDrawForDraw) {
  // The raw-span fast path (sample_view) must consume the identical rng
  // stream as the bounds-checked ConstCacheView::sample it replaced —
  // this is the devirtualization's bit-compatibility guard.
  NewscastNetwork net(16);
  Rng build(0x1234);
  net.bootstrap_random(100, 0, build);
  Rng a(7), b(7);
  for (std::uint32_t u = 0; u < 100; ++u) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(net.sample_view(NodeId(u), a),
                net.cache(NodeId(u)).sample(b));
    }
  }
}

// ------------------------------------------------- population live set

TEST(SamplerStats, PopulationSampleLiveUniformAfterKills) {
  // sample_live feeds the failure plans and the Complete overlay; check
  // it stays uniform over the survivors of a heavy kill wave, for both
  // the dense and the sharded implementation.
  Population dense(80);
  ShardedPopulation sharded(80, 4);
  Rng pick_victims(0x600d);
  for (int k = 0; k < 40; ++k) {
    const NodeId victim = dense.sample_live(pick_victims);
    dense.kill(victim);
    sharded.kill(victim);
  }
  ASSERT_EQ(dense.live_count(), 40u);
  ASSERT_EQ(sharded.live_count(), 40u);

  const auto gather = [](const auto& pop) {
    Rng rng(0x7777);
    std::vector<std::uint64_t> counts(pop.total(), 0);
    for (std::uint64_t i = 0; i < 160000; ++i) {
      const NodeId pick = pop.sample_live(rng);
      ++counts[pick.value()];
    }
    return counts;
  };
  for (const auto& counts : {gather(dense), gather(sharded)}) {
    std::vector<std::uint64_t> live_counts;
    for (std::uint32_t u = 0; u < 80; ++u) {
      if (dense.alive(NodeId(u))) {
        live_counts.push_back(counts[u]);
      } else {
        EXPECT_EQ(counts[u], 0u);
      }
    }
    ASSERT_EQ(live_counts.size(), 40u);
    EXPECT_LT(chi_square_uniform(live_counts),
              chi_square_critical(live_counts.size() - 1));
  }
}

TEST(SamplerStats, ShardedSampleLiveOtherUniformAfterKills) {
  ShardedPopulation pop(50, 8);
  Rng churn(0xabcd);
  for (int k = 0; k < 15; ++k) {
    NodeId victim = pop.sample_live(churn);
    while (victim == NodeId(9)) victim = pop.sample_live(churn);
    pop.kill(victim);
  }
  ASSERT_TRUE(pop.alive(NodeId(9)));

  Rng rng(0x1dea);
  std::vector<std::uint64_t> counts(pop.total(), 0);
  for (std::uint64_t i = 0; i < 170000; ++i) {
    const NodeId pick = pop.sample_live_other(NodeId(9), rng);
    ASSERT_TRUE(pick.is_valid());
    ASSERT_NE(pick, NodeId(9));
    ASSERT_TRUE(pop.alive(pick));
    ++counts[pick.value()];
  }
  std::vector<std::uint64_t> live_counts;
  for (std::uint32_t u = 0; u < pop.total(); ++u) {
    if (pop.alive(NodeId(u)) && u != 9) live_counts.push_back(counts[u]);
  }
  ASSERT_EQ(live_counts.size(), pop.live_count() - 1);
  EXPECT_LT(chi_square_uniform(live_counts),
            chi_square_critical(live_counts.size() - 1));
}

// A sanity check that the gate can fail: a deliberately biased count
// vector must exceed the critical value.
TEST(SamplerStats, ChiSquareRejectsObviousBias) {
  std::vector<std::uint64_t> biased(20, 5000);
  biased[0] = 6000;  // one bin 20% heavy
  biased[1] = 4000;
  EXPECT_GT(chi_square_uniform(biased), chi_square_critical(19));
}

}  // namespace
}  // namespace gossip
