// Tests for src/core: UPDATE algebra, COUNT map merge laws (including the
// dense-vector equivalence the fast path relies on), derived aggregates,
// epoch machine, join gate, leader election and the robust combiner.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/count.hpp"
#include "core/derived.hpp"
#include "core/epoch.hpp"
#include "core/multi_instance.hpp"
#include "core/update.hpp"

namespace gossip::core {
namespace {

// ---------------------------------------------------------------- UPDATE

TEST(Update, AverageConservesSum) {
  Rng rng(1);
  for (int t = 0; t < 1000; ++t) {
    const double a = rng.uniform(-100.0, 100.0);
    const double b = rng.uniform(-100.0, 100.0);
    const double u = AverageUpdate::apply(a, b);
    EXPECT_NEAR(u + u, a + b, 1e-9);
  }
}

TEST(Update, AverageContractsSpread) {
  const double u = AverageUpdate::apply(0.0, 10.0);
  EXPECT_DOUBLE_EQ(u, 5.0);
  // Both peers end inside [min, max] of the inputs.
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 10.0);
}

TEST(Update, MinMaxAreExtremesAndIdempotent) {
  EXPECT_DOUBLE_EQ(MinUpdate::apply(3.0, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(MaxUpdate::apply(3.0, -2.0), 3.0);
  EXPECT_DOUBLE_EQ(MinUpdate::apply(5.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(MaxUpdate::apply(5.0, 5.0), 5.0);
}

TEST(Update, GeometricConservesProduct) {
  Rng rng(2);
  for (int t = 0; t < 1000; ++t) {
    const double a = rng.uniform(0.1, 50.0);
    const double b = rng.uniform(0.1, 50.0);
    const double u = GeometricMeanUpdate::apply(a, b);
    EXPECT_NEAR(u * u, a * b, a * b * 1e-9);
  }
}

TEST(Update, GeometricRejectsNegatives) {
  EXPECT_THROW(GeometricMeanUpdate::apply(-1.0, 2.0), require_error);
}

TEST(Update, AllAreSymmetric) {
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const double a = rng.uniform(0.0, 10.0), b = rng.uniform(0.0, 10.0);
    EXPECT_DOUBLE_EQ(AverageUpdate::apply(a, b), AverageUpdate::apply(b, a));
    EXPECT_DOUBLE_EQ(MinUpdate::apply(a, b), MinUpdate::apply(b, a));
    EXPECT_DOUBLE_EQ(MaxUpdate::apply(a, b), MaxUpdate::apply(b, a));
    EXPECT_DOUBLE_EQ(GeometricMeanUpdate::apply(a, b),
                     GeometricMeanUpdate::apply(b, a));
  }
}

// A random sequence of pairwise average exchanges conserves the global
// sum and keeps every estimate within the initial bounds — the two
// invariants §3 argues from.
TEST(Update, RandomScheduleInvariants) {
  Rng rng(4);
  std::vector<double> values(64);
  for (auto& v : values) v = rng.uniform(-5.0, 20.0);
  double sum0 = 0.0, min0 = values[0], max0 = values[0];
  for (double v : values) {
    sum0 += v;
    min0 = std::min(min0, v);
    max0 = std::max(max0, v);
  }
  for (int step = 0; step < 5000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(values.size()));
    auto j = static_cast<std::size_t>(rng.below(values.size()));
    if (i == j) continue;
    const double u = AverageUpdate::apply(values[i], values[j]);
    values[i] = values[j] = u;
  }
  double sum1 = 0.0;
  for (double v : values) {
    sum1 += v;
    EXPECT_GE(v, min0 - 1e-9);
    EXPECT_LE(v, max0 + 1e-9);
  }
  EXPECT_NEAR(sum1, sum0, 1e-7);
}

// ----------------------------------------------------------------- COUNT

TEST(CountMap, LeaderAndEmptyInitialState) {
  const CountMap empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.estimate_for(NodeId(3)), 0.0);

  const CountMap lead = CountMap::leader(NodeId(3));
  EXPECT_EQ(lead.size(), 1u);
  EXPECT_DOUBLE_EQ(lead.estimate_for(NodeId(3)), 1.0);
  EXPECT_TRUE(lead.contains(NodeId(3)));
  EXPECT_FALSE(lead.contains(NodeId(4)));
  EXPECT_THROW(CountMap::leader(NodeId::invalid()), require_error);
}

TEST(CountMap, MergeSingletonKeysHalve) {
  const CountMap a = CountMap::leader(NodeId(1));
  const CountMap b;
  const CountMap m = CountMap::merge(a, b);
  EXPECT_DOUBLE_EQ(m.estimate_for(NodeId(1)), 0.5);
}

TEST(CountMap, MergeSharedKeysAverage) {
  CountMap a = CountMap::leader(NodeId(1));
  CountMap b = CountMap::leader(NodeId(1));
  // Desynchronize the estimates through an extra merge with empty.
  a = CountMap::merge(a, CountMap{});  // 0.5
  const CountMap m = CountMap::merge(a, b);
  EXPECT_DOUBLE_EQ(m.estimate_for(NodeId(1)), 0.75);
}

TEST(CountMap, MergeUnionsDistinctLeaders) {
  const CountMap a = CountMap::leader(NodeId(1));
  const CountMap b = CountMap::leader(NodeId(7));
  const CountMap m = CountMap::merge(a, b);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.estimate_for(NodeId(1)), 0.5);
  EXPECT_DOUBLE_EQ(m.estimate_for(NodeId(7)), 0.5);
}

TEST(CountMap, MergeConservesPerLeaderMass) {
  // For every leader, e_a + e_b == 2 * e_merged (both sides install the
  // merged map) — the conservation that makes 1/avg a size estimate.
  Rng rng(5);
  CountMap a = CountMap::leader(NodeId(2));
  CountMap b = CountMap::leader(NodeId(9));
  for (int step = 0; step < 50; ++step) {
    const CountMap m = CountMap::merge(a, b);
    for (NodeId leader : {NodeId(2), NodeId(9)}) {
      EXPECT_NEAR(a.estimate_for(leader) + b.estimate_for(leader),
                  2.0 * m.estimate_for(leader), 1e-12);
    }
    // Randomly evolve one side to keep the states asymmetric.
    if (rng.chance(0.5)) {
      a = m;
    } else {
      b = m;
    }
  }
}

TEST(CountMap, SizeEstimate) {
  CountMap a = CountMap::leader(NodeId(0));
  a = CountMap::merge(a, CountMap{});  // 0.5 -> N̂ = 2
  EXPECT_DOUBLE_EQ(a.size_estimate(NodeId(0)), 2.0);
  EXPECT_THROW((void)a.size_estimate(NodeId(5)), require_error);
}

TEST(CountMap, AllSizeEstimatesOrderedByLeader) {
  CountMap a = CountMap::merge(CountMap::leader(NodeId(4)),
                               CountMap::leader(NodeId(1)));
  const auto sizes = a.all_size_estimates();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(sizes[0], 2.0);  // leader 1
  EXPECT_DOUBLE_EQ(sizes[1], 2.0);  // leader 4
}

// Property: a full gossip run of the sparse CountMap is elementwise
// identical to the dense vector representation (absent key == 0).
TEST(CountMap, DenseEquivalenceUnderRandomSchedules) {
  constexpr std::size_t kNodes = 32;
  constexpr std::size_t kLeaders = 4;
  Rng rng(6);
  std::vector<CountMap> sparse(kNodes);
  std::vector<std::vector<double>> dense(kNodes,
                                         std::vector<double>(kLeaders, 0.0));
  for (std::size_t l = 0; l < kLeaders; ++l) {
    const std::size_t owner = l * 7 % kNodes;
    sparse[owner] = CountMap::merge(sparse[owner],
                                    CountMap::leader(NodeId(100 + l)));
    // merge with empty halves the mass — mirror that in dense.
    for (std::size_t l2 = 0; l2 < kLeaders; ++l2) dense[owner][l2] /= 2.0;
    dense[owner][l] += 0.5;
  }
  for (int step = 0; step < 4000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(kNodes));
    const auto j = static_cast<std::size_t>(rng.below(kNodes));
    if (i == j) continue;
    const CountMap m = CountMap::merge(sparse[i], sparse[j]);
    sparse[i] = m;
    sparse[j] = m;
    for (std::size_t l = 0; l < kLeaders; ++l) {
      const double avg = (dense[i][l] + dense[j][l]) / 2.0;
      dense[i][l] = dense[j][l] = avg;
    }
  }
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t l = 0; l < kLeaders; ++l) {
      EXPECT_NEAR(sparse[n].estimate_for(NodeId(100 + l)), dense[n][l],
                  1e-12)
          << "node " << n << " leader " << l;
    }
  }
}

TEST(SizeFromAverage, BasicAndGuards) {
  EXPECT_DOUBLE_EQ(size_from_average(0.01), 100.0);
  EXPECT_DOUBLE_EQ(size_from_average(2.0, 200.0), 100.0);
  EXPECT_THROW(size_from_average(0.0), require_error);
  EXPECT_THROW(size_from_average(1.0, 0.0), require_error);
}

TEST(LeaderElection, ProbabilityTracksEstimate) {
  LeaderElection le(10.0, 1000.0);
  EXPECT_DOUBLE_EQ(le.lead_probability(), 0.01);
  le.update_size_estimate(100.0);
  EXPECT_DOUBLE_EQ(le.lead_probability(), 0.1);
  le.update_size_estimate(5.0);
  EXPECT_DOUBLE_EQ(le.lead_probability(), 1.0);  // clamped
}

TEST(LeaderElection, ExpectedLeaderCountIsC) {
  // With N nodes each leading w.p. C/N, the expected number of leaders
  // is C (§5: approximately Poisson(C)).
  LeaderElection le(8.0, 2000.0);
  Rng rng(7);
  int leaders = 0;
  constexpr int kNodes = 2000, kRounds = 50;
  for (int r = 0; r < kRounds; ++r) {
    for (int n = 0; n < kNodes; ++n) leaders += le.should_lead(rng);
  }
  EXPECT_NEAR(static_cast<double>(leaders) / kRounds, 8.0, 1.0);
}

TEST(LeaderElection, Guards) {
  EXPECT_THROW(LeaderElection(0.0, 10.0), require_error);
  EXPECT_THROW(LeaderElection(1.0, 0.5), require_error);
  LeaderElection le(1.0, 10.0);
  EXPECT_THROW(le.update_size_estimate(0.0), require_error);
}

// --------------------------------------------------------------- derived

TEST(Derived, SumEstimate) {
  EXPECT_DOUBLE_EQ(sum_estimate(2.5, 100.0), 250.0);
  EXPECT_THROW(sum_estimate(1.0, -1.0), require_error);
}

TEST(Derived, ProductEstimate) {
  EXPECT_NEAR(product_estimate(2.0, 10.0), 1024.0, 1e-9);
  EXPECT_DOUBLE_EQ(product_estimate(0.0, 10.0), 0.0);
  // Survives magnitudes that would overflow naive pow chains of inputs.
  const double huge = product_estimate(1.001, 1e6);
  EXPECT_GT(huge, 1e300);
  EXPECT_THROW(product_estimate(-1.0, 10.0), require_error);
}

TEST(Derived, VarianceEstimate) {
  // Values {1, 3}: avg = 2, avg of squares = 5, variance = 1.
  EXPECT_DOUBLE_EQ(variance_estimate(5.0, 2.0), 1.0);
  // Rounding can push avg² past avg(x²); clamp at zero.
  EXPECT_DOUBLE_EQ(variance_estimate(4.0 - 1e-15, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(stddev_estimate(5.0, 2.0), 1.0);
}

// ---------------------------------------------------------------- epochs

TEST(Epoch, AdvanceRollsEpochs) {
  EpochMachine m(3);
  EXPECT_EQ(m.epoch(), 0u);
  EXPECT_FALSE(m.advance_cycle());
  EXPECT_FALSE(m.advance_cycle());
  EXPECT_TRUE(m.advance_cycle());  // completed epoch 0
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.cycle_in_epoch(), 0u);
}

TEST(Epoch, ClassifyTags) {
  EpochMachine m(5);
  m.adopt(3);
  EXPECT_EQ(m.classify(3), EpochMachine::TagAction::kAccept);
  EXPECT_EQ(m.classify(4), EpochMachine::TagAction::kAdopt);
  EXPECT_EQ(m.classify(2), EpochMachine::TagAction::kStale);
}

TEST(Epoch, AdoptJumpsAndResetsCycle) {
  EpochMachine m(5);
  m.advance_cycle();
  m.advance_cycle();
  EXPECT_EQ(m.cycle_in_epoch(), 2u);
  m.adopt(7);
  EXPECT_EQ(m.epoch(), 7u);
  EXPECT_EQ(m.cycle_in_epoch(), 0u);
  EXPECT_THROW(m.adopt(7), require_error);
  EXPECT_THROW(m.adopt(3), require_error);
}

TEST(Epoch, RejectsZeroGamma) { EXPECT_THROW(EpochMachine(0), require_error); }

TEST(JoinGate, FoundersParticipateImmediately) {
  const JoinGate g;
  EXPECT_TRUE(g.participates_in(0));
  EXPECT_TRUE(g.participates_in(5));
}

TEST(JoinGate, JoinersWaitForNextEpoch) {
  const JoinGate g = JoinGate::joined_during(4);
  EXPECT_FALSE(g.participates_in(4));
  EXPECT_TRUE(g.participates_in(5));
  EXPECT_EQ(g.active_from(), 5u);
}

// -------------------------------------------------------- multi-instance

TEST(MultiInstance, CombineDropsTails) {
  // t = 6: drop 2 lowest + 2 highest, average the middle 2.
  const std::vector<double> est{1.0, 2.0, 99000.0, 101000.0, 1e7, 1e8};
  EXPECT_DOUBLE_EQ(robust_combine(est), 100000.0);
}

TEST(MultiInstance, SingleInstancePassesThrough) {
  const std::vector<double> est{123.0};
  EXPECT_DOUBLE_EQ(robust_combine(est), 123.0);
}

}  // namespace
}  // namespace gossip::core
