// Tests for src/sim: event ordering, FIFO tie-break, cancellation,
// run_until semantics, runaway protection, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "common/require.hpp"
#include "sim/event_loop.hpp"

namespace gossip::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0u);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
  EXPECT_EQ(loop.executed(), 3u);
}

TEST(EventLoop, FifoTieBreakAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime seen = 0;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { seen = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(seen, 150u);
}

TEST(EventLoop, SchedulingIntoThePastThrows) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(50, [] {}), require_error);
  EXPECT_THROW(loop.schedule_at(100, EventLoop::Callback{}), require_error);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  const TaskId id = loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already cancelled
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 20u);
}

TEST(EventLoop, CancelFromWithinCallback) {
  EventLoop loop;
  int fired = 0;
  const TaskId victim = loop.schedule_at(20, [&] { ++fired; });
  loop.schedule_at(10, [&] { loop.cancel(victim); });
  loop.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoop, RunUntilStopsAndAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(30, [&] { ++fired; });
  loop.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 20u);  // clock moved to the barrier
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until(30);  // inclusive
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunUntilOnEmptyQueueAdvancesClock) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500u);
}

TEST(EventLoop, PeriodicSelfRescheduling) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) loop.schedule_after(10, tick);
  };
  loop.schedule_after(10, tick);
  loop.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(loop.now(), 50u);
}

TEST(EventLoop, RunawayScheduleCaught) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_after(1, forever); };
  loop.schedule_after(1, forever);
  EXPECT_THROW(loop.run(/*max_events=*/1000), require_error);
}

TEST(EventLoop, InterleavedCancelAndReschedule) {
  // A timeout-style pattern: schedule, cancel on "reply", re-arm.
  EventLoop loop;
  int timeouts = 0;
  TaskId timeout = loop.schedule_at(100, [&] { ++timeouts; });
  loop.schedule_at(50, [&] {
    loop.cancel(timeout);  // reply arrived
    timeout = loop.schedule_after(100, [&] { ++timeouts; });
  });
  loop.run();
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(loop.now(), 150u);
}

}  // namespace
}  // namespace gossip::sim
