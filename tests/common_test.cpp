// Tests for src/common: RNG determinism and distribution sanity, NodeId,
// environment knobs, requirement checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/env.hpp"
#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng r(0);
  // A naive xoshiro seeded with all-zero state would emit zeros forever.
  std::set<std::uint64_t> distinct;
  for (int i = 0; i < 100; ++i) distinct.insert(r());
  EXPECT_EQ(distinct.size(), 100u);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBound)];
  // Each bucket expects 10000; allow 5% relative deviation (>6 sigma).
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBound, 500) << "bucket " << b;
  }
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng r(1);
  EXPECT_THROW(r.below(0), require_error);
}

TEST(Rng, RangeInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(13);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(17);
  double sum = 0.0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / kTrials, 3.0, 0.05);
}

TEST(Rng, PoissonHasRequestedMeanAndVariance) {
  Rng r(19);
  constexpr int kTrials = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const auto v = static_cast<double>(r.poisson(1.0));
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / kTrials;
  const double var = sumsq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng r(23);
  constexpr int kTrials = 20000;
  double sum = 0.0;
  for (int i = 0; i < kTrials; ++i) sum += static_cast<double>(r.poisson(200.0));
  EXPECT_NEAR(sum / kTrials, 200.0, 1.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleIsUnbiasedOnFirstSlot) {
  Rng r(31);
  constexpr int kTrials = 60000;
  std::vector<int> firsts(3, 0);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v{0, 1, 2};
    r.shuffle(v);
    ++firsts[static_cast<std::size_t>(v[0])];
  }
  for (int c : firsts) EXPECT_NEAR(c, kTrials / 3, 800);
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng r(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = r.sample_distinct(50, 10);
    std::unordered_set<std::uint64_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 10u);
    for (auto v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng r(41);
  auto sample = r.sample_distinct(8, 8);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleDistinctRejectsOversizedRequest) {
  Rng r(43);
  EXPECT_THROW(r.sample_distinct(3, 4), require_error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(51), b(51);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(NodeId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(NodeId, ValueRoundTrip) {
  NodeId id(42);
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(NodeId, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(7), NodeId(7));
  EXPECT_NE(NodeId(7), NodeId(8));
}

TEST(NodeId, Hashable) {
  std::unordered_set<NodeId> s;
  s.insert(NodeId(1));
  s.insert(NodeId(1));
  s.insert(NodeId(2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Env, U64FallbackAndParse) {
  ::unsetenv("GOSSIP_TEST_U64");
  EXPECT_EQ(env_u64("GOSSIP_TEST_U64", 7), 7u);
  ::setenv("GOSSIP_TEST_U64", "123", 1);
  EXPECT_EQ(env_u64("GOSSIP_TEST_U64", 7), 123u);
  ::setenv("GOSSIP_TEST_U64", "not-a-number", 1);
  EXPECT_EQ(env_u64("GOSSIP_TEST_U64", 7), 7u);
  ::unsetenv("GOSSIP_TEST_U64");
}

TEST(Env, DoubleFallbackAndParse) {
  ::unsetenv("GOSSIP_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("GOSSIP_TEST_D", 0.5), 0.5);
  ::setenv("GOSSIP_TEST_D", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("GOSSIP_TEST_D", 0.5), 0.25);
  ::unsetenv("GOSSIP_TEST_D");
}

TEST(Env, FlagSemantics) {
  ::unsetenv("GOSSIP_TEST_FLAG");
  EXPECT_FALSE(env_flag("GOSSIP_TEST_FLAG"));
  for (const char* off : {"0", "false", "FALSE", "off"}) {
    ::setenv("GOSSIP_TEST_FLAG", off, 1);
    EXPECT_FALSE(env_flag("GOSSIP_TEST_FLAG")) << off;
  }
  for (const char* on : {"1", "true", "yes"}) {
    ::setenv("GOSSIP_TEST_FLAG", on, 1);
    EXPECT_TRUE(env_flag("GOSSIP_TEST_FLAG")) << on;
  }
  ::unsetenv("GOSSIP_TEST_FLAG");
}

TEST(Require, ThrowsWithContext) {
  try {
    GOSSIP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const require_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

}  // namespace
}  // namespace gossip
