// Tests for the push-sum baseline (Kempe et al. [8] in the paper):
// conservation laws, convergence to the true average, loss behaviour,
// and the comparison facts the baseline bench reports.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "experiment/push_sum.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {
namespace {

PushSumConfig base(std::uint32_t n, std::uint32_t cycles) {
  PushSumConfig cfg;
  cfg.nodes = n;
  cfg.cycles = cycles;
  cfg.topology = TopologyConfig::random_k_out(20);
  return cfg;
}

TEST(PushSum, MassAndWeightConservedWithoutLoss) {
  PushSumSimulation sim(base(1000, 20), Rng(1));
  sim.init_scalar([](NodeId id) { return static_cast<double>(id.value()); });
  sim.run();
  EXPECT_NEAR(sim.total_sum(), 999.0 * 1000.0 / 2.0, 1e-6);
  EXPECT_NEAR(sim.total_weight(), 1000.0, 1e-9);
}

TEST(PushSum, ConvergesToTrueAverage) {
  PushSumSimulation sim(base(2000, 40), Rng(2));
  sim.init_scalar([](NodeId id) { return id.value() == 0 ? 2000.0 : 0.0; });
  sim.run();
  const auto s = stats::summarize(sim.estimates());
  EXPECT_EQ(s.count, 2000u);
  EXPECT_NEAR(s.mean, 1.0, 0.01);
  EXPECT_NEAR(s.min, 1.0, 0.05);
  EXPECT_NEAR(s.max, 1.0, 0.05);
}

TEST(PushSum, WorksOnNewscastOverlay) {
  PushSumConfig cfg = base(1500, 40);
  cfg.topology = TopologyConfig::newscast(30);
  PushSumSimulation sim(cfg, Rng(3));
  sim.init_scalar([](NodeId id) { return id.value() % 2 ? 4.0 : 0.0; });
  sim.run();
  EXPECT_NEAR(stats::summarize(sim.estimates()).mean, 2.0, 0.02);
}

TEST(PushSum, ConvergenceSlowerThanPushPull) {
  // The §8 comparison in numbers: per cycle, push–pull contracts variance
  // by ≈ 1/(2√e) ≈ 0.303 with two messages per node; push-sum's
  // one-way diffusion contracts strictly slower.
  PushSumSimulation ps(base(4000, 20), Rng(4));
  ps.init_scalar([](NodeId id) { return id.value() == 0 ? 4000.0 : 0.0; });
  ps.run();
  const double push_sum_factor = ps.tracker().mean_factor(15);

  ScenarioSpec ppcfg = ScenarioSpec::average_peak("pp", 4000, 20)
                           .with_topology(TopologyConfig::random_k_out(20))
                           .with_engine(EngineKind::kSerial);
  Engine ppengine;
  const auto pp = ppengine.run_single(ppcfg, 4);
  const double push_pull_factor = pp.tracker.mean_factor(15);

  EXPECT_GT(push_sum_factor, push_pull_factor + 0.05);
  EXPECT_LT(push_sum_factor, 0.75);  // still exponential
}

TEST(PushSum, MessageLossDestroysMassButEstimateDegradesGracefully) {
  // Contrast with push–pull: ANY lost push destroys sum AND weight.
  // Because both shrink together the estimate stays roughly unbiased,
  // but the conserved totals drop measurably.
  PushSumConfig cfg = base(2000, 30);
  cfg.p_message_loss = 0.2;
  PushSumSimulation sim(cfg, Rng(5));
  // Heterogeneous values (mean 10) so losses actually hit uneven pairs.
  sim.init_scalar([](NodeId id) { return id.value() % 2 ? 20.0 : 0.0; });
  sim.run();
  // Each cycle destroys half of a lost node's pair: E[weight] shrinks by
  // (1 - loss/2) per cycle, 0.9^30 ≈ 4% left.
  EXPECT_LT(sim.total_weight(), 2000.0 * 0.2);
  const auto s = stats::summarize(sim.estimates());
  EXPECT_NEAR(s.mean, 10.0, 1.0);  // estimates survive the mass loss
}

TEST(PushSum, Guards) {
  PushSumSimulation sim(base(100, 5), Rng(6));
  EXPECT_THROW(sim.run(), require_error);  // not initialized
  sim.init_scalar([](NodeId) { return 1.0; });
  sim.run();
  EXPECT_THROW(sim.run(), require_error);  // run twice
  PushSumConfig bad = base(100, 5);
  bad.p_message_loss = 1.5;
  EXPECT_THROW(PushSumSimulation(bad, Rng(7)), require_error);
}

}  // namespace
}  // namespace gossip::experiment
