// Continuous aggregation as a service: dynamic node values (DriftSpec),
// restart-free epoch pipelining (ServiceSpec + SnapshotStore), and the
// re-initialization hygiene both regimes depend on.
//
//  * drift_delta is a pure function of (spec, stream_seed, cycle, node):
//    bit-deterministic, zero outside its active window, and identical on
//    both engines — the cross-engine parity tests drive CycleSimulation
//    and IntraRepSimulation over shards {1,2,8} × threads {1,4} and
//    require bit-identical local values and tracking series.
//  * EpochMachine edge cases: adopt-then-stale ordering and the 64-bit
//    wraparound guard (a forged tag near 2^64 must fail loudly, not roll
//    over to epoch 0 and make every honest message stale).
//  * Combine-window staleness regression: robust-combine ring windows
//    hold reports about dead-epoch estimates at a re-initialization
//    boundary (epoch roll or §4.2 restart); if they are not flushed the
//    first post-boundary estimates are dragged toward the old epoch.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/require.hpp"
#include "core/epoch.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/intra_rep.hpp"
#include "experiment/parallel_runner.hpp"
#include "experiment/snapshot_store.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"

namespace gossip::experiment {
namespace {

void expect_same_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

// ---------------------------------------------------------- SnapshotStore

TEST(SnapshotStore, QueryBeforeAnyPublishIsEmpty) {
  SnapshotStore store;
  EXPECT_FALSE(store.query(0, 10).has_value());
  EXPECT_EQ(store.instances(), 0u);
  EXPECT_EQ(store.published(), 0u);
}

TEST(SnapshotStore, ServesFreshestSnapshotWithAge) {
  SnapshotStore store;
  store.publish(0, 42.0, /*epoch=*/1, /*cycle=*/10);
  const auto a = store.query(0, 13);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, 42.0);
  EXPECT_EQ(a->epoch, 1u);
  EXPECT_EQ(a->age_cycles, 3u);

  store.publish(0, 43.5, /*epoch=*/2, /*cycle=*/20);
  const auto b = store.query(0, 20);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->value, 43.5);
  EXPECT_EQ(b->epoch, 2u);
  EXPECT_EQ(b->age_cycles, 0u);
  EXPECT_EQ(store.published(), 2u);
}

TEST(SnapshotStore, IndependentInstanceLanes) {
  SnapshotStore store;
  store.publish(2, 7.0, 1, 5);
  EXPECT_EQ(store.instances(), 3u);
  EXPECT_FALSE(store.query(0, 6).has_value());
  EXPECT_FALSE(store.query(1, 6).has_value());
  ASSERT_TRUE(store.query(2, 6).has_value());
  EXPECT_EQ(store.query(2, 6)->value, 7.0);
  EXPECT_FALSE(store.query(3, 6).has_value());  // out of range, no throw
}

// ------------------------------------------------------------ EpochMachine

TEST(EpochMachine, AdoptThenStaleOrdering) {
  core::EpochMachine m(30);
  EXPECT_EQ(m.classify(0), core::EpochMachine::TagAction::kAccept);
  EXPECT_EQ(m.classify(7), core::EpochMachine::TagAction::kAdopt);
  m.adopt(7);
  // After the jump the old epoch — and everything between — is stale;
  // only 7 is current and anything newer still triggers a jump.
  EXPECT_EQ(m.epoch(), 7u);
  EXPECT_EQ(m.cycle_in_epoch(), 0u);
  EXPECT_EQ(m.classify(0), core::EpochMachine::TagAction::kStale);
  EXPECT_EQ(m.classify(6), core::EpochMachine::TagAction::kStale);
  EXPECT_EQ(m.classify(7), core::EpochMachine::TagAction::kAccept);
  EXPECT_EQ(m.classify(8), core::EpochMachine::TagAction::kAdopt);
  EXPECT_THROW(m.adopt(7), require_error);  // must be strictly newer
  EXPECT_THROW(m.adopt(3), require_error);
}

TEST(EpochMachine, AdvanceRollsExactlyAtEpochLength) {
  core::EpochMachine m(3);
  EXPECT_FALSE(m.advance_cycle());
  EXPECT_FALSE(m.advance_cycle());
  EXPECT_TRUE(m.advance_cycle());
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.cycle_in_epoch(), 0u);
}

TEST(EpochMachine, WraparoundGuardRefusesOverflow) {
  // A (forged or corrupted) tag near 2^64 adopts fine, but completing
  // that epoch would wrap the counter to 0 — every honest message would
  // then classify as stale forever. The machine must refuse loudly.
  core::EpochMachine m(1);
  m.adopt(~std::uint64_t{0});
  EXPECT_THROW(m.advance_cycle(), require_error);
  // The guard fires before the increment: the machine is still at the
  // adopted epoch and still classifies correctly.
  EXPECT_EQ(m.epoch(), ~std::uint64_t{0});
  EXPECT_EQ(m.classify(5), core::EpochMachine::TagAction::kStale);
}

// -------------------------------------------------------------- DriftSpec

TEST(Drift, DisabledAndPreStartCyclesProduceExactZero) {
  EXPECT_EQ(drift_delta(DriftSpec::none(), 1, 0, 0), 0.0);
  EXPECT_EQ(drift_delta(DriftSpec::linear(0.5, 10), 1, 9, 3), 0.0);
  EXPECT_EQ(drift_delta(DriftSpec::random_walk(0.5, 10), 1, 9, 3), 0.0);
  EXPECT_EQ(drift_delta(DriftSpec::step(5.0, 10), 1, 9, 3), 0.0);
  EXPECT_EQ(drift_delta(DriftSpec::step(5.0, 10), 1, 11, 3), 0.0);
}

TEST(Drift, LinearAndStepAreUniformAcrossNodes) {
  const DriftSpec lin = DriftSpec::linear(0.25, 2);
  EXPECT_EQ(drift_delta(lin, 9, 2, 0), 0.25);
  EXPECT_EQ(drift_delta(lin, 9, 100, 41), 0.25);
  const DriftSpec step = DriftSpec::step(-3.5, 4);
  EXPECT_EQ(drift_delta(step, 9, 4, 0), -3.5);
  EXPECT_EQ(drift_delta(step, 9, 4, 999), -3.5);
}

TEST(Drift, RandomWalkIsBoundedPerNodeAndBitDeterministic) {
  const DriftSpec walk = DriftSpec::random_walk(0.1);
  bool saw_distinct = false;
  double first = 0.0;
  for (std::uint32_t node = 0; node < 64; ++node) {
    const double d = drift_delta(walk, 0xfeed, 5, node);
    EXPECT_LT(std::abs(d), 0.1 + 1e-12);
    expect_same_bits(d, drift_delta(walk, 0xfeed, 5, node));  // pure
    if (node == 0) first = d;
    if (d != first) saw_distinct = true;
  }
  EXPECT_TRUE(saw_distinct);  // per-node streams, not one shared value
  // Distinct stream seeds decorrelate repetitions.
  EXPECT_NE(drift_delta(walk, 1, 5, 3), drift_delta(walk, 2, 5, 3));
}

// ---------------------------------------------- cross-engine drift parity

ScenarioSpec drift_service_spec(std::uint32_t nodes = 200) {
  ScenarioSpec spec = ScenarioSpec::average_peak("svc", nodes, 16);
  spec.init = InitKind::kUniform;
  spec.topology = TopologyConfig::newscast(10);
  spec.drift = DriftSpec::random_walk(0.05);
  spec.service = ServiceSpec::pipelined(/*epoch_cycles=*/4,
                                        /*staleness_bound=*/6);
  return spec;
}

TEST(DriftParity, LocalValuesBitIdenticalAcrossEngines) {
  // The drifted values v_u are init + Σ drift_delta — nothing else may
  // touch them, so the two engines must agree bit-for-bit even though
  // their exchange models (and hence estimates) differ.
  SimConfig cfg;
  cfg.nodes = 150;
  cfg.cycles = 12;
  cfg.topology = TopologyConfig::newscast(10);
  cfg.drift = DriftSpec::random_walk(0.05);
  cfg.stream_seed = 0xabcdef;

  CycleSimulation serial(cfg, Rng(77));
  serial.init_scalar([](NodeId u) { return 0.01 * u.value(); });
  const failure::NoFailures none;
  serial.run(none);

  IntraRepSimulation sharded(cfg, 77, /*shards=*/4);
  sharded.init_scalar([](NodeId u) { return 0.01 * u.value(); });
  ParallelRunner pool(2);
  sharded.run(none, pool);

  ASSERT_EQ(serial.local_values().size(), sharded.local_values().size());
  for (std::size_t u = 0; u < serial.local_values().size(); ++u) {
    expect_same_bits(serial.local_values()[u], sharded.local_values()[u]);
  }
}

TEST(DriftParity, IntraRepServiceInvariantAcrossShardsAndThreads) {
  // Shard and thread count are performance knobs, never semantic ones —
  // including for the new drift + pipelining surface. TSan-raced in CI.
  ScenarioSpec spec = drift_service_spec();
  spec.engine = EngineKind::kIntraRep;

  Engine reference({EngineKind::kIntraRep, 1, 1});
  const RunResult ref = reference.run_single(spec, 123);
  ASSERT_FALSE(ref.tracking_error.empty());
  ASSERT_FALSE(ref.staleness.empty());
  EXPECT_GT(ref.epochs_published, 0u);

  for (const unsigned shards : {2u, 8u}) {
    for (const unsigned threads : {1u, 4u}) {
      Engine engine({EngineKind::kIntraRep, threads, shards});
      const RunResult run = engine.run_single(spec, 123);
      ASSERT_EQ(run.per_cycle.size(), ref.per_cycle.size());
      for (std::size_t c = 0; c < ref.per_cycle.size(); ++c) {
        expect_same_bits(run.per_cycle[c].mean(), ref.per_cycle[c].mean());
        expect_same_bits(run.per_cycle[c].variance(),
                         ref.per_cycle[c].variance());
      }
      ASSERT_EQ(run.tracking_error.size(), ref.tracking_error.size());
      for (std::size_t i = 0; i < ref.tracking_error.size(); ++i) {
        expect_same_bits(run.tracking_error[i], ref.tracking_error[i]);
      }
      EXPECT_EQ(run.staleness, ref.staleness);
      EXPECT_EQ(run.epochs_published, ref.epochs_published);
    }
  }
}

// ------------------------------------------------- pipelined service runs

TEST(Service, PipelinePublishesEveryEpochAndBoundsStaleness) {
  ScenarioSpec spec = drift_service_spec();
  Engine engine({EngineKind::kSerial});
  const RunResult run = engine.run_single(spec, 9);
  // 16 cycles at γ=4: four published epochs, queries served from the
  // first publication (end of cycle 3) on.
  EXPECT_EQ(run.epochs_published, 4u);
  EXPECT_EQ(run.staleness.size(), 13u);
  for (const std::uint32_t age : run.staleness) {
    EXPECT_LT(age, 4u);  // a fresh report lands every γ cycles
  }
  ASSERT_EQ(run.served_error.size(), run.staleness.size());
  for (const double e : run.served_error) {
    EXPECT_TRUE(std::isfinite(e));
  }
  // Tracking is recorded alongside every per-cycle variance snapshot.
  EXPECT_EQ(run.tracking_error.size(), run.per_cycle.size());
}

TEST(Service, TrackingFollowsLinearDriftWithinEpochLag) {
  // Under linear drift the true mean moves `rate` per cycle; pipelined
  // re-seeding must keep the converged estimate within an epoch's worth
  // of drift instead of freezing at the epoch-0 mean.
  ScenarioSpec spec = drift_service_spec(300);
  spec.cycles = 24;
  spec.drift = DriftSpec::linear(0.05);
  Engine engine({EngineKind::kSerial});
  const RunResult run = engine.run_single(spec, 4);
  ASSERT_EQ(run.tracking_error.size(), 25u);
  // 24 cycles at 0.05/cycle moves the truth by 1.2; a non-tracking
  // protocol would end 1.2 away. Allow one epoch of lag (4 * 0.05).
  EXPECT_LT(run.tracking_error.back(), 0.25);
}

// --------------------------------- combine-window flush at epoch boundary

TEST(ServiceRegression, EpochRollFlushesRobustCombineWindows) {
  // A +100 step lands on the first cycle of epoch 1. Every live value
  // and estimate jumps with it (mass-preserving drift), so the first
  // post-roll cycle must settle near 101. If the epoch roll left the
  // ring windows filled, median-of-means over {own ≈ 101} ∪ {8 stale
  // reports ≈ 1} would snap estimates back to the dead epoch's mean ≈ 1.
  ScenarioSpec spec = ScenarioSpec::average_peak("svc-flush", 128, 12);
  spec.init = InitKind::kUniform;
  spec.topology = TopologyConfig::newscast(10);
  spec.combine = CombineSpec::median_of_means(9);
  spec.service = ServiceSpec::pipelined(/*epoch_cycles=*/6,
                                        /*staleness_bound=*/8);
  spec.drift = DriftSpec::step(100.0, /*at_cycle=*/6);
  Engine engine({EngineKind::kSerial});
  const RunResult run = engine.run_single(spec, 31);
  ASSERT_EQ(run.per_cycle.size(), 13u);
  EXPECT_LT(run.per_cycle[6].mean(), 2.0);   // converged epoch 0
  EXPECT_GT(run.per_cycle[7].mean(), 90.0);  // first post-roll cycle
  EXPECT_GT(run.per_cycle.back().mean(), 90.0);
}

TEST(ServiceRegression, RestartFlushesRobustCombineWindows) {
  // The §4.2 restart path must re-seed from the initial snapshot AND
  // flush the windows: the re-seeded estimates carry the full initial
  // spread, so the first post-restart snapshot's variance jumps back
  // toward the initial variance. Stale ≈-converged reports left in the
  // windows would clamp the robust combine straight back to the old
  // consensus and erase that jump.
  ScenarioSpec spec = ScenarioSpec::average_peak("restart-flush", 128, 12);
  spec.init = InitKind::kUniform;
  spec.topology = TopologyConfig::newscast(10);
  spec.combine = CombineSpec::median_of_means(9);
  spec.failure = FailureSpec::restart(6);
  Engine engine({EngineKind::kSerial});
  const RunResult run = engine.run_single(spec, 31);
  ASSERT_EQ(run.per_cycle.size(), 13u);
  const double var0 = run.per_cycle[0].variance();
  ASSERT_GT(var0, 0.0);
  // Converged before the restart…
  EXPECT_LT(run.per_cycle[6].variance(), 0.02 * var0);
  // …and the first post-restart snapshot carries the re-seeded spread
  // (minus one cycle of mixing).
  EXPECT_GT(run.per_cycle[7].variance(), 0.05 * var0);
}

// ------------------------------------------------- lane width at 10^3-10^4

TEST(Lanes, CountWorkloadRunsAtServiceTrafficWidth) {
  // 10^3 concurrent COUNT instances through the flat [node × instance]
  // path under churn: every lane stays finite-or-inf (no corruption),
  // and the robust per-node size estimates land near N.
  ScenarioSpec spec = ScenarioSpec::count("lanes", 1000, 12, 1000);
  spec.topology = TopologyConfig::newscast(20);
  spec.failure = FailureSpec::churn_fraction(0.01);
  Engine engine({EngineKind::kSerial});
  const RunResult run = engine.run_single(spec, 77);
  ASSERT_GT(run.sizes.count, 0u);
  EXPECT_GT(run.sizes.median, 800.0);
  EXPECT_LT(run.sizes.median, 1250.0);
}

}  // namespace
}  // namespace gossip::experiment
