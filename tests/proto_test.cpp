// Tests for src/proto: the event-driven "practical protocol" of §4 —
// convergence under real delays, timeouts against crashed peers, epoch
// restart and epidemic epoch synchronization, join gating, the
// 1+Poisson(1) exchange distribution, and agreement with the cycle
// driver's convergence factor.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "proto/node.hpp"
#include "proto/world.hpp"
#include "stats/running_stats.hpp"
#include "theory/predictions.hpp"

namespace gossip::proto {
namespace {

WorldConfig small_world(std::uint32_t n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.nodes = n;
  cfg.seed = seed;
  cfg.protocol.cache_size = 20;
  return cfg;
}

TEST(ProtoWorld, ConvergesToTrueAverage) {
  World w(small_world(300, 7));
  w.start();
  w.run_cycles(25);
  const auto s = w.estimate_summary();
  EXPECT_EQ(s.count, 300u);
  EXPECT_NEAR(s.mean, 1.0, 0.02);
  EXPECT_NEAR(s.min, 1.0, 0.05);
  EXPECT_NEAR(s.max, 1.0, 0.05);
}

TEST(ProtoWorld, VarianceDropsExponentially) {
  World w(small_world(500, 11));
  w.start();
  const double v0 = w.estimate_summary().variance;
  w.run_cycles(10);
  const double v10 = w.estimate_summary().variance;
  EXPECT_LT(v10, v0 * 1e-3);
}

TEST(ProtoWorld, ConvergenceFactorNearCycleDriver) {
  // Cross-engine agreement: the event engine (random phases, real
  // delays) must land in the same factor regime as the cycle driver,
  // between 1/(2√e) and 1/e (§6.2's two pairing models bracket it).
  stats::RunningStats factors;
  for (std::uint64_t seed : {13ull, 14ull, 15ull}) {
    World w(small_world(600, seed));
    w.start();
    w.run_cycles(2);  // settle phases
    const double va = w.estimate_summary().variance;
    w.run_cycles(10);
    const double vb = w.estimate_summary().variance;
    factors.add(std::pow(vb / va, 1.0 / 10.0));
  }
  EXPECT_GT(factors.mean(), theory::push_pull_factor() - 0.05);
  EXPECT_LT(factors.mean(), theory::uniform_pairing_factor() + 0.07);
}

TEST(ProtoWorld, ExchangeCountIsOnePlusPoissonOne) {
  // §4.5: per cycle a node initiates exactly one exchange and receives a
  // Poisson(1)-distributed number of pushes — mean 2 exchanges total.
  World w(small_world(800, 17));
  w.start();
  w.run_cycles(20);
  stats::RunningStats received, initiated;
  for (std::uint32_t u = 0; u < w.size(); ++u) {
    const auto& st = w.node(NodeId(u)).stats();
    received.add(static_cast<double>(st.pushes_received) / 20.0);
    initiated.add(static_cast<double>(st.exchanges_initiated) / 20.0);
  }
  EXPECT_NEAR(initiated.mean(), 1.0, 0.06);  // exactly one per cycle
  EXPECT_NEAR(received.mean(), 1.0, 0.05);
  // Poisson(1) per cycle would give variance 1/20 for a 20-cycle mean;
  // newscast views are not perfectly uniform samplers, so the in-degree
  // is overdispersed — accept a band around the ideal.
  EXPECT_GT(received.variance(), 0.02);
  EXPECT_LT(received.variance(), 0.2);
}

TEST(ProtoWorld, CrashedPeerCausesTimeoutsNotHangs) {
  World w(small_world(50, 19));
  w.start();
  w.run_cycles(3);
  for (std::uint32_t u = 10; u < 35; ++u) w.crash(NodeId(u));
  w.run_cycles(10);
  std::uint64_t timeouts = 0;
  for (std::uint32_t u = 0; u < 10; ++u) {
    timeouts += w.node(NodeId(u)).stats().timeouts;
  }
  EXPECT_GT(timeouts, 0u);  // dead peers were contacted and timed out
  // Survivors still converge among themselves (mass of the dead is lost,
  // but estimates keep contracting).
  const auto s = w.estimate_summary();
  EXPECT_EQ(s.count, 25u);
  EXPECT_LT(s.variance, 1.0);
}

TEST(ProtoWorld, EpochRestartsProduceReports) {
  WorldConfig cfg = small_world(200, 23);
  cfg.protocol.cycles_per_epoch = 15;
  World w(cfg);
  w.start();
  w.run_cycles(16.5);  // past the first epoch boundary at every node
  const auto reports = w.reports();
  EXPECT_EQ(reports.size(), 200u);
  // The first epoch's report is the converged average ≈ 1. Residual
  // spread after γ=15 cycles: σ ≈ sqrt(σ0²·ρ^15) ≈ 0.03 — allow 5σ.
  for (double r : reports) EXPECT_NEAR(r, 1.0, 0.15);
  // All nodes rolled into epoch 1.
  for (std::uint32_t u = 0; u < 200; ++u) {
    EXPECT_EQ(w.node(NodeId(u)).epoch(), 1u) << u;
  }
}

TEST(ProtoWorld, SecondEpochAggregatesFreshValues) {
  // Adaptivity (§4.1): values change after epoch 0; epoch 1's report
  // reflects the new values, not the stale ones.
  WorldConfig cfg = small_world(200, 29);
  cfg.protocol.cycles_per_epoch = 12;
  World w(cfg);
  w.start();
  w.run_cycles(6);
  for (std::uint32_t u = 0; u < 200; ++u) {
    w.node(NodeId(u)).set_local_value(5.0);  // world shifted mid-epoch
  }
  w.run_cycles(19);  // finish epoch 0 (+6) and all of epoch 1 (+12), slack 1
  const auto reports = w.reports();
  ASSERT_FALSE(reports.empty());
  for (double r : reports) EXPECT_NEAR(r, 5.0, 0.1);
}

TEST(ProtoWorld, LaggardAdoptsNewerEpochEpidemically) {
  // §4.3: a node that missed the epoch roll jumps as soon as it hears a
  // higher epoch id.
  WorldConfig cfg = small_world(100, 31);
  cfg.protocol.cycles_per_epoch = 5;
  World w(cfg);
  w.start();
  w.run_cycles(30);
  stats::RunningStats adoption;
  std::uint64_t max_epoch = 0, min_epoch = ~0ull;
  for (std::uint32_t u = 0; u < 100; ++u) {
    const auto& n = w.node(NodeId(u));
    max_epoch = std::max(max_epoch, n.epoch());
    min_epoch = std::min(min_epoch, n.epoch());
    adoption.add(static_cast<double>(n.stats().epochs_adopted));
  }
  // Despite random phases the network stays epoch-synchronized within 1.
  EXPECT_LE(max_epoch - min_epoch, 1u);
}

TEST(ProtoWorld, JoinerSitsOutThenParticipates) {
  WorldConfig cfg = small_world(120, 37);
  cfg.protocol.cycles_per_epoch = 12;
  World w(cfg);
  w.start();
  w.run_cycles(3);
  const NodeId fresh = w.join(NodeId(0), /*local_value=*/100.0);
  EXPECT_FALSE(w.node(fresh).participating());
  // Its 100.0 must NOT leak into the running epoch's average (true
  // avg 1); a leak would pull the report mean toward 1 + 100/121 ≈ 1.8.
  w.run_cycles(10.5);  // completes epoch 0 at every founder
  const auto reports = w.reports();
  ASSERT_FALSE(reports.empty());
  EXPECT_NEAR(stats::summarize(reports).mean, 1.0, 0.15);
  for (double r : reports) EXPECT_NEAR(r, 1.0, 0.5);
  // After the roll it participates.
  w.run_cycles(12);
  EXPECT_TRUE(w.node(fresh).participating());
  EXPECT_GT(w.node(fresh).stats().exchanges_completed, 0u);
}

TEST(ProtoWorld, MessageLossOnlyDegradesGracefully) {
  WorldConfig cfg = small_world(300, 41);
  cfg.p_loss = 0.1;
  World w(cfg);
  w.start();
  w.run_cycles(25);
  const auto s = w.estimate_summary();
  // Converged (tightly clustered) but the mean drifts off 1: response
  // loss changes the sum (§7.2), and with a peak workload an early loss
  // can carry a large fraction of the whole mass. "Reasonable range" is
  // the paper's own wording for this regime.
  EXPECT_LT(s.max - s.min, 0.2);
  EXPECT_GT(s.mean, 0.3);
  EXPECT_LT(s.mean, 3.0);
}

TEST(ProtoWorld, MinAndMaxBroadcastEpidemically) {
  for (const auto kind : {UpdateKind::kMin, UpdateKind::kMax}) {
    WorldConfig cfg = small_world(200, 43);
    cfg.protocol.update = kind;
    cfg.initial_value = [](NodeId id) {
      return static_cast<double>(id.value() + 1);
    };
    World w(cfg);
    w.start();
    w.run_cycles(15);
    const auto s = w.estimate_summary();
    const double expected = kind == UpdateKind::kMin ? 1.0 : 200.0;
    EXPECT_DOUBLE_EQ(s.min, expected);
    EXPECT_DOUBLE_EQ(s.max, expected);
  }
}

TEST(ProtoWorld, GeometricMeanConverges) {
  WorldConfig cfg = small_world(200, 47);
  cfg.protocol.update = UpdateKind::kGeometric;
  cfg.initial_value = [](NodeId id) { return id.value() % 2 == 0 ? 4.0 : 1.0; };
  World w(cfg);
  w.start();
  w.run_cycles(25);
  const auto s = w.estimate_summary();
  EXPECT_NEAR(s.mean, 2.0, 0.05);  // sqrt(4*1)
  EXPECT_LT(s.max - s.min, 0.1);
}

TEST(ProtoWorld, DeterministicBySeed) {
  const auto run_once = [] {
    World w(small_world(150, 51));
    w.start();
    w.run_cycles(12);
    return w.trace().digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ProtoWorld, NewscastViewStaysFreshUnderCrashes) {
  World w(small_world(200, 53));
  w.start();
  w.run_cycles(5);
  for (std::uint32_t u = 100; u < 200; ++u) w.crash(NodeId(u));
  w.run_cycles(15);
  // Live nodes' views should reference mostly live peers again.
  std::size_t stale = 0, total = 0;
  for (std::uint32_t u = 0; u < 100; ++u) {
    for (const auto& e : w.node(NodeId(u)).view().entries()) {
      ++total;
      stale += e.id.value() >= 100 ? 1 : 0;
    }
  }
  EXPECT_LT(static_cast<double>(stale) / static_cast<double>(total), 0.05);
}

TEST(ProtoWorld, Guards) {
  EXPECT_THROW(World(small_world(1, 1)), require_error);
  World w(small_world(10, 57));
  EXPECT_THROW((void)w.node(NodeId(10)), require_error);
  w.start();
  w.crash(NodeId(3));
  EXPECT_THROW(w.join(NodeId(3), 0.0), require_error);
}

}  // namespace
}  // namespace gossip::proto
