// The intra-rep engine's extended workload vocabulary: COUNT and
// multi-instance state carried through the matched propose/match/apply
// cycles, and multi-round matching.
//
//  * Golden values: the COUNT trajectory is pinned per match-round count
//    and must be bit-identical for every shards × threads combination —
//    shard count and thread count are performance knobs, never semantic
//    ones, for every workload the engine speaks.
//  * Leader parity: init_count_leaders consumes the boundary RNG exactly
//    as CycleSimulation's, so the same (config, seed) elects the same
//    leader set on both engines.
//  * Raced stress: heavy-churn COUNT across a wide shard × thread pool
//    for the TSan job, compared bitwise against the 1/1 reference.
//  * Convergence: R = 3 matched rounds must bring the per-cycle factor
//    on the AVERAGE-peak workload within 1.2× of the serial driver's
//    (it currently lands well below it — see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/intra_rep.hpp"
#include "experiment/parallel_runner.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"

namespace gossip::experiment {
namespace {

void expect_same_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.per_cycle.size(), b.per_cycle.size());
  for (std::size_t c = 0; c < a.per_cycle.size(); ++c) {
    EXPECT_EQ(a.per_cycle[c].count(), b.per_cycle[c].count());
    expect_same_bits(a.per_cycle[c].mean(), b.per_cycle[c].mean());
    expect_same_bits(a.per_cycle[c].variance(), b.per_cycle[c].variance());
  }
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.sizes.count, b.sizes.count);
  expect_same_bits(a.sizes.mean, b.sizes.mean);
  expect_same_bits(a.sizes.variance, b.sizes.variance);
  expect_same_bits(a.sizes.min, b.sizes.min);
  expect_same_bits(a.sizes.max, b.sizes.max);
  expect_same_bits(a.sizes.median, b.sizes.median);
}

ScenarioSpec count_spec(std::uint32_t rounds) {
  return ScenarioSpec::count("ir-count", 150, 18, 4)
      .with_topology(TopologyConfig::newscast(10))
      .with_comm({0.0, 0.1})
      .with_failure(FailureSpec::sudden_death(3, 0.25))
      .with_engine(EngineKind::kIntraRep)
      .with_match_rounds(rounds);
}

TEST(IntraRepCount, GoldenValuesAndShardThreadRoundMatrix) {
  // {mean, min, max, median} of the robust size estimates, captured at
  // shards=1, threads=1 from this implementation. One row per
  // match-round count; every shards × threads combination must
  // reproduce its row bit-for-bit.
  const double expected[][4] = {
      {239.40823225479852, 99.329805996472658, 590.41441441441441,
       201.25174810665004},
      {137.84191378504818, 106.7096154562762, 159.17973190255447,
       142.13504105906907},
      {175.54300910862116, 175.06500884475139, 176.3682163321603,
       175.47726308591405},
  };
  for (std::uint32_t rounds : {1u, 2u, 3u}) {
    const ScenarioSpec spec = count_spec(rounds);
    Engine reference({EngineKind::kIntraRep, 1, 1});
    const RunResult baseline = reference.run_single(spec, 770);
    SCOPED_TRACE(testing::Message() << "rounds=" << rounds);
    EXPECT_EQ(baseline.sizes.mean, expected[rounds - 1][0]);
    EXPECT_EQ(baseline.sizes.min, expected[rounds - 1][1]);
    EXPECT_EQ(baseline.sizes.max, expected[rounds - 1][2]);
    EXPECT_EQ(baseline.sizes.median, expected[rounds - 1][3]);
    EXPECT_EQ(baseline.participants, 113u);  // 150 - 37 sudden deaths
    for (unsigned shards : {2u, 8u}) {
      for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(testing::Message()
                     << "shards=" << shards << " threads=" << threads);
        Engine engine({EngineKind::kIntraRep, threads, shards});
        expect_identical(baseline, engine.run_single(spec, 770));
      }
    }
  }
}

TEST(IntraRepCount, LeaderElectionMatchesSerialDriver) {
  // init_count_leaders draws from the boundary RNG in the same order as
  // CycleSimulation's, so (config, seed) fixes one leader set for both
  // engines — COUNT results stay attributable to the same instances.
  SimConfig cfg;
  cfg.nodes = 200;
  cfg.cycles = 5;
  cfg.instances = 6;
  cfg.topology = TopologyConfig::newscast(8);
  CycleSimulation serial_sim(cfg, Rng(4242));
  serial_sim.init_count_leaders();
  IntraRepSimulation intra_sim(cfg, 4242, 4);
  intra_sim.init_count_leaders();
  EXPECT_EQ(serial_sim.leaders(), intra_sim.leaders());
}

TEST(IntraRepCount, MultiInstanceSlotsAverageIndependently) {
  // Every instance slot conserves its own total: with no failures and
  // no losses, instance i's sum over participants stays 1.0 (the
  // leader's initial mass), for every slot.
  SimConfig cfg;
  cfg.nodes = 64;
  cfg.cycles = 10;
  cfg.instances = 3;
  cfg.topology = TopologyConfig::newscast(8);
  cfg.match_rounds = 2;
  IntraRepSimulation sim(cfg, 99, 2);
  sim.init_count_leaders();
  ParallelRunner pool(2);
  failure::NoFailures plan;
  sim.run(plan, pool);
  for (std::uint32_t i = 0; i < cfg.instances; ++i) {
    double sum = 0.0;
    for (NodeId u : sim.population().live()) sum += sim.estimate(u, i);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "instance " << i;
  }
}

TEST(IntraRepCount, RecordsEveryInstanceLane) {
  // The lane-0-only stats bug: multi-instance runs must record one
  // variance trajectory per concurrent aggregate, not just slot 0 —
  // engine parity with the serial driver, which records the same lanes.
  SimConfig cfg;
  cfg.nodes = 128;
  cfg.cycles = 12;
  cfg.instances = 4;
  cfg.topology = TopologyConfig::newscast(10);
  CycleSimulation serial_sim(cfg, Rng(321));
  serial_sim.init_count_leaders();
  IntraRepSimulation intra_sim(cfg, 321, 4);
  intra_sim.init_count_leaders();
  ASSERT_EQ(serial_sim.leaders(), intra_sim.leaders());

  failure::NoFailures plan;
  serial_sim.run(plan);
  ParallelRunner pool(2);
  intra_sim.run(plan, pool);

  const auto& serial_lanes = serial_sim.instance_cycle_stats();
  const auto& intra_lanes = intra_sim.instance_cycle_stats();
  ASSERT_EQ(serial_lanes.size(), cfg.cycles + 1u);
  ASSERT_EQ(intra_lanes.size(), cfg.cycles + 1u);
  for (std::size_t c = 0; c <= cfg.cycles; ++c) {
    ASSERT_EQ(serial_lanes[c].size(), cfg.instances);
    ASSERT_EQ(intra_lanes[c].size(), cfg.instances);
    // Lane 0 is exactly the headline per-cycle series on both engines.
    expect_same_bits(serial_lanes[c][0].mean(),
                     serial_sim.cycle_stats()[c].mean());
    expect_same_bits(intra_lanes[c][0].mean(),
                     intra_sim.cycle_stats()[c].mean());
    for (std::uint32_t i = 0; i < cfg.instances; ++i) {
      EXPECT_EQ(serial_lanes[c][i].count(), intra_lanes[c][i].count());
      // AVERAGE conserves each lane's total mass (one leader at 1.0),
      // so both engines' lane means agree to rounding — the trajectory
      // *shapes* differ (matched-cycle model), the invariant doesn't.
      EXPECT_NEAR(serial_lanes[c][i].mean(), intra_lanes[c][i].mean(),
                  1e-12)
          << "cycle " << c << " lane " << i;
    }
  }
  // Every lane genuinely converges: variance at the end is far below
  // the post-init snapshot on every lane, not just lane 0.
  for (std::uint32_t i = 0; i < cfg.instances; ++i) {
    EXPECT_LT(intra_lanes.back()[i].variance(),
              intra_lanes.front()[i].variance() / 10.0)
        << "lane " << i;
  }
}

TEST(IntraRepMatch, RacedReservationAndReductionPhases) {
  // Dedicated TSan shape for the reservation matching + segmented stats
  // reduction: a wide shard × thread pool, heavy churn (so the active
  // lists drain over several reservation rounds against a shifting
  // population) on both a dynamic and a sampled topology, multi-round —
  // compared bitwise against the 1-shard/1-thread reference.
  for (const auto& topology :
       {TopologyConfig::newscast(8), TopologyConfig::complete()}) {
    ScenarioSpec spec = ScenarioSpec::average_peak("ir-match-raced", 500, 6)
                            .with_topology(topology)
                            .with_failure(FailureSpec::churn(25))
                            .with_engine(EngineKind::kIntraRep)
                            .with_match_rounds(3);
    Engine reference({EngineKind::kIntraRep, 1, 1});
    const RunResult baseline = reference.run_single(spec, 20260727);
    Engine raced({EngineKind::kIntraRep, 8, 32});
    SCOPED_TRACE(testing::Message()
                 << "kind=" << static_cast<int>(topology.kind));
    expect_identical(baseline, raced.run_single(spec, 20260727));
  }
}

TEST(IntraRepCount, RacedShardsUnderHeavyChurn) {
  // Stress shape for the sanitizer jobs: many shards, a big thread
  // pool, kills + joins every cycle and multi-round COUNT state, so
  // TSan sees the multi-instance propose/match/apply and kill_many
  // phases genuinely raced.
  ScenarioSpec spec = ScenarioSpec::count("ir-churn", 600, 8, 8)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_failure(FailureSpec::churn(20))
                          .with_engine(EngineKind::kIntraRep)
                          .with_match_rounds(2);
  Engine reference({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = reference.run_single(spec, 4242);
  Engine raced({EngineKind::kIntraRep, 8, 16});
  expect_identical(baseline, raced.run_single(spec, 4242));
}

TEST(IntraRepRounds, SweepRacedAcrossShardThreadMatrix) {
  // The rounds axis × the execution matrix, AVERAGE under churn: every
  // round count is its own pinned trajectory, invariant over the pool.
  for (std::uint32_t rounds : {1u, 2u, 3u}) {
    ScenarioSpec spec = ScenarioSpec::average_peak("ir-rounds", 300, 6)
                            .with_topology(TopologyConfig::newscast(10))
                            .with_failure(FailureSpec::churn(10))
                            .with_engine(EngineKind::kIntraRep)
                            .with_match_rounds(rounds);
    Engine reference({EngineKind::kIntraRep, 1, 1});
    const RunResult baseline = reference.run_single(spec, 7);
    for (unsigned shards : {2u, 8u}) {
      for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(testing::Message() << "rounds=" << rounds
                                        << " shards=" << shards
                                        << " threads=" << threads);
        Engine engine({EngineKind::kIntraRep, threads, shards});
        expect_identical(baseline, engine.run_single(spec, 7));
      }
    }
  }
}

TEST(IntraRepRounds, ThreeRoundsWithinBoundOfSerialFactor) {
  // The convergence criterion of the multi-round lift: R=3 brings the
  // per-cycle factor on the AVERAGE-peak NEWSCAST workload within 1.2×
  // of the serial driver's (measurements land well below the bound —
  // ratio ≈ 0.6 — so this is loose by design, not flaky).
  for (std::uint64_t seed : {1ull, 7ull}) {
    ScenarioSpec spec = ScenarioSpec::average_peak("ir-factor", 2000, 20)
                            .with_topology(TopologyConfig::newscast(30));
    Engine serial_engine({EngineKind::kSerial});
    const RunResult serial = serial_engine.run_single(spec, seed);
    spec.with_engine(EngineKind::kIntraRep).with_match_rounds(3);
    Engine intra_engine({EngineKind::kIntraRep, 2, 2});
    const RunResult intra = intra_engine.run_single(spec, seed);

    const double serial_factor = serial.tracker.mean_factor(20);
    const double intra_factor = intra.tracker.mean_factor(20);
    SCOPED_TRACE(testing::Message()
                 << "seed=" << seed << " serial=" << serial_factor
                 << " intra(R=3)=" << intra_factor);
    EXPECT_LE(intra_factor, 1.2 * serial_factor);
    // Sanity on the serial reference itself: ≈ 1/(2√e) ≈ 0.303.
    EXPECT_GT(serial_factor, 0.25);
    EXPECT_LT(serial_factor, 0.40);
  }
}

TEST(IntraRepRounds, MoreRoundsConvergeFaster) {
  // The factor must improve monotonically in R on the AVERAGE-peak
  // workload — each extra matching mixes strictly more.
  double previous = 1.0;
  for (std::uint32_t rounds : {1u, 2u, 3u}) {
    ScenarioSpec spec = ScenarioSpec::average_peak("ir-mono", 2000, 20)
                            .with_topology(TopologyConfig::newscast(30))
                            .with_engine(EngineKind::kIntraRep)
                            .with_match_rounds(rounds);
    Engine engine({EngineKind::kIntraRep, 1, 1});
    const double factor =
        engine.run_single(spec, 7).tracker.mean_factor(20);
    SCOPED_TRACE(testing::Message() << "rounds=" << rounds);
    EXPECT_LT(factor, previous);
    previous = factor;
  }
}

}  // namespace
}  // namespace gossip::experiment
