// The compile-time stream-salt registry (src/common/stream_salt.hpp).
//
//  * Pinned values: every named salt and keying multiplier is frozen to
//    the exact hex constant the scattered call sites used before the
//    registry centralized them — a silent renumber would re-key every
//    RNG stream and shift all pinned goldens at once.
//  * Distinctness: the static_asserts in the header already make a
//    colliding pair a compile error; the runtime checks here re-state
//    the property so a future registry rewrite (e.g. dropping the
//    asserts) still has a failing test to answer to.
//  * Key derivation: node_stream_key / agg_round_salt /
//    newscast_round_salt must match the literal formulas the engines
//    used historically, bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/rng.hpp"
#include "common/stream_salt.hpp"

namespace gossip::salt {
namespace {

TEST(StreamSaltTest, PinnedStreamSaltValues) {
  EXPECT_EQ(kEngineInitValues, 0xabcdULL);
  EXPECT_EQ(kEngineGraph, 0x715ea7f0c9e2d3b1ULL);
  EXPECT_EQ(kEngineFaults, 0x5bd1e995cc9e2d51ULL);
  EXPECT_EQ(kIntraRepNewscast, 0x6e65777363617374ULL);
  EXPECT_EQ(kIntraRepAgg, 0x6167677265676174ULL);
  EXPECT_EQ(kDriftDelta, 0x6472696674ULL);
  EXPECT_EQ(kAdversaryMembership, 0x62797a616e74ULL);
  EXPECT_EQ(kRuntimeDriver, 0xd21fe7a9b4c3580fULL);
  EXPECT_EQ(kRuntimeWorkerPool, 0x9c0b5e1fd2a68734ULL);
  EXPECT_EQ(kThreadedLossNet, 0x9e3779b97f4a7c15ULL);
}

TEST(StreamSaltTest, PinnedMultiplierValues) {
  EXPECT_EQ(kMulCycle, 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(kMulNode, 0xd1342543de82ef95ULL);
  EXPECT_EQ(kMulAggRound, 0x94d049bb133111ebULL);
  EXPECT_EQ(kMulNewscastRound, 0xbf58476d1ce4e5b9ULL);
  EXPECT_EQ(kMulSweepPoint, 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(kMulSweepRep, 0xbf58476d1ce4e5b9ULL);
  EXPECT_EQ(kMulAdversaryId, 0xda942042e4dd58b5ULL);
}

// The tables must enumerate every named constant: a salt added to the
// header but not its table escapes the compile-time distinctness check.
TEST(StreamSaltTest, TablesCoverEveryNamedConstant) {
  const std::set<std::uint64_t> streams(kStreamSalts.begin(),
                                        kStreamSalts.end());
  for (std::uint64_t s :
       {kEngineInitValues, kEngineGraph, kEngineFaults, kIntraRepNewscast,
        kIntraRepAgg, kDriftDelta, kAdversaryMembership, kRuntimeDriver,
        kRuntimeWorkerPool, kThreadedLossNet}) {
    EXPECT_TRUE(streams.count(s)) << "unregistered stream salt " << s;
  }
  const std::set<std::uint64_t> node_muls(kNodeStreamMultipliers.begin(),
                                          kNodeStreamMultipliers.end());
  for (std::uint64_t m :
       {kMulCycle, kMulNode, kMulAggRound, kMulNewscastRound}) {
    EXPECT_TRUE(node_muls.count(m)) << "unregistered node multiplier " << m;
  }
  const std::set<std::uint64_t> sweep_muls(kSweepMultipliers.begin(),
                                           kSweepMultipliers.end());
  for (std::uint64_t m : {kMulSweepPoint, kMulSweepRep}) {
    EXPECT_TRUE(sweep_muls.count(m)) << "unregistered sweep multiplier "
                                     << m;
  }
}

// All-pairs distinctness, per domain. A std::set collapses duplicates,
// so size preservation is exactly the no-collision property.
TEST(StreamSaltTest, AllPairsDistinctWithinEachDomain) {
  const std::set<std::uint64_t> streams(kStreamSalts.begin(),
                                        kStreamSalts.end());
  EXPECT_EQ(streams.size(), kStreamSalts.size());
  const std::set<std::uint64_t> node_muls(kNodeStreamMultipliers.begin(),
                                          kNodeStreamMultipliers.end());
  EXPECT_EQ(node_muls.size(), kNodeStreamMultipliers.size());
  const std::set<std::uint64_t> sweep_muls(kSweepMultipliers.begin(),
                                           kSweepMultipliers.end());
  EXPECT_EQ(sweep_muls.size(), kSweepMultipliers.size());
}

// node_stream_key must reproduce the literal expression the intra-rep
// engine inlined before the registry existed.
TEST(StreamSaltTest, NodeStreamKeyMatchesHistoricalFormula) {
  const std::uint64_t seed = 0x1234'5678'9abc'def0ULL;
  for (std::uint32_t cycle : {0u, 1u, 7u, 1000u}) {
    for (std::uint32_t node : {0u, 3u, 65535u}) {
      const std::uint64_t phase = kIntraRepNewscast;
      const std::uint64_t expected =
          seed ^ (static_cast<std::uint64_t>(cycle) + 1) * kMulCycle ^
          (static_cast<std::uint64_t>(node) + 1) * kMulNode ^ phase;
      EXPECT_EQ(node_stream_key(seed, cycle, node, phase), expected);
    }
  }
}

TEST(StreamSaltTest, RoundSaltsMatchHistoricalFormulas) {
  for (std::uint32_t round : {0u, 1u, 2u, 41u}) {
    EXPECT_EQ(agg_round_salt(round),
              kIntraRepAgg ^
                  (static_cast<std::uint64_t>(round) * kMulAggRound));
    EXPECT_EQ(newscast_round_salt(round),
              kIntraRepNewscast ^ (static_cast<std::uint64_t>(round) *
                                   kMulNewscastRound));
  }
}

// The PR 4 bug class, stated as a test: with the round multiplier
// distinct from the cycle multiplier, (cycle, round) pairs that used to
// alias onto one stream now key different streams.
TEST(StreamSaltTest, CycleRoundPairsNoLongerAlias) {
  const std::uint64_t seed = 99;
  // Under the old scheme (round reusing kMulCycle), (c=0, r=3) and
  // (c=2, r=1) collapse: (0+1+3)*mul == (2+1+1)*mul.
  std::uint64_t a = node_stream_key(seed, 0, 5, agg_round_salt(3));
  std::uint64_t b = node_stream_key(seed, 2, 5, agg_round_salt(1));
  EXPECT_NE(a, b);
  // And the keys really feed distinct generators.
  Rng ra(splitmix64(a));
  Rng rb(splitmix64(b));
  EXPECT_NE(ra(), rb());
}

// Same key in, same stream out — the registry helpers are pure.
TEST(StreamSaltTest, KeyDerivationIsReproducible) {
  std::uint64_t k1 = node_stream_key(7, 3, 11, kDriftDelta);
  std::uint64_t k2 = node_stream_key(7, 3, 11, kDriftDelta);
  EXPECT_EQ(k1, k2);
  Rng r1(splitmix64(k1));
  Rng r2(splitmix64(k2));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r1(), r2());
  }
}

}  // namespace
}  // namespace gossip::salt
