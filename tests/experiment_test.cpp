// Tests for src/experiment: the cycle driver's mechanics (determinism,
// participation gating, guards) and the *physics* of the reproduction —
// convergence factors matching 1/(2√e), COUNT accuracy, the documented
// effects of crashes, link failures and message loss.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/require.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/scale.hpp"
#include "experiment/spec.hpp"
#include "experiment/table.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"
#include "stats/running_stats.hpp"
#include "theory/predictions.hpp"

namespace gossip::experiment {
namespace {

SimConfig base_config(std::uint32_t n, std::uint32_t cycles,
                      TopologyConfig topo) {
  SimConfig cfg;
  cfg.nodes = n;
  cfg.cycles = cycles;
  cfg.topology = topo;
  return cfg;
}

// The physics tests drive workloads through the Engine facade; these
// shims translate the historical (SimConfig, plan, raw seed) call shape.
ScenarioSpec spec_of(const SimConfig& cfg, AggregateKind aggregate) {
  ScenarioSpec spec =
      aggregate == AggregateKind::kCount
          ? ScenarioSpec::count("test", cfg.nodes, cfg.cycles, cfg.instances)
          : ScenarioSpec::average_peak("test", cfg.nodes, cfg.cycles);
  spec.topology = cfg.topology;
  spec.comm = {cfg.comm.p_link_down(), cfg.comm.p_message_loss()};
  spec.engine = EngineKind::kSerial;
  return spec;
}

RunResult run_avg(const SimConfig& cfg, const failure::FailurePlan& plan,
                  std::uint64_t seed) {
  Engine engine;
  return engine.run_single(spec_of(cfg, AggregateKind::kAverage), seed,
                           &plan);
}

RunResult run_cnt(const SimConfig& cfg, const failure::FailurePlan& plan,
                  std::uint64_t seed) {
  Engine engine;
  return engine.run_single(spec_of(cfg, AggregateKind::kCount), seed, &plan);
}

// ------------------------------------------------------------ mechanics

TEST(CycleSim, RequiresInitialization) {
  CycleSimulation sim(base_config(100, 5, TopologyConfig::complete()),
                      Rng(1));
  failure::NoFailures none;
  EXPECT_THROW(sim.run(none), require_error);
}

TEST(CycleSim, RunOnlyOnce) {
  CycleSimulation sim(base_config(100, 5, TopologyConfig::complete()),
                      Rng(1));
  sim.init_peak(100.0);
  failure::NoFailures none;
  sim.run(none);
  EXPECT_THROW(sim.run(none), require_error);
}

TEST(CycleSim, ScalarInitNeedsSingleInstance) {
  SimConfig cfg = base_config(100, 5, TopologyConfig::complete());
  cfg.instances = 3;
  CycleSimulation sim(cfg, Rng(1));
  EXPECT_THROW(sim.init_peak(1.0), require_error);
}

TEST(CycleSim, EstimateGuards) {
  CycleSimulation sim(base_config(10, 1, TopologyConfig::complete()),
                      Rng(1));
  sim.init_peak(10.0);
  EXPECT_THROW((void)sim.estimate(NodeId(10), 0), require_error);
  EXPECT_THROW((void)sim.estimate(NodeId(0), 1), require_error);
  EXPECT_DOUBLE_EQ(sim.estimate(NodeId(0), 0), 10.0);
}

TEST(CycleSim, DeterministicBySeed) {
  for (auto topo : {TopologyConfig::newscast(10),
                    TopologyConfig::random_k_out(8)}) {
    const auto cfg = base_config(300, 10, topo);
    failure::NoFailures none;
    CycleSimulation a(cfg, Rng(42)), b(cfg, Rng(42));
    a.init_peak(300.0);
    b.init_peak(300.0);
    a.run(none);
    b.run(none);
    for (std::uint32_t u = 0; u < 300; ++u) {
      ASSERT_DOUBLE_EQ(a.estimate(NodeId(u), 0), b.estimate(NodeId(u), 0));
    }
  }
}

TEST(CycleSim, DifferentSeedsDiffer) {
  const auto cfg = base_config(300, 3, TopologyConfig::newscast(10));
  failure::NoFailures none;
  CycleSimulation a(cfg, Rng(1)), b(cfg, Rng(2));
  a.init_peak(300.0);
  b.init_peak(300.0);
  a.run(none);
  b.run(none);
  int identical = 0;
  for (std::uint32_t u = 0; u < 300; ++u) {
    identical += (a.estimate(NodeId(u), 0) == b.estimate(NodeId(u), 0));
  }
  EXPECT_LT(identical, 300);
}

TEST(CycleSim, CycleStatsHasInitialSnapshotPlusOnePerCycle) {
  const auto cfg = base_config(200, 7, TopologyConfig::complete());
  CycleSimulation sim(cfg, Rng(3));
  sim.init_peak(200.0);
  failure::NoFailures none;
  sim.run(none);
  ASSERT_EQ(sim.cycle_stats().size(), 8u);
  EXPECT_EQ(sim.cycle_stats().front().count(), 200u);
}

TEST(CycleSim, StaticTopologyRejectsJoins) {
  const auto cfg = base_config(100, 5, TopologyConfig::random_k_out(10));
  CycleSimulation sim(cfg, Rng(5));
  sim.init_peak(100.0);
  failure::Churn churn(5);
  EXPECT_THROW(sim.run(churn), require_error);
}

TEST(CycleSim, JoinersAreNotParticipants) {
  const auto cfg = base_config(200, 6, TopologyConfig::newscast(15));
  CycleSimulation sim(cfg, Rng(7));
  sim.init_peak(200.0);
  failure::Churn churn(10);
  sim.run(churn);
  // 6 cycles × 10 joins: population grew, participants only shrink.
  EXPECT_EQ(sim.population().total(), 260u);
  EXPECT_EQ(sim.population().live_count(), 200u);
  const auto parts = sim.participants();
  // Kills are uniform over the live set, so some of the 60 hit joiners:
  // participants lie in (200-60, 200).
  EXPECT_GT(parts.size(), 140u);
  EXPECT_LT(parts.size(), 200u);
  for (NodeId u : parts) EXPECT_LT(u.value(), 200u);
}

// ------------------------------------------------------------- physics

TEST(Physics, MassConservedWithoutFailures) {
  // Without crashes or message loss the mean estimate over all nodes is
  // invariant: the paper's §3 sum-conservation argument.
  const auto cfg = base_config(1000, 20, TopologyConfig::newscast(20));
  RunResult run =
      run_avg(cfg, failure::NoFailures{}, /*seed=*/11);
  for (const auto& rs : run.per_cycle) {
    EXPECT_NEAR(rs.mean(), 1.0, 1e-9);
  }
}

TEST(Physics, VarianceMonotoneWithoutMessageLoss) {
  const auto cfg = base_config(1000, 25, TopologyConfig::random_k_out(20));
  RunResult run = run_avg(cfg, failure::NoFailures{}, 13);
  const auto& vars = run.tracker.variances();
  for (std::size_t i = 1; i < vars.size(); ++i) {
    EXPECT_LE(vars[i], vars[i - 1] * (1.0 + 1e-12)) << "cycle " << i;
  }
}

TEST(Physics, CompleteGraphMatchesPushPullFactor) {
  // The headline theory check: ρ ≈ 1/(2√e) ≈ 0.303 on a sufficiently
  // random overlay. Averaged over reps to tame run-to-run noise.
  const auto cfg = base_config(4000, 20, TopologyConfig::complete());
  stats::RunningStats factors;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    RunResult run =
        run_avg(cfg, failure::NoFailures{}, rep_seed(17, 0, rep));
    factors.add(run.tracker.mean_factor(15));
  }
  EXPECT_NEAR(factors.mean(), theory::push_pull_factor(), 0.03);
}

TEST(Physics, RandomAndNewscastCloseToCompete) {
  const std::uint32_t n = 4000;
  const auto factor_of = [n](TopologyConfig topo, std::uint64_t seed) {
    const auto cfg = base_config(n, 20, topo);
    RunResult run = run_avg(cfg, failure::NoFailures{}, seed);
    return run.tracker.mean_factor(15);
  };
  EXPECT_NEAR(factor_of(TopologyConfig::random_k_out(20), 19),
              theory::push_pull_factor(), 0.05);
  EXPECT_NEAR(factor_of(TopologyConfig::newscast(30), 23),
              theory::push_pull_factor(), 0.06);
}

TEST(Physics, TopologyOrderingMatchesFig3) {
  // Fig. 3: ring lattice (W-S β=0) converges far slower than random;
  // rewiring improves monotonically (fig. 4a's trend).
  const std::uint32_t n = 2000;
  const auto factor_of = [n](TopologyConfig topo) {
    const auto cfg = base_config(n, 20, topo);
    RunResult run = run_avg(cfg, failure::NoFailures{}, 29);
    return run.tracker.mean_factor(15);
  };
  const double ring = factor_of(TopologyConfig::ring_lattice(20));
  const double ws25 = factor_of(TopologyConfig::watts_strogatz(20, 0.25));
  const double ws75 = factor_of(TopologyConfig::watts_strogatz(20, 0.75));
  const double rnd = factor_of(TopologyConfig::random_k_out(20));
  EXPECT_GT(ring, 0.6);      // paper: ≈ 0.8
  EXPECT_LT(ws25, ring);     // some rewiring helps
  EXPECT_LT(ws75, ws25);     // more helps more
  EXPECT_LT(std::abs(rnd - theory::push_pull_factor()), 0.05);
  EXPECT_GT(ws75, rnd - 0.05);  // but never beats fully random
}

TEST(Physics, ScaleFreeConvergesNearRandom) {
  const auto cfg = base_config(3000, 20, TopologyConfig::barabasi_albert(20));
  RunResult run = run_avg(cfg, failure::NoFailures{}, 31);
  // Paper fig. 3a: scale-free sits slightly above random but well below
  // the lattice family.
  EXPECT_LT(run.tracker.mean_factor(15), 0.45);
}

TEST(Physics, FactorIndependentOfNetworkSize) {
  // Fig. 3a's flat curves: the same factor at 500 and 8000 nodes.
  const auto factor_at = [](std::uint32_t n) {
    const auto cfg = base_config(n, 20, TopologyConfig::random_k_out(20));
    stats::RunningStats f;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      RunResult run =
          run_avg(cfg, failure::NoFailures{}, rep_seed(37, n, rep));
      f.add(run.tracker.mean_factor(12));
    }
    return f.mean();
  };
  EXPECT_NEAR(factor_at(500), factor_at(8000), 0.05);
}

TEST(Physics, CountRecoversNetworkSize) {
  SimConfig cfg = base_config(2000, 30, TopologyConfig::newscast(30));
  RunResult run = run_cnt(cfg, failure::NoFailures{}, 41);
  EXPECT_EQ(run.participants, 2000u);
  // After 30 cycles every node's estimate is essentially exact.
  EXPECT_NEAR(run.sizes.mean, 2000.0, 2.0);
  EXPECT_NEAR(run.sizes.min, 2000.0, 2.0);
  EXPECT_NEAR(run.sizes.max, 2000.0, 2.0);
}

TEST(Physics, CountMultiInstanceAlsoExact) {
  SimConfig cfg = base_config(1000, 30, TopologyConfig::newscast(30));
  cfg.instances = 10;
  RunResult run = run_cnt(cfg, failure::NoFailures{}, 43);
  EXPECT_NEAR(run.sizes.mean, 1000.0, 1.0);
}

TEST(Physics, LinkFailureOnlySlowsConvergence) {
  // §6.2/§7.2: with P_d the factor degrades toward e^(P_d−1) but the
  // mean (and thus the final estimate) is untouched.
  SimConfig cfg = base_config(3000, 30, TopologyConfig::newscast(30));
  cfg.comm = failure::CommFailureModel::link_failure(0.5);
  RunResult run = run_avg(cfg, failure::NoFailures{}, 47);
  for (const auto& rs : run.per_cycle) EXPECT_NEAR(rs.mean(), 1.0, 1e-9);
  const double factor = run.tracker.mean_factor(20);
  const double bound = theory::link_failure_bound(0.5);
  EXPECT_LT(factor, bound + 0.04);
  EXPECT_GT(factor, theory::push_pull_factor() - 0.02);
}

TEST(Physics, LinkFailureBoundHoldsAcrossRates) {
  for (double pd : {0.2, 0.4, 0.7}) {
    SimConfig cfg = base_config(2000, 30, TopologyConfig::newscast(30));
    cfg.comm = failure::CommFailureModel::link_failure(pd);
    stats::RunningStats f;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      RunResult run = run_avg(cfg, failure::NoFailures{},
                                        rep_seed(53, std::uint64_t(pd * 10), rep));
      f.add(run.tracker.mean_factor(20));
    }
    EXPECT_LT(f.mean(), theory::link_failure_bound(pd) + 0.05) << pd;
  }
}

TEST(Physics, ResponseLossBreaksMassConservation) {
  // §7.2: losing responses changes the global average (the passive side
  // already updated). With 30% loss over 20 cycles the drift is visible.
  SimConfig cfg = base_config(2000, 20, TopologyConfig::newscast(30));
  cfg.comm = failure::CommFailureModel::message_loss(0.3);
  RunResult run = run_avg(cfg, failure::NoFailures{}, 59);
  const double final_mean = run.per_cycle.back().mean();
  EXPECT_GT(std::abs(final_mean - 1.0), 1e-4);
}

TEST(Physics, CountDegradesGracefullyWithMessageLoss) {
  // Fig. 7b: small loss ⇒ reasonable estimates.
  SimConfig cfg = base_config(2000, 30, TopologyConfig::newscast(30));
  cfg.comm = failure::CommFailureModel::message_loss(0.05);
  RunResult run = run_cnt(cfg, failure::NoFailures{}, 61);
  EXPECT_GT(run.sizes.min, 1000.0);
  EXPECT_LT(run.sizes.max, 4000.0);
}

TEST(Physics, SuddenDeathLateIsHarmless) {
  // Fig. 6a: by cycle ~10 the variance is so small that killing half the
  // network barely moves the estimate.
  SimConfig cfg = base_config(2000, 30, TopologyConfig::newscast(30));
  RunResult run =
      run_cnt(cfg, failure::SuddenDeath(/*death_cycle=*/15, 0.5), 67);
  EXPECT_EQ(run.participants, 1000u);
  EXPECT_NEAR(run.sizes.mean, 2000.0, 60.0);
}

TEST(Physics, SuddenDeathEarlyIsWild) {
  // Killing half the network at cycle 1 scatters the estimate widely
  // across repetitions (fig. 6a's left edge).
  SimConfig cfg = base_config(2000, 30, TopologyConfig::newscast(30));
  stats::RunningStats means;
  int infinite = 0;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    RunResult run = run_cnt(cfg, failure::SuddenDeath(1, 0.5),
                             rep_seed(71, 0, rep));
    // If every node holding non-zero mass died, the estimate is infinite
    // — the paper: "the estimate can even become infinite".
    if (std::isfinite(run.sizes.mean)) {
      means.add(run.sizes.mean);
    } else {
      ++infinite;
    }
  }
  // Wild either way: infinite runs, or a wide spread across reps
  // (late death stays within a percent or two).
  if (infinite == 0) {
    EXPECT_GT(means.stddev() / means.mean(), 0.05);
  } else {
    SUCCEED() << infinite << " runs diverged to infinity";
  }
}

TEST(Physics, ChurnKeepsEstimateInRange) {
  // Fig. 6b: replacing 2.5% of the network per cycle still yields
  // estimates in a reasonable band around the epoch-start size.
  SimConfig cfg = base_config(2000, 30, TopologyConfig::newscast(30));
  RunResult run = run_cnt(cfg, failure::Churn(50), 73);
  // Kills are uniform over the live set (joiners included), so surviving
  // participants ≈ N(1 - r/N)^cycles = 2000 · 0.975³⁰ ≈ 934.
  EXPECT_GT(run.participants, 800u);
  EXPECT_LT(run.participants, 1100u);
  EXPECT_GT(run.sizes.mean, 1000.0);
  EXPECT_LT(run.sizes.mean, 4000.0);
}

TEST(Physics, MultiInstanceTrimmingBeatsSingleUnderLoss)
{
  // Fig. 8b's point: with 20% message loss, t = 20 instances with the
  // trimmed combiner give a far tighter node-to-node spread than t = 1.
  const auto spread_of = [](std::uint32_t t, std::uint64_t seed) {
    SimConfig cfg = base_config(1500, 30, TopologyConfig::newscast(30));
    cfg.instances = t;
    cfg.comm = failure::CommFailureModel::message_loss(0.2);
    RunResult run = run_cnt(cfg, failure::NoFailures{}, seed);
    return (run.sizes.max - run.sizes.min) / run.sizes.mean;
  };
  stats::RunningStats single, multi;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    single.add(spread_of(1, rep_seed(79, 1, rep)));
    multi.add(spread_of(20, rep_seed(79, 20, rep)));
  }
  EXPECT_LT(multi.mean(), 0.5 * single.mean());
}

TEST(Physics, Theorem1PredictionMatchesMonteCarlo) {
  // Fig. 5 in miniature: Var(µ_20)/E(σ²_0) against eq. 2 on the complete
  // topology. Monte-Carlo variance of a variance is noisy; assert the
  // right order of magnitude and sign structure rather than 5% accuracy.
  const std::uint32_t n = 3000;
  const double pf = 0.05;
  SimConfig cfg = base_config(n, 20, TopologyConfig::complete());
  stats::RunningStats mu20;
  double sigma0_sq = 0.0;
  for (std::uint64_t rep = 0; rep < 60; ++rep) {
    RunResult run = run_avg(cfg, failure::ProportionalCrash(pf),
                                      rep_seed(83, 0, rep));
    mu20.add(run.per_cycle.back().mean());
    sigma0_sq = run.per_cycle.front().variance();
  }
  const double measured = mu20.variance() / sigma0_sq;
  const double predicted = theory::mu_variance(
      pf, n, sigma0_sq, theory::push_pull_factor(), 20) / sigma0_sq;
  EXPECT_GT(measured, predicted / 3.0);
  EXPECT_LT(measured, predicted * 3.0);
}

TEST(Physics, CrashFreeRunsHaveNoMuVariance) {
  // The Pf = 0 anchor of fig. 5: without crashes µ is exactly 1 in every
  // repetition (mass conservation), so Var(µ) = 0.
  SimConfig cfg = base_config(1000, 20, TopologyConfig::complete());
  stats::RunningStats mu;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    RunResult run = run_avg(cfg, failure::NoFailures{},
                                      rep_seed(89, 0, rep));
    mu.add(run.per_cycle.back().mean());
  }
  EXPECT_LT(mu.variance(), 1e-18);
}

// ----------------------------------------------------------- harness aux

TEST(Scale, DefaultsWithoutEnv) {
  ::unsetenv("GOSSIP_FULL");
  ::unsetenv("GOSSIP_N");
  ::unsetenv("GOSSIP_REPS");
  ::unsetenv("GOSSIP_SEED");
  const Scale s = bench_scale(1000, 10, 100000, 50);
  EXPECT_EQ(s.nodes, 1000u);
  EXPECT_EQ(s.reps, 10u);
  EXPECT_FALSE(s.full);
}

TEST(Scale, FullSwitchesToPaperScale) {
  ::setenv("GOSSIP_FULL", "1", 1);
  const Scale s = bench_scale(1000, 10, 100000, 50);
  EXPECT_EQ(s.nodes, 100000u);
  EXPECT_EQ(s.reps, 50u);
  EXPECT_TRUE(s.full);
  ::unsetenv("GOSSIP_FULL");
}

TEST(Scale, ExplicitOverridesWin) {
  ::setenv("GOSSIP_FULL", "1", 1);
  ::setenv("GOSSIP_N", "777", 1);
  ::setenv("GOSSIP_REPS", "3", 1);
  const Scale s = bench_scale(1000, 10, 100000, 50);
  EXPECT_EQ(s.nodes, 777u);
  EXPECT_EQ(s.reps, 3u);
  ::unsetenv("GOSSIP_FULL");
  ::unsetenv("GOSSIP_N");
  ::unsetenv("GOSSIP_REPS");
}

TEST(TableOutput, AlignedPrintAndCsv) {
  Table t({"x", "value"});
  t.add_row({"1", fmt(0.5, 2)});
  t.add_row({"10", fmt_sci(12345.0, 2)});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream pretty;
  t.print(pretty);
  EXPECT_NE(pretty.str().find("value"), std::string::npos);
  EXPECT_NE(pretty.str().find("0.50"), std::string::npos);
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_EQ(csv.str(), "x,value\n1,0.50\n10,1.23e+04\n");
}

TEST(TableOutput, RowWidthGuard) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), require_error);
}

TEST(TableOutput, CsvFileHonorsEnvDir) {
  Table t({"k", "v"});
  t.add_row({"1", "2"});
  ::unsetenv("GOSSIP_CSV_DIR");
  EXPECT_FALSE(t.maybe_write_csv_file("gossip_test_table"));
  ::setenv("GOSSIP_CSV_DIR", "/tmp", 1);
  EXPECT_TRUE(t.maybe_write_csv_file("gossip_test_table"));
  std::ifstream in("/tmp/gossip_test_table.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  ::unsetenv("GOSSIP_CSV_DIR");
  std::remove("/tmp/gossip_test_table.csv");
}

TEST(RepSeed, StableAndSpread) {
  EXPECT_EQ(rep_seed(1, 2, 3), rep_seed(1, 2, 3));
  EXPECT_NE(rep_seed(1, 2, 3), rep_seed(1, 2, 4));
  EXPECT_NE(rep_seed(1, 2, 3), rep_seed(1, 3, 3));
  EXPECT_NE(rep_seed(2, 2, 3), rep_seed(1, 2, 3));
}

}  // namespace
}  // namespace gossip::experiment
