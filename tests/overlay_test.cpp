// Tests for src/overlay: CSR graph mechanics, every §4.4 topology
// generator, structural analysis, live population and peer samplers.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "overlay/analysis.hpp"
#include "overlay/generators.hpp"
#include "overlay/graph.hpp"
#include "overlay/peer_sampler.hpp"
#include "overlay/population.hpp"

namespace gossip::overlay {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, FromAdjacencyRoundTrip) {
  std::vector<std::vector<NodeId>> adj{
      {NodeId(1), NodeId(2)}, {NodeId(0)}, {NodeId(0)}};
  const Graph g = Graph::from_adjacency(adj, /*directed=*/false);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(NodeId(0)), 2u);
  EXPECT_EQ(g.degree(NodeId(1)), 1u);
  EXPECT_TRUE(g.has_edge(NodeId(0), NodeId(1)));
  EXPECT_FALSE(g.has_edge(NodeId(1), NodeId(2)));
  g.validate();
}

TEST(Graph, DirectedEdgeCountNotHalved) {
  std::vector<std::vector<NodeId>> adj{{NodeId(1)}, {}};
  const Graph g = Graph::from_adjacency(adj, /*directed=*/true);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.directed());
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  const Graph g = complete_graph(4);
  EXPECT_THROW((void)g.neighbors(NodeId(4)), require_error);
  EXPECT_THROW((void)g.neighbors(NodeId::invalid()), require_error);
}

TEST(Graph, ValidateCatchesAsymmetry) {
  std::vector<std::vector<NodeId>> adj{{NodeId(1)}, {}};
  const Graph g = Graph::from_adjacency(adj, /*directed=*/false);
  EXPECT_THROW(g.validate(), require_error);
}

TEST(Graph, ValidateCatchesSelfLoop) {
  std::vector<std::vector<NodeId>> adj{{NodeId(0)}};
  const Graph g = Graph::from_adjacency(adj, /*directed=*/true);
  EXPECT_THROW(g.validate(), require_error);
}

TEST(CompleteGraph, StructureAndDegrees) {
  const Graph g = complete_graph(25);
  g.validate();
  EXPECT_EQ(g.node_count(), 25u);
  EXPECT_EQ(g.edge_count(), 25u * 24 / 2);
  for (std::uint32_t u = 0; u < 25; ++u) {
    EXPECT_EQ(g.degree(NodeId(u)), 24u);
  }
  EXPECT_TRUE(is_connected(g));
}

TEST(CompleteGraph, RejectsTrivialSizes) {
  EXPECT_THROW(complete_graph(0), require_error);
  EXPECT_THROW(complete_graph(1), require_error);
}

TEST(RandomKOut, DegreeExactlyKAndDistinct) {
  Rng rng(1);
  const Graph g = random_k_out(200, 20, rng);
  g.validate();
  EXPECT_TRUE(g.directed());
  for (std::uint32_t u = 0; u < 200; ++u) {
    const auto ns = g.neighbors(NodeId(u));
    EXPECT_EQ(ns.size(), 20u);
    std::unordered_set<NodeId> distinct(ns.begin(), ns.end());
    EXPECT_EQ(distinct.size(), 20u);
    EXPECT_EQ(distinct.count(NodeId(u)), 0u);
  }
}

TEST(RandomKOut, ConnectedAtPaperDegree) {
  // A random 20-out graph on 10^3..10^4 nodes is (weakly) connected with
  // overwhelming probability; the paper's theory assumes connectivity.
  for (std::uint64_t seed : {2ull, 3ull, 4ull}) {
    Rng rng(seed);
    EXPECT_TRUE(is_connected(random_k_out(5000, 20, rng))) << seed;
  }
}

TEST(RandomKOut, DeterministicBySeed) {
  Rng a(9), b(9);
  const Graph ga = random_k_out(100, 5, a);
  const Graph gb = random_k_out(100, 5, b);
  for (std::uint32_t u = 0; u < 100; ++u) {
    const auto na = ga.neighbors(NodeId(u));
    const auto nb = gb.neighbors(NodeId(u));
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(RandomKOut, RejectsBadK) {
  Rng rng(1);
  EXPECT_THROW(random_k_out(10, 0, rng), require_error);
  EXPECT_THROW(random_k_out(10, 10, rng), require_error);
}

TEST(RingLattice, StructureMatchesDefinition) {
  const Graph g = ring_lattice(10, 4);
  g.validate();
  EXPECT_EQ(g.edge_count(), 10u * 4 / 2);
  for (std::uint32_t u = 0; u < 10; ++u) {
    EXPECT_EQ(g.degree(NodeId(u)), 4u);
    EXPECT_TRUE(g.has_edge(NodeId(u), NodeId((u + 1) % 10)));
    EXPECT_TRUE(g.has_edge(NodeId(u), NodeId((u + 2) % 10)));
    EXPECT_FALSE(g.has_edge(NodeId(u), NodeId((u + 3) % 10)));
  }
  EXPECT_TRUE(is_connected(g));
}

TEST(RingLattice, HighClusteringLongPaths) {
  Rng rng(5);
  const Graph g = ring_lattice(1000, 20);
  // Ring lattice clustering tends to 3(k-2)/(4(k-1)) ≈ 0.71 for k=20.
  EXPECT_GT(clustering_coefficient(g, rng, 200), 0.6);
  // Mean path ~ n/(2k) = 25 hops; far beyond any small world.
  EXPECT_GT(mean_path_length(g, rng, 5), 10.0);
}

TEST(RingLattice, RejectsBadParameters) {
  EXPECT_THROW(ring_lattice(2, 2), require_error);
  EXPECT_THROW(ring_lattice(10, 3), require_error);   // odd k
  EXPECT_THROW(ring_lattice(10, 10), require_error);  // k == n
  EXPECT_THROW(ring_lattice(10, 0), require_error);
}

TEST(WattsStrogatz, BetaZeroIsRingLattice) {
  Rng rng(7);
  const Graph ws = watts_strogatz(50, 6, 0.0, rng);
  const Graph ring = ring_lattice(50, 6);
  for (std::uint32_t u = 0; u < 50; ++u) {
    auto a = ws.neighbors(NodeId(u));
    auto b = ring.neighbors(NodeId(u));
    std::vector<NodeId> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb);
  }
}

TEST(WattsStrogatz, PreservesEdgeCountAndStaysSimple) {
  for (double beta : {0.25, 0.5, 0.75, 1.0}) {
    Rng rng(11);
    const Graph g = watts_strogatz(500, 10, beta, rng);
    g.validate();  // no self loops, no duplicates, symmetric
    EXPECT_EQ(g.edge_count(), 500u * 10 / 2) << beta;
  }
}

TEST(WattsStrogatz, RewiringLowersClusteringAndPathLength) {
  Rng r1(13), r2(13), r3(14), r4(14);
  const Graph ordered = watts_strogatz(800, 10, 0.0, r1);
  const Graph small_world = watts_strogatz(800, 10, 0.25, r2);
  const double c0 = clustering_coefficient(ordered, r3, 300);
  const double c1 = clustering_coefficient(small_world, r3, 300);
  EXPECT_LT(c1, c0);
  const double l0 = mean_path_length(ordered, r4, 4);
  const double l1 = mean_path_length(small_world, r4, 4);
  EXPECT_LT(l1, 0.5 * l0);  // the small-world collapse
}

TEST(WattsStrogatz, BetaOneApproachesRandomClustering) {
  Rng rng(17), rng2(18);
  const Graph g = watts_strogatz(2000, 10, 1.0, rng);
  // Random graph clustering ≈ k/n = 0.005; allow generous headroom.
  EXPECT_LT(clustering_coefficient(g, rng2, 500), 0.05);
}

TEST(WattsStrogatz, StaysConnectedAtPaperScaleParameters) {
  for (double beta : {0.0, 0.25, 0.5, 0.75}) {
    Rng rng(19);
    EXPECT_TRUE(is_connected(watts_strogatz(2000, 20, beta, rng))) << beta;
  }
}

TEST(WattsStrogatz, RejectsBadBeta) {
  Rng rng(1);
  EXPECT_THROW(watts_strogatz(10, 4, -0.1, rng), require_error);
  EXPECT_THROW(watts_strogatz(10, 4, 1.1, rng), require_error);
}

TEST(BarabasiAlbert, NodeAndEdgeCounts) {
  Rng rng(23);
  const Graph g = barabasi_albert(1000, 10, rng);
  g.validate();
  EXPECT_EQ(g.node_count(), 1000u);
  // Seed clique: C(11,2) = 55 edges; each of the 989 arrivals adds 10.
  EXPECT_EQ(g.edge_count(), 55u + 989u * 10);
  // Mean degree ≈ 2m = 20, the paper's ⟨k⟩.
  EXPECT_NEAR(degree_summary(g).mean, 2.0 * g.edge_count() / 1000.0, 1e-9);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, MinimumDegreeIsM) {
  Rng rng(29);
  const Graph g = barabasi_albert(500, 5, rng);
  EXPECT_GE(degree_summary(g).min, 5.0);
}

TEST(BarabasiAlbert, HasHeavyTailVersusRandom) {
  Rng rng(31);
  const Graph ba = barabasi_albert(3000, 10, rng);
  const Graph rnd = random_k_out(3000, 20, rng);
  // Preferential attachment grows hubs; a random 20-out graph's max
  // total degree stays close to 40.
  EXPECT_GT(max_degree(ba), 3u * max_degree(rnd) / 2);
  EXPECT_GT(max_degree(ba), 100u);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(barabasi_albert(5, 0, rng), require_error);
  EXPECT_THROW(barabasi_albert(11, 10, rng), require_error);
}

TEST(Analysis, BfsDistancesOnPath) {
  // 0 - 1 - 2 - 3 path.
  std::vector<std::vector<NodeId>> adj{
      {NodeId(1)}, {NodeId(0), NodeId(2)}, {NodeId(1), NodeId(3)},
      {NodeId(2)}};
  const Graph g = Graph::from_adjacency(adj, false);
  const auto dist = bfs_distances(g, NodeId(0));
  EXPECT_EQ(dist, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(Analysis, BfsTreatsDirectedAsSymmetric) {
  // Directed chain 0 -> 1 -> 2; node 0 must still reach both and vice
  // versa for weak connectivity.
  std::vector<std::vector<NodeId>> adj{{NodeId(1)}, {NodeId(2)}, {}};
  const Graph g = Graph::from_adjacency(adj, true);
  EXPECT_TRUE(is_connected(g));
  const auto dist = bfs_distances(g, NodeId(2));
  EXPECT_EQ(dist[0], 2);
}

TEST(Analysis, DisconnectedDetected) {
  std::vector<std::vector<NodeId>> adj{{NodeId(1)}, {NodeId(0)}, {}};
  const Graph g = Graph::from_adjacency(adj, false);
  EXPECT_FALSE(is_connected(g));
}

TEST(Analysis, CompleteGraphClusteringIsOne) {
  Rng rng(37);
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete_graph(20), rng, 100),
                   1.0);
}

TEST(Analysis, CompleteGraphPathLengthIsOne) {
  Rng rng(41);
  EXPECT_DOUBLE_EQ(mean_path_length(complete_graph(20), rng, 3), 1.0);
}

TEST(Population, InitialState) {
  const Population p(5);
  EXPECT_EQ(p.total(), 5u);
  EXPECT_EQ(p.live_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_TRUE(p.alive(NodeId(i)));
}

TEST(Population, KillAndJoin) {
  Population p(3);
  p.kill(NodeId(1));
  EXPECT_EQ(p.live_count(), 2u);
  EXPECT_FALSE(p.alive(NodeId(1)));
  EXPECT_TRUE(p.alive(NodeId(0)));
  const NodeId fresh = p.add();
  EXPECT_EQ(fresh, NodeId(3));  // ids never reused
  EXPECT_EQ(p.total(), 4u);
  EXPECT_EQ(p.live_count(), 3u);
  EXPECT_TRUE(p.alive(fresh));
}

TEST(Population, DoubleKillThrows) {
  Population p(2);
  p.kill(NodeId(0));
  EXPECT_THROW(p.kill(NodeId(0)), require_error);
  EXPECT_THROW(p.kill(NodeId(5)), require_error);
}

TEST(Population, SampleLiveNeverReturnsDead) {
  Population p(10);
  Rng rng(43);
  for (std::uint32_t i = 0; i < 10; i += 2) p.kill(NodeId(i));
  for (int t = 0; t < 1000; ++t) {
    EXPECT_TRUE(p.alive(p.sample_live(rng)));
  }
}

TEST(Population, SampleLiveOtherExcludesSelf) {
  Population p(3);
  Rng rng(47);
  for (int t = 0; t < 500; ++t) {
    EXPECT_NE(p.sample_live_other(NodeId(1), rng), NodeId(1));
  }
  p.kill(NodeId(0));
  p.kill(NodeId(2));
  EXPECT_EQ(p.sample_live_other(NodeId(1), rng), NodeId::invalid());
}

TEST(Population, SampleLiveOtherFromDeadCaller) {
  // A dead node's in-flight exchange may still sample (the timeout model
  // handles the rest); the sampler just never hands back the caller.
  Population p(4);
  Rng rng(53);
  p.kill(NodeId(2));
  for (int t = 0; t < 200; ++t) {
    const NodeId pick = p.sample_live_other(NodeId(2), rng);
    EXPECT_TRUE(p.alive(pick));
  }
}

TEST(Population, SampleLiveOtherOneLiveNodeCannotSpin) {
  // Regression: with exactly one live node the rejection loop used to be
  // the only guard; the bounded budget plus the early return make the
  // 1-live cases terminate deterministically in O(1).
  Population p(6);
  Rng rng(73);
  for (std::uint32_t i = 1; i < 6; ++i) p.kill(NodeId(i));
  ASSERT_EQ(p.live_count(), 1u);
  // The single live node asking for a peer: nobody else exists.
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(p.sample_live_other(NodeId(0), rng), NodeId::invalid());
  }
  // A dead caller still gets the lone live node, never itself.
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(p.sample_live_other(NodeId(4), rng), NodeId(0));
  }
  // And the Complete overlay built on top stays invalid-not-hung.
  CompletePeerSampler sampler(p);
  EXPECT_EQ(sampler.sample(NodeId(0), rng), NodeId::invalid());
  EXPECT_EQ(sampler.sample(NodeId(3), rng), NodeId(0));
}

TEST(Population, EmptyPopulationSamplingThrows) {
  Population p(1);
  Rng rng(59);
  p.kill(NodeId(0));
  EXPECT_THROW(p.sample_live(rng), require_error);
}

TEST(PeerSampler, GraphSamplerUniformOverNeighbors) {
  Rng rng(61);
  const Graph g = ring_lattice(10, 4);
  GraphPeerSampler sampler(g);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    const NodeId pick = sampler.sample(NodeId(0), rng);
    ++counts[pick.value()];
  }
  // Neighbors of 0 are {1, 2, 8, 9}; each should get ~25%.
  for (std::uint32_t v : {1u, 2u, 8u, 9u}) {
    EXPECT_NEAR(counts[v], kTrials / 4, 600) << v;
  }
  EXPECT_EQ(counts[5], 0);
}

TEST(PeerSampler, GraphSamplerNoNeighbors) {
  std::vector<std::vector<NodeId>> adj{{}};
  const Graph g = Graph::from_adjacency(adj, true);
  GraphPeerSampler sampler(g);
  Rng rng(67);
  EXPECT_EQ(sampler.sample(NodeId(0), rng), NodeId::invalid());
}

TEST(PeerSampler, CompleteSamplerTracksLiveSet) {
  Population p(5);
  CompletePeerSampler sampler(p);
  Rng rng(71);
  p.kill(NodeId(3));
  for (int t = 0; t < 500; ++t) {
    const NodeId pick = sampler.sample(NodeId(0), rng);
    EXPECT_NE(pick, NodeId(0));
    EXPECT_NE(pick, NodeId(3));
  }
}

// ---- Parameterized sweep: every generator yields a connected overlay of
// the expected size over a range of (n, seed) combinations. -------------

struct TopologyCase {
  const char* name;
  std::uint32_t n;
  std::uint64_t seed;
};

class AllTopologies : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(AllTopologies, ConnectedAndSized) {
  const auto& tc = GetParam();
  Rng rng(tc.seed);
  const std::uint32_t k = 20;
  std::vector<Graph> graphs;
  graphs.push_back(random_k_out(tc.n, k, rng));
  graphs.push_back(watts_strogatz(tc.n, k, 0.25, rng));
  graphs.push_back(watts_strogatz(tc.n, k, 0.75, rng));
  graphs.push_back(barabasi_albert(tc.n, k / 2, rng));
  graphs.push_back(ring_lattice(tc.n, k));
  for (const auto& g : graphs) {
    EXPECT_EQ(g.node_count(), tc.n);
    EXPECT_TRUE(is_connected(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, AllTopologies,
    ::testing::Values(TopologyCase{"tiny", 100, 1},
                      TopologyCase{"small", 500, 2},
                      TopologyCase{"mid", 2000, 3},
                      TopologyCase{"larger", 8000, 4}),
    [](const ::testing::TestParamInfo<TopologyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gossip::overlay
