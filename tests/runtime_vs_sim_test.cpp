// The runtime_vs_sim cross-check: the same ScenarioSpec executed on the
// deployment runtime and on the simulators must agree on the protocol's
// macroscopic behavior — exact global sum conservation under zero loss,
// and a per-cycle variance-reduction factor within tolerance of the
// event-driven driver (the closest semantic match: both enforce exchange
// atomicity with busy-NACKs) and of the serial cycle driver at small N.
// The runtime is wall-clock concurrent, so the comparison is statistical
// (factors), never bit-level.
#include <gtest/gtest.h>

#include <cmath>

#include "experiment/engine.hpp"
#include "experiment/spec.hpp"

namespace gossip::experiment {
namespace {

constexpr std::uint32_t kNodes = 128;
constexpr std::uint32_t kCycles = 10;
constexpr std::uint64_t kSeed = 2004;

ScenarioSpec base_spec(DriverKind driver) {
  return ScenarioSpec::average_peak("runtime_vs_sim", kNodes, kCycles)
      .with_topology(TopologyConfig::complete())
      .with_driver(driver)
      .with_seed(kSeed);
}

/// Geometric-mean per-cycle variance reduction over a run's recorded
/// trajectory: (var_T / var_0)^(1/T).
double reduction_factor(double var0, double varT, std::uint32_t cycles) {
  return std::pow(varT / var0, 1.0 / static_cast<double>(cycles));
}

TEST(RuntimeVsSim, ZeroLossConservesGlobalSumExactly) {
  Engine engine;
  const RunResult rt = engine.run_single(base_spec(DriverKind::kRuntime),
                                         kSeed);
  ASSERT_TRUE(rt.runtime_enabled);
  // The peak workload's values stay dyadic at this scale, so "exact"
  // means exact: every completed exchange moves mass without rounding
  // and the quiescence rule never expires a live exchange.
  EXPECT_DOUBLE_EQ(rt.runtime_sum_initial, static_cast<double>(kNodes));
  EXPECT_DOUBLE_EQ(rt.runtime_sum_final, rt.runtime_sum_initial);
  EXPECT_EQ(rt.runtime_counters.timeouts, 0u);
  EXPECT_EQ(rt.runtime_counters.late_replies, 0u);
  EXPECT_EQ(rt.participants, kNodes);
}

TEST(RuntimeVsSim, VarianceReductionMatchesEventDriver) {
  Engine engine;
  const RunResult rt = engine.run_single(base_spec(DriverKind::kRuntime),
                                         kSeed);
  ASSERT_GE(rt.per_cycle.size(), kCycles + 1);
  const double f_rt = reduction_factor(rt.per_cycle.front().variance(),
                                       rt.per_cycle.back().variance(),
                                       kCycles);

  // The event driver reports only final estimates; running it at 0
  // cycles recovers its initial distribution, so the factor comes from
  // the same (var_T / var_0)^(1/T) it cannot report directly.
  ScenarioSpec event = base_spec(DriverKind::kEvent);
  const RunResult at_end = engine.run_single(event, kSeed);
  event.cycles = 0;  // run_single does not re-validate: probe var_0
  const RunResult at_start = engine.run_single(event, kSeed);
  const double f_event = reduction_factor(at_start.sizes.variance,
                                          at_end.sizes.variance, kCycles);

  // Push–pull on a complete overlay reduces variance by a factor well
  // below 1 every cycle (paper fig. 2: ~0.3 ideal; busy-NACK refusals
  // soften it). Both stacks must land in that regime, close together.
  EXPECT_GT(f_rt, 0.05);
  EXPECT_LT(f_rt, 0.8);
  EXPECT_GT(f_event, 0.05);
  EXPECT_LT(f_event, 0.8);
  EXPECT_NEAR(f_rt, f_event, 0.3);
}

TEST(RuntimeVsSim, VarianceReductionMatchesCycleDriver) {
  Engine engine;
  const RunResult rt = engine.run_single(base_spec(DriverKind::kRuntime),
                                         kSeed);
  const RunResult sim = engine.run_single(base_spec(DriverKind::kCycle),
                                          kSeed);
  ASSERT_GE(rt.per_cycle.size(), kCycles + 1);
  ASSERT_GE(sim.per_cycle.size(), kCycles + 1);

  const double f_rt = reduction_factor(rt.per_cycle.front().variance(),
                                       rt.per_cycle.back().variance(),
                                       kCycles);
  const double f_sim = reduction_factor(sim.per_cycle.front().variance(),
                                        sim.per_cycle.back().variance(),
                                        kCycles);
  // Both runs start from the identical initial distribution…
  EXPECT_DOUBLE_EQ(rt.per_cycle.front().variance(),
                   sim.per_cycle.front().variance());
  // …and converge at comparable speed. The serial driver serves every
  // push unconditionally (no busy refusals), so it is the faster end of
  // the band; the runtime must stay within the cross-check tolerance.
  EXPECT_NEAR(f_rt, f_sim, 0.3);
  EXPECT_GE(f_rt, f_sim - 0.05);  // runtime cannot beat the ideal driver
}

// Drift crosses over too: the same engine-invariant drift stream feeds
// both stacks, so the runtime tracks a moving mean just like the sims.
TEST(RuntimeVsSim, DriftStreamTracksLikeCycleDriver) {
  ScenarioSpec rt_spec =
      base_spec(DriverKind::kRuntime)
          .with_init(InitKind::kUniform)
          .with_drift(DriftSpec::linear(0.01));
  ScenarioSpec sim_spec =
      base_spec(DriverKind::kCycle)
          .with_init(InitKind::kUniform)
          .with_drift(DriftSpec::linear(0.01));

  Engine engine;
  const RunResult rt = engine.run_single(rt_spec, kSeed);
  const RunResult sim = engine.run_single(sim_spec, kSeed);
  ASSERT_FALSE(rt.tracking_error.empty());
  ASSERT_FALSE(sim.tracking_error.empty());
  // Converged trackers hold the error well below the total drift the
  // mean accumulated over the run (0.01 * 10 cycles).
  EXPECT_LT(rt.tracking_error.back(), 0.05);
  EXPECT_LT(sim.tracking_error.back(), 0.05);
}

}  // namespace
}  // namespace gossip::experiment
