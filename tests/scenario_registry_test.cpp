// The scenario registry: every pre-redesign fig*/ablation_*/baseline_*
// bench binary is a registered named scenario, and this suite pins the
// series each one emits to CSV goldens captured from the ORIGINAL
// binaries (commit 4b82bd6, before the ScenarioSpec/Engine redesign) at
// GOSSIP_N=400 GOSSIP_REPS=3 GOSSIP_SEED=0x5eed — the bit-identical
// reproduction contract of the declarative API, for all 16 scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "experiment/emit.hpp"
#include "experiment/registry.hpp"
#include "experiment/spec.hpp"
#include "stats/running_stats.hpp"

namespace gossip::experiment {
namespace {

/// The scale the goldens were captured at.
constexpr Scale kGoldenScale{400, 3, 0x5eed, false};

std::string scenario_csv(const std::string& name, const Scale& scale) {
  const ScenarioDef* def = ScenarioRegistry::instance().find(name);
  if (def == nullptr) {
    ADD_FAILURE() << "scenario not registered: " << name;
    return {};
  }
  const ScenarioOutput out = run_scenario(*def, scale);
  std::ostringstream csv;
  out.table.write_csv(csv);
  return csv.str();
}

TEST(Registry, AllScenariosRegisteredOnce) {
  // The 16 pre-redesign series, the giant-N intra-rep COUNT pair, the
  // adversarial robustness series, and the continuous-service series.
  const auto names = ScenarioRegistry::instance().names();
  EXPECT_EQ(names.size(), 20u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (const ScenarioDef& def : ScenarioRegistry::instance().all()) {
    EXPECT_FALSE(def.info.name.empty());
    EXPECT_FALSE(def.info.description.empty());
    EXPECT_NE(def.build, nullptr);
    EXPECT_NE(def.emit, nullptr);
  }
  EXPECT_EQ(ScenarioRegistry::instance().find("fig06b")->info.figure,
            "Figure 6b");
  EXPECT_EQ(ScenarioRegistry::instance().find("no_such_scenario"), nullptr);
}

TEST(Registry, JsonRenderCarriesProvenance) {
  const ScenarioDef* def = ScenarioRegistry::instance().find("fig06a");
  ASSERT_NE(def, nullptr);
  const Scale tiny{120, 2, 1, false};
  const ScenarioOutput out = run_scenario(*def, tiny);
  std::ostringstream os;
  render_scenario(os, "fig06a", out.table, out.trailer, out.results,
                  OutputFormat::kJson, tiny.full);
  const json::Value doc = json::parse(os.str());
  ASSERT_NE(doc.find("provenance"), nullptr);
  const json::Value& prov = *doc.find("provenance");
  EXPECT_EQ(prov.find("scale_mode")->as_string(), "scaled");
  EXPECT_EQ(prov.find("nodes")->as_u64(), 120u);
  EXPECT_EQ(prov.find("spec_hash")->as_string().size(), 16u);
  ASSERT_NE(doc.find("table"), nullptr);
  ASSERT_NE(doc.find("results"), nullptr);
  EXPECT_EQ(doc.find("results")->as_array().size(), out.results.size());
}

TEST(Registry, GenericSpecRunsThroughEngineAndEmitter) {
  // The --spec path: an ad-hoc declarative scenario, no registry entry.
  ScenarioSpec spec = ScenarioSpec::count("adhoc", 150, 12, 2)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_reps(2)
                          .with_seed(9)
                          .with_engine(EngineKind::kRepParallel);
  spec.with_sweep(SweepAxis::kLossP, {{0.0, 1, ""}, {0.2, 2, ""}});
  Engine engine;
  const ScenarioResult result = engine.run(spec);
  const Table table = generic_table(result);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.headers().front(), "loss_p");
}

TEST(Emit, NonFiniteCellsUseStableTokens) {
  // Stream formatting of non-finite doubles is implementation- and
  // sign-dependent ("-nan", "1.#INF", locale variants); every table/CSV
  // cell must come out as the stable nan/inf/-inf vocabulary instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(fmt(nan), "nan");
  EXPECT_EQ(fmt(-nan), "nan");  // the "-nan" glibc would print
  EXPECT_EQ(fmt(inf), "inf");
  EXPECT_EQ(fmt(-inf, 1), "-inf");
  EXPECT_EQ(fmt_sci(nan), "nan");
  EXPECT_EQ(fmt_sci(-inf), "-inf");
  EXPECT_EQ(fmt_estimate(nan), "nan");
}

TEST(Emit, GoldenCsvRowWithNanVariance) {
  // A run whose estimates diverged to ±inf has a NaN final mean and a
  // NaN variance (and so a NaN convergence factor); the rendered CSV row
  // is pinned so the non-finite path can never regress into
  // locale-dependent output.
  const double inf = std::numeric_limits<double>::infinity();
  stats::RunningStats diverged;
  diverged.add(inf);
  diverged.add(-inf);
  ASSERT_TRUE(std::isnan(diverged.variance()));

  RunResult rep;
  rep.participants = 7;
  rep.per_cycle = {diverged, diverged};
  rep.tracker.record(diverged.variance());
  rep.tracker.record(diverged.variance());

  ScenarioResult result;
  result.spec = ScenarioSpec::average_peak("nan-row", 100, 1);
  result.points.push_back({SweepPoint{0.0, 1, ""}, {rep}});

  std::ostringstream csv;
  generic_table(result).write_csv(csv);
  EXPECT_EQ(csv.str(),
            "point,est_mean,est_min,est_max,mean_factor,participants\n"
            "0.0000,nan,inf,-inf,nan,7\n");
}

// ---------------------------------------------------- pinned goldens

TEST(ScenarioGolden, fig02) {
  EXPECT_EQ(scenario_csv("fig02", kGoldenScale),
            R"csv(cycle,avg_min,avg_max,lo_min,hi_max
0,0.000e+00,4.000e+02,0.000e+00,4.000e+02
1,0.000e+00,1.667e+02,0.000e+00,2.000e+02
2,0.000e+00,5.000e+01,0.000e+00,5.000e+01
3,0.000e+00,2.819e+01,0.000e+00,3.125e+01
4,0.000e+00,1.670e+01,0.000e+00,2.812e+01
5,0.000e+00,6.893e+00,0.000e+00,9.180e+00
6,6.612e-02,3.905e+00,5.798e-02,4.497e+00
7,3.896e-01,2.541e+00,2.758e-01,3.355e+00
8,5.587e-01,1.838e+00,5.064e-01,2.189e+00
9,6.821e-01,1.410e+00,6.179e-01,1.574e+00
10,8.650e-01,1.195e+00,8.595e-01,1.247e+00
11,9.139e-01,1.120e+00,8.905e-01,1.209e+00
12,9.409e-01,1.049e+00,9.294e-01,1.060e+00
13,9.635e-01,1.030e+00,9.628e-01,1.034e+00
14,9.792e-01,1.018e+00,9.741e-01,1.021e+00
15,9.892e-01,1.010e+00,9.856e-01,1.011e+00
16,9.941e-01,1.006e+00,9.921e-01,1.007e+00
17,9.969e-01,1.003e+00,9.962e-01,1.004e+00
18,9.983e-01,1.002e+00,9.981e-01,1.002e+00
19,9.990e-01,1.001e+00,9.989e-01,1.001e+00
20,9.995e-01,1.001e+00,9.994e-01,1.001e+00
21,9.997e-01,1.000e+00,9.996e-01,1.000e+00
22,9.998e-01,1.000e+00,9.998e-01,1.000e+00
23,9.999e-01,1.000e+00,9.999e-01,1.000e+00
24,9.999e-01,1.000e+00,9.999e-01,1.000e+00
25,1.000e+00,1.000e+00,1.000e+00,1.000e+00
26,1.000e+00,1.000e+00,1.000e+00,1.000e+00
27,1.000e+00,1.000e+00,1.000e+00,1.000e+00
28,1.000e+00,1.000e+00,1.000e+00,1.000e+00
29,1.000e+00,1.000e+00,1.000e+00,1.000e+00
30,1.000e+00,1.000e+00,1.000e+00,1.000e+00
)csv");
}
TEST(ScenarioGolden, fig03a) {
  EXPECT_EQ(scenario_csv("fig03a", kGoldenScale),
            R"csv(size,W-S(0.00),W-S(0.25),W-S(0.50),W-S(0.75),newscast,scalefree,random,complete
100,0.7157,0.4496,0.3225,0.3310,0.2929,0.3199,0.3227,0.2878
1000,0.7925,0.5214,0.3765,0.3295,0.3191,0.3456,0.3102,0.3037
400,0.7853,0.5117,0.3559,0.3316,0.3030,0.3450,0.3052,0.3003
)csv");
}
TEST(ScenarioGolden, fig03b) {
  EXPECT_EQ(scenario_csv("fig03b", kGoldenScale),
            R"csv(cycle,W-S(0.00),W-S(0.25),W-S(0.50),W-S(0.75),newscast,scalefree,random,complete
0,1.00e+00,1.00e+00,1.00e+00,1.00e+00,1.00e+00,1.00e+00,1.00e+00,1.00e+00
2,1.75e-01,1.10e-01,7.78e-02,8.67e-02,7.55e-02,5.16e-02,1.14e-01,1.34e-01
4,3.61e-02,1.58e-02,9.64e-03,8.01e-03,6.71e-03,7.27e-03,8.99e-03,1.25e-02
6,2.04e-02,3.68e-03,1.37e-03,9.63e-04,6.84e-04,6.93e-04,8.93e-04,9.90e-04
8,1.58e-02,1.18e-03,1.57e-04,1.21e-04,7.70e-05,9.14e-05,8.34e-05,1.09e-04
10,1.33e-02,3.59e-04,2.03e-05,1.59e-05,8.95e-06,1.16e-05,8.01e-06,9.84e-06
12,1.17e-02,1.23e-04,2.63e-06,1.82e-06,9.66e-07,1.69e-06,8.22e-07,9.05e-07
14,1.04e-02,4.35e-05,3.98e-07,2.03e-07,8.98e-08,2.33e-07,8.26e-08,8.19e-08
16,9.53e-03,1.64e-05,5.91e-08,2.43e-08,9.62e-09,3.09e-08,7.62e-09,7.86e-09
18,8.80e-03,6.69e-06,1.05e-08,2.67e-09,1.13e-09,4.08e-09,7.83e-10,7.71e-10
20,8.18e-03,2.66e-06,1.58e-09,3.08e-10,1.08e-10,5.58e-10,9.27e-11,7.54e-11
22,7.63e-03,1.04e-06,2.94e-10,3.69e-11,1.07e-11,7.90e-11,8.27e-12,6.47e-12
24,7.20e-03,3.77e-07,5.53e-11,3.59e-12,1.28e-12,1.12e-11,8.22e-13,6.40e-13
26,6.78e-03,1.38e-07,9.93e-12,4.03e-13,1.26e-13,1.49e-12,7.92e-14,6.58e-14
28,6.39e-03,4.48e-08,1.98e-12,5.09e-14,1.26e-14,2.01e-13,8.24e-15,6.37e-15
30,6.08e-03,1.78e-08,3.53e-13,5.20e-15,1.28e-15,2.74e-14,7.84e-16,5.28e-16
32,5.79e-03,6.93e-09,5.87e-14,6.39e-16,1.21e-16,4.01e-15,9.57e-17,4.82e-17
34,5.52e-03,2.57e-09,1.08e-14,7.08e-17,1.32e-17,5.71e-16,9.63e-18,4.33e-18
36,5.27e-03,1.00e-09,1.88e-15,8.73e-18,1.56e-18,7.53e-17,9.59e-19,4.25e-19
38,5.07e-03,4.02e-10,3.92e-16,1.04e-18,1.68e-19,9.52e-18,9.09e-20,3.74e-20
40,4.87e-03,1.56e-10,7.43e-17,1.32e-19,1.81e-20,1.40e-18,8.05e-21,3.29e-21
42,4.68e-03,5.92e-11,1.31e-17,1.46e-20,1.81e-21,2.15e-19,8.11e-22,2.58e-22
44,4.53e-03,2.18e-11,2.37e-18,1.77e-21,1.82e-22,2.79e-20,8.41e-23,2.13e-23
46,4.36e-03,8.68e-12,4.21e-19,2.24e-22,1.69e-23,3.07e-21,8.95e-24,1.85e-24
48,4.21e-03,3.57e-12,7.49e-20,2.56e-23,1.70e-24,3.73e-22,8.34e-25,1.62e-25
50,4.05e-03,1.42e-12,1.45e-20,2.85e-24,1.86e-25,5.68e-23,8.15e-26,1.54e-26
)csv");
}
TEST(ScenarioGolden, fig04a) {
  EXPECT_EQ(scenario_csv("fig04a", kGoldenScale),
            R"csv(beta,factor_mean,factor_min,factor_max
0.00,0.7858,0.7853,0.7862
0.05,0.7277,0.7213,0.7310
0.10,0.6422,0.6345,0.6504
0.15,0.6181,0.5966,0.6321
0.20,0.5424,0.5320,0.5605
0.25,0.4956,0.4849,0.5031
0.30,0.4844,0.4467,0.5127
0.35,0.4562,0.4297,0.4785
0.40,0.4159,0.3864,0.4363
0.45,0.3705,0.3669,0.3740
0.50,0.3614,0.3348,0.3854
0.55,0.3501,0.3408,0.3623
0.60,0.3472,0.3394,0.3524
0.65,0.3371,0.3286,0.3419
0.70,0.3377,0.3285,0.3458
0.75,0.3229,0.3205,0.3250
0.80,0.3326,0.3271,0.3425
0.85,0.3373,0.3226,0.3533
0.90,0.3233,0.3180,0.3339
0.95,0.3200,0.3085,0.3307
1.00,0.3283,0.3187,0.3357
)csv");
}
TEST(ScenarioGolden, fig04b) {
  EXPECT_EQ(scenario_csv("fig04b", kGoldenScale),
            R"csv(c,factor_mean,factor_min,factor_max
2,0.9049,0.8741,0.9269
3,0.8909,0.8592,0.9068
4,0.8495,0.8402,0.8564
5,0.8077,0.7845,0.8193
6,0.7854,0.7752,0.8006
8,0.7092,0.6964,0.7245
10,0.6346,0.6103,0.6685
12,0.5344,0.4947,0.5785
15,0.3944,0.3645,0.4244
20,0.3343,0.3249,0.3515
25,0.3201,0.3041,0.3305
30,0.3102,0.3018,0.3190
40,0.3057,0.3024,0.3120
50,0.3020,0.2944,0.3101
)csv");
}
TEST(ScenarioGolden, fig05) {
  EXPECT_EQ(scenario_csv("fig05", kGoldenScale),
            R"csv(Pf,complete,newscast,predicted
0.00,2.034e-33,9.861e-34,0.000e+00
0.05,9.383e-05,4.033e-05,1.933e-04
0.10,1.272e-05,4.244e-05,4.189e-04
0.15,8.002e-04,8.276e-04,6.859e-04
0.20,2.064e-04,1.615e-03,1.007e-03
0.25,0.000e+00,4.045e-04,1.399e-03
0.30,2.128e-03,3.382e-01,1.890e-03
)csv");
}
TEST(ScenarioGolden, fig06a) {
  EXPECT_EQ(scenario_csv("fig06a", kGoldenScale),
            R"csv(death_cycle,est_median,est_lo,est_hi,inf_runs
0,200.0,200.0,200.0,0
2,350.1,266.8,533.3,0
4,412.1,367.6,413.8,0
6,400.8,398.8,406.4,0
8,403.2,400.4,404.1,0
10,401.8,400.9,402.8,0
12,399.5,399.1,400.2,0
14,399.9,399.8,400.1,0
16,400.0,400.0,400.0,0
18,400.0,400.0,400.0,0
20,400.0,400.0,400.0,0
)csv");
}
TEST(ScenarioGolden, fig06b) {
  EXPECT_EQ(scenario_csv("fig06b", kGoldenScale),
            R"csv(churn_per_cycle,est_median,est_lo,est_hi,participants_left
0,400.0,400.0,400.0,400
2,392.3,389.5,395.3,345
4,386.3,382.0,395.1,299
6,387.0,380.8,406.4,254
8,378.9,369.7,382.9,211
10,435.9,360.7,475.5,183
)csv");
}
TEST(ScenarioGolden, fig07a) {
  EXPECT_EQ(scenario_csv("fig07a", kGoldenScale),
            R"csv(Pd,factor_mean,factor_min,factor_max,bound
0.0,0.3208,0.3136,0.3243,0.3679
0.1,0.3669,0.3586,0.3730,0.4066
0.2,0.4125,0.3893,0.4290,0.4493
0.3,0.4717,0.4557,0.4958,0.4966
0.4,0.5219,0.5123,0.5286,0.5488
0.5,0.5988,0.5888,0.6155,0.6065
0.6,0.6848,0.6679,0.6983,0.6703
0.7,0.7326,0.6968,0.7735,0.7408
0.8,0.7867,0.7654,0.8096,0.8187
0.9,0.9086,0.8935,0.9348,0.9048
)csv");
}
TEST(ScenarioGolden, fig07b) {
  EXPECT_EQ(scenario_csv("fig07b", kGoldenScale),
            R"csv(loss,min_median,max_median,min_lo,max_hi
0.00,400.0,400.0,400.0,400.0
0.05,408.4,408.4,299.3,425.7
0.10,364.2,364.3,330.2,417.4
0.15,387.9,388.2,345.7,392.0
0.20,440.8,441.9,246.3,573.8
0.25,343.9,348.8,330.9,638.1
0.30,355.1,370.5,334.3,450.7
0.35,515.2,570.7,128.9,723.3
0.40,291.5,353.3,260.1,558.3
0.45,351.5,613.5,333.0,971.0
0.50,198.5,837.0,55.5,1359.7
)csv");
}
TEST(ScenarioGolden, fig08a) {
  EXPECT_EQ(scenario_csv("fig08a", kGoldenScale),
            R"csv(t,lo,median,hi,band/N
1,379.4,388.4,398.1,0.0467
2,386.1,390.5,400.0,0.0348
3,384.5,399.8,434.3,0.1245
5,384.8,389.0,390.1,0.0131
10,388.5,390.4,390.9,0.0060
20,384.5,384.9,390.0,0.0138
30,387.5,388.1,390.0,0.0062
50,386.0,386.6,388.0,0.0050
)csv");
}
TEST(ScenarioGolden, fig08b) {
  EXPECT_EQ(scenario_csv("fig08b", kGoldenScale),
            R"csv(t,lo,median,hi,band/N
1,235.4,287.8,483.5,0.6204
2,254.3,372.3,395.5,0.3530
3,262.2,393.7,440.2,0.4451
5,397.6,443.5,508.6,0.2774
10,392.8,402.0,493.2,0.2510
20,411.4,444.8,447.5,0.0901
30,392.9,394.7,409.8,0.0422
50,414.0,424.2,436.3,0.0557
)csv");
}
TEST(ScenarioGolden, fig08a_giant) {
  // Intra-rep trajectory (matched cycles, 2 rounds) — captured from this
  // implementation at shards=1 and verified bit-identical for 8 shards.
  // One giant repetition: the band is the within-run node spread, and at
  // this scaled-down N the two-round engine converges COUNT to the
  // printed precision by cycle 30.
  EXPECT_EQ(scenario_csv("fig08a_giant", kGoldenScale),
            R"csv(t,lo,median,hi,band/N
1,384.4,384.4,384.4,0.0000
5,396.9,396.9,396.9,0.0000
20,390.2,390.2,390.2,0.0000
50,389.8,389.8,389.8,0.0000
)csv");
}
TEST(ScenarioGolden, fig08b_giant) {
  EXPECT_EQ(scenario_csv("fig08b_giant", kGoldenScale),
            R"csv(t,lo,median,hi,band/N
1,374.2,375.3,375.7,0.0038
5,365.4,365.6,365.7,0.0007
20,378.2,378.4,378.6,0.0008
50,399.5,399.6,399.7,0.0006
)csv");
}
TEST(ScenarioGolden, ablation_atomicity) {
  EXPECT_EQ(scenario_csv("ablation_atomicity", kGoldenScale),
            R"csv(atomic,mean_final,mean_err,worst_rep_err
on,1.00000,2.62e-07,4.20e-07
off,1.01213,1.21e-02,1.57e-02
)csv");
}
TEST(ScenarioGolden, ablation_epoch_length) {
  EXPECT_EQ(scenario_csv("ablation_epoch_length", kGoldenScale),
            R"csv(gamma,rho^gamma,worst_node_err%,mean_err%
4,8.46e-03,inf,inf
8,7.15e-05,82.201,2.8092
12,6.05e-07,12.046,0.0424
16,5.12e-09,1.003,0.0006
20,4.33e-11,0.067,0.0000
24,3.66e-13,0.013,0.0000
30,2.85e-16,0.000,0.0000
40,1.87e-21,0.000,0.0000
)csv");
}
TEST(ScenarioGolden, ablation_initial_distribution) {
  EXPECT_EQ(scenario_csv("ablation_initial_distribution", kGoldenScale),
            R"csv(distribution,factor_mean,factor_min,factor_max
peak,0.3092,0.3051,0.3132
uniform,0.3105,0.3076,0.3121
bimodal,0.3116,0.3083,0.3144
exponential,0.3180,0.3039,0.3251
)csv");
}
TEST(ScenarioGolden, service_continuous) {
  // Captured from the first implementation of the continuous-service
  // series (this PR). Deterministic columns only: tracking error, p99
  // snapshot staleness and the bound verdict are thread-invariant
  // (rep-parallel contract); wall-clock query rates live in the
  // unpinned trailer.
  EXPECT_EQ(scenario_csv("service_continuous", kGoldenScale),
            R"csv(series,x,tracking_err,p99_stale,stale_ok,est_err
linear,0.00,8.14e-16,9,yes,4.35e-02
linear,0.01,7.94e-03,9,yes,4.42e-02
linear,0.05,2.64e-02,9,yes,2.26e-01
random_walk,0.00,4.44e-16,9,yes,1.89e-03
random_walk,0.01,2.46e-03,9,yes,7.59e-02
random_walk,0.05,7.90e-03,9,yes,2.39e-01
step,0.00,1.11e-15,9,yes,1.45e-01
step,0.01,2.07e-03,9,yes,1.84e-01
step,0.05,1.44e-02,9,yes,3.01e-01
lanes,200,-,-,-,2.95e-02
lanes,400,-,-,-,2.78e-02
)csv");
}

TEST(ScenarioGolden, baseline_push_sum) {
  EXPECT_EQ(scenario_csv("baseline_push_sum", kGoldenScale),
            R"csv(loss,pp_factor,ps_factor,pp_mean_drift,ps_mean_drift
0.0,0.3080,0.5441,2.59e-16,3.77e-04
0.1,0.3817,0.5748,2.29e-01,1.09e-01
0.2,0.4456,0.5972,1.53e-01,1.63e-01
0.4,0.6079,0.6858,7.11e-01,2.56e-01
)csv");
}

}  // namespace
}  // namespace gossip::experiment
