// Tests for src/membership: NEWSCAST cache laws, exchange/merge dynamics,
// bootstrap, joins, crash aging-out, and overlay health under churn.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "membership/newscast.hpp"
#include "membership/newscast_cache.hpp"
#include "overlay/population.hpp"

namespace gossip::membership {
namespace {

TEST(NewscastCache, CapacityEnforced) {
  NewscastCache c(3);
  for (std::uint32_t i = 0; i < 10; ++i) {
    c.insert(CacheEntry{NodeId(i), i});
  }
  EXPECT_EQ(c.size(), 3u);
  // The three freshest survive: ids 7, 8, 9.
  EXPECT_TRUE(c.contains(NodeId(9)));
  EXPECT_TRUE(c.contains(NodeId(8)));
  EXPECT_TRUE(c.contains(NodeId(7)));
  EXPECT_FALSE(c.contains(NodeId(0)));
}

TEST(NewscastCache, RejectsZeroCapacityAndInvalidId) {
  EXPECT_THROW(NewscastCache(0), require_error);
  NewscastCache c(2);
  EXPECT_THROW(c.insert(CacheEntry{NodeId::invalid(), 1}), require_error);
}

TEST(CacheEntryPacked, EightBytesAndGuardedClock) {
  // The packed descriptor halves the entry-pool memory stream; the
  // converting constructor is the overflow backstop behind the
  // spec-level cycles guard (event-engine simulated time included).
  static_assert(sizeof(CacheEntry) == 8);
  const CacheEntry max_ok{NodeId(1), CacheEntry::kMaxTimestamp};
  EXPECT_EQ(max_ok.timestamp, 0xffffffffu);
  EXPECT_THROW(CacheEntry(NodeId(1), CacheEntry::kMaxTimestamp + 1),
               require_error);
}

TEST(CacheEntryPacked, ExpireAcceptsWideCutoff) {
  // expire_older_than keeps its 64-bit parameter: a cutoff beyond the
  // packed clock simply drops everything rather than wrapping.
  NewscastCache c(4);
  c.insert(CacheEntry{NodeId(1), 5});
  c.insert(CacheEntry{NodeId(2), CacheEntry::kMaxTimestamp});
  c.expire_older_than(CacheEntry::kMaxTimestamp + 1);
  EXPECT_TRUE(c.empty());
}

TEST(NewscastCache, DuplicateKeepsFreshest) {
  NewscastCache c(4);
  c.insert(CacheEntry{NodeId(1), 5});
  c.insert(CacheEntry{NodeId(1), 9});
  c.insert(CacheEntry{NodeId(1), 2});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.entries()[0].timestamp, 9u);
}

TEST(NewscastCache, EntriesSortedFreshestFirst) {
  NewscastCache c(5);
  c.insert(CacheEntry{NodeId(1), 3});
  c.insert(CacheEntry{NodeId(2), 7});
  c.insert(CacheEntry{NodeId(3), 5});
  const auto es = c.entries();
  EXPECT_EQ(es[0].id, NodeId(2));
  EXPECT_EQ(es[1].id, NodeId(3));
  EXPECT_EQ(es[2].id, NodeId(1));
}

TEST(NewscastCache, MergeDropsSelfAndAddsSenderFresh) {
  NewscastCache c(4);
  c.insert(CacheEntry{NodeId(1), 1});
  const std::vector<CacheEntry> received{{NodeId(0), 2},  // self — dropped
                                         {NodeId(2), 3}};
  c.merge(received, CacheEntry{NodeId(9), 4}, NodeId(0));
  EXPECT_FALSE(c.contains(NodeId(0)));
  EXPECT_TRUE(c.contains(NodeId(1)));
  EXPECT_TRUE(c.contains(NodeId(2)));
  EXPECT_TRUE(c.contains(NodeId(9)));
}

TEST(NewscastCache, MergeKeepsFreshestAcrossSides) {
  NewscastCache c(2);
  c.insert(CacheEntry{NodeId(1), 10});
  c.insert(CacheEntry{NodeId(2), 1});
  const std::vector<CacheEntry> received{{NodeId(2), 20}, {NodeId(3), 15}};
  c.merge(received, CacheEntry{NodeId::invalid(), 0}, NodeId(0));
  // Union: 1@10, 2@20, 3@15 — capacity 2 keeps 2@20 and 3@15.
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.contains(NodeId(2)));
  EXPECT_TRUE(c.contains(NodeId(3)));
  EXPECT_FALSE(c.contains(NodeId(1)));
}

TEST(NewscastCache, DeterministicTieBreak) {
  // Same timestamps: survivors are the smallest ids, reproducibly.
  NewscastCache a(2), b(2);
  for (auto* c : {&a, &b}) {
    c->insert(CacheEntry{NodeId(5), 1});
    c->insert(CacheEntry{NodeId(3), 1});
    c->insert(CacheEntry{NodeId(8), 1});
  }
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.entries()[0].id, b.entries()[0].id);
  EXPECT_EQ(a.entries()[1].id, b.entries()[1].id);
  EXPECT_EQ(a.entries()[0].id, NodeId(3));
  EXPECT_EQ(a.entries()[1].id, NodeId(5));
}

TEST(NewscastCache, SampleUniformOverEntries) {
  NewscastCache c(4);
  for (std::uint32_t i = 1; i <= 4; ++i) c.insert(CacheEntry{NodeId(i), i});
  Rng rng(3);
  std::vector<int> counts(5, 0);
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) ++counts[c.sample(rng).value()];
  for (std::uint32_t i = 1; i <= 4; ++i) {
    EXPECT_NEAR(counts[i], kTrials / 4, 600) << i;
  }
}

TEST(NewscastCache, SampleEmptyIsInvalid) {
  NewscastCache c(2);
  Rng rng(1);
  EXPECT_EQ(c.sample(rng), NodeId::invalid());
}

TEST(NewscastCache, ExpireOlderThan) {
  NewscastCache c(5);
  c.insert(CacheEntry{NodeId(1), 1});
  c.insert(CacheEntry{NodeId(2), 5});
  c.insert(CacheEntry{NodeId(3), 9});
  c.expire_older_than(5);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.contains(NodeId(1)));
}

TEST(NewscastNetwork, BootstrapFillsDistinctOthers) {
  NewscastNetwork net(10);
  Rng rng(5);
  net.bootstrap_random(50, 0, rng);
  for (std::uint32_t u = 0; u < 50; ++u) {
    const auto& c = net.cache(NodeId(u));
    EXPECT_EQ(c.size(), 10u);
    EXPECT_FALSE(c.contains(NodeId(u)));
  }
}

TEST(NewscastNetwork, BootstrapSmallNetworkCapsFill) {
  NewscastNetwork net(30);
  Rng rng(7);
  net.bootstrap_random(5, 0, rng);
  for (std::uint32_t u = 0; u < 5; ++u) {
    EXPECT_EQ(net.cache(NodeId(u)).size(), 4u);
  }
}

TEST(NewscastNetwork, ExchangeIsSymmetricInformationFlow) {
  NewscastNetwork net(4);
  Rng rng(9);
  net.bootstrap_random(8, 0, rng);
  net.exchange(NodeId(0), NodeId(1), 5);
  // Each side now holds a fresh descriptor of the other.
  EXPECT_TRUE(net.cache(NodeId(0)).contains(NodeId(1)));
  EXPECT_TRUE(net.cache(NodeId(1)).contains(NodeId(0)));
  EXPECT_THROW(net.exchange(NodeId(2), NodeId(2), 5), require_error);
}

TEST(NewscastNetwork, ExchangeUsesPreMergeSnapshot) {
  // b must merge what a had *before* a absorbed b's cache, not after —
  // otherwise b's stale entries echo straight back.
  NewscastNetwork net(4);
  Rng rng(11);
  net.bootstrap_random(6, 0, rng);
  // Plant one distinctive fresh entry on each side; capacity 4 guarantees
  // both survive the merge alongside the fresh self-descriptors.
  net.cache(NodeId(0)).insert(CacheEntry{NodeId(2), 100});
  net.cache(NodeId(1)).insert(CacheEntry{NodeId(3), 100});
  net.exchange(NodeId(0), NodeId(1), 101);
  EXPECT_TRUE(net.cache(NodeId(1)).contains(NodeId(2)));
  EXPECT_TRUE(net.cache(NodeId(0)).contains(NodeId(3)));
}

TEST(NewscastNetwork, JoinCopiesContactView) {
  NewscastNetwork net(5);
  Rng rng(13);
  net.bootstrap_random(10, 0, rng);
  overlay::Population pop(10);
  const NodeId fresh = pop.add();
  net.add_node(fresh, NodeId(4), 7);
  EXPECT_TRUE(net.cache(fresh).contains(NodeId(4)));
  EXPECT_FALSE(net.cache(fresh).contains(fresh));
  EXPECT_TRUE(net.cache(NodeId(4)).contains(fresh));
  EXPECT_THROW(net.add_node(NodeId(20), NodeId(0), 7), require_error);
}

TEST(NewscastNetwork, CyclesKeepLiveViewConnected) {
  NewscastNetwork net(20);
  Rng rng(17);
  net.bootstrap_random(300, 0, rng);
  overlay::Population pop(300);
  for (std::uint64_t cycle = 1; cycle <= 10; ++cycle) {
    net.run_cycle(pop, cycle, rng);
    EXPECT_TRUE(net.live_view_connected(pop)) << cycle;
  }
}

TEST(NewscastNetwork, CrashedPeersAgeOutOfCaches) {
  // The §4.4 repair property: crashed nodes stop injecting fresh
  // descriptors, so within a few cycles no live cache mentions them.
  NewscastNetwork net(20);
  Rng rng(19);
  net.bootstrap_random(400, 0, rng);
  overlay::Population pop(400);
  for (std::uint64_t cycle = 1; cycle <= 3; ++cycle) {
    net.run_cycle(pop, cycle, rng);
  }
  // Kill 25%.
  for (std::uint32_t i = 0; i < 100; ++i) pop.kill(NodeId(i * 4));
  for (std::uint64_t cycle = 4; cycle <= 18; ++cycle) {
    net.run_cycle(pop, cycle, rng);
  }
  std::size_t stale = 0, total = 0;
  for (NodeId u : pop.live()) {
    for (const CacheEntry& e : net.cache(u).entries()) {
      ++total;
      if (!pop.alive(e.id)) ++stale;
    }
  }
  EXPECT_LT(static_cast<double>(stale) / static_cast<double>(total), 0.01);
  EXPECT_TRUE(net.live_view_connected(pop));
}

TEST(NewscastNetwork, SurvivesMassiveChurn) {
  // Replace 10% of the network every cycle for 20 cycles; the live view
  // must stay connected (this is what fig. 6b leans on).
  NewscastNetwork net(20);
  Rng rng(23);
  net.bootstrap_random(200, 0, rng);
  overlay::Population pop(200);
  for (std::uint64_t cycle = 1; cycle <= 20; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      pop.kill(pop.sample_live(rng));
      const NodeId contact = pop.sample_live(rng);
      const NodeId fresh = pop.add();
      net.add_node(fresh, contact, cycle);
    }
    net.run_cycle(pop, cycle, rng);
    EXPECT_TRUE(net.live_view_connected(pop)) << cycle;
  }
  EXPECT_EQ(pop.live_count(), 200u);
}

TEST(NewscastPeerSampler, SamplesFromOwnCache) {
  NewscastNetwork net(5);
  Rng rng(29);
  net.bootstrap_random(30, 0, rng);
  NewscastPeerSampler sampler(net);
  for (int t = 0; t < 200; ++t) {
    const NodeId pick = sampler.sample(NodeId(3), rng);
    EXPECT_TRUE(net.cache(NodeId(3)).contains(pick));
  }
}

TEST(NewscastNetwork, SelfNeverCached) {
  NewscastNetwork net(8);
  Rng rng(31);
  net.bootstrap_random(100, 0, rng);
  overlay::Population pop(100);
  for (std::uint64_t cycle = 1; cycle <= 8; ++cycle) {
    net.run_cycle(pop, cycle, rng);
  }
  for (std::uint32_t u = 0; u < 100; ++u) {
    EXPECT_FALSE(net.cache(NodeId(u)).contains(NodeId(u))) << u;
  }
}

}  // namespace
}  // namespace gossip::membership
