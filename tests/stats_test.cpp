// Tests for src/stats: Welford statistics, merge law, summaries,
// percentiles, the paper's ⌊t/3⌋ trimmed mean, convergence tracking.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "stats/convergence.hpp"
#include "stats/reduction.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"

namespace gossip::stats {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_TRUE(std::isnan(rs.min()));
  EXPECT_TRUE(std::isnan(rs.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, PeakDistributionMatchesClosedForm) {
  // The workload of fig. 2: one node holds N, the rest 0.
  constexpr int kN = 1000;
  RunningStats rs;
  rs.add(static_cast<double>(kN));
  for (int i = 1; i < kN; ++i) rs.add(0.0);
  EXPECT_NEAR(rs.mean(), 1.0, 1e-9);
  const double expected =
      static_cast<double>(kN) * kN * (1.0 - 1.0 / kN) / (kN - 1);
  EXPECT_NEAR(rs.variance(), expected, expected * 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(99);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-10.0, 10.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(rs.mean(), 1e9, 1e-3);
  EXPECT_NEAR(rs.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(MergeTree, EmptyAndSingle) {
  std::vector<RunningStats> parts;
  EXPECT_EQ(merge_tree(parts).count(), 0u);
  parts.emplace_back();
  parts[0].add(2.0);
  parts[0].add(4.0);
  const RunningStats folded = merge_tree(parts);
  EXPECT_EQ(folded.count(), 2u);
  EXPECT_DOUBLE_EQ(folded.mean(), 3.0);
}

TEST(MergeTree, FoldsEveryPartialOnceIncludingEmpties) {
  // Partial counts mimic a segmented stats pass where some id-space
  // segments hold no participant (crashed ranges, N < segment count).
  Rng rng(7);
  for (std::size_t n : {2u, 3u, 7u, 8u, 64u}) {
    std::vector<RunningStats> parts(n);
    RunningStats sequential;
    for (std::size_t s = 0; s < n; ++s) {
      if (s % 3 == 2) continue;  // every third partial stays empty
      for (int i = 0; i < 10; ++i) {
        const double v = rng.uniform(-5.0, 5.0);
        parts[s].add(v);
        sequential.add(v);
      }
    }
    const RunningStats folded = merge_tree(parts);
    EXPECT_EQ(folded.count(), sequential.count()) << n;
    EXPECT_NEAR(folded.mean(), sequential.mean(), 1e-12) << n;
    EXPECT_NEAR(folded.variance(), sequential.variance(), 1e-10) << n;
    EXPECT_DOUBLE_EQ(folded.min(), sequential.min()) << n;
    EXPECT_DOUBLE_EQ(folded.max(), sequential.max()) << n;
  }
}

TEST(MergeTree, ShapeIsAFunctionOfPartialCountOnly) {
  // The fixed-shape law the sharded stats pass relies on: folding the
  // same partials twice is bit-identical, and the shape never depends
  // on *which* partials are empty (only how many there are).
  Rng rng(13);
  std::vector<RunningStats> parts(16);
  for (auto& p : parts) {
    for (int i = 0; i < 5; ++i) p.add(rng.uniform(0.0, 1.0));
  }
  std::vector<RunningStats> copy = parts;
  const RunningStats a = merge_tree(parts);
  const RunningStats b = merge_tree(copy);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, OddAndEvenMedian) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(summarize(odd).median, 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(even).median, 2.5);
}

TEST(Summary, MatchesRunningStats) {
  Rng rng(5);
  std::vector<double> values;
  RunningStats rs;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.uniform());
    rs.add(values.back());
  }
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 200u);
  EXPECT_NEAR(s.mean, rs.mean(), 1e-12);
  EXPECT_NEAR(s.variance, rs.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, rs.min());
  EXPECT_DOUBLE_EQ(s.max, rs.max());
}

TEST(Percentile, Endpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.3), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 0.5), require_error);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -0.1), require_error);
  EXPECT_THROW(percentile(v, 1.1), require_error);
}

TEST(TrimmedMean, NoTrimIsMean) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0), 2.0);
}

TEST(TrimmedMean, DropsOutliers) {
  const std::vector<double> v{-1000.0, 1.0, 2.0, 3.0, 1000.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 1), 2.0);
}

TEST(TrimmedMean, RejectsTotalTrim) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(trimmed_mean(v, 1), require_error);
  EXPECT_THROW(trimmed_mean({}, 0), require_error);
}

TEST(TrimmedMeanThird, PaperRule) {
  // t = 7: drop floor(7/3) = 2 from each side, average the middle 3.
  const std::vector<double> v{0.0, 0.1, 10.0, 11.0, 12.0, 100.0, 200.0};
  EXPECT_DOUBLE_EQ(trimmed_mean_third(v), 11.0);
}

TEST(TrimmedMeanThird, SmallSamplesKeepEverything) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(trimmed_mean_third(one), 5.0);
  const std::vector<double> two{4.0, 6.0};
  EXPECT_DOUBLE_EQ(trimmed_mean_third(two), 5.0);
}

TEST(TrimmedMeanThird, RobustToSingleCorruptInstance) {
  // The §7.3 scenario: one of t=10 concurrent COUNT instances exploded.
  std::vector<double> v(10, 100000.0);
  v[3] = 1e9;
  EXPECT_DOUBLE_EQ(trimmed_mean_third(v), 100000.0);
}

TEST(Convergence, FactorSeries) {
  ConvergenceTracker t;
  t.record(100.0);
  t.record(30.0);
  t.record(9.0);
  EXPECT_EQ(t.cycles(), 2u);
  EXPECT_NEAR(t.factor(1), 0.3, 1e-12);
  EXPECT_NEAR(t.factor(2), 0.3, 1e-12);
  EXPECT_NEAR(t.mean_factor(2), 0.3, 1e-12);
}

TEST(Convergence, FactorOutOfRangeThrows) {
  ConvergenceTracker t;
  t.record(1.0);
  EXPECT_THROW((void)t.factor(1), require_error);
  t.record(0.5);
  EXPECT_THROW((void)t.factor(0), require_error);
  EXPECT_THROW((void)t.factor(2), require_error);
  EXPECT_THROW((void)t.mean_factor(2), require_error);
}

TEST(Convergence, ZeroVarianceIsStable) {
  ConvergenceTracker t;
  t.record(0.0);
  t.record(0.0);
  EXPECT_DOUBLE_EQ(t.factor(1), 1.0);
  EXPECT_DOUBLE_EQ(t.mean_factor(1), 1.0);
}

TEST(Convergence, NormalizedSeriesAndFloor) {
  ConvergenceTracker t;
  t.record(100.0);
  t.record(10.0);
  t.record(1e-30);
  const auto norm = t.normalized(1e-16);
  ASSERT_EQ(norm.size(), 3u);
  EXPECT_DOUBLE_EQ(norm[0], 1.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.1);
  EXPECT_DOUBLE_EQ(norm[2], 1e-16);  // clamped
}

TEST(Convergence, MeanFactorIsGeometric) {
  ConvergenceTracker t;
  t.record(1.0);
  t.record(0.5);   // factor 0.5
  t.record(0.05);  // factor 0.1
  // geometric mean over 2 cycles = sqrt(0.05)
  EXPECT_NEAR(t.mean_factor(2), std::sqrt(0.05), 1e-12);
}

}  // namespace
}  // namespace gossip::stats
