// Tests for src/net: latency models, loss accounting, crash semantics
// (in-flight drops), trace digests.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/event_loop.hpp"

namespace gossip::net {
namespace {

using TestNet = Network<std::string>;

struct Harness {
  sim::EventLoop loop;
  TraceLog trace;
  std::unique_ptr<TestNet> net;
  std::vector<std::vector<std::string>> inbox;

  explicit Harness(std::uint32_t nodes, double p_loss = 0.0,
                   sim::SimTime lat_lo = 10, sim::SimTime lat_hi = 10,
                   std::uint64_t seed = 1) {
    net = std::make_unique<TestNet>(
        loop, std::make_unique<UniformLatency>(lat_lo, lat_hi), p_loss,
        Rng(seed));
    net->attach_trace(&trace);
    inbox.resize(nodes);
    for (std::uint32_t u = 0; u < nodes; ++u) {
      net->register_node(NodeId(u),
                         [this, u](NodeId, const std::string& m) {
                           inbox[u].push_back(m);
                         });
    }
  }
};

TEST(Latency, FixedAlwaysSame) {
  FixedLatency lat(42);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(lat.sample(rng), 42u);
}

TEST(Latency, UniformWithinBoundsAndCoversThem) {
  UniformLatency lat(10, 13);
  Rng rng(2);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = lat.sample(rng);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 13u);
    lo |= (v == 10);
    hi |= (v == 13);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
  EXPECT_THROW(UniformLatency(5, 4), require_error);
}

TEST(Latency, ExponentialMeanAboveBase) {
  ExponentialLatency lat(100, 50.0);
  Rng rng(3);
  double sum = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(lat.sample(rng));
  }
  EXPECT_NEAR(sum / kTrials, 150.0, 2.0);
}

TEST(Network, DeliversAfterLatency) {
  Harness h(2);
  h.net->send(NodeId(0), NodeId(1), "hello");
  EXPECT_TRUE(h.inbox[1].empty());
  h.loop.run();
  ASSERT_EQ(h.inbox[1].size(), 1u);
  EXPECT_EQ(h.inbox[1][0], "hello");
  EXPECT_EQ(h.loop.now(), 10u);
  EXPECT_EQ(h.net->stats().delivered, 1u);
}

TEST(Network, LossRateRespected) {
  Harness h(2, /*p_loss=*/0.25);
  constexpr int kMsgs = 40000;
  for (int i = 0; i < kMsgs; ++i) h.net->send(NodeId(0), NodeId(1), "x");
  h.loop.run();
  const auto& st = h.net->stats();
  EXPECT_EQ(st.sent, static_cast<std::uint64_t>(kMsgs));
  EXPECT_NEAR(static_cast<double>(st.lost) / kMsgs, 0.25, 0.01);
  EXPECT_EQ(st.delivered + st.lost, st.sent);
}

TEST(Network, CrashedReceiverDropsInFlight) {
  Harness h(2);
  h.net->send(NodeId(0), NodeId(1), "doomed");
  h.net->crash(NodeId(1));
  h.loop.run();
  EXPECT_TRUE(h.inbox[1].empty());
  EXPECT_EQ(h.net->stats().dropped_crashed, 1u);
}

TEST(Network, CrashedSenderCannotSend) {
  Harness h(2);
  h.net->crash(NodeId(0));
  h.net->send(NodeId(0), NodeId(1), "ghost");
  h.loop.run();
  EXPECT_TRUE(h.inbox[1].empty());
  EXPECT_EQ(h.net->stats().sent, 0u);
}

TEST(Network, AliveChecksBounds) {
  Harness h(2);
  EXPECT_TRUE(h.net->alive(NodeId(1)));
  EXPECT_FALSE(h.net->alive(NodeId(5)));
  EXPECT_FALSE(h.net->alive(NodeId::invalid()));
  EXPECT_THROW(h.net->send(NodeId(0), NodeId(9), "nope"), require_error);
  EXPECT_THROW(h.net->crash(NodeId(9)), require_error);
}

TEST(Network, DenseRegistrationEnforced) {
  sim::EventLoop loop;
  TestNet net(loop, std::make_unique<FixedLatency>(1), 0.0, Rng(1));
  net.register_node(NodeId(0), [](NodeId, const std::string&) {});
  EXPECT_THROW(net.register_node(NodeId(2), [](NodeId, const std::string&) {}),
               require_error);
}

TEST(Network, HandlerCanSendReply) {
  Harness h(2);
  h.net->register_node(NodeId(2), [&h](NodeId from, const std::string& m) {
    if (m == "ping") h.net->send(NodeId(2), from, "pong");
  });
  h.inbox.resize(3);
  h.net->send(NodeId(0), NodeId(2), "ping");
  h.loop.run();
  ASSERT_EQ(h.inbox[0].size(), 1u);
  EXPECT_EQ(h.inbox[0][0], "pong");
  EXPECT_EQ(h.loop.now(), 20u);  // two hops x fixed 10
}

TEST(Trace, RecordsOutcomes) {
  Harness h(2, 0.0);
  h.net->send(NodeId(0), NodeId(1), "a");
  h.loop.run();
  ASSERT_EQ(h.trace.size(), 1u);
  EXPECT_EQ(h.trace.events()[0].kind, TraceEvent::Kind::kDelivered);
  EXPECT_NE(h.trace.dump().find("delivered"), std::string::npos);
}

TEST(Trace, DigestDetectsDifferences) {
  TraceLog a, b;
  a.record({1, NodeId(0), NodeId(1), TraceEvent::Kind::kDelivered});
  b.record({1, NodeId(0), NodeId(1), TraceEvent::Kind::kDelivered});
  EXPECT_EQ(a.digest(), b.digest());
  b.record({2, NodeId(1), NodeId(0), TraceEvent::Kind::kLost});
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Trace, IdenticalSeedsIdenticalTraces) {
  // Full-stack determinism at the transport level.
  const auto run_once = [] {
    Harness h(4, 0.3, 5, 20, /*seed=*/99);
    for (std::uint32_t i = 0; i < 100; ++i) {
      h.net->send(NodeId(i % 4), NodeId((i + 1) % 4), "m");
    }
    h.loop.run();
    return h.trace.digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gossip::net
