// End-to-end §4.2-style robustness scenario — the first scenario test
// beyond the figure reproductions: half the network dies at once at
// cycle 5 while background churn keeps replacing nodes every cycle, and
// the protocol must *re-converge* within the paper's epoch budget.
//
// The paper's claim (§3, §7.1): on a random overlay each cycle shrinks
// the estimate variance by ρ ≈ 1/(2√e) ≈ 0.30, and neither crashes nor
// churn change that rate — they only perturb the value converged to (the
// average "felt" by the survivors) and reset some variance at the moment
// of the crash. γ = 30 cycles is the paper's standard epoch, so after a
// cycle-5 catastrophe there are 25 cycles of budget left — enough for
// ~13 orders of magnitude of variance reduction at the nominal rate.
// The assertions below leave an order-of-magnitude slack on each bound,
// so they pin qualitative §4.2 behaviour, not one rng stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {
namespace {

/// 50% sudden death right before `death_cycle`, plus `churn` crashes and
/// `churn` fresh joins before every cycle (fig. 6a meets fig. 6b).
class CatastropheWithChurn final : public failure::FailurePlan {
public:
  CatastropheWithChurn(std::uint32_t death_cycle, std::uint32_t churn)
      : death_cycle_(death_cycle), churn_(churn) {}

  failure::CycleEvent before_cycle(std::uint32_t cycle,
                                   std::uint32_t live) const override {
    failure::CycleEvent event{churn_, churn_};
    if (cycle == death_cycle_) {
      event.kills += live / 2;
    }
    return event;
  }

private:
  std::uint32_t death_cycle_;
  std::uint32_t churn_;
};

TEST(ScenarioChurnRecovery, AverageReconvergesWithinEpochBudget) {
  ScenarioSpec spec = ScenarioSpec::average_peak("scenario", 2000, 30)
                          .with_topology(TopologyConfig::newscast(30))
                          .with_engine(EngineKind::kSerial);

  // A bespoke compound plan the declarative FailureSpec vocabulary does
  // not cover — exactly what the facade's plan-override hook is for.
  const CatastropheWithChurn plan(/*death_cycle=*/5, /*churn=*/10);
  Engine engine;
  const RunResult run = engine.run_single(spec, /*seed=*/0x5eed, &plan);

  const auto& vars = run.tracker.variances();
  ASSERT_EQ(vars.size(), spec.cycles + 1u);

  // The catastrophe must actually register: cycle 5's kill wave halves
  // the network. (Index c is the state after cycle c; the death lands
  // before cycle 6 in plan indexing, i.e. between indices 5 and 6.)
  // Population: 2000 -> ~1000, then churn keeps size roughly stable.
  const double survivors =
      static_cast<double>(run.per_cycle.back().count());
  EXPECT_GT(survivors, 700.0);
  EXPECT_LT(survivors, 1100.0);

  // Re-convergence: by the end of the epoch the participants' estimates
  // agree to a vanishing spread. At the nominal rate the 24 remaining
  // cycles would give ~0.3^24 ≈ 3e-13 of the post-death variance; the
  // ongoing churn (dead peers wasting exchanges) costs a few factors per
  // cycle, so allow ~4.5 orders of magnitude of slack on the aggregate.
  const double post_death = vars[6];
  ASSERT_GT(post_death, 0.0);
  EXPECT_LT(vars.back() / post_death, 1e-8);

  // The converged value is the average felt by the survivors: the mass
  // lost with the crashed half shifts it, but it must stay in the same
  // decade as the true pre-crash average of 1 (the paper's fig. 6a shape:
  // a level shift, not a blow-up).
  const double final_mean = run.per_cycle.back().mean();
  EXPECT_GT(final_mean, 0.1);
  EXPECT_LT(final_mean, 10.0);

  // And the per-cycle convergence factor over the recovery window stays
  // near the paper's ρ ≈ 0.30 (generous ceiling 0.55 — churn and the
  // occasional failed exchange slow it, they must not stall it).
  double worst_window = 0.0;
  for (std::size_t c = 10; c + 5 < vars.size(); c += 5) {
    if (vars[c] <= 0.0 || vars[c + 5] <= 0.0) continue;
    worst_window =
        std::max(worst_window, std::pow(vars[c + 5] / vars[c], 1.0 / 5.0));
  }
  EXPECT_GT(worst_window, 0.0);  // variance stayed measurable mid-recovery
  EXPECT_LT(worst_window, 0.55);
}

TEST(ScenarioChurnRecovery, CountSurvivesCatastropheWithinEpoch) {
  // COUNT under the same catastrophe, multi-instance (§7.3). Random
  // crashes remove instance *mass* in proportion to the nodes they
  // remove, so the size estimate is expected to keep reflecting the
  // epoch-start size — fig. 6a's robustness claim is precisely that a
  // 50% sudden death produces a bounded error envelope around N, not a
  // blow-up (and not a re-target to N/2; a fresh epoch measures that).
  ScenarioSpec spec = ScenarioSpec::count("scenario", 1000, 30, 16)
                          .with_topology(TopologyConfig::newscast(30))
                          .with_engine(EngineKind::kSerial);

  const CatastropheWithChurn plan(/*death_cycle=*/5, /*churn=*/5);
  Engine engine;
  const RunResult run = engine.run_single(spec, /*seed=*/0xc0de, &plan);

  // ~500 survivors of the death wave, minus 30 cycles of churn kills.
  EXPECT_GT(run.participants, 300u);
  EXPECT_LT(run.participants, 620u);

  // The robust median stays within fig. 6a's factor-~2 envelope of the
  // epoch-start size even with half the mass carriers gone.
  EXPECT_GT(run.sizes.median, spec.nodes / 2.0);
  EXPECT_LT(run.sizes.median, spec.nodes * 2.0);

  // All participants converged to a *common* estimate: min and max agree
  // within a few percent by the end of the epoch — the re-convergence
  // half of the claim.
  EXPECT_LT(run.sizes.max - run.sizes.min, 0.2 * run.sizes.median);
}

}  // namespace
}  // namespace gossip::experiment
