// The adversarial-failure vocabulary end to end: correlated kill waves
// through the drivers' targeted kill_range primitive (with the ≥1
// survivor guarantee), partitions as an exchange filter that heals,
// §4.2 epoch restarts, byzantine value injection, and the robust
// combine rules (§7.3 trimmed mean generalized to exchange combining,
// plus median-of-means) that bound the injected bias where the paper's
// plain pairwise mean diverges.
//
// The bias-bounding thresholds are deliberately loose against the
// measured values (mean bias ≈ 93, trimmed ≈ 8, median-of-means ≈ 0.4
// at N = 400, 10% injectors reporting 100): they assert the *ordering*
// and the order-of-magnitude gaps, not exact trajectories.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "experiment/cycle_sim.hpp"
#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "overlay/population.hpp"
#include "overlay/sharded_population.hpp"

namespace gossip::experiment {
namespace {

void expect_same_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.per_cycle.size(), b.per_cycle.size());
  for (std::size_t c = 0; c < a.per_cycle.size(); ++c) {
    EXPECT_EQ(a.per_cycle[c].count(), b.per_cycle[c].count()) << "cycle " << c;
    expect_same_bits(a.per_cycle[c].mean(), b.per_cycle[c].mean());
    expect_same_bits(a.per_cycle[c].variance(), b.per_cycle[c].variance());
  }
  EXPECT_EQ(a.participants, b.participants);
}

double final_bias(const RunResult& run) {
  return std::abs(run.per_cycle.back().mean() - run.per_cycle.front().mean());
}

// ------------------------------------------------- kill_range primitive

TEST(KillRange, KillsAscendingIdsWithinBudget) {
  overlay::Population pop(10);
  pop.kill(NodeId(3));
  // Range [2, 8) holds live ids 2,4,5,6,7; budget 3 takes the lowest 3.
  EXPECT_EQ(pop.kill_range(2, 8, 3), 3u);
  for (std::uint32_t id = 0; id < 10; ++id) {
    const bool expect_dead = id == 3 || id == 2 || id == 4 || id == 5;
    EXPECT_EQ(pop.alive(NodeId(id)), !expect_dead) << id;
  }
  EXPECT_EQ(pop.kill_range(0, 10, 0), 0u);   // zero budget
  EXPECT_EQ(pop.kill_range(6, 6, 10), 0u);   // empty range
  EXPECT_EQ(pop.kill_range(2, 6, 10), 0u);   // already dead
}

TEST(KillRange, ShardedMatchesSerialVictimSet) {
  for (unsigned shards : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    overlay::Population serial(32);
    overlay::ShardedPopulation sharded(32, shards);
    serial.kill(NodeId(9));
    sharded.kill(NodeId(9));
    EXPECT_EQ(serial.kill_range(4, 20, 12),
              sharded.kill_range(4, 20, 12, nullptr));
    ASSERT_EQ(serial.total(), sharded.total());
    for (std::uint32_t id = 0; id < serial.total(); ++id) {
      EXPECT_EQ(serial.alive(NodeId(id)), sharded.alive(NodeId(id))) << id;
    }
  }
}

// --------------------------------------- overkill clamp (≥ 1 survivor)

TEST(OverkillClamp, ConstantCrashBeyondPopulationLeavesOneSurvivor) {
  // constant_crash rate far above N: the drivers clamp each cycle's kill
  // budget to live - 1 instead of tripping the population invariants.
  ScenarioSpec spec = ScenarioSpec::average_peak("overkill", 16, 6)
                          .with_topology(TopologyConfig::newscast(4))
                          .with_failure(FailureSpec::constant_crash(1000))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 2024);
  EXPECT_EQ(run.participants, 1u);
  EXPECT_EQ(run.per_cycle.back().count(), 1u);
}

TEST(OverkillClamp, IntraRepHonorsTheSameGuarantee) {
  ScenarioSpec spec = ScenarioSpec::average_peak("overkill", 16, 6)
                          .with_topology(TopologyConfig::newscast(4))
                          .with_failure(FailureSpec::constant_crash(1000))
                          .with_engine(EngineKind::kIntraRep);
  Engine reference({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = reference.run_single(spec, 2024);
  EXPECT_EQ(baseline.participants, 1u);
  for (unsigned shards : {2u, 8u}) {
    Engine engine({EngineKind::kIntraRep, 4, shards});
    expect_identical(baseline, engine.run_single(spec, 2024));
  }
}

TEST(OverkillClamp, CorrelatedWavesBudgetStopsAtLastSurvivor) {
  // 4 waves of ⌊20 · 0.4⌋ = 8 ids would cover the whole network; the
  // third wave hits the budget and leaves exactly one survivor — the
  // highest id, since waves kill ascending id blocks.
  ScenarioSpec spec = ScenarioSpec::average_peak("waves", 20, 6)
                          .with_topology(TopologyConfig::newscast(5))
                          .with_failure(
                              FailureSpec::correlated_waves(0, 4, 0.4))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 7);
  EXPECT_EQ(run.participants, 1u);
}

TEST(CorrelatedWaves, KillExactlyTheScheduledBlocks) {
  // Trigger 2, 3 waves × ⌊100 · 0.15⌋ = 15 ids: 45 targeted kills, no
  // collateral — the live count afterwards is exact.
  ScenarioSpec spec = ScenarioSpec::average_peak("waves", 100, 8)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_failure(
                              FailureSpec::correlated_waves(2, 3, 0.15))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 11);
  EXPECT_EQ(run.participants, 100u - 45u);
  EXPECT_EQ(run.per_cycle.back().count(), 55u);
}

// ----------------------------------------------- partition with heal

TEST(Partition, ComponentsStayExactlyIsolatedWhilePartitioned) {
  // Bimodal init (0 / 2 by id parity) with a 2-component partition
  // (component = id % 2) held for the whole run: every exchange either
  // straddles components (dropped) or averages two equal values, so the
  // per-cycle statistics never move a single bit.
  ScenarioSpec spec = ScenarioSpec::average_peak("part", 64, 10)
                          .with_init(InitKind::kBimodal)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_failure(FailureSpec::partition(0, 10, 2))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 5);
  ASSERT_EQ(run.per_cycle.size(), 11u);
  for (std::size_t c = 1; c < run.per_cycle.size(); ++c) {
    expect_same_bits(run.per_cycle[c].mean(), run.per_cycle[0].mean());
    expect_same_bits(run.per_cycle[c].variance(),
                     run.per_cycle[0].variance());
  }
}

TEST(Partition, HealRestoresConvergence) {
  // Partitioned for cycles 0..4, healed afterwards: the variance is
  // frozen at its initial value through the partition, then collapses.
  ScenarioSpec spec = ScenarioSpec::average_peak("heal", 64, 20)
                          .with_init(InitKind::kBimodal)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_failure(FailureSpec::partition(0, 5, 2))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 5);
  expect_same_bits(run.per_cycle[5].variance(), run.per_cycle[0].variance());
  EXPECT_GT(run.per_cycle[0].variance(), 0.9);
  // 15 healed cycles at this small scale: ~3 orders of magnitude down.
  EXPECT_LT(run.per_cycle.back().variance(),
            run.per_cycle[0].variance() / 100.0);
}

// --------------------------------------------------- §4.2 epoch restart

TEST(Restart, VarianceReRisesAtEveryPeriod) {
  ScenarioSpec spec = ScenarioSpec::average_peak("restart", 128, 12)
                          .with_topology(TopologyConfig::newscast(8))
                          .with_failure(FailureSpec::restart(5))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 17);
  ASSERT_EQ(run.per_cycle.size(), 13u);
  // Restarts fire before cycles 5 and 10 (0-based): the stats recorded
  // after those cycles (indices 6 and 11) jump back toward the initial
  // variance after converging for five cycles.
  // (The second window has only four converged cycles behind it, so its
  // jump is smaller — 3× is comfortably above any non-restart step.)
  EXPECT_GT(run.per_cycle[6].variance(), 10.0 * run.per_cycle[5].variance());
  EXPECT_GT(run.per_cycle[11].variance(),
            3.0 * run.per_cycle[10].variance());
  // The restart re-seeds the *initial* values: the mean is preserved.
  EXPECT_NEAR(run.per_cycle[6].mean(), run.per_cycle[0].mean(), 1e-9);
}

// ------------------------------------------------- byzantine adversary

TEST(Byzantine, MembershipIsAPureIdHash) {
  const AdversarySpec adv = AdversarySpec::value_inject(0.2, 100.0);
  std::uint32_t byz = 0;
  for (std::uint32_t id = 0; id < 10000; ++id) byz += adv.is_byzantine(id);
  EXPECT_NEAR(static_cast<double>(byz), 2000.0, 120.0);
  // Stable across copies, and the disabled spec marks nobody.
  const AdversarySpec copy = adv;
  for (std::uint32_t id = 0; id < 100; ++id) {
    EXPECT_EQ(adv.is_byzantine(id), copy.is_byzantine(id));
    EXPECT_FALSE(AdversarySpec::none().is_byzantine(id));
  }
}

TEST(Byzantine, HonestStatisticsExcludeAdversaries) {
  const AdversarySpec adv = AdversarySpec::value_inject(0.2, 100.0);
  std::uint32_t honest = 0;
  for (std::uint32_t id = 0; id < 200; ++id) honest += !adv.is_byzantine(id);
  ScenarioSpec spec = ScenarioSpec::average_peak("honest", 200, 4)
                          .with_init(InitKind::kUniform)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_adversary(adv)
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});
  const RunResult run = engine.run_single(spec, 3);
  ASSERT_LT(honest, 200u);
  for (const auto& cycle : run.per_cycle) {
    EXPECT_EQ(cycle.count(), honest);
  }
}

TEST(Byzantine, RobustCombineBoundsInjectedBias) {
  // The acceptance claim: 10% injectors reporting 100 into a [0, 2)
  // uniform population. The plain mean is captured by the adversary;
  // trimmed_mean(0.25) bounds the drift an order of magnitude lower;
  // median_of_means at the pure-median limit (groups = window + 1)
  // pins the honest mean to well under one unit.
  ScenarioSpec base = ScenarioSpec::average_peak("bias", 400, 30)
                          .with_init(InitKind::kUniform)
                          .with_topology(TopologyConfig::newscast(30))
                          .with_adversary(
                              AdversarySpec::value_inject(0.1, 100.0))
                          .with_engine(EngineKind::kSerial);
  Engine engine({EngineKind::kSerial, 1, 1});

  ScenarioSpec mean_spec = base;
  ScenarioSpec trimmed_spec = base;
  trimmed_spec.combine = CombineSpec::trimmed_mean(0.25);
  ScenarioSpec mom_spec = base;
  mom_spec.combine = CombineSpec::median_of_means(9);

  const double mean_bias = final_bias(engine.run_single(mean_spec, 910));
  const double trimmed_bias =
      final_bias(engine.run_single(trimmed_spec, 920));
  const double mom_bias = final_bias(engine.run_single(mom_spec, 930));

  EXPECT_GT(mean_bias, 30.0);                 // measured ≈ 93
  EXPECT_LT(trimmed_bias, 20.0);              // measured ≈ 8
  EXPECT_LT(trimmed_bias, mean_bias / 3.0);
  EXPECT_LT(mom_bias, 5.0);                   // measured ≈ 0.4
  EXPECT_LT(mom_bias, trimmed_bias);
}

TEST(Byzantine, SerialAndIntraRepBothBoundTheBias) {
  // The two engines run their own matched-cycle models, so trajectories
  // differ — but the byzantine membership (a pure id hash) and the
  // shared robust combine must bound the bias in both, and the honest
  // population they report statistics over is identical.
  ScenarioSpec spec = ScenarioSpec::average_peak("parity", 400, 30)
                          .with_init(InitKind::kUniform)
                          .with_topology(TopologyConfig::newscast(30))
                          .with_adversary(
                              AdversarySpec::value_inject(0.1, 100.0))
                          .with_combine(CombineSpec::trimmed_mean(0.25));
  Engine serial({EngineKind::kSerial, 1, 1});
  Engine intra({EngineKind::kIntraRep, 4, 4});
  const RunResult s = serial.run_single(spec, 920);
  const RunResult p = intra.run_single(spec, 920);
  EXPECT_EQ(s.per_cycle.front().count(), p.per_cycle.front().count());
  EXPECT_LT(final_bias(s), 20.0);
  EXPECT_LT(final_bias(p), 20.0);
}

TEST(Byzantine, GeometryInvarianceWithRobustCombineAndPartition) {
  // The full adversarial stack — byzantine injectors, a healing
  // partition and a robust combine — stays bit-identical across every
  // shards × threads geometry of the intra-rep engine.
  ScenarioSpec spec = ScenarioSpec::average_peak("geo", 300, 12)
                          .with_init(InitKind::kUniform)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_failure(FailureSpec::partition(2, 4, 3))
                          .with_adversary(
                              AdversarySpec::value_inject(0.15, 50.0))
                          .with_combine(CombineSpec::trimmed_mean(0.25))
                          .with_engine(EngineKind::kIntraRep);
  Engine reference({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = reference.run_single(spec, 4711);
  for (unsigned shards : {2u, 8u}) {
    for (unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      Engine engine({EngineKind::kIntraRep, threads, shards});
      expect_identical(baseline, engine.run_single(spec, 4711));
    }
  }
}

// ------------------------------------------- robust combine unit tests

TEST(RobustCombine, TrimmedMeanOverOwnPlusWindow) {
  const CombineSpec combine = CombineSpec::trimmed_mean(0.25, 4);
  std::vector<double> window(4, 0.0), scratch, means;
  std::uint8_t wfill[1] = {0}, wpos[1] = {0};
  // Partial window: nothing trimmed until {own} ∪ window has 4 entries.
  EXPECT_DOUBLE_EQ(robust_combine_receive(combine, 0, 2.0, 10.0, window,
                                          wfill, wpos, scratch, means),
                   6.0);  // mean(2, 10)
  EXPECT_DOUBLE_EQ(robust_combine_receive(combine, 0, 2.0, 20.0, window,
                                          wfill, wpos, scratch, means),
                   32.0 / 3.0);  // mean(2, 10, 20)
  // {2, 10, 20, 30}: ⌊0.25 · 4⌋ = 1 dropped per side → mean(10, 20).
  EXPECT_DOUBLE_EQ(robust_combine_receive(combine, 0, 2.0, 30.0, window,
                                          wfill, wpos, scratch, means),
                   15.0);
}

TEST(RobustCombine, MedianOfMeansAtThePureMedianLimit) {
  // groups = window + 1 makes every group a singleton: the combine is
  // the exact median of {own} ∪ window, and the ring evicts oldest-first.
  const CombineSpec combine = CombineSpec::median_of_means(5, 4);
  std::vector<double> window(4, 0.0), scratch, means;
  std::uint8_t wfill[1] = {0}, wpos[1] = {0};
  double out = 0.0;
  for (double report : {1.0, 100.0, 2.0, 3.0}) {
    out = robust_combine_receive(combine, 0, 0.0, report, window, wfill,
                                 wpos, scratch, means);
  }
  EXPECT_DOUBLE_EQ(out, 2.0);  // median of {0, 1, 100, 2, 3}
  out = robust_combine_receive(combine, 0, 0.0, 4.0, window, wfill, wpos,
                               scratch, means);
  EXPECT_DOUBLE_EQ(out, 3.0);  // 1 evicted: median of {0, 100, 2, 3, 4}
}

// --------------------------------------------- sanitizer stress shape
//
// Partition filter + byzantine behavior + churn, raced across a big
// shard × thread grid — the shape the TSan CI job runs to see the
// adversarial paths genuinely contended. The bit-equality against the
// 1×1 reference doubles as the determinism assertion.

TEST(RobustnessStress, RacedPartitionByzantineChurn) {
  ScenarioSpec spec = ScenarioSpec::average_peak("stress", 600, 8)
                          .with_init(InitKind::kUniform)
                          .with_topology(TopologyConfig::newscast(10))
                          .with_failure(FailureSpec::partition(1, 4, 4))
                          .with_adversary(
                              AdversarySpec::value_inject(0.1, 50.0))
                          .with_combine(CombineSpec::trimmed_mean(0.25))
                          .with_engine(EngineKind::kIntraRep);
  failure::Churn churn(20);
  Engine reference({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = reference.run_single(spec, 31415, &churn);
  failure::Churn churn_again(20);
  Engine raced({EngineKind::kIntraRep, 8, 16});
  expect_identical(baseline, raced.run_single(spec, 31415, &churn_again));
}

TEST(RobustnessStress, RacedCachePollutionUnderMedianOfMeans) {
  ScenarioSpec spec = ScenarioSpec::average_peak("pollute", 400, 8)
                          .with_init(InitKind::kUniform)
                          .with_topology(TopologyConfig::newscast(12))
                          .with_adversary(AdversarySpec::cache_pollute(0.15))
                          .with_combine(CombineSpec::median_of_means(3, 8))
                          .with_engine(EngineKind::kIntraRep);
  Engine reference({EngineKind::kIntraRep, 1, 1});
  const RunResult baseline = reference.run_single(spec, 2718);
  Engine raced({EngineKind::kIntraRep, 8, 16});
  expect_identical(baseline, raced.run_single(spec, 2718));
}

}  // namespace
}  // namespace gossip::experiment
