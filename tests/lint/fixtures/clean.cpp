// lint-fixture-path: src/experiment/clean_fixture.cpp
// A fully-disciplined file: every pattern here is the sanctioned
// alternative, so the analyzer must stay silent. rand() and
// system_clock in this comment must not fire either. Never compiled.
#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_set>

namespace salt {
inline constexpr std::uint64_t kEngineGraph = 0x715ea7f0c9e2d3b1ULL;
}

double disciplined(std::uint64_t seed) {
  // Named registry salt, not a raw hex constant.
  std::uint64_t graph_seed = seed ^ salt::kEngineGraph;
  // steady_clock durations are the sanctioned timing-report clock.
  const auto t0 = std::chrono::steady_clock::now();
  // Ordered map iteration is deterministic.
  std::map<std::uint32_t, double> by_id;
  double total = 0.0;
  for (const auto& [id, v] : by_id) {
    total += v;
  }
  // Unordered membership (insert/contains) without iteration is fine.
  std::unordered_set<std::uint32_t> live;
  live.insert(static_cast<std::uint32_t>(graph_seed & 0xff));
  if (live.contains(3)) {
    total += 1.0;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  return total + std::chrono::duration<double>(dt).count();
}
