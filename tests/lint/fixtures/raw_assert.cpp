// lint-fixture-path: src/proto/decode_fixture.cpp
// Seeded violations for rule raw-assert (scoped to src/proto/, src/net/,
// src/runtime/). Never compiled — consumed by --self-test only.
#include <cassert>
#include <cstdint>

void decode_header(std::uint32_t count, std::uint32_t max_entries) {
  assert(count < max_entries);  // finding: vanishes in release builds
  // compile-time checks are fine: no finding.
  static_assert(sizeof(std::uint32_t) == 4, "wire uses 32-bit ids");
}
