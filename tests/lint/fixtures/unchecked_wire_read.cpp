// lint-fixture-path: src/runtime/parse_fixture.cpp
// Seeded violation for rule unchecked-wire-read (scoped to src/proto/
// and src/runtime/). Never compiled — consumed by --self-test only.
#include <cstdint>
#include <vector>

// gossip-lint: allow(unchecked-wire-read): forward declaration — no
// bytes are read at this line.
std::uint32_t get_u32(const std::byte* in);
constexpr std::size_t kHeaderSize = 13;

void parse(const std::vector<std::byte>& buffer) {
  std::size_t off = 0;
  // Guarded read: the while header checks remaining bytes — no finding.
  while (buffer.size() - off >= kHeaderSize) {
    const std::uint32_t len = get_u32(buffer.data() + off);
    off += kHeaderSize + len;
  }
}

std::uint32_t peek_type(const std::vector<std::byte>& buffer) {
  double pad0 = 0.0;
  double pad1 = 1.0;
  double pad2 = 2.0;
  double pad3 = 3.0;
  double pad4 = 4.0;
  double pad5 = 5.0;
  double pad6 = 6.0;
  (void)pad0; (void)pad1; (void)pad2; (void)pad3;
  (void)pad4; (void)pad5; (void)pad6;
  // finding: no bounds guard within the window — a truncated frame
  // overreads here.
  return get_u32(buffer.data() + 9);
}
