// Justified suppressions for every concurrency rule: each violation
// below carries an allow with a reason, so this fixture must produce
// ZERO findings — including no unused-suppression noise. Never
// compiled; --self-test input only.
#include <atomic>
#include <mutex>
#include <thread>

struct LegacyBridge {
  std::atomic<unsigned> hits_{0};
  std::mutex order_a_;
  std::mutex order_b_;
  // gossip-lint: allow(volatile-sync): fixture models a memory-mapped
  // device register, not cross-thread synchronization.
  volatile int mmio_register_ = 0;

  void record() {
    // gossip-lint: allow(atomic-memory-order): fixture models a vendor
    // callback whose documented contract is seq_cst.
    hits_.fetch_add(1);
  }

  void ordered_pair() {
    // gossip-lint: allow(bare-mutex-lock): two-phase ordered acquisition
    // across members; a scoped guard cannot span the protocol.
    order_a_.lock();
    // gossip-lint: allow(bare-mutex-lock): second phase of the ordered
    // acquisition started above.
    order_b_.lock();
    // gossip-lint: allow(bare-mutex-lock): released in reverse
    // acquisition order by the same protocol.
    order_b_.unlock();
    // gossip-lint: allow(bare-mutex-lock): matching release for the
    // first phase of the ordered acquisition.
    order_a_.unlock();
  }

  void fire_probe() {
    std::thread probe([] {});
    // gossip-lint: allow(thread-detach): fixture models a crash-path
    // probe that must outlive the failing scope.
    probe.detach();
  }
};
