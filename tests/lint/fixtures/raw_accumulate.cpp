// Seeded violations for rule raw-accumulate. Never compiled — consumed
// by tools/gossip_lint.py --self-test only.
#include <numeric>
#include <vector>

double shape_dependent_reduction(const std::vector<double>& per_node) {
  // finding: left-fold shape follows the call site
  double sum = std::accumulate(per_node.begin(), per_node.end(), 0.0);
  // finding: std::reduce's shape is unspecified entirely
  double alt = std::reduce(per_node.begin(), per_node.end(), 0.0);
  return sum + alt;
}
