// lint-fixture-path: src/experiment/salt_fixture.cpp
// Seeded violations for rule raw-stream-salt (scoped to src/ + bench/).
// Never compiled — consumed by tools/gossip_lint.py --self-test only.
#include <cstdint>

std::uint64_t alias_prone_streams(std::uint64_t seed, std::uint64_t cycle) {
  // finding: raw XOR salt dodges the registry's distinctness check
  std::uint64_t graph_seed = seed ^ 0xabcd1234abcd1234ULL;
  // finding: raw keying multiplier — the PR 4 collision class
  std::uint64_t keyed = seed ^ (cycle * 0x9e3779b97f4a7c15ULL);
  // small masks and shifts are not salts: no finding.
  std::uint64_t low = keyed & 0xff;
  return graph_seed ^ keyed ^ low;
}
