// Seeded violations for rule unordered-iteration. Never compiled —
// consumed by tools/gossip_lint.py --self-test only.
#include <unordered_map>
#include <unordered_set>
#include <cstdint>

struct Stats {
  void record(double v);
};

void order_dependent_stats(Stats& stats) {
  std::unordered_map<std::uint32_t, double> estimate_by_id;
  std::unordered_set<std::uint32_t> live;
  // finding: hash-order iteration feeding a recorded statistic
  for (const auto& [id, value] : estimate_by_id) {
    stats.record(value);
  }
  // finding: explicit iterator walk over an unordered container
  for (auto it = live.begin(); it != live.end(); ++it) {
    stats.record(static_cast<double>(*it));
  }
  // membership tests and inserts are order-free: no finding.
  live.insert(7);
  if (live.contains(7)) {
    stats.record(1.0);
  }
}
