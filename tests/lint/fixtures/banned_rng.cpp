// Seeded violations for rule banned-rng. Never compiled — consumed by
// tools/gossip_lint.py --self-test only.
// rand() in a comment must NOT fire: the tokenizer strips comments.
#include <cstdlib>
#include <random>

int entropy_from_the_host() {
  std::random_device rd;  // finding: hardware entropy is unreplayable
  int roll = rand() % 6;  // finding: C PRNG, global hidden state
  srand(42);              // finding: reseeding the global C PRNG
  const char* text = "calling rand() in a string literal is fine";
  (void)text;
  return static_cast<int>(rd()) + roll;
}
