// Broken suppressions: each allow below is malformed, so the analyzer
// must report the suppression itself — and a malformed allow must NOT
// silence the underlying violation. Never compiled; --self-test only.
#include <cstdlib>

int broken_allows() {
  // gossip-lint: allow(no-such-rule): the rule name is misspelled here
  int a = 1;
  // gossip-lint: allow(banned-rng)
  int b = rand();  // still a finding: the allow has no justification
  // gossip-lint: allow(banned-clock): justified, but there is no clock
  // read on the next code line, so this is flagged as unused
  int c = 2;
  return a + b + c;
}
