// Seeded violations for rule banned-clock. Never compiled — consumed by
// tools/gossip_lint.py --self-test only.
#include <chrono>
#include <ctime>

double wall_clock_leaks() {
  auto wall = std::chrono::system_clock::now();  // finding: wall clock
  std::time_t stamp = time(nullptr);             // finding: wall clock
  // steady_clock is the allowed timing-report clock: no finding.
  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  (void)wall;
  (void)stamp;
  return std::chrono::duration<double>(elapsed).count();
}
