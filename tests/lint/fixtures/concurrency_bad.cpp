// Concurrency rule violations: implicit-seq_cst atomics (including a
// call whose arguments span lines), a detached thread, manual mutex
// lock/unlock, and volatile used as a cross-thread flag. Never
// compiled; --self-test input only.
#include <atomic>
#include <mutex>
#include <thread>

struct Worker {
  std::atomic<unsigned> counter_{0};
  std::atomic<bool> done_{false};
  std::mutex mutex_;
  volatile bool stop_flag_ = false;
  unsigned shared_ = 0;

  void tick() {
    counter_.fetch_add(1);
    done_.store(true);
    bool expected = false;
    done_.compare_exchange_strong(expected,
                                  true);
  }

  unsigned read() const { return counter_.load(); }

  void run() {
    std::thread worker([] {});
    worker.detach();
    mutex_.lock();
    ++shared_;
    mutex_.unlock();
  }
};
