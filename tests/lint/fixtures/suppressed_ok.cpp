// Correct suppressions: every violation below carries a justified
// allow, so this fixture must produce ZERO findings — including no
// unused-suppression noise. Never compiled; --self-test input only.
#include <chrono>
#include <numeric>
#include <vector>

double justified_exceptions(const std::vector<double>& local) {
  // gossip-lint: allow(raw-accumulate): fixture-local serial sum with a
  // fixed iteration order; nothing recorded crosses a geometry.
  double sum = std::accumulate(local.begin(), local.end(), 0.0);
  // gossip-lint: allow(banned-clock): log banner timestamp only — the
  // value never reaches a result or an RNG.
  auto when = std::chrono::system_clock::now();
  (void)when;
  return sum;
}
