// Correct concurrency idioms: every atomic op spells its memory_order
// (even when the argument list spans lines), threads are jthread-owned,
// mutexes are held via RAII guards, and lock-wrapper variables may call
// .lock()/.unlock(). Must produce ZERO findings. Never compiled;
// --self-test input only.
#include <atomic>
#include <mutex>
#include <thread>

struct Worker {
  std::atomic<unsigned> counter_{0};
  std::atomic<bool> done_{false};
  std::mutex mutex_;
  unsigned shared_ = 0;

  void tick() {
    counter_.fetch_add(1, std::memory_order_relaxed);
    done_.store(true, std::memory_order_release);
    bool expected = false;
    done_.compare_exchange_strong(expected, true,
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  }

  unsigned read() const { return counter_.load(std::memory_order_relaxed); }

  void run() {
    std::jthread worker([] {});
    std::unique_lock<std::mutex> lock(mutex_);
    lock.unlock();
    lock.lock();
    ++shared_;
    std::lock_guard<std::mutex> guard(mutex_);
  }
};

// A value-level exchange on a non-atomic object (cf. the simulated
// network's exchange()) is not an atomic RMW and is not flagged.
template <typename Net> void shuffle(Net& net) { net.exchange(0, 1, 5); }
