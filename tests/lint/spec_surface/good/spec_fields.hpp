// spec-surface-lint fixture: a fully covered descriptor table — every
// field has a golden SpecError test, a doc mention and (for SET rows)
// a --set round-trip, so the analyzer must stay silent. Never
// compiled; --self-test input only.
#define GOSSIP_SPEC_TOP_FIELDS(X)                                           \
  X(nodes, "nodes", U32, _, "10000", ALWAYS, SET, "nodes", "nodes")         \
  X(cycles, "cycles", U32, _, "30", ALWAYS, SET, "cycles", "cycles")

#define GOSSIP_SPEC_FAILURE_FIELDS(X)                                       \
  X(cycle, "cycle", U32, _, "0", ALWAYS, NOSET, "", "death_cycle")

#define GOSSIP_SPEC_ALL_GROUPS(G)                                           \
  G(GOSSIP_SPEC_TOP_FIELDS, "top", "")                                      \
  G(GOSSIP_SPEC_FAILURE_FIELDS, "failure", "failure.")
