// spec-surface-lint fixture: the test surface of the good/ tree.
// Every descriptor field has a wrong-type golden; every SET key has a
// round-trip case.
static const FieldErrorCase kCases[] = {
    {"nodes", R"({"nodes": "x"})", "spec: nodes must be a non-negative"},
    {"cycles", R"({"cycles": "x"})", "spec: cycles must be a non-negative"},
    {"failure.cycle", R"({"failure": {"cycle": "x"}})",
     "spec: failure.cycle must be a non-negative"},
};

static const SetKeyCase kSetCases[] = {
    {"nodes", "64"},
    {"cycles", "12"},
};
