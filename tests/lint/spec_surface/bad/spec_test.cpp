// spec-surface-lint fixture: the test surface of the bad/ tree.
// One descriptor field is deliberately covered by no case below, so
// the analyzer must flag its missing error golden and round-trip.
static const FieldErrorCase kCases[] = {
    {"nodes", R"({"nodes": "x"})", "spec: nodes must be a non-negative"},
    {"quiet_knob", R"({"quiet_knob": "x"})",
     "spec: quiet_knob must be a non-negative"},
    {"failure.cycle", R"({"failure": {"cycle": "x"}})",
     "spec: failure.cycle must be a non-negative"},
};

static const SetKeyCase kSetCases[] = {
    {"nodes", "64"},
};
