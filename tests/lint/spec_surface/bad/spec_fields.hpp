// spec-surface-lint fixture: a deliberately under-covered descriptor
// table. `ghost_knob` is registered on no other surface (no golden
// SpecError test, no doc mention, no --set round-trip), so the
// analyzer must report all three rules for it. `quiet_knob` is tested
// but undocumented, with a justified suppression. Never compiled;
// --self-test input only.
#define GOSSIP_SPEC_TOP_FIELDS(X)                                           \
  X(nodes, "nodes", U32, _, "10000", ALWAYS, SET, "nodes", "nodes")         \
  X(ghost_knob, "ghost_knob", U32, _, "0", ALWAYS, SET, "ghost_knob", "")   \
  X(quiet_knob, "quiet_knob", U32, _, "0", ALWAYS, NOSET, "", "")

#define GOSSIP_SPEC_FAILURE_FIELDS(X)                                       \
  X(cycle, "cycle", U32, _, "0", ALWAYS, NOSET, "", "death_cycle")

// spec-surface-lint: allow(missing-doc, quiet_knob): fixture models an
// internal-only diagnostic field kept out of the user-facing docs.

// This suppression targets a fully covered field and must be reported
// as unused:
// spec-surface-lint: allow(missing-doc, failure.cycle): stale reason
// kept long enough to pass the justification gate.

// And this one names a rule that does not exist:
// spec-surface-lint: allow(no-such-rule, nodes): whatever the reason.

#define GOSSIP_SPEC_ALL_GROUPS(G)                                           \
  G(GOSSIP_SPEC_TOP_FIELDS, "top", "")                                      \
  G(GOSSIP_SPEC_FAILURE_FIELDS, "failure", "failure.")
