// The NEWSCAST partial view (paper §4.4, [4]): a fixed-capacity cache of
// (peer id, timestamp) descriptors. Exchanging and merging caches —
// keeping the c freshest distinct peers — is the entire membership
// protocol; crashed peers disappear because they stop injecting fresh
// descriptors of themselves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip::membership {

/// One cache slot: who, and how fresh the information is. Timestamps are
/// logical (cycle index in the cycle driver, simulated time in the event
/// engine); bigger is fresher.
///
/// The descriptor is packed to 8 bytes (32-bit id + 32-bit timestamp):
/// the NewscastNetwork entry pool is the dominant memory stream of a
/// cycle at N ≥ 10⁴ (run_cycle is latency-bound on two random ~c-entry
/// slots per exchange), and halving the entry width halves that
/// traffic. Logical time fits comfortably — cycle indices by
/// construction, and event-engine simulated time is guarded at spec
/// validation and again in the converting constructor below.
struct CacheEntry {
  /// Largest logical time a packed descriptor can carry.
  static constexpr std::uint64_t kMaxTimestamp = 0xffffffffULL;

  NodeId id;
  std::uint32_t timestamp = 0;

  constexpr CacheEntry() = default;
  constexpr CacheEntry(NodeId id_, std::uint64_t ts) : id(id_) {
    GOSSIP_REQUIRE(ts <= kMaxTimestamp,
                   "logical timestamp overflows the packed 32-bit clock");
    timestamp = static_cast<std::uint32_t>(ts);
  }

  friend bool operator==(const CacheEntry&, const CacheEntry&) = default;
};

static_assert(sizeof(CacheEntry) == 8,
              "CacheEntry must stay packed to 8 bytes — the entry pool "
              "walk is the cycle driver's dominant memory stream");

/// Freshest first; ties broken by id so merges are deterministic. Both
/// NewscastCache and NewscastNetwork order by this predicate — their
/// merges must stay in lockstep (golden-tested).
inline bool fresher(const CacheEntry& a, const CacheEntry& b) {
  if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
  return a.id < b.id;
}

/// Fixed-capacity freshest-first view. Invariants: entries are distinct by
/// id, sorted by (timestamp desc, id asc) for deterministic behaviour, and
/// never exceed capacity.
class NewscastCache {
public:
  explicit NewscastCache(std::size_t capacity) : capacity_(capacity) {
    GOSSIP_REQUIRE(capacity >= 1, "newscast cache needs capacity >= 1");
    entries_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::span<const CacheEntry> entries() const {
    return entries_;
  }

  [[nodiscard]] bool contains(NodeId id) const;

  /// Inserts one descriptor, keeping the freshest copy of duplicate ids
  /// and truncating to capacity.
  void insert(CacheEntry entry);

  /// The NEWSCAST merge: from the union of this cache, `received`, and
  /// the sender's own fresh descriptor, keep the `capacity` freshest
  /// distinct entries, never retaining `self`.
  void merge(std::span<const CacheEntry> received, CacheEntry sender_fresh,
             NodeId self);

  /// Uniform random cache entry; the GETNEIGHBOR() of fig. 1 when the
  /// overlay is NEWSCAST. Invalid when empty.
  [[nodiscard]] NodeId sample(Rng& rng) const;

  /// Drops every entry older than `cutoff` (strictly smaller timestamp).
  void expire_older_than(std::uint64_t cutoff);

private:
  std::size_t capacity_;
  std::vector<CacheEntry> entries_;
};

}  // namespace gossip::membership
