// The NEWSCAST partial view (paper §4.4, [4]): a fixed-capacity cache of
// (peer id, timestamp) descriptors. Exchanging and merging caches —
// keeping the c freshest distinct peers — is the entire membership
// protocol; crashed peers disappear because they stop injecting fresh
// descriptors of themselves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip::membership {

/// One cache slot: who, and how fresh the information is. Timestamps are
/// logical (cycle index in the cycle driver, simulated time in the event
/// engine); bigger is fresher.
struct CacheEntry {
  NodeId id;
  std::uint64_t timestamp = 0;

  friend bool operator==(const CacheEntry&, const CacheEntry&) = default;
};

/// Freshest first; ties broken by id so merges are deterministic. Both
/// NewscastCache and NewscastNetwork order by this predicate — their
/// merges must stay in lockstep (golden-tested).
inline bool fresher(const CacheEntry& a, const CacheEntry& b) {
  if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
  return a.id < b.id;
}

/// Fixed-capacity freshest-first view. Invariants: entries are distinct by
/// id, sorted by (timestamp desc, id asc) for deterministic behaviour, and
/// never exceed capacity.
class NewscastCache {
public:
  explicit NewscastCache(std::size_t capacity) : capacity_(capacity) {
    GOSSIP_REQUIRE(capacity >= 1, "newscast cache needs capacity >= 1");
    entries_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::span<const CacheEntry> entries() const {
    return entries_;
  }

  [[nodiscard]] bool contains(NodeId id) const;

  /// Inserts one descriptor, keeping the freshest copy of duplicate ids
  /// and truncating to capacity.
  void insert(CacheEntry entry);

  /// The NEWSCAST merge: from the union of this cache, `received`, and
  /// the sender's own fresh descriptor, keep the `capacity` freshest
  /// distinct entries, never retaining `self`.
  void merge(std::span<const CacheEntry> received, CacheEntry sender_fresh,
             NodeId self);

  /// Uniform random cache entry; the GETNEIGHBOR() of fig. 1 when the
  /// overlay is NEWSCAST. Invalid when empty.
  [[nodiscard]] NodeId sample(Rng& rng) const;

  /// Drops every entry older than `cutoff` (strictly smaller timestamp).
  void expire_older_than(std::uint64_t cutoff);

private:
  std::size_t capacity_;
  std::vector<CacheEntry> entries_;
};

}  // namespace gossip::membership
