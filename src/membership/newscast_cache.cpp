#include "membership/newscast_cache.hpp"

#include <algorithm>

namespace gossip::membership {

bool NewscastCache::contains(NodeId id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const CacheEntry& e) { return e.id == id; });
}

void NewscastCache::insert(CacheEntry entry) {
  GOSSIP_REQUIRE(entry.id.is_valid(), "cannot cache an invalid node id");
  merge({}, entry, NodeId::invalid());
}

void NewscastCache::merge(std::span<const CacheEntry> received,
                          CacheEntry sender_fresh, NodeId self) {
  // This is the hottest code in every newscast simulation (two calls per
  // exchange, one exchange per node per cycle), so it is written as an
  // allocation-free two-pointer merge over the freshness order instead of
  // sort passes. The thread_local scratch is safe: caches are only ever
  // mutated by their owning engine thread.
  static thread_local std::vector<CacheEntry> incoming;
  static thread_local std::vector<CacheEntry> merged;

  incoming.assign(received.begin(), received.end());
  // A received view is freshest-first by class invariant, but public
  // callers may hand us arbitrary spans — restore the order if needed.
  if (!std::is_sorted(incoming.begin(), incoming.end(), fresher)) {
    std::sort(incoming.begin(), incoming.end(), fresher);
  }
  if (sender_fresh.id.is_valid()) {
    incoming.insert(std::lower_bound(incoming.begin(), incoming.end(),
                                     sender_fresh, fresher),
                    sender_fresh);
  }

  merged.clear();
  const auto keep = [&](const CacheEntry& e) {
    if (e.id == self) return;
    for (const CacheEntry& k : merged) {
      if (k.id == e.id) return;  // an earlier (fresher) copy won
    }
    merged.push_back(e);
  };
  std::size_t i = 0, j = 0;
  while (merged.size() < capacity_ &&
         (i < entries_.size() || j < incoming.size())) {
    if (j == incoming.size() ||
        (i < entries_.size() && fresher(entries_[i], incoming[j]))) {
      keep(entries_[i++]);
    } else {
      keep(incoming[j++]);
    }
  }
  entries_.assign(merged.begin(), merged.end());
}

NodeId NewscastCache::sample(Rng& rng) const {
  if (entries_.empty()) return NodeId::invalid();
  return entries_[rng.below(entries_.size())].id;
}

void NewscastCache::expire_older_than(std::uint64_t cutoff) {
  std::erase_if(entries_, [cutoff](const CacheEntry& e) {
    return e.timestamp < cutoff;
  });
}

}  // namespace gossip::membership
