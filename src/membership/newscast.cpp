#include "membership/newscast.hpp"

#include <algorithm>
#include <deque>

#include "common/require.hpp"

namespace gossip::membership {

bool NewscastNetwork::ConstCacheView::contains(NodeId id) const {
  const auto es = entries();
  return std::any_of(es.begin(), es.end(),
                     [id](const CacheEntry& e) { return e.id == id; });
}

NodeId NewscastNetwork::ConstCacheView::sample(Rng& rng) const {
  const auto es = entries();
  if (es.empty()) return NodeId::invalid();
  return es[rng.below(es.size())].id;
}

void NewscastNetwork::CacheView::insert(CacheEntry entry) {
  GOSSIP_REQUIRE(entry.id.is_valid(), "cannot cache an invalid node id");
  mutable_net_->merge_into(node_, {}, entry, NodeId::invalid());
}

NewscastNetwork::NewscastNetwork(std::size_t cache_size)
    : cache_size_(cache_size) {
  GOSSIP_REQUIRE(cache_size >= 1, "newscast needs cache size >= 1");
  scratch_.reserve(cache_size_);
  incoming_.reserve(cache_size_ + 1);
  merged_.reserve(cache_size_);
}

std::span<const CacheEntry> NewscastNetwork::view(NodeId id) const {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < sizes_.size(),
                 "cache() id out of range");
  return {pool_.data() + static_cast<std::size_t>(id.value()) * cache_size_,
          sizes_[id.value()]};
}

NewscastNetwork::ConstCacheView NewscastNetwork::cache(NodeId id) const {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < sizes_.size(),
                 "cache() id out of range");
  return ConstCacheView(this, id.value());
}

NewscastNetwork::CacheView NewscastNetwork::cache(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < sizes_.size(),
                 "cache() id out of range");
  return CacheView(this, id.value());
}

void NewscastNetwork::merge_into(std::uint32_t node,
                                 std::span<const CacheEntry> received,
                                 CacheEntry sender_fresh, NodeId self) {
  // The hottest code in every newscast simulation (two calls per
  // exchange, one exchange per node per cycle). Three ingredients keep
  // it allocation-free and out of O(c²):
  //  * a 3-way merge over (slot, received, fresh descriptor) — the
  //    received span is consumed in place, never copied or re-packed;
  //  * duplicate-id suppression via an epoch-stamped marker array
  //    (mark_[id] == epoch_ means "already kept this merge"), O(1) per
  //    candidate instead of scanning the output;
  //  * merged_ as a member staging buffer sized once in the constructor.
  // The pick order reproduces NewscastCache::merge exactly: on equal
  // (timestamp, id) keys the incoming side wins over the slot, and the
  // fresh descriptor wins over received entries (the old lower_bound
  // insertion point). Golden-tested in tests/determinism_test.cpp.
  if (!std::is_sorted(received.begin(), received.end(), fresher)) {
    // Public callers may hand us arbitrary spans; slot views are always
    // sorted, so this copy only happens off the hot path.
    incoming_.assign(received.begin(), received.end());
    std::sort(incoming_.begin(), incoming_.end(), fresher);
    received = incoming_;
  }

  ++epoch_;
  if (epoch_ == 0) {  // stamp wrap: invalidate all stale marks
    std::fill(mark_.begin(), mark_.end(), 0u);
    epoch_ = 1;
  }
  const auto mark_limit = static_cast<std::uint32_t>(mark_.size());
  if (self.is_valid() && self.value() < mark_limit) {
    mark_[self.value()] = epoch_;  // never retain our own descriptor
  }

  CacheEntry* slot =
      pool_.data() + static_cast<std::size_t>(node) * cache_size_;
  const std::size_t current = sizes_[node];

  merged_.clear();
  const auto keep = [&](const CacheEntry& e) {
    if (e.id.value() >= mark_limit) {
      // Ids the network has never registered (hand-built test views);
      // fall back to scanning the staged output.
      if (e.id == self) return;
      for (const CacheEntry& k : merged_) {
        if (k.id == e.id) return;
      }
      merged_.push_back(e);
      return;
    }
    auto& mark = mark_[e.id.value()];
    if (mark == epoch_) return;  // an earlier (fresher) copy won
    mark = epoch_;
    merged_.push_back(e);
  };

  std::size_t i = 0, j = 0;
  bool fresh_pending = sender_fresh.id.is_valid();
  while (merged_.size() < cache_size_) {
    // Head of the incoming stream: the fresh descriptor goes before any
    // received entry it doesn't strictly lose to.
    const CacheEntry* in = nullptr;
    bool in_is_fresh = false;
    if (fresh_pending &&
        (j >= received.size() || !fresher(received[j], sender_fresh))) {
      in = &sender_fresh;
      in_is_fresh = true;
    } else if (j < received.size()) {
      in = &received[j];
    }
    if (i < current && (in == nullptr || fresher(slot[i], *in))) {
      keep(slot[i++]);
    } else if (in != nullptr) {
      keep(*in);
      if (in_is_fresh) {
        fresh_pending = false;
      } else {
        ++j;
      }
    } else {
      break;  // both streams exhausted
    }
  }
  std::copy(merged_.begin(), merged_.end(), slot);
  sizes_[node] = static_cast<std::uint32_t>(merged_.size());
}

void NewscastNetwork::grow_one(NodeId id) {
  GOSSIP_REQUIRE(id.value() == sizes_.size(),
                 "newscast nodes must be added in id order");
  pool_.resize(pool_.size() + cache_size_);
  sizes_.push_back(0);
  mark_.push_back(0);
}

void NewscastNetwork::bootstrap_random(std::uint32_t n, std::uint64_t now,
                                       Rng& rng) {
  GOSSIP_REQUIRE(n >= 2, "newscast bootstrap needs at least two nodes");
  pool_.assign(static_cast<std::size_t>(n) * cache_size_, CacheEntry{});
  sizes_.assign(n, 0);
  mark_.assign(n, 0);
  epoch_ = 0;
  const std::size_t fill = std::min<std::size_t>(cache_size_, n - 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint64_t raw : rng.sample_distinct(n - 1, fill)) {
      const auto v = static_cast<std::uint32_t>(raw >= u ? raw + 1 : raw);
      merge_into(u, {}, CacheEntry{NodeId(v), now}, NodeId::invalid());
    }
  }
}

void NewscastNetwork::add_node(NodeId id, NodeId contact,
                               std::uint64_t now) {
  GOSSIP_REQUIRE(contact.is_valid() && contact.value() < sizes_.size(),
                 "join contact out of range");
  grow_one(id);
  // The contact's view must be snapshotted before merging: the merge
  // writes into the (possibly reallocated) pool the span points into.
  scratch_.assign(view(contact).begin(), view(contact).end());
  merge_into(id.value(), scratch_, CacheEntry{contact, now}, id);
  // The contact learns about the newcomer in return (it served the join).
  merge_into(contact.value(), {}, CacheEntry{id, now}, NodeId::invalid());
}

void NewscastNetwork::add_node_with_view(NodeId id,
                                         std::span<const CacheEntry> view) {
  // Copy first: growing the pool may reallocate under a span that points
  // into it (callers legitimately pass another node's view).
  scratch_.assign(view.begin(), view.end());
  grow_one(id);
  merge_into(id.value(), scratch_, CacheEntry{NodeId::invalid(), 0}, id);
}

void NewscastNetwork::reserve_joins(std::size_t extra) {
  pool_.reserve(pool_.size() + extra * cache_size_);
  sizes_.reserve(sizes_.size() + extra);
  mark_.reserve(mark_.size() + extra);
}

void NewscastNetwork::exchange(NodeId a, NodeId b, std::uint64_t now) {
  GOSSIP_REQUIRE(a != b, "newscast exchange with self");
  GOSSIP_REQUIRE(a.is_valid() && a.value() < sizes_.size() &&
                     b.is_valid() && b.value() < sizes_.size(),
                 "exchange() id out of range");
  // Snapshot a's outgoing view before it merges b's; the member scratch
  // buffer keeps this hot path allocation-free.
  const auto va = view(a);
  scratch_.assign(va.begin(), va.end());
  merge_into(a.value(), view(b), CacheEntry{b, now}, a);
  merge_into(b.value(), scratch_, CacheEntry{a, now}, b);
}

void NewscastNetwork::run_cycle(const overlay::Population& population,
                                std::uint64_t now, Rng& rng) {
  const auto& live = population.live();
  order_.assign(live.begin(), live.end());
  rng.shuffle(order_);
  for (NodeId initiator : order_) {
    // A node killed earlier in this same cycle no longer initiates.
    if (!population.alive(initiator)) continue;
    const NodeId peer = cache(initiator).sample(rng);
    if (!peer.is_valid()) continue;
    if (peer.value() >= population.total() || !population.alive(peer)) {
      continue;  // timeout: crashed peer never answers (§4.2)
    }
    exchange(initiator, peer, now);
  }
}

bool NewscastNetwork::live_view_connected(
    const overlay::Population& population) const {
  const auto& live = population.live();
  if (live.size() <= 1) return true;
  // BFS over live nodes following cache links in both directions.
  std::vector<std::vector<NodeId>> adj(population.total());
  for (NodeId u : live) {
    for (const CacheEntry& e : view(u)) {
      if (e.id.value() < population.total() && population.alive(e.id)) {
        adj[u.value()].push_back(e.id);
        adj[e.id.value()].push_back(u);
      }
    }
  }
  std::vector<char> seen(population.total(), 0);
  std::deque<NodeId> frontier{live.front()};
  seen[live.front().value()] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adj[u.value()]) {
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        ++reached;
        frontier.push_back(v);
      }
    }
  }
  return reached == live.size();
}

}  // namespace gossip::membership
