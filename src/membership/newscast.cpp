#include "membership/newscast.hpp"

#include <algorithm>
#include <deque>

#include "common/require.hpp"

namespace gossip::membership {

bool NewscastNetwork::ConstCacheView::contains(NodeId id) const {
  const auto es = entries();
  return std::any_of(es.begin(), es.end(),
                     [id](const CacheEntry& e) { return e.id == id; });
}

NodeId NewscastNetwork::ConstCacheView::sample(Rng& rng) const {
  const auto es = entries();
  if (es.empty()) return NodeId::invalid();
  return es[rng.below(es.size())].id;
}

void NewscastNetwork::CacheView::insert(CacheEntry entry) {
  GOSSIP_REQUIRE(entry.id.is_valid(), "cannot cache an invalid node id");
  mutable_net_->merge_into(mutable_net_->buffers_, node_, {}, entry,
                           NodeId::invalid());
}

NewscastNetwork::NewscastNetwork(std::size_t cache_size)
    : cache_size_(cache_size) {
  GOSSIP_REQUIRE(cache_size >= 1, "newscast needs cache size >= 1");
  buffers_.scratch.reserve(cache_size_);
  buffers_.incoming.reserve(cache_size_ + 1);
  buffers_.merged.reserve(cache_size_);
}

std::span<const CacheEntry> NewscastNetwork::view(NodeId id) const {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < sizes_.size(),
                 "cache() id out of range");
  return {pool_.data() + static_cast<std::size_t>(id.value()) * cache_size_,
          sizes_[id.value()]};
}

NewscastNetwork::ConstCacheView NewscastNetwork::cache(NodeId id) const {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < sizes_.size(),
                 "cache() id out of range");
  return ConstCacheView(this, id.value());
}

NewscastNetwork::CacheView NewscastNetwork::cache(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < sizes_.size(),
                 "cache() id out of range");
  return CacheView(this, id.value());
}

std::uint32_t NewscastNetwork::begin_merge(MergeBuffers& buffers) const {
  // Every mark array and the epoch stamp must advance together — this is
  // the single place that invariant lives. Fresh per-thread buffers (and
  // joins growing the id space) catch up lazily; new slots hold epoch 0,
  // which never equals a live stamp.
  if (buffers.mark.size() < sizes_.size()) {
    buffers.mark.resize(sizes_.size(), 0u);
  }
  if (buffers.mark2.size() < sizes_.size()) {
    buffers.mark2.resize(sizes_.size(), 0u);
  }
  ++buffers.epoch;
  if (buffers.epoch == 0) {  // stamp wrap: invalidate all stale marks
    std::fill(buffers.mark.begin(), buffers.mark.end(), 0u);
    std::fill(buffers.mark2.begin(), buffers.mark2.end(), 0u);
    buffers.epoch = 1;
  }
  return buffers.epoch;
}

void NewscastNetwork::merge_into(MergeBuffers& buffers, std::uint32_t node,
                                 std::span<const CacheEntry> received,
                                 CacheEntry sender_fresh, NodeId self,
                                 bool received_sorted) {
  // The hottest code in every newscast simulation (two calls per
  // exchange, one exchange per node per cycle). Three ingredients keep
  // it allocation-free and out of O(c²):
  //  * a 3-way merge over (slot, received, fresh descriptor) — the
  //    received span is consumed in place, never copied or re-packed;
  //  * duplicate-id suppression via an epoch-stamped marker array
  //    (mark[id] == epoch means "already kept this merge"), O(1) per
  //    candidate instead of scanning the output;
  //  * merged as caller-owned staging reused across merges.
  // The pick order reproduces NewscastCache::merge exactly: on equal
  // (timestamp, id) keys the incoming side wins over the slot, and the
  // fresh descriptor wins over received entries (the old lower_bound
  // insertion point). Golden-tested in tests/determinism_test.cpp.
  if (!received_sorted &&
      !std::is_sorted(received.begin(), received.end(), fresher)) {
    // Public callers may hand us arbitrary spans; slot views are always
    // sorted, so this copy only happens off the hot path.
    buffers.incoming.assign(received.begin(), received.end());
    std::sort(buffers.incoming.begin(), buffers.incoming.end(), fresher);
    received = buffers.incoming;
  }

  const std::uint32_t epoch = begin_merge(buffers);
  const auto mark_limit = static_cast<std::uint32_t>(buffers.mark.size());
  if (self.is_valid() && self.value() < mark_limit) {
    buffers.mark[self.value()] = epoch;  // never retain our own descriptor
  }

  CacheEntry* slot =
      pool_.data() + static_cast<std::size_t>(node) * cache_size_;
  const std::size_t current = sizes_[node];

  auto& merged = buffers.merged;
  merged.clear();
  const auto keep = [&](const CacheEntry& e) {
    if (e.id.value() >= mark_limit) {
      // Ids the network has never registered (hand-built test views);
      // fall back to scanning the staged output.
      if (e.id == self) return;
      for (const CacheEntry& k : merged) {
        if (k.id == e.id) return;
      }
      merged.push_back(e);
      return;
    }
    auto& mark = buffers.mark[e.id.value()];
    if (mark == epoch) return;  // an earlier (fresher) copy won
    mark = epoch;
    merged.push_back(e);
  };

  std::size_t i = 0, j = 0;
  bool fresh_pending = sender_fresh.id.is_valid();
  while (merged.size() < cache_size_) {
    // Head of the incoming stream: the fresh descriptor goes before any
    // received entry it doesn't strictly lose to.
    const CacheEntry* in = nullptr;
    bool in_is_fresh = false;
    if (fresh_pending &&
        (j >= received.size() || !fresher(received[j], sender_fresh))) {
      in = &sender_fresh;
      in_is_fresh = true;
    } else if (j < received.size()) {
      in = &received[j];
    }
    if (i < current && (in == nullptr || fresher(slot[i], *in))) {
      keep(slot[i++]);
    } else if (in != nullptr) {
      keep(*in);
      if (in_is_fresh) {
        fresh_pending = false;
      } else {
        ++j;
      }
    } else {
      break;  // both streams exhausted
    }
  }
  std::copy(merged.begin(), merged.end(), slot);
  sizes_[node] = static_cast<std::uint32_t>(merged.size());
}

void NewscastNetwork::grow_one(NodeId id) {
  GOSSIP_REQUIRE(id.value() == sizes_.size(),
                 "newscast nodes must be added in id order");
  pool_.resize(pool_.size() + cache_size_);
  sizes_.push_back(0);
}

void NewscastNetwork::bootstrap_random(std::uint32_t n, std::uint64_t now,
                                       Rng& rng) {
  GOSSIP_REQUIRE(n >= 2, "newscast bootstrap needs at least two nodes");
  pool_.assign(static_cast<std::size_t>(n) * cache_size_, CacheEntry{});
  sizes_.assign(n, 0);
  // Both mark arrays restart with the epoch: a re-bootstrapped network
  // must not dedup against stamps of its previous life.
  buffers_.mark.assign(n, 0);
  buffers_.mark2.assign(n, 0);
  buffers_.epoch = 0;
  const std::size_t fill = std::min<std::size_t>(cache_size_, n - 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint64_t raw : rng.sample_distinct(n - 1, fill)) {
      const auto v = static_cast<std::uint32_t>(raw >= u ? raw + 1 : raw);
      merge_into(buffers_, u, {}, CacheEntry{NodeId(v), now},
                 NodeId::invalid());
    }
  }
}

void NewscastNetwork::add_node(NodeId id, NodeId contact,
                               std::uint64_t now) {
  GOSSIP_REQUIRE(contact.is_valid() && contact.value() < sizes_.size(),
                 "join contact out of range");
  grow_one(id);
  // The contact's view must be snapshotted before merging: the merge
  // writes into the (possibly reallocated) pool the span points into.
  buffers_.scratch.assign(view(contact).begin(), view(contact).end());
  merge_into(buffers_, id.value(), buffers_.scratch, CacheEntry{contact, now},
             id, /*received_sorted=*/true);
  // The contact learns about the newcomer in return (it served the join).
  merge_into(buffers_, contact.value(), {}, CacheEntry{id, now},
             NodeId::invalid());
}

void NewscastNetwork::add_node_with_view(NodeId id,
                                         std::span<const CacheEntry> view) {
  // Copy first: growing the pool may reallocate under a span that points
  // into it (callers legitimately pass another node's view).
  buffers_.scratch.assign(view.begin(), view.end());
  grow_one(id);
  merge_into(buffers_, id.value(), buffers_.scratch,
             CacheEntry{NodeId::invalid(), 0}, id);
}

void NewscastNetwork::reserve_joins(std::size_t extra) {
  pool_.reserve(pool_.size() + extra * cache_size_);
  sizes_.reserve(sizes_.size() + extra);
  buffers_.mark.reserve(buffers_.mark.size() + extra);
}

void NewscastNetwork::exchange(NodeId a, NodeId b, std::uint64_t now) {
  exchange(buffers_, a, b, now);
}

void NewscastNetwork::exchange(MergeBuffers& buffers, NodeId a, NodeId b,
                               std::uint64_t now) {
  GOSSIP_REQUIRE(a != b, "newscast exchange with self");
  GOSSIP_REQUIRE(a.is_valid() && a.value() < sizes_.size() &&
                     b.is_valid() && b.value() < sizes_.size(),
                 "exchange() id out of range");
  // Fused dual merge: both directions of the push–pull consume the same
  // two sorted slots, so one 4-stream walk (slot a, slot b, the two
  // fresh self-descriptors) feeds both output stagings — half the stream
  // comparisons of two independent merges, and no snapshot copy, because
  // neither slot is written until the walk is done. Candidate order and
  // keep rules reproduce merge_into for each direction exactly (each
  // output self-skips its own node's descriptors; on equal (timestamp,
  // id) keys the entries are identical by value, so either copy serves
  // both outputs) — pinned by the goldens in tests/determinism_test.cpp.
  const CacheEntry* const slot_a =
      pool_.data() + static_cast<std::size_t>(a.value()) * cache_size_;
  const CacheEntry* const slot_b =
      pool_.data() + static_cast<std::size_t>(b.value()) * cache_size_;
  const std::uint32_t len_a = sizes_[a.value()];
  const std::uint32_t len_b = sizes_[b.value()];

  const std::uint32_t epoch = begin_merge(buffers);
  const auto mark_limit = static_cast<std::uint32_t>(sizes_.size());
  buffers.mark[a.value()] = epoch;   // a never retains its own descriptor
  buffers.mark2[b.value()] = epoch;  // nor b its own

  auto& out_a = buffers.merged;
  auto& out_b = buffers.merged2;
  out_a.clear();
  out_b.clear();
  const auto keep = [&](std::vector<CacheEntry>& out,
                        std::vector<std::uint32_t>& mark, NodeId self,
                        const CacheEntry& e) {
    if (out.size() >= cache_size_) return;
    if (e.id.value() >= mark_limit) {
      // Ids the network never registered (hand-built test views).
      if (e.id == self) return;
      for (const CacheEntry& k : out) {
        if (k.id == e.id) return;
      }
      out.push_back(e);
      return;
    }
    auto& m = mark[e.id.value()];
    if (m == epoch) return;  // an earlier (fresher) copy won
    m = epoch;
    out.push_back(e);
  };

  const CacheEntry fresh_a{a, now};
  const CacheEntry fresh_b{b, now};
  bool pending_a = true;  // fresh descriptors not yet emitted
  bool pending_b = true;
  std::uint32_t i = 0;  // slot_a cursor
  std::uint32_t j = 0;  // slot_b cursor
  while (out_a.size() < cache_size_ || out_b.size() < cache_size_) {
    // Globally freshest candidate; consideration order resolves ties the
    // way the pairwise merges did (fresh descriptors before any slot
    // entry they don't strictly lose to).
    const CacheEntry* next = nullptr;
    int source = -1;  // 0: fresh_a, 1: fresh_b, 2: slot_b, 3: slot_a
    if (pending_a) {
      next = &fresh_a;
      source = 0;
    }
    if (pending_b && (next == nullptr || fresher(fresh_b, *next))) {
      next = &fresh_b;
      source = 1;
    }
    if (j < len_b && (next == nullptr || fresher(slot_b[j], *next))) {
      next = &slot_b[j];
      source = 2;
    }
    if (i < len_a && (next == nullptr || fresher(slot_a[i], *next))) {
      next = &slot_a[i];
      source = 3;
    }
    if (next == nullptr) break;  // all four streams exhausted
    keep(out_a, buffers.mark, a, *next);
    keep(out_b, buffers.mark2, b, *next);
    switch (source) {
      case 0: pending_a = false; break;
      case 1: pending_b = false; break;
      case 2: ++j; break;
      default: ++i; break;
    }
  }
  std::copy(out_a.begin(), out_a.end(),
            pool_.data() + static_cast<std::size_t>(a.value()) * cache_size_);
  std::copy(out_b.begin(), out_b.end(),
            pool_.data() + static_cast<std::size_t>(b.value()) * cache_size_);
  sizes_[a.value()] = static_cast<std::uint32_t>(out_a.size());
  sizes_[b.value()] = static_cast<std::uint32_t>(out_b.size());
}

void NewscastNetwork::exchange_partial(MergeBuffers& buffers, NodeId a,
                                       NodeId b, std::uint64_t now,
                                       bool a_sends_cache,
                                       bool b_sends_cache) {
  GOSSIP_REQUIRE(a != b, "newscast exchange with self");
  GOSSIP_REQUIRE(a.is_valid() && a.value() < sizes_.size() &&
                     b.is_valid() && b.value() < sizes_.size(),
                 "exchange() id out of range");
  // Two pairwise merges over *pre-exchange* snapshots (the fused dual
  // merge doesn't apply: the directions are asymmetric). Both outgoing
  // views are snapshotted before either merge lands so neither side sees
  // the other's post-merge cache.
  auto& snap_a = buffers.scratch;
  auto& snap_b = buffers.scratch2;
  if (a_sends_cache) snap_a.assign(view(a).begin(), view(a).end());
  if (b_sends_cache) snap_b.assign(view(b).begin(), view(b).end());
  merge_into(buffers, b.value(),
             a_sends_cache ? std::span<const CacheEntry>(snap_a)
                           : std::span<const CacheEntry>{},
             CacheEntry{a, now}, b, /*received_sorted=*/true);
  merge_into(buffers, a.value(),
             b_sends_cache ? std::span<const CacheEntry>(snap_b)
                           : std::span<const CacheEntry>{},
             CacheEntry{b, now}, a, /*received_sorted=*/true);
}

void NewscastNetwork::run_cycle(const overlay::Population& population,
                                std::uint64_t now, Rng& rng,
                                const std::vector<char>* polluter) {
  const auto& live = population.live();
  order_.assign(live.begin(), live.end());
  rng.shuffle(order_);
  const std::uint32_t total = population.total();

  // The pool at N=10⁴⁺ no longer fits any cache level, so each exchange
  // stalls on two random ~c·8B slots. The loop therefore runs one
  // exchange *behind* the sampling: slot prefetches issue as soon as a
  // pair is known and resolve while the previous pair's merges compute.
  // Merge order — and thus every golden value — is unchanged: the only
  // reordering is sampling initiator i before applying exchange i-1,
  // which is observationally identical unless exchange i-1 touches
  // initiator i's own cache; that rare overlap flushes eagerly below.
  NodeId pending_a = NodeId::invalid();
  NodeId pending_b = NodeId::invalid();
  const auto flush_pending = [&] {
    if (pending_a.is_valid()) {
      const bool pollute_a =
          polluter != nullptr && (*polluter)[pending_a.value()] != 0;
      const bool pollute_b =
          polluter != nullptr && (*polluter)[pending_b.value()] != 0;
      if (pollute_a || pollute_b) {
        exchange_partial(buffers_, pending_a, pending_b, now, !pollute_a,
                         !pollute_b);
      } else {
        exchange(buffers_, pending_a, pending_b, now);
      }
      pending_a = NodeId::invalid();
    }
  };

  for (NodeId initiator : order_) {
    // A node killed earlier in this same cycle no longer initiates.
    if (!population.alive_unchecked(initiator)) continue;
    if (initiator == pending_a || initiator == pending_b) {
      flush_pending();  // its view must reflect the pending merge
    }
    const NodeId peer = sample_view(initiator, rng);
    if (!peer.is_valid()) continue;
    if (peer.value() >= total || !population.alive_unchecked(peer)) {
      continue;  // timeout: crashed peer never answers (§4.2)
    }
    prefetch_slots(initiator, peer);
    flush_pending();
    pending_a = initiator;
    pending_b = peer;
  }
  flush_pending();
}

bool NewscastNetwork::live_view_connected(
    const overlay::Population& population) const {
  const auto& live = population.live();
  if (live.size() <= 1) return true;
  // BFS over live nodes following cache links in both directions.
  std::vector<std::vector<NodeId>> adj(population.total());
  for (NodeId u : live) {
    for (const CacheEntry& e : view(u)) {
      if (e.id.value() < population.total() && population.alive(e.id)) {
        adj[u.value()].push_back(e.id);
        adj[e.id.value()].push_back(u);
      }
    }
  }
  std::vector<char> seen(population.total(), 0);
  std::deque<NodeId> frontier{live.front()};
  seen[live.front().value()] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adj[u.value()]) {
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        ++reached;
        frontier.push_back(v);
      }
    }
  }
  return reached == live.size();
}

}  // namespace gossip::membership
