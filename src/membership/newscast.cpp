#include "membership/newscast.hpp"

#include <algorithm>
#include <deque>

#include "common/require.hpp"

namespace gossip::membership {

NewscastNetwork::NewscastNetwork(std::size_t cache_size)
    : cache_size_(cache_size) {
  GOSSIP_REQUIRE(cache_size >= 1, "newscast needs cache size >= 1");
}

void NewscastNetwork::bootstrap_random(std::uint32_t n, std::uint64_t now,
                                       Rng& rng) {
  GOSSIP_REQUIRE(n >= 2, "newscast bootstrap needs at least two nodes");
  caches_.clear();
  caches_.reserve(n);
  const std::size_t fill = std::min<std::size_t>(cache_size_, n - 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    NewscastCache cache(cache_size_);
    for (std::uint64_t raw : rng.sample_distinct(n - 1, fill)) {
      const auto v = static_cast<std::uint32_t>(raw >= u ? raw + 1 : raw);
      cache.insert(CacheEntry{NodeId(v), now});
    }
    caches_.push_back(std::move(cache));
  }
}

void NewscastNetwork::add_node(NodeId id, NodeId contact,
                               std::uint64_t now) {
  GOSSIP_REQUIRE(id.value() == caches_.size(),
                 "newscast nodes must be added in id order");
  GOSSIP_REQUIRE(contact.is_valid() && contact.value() < caches_.size(),
                 "join contact out of range");
  NewscastCache cache(cache_size_);
  const auto& view = caches_[contact.value()].entries();
  cache.merge(view, CacheEntry{contact, now}, id);
  caches_.push_back(std::move(cache));
  // The contact learns about the newcomer in return (it served the join).
  caches_[contact.value()].insert(CacheEntry{id, now});
}

void NewscastNetwork::add_node_with_view(NodeId id,
                                         std::span<const CacheEntry> view) {
  GOSSIP_REQUIRE(id.value() == caches_.size(),
                 "newscast nodes must be added in id order");
  NewscastCache cache(cache_size_);
  cache.merge(view, CacheEntry{NodeId::invalid(), 0}, id);
  caches_.push_back(std::move(cache));
}

const NewscastCache& NewscastNetwork::cache(NodeId id) const {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < caches_.size(),
                 "cache() id out of range");
  return caches_[id.value()];
}

NewscastCache& NewscastNetwork::cache(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < caches_.size(),
                 "cache() id out of range");
  return caches_[id.value()];
}

void NewscastNetwork::exchange(NodeId a, NodeId b, std::uint64_t now) {
  GOSSIP_REQUIRE(a != b, "newscast exchange with self");
  NewscastCache& ca = cache(a);
  NewscastCache& cb = cache(b);
  // Snapshot a's outgoing view before it merges b's; the member scratch
  // buffer keeps this hot path allocation-free after warm-up.
  scratch_.assign(ca.entries().begin(), ca.entries().end());
  ca.merge(cb.entries(), CacheEntry{b, now}, a);
  cb.merge(scratch_, CacheEntry{a, now}, b);
}

void NewscastNetwork::run_cycle(const overlay::Population& population,
                                std::uint64_t now, Rng& rng) {
  std::vector<NodeId> order = population.live();
  rng.shuffle(order);
  for (NodeId initiator : order) {
    // A node killed earlier in this same cycle no longer initiates.
    if (!population.alive(initiator)) continue;
    const NodeId peer = cache(initiator).sample(rng);
    if (!peer.is_valid()) continue;
    if (peer.value() >= population.total() || !population.alive(peer)) {
      continue;  // timeout: crashed peer never answers (§4.2)
    }
    exchange(initiator, peer, now);
  }
}

bool NewscastNetwork::live_view_connected(
    const overlay::Population& population) const {
  const auto& live = population.live();
  if (live.size() <= 1) return true;
  // BFS over live nodes following cache links in both directions.
  std::vector<std::vector<NodeId>> adj(population.total());
  for (NodeId u : live) {
    for (const CacheEntry& e : cache(u).entries()) {
      if (e.id.value() < population.total() && population.alive(e.id)) {
        adj[u.value()].push_back(e.id);
        adj[e.id.value()].push_back(u);
      }
    }
  }
  std::vector<char> seen(population.total(), 0);
  std::deque<NodeId> frontier{live.front()};
  seen[live.front().value()] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adj[u.value()]) {
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        ++reached;
        frontier.push_back(v);
      }
    }
  }
  return reached == live.size();
}

}  // namespace gossip::membership
