// Whole-network NEWSCAST state for the cycle-driven simulator: one cache
// per node, push–pull cache exchanges, bootstrap and join handling. The
// event-driven engine (src/proto) reuses NewscastCache directly and runs
// the exchange over the simulated transport instead.
//
// Storage is a single contiguous fixed-stride entry pool (SoA-style
// flattening of the former vector<NewscastCache>): node u's view lives in
// pool_[u*c .. u*c + size_[u]), sorted freshest-first. One simulated
// network at N=100k used to be 100k separately allocated entry vectors;
// now it is one allocation, which kills the per-cache malloc traffic and
// makes the cycle walk cache-friendly. Merge semantics are identical to
// NewscastCache::merge (golden-tested in tests/determinism_test.cpp).
//
// All merge scratch state lives in an explicit MergeBuffers value, so
// several threads can exchange caches of *disjoint* node pairs
// concurrently, each with its own buffers (the intra-rep engine's
// domain-decomposed cycles). The single-threaded entry points use the
// network's own default buffers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "membership/newscast_cache.hpp"
#include "overlay/peer_sampler.hpp"
#include "overlay/population.hpp"

namespace gossip::membership {

/// Per-node NEWSCAST caches for an entire simulated network.
class NewscastNetwork {
public:
  /// Scratch state of the merge hot path. One instance per thread when
  /// exchanges run concurrently on disjoint pairs; reused across merges
  /// so the path stays allocation-free. The *2 members belong to the
  /// second output of the fused dual-merge exchange.
  struct MergeBuffers {
    std::vector<CacheEntry> scratch;    // join-path snapshot buffer
    std::vector<CacheEntry> scratch2;   // exchange_partial second snapshot
    std::vector<CacheEntry> incoming;   // merge unsorted-input copy
    std::vector<CacheEntry> merged;     // merge output staging
    std::vector<CacheEntry> merged2;    // exchange() second output staging
    std::vector<std::uint32_t> mark;    // id -> epoch of last merge keep
    std::vector<std::uint32_t> mark2;   // same, second output
    std::uint32_t epoch = 0;            // dedup stamp
  };

  /// Read-only handle to one node's slice of the entry pool. Cheap to
  /// copy; invalidated by add_node (pool growth).
  class ConstCacheView {
  public:
    [[nodiscard]] std::size_t size() const { return entries().size(); }
    [[nodiscard]] bool empty() const { return entries().empty(); }
    [[nodiscard]] std::span<const CacheEntry> entries() const {
      return net_->view(NodeId(node_));
    }
    [[nodiscard]] bool contains(NodeId id) const;

    /// Uniform random cache entry — GETNEIGHBOR() over the dynamic view.
    /// Invalid when the cache is empty.
    [[nodiscard]] NodeId sample(Rng& rng) const;

  protected:
    friend class NewscastNetwork;
    ConstCacheView(const NewscastNetwork* net, std::uint32_t node)
        : net_(net), node_(node) {}
    const NewscastNetwork* net_;
    std::uint32_t node_;
  };

  /// Mutable handle: additionally supports descriptor insertion.
  class CacheView : public ConstCacheView {
  public:
    /// Inserts one descriptor, keeping the freshest copy of duplicate ids
    /// and truncating to capacity (same rule as NewscastCache::insert).
    void insert(CacheEntry entry);

  private:
    friend class NewscastNetwork;
    CacheView(NewscastNetwork* net, std::uint32_t node)
        : ConstCacheView(net, node), mutable_net_(net) {}
    NewscastNetwork* mutable_net_;
  };

  /// `cache_size` is the paper's c parameter (30 in all §7 experiments).
  explicit NewscastNetwork(std::size_t cache_size);

  [[nodiscard]] std::size_t cache_size() const { return cache_size_; }

  /// Number of registered nodes (the pool holds size() * cache_size()
  /// entry slots).
  [[nodiscard]] std::size_t size() const { return sizes_.size(); }

  /// Registers node ids [0, n) and fills each cache with `cache_size`
  /// random other nodes at timestamp `now` — the out-of-band bootstrap
  /// of §4.2.
  void bootstrap_random(std::uint32_t n, std::uint64_t now, Rng& rng);

  /// Adds one node. Its initial view is a copy of the `contact`'s cache
  /// plus a fresh descriptor of the contact (the §4.2 join rule).
  void add_node(NodeId id, NodeId contact, std::uint64_t now);

  /// Adds one node with an explicit bootstrap view (tests, event engine).
  void add_node_with_view(NodeId id, std::span<const CacheEntry> view);

  /// Reserves pool capacity for `extra` future joins (churn plans know
  /// their join volume up front; this keeps the growth path
  /// reallocation-free).
  void reserve_joins(std::size_t extra);

  [[nodiscard]] ConstCacheView cache(NodeId id) const;
  [[nodiscard]] CacheView cache(NodeId id);

  /// Node `id`'s entries, freshest first.
  [[nodiscard]] std::span<const CacheEntry> view(NodeId id) const;

  /// Raw-pool fast path of ConstCacheView::sample: one bounds-check-free
  /// uniform draw from node `from`'s view, consuming exactly the same rng
  /// stream. This is GETNEIGHBOR() as the aggregation loop calls it —
  /// inline so the RNG and the table lookup fuse into the caller.
  /// Thread-safe for concurrent callers as long as nobody mutates the
  /// pool (the engines' propose phases are read-only).
  [[nodiscard]] NodeId sample_view(NodeId from, Rng& rng) const {
    const std::size_t u = from.value();
    const std::uint32_t n = sizes_[u];
    if (n == 0) return NodeId::invalid();
    return pool_[u * cache_size_ + rng.below(n)].id;
  }

  /// Prefetch hint for both nodes' pool slots: the N≥10⁴ pool fits no
  /// cache level, so the cycle drivers run one exchange *behind* the
  /// pair sampling and issue these while the previous pair's merges
  /// compute. Pure latency hint — no semantic effect.
  void prefetch_slots(NodeId a, NodeId b) const {
    prefetch_slot(a);
    prefetch_slot(b);
  }

  /// One symmetric push–pull cache exchange between a and b at logical
  /// time `now`: both merge the other's cache plus the other's fresh
  /// self-descriptor. Uses the network's default buffers.
  void exchange(NodeId a, NodeId b, std::uint64_t now);

  /// Same exchange with caller-owned buffers: safe to call concurrently
  /// from several threads as long as every concurrent call touches a
  /// *disjoint* {a, b} pair and uses its own MergeBuffers.
  void exchange(MergeBuffers& buffers, NodeId a, NodeId b,
                std::uint64_t now);

  /// Degraded exchange for the cache_pollute adversary: each side sends
  /// its fresh self-descriptor, but only sends its *cache* when its
  /// `*_sends_cache` flag is set. A polluting side (flag false) thus
  /// advertises nothing but itself — the sybil flood — while still
  /// receiving the honest side's full view. With both flags true the
  /// result matches exchange() (two pairwise merges of the pre-exchange
  /// views). Same concurrency contract as exchange().
  void exchange_partial(MergeBuffers& buffers, NodeId a, NodeId b,
                        std::uint64_t now, bool a_sends_cache,
                        bool b_sends_cache);

  /// One NEWSCAST cycle: every live node (random permutation) picks a
  /// uniform peer from its cache and, if that peer is alive, exchanges
  /// caches. Dead peers cost the initiator its exchange — the §4.2
  /// timeout — and age out of caches naturally. When `polluter` is
  /// non-null, node u with (*polluter)[u] != 0 runs the cache_pollute
  /// degraded exchange instead of a full one.
  void run_cycle(const overlay::Population& population, std::uint64_t now,
                 Rng& rng, const std::vector<char>* polluter = nullptr);

  /// True if the union of live nodes' cache links forms a weakly
  /// connected graph over the live population (overlay health check).
  [[nodiscard]] bool live_view_connected(
      const overlay::Population& population) const;

private:
  void prefetch_slot(NodeId id) const {
    const auto* base = reinterpret_cast<const char*>(
        pool_.data() + static_cast<std::size_t>(id.value()) * cache_size_);
    const std::size_t bytes = cache_size_ * sizeof(CacheEntry);
    for (std::size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(base + off, /*rw=*/1, /*locality=*/1);
    }
  }

  /// Lazily sizes both mark arrays to the registered id space and
  /// advances the dedup epoch (clearing every mark on wrap). Returns the
  /// epoch to stamp with.
  std::uint32_t begin_merge(MergeBuffers& buffers) const;

  /// The NEWSCAST merge into node's pool slot: from the union of the
  /// current slot, `received`, and the sender's fresh descriptor, keep
  /// the `cache_size_` freshest distinct entries, never retaining `self`.
  /// Identical semantics to NewscastCache::merge. `received_sorted`
  /// promises the span is already freshest-first (true for every slot
  /// view and slot snapshot), skipping the O(c) is_sorted probe on the
  /// hot path.
  void merge_into(MergeBuffers& buffers, std::uint32_t node,
                  std::span<const CacheEntry> received,
                  CacheEntry sender_fresh, NodeId self,
                  bool received_sorted = false);

  /// Appends an empty slot for `id` (must be the next dense id).
  void grow_one(NodeId id);

  std::size_t cache_size_;               // stride of the pool
  std::vector<CacheEntry> pool_;         // size() * cache_size_ slots
  std::vector<std::uint32_t> sizes_;     // live entries per slot
  MergeBuffers buffers_;                 // single-threaded default scratch
  std::vector<NodeId> order_;            // run_cycle() permutation buffer
};

/// Sampler over the dynamic NEWSCAST view: aggregation's GETNEIGHBOR()
/// when running on top of this membership layer. Concrete like the
/// overlay samplers, so the per-cycle variant dispatch inlines it.
class NewscastPeerSampler final {
public:
  /// The network must outlive the sampler.
  explicit NewscastPeerSampler(const NewscastNetwork& network)
      : network_(&network) {}

  NodeId sample(NodeId from, Rng& rng) {
    return network_->sample_view(from, rng);
  }

private:
  const NewscastNetwork* network_;
};

}  // namespace gossip::membership
