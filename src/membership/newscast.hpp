// Whole-network NEWSCAST state for the cycle-driven simulator: one cache
// per node, push–pull cache exchanges, bootstrap and join handling. The
// event-driven engine (src/proto) reuses NewscastCache directly and runs
// the exchange over the simulated transport instead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "membership/newscast_cache.hpp"
#include "overlay/peer_sampler.hpp"
#include "overlay/population.hpp"

namespace gossip::membership {

/// Per-node NEWSCAST caches for an entire simulated network.
class NewscastNetwork {
public:
  /// `cache_size` is the paper's c parameter (30 in all §7 experiments).
  explicit NewscastNetwork(std::size_t cache_size);

  [[nodiscard]] std::size_t cache_size() const { return cache_size_; }

  /// Registers node ids [0, n) and fills each cache with `cache_size`
  /// random other nodes at timestamp `now` — the out-of-band bootstrap
  /// of §4.2.
  void bootstrap_random(std::uint32_t n, std::uint64_t now, Rng& rng);

  /// Adds one node. Its initial view is a copy of the `contact`'s cache
  /// plus a fresh descriptor of the contact (the §4.2 join rule).
  void add_node(NodeId id, NodeId contact, std::uint64_t now);

  /// Adds one node with an explicit bootstrap view (tests, event engine).
  void add_node_with_view(NodeId id, std::span<const CacheEntry> view);

  [[nodiscard]] const NewscastCache& cache(NodeId id) const;
  [[nodiscard]] NewscastCache& cache(NodeId id);

  /// One symmetric push–pull cache exchange between a and b at logical
  /// time `now`: both merge the other's cache plus the other's fresh
  /// self-descriptor.
  void exchange(NodeId a, NodeId b, std::uint64_t now);

  /// One NEWSCAST cycle: every live node (random permutation) picks a
  /// uniform peer from its cache and, if that peer is alive, exchanges
  /// caches. Dead peers cost the initiator its exchange — the §4.2
  /// timeout — and age out of caches naturally.
  void run_cycle(const overlay::Population& population, std::uint64_t now,
                 Rng& rng);

  /// True if the union of live nodes' cache links forms a weakly
  /// connected graph over the live population (overlay health check).
  [[nodiscard]] bool live_view_connected(
      const overlay::Population& population) const;

private:
  std::size_t cache_size_;
  std::vector<NewscastCache> caches_;
  std::vector<CacheEntry> scratch_;  // exchange() snapshot buffer
};

/// PeerSampler over the dynamic NEWSCAST view: aggregation's
/// GETNEIGHBOR() when running on top of this membership layer.
class NewscastPeerSampler final : public overlay::PeerSampler {
public:
  /// The network must outlive the sampler.
  explicit NewscastPeerSampler(NewscastNetwork& network)
      : network_(&network) {}

  NodeId sample(NodeId from, Rng& rng) override {
    return network_->cache(from).sample(rng);
  }

private:
  NewscastNetwork* network_;
};

}  // namespace gossip::membership
