// Robustness through concurrency (paper §7.3): run t concurrent
// aggregation instances and report the trimmed mean — order the t
// estimates, drop the ⌊t/3⌋ lowest and highest, average the rest. An
// "unlucky" instance (its mass was lost to a crash or an asymmetric
// message loss) lands in the discarded tails instead of the report.
#pragma once

#include <span>

#include "stats/summary.hpp"

namespace gossip::core {

/// The paper's combiner. `instance_estimates` are the t per-instance
/// outputs available at one node at the end of an epoch.
inline double robust_combine(std::span<const double> instance_estimates) {
  return stats::trimmed_mean_third(instance_estimates);
}

}  // namespace gossip::core
