// The COUNT protocol state (paper §5): network size from averaging.
//
// With a peak initial distribution (the leader holds 1, everyone else 0)
// the global average is exactly 1/N, so N is recovered from any converged
// estimate. To survive leader crashes, multiple leaders run concurrent
// instances: each node holds a map `leader id -> estimate` merged with the
// paper's rule
//
//   key in one map only  -> both sides get e/2
//   key in both          -> both sides get (e_i + e_j)/2
//
// which is exactly an elementwise average when an absent key is read as 0.
// CountMap is the faithful sparse form used by the deployable protocol;
// the dense `std::vector<double>` fast path used by the 10^5-node sweeps
// relies on that equivalence (tested in core_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"

namespace gossip::core {

/// Sparse multi-leader COUNT state: a small flat map sorted by leader id.
class CountMap {
public:
  struct Entry {
    NodeId leader;
    double estimate;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Non-leader initial state: the empty map.
  CountMap() = default;

  /// Leader initial state: {(self, 1)}.
  static CountMap leader(NodeId self);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::span<const Entry> entries() const { return entries_; }

  /// Estimate for a leader; 0 when the key is absent (the implicit zero
  /// the merge rule encodes).
  [[nodiscard]] double estimate_for(NodeId leader) const;

  [[nodiscard]] bool contains(NodeId leader) const;

  /// The paper's merge; the returned map is installed at *both* peers.
  static CountMap merge(const CountMap& a, const CountMap& b);

  /// Network size implied by this node's estimate for `leader`:
  /// N̂ = 1/e. Requires a positive estimate.
  [[nodiscard]] double size_estimate(NodeId leader) const;

  /// Size estimates of all instances this node knows about (one per
  /// leader, ordered by leader id). Entries with non-positive estimates
  /// are skipped — that instance has not reached this node yet.
  [[nodiscard]] std::vector<double> all_size_estimates() const;

private:
  // Sorted by leader id; estimates strictly positive (zero entries are
  // represented by absence).
  std::vector<Entry> entries_;
};

/// Converts a converged AVERAGE estimate of a peak distribution into a
/// network-size estimate (N̂ = peak/average; peak defaults to 1).
double size_from_average(double average, double peak = 1.0);

/// §5 leader election: at each epoch start a node leads a fresh COUNT
/// instance with probability P_lead = C/N̂, where C is the desired number
/// of concurrent instances and N̂ the previous epoch's size estimate.
class LeaderElection {
public:
  LeaderElection(double desired_instances, double initial_size_estimate);

  /// Records the size estimate produced by the finished epoch.
  void update_size_estimate(double n_hat);

  [[nodiscard]] double lead_probability() const;

  /// Draws this node's decision for the next epoch.
  bool should_lead(Rng& rng) const;

private:
  double desired_instances_;
  double size_estimate_;
};

}  // namespace gossip::core
