// Automatic restarting and epoch synchronization (paper §4.1, §4.3).
//
// The protocol runs in epochs of γ cycles. At the end of an epoch every
// node reports its estimate as the aggregation output and re-initializes
// from its current local value. Messages carry the sender's epoch id;
// a node that sees a higher epoch abandons its own and jumps — this is
// the epidemic synchronization that keeps slow nodes from dragging an
// epoch on forever. Messages from older epochs are refused.
#pragma once

#include <cstdint>

#include "common/require.hpp"

namespace gossip::core {

/// Pure epoch bookkeeping, shared by the cycle driver, the event-driven
/// stack and the threaded runtime.
class EpochMachine {
public:
  /// `cycles_per_epoch` is the paper's γ (30 in all §7 experiments).
  explicit EpochMachine(std::uint32_t cycles_per_epoch)
      : cycles_per_epoch_(cycles_per_epoch) {
    GOSSIP_REQUIRE(cycles_per_epoch >= 1, "epochs need at least one cycle");
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint32_t cycle_in_epoch() const { return cycle_; }
  [[nodiscard]] std::uint32_t cycles_per_epoch() const {
    return cycles_per_epoch_;
  }

  /// How an incoming message tagged `remote_epoch` must be treated.
  enum class TagAction {
    kAccept,  ///< same epoch: perform the exchange
    kAdopt,   ///< newer epoch: re-initialize, jump, then exchange
    kStale,   ///< older epoch: refuse the exchange
  };

  [[nodiscard]] TagAction classify(std::uint64_t remote_epoch) const {
    if (remote_epoch == epoch_) return TagAction::kAccept;
    return remote_epoch > epoch_ ? TagAction::kAdopt : TagAction::kStale;
  }

  /// Jumps to a strictly newer epoch (§4.3). The caller must
  /// re-initialize its estimate from the current local value.
  void adopt(std::uint64_t remote_epoch) {
    GOSSIP_REQUIRE(remote_epoch > epoch_, "adopt() needs a newer epoch");
    epoch_ = remote_epoch;
    cycle_ = 0;
  }

  /// Advances one local cycle. Returns true when this completed the
  /// epoch; the machine has then already rolled into the next epoch
  /// (cycle position 0) and the caller reports + re-initializes.
  bool advance_cycle() {
    ++cycle_;
    if (cycle_ < cycles_per_epoch_) return false;
    // Wraparound guard: a 64-bit epoch counter only overflows after an
    // adopt() of a (forged or corrupted) tag near 2^64 — rolling over to
    // epoch 0 would make every honest message look stale forever, so
    // refuse loudly instead.
    GOSSIP_REQUIRE(epoch_ != ~std::uint64_t{0},
                   "epoch counter would wrap around");
    ++epoch_;
    cycle_ = 0;
    return true;
  }

private:
  std::uint32_t cycles_per_epoch_;
  std::uint64_t epoch_ = 0;
  std::uint32_t cycle_ = 0;
};

/// Join gating (§4.2): a node that joins while epoch e is running is told
/// the *next* epoch id and sits out until it starts — so every epoch
/// aggregates exactly the values present at its own start.
class JoinGate {
public:
  /// For founding members, active from the first epoch.
  JoinGate() = default;

  /// For a node that joined during `current_epoch`.
  static JoinGate joined_during(std::uint64_t current_epoch) {
    JoinGate g;
    g.active_from_ = current_epoch + 1;
    return g;
  }

  [[nodiscard]] bool participates_in(std::uint64_t epoch) const {
    return epoch >= active_from_;
  }

  [[nodiscard]] std::uint64_t active_from() const { return active_from_; }

private:
  std::uint64_t active_from_ = 0;
};

}  // namespace gossip::core
