#include "core/derived.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace gossip::core {

double sum_estimate(double average, double network_size) {
  GOSSIP_REQUIRE(network_size >= 0.0, "network size cannot be negative");
  return average * network_size;
}

double product_estimate(double geometric_mean, double network_size) {
  GOSSIP_REQUIRE(geometric_mean >= 0.0,
                 "geometric mean cannot be negative");
  GOSSIP_REQUIRE(network_size >= 0.0, "network size cannot be negative");
  if (geometric_mean == 0.0) return 0.0;
  return std::exp(network_size * std::log(geometric_mean));
}

double variance_estimate(double average_of_squares, double average) {
  return std::max(0.0, average_of_squares - average * average);
}

double stddev_estimate(double average_of_squares, double average) {
  return std::sqrt(variance_estimate(average_of_squares, average));
}

}  // namespace gossip::core
