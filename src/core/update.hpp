// The UPDATE functions of the generic anti-entropy scheme (paper fig. 1,
// §3, §5). Each is a tiny stateless policy: given the two exchanged
// estimates it returns the value *both* peers install. The choice of
// function decides the aggregate:
//
//   AverageUpdate        (a+b)/2    -> arithmetic mean (conserves the sum)
//   MinUpdate            min(a,b)   -> global minimum (epidemic broadcast)
//   MaxUpdate            max(a,b)   -> global maximum (epidemic broadcast)
//   GeometricMeanUpdate  sqrt(a*b)  -> geometric mean (conserves product)
//
// COUNT / SUM / PRODUCT / VARIANCE are built from these (src/core/count.hpp
// and src/core/derived.hpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>

#include "common/require.hpp"

namespace gossip::core {

/// An UPDATE policy: symmetric binary function on estimates.
template <typename F>
concept UpdateFunction = requires(double a, double b) {
  { F::apply(a, b) } -> std::same_as<double>;
};

struct AverageUpdate {
  static double apply(double a, double b) { return (a + b) / 2.0; }
};

struct MinUpdate {
  static double apply(double a, double b) { return std::min(a, b); }
};

struct MaxUpdate {
  static double apply(double a, double b) { return std::max(a, b); }
};

struct GeometricMeanUpdate {
  static double apply(double a, double b) {
    GOSSIP_REQUIRE(a >= 0.0 && b >= 0.0,
                   "geometric mean needs non-negative estimates");
    return std::sqrt(a * b);
  }
};

static_assert(UpdateFunction<AverageUpdate>);
static_assert(UpdateFunction<MinUpdate>);
static_assert(UpdateFunction<MaxUpdate>);
static_assert(UpdateFunction<GeometricMeanUpdate>);

/// Runtime-selectable update function, for engines configured by value
/// (the cycle driver, the event-driven node). The static policies above
/// remain for compile-time composition.
enum class UpdateKind { kAverage, kMin, kMax, kGeometric };

inline double apply_update(UpdateKind kind, double a, double b) {
  switch (kind) {
    case UpdateKind::kAverage: return AverageUpdate::apply(a, b);
    case UpdateKind::kMin: return MinUpdate::apply(a, b);
    case UpdateKind::kMax: return MaxUpdate::apply(a, b);
    case UpdateKind::kGeometric: return GeometricMeanUpdate::apply(a, b);
  }
  GOSSIP_REQUIRE(false, "unreachable update kind");
}

}  // namespace gossip::core
