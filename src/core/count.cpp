#include "core/count.hpp"

#include <algorithm>

namespace gossip::core {

CountMap CountMap::leader(NodeId self) {
  GOSSIP_REQUIRE(self.is_valid(), "leader needs a valid id");
  CountMap m;
  m.entries_.push_back(Entry{self, 1.0});
  return m;
}

double CountMap::estimate_for(NodeId leader) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), leader,
      [](const Entry& e, NodeId id) { return e.leader < id; });
  if (it == entries_.end() || it->leader != leader) return 0.0;
  return it->estimate;
}

bool CountMap::contains(NodeId leader) const {
  return estimate_for(leader) > 0.0;
}

CountMap CountMap::merge(const CountMap& a, const CountMap& b) {
  // Linear merge of two sorted entry lists; an id present on one side
  // only is averaged against the other side's implicit zero.
  CountMap out;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() || ib != b.entries_.end()) {
    if (ib == b.entries_.end() ||
        (ia != a.entries_.end() && ia->leader < ib->leader)) {
      out.entries_.push_back(Entry{ia->leader, ia->estimate / 2.0});
      ++ia;
    } else if (ia == a.entries_.end() || ib->leader < ia->leader) {
      out.entries_.push_back(Entry{ib->leader, ib->estimate / 2.0});
      ++ib;
    } else {
      out.entries_.push_back(
          Entry{ia->leader, (ia->estimate + ib->estimate) / 2.0});
      ++ia;
      ++ib;
    }
  }
  return out;
}

double CountMap::size_estimate(NodeId leader) const {
  const double e = estimate_for(leader);
  GOSSIP_REQUIRE(e > 0.0,
                 "size estimate needs a positive estimate for the leader");
  return 1.0 / e;
}

std::vector<double> CountMap::all_size_estimates() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.estimate > 0.0) out.push_back(1.0 / e.estimate);
  }
  return out;
}

double size_from_average(double average, double peak) {
  GOSSIP_REQUIRE(average > 0.0, "size needs a positive average estimate");
  GOSSIP_REQUIRE(peak > 0.0, "size needs a positive peak value");
  return peak / average;
}

LeaderElection::LeaderElection(double desired_instances,
                               double initial_size_estimate)
    : desired_instances_(desired_instances),
      size_estimate_(initial_size_estimate) {
  GOSSIP_REQUIRE(desired_instances > 0.0,
                 "need a positive desired instance count");
  GOSSIP_REQUIRE(initial_size_estimate >= 1.0,
                 "size estimate must be at least one node");
}

void LeaderElection::update_size_estimate(double n_hat) {
  GOSSIP_REQUIRE(n_hat >= 1.0, "size estimate must be at least one node");
  size_estimate_ = n_hat;
}

double LeaderElection::lead_probability() const {
  return std::min(1.0, desired_instances_ / size_estimate_);
}

bool LeaderElection::should_lead(Rng& rng) const {
  return rng.chance(lead_probability());
}

}  // namespace gossip::core
