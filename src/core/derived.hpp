// Aggregates derived from AVERAGE / GEOMETRIC-MEAN / COUNT (paper §5):
// SUM, PRODUCT, VARIANCE — each is a pure combination of converged
// estimates produced by concurrently running basic instances.
#pragma once

namespace gossip::core {

/// SUM = average × network size (two concurrent instances, §5).
double sum_estimate(double average, double network_size);

/// PRODUCT = geometric-mean ^ network size (§5). Computed in log space to
/// survive the astronomic magnitudes an N-th power produces.
double product_estimate(double geometric_mean, double network_size);

/// VARIANCE = avg(x²) − avg(x)² (§5), clamped at zero against rounding.
double variance_estimate(double average_of_squares, double average);

/// Standard deviation from the same two averages.
double stddev_estimate(double average_of_squares, double average);

}  // namespace gossip::core
