// Deterministic, splittable random number generation.
//
// Every randomized component of the library takes an explicit Rng&, so a
// whole experiment is reproducible from (seed, parameters). The generator
// is xoshiro256** seeded through splitmix64; helpers provide unbiased
// bounded integers (Lemire), doubles in [0,1), Bernoulli trials and
// shuffles without going through the (implementation-defined)
// <random> distributions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/require.hpp"

namespace gossip {

/// splitmix64 step; used to expand seeds and as a cheap mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9b1a6e3c5f0d2e47ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    GOSSIP_REQUIRE(bound > 0, "below() needs a positive bound");
    __extension__ using uint128 = unsigned __int128;
    std::uint64_t x = (*this)();
    uint128 m = static_cast<uint128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<uint128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    GOSSIP_REQUIRE(lo <= hi, "range() needs lo <= hi");
    const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(width));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }
  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// k distinct values from [0, n) in O(k) expected time (Floyd's method).
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::size_t k);

  /// Derives an independent child generator; used to give each repetition
  /// or node its own stream without correlations.
  Rng split() {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gossip
