#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace gossip::json {
namespace {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kInt: return "integer";
    case Kind::kDouble: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Kind got) {
  throw Error(std::string("expected ") + wanted + ", got " + kind_name(got));
}

}  // namespace

Value::Value(std::int64_t i) : kind_(Kind::kInt) {
  if (i < 0) {
    int_negative_ = true;
    int_ = static_cast<std::uint64_t>(-(i + 1)) + 1;
  } else {
    int_ = static_cast<std::uint64_t>(i);
  }
}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool", kind_);
  return bool_;
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::kInt) type_error("integer", kind_);
  if (int_negative_) throw Error("expected non-negative integer");
  return int_;
}

double Value::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) {
    const double mag = static_cast<double>(int_);
    return int_negative_ ? -mag : mag;
  }
  type_error("number", kind_);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error("string", kind_);
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(const std::string& key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) type_error("object", kind_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kInt:
      return int_ == other.int_ && int_negative_ == other.int_negative_;
    case Kind::kDouble:
      // Bit-compare through ==; NaN specs are rejected upstream.
      return double_ == other.double_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object_ == other.object_;
  }
  return false;
}

// ------------------------------------------------------------- dumping

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_double(std::string& out, double d) {
  if (!std::isfinite(d)) throw Error("cannot serialize non-finite number");
  char buf[40];
  // max_digits10 = 17: the decimal form re-parses to the identical bits.
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
  // Keep a syntactic marker that this was a double, so round-trips
  // preserve the int-vs-double distinction.
  if (std::strpbrk(buf, ".eE") == nullptr) out += ".0";
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: {
      if (int_negative_) out += '-';
      out += std::to_string(int_);
      break;
    }
    case Kind::kDouble: dump_double(out, double_); break;
    case Kind::kString: dump_string(out, string_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        dump_string(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------- parsing

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error(message + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      if (peek() != '"') fail("expected string object key");
      std::string key = parse_string();
      // Last-wins parsers and first-wins lookups disagree on duplicate
      // keys; a spec must not be able to look different in jq than it
      // runs, so duplicates are an error.
      for (const auto& entry : obj) {
        if (entry.first == key) fail("duplicate object key '" + key + "'");
      }
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Specs are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const std::uint64_t mag =
          std::strtoull(token.c_str() + (negative ? 1 : 0), &end, 10);
      if (*end != '\0' || errno == ERANGE) {
        pos_ = start;
        fail("invalid number '" + token + "'");
      }
      if (negative && mag > 0) {
        if (mag > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
          pos_ = start;
          fail("negative integer out of range");
        }
        return Value(-static_cast<std::int64_t>(mag));
      }
      return Value(mag);
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(d)) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return Value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace gossip::json
