// Environment-variable configuration knobs.
//
// The benchmark harness scales the paper's experiments down by default so a
// full `for b in build/bench/*` sweep finishes in minutes; these helpers
// read the GOSSIP_* overrides that restore paper scale.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace gossip {

/// A GOSSIP_* knob holds a value the harness cannot honor. The message is
/// one line, names the variable, and quotes the offending value —
/// callers print it verbatim and exit.
class EnvError : public std::runtime_error {
public:
  explicit EnvError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Raw environment lookup; empty optional when unset.
std::optional<std::string> env_string(const std::string& name);

/// Integer environment variable, or `fallback` when unset/unparsable.
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/// Floating-point environment variable, or `fallback` when unset/unparsable.
double env_double(const std::string& name, double fallback);

/// Boolean knob: unset/"0"/"false"/"off" => false, anything else => true.
bool env_flag(const std::string& name);

// ---- strict knob parsing (the spec-resolution layer) -------------------
//
// The engine facade resolves GOSSIP_THREADS / GOSSIP_SHARDS / GOSSIP_FULL
// through these: a malformed or zero value must stop the run with a clear
// one-line EnvError instead of silently falling back — a typo'd
// GOSSIP_THREADS=1O would otherwise quietly serialize a 64-core sweep.

/// Positive integer knob: unset => `fallback`; anything that is not a
/// plain positive decimal integer (including 0, "", trailing garbage,
/// negatives) => EnvError.
std::uint64_t env_u64_positive(const std::string& name,
                               std::uint64_t fallback);

/// Strict integer knob that allows zero (seeds): unset => `fallback`;
/// malformed => EnvError.
std::uint64_t env_u64_checked(const std::string& name,
                              std::uint64_t fallback);

/// Strict boolean knob: unset => false; 1/true/on/yes => true;
/// 0/false/off/no => false (case-insensitive); anything else => EnvError.
bool env_flag_strict(const std::string& name);

}  // namespace gossip
