// Environment-variable configuration knobs.
//
// The benchmark harness scales the paper's experiments down by default so a
// full `for b in build/bench/*` sweep finishes in minutes; these helpers
// read the GOSSIP_* overrides that restore paper scale.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gossip {

/// Raw environment lookup; empty optional when unset.
std::optional<std::string> env_string(const std::string& name);

/// Integer environment variable, or `fallback` when unset/unparsable.
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/// Floating-point environment variable, or `fallback` when unset/unparsable.
double env_double(const std::string& name, double fallback);

/// Boolean knob: unset/"0"/"false"/"off" => false, anything else => true.
bool env_flag(const std::string& name);

}  // namespace gossip
