// Always-on precondition / invariant checks.
//
// The library is used both as a simulator (where a violated invariant means
// a meaningless experiment, so we want to fail loudly even in release
// builds) and as a protocol implementation. GOSSIP_REQUIRE is therefore
// active in all build types; it is reserved for cheap checks on public
// entry points and protocol invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gossip {

/// Thrown when a GOSSIP_REQUIRE precondition fails.
class require_error : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void require_fail(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw require_error(os.str());
}
}  // namespace detail

}  // namespace gossip

#define GOSSIP_REQUIRE(cond, msg)                                      \
  do {                                                                 \
    if (!(cond))                                                       \
      ::gossip::detail::require_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
