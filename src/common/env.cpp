#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace gossip {

std::optional<std::string> env_string(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    return std::stoull(*raw);
  } catch (...) {
    return fallback;
  }
}

double env_double(const std::string& name, double fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    return std::stod(*raw);
  } catch (...) {
    return fallback;
  }
}

namespace {

/// Strict decimal parse shared by the checked knobs; empty optional on
/// anything that is not a plain uint64.
std::optional<std::uint64_t> parse_strict_u64(const std::string& s) {
  const bool all_digits =
      !s.empty() && std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
  if (!all_digits || s.size() > 20) return std::nullopt;
  try {
    return std::stoull(s);
  } catch (...) {
    return std::nullopt;  // > 2^64-1
  }
}

}  // namespace

std::uint64_t env_u64_positive(const std::string& name,
                               std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  const auto value = parse_strict_u64(*raw);
  if (!value || *value == 0) {
    throw EnvError(name + ": expected a positive integer, got '" + *raw +
                   "'");
  }
  return *value;
}

std::uint64_t env_u64_checked(const std::string& name,
                              std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  const auto value = parse_strict_u64(*raw);
  if (!value) {
    throw EnvError(name + ": expected an unsigned integer, got '" + *raw +
                   "'");
  }
  return *value;
}

bool env_flag_strict(const std::string& name) {
  const auto raw = env_string(name);
  if (!raw) return false;
  std::string lowered = *raw;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "1" || lowered == "true" || lowered == "on" ||
      lowered == "yes") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "off" ||
      lowered == "no") {
    return false;
  }
  throw EnvError(name + ": expected a boolean (1/0/true/false/on/off), got '" +
                 *raw + "'");
}

bool env_flag(const std::string& name) {
  auto raw = env_string(name);
  if (!raw) return false;
  std::string lowered = *raw;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lowered != "0" && lowered != "false" && lowered != "off";
}

}  // namespace gossip
