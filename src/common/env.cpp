#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace gossip {

std::optional<std::string> env_string(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    return std::stoull(*raw);
  } catch (...) {
    return fallback;
  }
}

double env_double(const std::string& name, double fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    return std::stod(*raw);
  } catch (...) {
    return fallback;
  }
}

bool env_flag(const std::string& name) {
  auto raw = env_string(name);
  if (!raw) return false;
  std::string lowered = *raw;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lowered != "0" && lowered != "false" && lowered != "off";
}

}  // namespace gossip
