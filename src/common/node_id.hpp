// Strongly typed node identifier.
//
// Nodes in a simulated overlay are dense indices [0, N); the strong type
// prevents mixing them up with counts, cycle indices and cache slots.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace gossip {

/// Identifier of a node in the overlay. Dense, starts at zero.
class NodeId {
public:
  using value_type = std::uint32_t;

  constexpr NodeId() = default;
  constexpr explicit NodeId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }

  /// Sentinel for "no node" (e.g. an empty newscast slot).
  static constexpr NodeId invalid() {
    return NodeId(static_cast<value_type>(-1));
  }
  [[nodiscard]] constexpr bool is_valid() const {
    return value_ != static_cast<value_type>(-1);
  }

  friend constexpr bool operator==(NodeId, NodeId) = default;
  friend constexpr auto operator<=>(NodeId, NodeId) = default;

private:
  value_type value_ = static_cast<value_type>(-1);
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  if (!id.is_valid()) return os << "node:<invalid>";
  return os << "node:" << id.value();
}

}  // namespace gossip

template <>
struct std::hash<gossip::NodeId> {
  std::size_t operator()(gossip::NodeId id) const noexcept {
    return std::hash<gossip::NodeId::value_type>{}(id.value());
  }
};
