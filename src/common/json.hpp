// Minimal JSON value type for the declarative experiment layer.
//
// The ScenarioSpec API (experiment/spec.*) needs to parse and emit spec
// files without external dependencies, with two properties a
// general-purpose library would not promise:
//  * doubles round-trip exactly (printed with max_digits10, so
//    parse(serialize(spec)) == spec bit-for-bit), and
//  * unsigned 64-bit integers (seeds, spec hashes) survive without being
//    squeezed through a double.
// Object key order is preserved, which keeps serialized specs diffable
// and the spec hash canonical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gossip::json {

/// Parse/shape error; `what()` carries the offset and a precise message
/// ("expected ':' after object key at offset 41").
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object (JSON objects here are small).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

class Value {
public:
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(std::uint64_t u) : kind_(Kind::kInt), int_(u) {}          // NOLINT
  Value(std::int64_t i);                                          // NOLINT
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}           // NOLINT
  Value(unsigned u) : Value(static_cast<std::uint64_t>(u)) {}     // NOLINT
  Value(double d) : kind_(Kind::kDouble), double_(d) {}           // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                 // NOLINT
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}   // NOLINT
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  // Typed accessors; throw Error naming the actual kind on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;   ///< requires integral
  [[nodiscard]] double as_double() const;       ///< any number
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Negative flag for kInt values (stored sign-and-magnitude).
  [[nodiscard]] bool int_negative() const { return int_negative_; }

  /// Object lookup; nullptr when `key` is absent (or not an object).
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Appends/sets `key` in an object value.
  void set(const std::string& key, Value v);

  bool operator==(const Value& other) const;

  /// Compact (indent < 0) or pretty serialization. Doubles are printed
  /// with max_digits10 so they re-parse to the identical bit pattern.
  [[nodiscard]] std::string dump(int indent = -1) const;

private:
  friend Value parse(const std::string&);
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t int_ = 0;   // magnitude
  bool int_negative_ = false;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing non-whitespace is an error).
Value parse(const std::string& text);

}  // namespace gossip::json
