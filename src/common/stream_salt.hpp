// Compile-time registry of every RNG stream salt and keying multiplier.
//
// Bit-identical determinism across engines, shards, threads and processes
// rests on every logical random stream being keyed by a *distinct* salt:
// two streams sharing a salt (or two keying dimensions sharing a
// multiplier) silently collapse onto the same draw sequence — the exact
// bug class PR 4 shipped, where reusing the cycle multiplier for the
// round index let (cycle 0, round 3) and (cycle 2, round 1) collide onto
// one per-node stream, and only a slow golden diff diagnosed it.
//
// Discipline (machine-checked, see tools/gossip_lint.py rule
// raw-stream-salt): no call site may XOR or multiply a raw hex constant
// into a seed. Every salt lives here as a named constexpr, is listed in
// exactly one domain table below, and the all-pairs-distinct
// static_asserts make a duplicated entry a *compile error* instead of a
// corrupted experiment. Values are frozen: every pinned golden in
// tests/ depends on them bit-for-bit — add new salts, never renumber.
#pragma once

#include <array>
#include <cstdint>

namespace gossip::salt {

// ---------------------------------------------------------------------
// Stream salts: tags XOR'd into a run/repetition seed to select an
// independent stream. Globally all-pairs distinct — many are combined
// with the *same* seed, so any two equal tags would alias streams.
// ---------------------------------------------------------------------

/// Initial-value distribution stream (engine.cpp init_nonpeak and the
/// runtime's bit-identical runtime_initial_values): seed ^ salt. The
/// historical 0xabcd of the initial-distribution ablation.
inline constexpr std::uint64_t kEngineInitValues = 0xabcdULL;

/// Static-graph construction for the deployment runtime (must be a pure
/// function of the repetition seed so every cooperating process builds
/// the identical overlay).
inline constexpr std::uint64_t kEngineGraph = 0x715ea7f0c9e2d3b1ULL;

/// Transport fault injection (message loss / latency draws):
/// splitmix64(seed) ^ salt.
inline constexpr std::uint64_t kEngineFaults = 0x5bd1e995cc9e2d51ULL;

/// Intra-rep engine, membership (newscast) phase of a matched cycle.
inline constexpr std::uint64_t kIntraRepNewscast = 0x6e65777363617374ULL;

/// Intra-rep engine, aggregation phase of a matched cycle.
inline constexpr std::uint64_t kIntraRepAgg = 0x6167677265676174ULL;

/// Engine-invariant per-(cycle,node) drift stream (drift_delta), shared
/// bit-exactly by the serial driver, the intra-rep engine and the
/// deployment runtime.
inline constexpr std::uint64_t kDriftDelta = 0x6472696674ULL;

/// Byzantine membership hash (AdversarySpec::is_byzantine) — seedless by
/// design so churn joiners are recruited at the configured rate on every
/// engine, but registered here so no stream can ever reuse its tag.
inline constexpr std::uint64_t kAdversaryMembership = 0x62797a616e74ULL;

/// Deployment-runtime driver stream (churn joins, per-cycle plan draws).
inline constexpr std::uint64_t kRuntimeDriver = 0xd21fe7a9b4c3580fULL;

/// Deployment-runtime per-worker RNG pool seed.
inline constexpr std::uint64_t kRuntimeWorkerPool = 0x9c0b5e1fd2a68734ULL;

/// Thread-per-node runtime's lossy in-memory network.
inline constexpr std::uint64_t kThreadedLossNet = 0x9e3779b97f4a7c15ULL;

inline constexpr std::array<std::uint64_t, 10> kStreamSalts = {
    kEngineInitValues, kEngineGraph,      kEngineFaults,
    kIntraRepNewscast, kIntraRepAgg,      kDriftDelta,
    kAdversaryMembership, kRuntimeDriver, kRuntimeWorkerPool,
    kThreadedLossNet,
};

// ---------------------------------------------------------------------
// Keying multipliers, per-(cycle, node, round) node-stream domain: the
// dimensions of one stream key are separated by multiplying each index
// with its own odd 64-bit constant. All-pairs distinct *within the
// domain* — reusing one across two dimensions is the PR 4 collision.
// (A multiplier may legitimately equal a stream salt from the table
// above: the two tables key different positions of the mix.)
// ---------------------------------------------------------------------

/// Cycle index dimension of node_stream_key().
inline constexpr std::uint64_t kMulCycle = 0x9e3779b97f4a7c15ULL;

/// Node id dimension of node_stream_key().
inline constexpr std::uint64_t kMulNode = 0xd1342543de82ef95ULL;

/// Aggregation sub-round dimension (agg_round_salt).
inline constexpr std::uint64_t kMulAggRound = 0x94d049bb133111ebULL;

/// Membership sub-round dimension (newscast_round_salt).
inline constexpr std::uint64_t kMulNewscastRound = 0xbf58476d1ce4e5b9ULL;

inline constexpr std::array<std::uint64_t, 4> kNodeStreamMultipliers = {
    kMulCycle,
    kMulNode,
    kMulAggRound,
    kMulNewscastRound,
};

// ---------------------------------------------------------------------
// Keying multipliers, sweep-seed domain (rep_seed in engine.cpp): the
// (point, rep) dimensions of the per-repetition seed derivation. Every
// published series depends on these exact values.
// ---------------------------------------------------------------------

inline constexpr std::uint64_t kMulSweepPoint = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kMulSweepRep = 0xbf58476d1ce4e5b9ULL;

inline constexpr std::array<std::uint64_t, 2> kSweepMultipliers = {
    kMulSweepPoint,
    kMulSweepRep,
};

// ---------------------------------------------------------------------
// Keying multipliers, single-dimension domains.
// ---------------------------------------------------------------------

/// Node-id dimension of the byzantine membership hash (seedless, mixed
/// with kAdversaryMembership only — its own one-entry domain).
inline constexpr std::uint64_t kMulAdversaryId = 0xda942042e4dd58b5ULL;

// ---------------------------------------------------------------------
// Distinctness: duplicating any entry inside a domain table refuses to
// compile. constexpr, O(n^2), n <= a few dozen — free at build time.
// ---------------------------------------------------------------------

template <std::size_t N>
constexpr bool all_pairs_distinct(const std::array<std::uint64_t, N>& t) {
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = i + 1; j < N; ++j) {
      if (t[i] == t[j]) return false;
    }
  }
  return true;
}

static_assert(all_pairs_distinct(kStreamSalts),
              "two RNG stream salts collide: streams XOR'd with the same "
              "tag alias each other — pick a fresh constant");
static_assert(all_pairs_distinct(kNodeStreamMultipliers),
              "two node-stream keying multipliers collide: distinct "
              "(cycle, node, round) tuples would map to one stream (the "
              "PR 4 bug) — pick a fresh constant");
static_assert(all_pairs_distinct(kSweepMultipliers),
              "sweep point and rep multipliers collide: (point, rep) "
              "pairs would share repetition seeds — pick a fresh constant");

template <std::size_t N>
constexpr bool contains(const std::array<std::uint64_t, N>& t,
                        std::uint64_t v) {
  for (std::size_t i = 0; i < N; ++i) {
    if (t[i] == v) return true;
  }
  return false;
}

// Every named salt/multiplier must be registered in its domain table —
// a constant declared above but missing from the table would dodge the
// distinctness check.
static_assert(contains(kStreamSalts, kEngineInitValues) &&
                  contains(kStreamSalts, kEngineGraph) &&
                  contains(kStreamSalts, kEngineFaults) &&
                  contains(kStreamSalts, kIntraRepNewscast) &&
                  contains(kStreamSalts, kIntraRepAgg) &&
                  contains(kStreamSalts, kDriftDelta) &&
                  contains(kStreamSalts, kAdversaryMembership) &&
                  contains(kStreamSalts, kRuntimeDriver) &&
                  contains(kStreamSalts, kRuntimeWorkerPool) &&
                  contains(kStreamSalts, kThreadedLossNet),
              "stream salt declared but not registered in kStreamSalts");
static_assert(contains(kNodeStreamMultipliers, kMulCycle) &&
                  contains(kNodeStreamMultipliers, kMulNode) &&
                  contains(kNodeStreamMultipliers, kMulAggRound) &&
                  contains(kNodeStreamMultipliers, kMulNewscastRound),
              "node-stream multiplier not registered");
static_assert(contains(kSweepMultipliers, kMulSweepPoint) &&
                  contains(kSweepMultipliers, kMulSweepRep),
              "sweep multiplier not registered");

// ---------------------------------------------------------------------
// Shared keying helpers: the one place the mix shapes live, so every
// engine derives the identical stream from the identical arguments.
// ---------------------------------------------------------------------

/// Pre-splitmix key of one node's stream in one phase of one cycle.
/// Keyed by node identity — never by shard or thread — so partitioning
/// is invisible to the random stream. Callers finalize with
/// splitmix64(key) (drift_delta) or Rng(splitmix64(key)) (node_stream).
constexpr std::uint64_t node_stream_key(std::uint64_t seed,
                                        std::uint32_t cycle,
                                        std::uint32_t node,
                                        std::uint64_t phase_salt) {
  return seed ^ (static_cast<std::uint64_t>(cycle) + 1) * kMulCycle ^
         (static_cast<std::uint64_t>(node) + 1) * kMulNode ^ phase_salt;
}

/// Phase salt of aggregation sub-round `round` (round 0 stays on the
/// plain kIntraRepAgg stream).
constexpr std::uint64_t agg_round_salt(std::uint32_t round) {
  return kIntraRepAgg ^ (static_cast<std::uint64_t>(round) * kMulAggRound);
}

/// Phase salt of membership sub-round `round`. The round multiplier must
/// differ from kMulCycle and kMulNode (enforced above): reusing one would
/// let (cycle, round) pairs collide onto the same per-node stream.
constexpr std::uint64_t newscast_round_salt(std::uint32_t round) {
  return kIntraRepNewscast ^
         (static_cast<std::uint64_t>(round) * kMulNewscastRound);
}

}  // namespace gossip::salt
