#include "common/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace gossip {

double Rng::exponential(double mean) {
  GOSSIP_REQUIRE(mean > 0.0, "exponential() needs a positive mean");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

std::uint64_t Rng::poisson(double mean) {
  GOSSIP_REQUIRE(mean >= 0.0, "poisson() needs a non-negative mean");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // large-mean case (only used for load generation, never in protocol code).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * normal + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t n,
                                                std::size_t k) {
  GOSSIP_REQUIRE(k <= n, "cannot sample more distinct values than exist");
  // Floyd's algorithm: k iterations, each adding exactly one new element.
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> result;
  result.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = below(j + 1);
    if (seen.insert(t).second) {
      result.push_back(t);
    } else {
      seen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace gossip
