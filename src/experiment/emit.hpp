// Output rendering for the declarative experiment layer: table / CSV /
// JSON formatting of scenario results, and the provenance block that
// makes every committed number traceable to the configuration that
// produced it (git sha, scale mode, threads/shards, engine, spec hash).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/engine.hpp"
#include "experiment/spec.hpp"
#include "experiment/table.hpp"

namespace gossip::experiment {

enum class OutputFormat { kTable, kCsv, kJson };

/// Parses table|csv|json; throws SpecError otherwise.
OutputFormat parse_format(const std::string& name);

/// The git revision this binary was configured from ("unknown" outside a
/// git checkout; captured at CMake configure time).
std::string build_git_sha();

/// Everything needed to reproduce a committed number.
struct Provenance {
  std::string git_sha;
  std::string scale_mode;  ///< "paper" | "scaled"
  std::uint32_t nodes = 0;
  std::uint32_t reps = 0;
  std::uint64_t seed = 0;
  unsigned threads = 1;
  unsigned shards = 1;
  std::string engine;     ///< resolved engine kind
  std::string spec_hash;  ///< hex FNV over the canonical spec JSON(s)
};

/// Provenance for one executed scenario sweep.
Provenance make_provenance(const ScenarioResult& result, bool full_scale);

/// Combined provenance for a multi-spec scenario (spec hashes fold
/// together; scale fields come from the first spec).
Provenance make_provenance(const std::vector<ScenarioResult>& results,
                           bool full_scale);

/// The provenance block as a JSON object string (compact when
/// `indent < 0`). Embedded in BENCH_cyclesim.json and `--format json`.
std::string provenance_json(const Provenance& p, int indent = 2);

/// Non-finite-safe cell formatting for estimate tables: finite values
/// via fmt(value, precision), otherwise "inf"/"-inf"/"nan". (The
/// registry's historical fmt_size intentionally differs — it labels
/// every non-finite value "inf" because the pinned pre-redesign CSVs
/// do; new surfaces should use this one.)
std::string fmt_estimate(double value, int precision = 4);

/// Generic series for ad-hoc `--spec file.json` runs: one row per sweep
/// point — estimate mean/min/max over reps, mean convergence factor,
/// surviving participants.
Table generic_table(const ScenarioResult& result);

/// Nearest-rank percentile of snapshot-age samples (pct in (0, 100]);
/// 0 when the run served no queries.
std::uint32_t staleness_percentile(const std::vector<std::uint32_t>& samples,
                                   double pct);

/// Cross-rep roll-up of one sweep point's continuous-service results.
/// Deterministic fields (tracking error, p99 staleness, the bound check)
/// belong in pinned tables; queries_per_sec depends on wall clock and
/// must stay in trailers / perf reports.
struct ServiceSummary {
  double tracking_error = 0.0;        ///< mean over reps of final |est − truth|
  std::uint32_t p99_staleness = 0;    ///< max over reps of per-rep p99 age
  bool stale_ok = true;               ///< p99 within spec.service.staleness_bound
  std::uint64_t epochs_published = 0; ///< total reports published over reps
  std::uint64_t queries = 0;          ///< total snapshot queries served
  double queries_per_sec = 0.0;       ///< queries / total elapsed wall time
};

/// Summarizes the service surface of one executed sweep point against the
/// spec's staleness bound (a bound of 0 means "unchecked", stale_ok stays
/// true).
ServiceSummary summarize_service(const ScenarioSpec& spec,
                                 const PointResult& point);

/// Renders a scenario's table + trailer + results in `format`. JSON
/// output carries the specs, the per-rep result summaries and the
/// provenance block.
void render_scenario(std::ostream& os, const std::string& name,
                     const Table& table, const std::string& trailer,
                     const std::vector<ScenarioResult>& results,
                     OutputFormat format, bool full_scale);

}  // namespace gossip::experiment
