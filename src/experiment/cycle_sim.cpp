#include "experiment/cycle_sim.hpp"

#include <limits>
#include <type_traits>

#include "core/multi_instance.hpp"
#include "core/update.hpp"
#include "overlay/generators.hpp"

namespace gossip::experiment {

std::vector<NodeId> elect_count_leaders(Rng& rng, std::uint32_t nodes,
                                        std::uint32_t instances,
                                        std::vector<double>& estimates) {
  std::vector<NodeId> leaders;
  leaders.reserve(instances);
  for (std::uint64_t raw : rng.sample_distinct(nodes, instances)) {
    leaders.emplace_back(static_cast<std::uint32_t>(raw));
  }
  std::fill(estimates.begin(), estimates.end(), 0.0);
  for (std::uint32_t i = 0; i < instances; ++i) {
    estimates[static_cast<std::size_t>(leaders[i].value()) * instances + i] =
        1.0;
  }
  return leaders;
}

double robust_size_estimate(const double* slots, std::uint32_t instances,
                            std::vector<double>& scratch) {
  scratch.resize(instances);
  for (std::uint32_t i = 0; i < instances; ++i) {
    scratch[i] = slots[i] > 0.0
                     ? 1.0 / slots[i]
                     : std::numeric_limits<double>::infinity();
  }
  return core::robust_combine(scratch);
}

CycleSimulation::CycleSimulation(const SimConfig& config, Rng rng)
    : config_(config), rng_(rng), population_(config.nodes) {
  GOSSIP_REQUIRE(config.nodes >= 2, "simulation needs at least two nodes");
  GOSSIP_REQUIRE(config.instances >= 1, "need at least one instance");
  estimates_.assign(static_cast<std::size_t>(config.nodes) *
                        config.instances,
                    0.0);
  participant_.assign(config.nodes, 1);
  build_topology();
}

void CycleSimulation::build_topology() {
  const auto& topo = config_.topology;
  switch (topo.kind) {
    case TopologyKind::kComplete:
      sampler_.emplace<overlay::CompletePeerSampler>(population_);
      break;
    case TopologyKind::kRandomKOut:
      graph_ = overlay::random_k_out(config_.nodes, topo.degree, rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kRingLattice:
      graph_ = overlay::ring_lattice(config_.nodes, topo.degree);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kWattsStrogatz:
      graph_ = overlay::watts_strogatz(config_.nodes, topo.degree, topo.beta,
                                       rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kBarabasiAlbert:
      graph_ = overlay::barabasi_albert(config_.nodes, topo.degree / 2, rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kNewscast:
      newscast_ =
          std::make_unique<membership::NewscastNetwork>(topo.cache_size);
      newscast_->bootstrap_random(config_.nodes, 0, rng_);
      sampler_.emplace<membership::NewscastPeerSampler>(*newscast_);
      break;
  }
}

void CycleSimulation::init_scalar(
    const std::function<double(NodeId)>& value_of) {
  GOSSIP_REQUIRE(config_.instances == 1,
                 "scalar initialization needs instances == 1");
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    estimates_[u] = value_of(NodeId(u));
  }
  initialized_ = true;
}

void CycleSimulation::init_peak(double peak, std::uint32_t peak_holder) {
  GOSSIP_REQUIRE(peak_holder < config_.nodes, "peak holder out of range");
  init_scalar([peak, peak_holder](NodeId id) {
    return id.value() == peak_holder ? peak : 0.0;
  });
}

void CycleSimulation::init_count_leaders() {
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  GOSSIP_REQUIRE(config_.update == core::UpdateKind::kAverage,
                 "COUNT is built on averaging (§5)");
  GOSSIP_REQUIRE(config_.instances <= config_.nodes,
                 "more instances than nodes");
  leaders_ = elect_count_leaders(rng_, config_.nodes, config_.instances,
                                 estimates_);
  initialized_ = true;
}

void CycleSimulation::apply_failures(const failure::CycleEvent& event,
                                     std::uint64_t now) {
  GOSSIP_REQUIRE(event.kills < population_.live_count(),
                 "failure plan would kill the whole network");
  for (std::uint32_t k = 0; k < event.kills; ++k) {
    population_.kill(population_.sample_live(rng_));
  }
  if (event.joins == 0) return;
  GOSSIP_REQUIRE(config_.topology.kind == TopologyKind::kNewscast ||
                     config_.topology.kind == TopologyKind::kComplete,
                 "joins need a dynamic overlay (newscast or complete)");
  // Joins only ever grow the per-node arrays; reserve the whole batch up
  // front so churn plans don't pay a reallocation per joiner.
  estimates_.reserve(estimates_.size() +
                     static_cast<std::size_t>(event.joins) *
                         config_.instances);
  participant_.reserve(participant_.size() + event.joins);
  if (newscast_) newscast_->reserve_joins(event.joins);
  for (std::uint32_t j = 0; j < event.joins; ++j) {
    const NodeId contact = population_.sample_live(rng_);
    const NodeId fresh = population_.add();
    estimates_.insert(estimates_.end(), config_.instances, 0.0);
    participant_.push_back(0);  // §4.2: joiners sit out the epoch
    if (newscast_) newscast_->add_node(fresh, contact, now);
  }
}

void CycleSimulation::aggregation_cycle() {
  // One variant visit per cycle; the loop body is stamped out per
  // concrete sampler so GETNEIGHBOR() fully inlines (the monostate arm is
  // unreachable: build_topology always installs a sampler).
  std::visit(
      [this](auto& sampler) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(sampler)>,
                                      std::monostate>) {
          aggregation_cycle_with(sampler);
        }
      },
      sampler_);
}

template <typename Sampler>
void CycleSimulation::aggregation_cycle_with(Sampler& sampler) {
  const std::uint32_t t = config_.instances;
  // The per-cycle permutation reuses a member scratch buffer: at N=100k
  // the old copy-construct allocated 400 KB per cycle per rep.
  const auto& live = population_.live();
  order_scratch_.assign(live.begin(), live.end());
  rng_.shuffle(order_scratch_);
  const std::uint32_t total = population_.total();
  for (NodeId p : order_scratch_) {
    if (!population_.alive_unchecked(p) || !participating(p)) continue;
    const NodeId q = sampler.sample(p, rng_);
    if (!q.is_valid() || q == p) continue;
    // Timeout (§4.2): crashed peers never answer. Joiners refuse
    // exchanges of the running epoch — the paper equates this with link
    // failure.
    if (q.value() >= total || !population_.alive_unchecked(q) ||
        !participating(q)) {
      continue;
    }
    const auto outcome = config_.comm.sample(rng_);
    if (outcome == failure::ExchangeOutcome::kLinkDown ||
        outcome == failure::ExchangeOutcome::kRequestLost) {
      continue;
    }
    double* ep = &estimates_[static_cast<std::size_t>(p.value()) * t];
    double* eq = &estimates_[static_cast<std::size_t>(q.value()) * t];
    const core::UpdateKind kind = config_.update;
    if (outcome == failure::ExchangeOutcome::kCompleted) {
      for (std::uint32_t i = 0; i < t; ++i) {
        const double u = core::apply_update(kind, ep[i], eq[i]);
        ep[i] = u;
        eq[i] = u;
      }
    } else {  // kResponseLost: the passive peer q updated, p never heard
      for (std::uint32_t i = 0; i < t; ++i) {
        eq[i] = core::apply_update(kind, ep[i], eq[i]);
      }
    }
  }
}

void CycleSimulation::record_stats() {
  const std::uint32_t t = config_.instances;
  stats::RunningStats rs;
  for (NodeId u : population_.live()) {
    if (!participating(u)) continue;
    rs.add(estimates_[static_cast<std::size_t>(u.value()) * t]);
  }
  cycle_stats_.push_back(rs);
  // Every instance lane gets its own trajectory; lane 0 reuses the
  // Welford stream above bit-for-bit (same values in the same order),
  // so the pinned lane-0 goldens are untouched.
  std::vector<stats::RunningStats> lanes(t);
  lanes[0] = rs;
  if (t > 1) {
    for (NodeId u : population_.live()) {
      if (!participating(u)) continue;
      const double* e = &estimates_[static_cast<std::size_t>(u.value()) * t];
      for (std::uint32_t i = 1; i < t; ++i) lanes[i].add(e[i]);
    }
  }
  instance_stats_.push_back(std::move(lanes));
}

void CycleSimulation::run(const failure::FailurePlan& plan) {
  GOSSIP_REQUIRE(initialized_, "initialize values before running");
  GOSSIP_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  record_stats();  // σ²_0
  for (std::uint32_t cycle = 0; cycle < config_.cycles; ++cycle) {
    apply_failures(plan.before_cycle(cycle, population_.live_count()),
                   cycle + 1);
    if (newscast_) newscast_->run_cycle(population_, cycle + 1, rng_);
    aggregation_cycle();
    record_stats();
  }
}

std::vector<NodeId> CycleSimulation::participants() const {
  std::vector<NodeId> out;
  out.reserve(population_.live_count());
  for (NodeId u : population_.live()) {
    if (participating(u)) out.push_back(u);
  }
  return out;
}

double CycleSimulation::estimate(NodeId node, std::uint32_t instance) const {
  GOSSIP_REQUIRE(node.is_valid() && node.value() < population_.total(),
                 "estimate() node out of range");
  GOSSIP_REQUIRE(instance < config_.instances,
                 "estimate() instance out of range");
  return estimates_[static_cast<std::size_t>(node.value()) *
                        config_.instances +
                    instance];
}

std::vector<double> CycleSimulation::scalar_estimates() const {
  std::vector<double> out;
  for (NodeId u : participants()) out.push_back(estimate(u, 0));
  return out;
}

std::vector<double> CycleSimulation::size_estimates() const {
  const std::uint32_t t = config_.instances;
  std::vector<double> out;
  std::vector<double> scratch;
  for (NodeId u : participants()) {
    out.push_back(robust_size_estimate(
        &estimates_[static_cast<std::size_t>(u.value()) * t], t, scratch));
  }
  return out;
}

stats::ConvergenceTracker CycleSimulation::tracker() const {
  stats::ConvergenceTracker t;
  for (const auto& rs : cycle_stats_) t.record(rs.variance());
  return t;
}

}  // namespace gossip::experiment
