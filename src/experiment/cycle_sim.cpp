#include "experiment/cycle_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>

#include "stats/summary.hpp"

#include "common/stream_salt.hpp"
#include "core/multi_instance.hpp"
#include "core/update.hpp"
#include "overlay/generators.hpp"

namespace gossip::experiment {

double drift_delta(const DriftSpec& drift, std::uint64_t stream_seed,
                   std::uint32_t cycle, std::uint32_t node) {
  switch (drift.kind) {
    case DriftSpec::Kind::kNone:
      return 0.0;
    case DriftSpec::Kind::kLinear:
      return cycle >= drift.start_cycle ? drift.rate : 0.0;
    case DriftSpec::Kind::kRandomWalk: {
      if (cycle < drift.start_cycle) return 0.0;
      // Same keying as IntraRepSimulation::node_stream — a pure function
      // of (seed, cycle, node), one splitmix64 output mapped to [-1, 1).
      // The dedicated drift salt keeps the stream off every other
      // per-(cycle,node) stream (registry-checked distinct).
      std::uint64_t s = salt::node_stream_key(stream_seed, cycle, node,
                                              salt::kDriftDelta);
      const std::uint64_t h = splitmix64(s);
      const double u01 = static_cast<double>(h >> 11) * 0x1.0p-53;
      return drift.rate * (2.0 * u01 - 1.0);
    }
    case DriftSpec::Kind::kStep:
      return cycle == drift.start_cycle ? drift.magnitude : 0.0;
  }
  return 0.0;
}

std::vector<NodeId> elect_count_leaders(Rng& rng, std::uint32_t nodes,
                                        std::uint32_t instances,
                                        std::vector<double>& estimates) {
  std::vector<NodeId> leaders;
  leaders.reserve(instances);
  for (std::uint64_t raw : rng.sample_distinct(nodes, instances)) {
    leaders.emplace_back(static_cast<std::uint32_t>(raw));
  }
  std::fill(estimates.begin(), estimates.end(), 0.0);
  for (std::uint32_t i = 0; i < instances; ++i) {
    estimates[static_cast<std::size_t>(leaders[i].value()) * instances + i] =
        1.0;
  }
  return leaders;
}

double robust_combine_receive(const CombineSpec& combine, std::uint32_t u,
                              double own, double report,
                              std::vector<double>& window,
                              std::uint8_t* wfill, std::uint8_t* wpos,
                              std::vector<double>& scratch,
                              std::vector<double>& means) {
  const std::uint32_t w = combine.window;
  window[static_cast<std::size_t>(u) * w + wpos[u]] = report;
  wpos[u] = static_cast<std::uint8_t>((wpos[u] + 1) % w);
  if (wfill[u] < w) ++wfill[u];
  scratch.clear();
  scratch.push_back(own);
  const std::uint8_t n = wfill[u];
  const double* ring = &window[static_cast<std::size_t>(u) * w];
  for (std::uint8_t k = 0; k < n; ++k) {
    scratch.push_back(ring[(wpos[u] + w - n + k) % w]);
  }
  if (combine.kind == CombineSpec::Kind::kTrimmedMean) {
    const auto trim = static_cast<std::size_t>(
        combine.alpha * static_cast<double>(scratch.size()));
    return stats::trimmed_mean(scratch, trim);
  }
  // Median of means over contiguous time-ordered groups.
  const auto g = std::min<std::size_t>(combine.groups, scratch.size());
  means.clear();
  for (std::size_t j = 0; j < g; ++j) {
    const std::size_t lo = j * scratch.size() / g;
    const std::size_t hi = (j + 1) * scratch.size() / g;
    double sum = 0.0;
    for (std::size_t k = lo; k < hi; ++k) sum += scratch[k];
    means.push_back(sum / static_cast<double>(hi - lo));
  }
  return stats::summarize(means).median;
}

double robust_size_estimate(const double* slots, std::uint32_t instances,
                            std::vector<double>& scratch) {
  scratch.resize(instances);
  for (std::uint32_t i = 0; i < instances; ++i) {
    scratch[i] = slots[i] > 0.0
                     ? 1.0 / slots[i]
                     : std::numeric_limits<double>::infinity();
  }
  return core::robust_combine(scratch);
}

CycleSimulation::CycleSimulation(const SimConfig& config, Rng rng)
    : config_(config), rng_(rng), population_(config.nodes) {
  GOSSIP_REQUIRE(config.nodes >= 2, "simulation needs at least two nodes");
  GOSSIP_REQUIRE(config.instances >= 1, "need at least one instance");
  estimates_.assign(static_cast<std::size_t>(config.nodes) *
                        config.instances,
                    0.0);
  participant_.assign(config.nodes, 1);
  // Aggregation-level deviations (byzantine reports, robust combine) take
  // the general exchange path; cache pollution only touches newscast, so
  // the aggregation loop stays on the plain paper path.
  const bool agg_adversary =
      config.adversary.enabled() &&
      config.adversary.behavior != AdversarySpec::Behavior::kCachePollute;
  general_ = agg_adversary || config.combine.robust();
  exclude_byz_stats_ = agg_adversary;
  GOSSIP_REQUIRE(!general_ || config.instances == 1,
                 "adversary/robust combine need instances == 1");
  GOSSIP_REQUIRE(!(config.drift.enabled() || config.service.enabled()) ||
                     config.instances == 1,
                 "drift/service need instances == 1");
  GOSSIP_REQUIRE(!(config.service.enabled() && config.epoch_restarts),
                 "service pipelining replaces epoch restarts");
  if (config.service.enabled()) {
    epoch_machine_.emplace(config.service.epoch_cycles);
  }
  byz_.assign(config.nodes, 0);
  if (config.adversary.enabled()) {
    for (std::uint32_t u = 0; u < config.nodes; ++u) {
      byz_[u] = config.adversary.is_byzantine(u) ? 1 : 0;
    }
  }
  build_topology();
}

void CycleSimulation::build_topology() {
  const auto& topo = config_.topology;
  switch (topo.kind) {
    case TopologyKind::kComplete:
      sampler_.emplace<overlay::CompletePeerSampler>(population_);
      break;
    case TopologyKind::kRandomKOut:
      graph_ = overlay::random_k_out(config_.nodes, topo.degree, rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kRingLattice:
      graph_ = overlay::ring_lattice(config_.nodes, topo.degree);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kWattsStrogatz:
      graph_ = overlay::watts_strogatz(config_.nodes, topo.degree, topo.beta,
                                       rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kBarabasiAlbert:
      graph_ = overlay::barabasi_albert(config_.nodes, topo.degree / 2, rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kNewscast:
      newscast_ =
          std::make_unique<membership::NewscastNetwork>(topo.cache_size);
      newscast_->bootstrap_random(config_.nodes, 0, rng_);
      sampler_.emplace<membership::NewscastPeerSampler>(*newscast_);
      break;
  }
}

void CycleSimulation::init_scalar(
    const std::function<double(NodeId)>& value_of) {
  GOSSIP_REQUIRE(config_.instances == 1,
                 "scalar initialization needs instances == 1");
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    estimates_[u] = value_of(NodeId(u));
  }
  initialized_ = true;
}

void CycleSimulation::init_peak(double peak, std::uint32_t peak_holder) {
  GOSSIP_REQUIRE(peak_holder < config_.nodes, "peak holder out of range");
  init_scalar([peak, peak_holder](NodeId id) {
    return id.value() == peak_holder ? peak : 0.0;
  });
}

void CycleSimulation::init_count_leaders() {
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  GOSSIP_REQUIRE(config_.update == core::UpdateKind::kAverage,
                 "COUNT is built on averaging (§5)");
  GOSSIP_REQUIRE(config_.instances <= config_.nodes,
                 "more instances than nodes");
  leaders_ = elect_count_leaders(rng_, config_.nodes, config_.instances,
                                 estimates_);
  initialized_ = true;
}

void CycleSimulation::apply_failures(const failure::CycleEvent& event,
                                     std::uint64_t now) {
  // Over-killing plans (a wave over an already shrunken population, a
  // crash rate above the live count) are clamped so at least one node
  // survives: targeted range kills spend the budget first, then the
  // uniform kills take what remains.
  const std::uint32_t live0 = population_.live_count();
  std::uint32_t budget = live0 > 0 ? live0 - 1 : 0;
  if (event.kill_hi > event.kill_lo) {
    budget -= population_.kill_range(event.kill_lo, event.kill_hi, budget);
  }
  const std::uint32_t kills = std::min(event.kills, budget);
  for (std::uint32_t k = 0; k < kills; ++k) {
    population_.kill(population_.sample_live(rng_));
  }
  if (event.joins == 0) return;
  GOSSIP_REQUIRE(config_.topology.kind == TopologyKind::kNewscast ||
                     config_.topology.kind == TopologyKind::kComplete,
                 "joins need a dynamic overlay (newscast or complete)");
  // Joins only ever grow the per-node arrays; reserve the whole batch up
  // front so churn plans don't pay a reallocation per joiner.
  estimates_.reserve(estimates_.size() +
                     static_cast<std::size_t>(event.joins) *
                         config_.instances);
  participant_.reserve(participant_.size() + event.joins);
  if (newscast_) newscast_->reserve_joins(event.joins);
  for (std::uint32_t j = 0; j < event.joins; ++j) {
    const NodeId contact = population_.sample_live(rng_);
    const NodeId fresh = population_.add();
    estimates_.insert(estimates_.end(), config_.instances, 0.0);
    participant_.push_back(0);  // §4.2: joiners sit out the epoch
    if (!values_.empty()) values_.push_back(0.0);
    byz_.push_back(config_.adversary.is_byzantine(fresh.value()) ? 1 : 0);
    if (newscast_) newscast_->add_node(fresh, contact, now);
  }
}

void CycleSimulation::pin_injected_values() {
  // value_inject adversaries hold the outlier forever: their slot is set
  // once and receive_report() never overwrites it.
  if (config_.adversary.behavior != AdversarySpec::Behavior::kValueInject) {
    return;
  }
  for (std::uint32_t u = 0; u < population_.total(); ++u) {
    if (byz_[u]) estimates_[u] = config_.adversary.value;
  }
}

void CycleSimulation::apply_restart() {
  // §4.2 epoch boundary: every node re-seeds from its local value —
  // the *current* one when drift maintains values_, the run-start
  // snapshot otherwise (joiners restart from their join-time default of
  // 0) — and every live node, including previously sitting-out joiners,
  // participates in the new epoch.
  GOSSIP_REQUIRE(!initial_.empty() || !values_.empty(),
                 "restart without a seed snapshot would zero every "
                 "estimate — the plan emitted a restart the driver never "
                 "prepared for");
  if (!values_.empty()) {
    std::copy(values_.begin(), values_.end(), estimates_.begin());
  } else {
    std::copy(initial_.begin(), initial_.end(), estimates_.begin());
    std::fill(estimates_.begin() +
                  static_cast<std::ptrdiff_t>(initial_.size()),
              estimates_.end(), 0.0);
  }
  for (NodeId u : population_.live()) participant_[u.value()] = 1;
  pin_injected_values();
  flush_combine_windows();
}

void CycleSimulation::flush_combine_windows() {
  // Re-initialization boundary (restart or pipelined epoch roll): reports
  // received before the boundary summarize dead-epoch estimates; leaving
  // them in the robust-combine rings would bias the first post-boundary
  // estimates toward the old epoch. Drop the contents, not just the
  // fill/position counters, so no stale report can ever be read back.
  if (wfill_.empty()) return;
  std::fill(window_.begin(), window_.end(), 0.0);
  std::fill(wfill_.begin(), wfill_.end(), 0);
  std::fill(wpos_.begin(), wpos_.end(), 0);
}

void CycleSimulation::apply_drift(std::uint32_t cycle) {
  // Mass-preserving dynamic values: node u's underlying value moves by
  // drift_delta and u folds the same delta into its running estimate, so
  // the in-flight averages track the moving mean without a restart.
  // Byzantine nodes are skipped — their reported estimate is pinned by
  // the adversary model and their "value" never enters honest statistics.
  for (NodeId u : population_.live()) {
    const std::uint32_t id = u.value();
    if (byz_[id]) continue;
    const double d =
        drift_delta(config_.drift, config_.stream_seed, cycle, id);
    if (d == 0.0) continue;
    values_[id] += d;
    if (participant_[id]) estimates_[id] += d;
  }
}

void CycleSimulation::service_cycle(std::uint32_t cycle) {
  // Epoch pipelining: on the boundary, publish the epoch's converged
  // report (the mean the statistics layer just recorded) and re-seed the
  // next epoch from the current local values — restart-free continuous
  // operation. The published snapshot keeps serving queries while the
  // next epoch converges.
  const std::uint64_t ending = epoch_machine_->epoch();
  if (epoch_machine_->advance_cycle()) {
    store_.publish(0, cycle_stats_.back().mean(), ending, cycle + 1);
    std::copy(values_.begin(), values_.end(), estimates_.begin());
    for (NodeId u : population_.live()) participant_[u.value()] = 1;
    pin_injected_values();
    flush_combine_windows();
  }
  // One query per cycle from first publication on: how stale is the
  // served answer and how far is it from the *current* true mean?
  if (const auto ans = store_.query(0, cycle + 1)) {
    staleness_.push_back(ans->age_cycles);
    served_error_.push_back(std::abs(ans->value - true_mean_));
  }
}

void CycleSimulation::aggregation_cycle(std::uint32_t cycle) {
  // One variant visit per cycle; the loop body is stamped out per
  // concrete sampler so GETNEIGHBOR() fully inlines (the monostate arm is
  // unreachable: build_topology always installs a sampler).
  std::visit(
      [this, cycle](auto& sampler) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(sampler)>,
                                      std::monostate>) {
          aggregation_cycle_with(sampler, cycle);
        }
      },
      sampler_);
}

void CycleSimulation::receive_report(std::uint32_t u, double* slot,
                                     double report) {
  if (byz_[u]) {
    // value_inject keeps its pinned outlier; always_max hoards the max.
    if (config_.adversary.behavior == AdversarySpec::Behavior::kAlwaysMax) {
      slot[0] = core::apply_update(core::UpdateKind::kMax, slot[0], report);
    }
    return;
  }
  if (!config_.combine.robust()) {
    slot[0] = core::apply_update(config_.update, slot[0], report);
    return;
  }
  slot[0] = robust_combine_receive(config_.combine, u, slot[0], report,
                                   window_, wfill_.data(), wpos_.data(),
                                   combine_scratch_, combine_means_);
}

template <typename Sampler>
void CycleSimulation::aggregation_cycle_with(Sampler& sampler,
                                             std::uint32_t cycle) {
  const std::uint32_t t = config_.instances;
  // The per-cycle permutation reuses a member scratch buffer: at N=100k
  // the old copy-construct allocated 400 KB per cycle per rep.
  const auto& live = population_.live();
  order_scratch_.assign(live.begin(), live.end());
  rng_.shuffle(order_scratch_);
  const std::uint32_t total = population_.total();
  const bool partitioned = config_.partition.active(cycle);
  if (general_ && config_.combine.robust()) {
    window_.resize(static_cast<std::size_t>(total) * config_.combine.window,
                   0.0);
    wfill_.resize(total, 0);
    wpos_.resize(total, 0);
  }
  for (NodeId p : order_scratch_) {
    if (!population_.alive_unchecked(p) || !participating(p)) continue;
    const NodeId q = sampler.sample(p, rng_);
    if (!q.is_valid() || q == p) continue;
    // Timeout (§4.2): crashed peers never answer. Joiners refuse
    // exchanges of the running epoch — the paper equates this with link
    // failure.
    if (q.value() >= total || !population_.alive_unchecked(q) ||
        !participating(q)) {
      continue;
    }
    // Component-scoped drop: a partitioned exchange dies like link
    // failure. Checked before the comm draw, so an inactive partition
    // perturbs neither the RNG stream nor any golden.
    if (partitioned && config_.partition.component_of(p.value()) !=
                           config_.partition.component_of(q.value())) {
      continue;
    }
    const auto outcome = config_.comm.sample(rng_);
    if (outcome == failure::ExchangeOutcome::kLinkDown ||
        outcome == failure::ExchangeOutcome::kRequestLost) {
      continue;
    }
    double* ep = &estimates_[static_cast<std::size_t>(p.value()) * t];
    double* eq = &estimates_[static_cast<std::size_t>(q.value()) * t];
    const core::UpdateKind kind = config_.update;
    if (!general_) {  // the exact paper path, untouched
      if (outcome == failure::ExchangeOutcome::kCompleted) {
        for (std::uint32_t i = 0; i < t; ++i) {
          const double u = core::apply_update(kind, ep[i], eq[i]);
          ep[i] = u;
          eq[i] = u;
        }
      } else {  // kResponseLost: the passive peer q updated, p never heard
        for (std::uint32_t i = 0; i < t; ++i) {
          eq[i] = core::apply_update(kind, ep[i], eq[i]);
        }
      }
      continue;
    }
    // General path (instances == 1): both reports are captured before
    // either side updates, then each side combines what it received —
    // byzantine sides deviate, honest sides combine robustly or plainly.
    const double rp = ep[0];
    const double rq = eq[0];
    if (outcome == failure::ExchangeOutcome::kCompleted) {
      receive_report(p.value(), ep, rq);
      receive_report(q.value(), eq, rp);
    } else {  // kResponseLost
      receive_report(q.value(), eq, rp);
    }
  }
}

void CycleSimulation::record_stats() {
  const std::uint32_t t = config_.instances;
  stats::RunningStats rs;
  for (NodeId u : population_.live()) {
    if (!counted(u)) continue;
    rs.add(estimates_[static_cast<std::size_t>(u.value()) * t]);
  }
  cycle_stats_.push_back(rs);
  if (!values_.empty()) {
    // Tracking error against the *current* true mean of the underlying
    // values, over the same counted-live population as the estimates.
    stats::RunningStats vs;
    for (NodeId u : population_.live()) {
      if (!counted(u)) continue;
      vs.add(values_[u.value()]);
    }
    true_mean_ = vs.mean();
    tracking_error_.push_back(std::abs(rs.mean() - true_mean_));
  }
  // Every instance lane gets its own trajectory; lane 0 reuses the
  // Welford stream above bit-for-bit (same values in the same order),
  // so the pinned lane-0 goldens are untouched.
  std::vector<stats::RunningStats> lanes(t);
  lanes[0] = rs;
  if (t > 1) {
    for (NodeId u : population_.live()) {
      if (!counted(u)) continue;
      const double* e = &estimates_[static_cast<std::size_t>(u.value()) * t];
      for (std::uint32_t i = 1; i < t; ++i) lanes[i].add(e[i]);
    }
  }
  instance_stats_.push_back(std::move(lanes));
}

void CycleSimulation::run(const failure::FailurePlan& plan) {
  GOSSIP_REQUIRE(initialized_, "initialize values before running");
  GOSSIP_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  pin_injected_values();
  if (config_.epoch_restarts) initial_ = estimates_;
  if (config_.drift.enabled() || config_.service.enabled()) {
    values_ = estimates_;  // v_u starts where the estimate starts
  }
  const bool pollute =
      config_.adversary.enabled() &&
      config_.adversary.behavior == AdversarySpec::Behavior::kCachePollute;
  record_stats();  // σ²_0
  for (std::uint32_t cycle = 0; cycle < config_.cycles; ++cycle) {
    const auto event =
        plan.before_cycle(cycle, population_.live_count());
    apply_failures(event, cycle + 1);
    if (event.restart) apply_restart();
    if (config_.drift.enabled()) apply_drift(cycle);
    if (newscast_) {
      newscast_->run_cycle(population_, cycle + 1, rng_,
                           pollute ? &byz_ : nullptr);
    }
    aggregation_cycle(cycle);
    record_stats();
    if (config_.service.enabled()) service_cycle(cycle);
  }
}

std::vector<NodeId> CycleSimulation::participants() const {
  std::vector<NodeId> out;
  out.reserve(population_.live_count());
  for (NodeId u : population_.live()) {
    if (counted(u)) out.push_back(u);
  }
  return out;
}

double CycleSimulation::estimate(NodeId node, std::uint32_t instance) const {
  GOSSIP_REQUIRE(node.is_valid() && node.value() < population_.total(),
                 "estimate() node out of range");
  GOSSIP_REQUIRE(instance < config_.instances,
                 "estimate() instance out of range");
  return estimates_[static_cast<std::size_t>(node.value()) *
                        config_.instances +
                    instance];
}

std::vector<double> CycleSimulation::scalar_estimates() const {
  std::vector<double> out;
  for (NodeId u : participants()) out.push_back(estimate(u, 0));
  return out;
}

std::vector<double> CycleSimulation::size_estimates() const {
  const std::uint32_t t = config_.instances;
  std::vector<double> out;
  std::vector<double> scratch;
  for (NodeId u : participants()) {
    out.push_back(robust_size_estimate(
        &estimates_[static_cast<std::size_t>(u.value()) * t], t, scratch));
  }
  return out;
}

stats::ConvergenceTracker CycleSimulation::tracker() const {
  stats::ConvergenceTracker t;
  for (const auto& rs : cycle_stats_) t.record(rs.variance());
  return t;
}

}  // namespace gossip::experiment
