#include "experiment/spec.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <utility>

#include "common/json.hpp"
#include "experiment/spec_fields.hpp"

namespace gossip::experiment {

// ---------------------------------------------------------- FailureSpec

FailureSpec FailureSpec::proportional_crash(double p_fail) {
  FailureSpec f;
  f.kind = Kind::kProportionalCrash;
  f.p = p_fail;
  return f;
}

FailureSpec FailureSpec::sudden_death(std::uint32_t death_cycle,
                                      double fraction) {
  FailureSpec f;
  f.kind = Kind::kSuddenDeath;
  f.cycle = death_cycle;
  f.fraction = fraction;
  return f;
}

FailureSpec FailureSpec::churn(std::uint32_t rate) {
  FailureSpec f;
  f.kind = Kind::kChurn;
  f.rate = rate;
  return f;
}

FailureSpec FailureSpec::churn_fraction(double fraction) {
  FailureSpec f;
  f.kind = Kind::kChurnFraction;
  f.fraction = fraction;
  return f;
}

FailureSpec FailureSpec::constant_crash(std::uint32_t rate) {
  FailureSpec f;
  f.kind = Kind::kConstantCrash;
  f.rate = rate;
  return f;
}

FailureSpec FailureSpec::correlated_waves(std::uint32_t trigger,
                                          std::uint32_t waves,
                                          double fraction) {
  FailureSpec f;
  f.kind = Kind::kCorrelatedWaves;
  f.cycle = trigger;
  f.waves = waves;
  f.fraction = fraction;
  return f;
}

FailureSpec FailureSpec::partition(std::uint32_t start, std::uint32_t duration,
                                   std::uint32_t components) {
  FailureSpec f;
  f.kind = Kind::kPartition;
  f.cycle = start;
  f.duration = duration;
  f.components = components;
  return f;
}

FailureSpec FailureSpec::restart(std::uint32_t period) {
  FailureSpec f;
  f.kind = Kind::kRestart;
  f.cycle = period;
  return f;
}

std::unique_ptr<failure::FailurePlan> FailureSpec::build(
    std::uint32_t nodes) const {
  switch (kind) {
    case Kind::kNone:
      return std::make_unique<failure::NoFailures>();
    case Kind::kProportionalCrash:
      return std::make_unique<failure::ProportionalCrash>(p);
    case Kind::kSuddenDeath:
      return std::make_unique<failure::SuddenDeath>(cycle, fraction);
    case Kind::kChurn:
      return std::make_unique<failure::Churn>(rate);
    case Kind::kChurnFraction:
      // The historical rate arithmetic: truncation of nodes · fraction.
      return std::make_unique<failure::Churn>(
          static_cast<std::uint32_t>(nodes * fraction));
    case Kind::kConstantCrash:
      return std::make_unique<failure::ConstantCrash>(rate);
    case Kind::kCorrelatedWaves:
      return std::make_unique<failure::CorrelatedWaves>(
          cycle, waves, static_cast<std::uint32_t>(nodes * fraction));
    case Kind::kPartition:
      // A partition kills nobody: the drivers enforce it as an exchange
      // filter (SimConfig::partition), wired up by the engine facade.
      return std::make_unique<failure::NoFailures>();
    case Kind::kRestart:
      return std::make_unique<failure::EpochRestart>(cycle);
  }
  throw SpecError("spec: unhandled failure kind");
}

// ------------------------------------------------------------- builders

ScenarioSpec ScenarioSpec::average_peak(std::string name, std::uint32_t nodes,
                                        std::uint32_t cycles) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.nodes = nodes;
  s.cycles = cycles;
  return s;
}

ScenarioSpec ScenarioSpec::count(std::string name, std::uint32_t nodes,
                                 std::uint32_t cycles,
                                 std::uint32_t instances) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.aggregate = AggregateKind::kCount;
  s.nodes = nodes;
  s.cycles = cycles;
  s.instances = instances;
  return s;
}

ScenarioSpec& ScenarioSpec::with_title(std::string t) {
  title = std::move(t);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_topology(TopologyConfig t) {
  topology = t;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_failure(FailureSpec f) {
  failure = f;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_comm(CommSpec c) {
  comm = c;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_adversary(AdversarySpec a) {
  adversary = a;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_combine(CombineSpec c) {
  combine = c;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_drift(DriftSpec d) {
  drift = d;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_service(ServiceSpec s) {
  service = s;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_runtime(RuntimeSpec r) {
  runtime = r;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_init(InitKind k) {
  init = k;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_reps(std::uint32_t r) {
  reps = r;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_engine(EngineKind k) {
  engine = k;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_driver(DriverKind d) {
  driver = d;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_instances(std::uint32_t t) {
  instances = t;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_match_rounds(std::uint32_t r) {
  match_rounds = r;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_sweep(SweepAxis axis,
                                       std::vector<SweepPoint> points) {
  sweep.axis = axis;
  sweep.points = std::move(points);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_seed_point(std::uint64_t seed_point) {
  sweep = SweepSpec::single(seed_point);
  return *this;
}

ScenarioSpec ScenarioSpec::at_point(std::size_t index) const {
  if (index >= sweep.points.size()) {
    throw SpecError("spec: sweep point index " + std::to_string(index) +
                    " out of range (have " +
                    std::to_string(sweep.points.size()) + ")");
  }
  ScenarioSpec s = *this;
  const SweepPoint& pt = sweep.points[index];
  const double v = pt.value;
  switch (sweep.axis) {
    case SweepAxis::kNone:
      break;
    case SweepAxis::kNodes:
      s.nodes = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kBeta:
      s.topology.beta = v;
      break;
    case SweepAxis::kCacheSize:
      s.topology.cache_size = static_cast<std::size_t>(v);
      break;
    case SweepAxis::kCrashP:
      s.failure = FailureSpec::proportional_crash(v);
      break;
    case SweepAxis::kDeathCycle:
      s.failure.kind = FailureSpec::Kind::kSuddenDeath;
      s.failure.cycle = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kChurnFraction:
      s.failure.kind = FailureSpec::Kind::kChurnFraction;
      s.failure.fraction = v;
      break;
    case SweepAxis::kLinkP:
      s.comm.link_failure = v;
      break;
    case SweepAxis::kLossP:
      s.comm.message_loss = v;
      break;
    case SweepAxis::kInstances:
      s.instances = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kCycles:
      s.cycles = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kInit:
      s.init = static_cast<InitKind>(static_cast<int>(v));
      break;
    case SweepAxis::kAtomicity:
      s.atomic_exchanges = v != 0.0;
      break;
    case SweepAxis::kByzFraction:
      s.adversary.fraction = v;
      break;
    case SweepAxis::kPartitionComponents:
      s.failure.components = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kPartitionDuration:
      s.failure.duration = static_cast<std::uint32_t>(v);
      break;
  }
  s.sweep.axis = sweep.axis;
  s.sweep.points = {pt};
  return s;
}

// ------------------------------------------------------- enum <-> string

namespace {

template <typename E>
struct NameTable {
  E value;
  const char* name;
};

constexpr NameTable<DriverKind> kDriverNames[] = {
    {DriverKind::kCycle, "cycle"},
    {DriverKind::kEvent, "event"},
    {DriverKind::kPushSum, "push_sum"},
    {DriverKind::kRuntime, "runtime"},
};
constexpr NameTable<AggregateKind> kAggregateNames[] = {
    {AggregateKind::kAverage, "average"},
    {AggregateKind::kCount, "count"},
};
constexpr NameTable<InitKind> kInitNames[] = {
    {InitKind::kPeak, "peak"},
    {InitKind::kUniform, "uniform"},
    {InitKind::kBimodal, "bimodal"},
    {InitKind::kExponential, "exponential"},
};
constexpr NameTable<EngineKind> kEngineNames[] = {
    {EngineKind::kAuto, "auto"},
    {EngineKind::kSerial, "serial"},
    {EngineKind::kRepParallel, "rep_parallel"},
    {EngineKind::kIntraRep, "intra_rep"},
};
constexpr NameTable<TopologyKind> kTopologyNames[] = {
    {TopologyKind::kComplete, "complete"},
    {TopologyKind::kRandomKOut, "random_k_out"},
    {TopologyKind::kRingLattice, "ring_lattice"},
    {TopologyKind::kWattsStrogatz, "watts_strogatz"},
    {TopologyKind::kBarabasiAlbert, "barabasi_albert"},
    {TopologyKind::kNewscast, "newscast"},
};
constexpr NameTable<FailureSpec::Kind> kFailureNames[] = {
    {FailureSpec::Kind::kNone, "none"},
    {FailureSpec::Kind::kProportionalCrash, "proportional_crash"},
    {FailureSpec::Kind::kSuddenDeath, "sudden_death"},
    {FailureSpec::Kind::kChurn, "churn"},
    {FailureSpec::Kind::kChurnFraction, "churn_fraction"},
    {FailureSpec::Kind::kConstantCrash, "constant_crash"},
    {FailureSpec::Kind::kCorrelatedWaves, "correlated_waves"},
    {FailureSpec::Kind::kPartition, "partition"},
    {FailureSpec::Kind::kRestart, "restart"},
};
constexpr NameTable<AdversarySpec::Behavior> kAdversaryNames[] = {
    {AdversarySpec::Behavior::kNone, "none"},
    {AdversarySpec::Behavior::kValueInject, "value_inject"},
    {AdversarySpec::Behavior::kAlwaysMax, "always_max"},
    {AdversarySpec::Behavior::kCachePollute, "cache_pollute"},
};
constexpr NameTable<CombineSpec::Kind> kCombineNames[] = {
    {CombineSpec::Kind::kMean, "mean"},
    {CombineSpec::Kind::kTrimmedMean, "trimmed_mean"},
    {CombineSpec::Kind::kMedianOfMeans, "median_of_means"},
};
constexpr NameTable<DriftSpec::Kind> kDriftNames[] = {
    {DriftSpec::Kind::kNone, "none"},
    {DriftSpec::Kind::kLinear, "linear"},
    {DriftSpec::Kind::kRandomWalk, "random_walk"},
    {DriftSpec::Kind::kStep, "step"},
};
constexpr NameTable<RuntimeSpec::TransportKind> kRuntimeTransportNames[] = {
    {RuntimeSpec::TransportKind::kLoopback, "loopback"},
    {RuntimeSpec::TransportKind::kSocket, "socket"},
};
constexpr NameTable<RuntimeSpec::LatencyKind> kRuntimeLatencyNames[] = {
    {RuntimeSpec::LatencyKind::kNone, "none"},
    {RuntimeSpec::LatencyKind::kFixed, "fixed"},
    {RuntimeSpec::LatencyKind::kUniform, "uniform"},
    {RuntimeSpec::LatencyKind::kExponential, "exponential"},
};
constexpr NameTable<SweepAxis> kAxisNames[] = {
    {SweepAxis::kNone, "none"},
    {SweepAxis::kNodes, "nodes"},
    {SweepAxis::kBeta, "beta"},
    {SweepAxis::kCacheSize, "cache_size"},
    {SweepAxis::kCrashP, "crash_p"},
    {SweepAxis::kDeathCycle, "death_cycle"},
    {SweepAxis::kChurnFraction, "churn_fraction"},
    {SweepAxis::kLinkP, "link_p"},
    {SweepAxis::kLossP, "loss_p"},
    {SweepAxis::kInstances, "instances"},
    {SweepAxis::kCycles, "cycles"},
    {SweepAxis::kInit, "init"},
    {SweepAxis::kAtomicity, "atomicity"},
    {SweepAxis::kByzFraction, "byz_fraction"},
    {SweepAxis::kPartitionComponents, "partition_components"},
    {SweepAxis::kPartitionDuration, "partition_duration"},
};

template <typename E, std::size_t N>
std::string name_of(const NameTable<E> (&table)[N], E value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  throw SpecError("spec: unknown enum value");
}

template <typename E, std::size_t N>
E value_of(const NameTable<E> (&table)[N], const std::string& name,
           const char* field) {
  for (const auto& entry : table) {
    if (name == entry.name) return entry.value;
  }
  std::string valid;
  for (const auto& entry : table) {
    if (!valid.empty()) valid += "|";
    valid += entry.name;
  }
  throw SpecError(std::string("spec: ") + field + " must be one of " + valid +
                  ", got '" + name + "'");
}

}  // namespace

std::string to_string(DriverKind k) { return name_of(kDriverNames, k); }
std::string to_string(AggregateKind k) { return name_of(kAggregateNames, k); }
std::string to_string(InitKind k) { return name_of(kInitNames, k); }
std::string to_string(EngineKind k) { return name_of(kEngineNames, k); }
std::string to_string(TopologyKind k) { return name_of(kTopologyNames, k); }
std::string to_string(FailureSpec::Kind k) {
  return name_of(kFailureNames, k);
}
std::string to_string(SweepAxis k) { return name_of(kAxisNames, k); }
std::string to_string(AdversarySpec::Behavior k) {
  return name_of(kAdversaryNames, k);
}
std::string to_string(CombineSpec::Kind k) {
  return name_of(kCombineNames, k);
}
std::string to_string(DriftSpec::Kind k) {
  return name_of(kDriftNames, k);
}
std::string to_string(RuntimeSpec::TransportKind k) {
  return name_of(kRuntimeTransportNames, k);
}
std::string to_string(RuntimeSpec::LatencyKind k) {
  return name_of(kRuntimeLatencyNames, k);
}

// ----------------------------------------------------------------- JSON
//
// Parse and canonical serialization expand from the field-descriptor
// tables in spec_fields.hpp. Key order, conditional emission and the
// dotted error contexts are all properties of the table rows, so the
// canonical JSON (and spec_hash provenance) of every pre-existing spec
// stays bit-identical and a field added to a table can never reach one
// surface but not another. Only the typed getters, the unknown-key
// rejection and the sweep-point array plumbing are hand-written.

namespace {

// GOSSIP_JV_<tag>: the json::Value expression serializing one member.
#define GOSSIP_JV_STR(obj, member, extra) (obj).member
#define GOSSIP_JV_U32(obj, member, extra) (obj).member
#define GOSSIP_JV_U64(obj, member, extra) (obj).member
#define GOSSIP_JV_UNS(obj, member, extra) (obj).member
#define GOSSIP_JV_SIZE(obj, member, extra) \
  static_cast<std::uint64_t>((obj).member)
#define GOSSIP_JV_DBL(obj, member, extra) (obj).member
#define GOSSIP_JV_PROB(obj, member, extra) (obj).member
#define GOSSIP_JV_BOOL(obj, member, extra) (obj).member
#define GOSSIP_JV_ENUM(obj, member, extra) to_string((obj).member)
#define GOSSIP_JV_OBJ(obj, member, extra) extra##_to_json((obj).member)
#define GOSSIP_JV_PTS(obj, member, extra) sweep_points_to_json((obj).member)

// GOSSIP_EMIT_<emit>: the emission predicate. IF_NONZERO/IF_NONEMPTY/
// IF_NONDEFAULT keep fields (and whole objects) that joined the spec
// after provenance hashes were pinned out of every pre-existing spec's
// canonical JSON, so those specs' spec_hash stays byte-identical.
#define GOSSIP_EMIT_ALWAYS(obj, member) true
#define GOSSIP_EMIT_IF_NONZERO(obj, member) ((obj).member != 0)
#define GOSSIP_EMIT_IF_NONEMPTY(obj, member) (!(obj).member.empty())
#define GOSSIP_EMIT_IF_NONDEFAULT(obj, member) \
  (!((obj).member == std::decay_t<decltype((obj).member)>{}))

#define GOSSIP_SER_ONE(member, json_key, tag, extra, dflt, emit, set_tok, \
                       set_key, sweep)                                    \
  if (GOSSIP_EMIT_##emit(obj, member)) {                                  \
    o.set(json_key, GOSSIP_JV_##tag(obj, member, extra));                 \
  }

#define GOSSIP_DEFINE_TO_JSON(name, Type, FIELDS) \
  json::Value name##_to_json(const Type& obj) {   \
    json::Value o = json::Object{};               \
    FIELDS(GOSSIP_SER_ONE)                        \
    return o;                                     \
  }

json::Value sweep_points_to_json(const std::vector<SweepPoint>& points) {
  json::Array arr;
  for (const SweepPoint& obj : points) {
    json::Value o = json::Object{};
    GOSSIP_SPEC_SWEEP_POINT_FIELDS(GOSSIP_SER_ONE)
    arr.push_back(std::move(o));
  }
  return arr;
}

GOSSIP_DEFINE_TO_JSON(topology, TopologyConfig, GOSSIP_SPEC_TOPOLOGY_FIELDS)
GOSSIP_DEFINE_TO_JSON(failure, FailureSpec, GOSSIP_SPEC_FAILURE_FIELDS)
GOSSIP_DEFINE_TO_JSON(comm, CommSpec, GOSSIP_SPEC_COMM_FIELDS)
GOSSIP_DEFINE_TO_JSON(adversary, AdversarySpec, GOSSIP_SPEC_ADVERSARY_FIELDS)
GOSSIP_DEFINE_TO_JSON(combine, CombineSpec, GOSSIP_SPEC_COMBINE_FIELDS)
GOSSIP_DEFINE_TO_JSON(drift, DriftSpec, GOSSIP_SPEC_DRIFT_FIELDS)
GOSSIP_DEFINE_TO_JSON(service, ServiceSpec, GOSSIP_SPEC_SERVICE_FIELDS)
GOSSIP_DEFINE_TO_JSON(runtime, RuntimeSpec, GOSSIP_SPEC_RUNTIME_FIELDS)
GOSSIP_DEFINE_TO_JSON(sweep, SweepSpec, GOSSIP_SPEC_SWEEP_FIELDS)

/// Throws on keys `obj` holds that `allowed` does not list.
void reject_unknown_keys(const json::Value& obj, const char* context,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.as_object()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      const std::string suggestion = nearest_key(key, allowed);
      throw SpecError(
          std::string("spec: unknown field '") + key + "' in " + context +
          (suggestion.empty() ? ""
                              : " (did you mean '" + suggestion + "'?)"));
    }
  }
}

double get_probability(const json::Value& v, const char* field) {
  double d = 0.0;
  try {
    d = v.as_double();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a number");
  }
  if (!(d >= 0.0 && d <= 1.0)) {
    throw SpecError(std::string("spec: ") + field +
                    " must be a probability in [0,1], got " +
                    std::to_string(d));
  }
  return d;
}

std::uint64_t get_u64(const json::Value& v, const char* field) {
  try {
    return v.as_u64();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field +
                    " must be a non-negative integer");
  }
}

double get_double(const json::Value& v, const char* field) {
  try {
    return v.as_double();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a number");
  }
}

std::string get_string(const json::Value& v, const char* field) {
  try {
    return v.as_string();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a string");
  }
}

bool get_bool(const json::Value& v, const char* field) {
  try {
    return v.as_bool();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a boolean");
  }
}

// GOSSIP_PARSE_<tag>: assignment from a found json::Value pointer `gv`;
// `ctx` is the dotted path that SpecError messages name.
#define GOSSIP_PARSE_STR(lhs, ctx, extra) lhs = get_string(*gv, ctx)
#define GOSSIP_PARSE_U32(lhs, ctx, extra) \
  lhs = static_cast<std::uint32_t>(get_u64(*gv, ctx))
#define GOSSIP_PARSE_U64(lhs, ctx, extra) lhs = get_u64(*gv, ctx)
#define GOSSIP_PARSE_UNS(lhs, ctx, extra) \
  lhs = static_cast<unsigned>(get_u64(*gv, ctx))
#define GOSSIP_PARSE_SIZE(lhs, ctx, extra) \
  lhs = static_cast<std::size_t>(get_u64(*gv, ctx))
#define GOSSIP_PARSE_DBL(lhs, ctx, extra) lhs = get_double(*gv, ctx)
#define GOSSIP_PARSE_PROB(lhs, ctx, extra) lhs = get_probability(*gv, ctx)
#define GOSSIP_PARSE_BOOL(lhs, ctx, extra) lhs = get_bool(*gv, ctx)
#define GOSSIP_PARSE_ENUM(lhs, ctx, extra) \
  lhs = value_of(extra, get_string(*gv, ctx), ctx)
#define GOSSIP_PARSE_OBJ(lhs, ctx, extra) lhs = extra##_from_json(*gv)
#define GOSSIP_PARSE_PTS(lhs, ctx, extra) lhs = sweep_points_from_json(*gv)

// One `if (found) parse` per row. GOSSIP_PARSE_PREFIX is the dotted
// context prefix of the group currently being expanded ("" at top
// level) — string-literal concatenation builds "failure." "cycle".
#define GOSSIP_PARSE_ONE(member, json_key, tag, extra, dflt, emit, set_tok, \
                         set_key, sweep)                                    \
  if (const auto* gv = v.find(json_key)) {                                  \
    GOSSIP_PARSE_##tag(obj.member, GOSSIP_PARSE_PREFIX json_key, extra);    \
  }

// The allowed-key list for reject_unknown_keys (trailing comma is fine
// in a braced list).
#define GOSSIP_KEY_ONE(member, json_key, tag, extra, dflt, emit, set_tok, \
                       set_key, sweep)                                    \
  json_key,

#define GOSSIP_DEFINE_FROM_JSON(name, Type, FIELDS)         \
  Type name##_from_json(const json::Value& v) {             \
    if (v.kind() != json::Kind::kObject) {                  \
      throw SpecError("spec: " #name " must be an object"); \
    }                                                       \
    reject_unknown_keys(v, #name, {FIELDS(GOSSIP_KEY_ONE)}); \
    Type obj;                                               \
    FIELDS(GOSSIP_PARSE_ONE)                                \
    return obj;                                             \
  }

std::vector<SweepPoint> sweep_points_from_json(const json::Value& pts) {
  if (pts.kind() != json::Kind::kArray) {
    throw SpecError("spec: sweep.points must be an array");
  }
  std::vector<SweepPoint> out;
  for (const json::Value& v : pts.as_array()) {
    if (v.kind() != json::Kind::kObject) {
      throw SpecError("spec: sweep.points entries must be objects");
    }
    reject_unknown_keys(v, "sweep.points",
                        {GOSSIP_SPEC_SWEEP_POINT_FIELDS(GOSSIP_KEY_ONE)});
    SweepPoint obj;
#define GOSSIP_PARSE_PREFIX "sweep.points."
    GOSSIP_SPEC_SWEEP_POINT_FIELDS(GOSSIP_PARSE_ONE)
#undef GOSSIP_PARSE_PREFIX
    out.push_back(std::move(obj));
  }
  return out;
}

#define GOSSIP_PARSE_PREFIX "topology."
GOSSIP_DEFINE_FROM_JSON(topology, TopologyConfig, GOSSIP_SPEC_TOPOLOGY_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "failure."
GOSSIP_DEFINE_FROM_JSON(failure, FailureSpec, GOSSIP_SPEC_FAILURE_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "comm."
GOSSIP_DEFINE_FROM_JSON(comm, CommSpec, GOSSIP_SPEC_COMM_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "adversary."
GOSSIP_DEFINE_FROM_JSON(adversary, AdversarySpec,
                        GOSSIP_SPEC_ADVERSARY_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "combine."
GOSSIP_DEFINE_FROM_JSON(combine, CombineSpec, GOSSIP_SPEC_COMBINE_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "drift."
GOSSIP_DEFINE_FROM_JSON(drift, DriftSpec, GOSSIP_SPEC_DRIFT_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "service."
GOSSIP_DEFINE_FROM_JSON(service, ServiceSpec, GOSSIP_SPEC_SERVICE_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "runtime."
GOSSIP_DEFINE_FROM_JSON(runtime, RuntimeSpec, GOSSIP_SPEC_RUNTIME_FIELDS)
#undef GOSSIP_PARSE_PREFIX
#define GOSSIP_PARSE_PREFIX "sweep."
GOSSIP_DEFINE_FROM_JSON(sweep, SweepSpec, GOSSIP_SPEC_SWEEP_FIELDS)
#undef GOSSIP_PARSE_PREFIX

}  // namespace

std::string to_json(const ScenarioSpec& spec, int indent) {
  const ScenarioSpec& obj = spec;
  json::Value o = json::Object{};
  GOSSIP_SPEC_TOP_FIELDS(GOSSIP_SER_ONE)
  return o.dump(indent);
}

ScenarioSpec spec_from_json(const std::string& text) {
  json::Value root = [&] {
    try {
      return json::parse(text);
    } catch (const json::Error& e) {
      throw SpecError(std::string("spec: invalid JSON: ") + e.what());
    }
  }();
  if (root.kind() != json::Kind::kObject) {
    throw SpecError("spec: top level must be a JSON object");
  }
  reject_unknown_keys(root, "spec", {GOSSIP_SPEC_TOP_FIELDS(GOSSIP_KEY_ONE)});

  ScenarioSpec obj;
  const json::Value& v = root;
#define GOSSIP_PARSE_PREFIX ""
  GOSSIP_SPEC_TOP_FIELDS(GOSSIP_PARSE_ONE)
#undef GOSSIP_PARSE_PREFIX
  validate(obj);
  return obj;
}

// ------------------------------------------------------------ validation

void validate(const ScenarioSpec& spec) {
  const auto fail = [](const std::string& message) {
    throw SpecError("spec: " + message);
  };
  if (spec.name.empty()) fail("'name' must be a non-empty string");
  if (spec.nodes < 2) {
    fail("nodes must be >= 2, got " + std::to_string(spec.nodes));
  }
  if (spec.cycles == 0) fail("cycles must be >= 1");
  // The packed 32-bit newscast timestamp (membership::CacheEntry) must
  // hold every logical time a run can stamp; cycle drivers stamp up to
  // cycles + 1.
  if (spec.cycles > 4294967294u) {
    fail("cycles must fit the packed 32-bit logical clock "
         "(<= 4294967294), got " +
         std::to_string(spec.cycles));
  }
  if (spec.reps == 0) fail("reps must be >= 1");
  if (spec.instances == 0) fail("instances must be >= 1");
  // The estimate arrays are flat [node * instances + i]; a product past
  // 2^32 lanes would overflow the packed lane index (and the allocation
  // would be tens of GB). Reject at validation, mirroring the 32-bit
  // clock guard above — never clamp silently.
  if (static_cast<std::uint64_t>(spec.nodes) * spec.instances >
      4294967295ULL) {
    fail("nodes * instances must fit the packed 32-bit lane index "
         "(<= 4294967295), got " +
         std::to_string(static_cast<std::uint64_t>(spec.nodes) *
                        spec.instances));
  }
  if (spec.aggregate == AggregateKind::kCount &&
      spec.instances > spec.nodes) {
    fail("instances must be <= nodes (each COUNT instance needs a "
         "distinct leader), got " +
         std::to_string(spec.instances) + " instances over " +
         std::to_string(spec.nodes) + " nodes");
  }
  if (spec.aggregate == AggregateKind::kAverage && spec.instances != 1) {
    fail("aggregate 'average' requires instances == 1, got " +
         std::to_string(spec.instances));
  }
  if (spec.aggregate == AggregateKind::kCount &&
      spec.init != InitKind::kPeak) {
    fail("aggregate 'count' fixes the initial distribution; init must be "
         "'peak', got '" +
         to_string(spec.init) + "'");
  }
  if (!(spec.topology.beta >= 0.0 && spec.topology.beta <= 1.0)) {
    fail("topology.beta must be in [0,1], got " +
         std::to_string(spec.topology.beta));
  }
  if (spec.topology.kind == TopologyKind::kNewscast &&
      spec.topology.cache_size < 2) {
    fail("topology.cache_size must be >= 2 for newscast, got " +
         std::to_string(spec.topology.cache_size));
  }
  if (spec.topology.kind != TopologyKind::kComplete &&
      spec.topology.kind != TopologyKind::kNewscast &&
      spec.topology.degree == 0) {
    fail("topology.degree must be >= 1 for static topologies");
  }
  if (!(spec.failure.p >= 0.0 && spec.failure.p <= 1.0)) {
    fail("failure.p must be in [0,1], got " + std::to_string(spec.failure.p));
  }
  if (!(spec.failure.fraction >= 0.0 && spec.failure.fraction <= 1.0)) {
    fail("failure.fraction must be in [0,1], got " +
         std::to_string(spec.failure.fraction));
  }
  if (spec.failure.kind == FailureSpec::Kind::kCorrelatedWaves) {
    if (spec.failure.waves < 1) {
      fail("failure.waves must be >= 1 for correlated_waves, got " +
           std::to_string(spec.failure.waves));
    }
    if (static_cast<std::uint32_t>(spec.nodes * spec.failure.fraction) == 0) {
      fail("correlated_waves wave width floor(nodes * fraction) must be "
           ">= 1 (nodes " +
           std::to_string(spec.nodes) + ", fraction " +
           std::to_string(spec.failure.fraction) + ")");
    }
  }
  if (spec.failure.kind == FailureSpec::Kind::kPartition) {
    if (spec.failure.components < 2) {
      fail("failure.components must be >= 2 for partition, got " +
           std::to_string(spec.failure.components));
    }
    if (spec.failure.duration < 1) {
      fail("failure.duration must be >= 1 for partition, got " +
           std::to_string(spec.failure.duration));
    }
  }
  if (spec.failure.kind == FailureSpec::Kind::kRestart) {
    if (spec.failure.cycle < 1) {
      fail("failure.cycle is the restart period for kind 'restart'; "
           "it must be >= 1");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("failure kind 'restart' re-seeds initial estimates and "
           "requires aggregate 'average'");
    }
  }
  if (!(spec.adversary.fraction >= 0.0 && spec.adversary.fraction < 1.0)) {
    fail("adversary.fraction must be in [0,1), got " +
         std::to_string(spec.adversary.fraction));
  }
  if (spec.adversary.behavior == AdversarySpec::Behavior::kNone &&
      spec.adversary.fraction > 0.0) {
    fail("adversary.fraction > 0 requires an adversary.behavior "
         "(value_inject|always_max|cache_pollute)");
  }
  if (spec.adversary.behavior != AdversarySpec::Behavior::kNone) {
    if (spec.driver != DriverKind::kCycle) {
      fail("adversary.behavior requires driver 'cycle', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("adversary.behavior requires aggregate 'average', got '" +
           to_string(spec.aggregate) + "'");
    }
    if (!std::isfinite(spec.adversary.value)) {
      fail("adversary.value must be finite");
    }
    if (spec.adversary.behavior != AdversarySpec::Behavior::kValueInject &&
        spec.adversary.value != 0.0) {
      fail("adversary.value is only meaningful for behavior "
           "'value_inject'; leave it at 0");
    }
  }
  if (spec.combine.kind == CombineSpec::Kind::kTrimmedMean) {
    if (!(spec.combine.alpha > 0.0 && spec.combine.alpha < 0.5)) {
      fail("combine.alpha must be in (0,0.5) for trimmed_mean, got " +
           std::to_string(spec.combine.alpha));
    }
  } else if (spec.combine.alpha != 0.0) {
    fail("combine.alpha is only meaningful for kind 'trimmed_mean'; "
         "leave it at 0");
  }
  if (spec.combine.kind == CombineSpec::Kind::kMedianOfMeans) {
    if (spec.combine.groups < 1) {
      fail("combine.groups must be >= 1 for median_of_means");
    }
    if (spec.combine.groups > spec.combine.window + 1) {
      fail("combine.groups must be <= combine.window + 1 (each group "
           "needs at least one report), got groups " +
           std::to_string(spec.combine.groups) + " with window " +
           std::to_string(spec.combine.window));
    }
  } else if (spec.combine.groups != 0) {
    fail("combine.groups is only meaningful for kind 'median_of_means'; "
         "leave it at 0");
  }
  if (spec.combine.window < 2 || spec.combine.window > 64) {
    fail("combine.window must be in [2,64], got " +
         std::to_string(spec.combine.window));
  }
  if (spec.combine.kind != CombineSpec::Kind::kMean) {
    if (spec.driver != DriverKind::kCycle) {
      fail("robust combine kinds require driver 'cycle', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("robust combine kinds require aggregate 'average', got '" +
           to_string(spec.aggregate) + "'");
    }
  }
  if (spec.drift.kind == DriftSpec::Kind::kNone) {
    if (spec.drift.rate != 0.0 || spec.drift.magnitude != 0.0 ||
        spec.drift.start_cycle != 0) {
      fail("drift kind 'none' takes no parameters; leave rate, magnitude "
           "and start_cycle at 0");
    }
  } else {
    if (spec.driver != DriverKind::kCycle &&
        spec.driver != DriverKind::kRuntime) {
      fail("drift requires driver 'cycle' or 'runtime', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("drift tracks a moving mean and requires aggregate 'average', "
           "got '" +
           to_string(spec.aggregate) + "'");
    }
    if (spec.drift.start_cycle >= spec.cycles) {
      fail("drift.start_cycle must be < cycles (a drift that starts after "
           "the run ends is a no-op), got " +
           std::to_string(spec.drift.start_cycle) + " with cycles " +
           std::to_string(spec.cycles));
    }
    if (spec.drift.kind == DriftSpec::Kind::kStep) {
      if (!std::isfinite(spec.drift.magnitude) ||
          spec.drift.magnitude == 0.0) {
        fail("drift.magnitude must be finite and non-zero for kind "
             "'step', got " +
             std::to_string(spec.drift.magnitude));
      }
      if (spec.drift.rate != 0.0) {
        fail("drift.rate is only meaningful for kinds "
             "'linear'/'random_walk'; leave it at 0 for 'step'");
      }
    } else {  // linear / random_walk
      if (!std::isfinite(spec.drift.rate) || spec.drift.rate == 0.0 ||
          std::abs(spec.drift.rate) > 1e6) {
        fail("drift.rate must be finite, non-zero and within [-1e6,1e6] "
             "for kind '" +
             to_string(spec.drift.kind) + "', got " +
             std::to_string(spec.drift.rate));
      }
      if (spec.drift.magnitude != 0.0) {
        fail("drift.magnitude is only meaningful for kind 'step'; leave "
             "it at 0");
      }
    }
  }
  if (!spec.service.pipeline) {
    if (spec.service.epoch_cycles != 0 || spec.service.staleness_bound != 0) {
      fail("service parameters need service.pipeline = true; leave "
           "epoch_cycles and staleness_bound at 0");
    }
  } else {
    if (spec.driver != DriverKind::kCycle) {
      fail("service.pipeline requires driver 'cycle', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("service.pipeline publishes the scalar mean and requires "
           "aggregate 'average', got '" +
           to_string(spec.aggregate) + "'");
    }
    if (spec.service.epoch_cycles < 1 ||
        spec.service.epoch_cycles > spec.cycles) {
      fail("service.epoch_cycles must be in [1, cycles] (an epoch longer "
           "than the run never publishes), got " +
           std::to_string(spec.service.epoch_cycles) + " with cycles " +
           std::to_string(spec.cycles));
    }
    if (spec.service.staleness_bound < 1) {
      fail("service.staleness_bound must be >= 1 (a freshly published "
           "snapshot is already 1 cycle old when queried)");
    }
    if (spec.failure.kind == FailureSpec::Kind::kRestart) {
      fail("service.pipeline replaces epoch restarts; failure.kind "
           "'restart' is incompatible");
    }
  }
  if (!(spec.comm.link_failure >= 0.0 && spec.comm.link_failure <= 1.0)) {
    fail("comm.link_failure must be a probability in [0,1], got " +
         std::to_string(spec.comm.link_failure));
  }
  if (!(spec.comm.message_loss >= 0.0 && spec.comm.message_loss <= 1.0)) {
    fail("comm.message_loss must be a probability in [0,1], got " +
         std::to_string(spec.comm.message_loss));
  }
  if (spec.sweep.points.empty()) {
    fail("sweep.points must hold at least one point (use sweep axis 'none' "
         "with a single seed_point for unswept runs)");
  }
  if (spec.sweep.axis == SweepAxis::kNone && spec.sweep.points.size() != 1) {
    fail("sweep axis 'none' requires exactly one point, got " +
         std::to_string(spec.sweep.points.size()));
  }
  // Sweep point values feed unsigned casts in at_point(); every axis
  // range-checks its points so a validated spec can never drive an
  // out-of-range cast (UB) or a silently-degenerate run.
  const auto check_points = [&](double lo, double hi, const char* what) {
    for (const SweepPoint& pt : spec.sweep.points) {
      if (!(pt.value >= lo && pt.value <= hi)) {
        fail(std::string("sweep axis '") + to_string(spec.sweep.axis) +
             "' points must be " + what + ", got " +
             std::to_string(pt.value));
      }
    }
  };
  constexpr double kMaxU32 = 4294967295.0;
  switch (spec.sweep.axis) {
    case SweepAxis::kNone:
      break;
    case SweepAxis::kNodes:
      check_points(2.0, kMaxU32, "network sizes >= 2");
      break;
    case SweepAxis::kCacheSize:
      check_points(2.0, kMaxU32, "cache sizes >= 2");
      break;
    case SweepAxis::kDeathCycle:
      check_points(0.0, kMaxU32, "cycle indices >= 0");
      break;
    case SweepAxis::kInstances:
      check_points(1.0, kMaxU32, "instance counts >= 1");
      if (spec.aggregate != AggregateKind::kCount) {
        fail("sweep axis 'instances' requires aggregate 'count'");
      }
      // Each point becomes the instances field at at_point(): the same
      // lane-index overflow and leader-count guards as the top-level
      // field, checked here so a sweep can't smuggle in a degenerate
      // point.
      for (const SweepPoint& pt : spec.sweep.points) {
        const auto t = static_cast<std::uint64_t>(pt.value);
        if (static_cast<std::uint64_t>(spec.nodes) * t > 4294967295ULL) {
          fail("nodes * instances must fit the packed 32-bit lane index "
               "(<= 4294967295), got " +
               std::to_string(static_cast<std::uint64_t>(spec.nodes) * t) +
               " at sweep point " + std::to_string(pt.value));
        }
        if (t > spec.nodes) {
          fail("instances must be <= nodes (each COUNT instance needs a "
               "distinct leader), got " +
               std::to_string(t) + " instances over " +
               std::to_string(spec.nodes) + " nodes at sweep point " +
               std::to_string(pt.value));
        }
      }
      break;
    case SweepAxis::kCycles:
      check_points(1.0, kMaxU32, "cycle counts >= 1");
      break;
    case SweepAxis::kBeta:
    case SweepAxis::kCrashP:
    case SweepAxis::kChurnFraction:
    case SweepAxis::kLinkP:
    case SweepAxis::kLossP:
      check_points(0.0, 1.0, "probabilities in [0,1]");
      break;
    case SweepAxis::kAtomicity:
      check_points(0.0, 1.0, "0 (off) or 1 (on)");
      break;
    case SweepAxis::kInit:
      check_points(0.0, static_cast<double>(InitKind::kExponential),
                   "0..3 (peak/uniform/bimodal/exponential)");
      if (spec.aggregate != AggregateKind::kAverage) {
        fail("sweep axis 'init' requires aggregate 'average' (COUNT fixes "
             "the initial distribution)");
      }
      break;
    case SweepAxis::kByzFraction:
      // Closed-interval helper, then reject the open end by hand.
      check_points(0.0, 1.0, "byzantine fractions in [0,1)");
      for (const SweepPoint& pt : spec.sweep.points) {
        if (pt.value >= 1.0) {
          fail("sweep axis 'byz_fraction' points must be byzantine "
               "fractions in [0,1), got " +
               std::to_string(pt.value));
        }
      }
      if (spec.adversary.behavior == AdversarySpec::Behavior::kNone) {
        fail("sweep axis 'byz_fraction' requires an adversary.behavior "
             "(sweeping the fraction of a 'none' adversary is a no-op)");
      }
      break;
    case SweepAxis::kPartitionComponents:
      check_points(2.0, kMaxU32, "component counts >= 2");
      if (spec.failure.kind != FailureSpec::Kind::kPartition) {
        fail("sweep axis 'partition_components' requires failure.kind "
             "'partition', got '" +
             to_string(spec.failure.kind) + "'");
      }
      break;
    case SweepAxis::kPartitionDuration:
      check_points(1.0, kMaxU32, "partitioned cycle counts >= 1");
      if (spec.failure.kind != FailureSpec::Kind::kPartition) {
        fail("sweep axis 'partition_duration' requires failure.kind "
             "'partition', got '" +
             to_string(spec.failure.kind) + "'");
      }
      break;
  }
  // Drivers must reject spec fields they would otherwise silently drop —
  // a churn plan on a driver that never executes it would produce a
  // clean no-failure series labeled as a churn run.
  if (spec.driver == DriverKind::kEvent) {
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("driver 'event' supports aggregate 'average' only");
    }
    // Event-engine descriptors are stamped with simulated microseconds
    // (cycle_length = 10⁶ µs, proto::NodeConfig), which must fit the
    // packed 32-bit logical clock of membership::CacheEntry.
    if (spec.cycles > 4294u) {
      fail("driver 'event' stamps simulated microseconds into the packed "
           "32-bit logical clock; cycles must be <= 4294, got " +
           std::to_string(spec.cycles));
    }
    if (spec.sweep.axis != SweepAxis::kNone &&
        spec.sweep.axis != SweepAxis::kAtomicity &&
        spec.sweep.axis != SweepAxis::kNodes) {
      fail("driver 'event' supports sweep axes none|atomicity|nodes, got '" +
           to_string(spec.sweep.axis) + "'");
    }
    if (spec.failure.kind != FailureSpec::Kind::kNone) {
      fail("driver 'event' does not execute a failure plan; failure.kind "
           "must be 'none' (got '" +
           to_string(spec.failure.kind) + "')");
    }
    if (spec.comm.link_failure != 0.0) {
      fail("driver 'event' models message loss only; comm.link_failure "
           "must be 0");
    }
    if (spec.init != InitKind::kPeak) {
      fail("driver 'event' supports init 'peak' only, got '" +
           to_string(spec.init) + "'");
    }
    if (!(spec.topology == TopologyConfig{})) {
      fail("driver 'event' uses its own bootstrap membership and ignores "
           "topology; leave topology at its default");
    }
  }
  if (spec.driver == DriverKind::kPushSum) {
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("driver 'push_sum' supports aggregate 'average' only");
    }
    if (spec.failure.kind != FailureSpec::Kind::kNone) {
      fail("driver 'push_sum' does not execute a failure plan; "
           "failure.kind must be 'none' (got '" +
           to_string(spec.failure.kind) + "')");
    }
    if (spec.comm.link_failure != 0.0) {
      fail("driver 'push_sum' models message loss only; "
           "comm.link_failure must be 0");
    }
  }
  if (spec.driver == DriverKind::kRuntime) {
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("driver 'runtime' supports aggregate 'average' only");
    }
    if (!spec.atomic_exchanges) {
      fail("driver 'runtime' always runs atomic exchanges (the busy-NACK "
           "rule); atomic_exchanges must stay true");
    }
    if (spec.engine != EngineKind::kAuto &&
        spec.engine != EngineKind::kSerial) {
      fail("driver 'runtime' hosts its own worker threads; engine must be "
           "'auto' or 'serial', got '" +
           to_string(spec.engine) + "'");
    }
    if (spec.comm.link_failure != 0.0) {
      fail("driver 'runtime' models per-message loss only; "
           "comm.link_failure must be 0");
    }
    switch (spec.failure.kind) {
      case FailureSpec::Kind::kNone:
      case FailureSpec::Kind::kProportionalCrash:
      case FailureSpec::Kind::kSuddenDeath:
      case FailureSpec::Kind::kChurn:
      case FailureSpec::Kind::kChurnFraction:
      case FailureSpec::Kind::kConstantCrash:
      case FailureSpec::Kind::kCorrelatedWaves:
        break;
      default:
        fail("driver 'runtime' supports failure kinds "
             "none|proportional_crash|sudden_death|churn|churn_fraction|"
             "constant_crash|correlated_waves, got '" +
             to_string(spec.failure.kind) + "'");
    }
    if ((spec.failure.kind == FailureSpec::Kind::kChurn ||
         spec.failure.kind == FailureSpec::Kind::kChurnFraction) &&
        spec.topology.kind != TopologyKind::kNewscast) {
      fail("runtime churn joiners bootstrap through newscast caches; "
           "churn failure kinds require topology.kind 'newscast', got '" +
           to_string(spec.topology.kind) + "'");
    }
    if (spec.sweep.axis != SweepAxis::kNone &&
        spec.sweep.axis != SweepAxis::kNodes &&
        spec.sweep.axis != SweepAxis::kLossP) {
      fail("driver 'runtime' supports sweep axes none|nodes|loss_p, got '" +
           to_string(spec.sweep.axis) + "'");
    }
    const RuntimeSpec& r = spec.runtime;
    if (r.workers > 256) {
      fail("runtime.workers must be <= 256, got " +
           std::to_string(r.workers));
    }
    if (r.wheel_slots < 1 || r.wheel_slots > 1024) {
      fail("runtime.wheel_slots must be in [1,1024], got " +
           std::to_string(r.wheel_slots));
    }
    if (r.delta_us > 10000000u) {
      fail("runtime.delta_us must be <= 10000000 (10 s per cycle), got " +
           std::to_string(r.delta_us));
    }
    if (r.timeout_ms < 1 || r.timeout_ms > 600000u) {
      fail("runtime.timeout_ms must be in [1,600000], got " +
           std::to_string(r.timeout_ms));
    }
    switch (r.latency) {
      case RuntimeSpec::LatencyKind::kNone:
        if (r.delay_lo_us != 0 || r.delay_hi_us != 0) {
          fail("runtime.latency 'none' takes no delay parameters; leave "
               "delay_lo_us and delay_hi_us at 0");
        }
        break;
      case RuntimeSpec::LatencyKind::kFixed:
        if (r.delay_lo_us < 1 || r.delay_hi_us != 0) {
          fail("runtime.latency 'fixed' uses delay_lo_us (>= 1) as the "
               "delay and leaves delay_hi_us at 0");
        }
        break;
      case RuntimeSpec::LatencyKind::kUniform:
        if (r.delay_hi_us < 1 || r.delay_lo_us > r.delay_hi_us) {
          fail("runtime.latency 'uniform' needs delay_lo_us <= delay_hi_us "
               "with delay_hi_us >= 1");
        }
        break;
      case RuntimeSpec::LatencyKind::kExponential:
        if (r.delay_hi_us < 1) {
          fail("runtime.latency 'exponential' uses delay_lo_us as base and "
               "delay_hi_us (>= 1) as the tail mean");
        }
        break;
    }
    if (r.transport == RuntimeSpec::TransportKind::kLoopback) {
      if (r.processes != 1 || r.process_index != 0 || r.port_base != 0) {
        fail("runtime.transport 'loopback' is single-process; leave "
             "processes at 1, process_index and port_base at 0");
      }
    } else {  // socket
      if (r.processes < 2 || r.processes > 64) {
        fail("runtime.transport 'socket' needs processes in [2,64], got " +
             std::to_string(r.processes));
      }
      if (r.process_index >= r.processes) {
        fail("runtime.process_index must be < runtime.processes, got " +
             std::to_string(r.process_index) + " with " +
             std::to_string(r.processes) + " processes");
      }
      if (r.port_base < 1024 || r.port_base + r.processes - 1 > 65535u) {
        fail("runtime.port_base must leave ports base..base+processes-1 "
             "inside [1024,65535], got " +
             std::to_string(r.port_base));
      }
      if (spec.reps != 1) {
        fail("runtime.transport 'socket' runs cooperating processes and "
             "requires reps == 1, got " +
             std::to_string(spec.reps));
      }
      if (spec.sweep.axis != SweepAxis::kNone) {
        fail("runtime.transport 'socket' requires sweep axis 'none' "
             "(every process must execute the identical point)");
      }
      if (spec.failure.kind != FailureSpec::Kind::kNone) {
        fail("runtime.transport 'socket' does not coordinate a failure "
             "plan across processes; failure.kind must be 'none'");
      }
      if (spec.nodes < 2 * r.processes) {
        fail("runtime.transport 'socket' needs nodes >= 2 * processes so "
             "every process hosts at least two nodes, got " +
             std::to_string(spec.nodes) + " nodes over " +
             std::to_string(r.processes) + " processes");
      }
    }
  } else if (!(spec.runtime == RuntimeSpec{})) {
    fail("runtime.* fields require driver 'runtime', got driver '" +
         to_string(spec.driver) + "'");
  }
  if (spec.engine == EngineKind::kIntraRep &&
      spec.driver != DriverKind::kCycle) {
    fail("engine 'intra_rep' requires driver 'cycle', got driver '" +
         to_string(spec.driver) + "'");
  }
  if (spec.match_rounds < 1 || spec.match_rounds > 16) {
    fail("match_rounds must be in [1,16], got " +
         std::to_string(spec.match_rounds));
  }
  if (spec.match_rounds > 1 && spec.engine != EngineKind::kIntraRep) {
    // Only the intra-rep engine has a match phase; every other engine
    // would silently drop the field and mislabel the series.
    fail("match_rounds > 1 requires engine 'intra_rep' (other engines "
         "have no match phase), got engine '" +
         to_string(spec.engine) + "'");
  }
}

// ------------------------------------------------------------------ hash

std::uint64_t fnv1a64(std::uint64_t h, const std::string& text) {
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::uint64_t spec_hash(const ScenarioSpec& spec) {
  return fnv1a64(kFnvOffsetBasis, to_json(spec, /*indent=*/-1));
}

std::string spec_hash_hex(const ScenarioSpec& spec) {
  return hex64(spec_hash(spec));
}

// ------------------------------------------------------------- overrides

EngineKind engine_kind_from_string(const std::string& name) {
  return value_of(kEngineNames, name, "engine");
}

std::uint64_t parse_u64_field(const std::string& field,
                              const std::string& value) {
  // std::stoull would silently wrap a leading minus ("-1" -> 2^64-1);
  // anything that does not start with a digit is rejected up front.
  const bool starts_with_digit =
      !value.empty() && value.front() >= '0' && value.front() <= '9';
  try {
    if (!starts_with_digit) throw std::invalid_argument(value);
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (...) {
    throw SpecError("spec: --set " + field +
                    " expects an unsigned integer, got '" + value + "'");
  }
}

namespace {

/// Plain O(len²) Levenshtein distance — keys are a dozen characters.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t subst = diag + (a[i - 1] != b[j - 1] ? 1 : 0);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

namespace {

template <typename Range>
std::string nearest_key_in(const std::string& key, const Range& valid) {
  std::string best;
  std::size_t best_distance = 0;
  for (const char* candidate : valid) {
    const std::size_t d = edit_distance(key, candidate);
    if (best.empty() || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  // Only suggest plausible typos: within 2 edits, or 1/3 of the key for
  // longer names ("agregate" -> aggregate, "match-rounds" ->
  // match_rounds) — never "warp" -> "reps".
  const std::size_t budget = std::max<std::size_t>(2, key.size() / 3);
  return best_distance <= budget ? best : std::string();
}

}  // namespace

std::string nearest_key(const std::string& key,
                        std::initializer_list<const char*> valid) {
  return nearest_key_in(key, valid);
}

std::string nearest_key(const std::string& key,
                        const std::vector<const char*>& valid) {
  return nearest_key_in(key, valid);
}

// ---------------------------------------------------------- introspection

const std::vector<SpecFieldDescriptor>& spec_field_table() {
#define GOSSIP_DESC_ONE(member, json_key, tag, extra, dflt, emit, set_tok, \
                        set_key, sweep)                                    \
  {GOSSIP_DESC_GROUP, #member, GOSSIP_DESC_PREFIX json_key, #tag, dflt,    \
   #emit, set_key, sweep},
  static const std::vector<SpecFieldDescriptor> table = {
#define GOSSIP_DESC_GROUP "top"
#define GOSSIP_DESC_PREFIX ""
      GOSSIP_SPEC_TOP_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "topology"
#define GOSSIP_DESC_PREFIX "topology."
      GOSSIP_SPEC_TOPOLOGY_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "failure"
#define GOSSIP_DESC_PREFIX "failure."
      GOSSIP_SPEC_FAILURE_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "comm"
#define GOSSIP_DESC_PREFIX "comm."
      GOSSIP_SPEC_COMM_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "adversary"
#define GOSSIP_DESC_PREFIX "adversary."
      GOSSIP_SPEC_ADVERSARY_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "combine"
#define GOSSIP_DESC_PREFIX "combine."
      GOSSIP_SPEC_COMBINE_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "drift"
#define GOSSIP_DESC_PREFIX "drift."
      GOSSIP_SPEC_DRIFT_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "service"
#define GOSSIP_DESC_PREFIX "service."
      GOSSIP_SPEC_SERVICE_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "runtime"
#define GOSSIP_DESC_PREFIX "runtime."
      GOSSIP_SPEC_RUNTIME_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "sweep"
#define GOSSIP_DESC_PREFIX "sweep."
      GOSSIP_SPEC_SWEEP_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
#define GOSSIP_DESC_GROUP "sweep.points"
#define GOSSIP_DESC_PREFIX "sweep.points."
      GOSSIP_SPEC_SWEEP_POINT_FIELDS(GOSSIP_DESC_ONE)
#undef GOSSIP_DESC_GROUP
#undef GOSSIP_DESC_PREFIX
  };
  return table;
}

const std::vector<const char*>& spec_set_keys() {
#define GOSSIP_SETKEY_SET(set_key) set_key,
#define GOSSIP_SETKEY_NOSET(set_key)
#define GOSSIP_SETKEY_ONE(member, json_key, tag, extra, dflt, emit, set_tok, \
                          set_key, sweep)                                    \
  GOSSIP_SETKEY_##set_tok(set_key)
  static const std::vector<const char*> keys = {
      GOSSIP_SPEC_TOP_FIELDS(GOSSIP_SETKEY_ONE)
      GOSSIP_SPEC_ADVERSARY_FIELDS(GOSSIP_SETKEY_ONE)
      GOSSIP_SPEC_COMBINE_FIELDS(GOSSIP_SETKEY_ONE)
      GOSSIP_SPEC_DRIFT_FIELDS(GOSSIP_SETKEY_ONE)
      GOSSIP_SPEC_SERVICE_FIELDS(GOSSIP_SETKEY_ONE)
      GOSSIP_SPEC_RUNTIME_FIELDS(GOSSIP_SETKEY_ONE)
  };
  return keys;
}

namespace {

bool parse_set_bool(const char* field, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  throw SpecError(std::string("spec: --set ") + field +
                  " expects true/false, got '" + value + "'");
}

double parse_set_double(const char* field, const std::string& value) {
  try {
    std::size_t used = 0;
    const double d = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return d;
  } catch (...) {
    throw SpecError(std::string("spec: --set ") + field +
                    " expects a number, got '" + value + "'");
  }
}

}  // namespace

void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value) {
// GOSSIP_SETVAL_<tag>: parse `value` into one settable member, with the
// --set key as the error-message field name.
#define GOSSIP_SETVAL_STR(lhs, extra, skey) lhs = value
#define GOSSIP_SETVAL_U32(lhs, extra, skey) \
  lhs = static_cast<std::uint32_t>(parse_u64_field(skey, value))
#define GOSSIP_SETVAL_U64(lhs, extra, skey) lhs = parse_u64_field(skey, value)
#define GOSSIP_SETVAL_UNS(lhs, extra, skey) \
  lhs = static_cast<unsigned>(parse_u64_field(skey, value))
#define GOSSIP_SETVAL_DBL(lhs, extra, skey) lhs = parse_set_double(skey, value)
#define GOSSIP_SETVAL_BOOL(lhs, extra, skey) lhs = parse_set_bool(skey, value)
#define GOSSIP_SETVAL_ENUM(lhs, extra, skey) lhs = value_of(extra, value, skey)
// SET/NOSET dispatch: NOSET rows vanish; SET rows become one `if`.
// GOSSIP_SET_OWNER names the owning object of the group being expanded.
#define GOSSIP_SET_NOSET(member, tag, extra, set_key)
#define GOSSIP_SET_SET(member, tag, extra, set_key)               \
  if (key == set_key) {                                           \
    GOSSIP_SETVAL_##tag(GOSSIP_SET_OWNER.member, extra, set_key); \
    return;                                                       \
  }
#define GOSSIP_SET_ONE(member, json_key, tag, extra, dflt, emit, set_tok, \
                       set_key, sweep)                                    \
  GOSSIP_SET_##set_tok(member, tag, extra, set_key)

#define GOSSIP_SET_OWNER spec
  GOSSIP_SPEC_TOP_FIELDS(GOSSIP_SET_ONE)
#undef GOSSIP_SET_OWNER
#define GOSSIP_SET_OWNER spec.adversary
  GOSSIP_SPEC_ADVERSARY_FIELDS(GOSSIP_SET_ONE)
#undef GOSSIP_SET_OWNER
#define GOSSIP_SET_OWNER spec.combine
  GOSSIP_SPEC_COMBINE_FIELDS(GOSSIP_SET_ONE)
#undef GOSSIP_SET_OWNER
#define GOSSIP_SET_OWNER spec.drift
  GOSSIP_SPEC_DRIFT_FIELDS(GOSSIP_SET_ONE)
#undef GOSSIP_SET_OWNER
#define GOSSIP_SET_OWNER spec.service
  GOSSIP_SPEC_SERVICE_FIELDS(GOSSIP_SET_ONE)
#undef GOSSIP_SET_OWNER
#define GOSSIP_SET_OWNER spec.runtime
  GOSSIP_SPEC_RUNTIME_FIELDS(GOSSIP_SET_ONE)
#undef GOSSIP_SET_OWNER

  std::string supported;
  for (const char* k : spec_set_keys()) {
    if (!supported.empty()) supported += "|";
    supported += k;
  }
  const std::string suggestion = nearest_key(key, spec_set_keys());
  throw SpecError(
      "spec: --set supports " + supported + ", got '" + key + "'" +
      (suggestion.empty() ? "" : " (did you mean '" + suggestion + "'?)"));
}

}  // namespace gossip::experiment
