#include "experiment/spec.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json.hpp"

namespace gossip::experiment {

// ---------------------------------------------------------- FailureSpec

FailureSpec FailureSpec::proportional_crash(double p_fail) {
  FailureSpec f;
  f.kind = Kind::kProportionalCrash;
  f.p = p_fail;
  return f;
}

FailureSpec FailureSpec::sudden_death(std::uint32_t death_cycle,
                                      double fraction) {
  FailureSpec f;
  f.kind = Kind::kSuddenDeath;
  f.cycle = death_cycle;
  f.fraction = fraction;
  return f;
}

FailureSpec FailureSpec::churn(std::uint32_t rate) {
  FailureSpec f;
  f.kind = Kind::kChurn;
  f.rate = rate;
  return f;
}

FailureSpec FailureSpec::churn_fraction(double fraction) {
  FailureSpec f;
  f.kind = Kind::kChurnFraction;
  f.fraction = fraction;
  return f;
}

FailureSpec FailureSpec::constant_crash(std::uint32_t rate) {
  FailureSpec f;
  f.kind = Kind::kConstantCrash;
  f.rate = rate;
  return f;
}

FailureSpec FailureSpec::correlated_waves(std::uint32_t trigger,
                                          std::uint32_t waves,
                                          double fraction) {
  FailureSpec f;
  f.kind = Kind::kCorrelatedWaves;
  f.cycle = trigger;
  f.waves = waves;
  f.fraction = fraction;
  return f;
}

FailureSpec FailureSpec::partition(std::uint32_t start, std::uint32_t duration,
                                   std::uint32_t components) {
  FailureSpec f;
  f.kind = Kind::kPartition;
  f.cycle = start;
  f.duration = duration;
  f.components = components;
  return f;
}

FailureSpec FailureSpec::restart(std::uint32_t period) {
  FailureSpec f;
  f.kind = Kind::kRestart;
  f.cycle = period;
  return f;
}

std::unique_ptr<failure::FailurePlan> FailureSpec::build(
    std::uint32_t nodes) const {
  switch (kind) {
    case Kind::kNone:
      return std::make_unique<failure::NoFailures>();
    case Kind::kProportionalCrash:
      return std::make_unique<failure::ProportionalCrash>(p);
    case Kind::kSuddenDeath:
      return std::make_unique<failure::SuddenDeath>(cycle, fraction);
    case Kind::kChurn:
      return std::make_unique<failure::Churn>(rate);
    case Kind::kChurnFraction:
      // The historical rate arithmetic: truncation of nodes · fraction.
      return std::make_unique<failure::Churn>(
          static_cast<std::uint32_t>(nodes * fraction));
    case Kind::kConstantCrash:
      return std::make_unique<failure::ConstantCrash>(rate);
    case Kind::kCorrelatedWaves:
      return std::make_unique<failure::CorrelatedWaves>(
          cycle, waves, static_cast<std::uint32_t>(nodes * fraction));
    case Kind::kPartition:
      // A partition kills nobody: the drivers enforce it as an exchange
      // filter (SimConfig::partition), wired up by the engine facade.
      return std::make_unique<failure::NoFailures>();
    case Kind::kRestart:
      return std::make_unique<failure::EpochRestart>(cycle);
  }
  throw SpecError("spec: unhandled failure kind");
}

// ------------------------------------------------------------- builders

ScenarioSpec ScenarioSpec::average_peak(std::string name, std::uint32_t nodes,
                                        std::uint32_t cycles) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.nodes = nodes;
  s.cycles = cycles;
  return s;
}

ScenarioSpec ScenarioSpec::count(std::string name, std::uint32_t nodes,
                                 std::uint32_t cycles,
                                 std::uint32_t instances) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.aggregate = AggregateKind::kCount;
  s.nodes = nodes;
  s.cycles = cycles;
  s.instances = instances;
  return s;
}

ScenarioSpec& ScenarioSpec::with_title(std::string t) {
  title = std::move(t);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_topology(TopologyConfig t) {
  topology = t;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_failure(FailureSpec f) {
  failure = f;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_comm(CommSpec c) {
  comm = c;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_adversary(AdversarySpec a) {
  adversary = a;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_combine(CombineSpec c) {
  combine = c;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_drift(DriftSpec d) {
  drift = d;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_service(ServiceSpec s) {
  service = s;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_runtime(RuntimeSpec r) {
  runtime = r;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_init(InitKind k) {
  init = k;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_reps(std::uint32_t r) {
  reps = r;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_engine(EngineKind k) {
  engine = k;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_driver(DriverKind d) {
  driver = d;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_instances(std::uint32_t t) {
  instances = t;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_match_rounds(std::uint32_t r) {
  match_rounds = r;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_sweep(SweepAxis axis,
                                       std::vector<SweepPoint> points) {
  sweep.axis = axis;
  sweep.points = std::move(points);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_seed_point(std::uint64_t seed_point) {
  sweep = SweepSpec::single(seed_point);
  return *this;
}

ScenarioSpec ScenarioSpec::at_point(std::size_t index) const {
  if (index >= sweep.points.size()) {
    throw SpecError("spec: sweep point index " + std::to_string(index) +
                    " out of range (have " +
                    std::to_string(sweep.points.size()) + ")");
  }
  ScenarioSpec s = *this;
  const SweepPoint& pt = sweep.points[index];
  const double v = pt.value;
  switch (sweep.axis) {
    case SweepAxis::kNone:
      break;
    case SweepAxis::kNodes:
      s.nodes = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kBeta:
      s.topology.beta = v;
      break;
    case SweepAxis::kCacheSize:
      s.topology.cache_size = static_cast<std::size_t>(v);
      break;
    case SweepAxis::kCrashP:
      s.failure = FailureSpec::proportional_crash(v);
      break;
    case SweepAxis::kDeathCycle:
      s.failure.kind = FailureSpec::Kind::kSuddenDeath;
      s.failure.cycle = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kChurnFraction:
      s.failure.kind = FailureSpec::Kind::kChurnFraction;
      s.failure.fraction = v;
      break;
    case SweepAxis::kLinkP:
      s.comm.link_failure = v;
      break;
    case SweepAxis::kLossP:
      s.comm.message_loss = v;
      break;
    case SweepAxis::kInstances:
      s.instances = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kCycles:
      s.cycles = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kInit:
      s.init = static_cast<InitKind>(static_cast<int>(v));
      break;
    case SweepAxis::kAtomicity:
      s.atomic_exchanges = v != 0.0;
      break;
    case SweepAxis::kByzFraction:
      s.adversary.fraction = v;
      break;
    case SweepAxis::kPartitionComponents:
      s.failure.components = static_cast<std::uint32_t>(v);
      break;
    case SweepAxis::kPartitionDuration:
      s.failure.duration = static_cast<std::uint32_t>(v);
      break;
  }
  s.sweep.axis = sweep.axis;
  s.sweep.points = {pt};
  return s;
}

// ------------------------------------------------------- enum <-> string

namespace {

template <typename E>
struct NameTable {
  E value;
  const char* name;
};

constexpr NameTable<DriverKind> kDriverNames[] = {
    {DriverKind::kCycle, "cycle"},
    {DriverKind::kEvent, "event"},
    {DriverKind::kPushSum, "push_sum"},
    {DriverKind::kRuntime, "runtime"},
};
constexpr NameTable<AggregateKind> kAggregateNames[] = {
    {AggregateKind::kAverage, "average"},
    {AggregateKind::kCount, "count"},
};
constexpr NameTable<InitKind> kInitNames[] = {
    {InitKind::kPeak, "peak"},
    {InitKind::kUniform, "uniform"},
    {InitKind::kBimodal, "bimodal"},
    {InitKind::kExponential, "exponential"},
};
constexpr NameTable<EngineKind> kEngineNames[] = {
    {EngineKind::kAuto, "auto"},
    {EngineKind::kSerial, "serial"},
    {EngineKind::kRepParallel, "rep_parallel"},
    {EngineKind::kIntraRep, "intra_rep"},
};
constexpr NameTable<TopologyKind> kTopologyNames[] = {
    {TopologyKind::kComplete, "complete"},
    {TopologyKind::kRandomKOut, "random_k_out"},
    {TopologyKind::kRingLattice, "ring_lattice"},
    {TopologyKind::kWattsStrogatz, "watts_strogatz"},
    {TopologyKind::kBarabasiAlbert, "barabasi_albert"},
    {TopologyKind::kNewscast, "newscast"},
};
constexpr NameTable<FailureSpec::Kind> kFailureNames[] = {
    {FailureSpec::Kind::kNone, "none"},
    {FailureSpec::Kind::kProportionalCrash, "proportional_crash"},
    {FailureSpec::Kind::kSuddenDeath, "sudden_death"},
    {FailureSpec::Kind::kChurn, "churn"},
    {FailureSpec::Kind::kChurnFraction, "churn_fraction"},
    {FailureSpec::Kind::kConstantCrash, "constant_crash"},
    {FailureSpec::Kind::kCorrelatedWaves, "correlated_waves"},
    {FailureSpec::Kind::kPartition, "partition"},
    {FailureSpec::Kind::kRestart, "restart"},
};
constexpr NameTable<AdversarySpec::Behavior> kAdversaryNames[] = {
    {AdversarySpec::Behavior::kNone, "none"},
    {AdversarySpec::Behavior::kValueInject, "value_inject"},
    {AdversarySpec::Behavior::kAlwaysMax, "always_max"},
    {AdversarySpec::Behavior::kCachePollute, "cache_pollute"},
};
constexpr NameTable<CombineSpec::Kind> kCombineNames[] = {
    {CombineSpec::Kind::kMean, "mean"},
    {CombineSpec::Kind::kTrimmedMean, "trimmed_mean"},
    {CombineSpec::Kind::kMedianOfMeans, "median_of_means"},
};
constexpr NameTable<DriftSpec::Kind> kDriftNames[] = {
    {DriftSpec::Kind::kNone, "none"},
    {DriftSpec::Kind::kLinear, "linear"},
    {DriftSpec::Kind::kRandomWalk, "random_walk"},
    {DriftSpec::Kind::kStep, "step"},
};
constexpr NameTable<RuntimeSpec::TransportKind> kRuntimeTransportNames[] = {
    {RuntimeSpec::TransportKind::kLoopback, "loopback"},
    {RuntimeSpec::TransportKind::kSocket, "socket"},
};
constexpr NameTable<RuntimeSpec::LatencyKind> kRuntimeLatencyNames[] = {
    {RuntimeSpec::LatencyKind::kNone, "none"},
    {RuntimeSpec::LatencyKind::kFixed, "fixed"},
    {RuntimeSpec::LatencyKind::kUniform, "uniform"},
    {RuntimeSpec::LatencyKind::kExponential, "exponential"},
};
constexpr NameTable<SweepAxis> kAxisNames[] = {
    {SweepAxis::kNone, "none"},
    {SweepAxis::kNodes, "nodes"},
    {SweepAxis::kBeta, "beta"},
    {SweepAxis::kCacheSize, "cache_size"},
    {SweepAxis::kCrashP, "crash_p"},
    {SweepAxis::kDeathCycle, "death_cycle"},
    {SweepAxis::kChurnFraction, "churn_fraction"},
    {SweepAxis::kLinkP, "link_p"},
    {SweepAxis::kLossP, "loss_p"},
    {SweepAxis::kInstances, "instances"},
    {SweepAxis::kCycles, "cycles"},
    {SweepAxis::kInit, "init"},
    {SweepAxis::kAtomicity, "atomicity"},
    {SweepAxis::kByzFraction, "byz_fraction"},
    {SweepAxis::kPartitionComponents, "partition_components"},
    {SweepAxis::kPartitionDuration, "partition_duration"},
};

template <typename E, std::size_t N>
std::string name_of(const NameTable<E> (&table)[N], E value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  throw SpecError("spec: unknown enum value");
}

template <typename E, std::size_t N>
E value_of(const NameTable<E> (&table)[N], const std::string& name,
           const char* field) {
  for (const auto& entry : table) {
    if (name == entry.name) return entry.value;
  }
  std::string valid;
  for (const auto& entry : table) {
    if (!valid.empty()) valid += "|";
    valid += entry.name;
  }
  throw SpecError(std::string("spec: ") + field + " must be one of " + valid +
                  ", got '" + name + "'");
}

}  // namespace

std::string to_string(DriverKind k) { return name_of(kDriverNames, k); }
std::string to_string(AggregateKind k) { return name_of(kAggregateNames, k); }
std::string to_string(InitKind k) { return name_of(kInitNames, k); }
std::string to_string(EngineKind k) { return name_of(kEngineNames, k); }
std::string to_string(TopologyKind k) { return name_of(kTopologyNames, k); }
std::string to_string(FailureSpec::Kind k) {
  return name_of(kFailureNames, k);
}
std::string to_string(SweepAxis k) { return name_of(kAxisNames, k); }
std::string to_string(AdversarySpec::Behavior k) {
  return name_of(kAdversaryNames, k);
}
std::string to_string(CombineSpec::Kind k) {
  return name_of(kCombineNames, k);
}
std::string to_string(DriftSpec::Kind k) {
  return name_of(kDriftNames, k);
}
std::string to_string(RuntimeSpec::TransportKind k) {
  return name_of(kRuntimeTransportNames, k);
}
std::string to_string(RuntimeSpec::LatencyKind k) {
  return name_of(kRuntimeLatencyNames, k);
}

// ----------------------------------------------------------------- JSON

namespace {

json::Value topology_to_json(const TopologyConfig& t) {
  json::Value o = json::Object{};
  o.set("kind", to_string(t.kind));
  o.set("degree", t.degree);
  o.set("beta", t.beta);
  o.set("cache_size", static_cast<std::uint64_t>(t.cache_size));
  return o;
}

json::Value failure_to_json(const FailureSpec& f) {
  json::Value o = json::Object{};
  o.set("kind", to_string(f.kind));
  o.set("p", f.p);
  o.set("cycle", f.cycle);
  o.set("fraction", f.fraction);
  o.set("rate", f.rate);
  // The adversarial-vocabulary fields joined the spec after provenance
  // hashes of the original kinds were pinned in goldens; emitting them
  // only when set keeps every pre-existing spec's canonical JSON (and
  // spec_hash) byte-identical.
  if (f.waves != 0) o.set("waves", f.waves);
  if (f.duration != 0) o.set("duration", f.duration);
  if (f.components != 0) o.set("components", f.components);
  return o;
}

json::Value adversary_to_json(const AdversarySpec& a) {
  json::Value o = json::Object{};
  o.set("behavior", to_string(a.behavior));
  o.set("fraction", a.fraction);
  o.set("value", a.value);
  return o;
}

json::Value combine_to_json(const CombineSpec& c) {
  json::Value o = json::Object{};
  o.set("kind", to_string(c.kind));
  o.set("alpha", c.alpha);
  o.set("groups", c.groups);
  o.set("window", c.window);
  return o;
}

json::Value drift_to_json(const DriftSpec& d) {
  json::Value o = json::Object{};
  o.set("kind", to_string(d.kind));
  o.set("rate", d.rate);
  o.set("magnitude", d.magnitude);
  o.set("start_cycle", d.start_cycle);
  return o;
}

json::Value service_to_json(const ServiceSpec& s) {
  json::Value o = json::Object{};
  o.set("pipeline", s.pipeline);
  o.set("epoch_cycles", s.epoch_cycles);
  o.set("staleness_bound", s.staleness_bound);
  return o;
}

json::Value runtime_to_json(const RuntimeSpec& r) {
  json::Value o = json::Object{};
  o.set("workers", r.workers);
  o.set("wheel_slots", r.wheel_slots);
  o.set("delta_us", r.delta_us);
  o.set("timeout_ms", r.timeout_ms);
  o.set("transport", to_string(r.transport));
  o.set("processes", r.processes);
  o.set("process_index", r.process_index);
  o.set("port_base", r.port_base);
  o.set("latency", to_string(r.latency));
  o.set("delay_lo_us", r.delay_lo_us);
  o.set("delay_hi_us", r.delay_hi_us);
  return o;
}

json::Value sweep_to_json(const SweepSpec& s) {
  json::Value o = json::Object{};
  o.set("axis", to_string(s.axis));
  json::Array points;
  for (const SweepPoint& pt : s.points) {
    json::Value p = json::Object{};
    p.set("value", pt.value);
    p.set("seed_point", pt.seed_point);
    if (!pt.label.empty()) p.set("label", pt.label);
    points.push_back(std::move(p));
  }
  o.set("points", std::move(points));
  return o;
}

/// Throws on keys `obj` holds that `allowed` does not list.
void reject_unknown_keys(const json::Value& obj, const char* context,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.as_object()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      const std::string suggestion = nearest_key(key, allowed);
      throw SpecError(
          std::string("spec: unknown field '") + key + "' in " + context +
          (suggestion.empty() ? ""
                              : " (did you mean '" + suggestion + "'?)"));
    }
  }
}

double get_probability(const json::Value& v, const char* field) {
  double d = 0.0;
  try {
    d = v.as_double();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a number");
  }
  if (!(d >= 0.0 && d <= 1.0)) {
    throw SpecError(std::string("spec: ") + field +
                    " must be a probability in [0,1], got " +
                    std::to_string(d));
  }
  return d;
}

std::uint64_t get_u64(const json::Value& v, const char* field) {
  try {
    return v.as_u64();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field +
                    " must be a non-negative integer");
  }
}

double get_double(const json::Value& v, const char* field) {
  try {
    return v.as_double();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a number");
  }
}

std::string get_string(const json::Value& v, const char* field) {
  try {
    return v.as_string();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a string");
  }
}

bool get_bool(const json::Value& v, const char* field) {
  try {
    return v.as_bool();
  } catch (const json::Error&) {
    throw SpecError(std::string("spec: ") + field + " must be a boolean");
  }
}

TopologyConfig topology_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: topology must be an object");
  }
  reject_unknown_keys(v, "topology", {"kind", "degree", "beta", "cache_size"});
  TopologyConfig t;
  if (const auto* k = v.find("kind")) {
    t.kind = value_of(kTopologyNames, get_string(*k, "topology.kind"),
                      "topology.kind");
  }
  if (const auto* d = v.find("degree")) {
    t.degree = static_cast<std::uint32_t>(get_u64(*d, "topology.degree"));
  }
  if (const auto* b = v.find("beta")) {
    t.beta = get_double(*b, "topology.beta");
  }
  if (const auto* c = v.find("cache_size")) {
    t.cache_size =
        static_cast<std::size_t>(get_u64(*c, "topology.cache_size"));
  }
  return t;
}

FailureSpec failure_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: failure must be an object");
  }
  reject_unknown_keys(
      v, "failure",
      {"kind", "p", "cycle", "fraction", "rate", "waves", "duration",
       "components"});
  FailureSpec f;
  if (const auto* k = v.find("kind")) {
    f.kind = value_of(kFailureNames, get_string(*k, "failure.kind"),
                      "failure.kind");
  }
  if (const auto* p = v.find("p")) f.p = get_probability(*p, "failure.p");
  if (const auto* c = v.find("cycle")) {
    f.cycle = static_cast<std::uint32_t>(get_u64(*c, "failure.cycle"));
  }
  if (const auto* fr = v.find("fraction")) {
    f.fraction = get_probability(*fr, "failure.fraction");
  }
  if (const auto* r = v.find("rate")) {
    f.rate = static_cast<std::uint32_t>(get_u64(*r, "failure.rate"));
  }
  if (const auto* w = v.find("waves")) {
    f.waves = static_cast<std::uint32_t>(get_u64(*w, "failure.waves"));
  }
  if (const auto* d = v.find("duration")) {
    f.duration = static_cast<std::uint32_t>(get_u64(*d, "failure.duration"));
  }
  if (const auto* c = v.find("components")) {
    f.components =
        static_cast<std::uint32_t>(get_u64(*c, "failure.components"));
  }
  return f;
}

AdversarySpec adversary_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: adversary must be an object");
  }
  reject_unknown_keys(v, "adversary", {"behavior", "fraction", "value"});
  AdversarySpec a;
  if (const auto* b = v.find("behavior")) {
    a.behavior = value_of(kAdversaryNames,
                          get_string(*b, "adversary.behavior"),
                          "adversary.behavior");
  }
  if (const auto* f = v.find("fraction")) {
    a.fraction = get_double(*f, "adversary.fraction");
  }
  if (const auto* val = v.find("value")) {
    a.value = get_double(*val, "adversary.value");
  }
  return a;
}

CombineSpec combine_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: combine must be an object");
  }
  reject_unknown_keys(v, "combine", {"kind", "alpha", "groups", "window"});
  CombineSpec c;
  if (const auto* k = v.find("kind")) {
    c.kind = value_of(kCombineNames, get_string(*k, "combine.kind"),
                      "combine.kind");
  }
  if (const auto* a = v.find("alpha")) {
    c.alpha = get_double(*a, "combine.alpha");
  }
  if (const auto* g = v.find("groups")) {
    c.groups = static_cast<std::uint32_t>(get_u64(*g, "combine.groups"));
  }
  if (const auto* w = v.find("window")) {
    c.window = static_cast<std::uint32_t>(get_u64(*w, "combine.window"));
  }
  return c;
}

DriftSpec drift_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: drift must be an object");
  }
  reject_unknown_keys(v, "drift", {"kind", "rate", "magnitude",
                                   "start_cycle"});
  DriftSpec d;
  if (const auto* k = v.find("kind")) {
    d.kind = value_of(kDriftNames, get_string(*k, "drift.kind"),
                      "drift.kind");
  }
  if (const auto* r = v.find("rate")) {
    d.rate = get_double(*r, "drift.rate");
  }
  if (const auto* m = v.find("magnitude")) {
    d.magnitude = get_double(*m, "drift.magnitude");
  }
  if (const auto* s = v.find("start_cycle")) {
    d.start_cycle =
        static_cast<std::uint32_t>(get_u64(*s, "drift.start_cycle"));
  }
  return d;
}

ServiceSpec service_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: service must be an object");
  }
  reject_unknown_keys(v, "service",
                      {"pipeline", "epoch_cycles", "staleness_bound"});
  ServiceSpec s;
  if (const auto* p = v.find("pipeline")) {
    s.pipeline = get_bool(*p, "service.pipeline");
  }
  if (const auto* e = v.find("epoch_cycles")) {
    s.epoch_cycles =
        static_cast<std::uint32_t>(get_u64(*e, "service.epoch_cycles"));
  }
  if (const auto* b = v.find("staleness_bound")) {
    s.staleness_bound =
        static_cast<std::uint32_t>(get_u64(*b, "service.staleness_bound"));
  }
  return s;
}

RuntimeSpec runtime_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: runtime must be an object");
  }
  reject_unknown_keys(v, "runtime",
                      {"workers", "wheel_slots", "delta_us", "timeout_ms",
                       "transport", "processes", "process_index", "port_base",
                       "latency", "delay_lo_us", "delay_hi_us"});
  RuntimeSpec r;
  if (const auto* w = v.find("workers")) {
    r.workers = static_cast<std::uint32_t>(get_u64(*w, "runtime.workers"));
  }
  if (const auto* s = v.find("wheel_slots")) {
    r.wheel_slots =
        static_cast<std::uint32_t>(get_u64(*s, "runtime.wheel_slots"));
  }
  if (const auto* d = v.find("delta_us")) {
    r.delta_us = static_cast<std::uint32_t>(get_u64(*d, "runtime.delta_us"));
  }
  if (const auto* t = v.find("timeout_ms")) {
    r.timeout_ms =
        static_cast<std::uint32_t>(get_u64(*t, "runtime.timeout_ms"));
  }
  if (const auto* t = v.find("transport")) {
    r.transport =
        value_of(kRuntimeTransportNames, get_string(*t, "runtime.transport"),
                 "runtime.transport");
  }
  if (const auto* p = v.find("processes")) {
    r.processes =
        static_cast<std::uint32_t>(get_u64(*p, "runtime.processes"));
  }
  if (const auto* p = v.find("process_index")) {
    r.process_index =
        static_cast<std::uint32_t>(get_u64(*p, "runtime.process_index"));
  }
  if (const auto* p = v.find("port_base")) {
    r.port_base =
        static_cast<std::uint32_t>(get_u64(*p, "runtime.port_base"));
  }
  if (const auto* l = v.find("latency")) {
    r.latency =
        value_of(kRuntimeLatencyNames, get_string(*l, "runtime.latency"),
                 "runtime.latency");
  }
  if (const auto* d = v.find("delay_lo_us")) {
    r.delay_lo_us =
        static_cast<std::uint32_t>(get_u64(*d, "runtime.delay_lo_us"));
  }
  if (const auto* d = v.find("delay_hi_us")) {
    r.delay_hi_us =
        static_cast<std::uint32_t>(get_u64(*d, "runtime.delay_hi_us"));
  }
  return r;
}

CommSpec comm_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: comm must be an object");
  }
  reject_unknown_keys(v, "comm", {"link_failure", "message_loss"});
  CommSpec c;
  if (const auto* l = v.find("link_failure")) {
    c.link_failure = get_probability(*l, "comm.link_failure");
  }
  if (const auto* m = v.find("message_loss")) {
    c.message_loss = get_probability(*m, "comm.message_loss");
  }
  return c;
}

SweepSpec sweep_from_json(const json::Value& v) {
  if (v.kind() != json::Kind::kObject) {
    throw SpecError("spec: sweep must be an object");
  }
  reject_unknown_keys(v, "sweep", {"axis", "points"});
  SweepSpec s;
  s.points.clear();
  if (const auto* a = v.find("axis")) {
    s.axis = value_of(kAxisNames, get_string(*a, "sweep.axis"), "sweep.axis");
  }
  if (const auto* pts = v.find("points")) {
    if (pts->kind() != json::Kind::kArray) {
      throw SpecError("spec: sweep.points must be an array");
    }
    for (const json::Value& p : pts->as_array()) {
      if (p.kind() != json::Kind::kObject) {
        throw SpecError("spec: sweep.points entries must be objects");
      }
      reject_unknown_keys(p, "sweep.points", {"value", "seed_point", "label"});
      SweepPoint pt;
      if (const auto* val = p.find("value")) {
        pt.value = get_double(*val, "sweep.points.value");
      }
      if (const auto* sp = p.find("seed_point")) {
        pt.seed_point = get_u64(*sp, "sweep.points.seed_point");
      }
      if (const auto* lb = p.find("label")) {
        pt.label = get_string(*lb, "sweep.points.label");
      }
      s.points.push_back(std::move(pt));
    }
  }
  return s;
}

}  // namespace

std::string to_json(const ScenarioSpec& spec, int indent) {
  json::Value o = json::Object{};
  o.set("name", spec.name);
  if (!spec.title.empty()) o.set("title", spec.title);
  o.set("driver", to_string(spec.driver));
  o.set("aggregate", to_string(spec.aggregate));
  o.set("instances", spec.instances);
  o.set("init", to_string(spec.init));
  o.set("nodes", spec.nodes);
  o.set("cycles", spec.cycles);
  o.set("reps", spec.reps);
  o.set("seed", spec.seed);
  o.set("topology", topology_to_json(spec.topology));
  o.set("failure", failure_to_json(spec.failure));
  json::Value comm = json::Object{};
  comm.set("link_failure", spec.comm.link_failure);
  comm.set("message_loss", spec.comm.message_loss);
  o.set("comm", std::move(comm));
  // Emitted only when non-default, like failure's adversarial fields:
  // every spec that predates the adversary vocabulary keeps its exact
  // canonical JSON and spec_hash.
  if (!(spec.adversary == AdversarySpec{})) {
    o.set("adversary", adversary_to_json(spec.adversary));
  }
  if (!(spec.combine == CombineSpec{})) {
    o.set("combine", combine_to_json(spec.combine));
  }
  if (!(spec.drift == DriftSpec{})) {
    o.set("drift", drift_to_json(spec.drift));
  }
  if (!(spec.service == ServiceSpec{})) {
    o.set("service", service_to_json(spec.service));
  }
  if (!(spec.runtime == RuntimeSpec{})) {
    o.set("runtime", runtime_to_json(spec.runtime));
  }
  o.set("atomic_exchanges", spec.atomic_exchanges);
  o.set("engine", to_string(spec.engine));
  o.set("threads", spec.threads);
  o.set("shards", spec.shards);
  o.set("match_rounds", spec.match_rounds);
  o.set("sweep", sweep_to_json(spec.sweep));
  return o.dump(indent);
}

ScenarioSpec spec_from_json(const std::string& text) {
  json::Value root = [&] {
    try {
      return json::parse(text);
    } catch (const json::Error& e) {
      throw SpecError(std::string("spec: invalid JSON: ") + e.what());
    }
  }();
  if (root.kind() != json::Kind::kObject) {
    throw SpecError("spec: top level must be a JSON object");
  }
  reject_unknown_keys(
      root, "spec",
      {"name", "title", "driver", "aggregate", "instances", "init", "nodes",
       "cycles", "reps", "seed", "topology", "failure", "comm", "adversary",
       "combine", "drift", "service", "runtime", "atomic_exchanges",
       "engine", "threads", "shards", "match_rounds", "sweep"});

  ScenarioSpec s;
  if (const auto* v = root.find("name")) s.name = get_string(*v, "name");
  if (const auto* v = root.find("title")) s.title = get_string(*v, "title");
  if (const auto* v = root.find("driver")) {
    s.driver = value_of(kDriverNames, get_string(*v, "driver"), "driver");
  }
  if (const auto* v = root.find("aggregate")) {
    s.aggregate =
        value_of(kAggregateNames, get_string(*v, "aggregate"), "aggregate");
  }
  if (const auto* v = root.find("instances")) {
    s.instances = static_cast<std::uint32_t>(get_u64(*v, "instances"));
  }
  if (const auto* v = root.find("init")) {
    s.init = value_of(kInitNames, get_string(*v, "init"), "init");
  }
  if (const auto* v = root.find("nodes")) {
    s.nodes = static_cast<std::uint32_t>(get_u64(*v, "nodes"));
  }
  if (const auto* v = root.find("cycles")) {
    s.cycles = static_cast<std::uint32_t>(get_u64(*v, "cycles"));
  }
  if (const auto* v = root.find("reps")) {
    s.reps = static_cast<std::uint32_t>(get_u64(*v, "reps"));
  }
  if (const auto* v = root.find("seed")) s.seed = get_u64(*v, "seed");
  if (const auto* v = root.find("topology")) {
    s.topology = topology_from_json(*v);
  }
  if (const auto* v = root.find("failure")) s.failure = failure_from_json(*v);
  if (const auto* v = root.find("comm")) s.comm = comm_from_json(*v);
  if (const auto* v = root.find("adversary")) {
    s.adversary = adversary_from_json(*v);
  }
  if (const auto* v = root.find("combine")) s.combine = combine_from_json(*v);
  if (const auto* v = root.find("drift")) s.drift = drift_from_json(*v);
  if (const auto* v = root.find("service")) s.service = service_from_json(*v);
  if (const auto* v = root.find("runtime")) s.runtime = runtime_from_json(*v);
  if (const auto* v = root.find("atomic_exchanges")) {
    s.atomic_exchanges = get_bool(*v, "atomic_exchanges");
  }
  if (const auto* v = root.find("engine")) {
    s.engine = value_of(kEngineNames, get_string(*v, "engine"), "engine");
  }
  if (const auto* v = root.find("threads")) {
    s.threads = static_cast<unsigned>(get_u64(*v, "threads"));
  }
  if (const auto* v = root.find("shards")) {
    s.shards = static_cast<unsigned>(get_u64(*v, "shards"));
  }
  if (const auto* v = root.find("match_rounds")) {
    s.match_rounds = static_cast<std::uint32_t>(get_u64(*v, "match_rounds"));
  }
  if (const auto* v = root.find("sweep")) s.sweep = sweep_from_json(*v);
  validate(s);
  return s;
}

// ------------------------------------------------------------ validation

void validate(const ScenarioSpec& spec) {
  const auto fail = [](const std::string& message) {
    throw SpecError("spec: " + message);
  };
  if (spec.name.empty()) fail("'name' must be a non-empty string");
  if (spec.nodes < 2) {
    fail("nodes must be >= 2, got " + std::to_string(spec.nodes));
  }
  if (spec.cycles == 0) fail("cycles must be >= 1");
  // The packed 32-bit newscast timestamp (membership::CacheEntry) must
  // hold every logical time a run can stamp; cycle drivers stamp up to
  // cycles + 1.
  if (spec.cycles > 4294967294u) {
    fail("cycles must fit the packed 32-bit logical clock "
         "(<= 4294967294), got " +
         std::to_string(spec.cycles));
  }
  if (spec.reps == 0) fail("reps must be >= 1");
  if (spec.instances == 0) fail("instances must be >= 1");
  // The estimate arrays are flat [node * instances + i]; a product past
  // 2^32 lanes would overflow the packed lane index (and the allocation
  // would be tens of GB). Reject at validation, mirroring the 32-bit
  // clock guard above — never clamp silently.
  if (static_cast<std::uint64_t>(spec.nodes) * spec.instances >
      4294967295ULL) {
    fail("nodes * instances must fit the packed 32-bit lane index "
         "(<= 4294967295), got " +
         std::to_string(static_cast<std::uint64_t>(spec.nodes) *
                        spec.instances));
  }
  if (spec.aggregate == AggregateKind::kCount &&
      spec.instances > spec.nodes) {
    fail("instances must be <= nodes (each COUNT instance needs a "
         "distinct leader), got " +
         std::to_string(spec.instances) + " instances over " +
         std::to_string(spec.nodes) + " nodes");
  }
  if (spec.aggregate == AggregateKind::kAverage && spec.instances != 1) {
    fail("aggregate 'average' requires instances == 1, got " +
         std::to_string(spec.instances));
  }
  if (spec.aggregate == AggregateKind::kCount &&
      spec.init != InitKind::kPeak) {
    fail("aggregate 'count' fixes the initial distribution; init must be "
         "'peak', got '" +
         to_string(spec.init) + "'");
  }
  if (!(spec.topology.beta >= 0.0 && spec.topology.beta <= 1.0)) {
    fail("topology.beta must be in [0,1], got " +
         std::to_string(spec.topology.beta));
  }
  if (spec.topology.kind == TopologyKind::kNewscast &&
      spec.topology.cache_size < 2) {
    fail("topology.cache_size must be >= 2 for newscast, got " +
         std::to_string(spec.topology.cache_size));
  }
  if (spec.topology.kind != TopologyKind::kComplete &&
      spec.topology.kind != TopologyKind::kNewscast &&
      spec.topology.degree == 0) {
    fail("topology.degree must be >= 1 for static topologies");
  }
  if (!(spec.failure.p >= 0.0 && spec.failure.p <= 1.0)) {
    fail("failure.p must be in [0,1], got " + std::to_string(spec.failure.p));
  }
  if (!(spec.failure.fraction >= 0.0 && spec.failure.fraction <= 1.0)) {
    fail("failure.fraction must be in [0,1], got " +
         std::to_string(spec.failure.fraction));
  }
  if (spec.failure.kind == FailureSpec::Kind::kCorrelatedWaves) {
    if (spec.failure.waves < 1) {
      fail("failure.waves must be >= 1 for correlated_waves, got " +
           std::to_string(spec.failure.waves));
    }
    if (static_cast<std::uint32_t>(spec.nodes * spec.failure.fraction) == 0) {
      fail("correlated_waves wave width floor(nodes * fraction) must be "
           ">= 1 (nodes " +
           std::to_string(spec.nodes) + ", fraction " +
           std::to_string(spec.failure.fraction) + ")");
    }
  }
  if (spec.failure.kind == FailureSpec::Kind::kPartition) {
    if (spec.failure.components < 2) {
      fail("failure.components must be >= 2 for partition, got " +
           std::to_string(spec.failure.components));
    }
    if (spec.failure.duration < 1) {
      fail("failure.duration must be >= 1 for partition, got " +
           std::to_string(spec.failure.duration));
    }
  }
  if (spec.failure.kind == FailureSpec::Kind::kRestart) {
    if (spec.failure.cycle < 1) {
      fail("failure.cycle is the restart period for kind 'restart'; "
           "it must be >= 1");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("failure kind 'restart' re-seeds initial estimates and "
           "requires aggregate 'average'");
    }
  }
  if (!(spec.adversary.fraction >= 0.0 && spec.adversary.fraction < 1.0)) {
    fail("adversary.fraction must be in [0,1), got " +
         std::to_string(spec.adversary.fraction));
  }
  if (spec.adversary.behavior == AdversarySpec::Behavior::kNone &&
      spec.adversary.fraction > 0.0) {
    fail("adversary.fraction > 0 requires an adversary.behavior "
         "(value_inject|always_max|cache_pollute)");
  }
  if (spec.adversary.behavior != AdversarySpec::Behavior::kNone) {
    if (spec.driver != DriverKind::kCycle) {
      fail("adversary.behavior requires driver 'cycle', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("adversary.behavior requires aggregate 'average', got '" +
           to_string(spec.aggregate) + "'");
    }
    if (!std::isfinite(spec.adversary.value)) {
      fail("adversary.value must be finite");
    }
    if (spec.adversary.behavior != AdversarySpec::Behavior::kValueInject &&
        spec.adversary.value != 0.0) {
      fail("adversary.value is only meaningful for behavior "
           "'value_inject'; leave it at 0");
    }
  }
  if (spec.combine.kind == CombineSpec::Kind::kTrimmedMean) {
    if (!(spec.combine.alpha > 0.0 && spec.combine.alpha < 0.5)) {
      fail("combine.alpha must be in (0,0.5) for trimmed_mean, got " +
           std::to_string(spec.combine.alpha));
    }
  } else if (spec.combine.alpha != 0.0) {
    fail("combine.alpha is only meaningful for kind 'trimmed_mean'; "
         "leave it at 0");
  }
  if (spec.combine.kind == CombineSpec::Kind::kMedianOfMeans) {
    if (spec.combine.groups < 1) {
      fail("combine.groups must be >= 1 for median_of_means");
    }
    if (spec.combine.groups > spec.combine.window + 1) {
      fail("combine.groups must be <= combine.window + 1 (each group "
           "needs at least one report), got groups " +
           std::to_string(spec.combine.groups) + " with window " +
           std::to_string(spec.combine.window));
    }
  } else if (spec.combine.groups != 0) {
    fail("combine.groups is only meaningful for kind 'median_of_means'; "
         "leave it at 0");
  }
  if (spec.combine.window < 2 || spec.combine.window > 64) {
    fail("combine.window must be in [2,64], got " +
         std::to_string(spec.combine.window));
  }
  if (spec.combine.kind != CombineSpec::Kind::kMean) {
    if (spec.driver != DriverKind::kCycle) {
      fail("robust combine kinds require driver 'cycle', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("robust combine kinds require aggregate 'average', got '" +
           to_string(spec.aggregate) + "'");
    }
  }
  if (spec.drift.kind == DriftSpec::Kind::kNone) {
    if (spec.drift.rate != 0.0 || spec.drift.magnitude != 0.0 ||
        spec.drift.start_cycle != 0) {
      fail("drift kind 'none' takes no parameters; leave rate, magnitude "
           "and start_cycle at 0");
    }
  } else {
    if (spec.driver != DriverKind::kCycle &&
        spec.driver != DriverKind::kRuntime) {
      fail("drift requires driver 'cycle' or 'runtime', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("drift tracks a moving mean and requires aggregate 'average', "
           "got '" +
           to_string(spec.aggregate) + "'");
    }
    if (spec.drift.start_cycle >= spec.cycles) {
      fail("drift.start_cycle must be < cycles (a drift that starts after "
           "the run ends is a no-op), got " +
           std::to_string(spec.drift.start_cycle) + " with cycles " +
           std::to_string(spec.cycles));
    }
    if (spec.drift.kind == DriftSpec::Kind::kStep) {
      if (!std::isfinite(spec.drift.magnitude) ||
          spec.drift.magnitude == 0.0) {
        fail("drift.magnitude must be finite and non-zero for kind "
             "'step', got " +
             std::to_string(spec.drift.magnitude));
      }
      if (spec.drift.rate != 0.0) {
        fail("drift.rate is only meaningful for kinds "
             "'linear'/'random_walk'; leave it at 0 for 'step'");
      }
    } else {  // linear / random_walk
      if (!std::isfinite(spec.drift.rate) || spec.drift.rate == 0.0 ||
          std::abs(spec.drift.rate) > 1e6) {
        fail("drift.rate must be finite, non-zero and within [-1e6,1e6] "
             "for kind '" +
             to_string(spec.drift.kind) + "', got " +
             std::to_string(spec.drift.rate));
      }
      if (spec.drift.magnitude != 0.0) {
        fail("drift.magnitude is only meaningful for kind 'step'; leave "
             "it at 0");
      }
    }
  }
  if (!spec.service.pipeline) {
    if (spec.service.epoch_cycles != 0 || spec.service.staleness_bound != 0) {
      fail("service parameters need service.pipeline = true; leave "
           "epoch_cycles and staleness_bound at 0");
    }
  } else {
    if (spec.driver != DriverKind::kCycle) {
      fail("service.pipeline requires driver 'cycle', got driver '" +
           to_string(spec.driver) + "'");
    }
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("service.pipeline publishes the scalar mean and requires "
           "aggregate 'average', got '" +
           to_string(spec.aggregate) + "'");
    }
    if (spec.service.epoch_cycles < 1 ||
        spec.service.epoch_cycles > spec.cycles) {
      fail("service.epoch_cycles must be in [1, cycles] (an epoch longer "
           "than the run never publishes), got " +
           std::to_string(spec.service.epoch_cycles) + " with cycles " +
           std::to_string(spec.cycles));
    }
    if (spec.service.staleness_bound < 1) {
      fail("service.staleness_bound must be >= 1 (a freshly published "
           "snapshot is already 1 cycle old when queried)");
    }
    if (spec.failure.kind == FailureSpec::Kind::kRestart) {
      fail("service.pipeline replaces epoch restarts; failure.kind "
           "'restart' is incompatible");
    }
  }
  if (!(spec.comm.link_failure >= 0.0 && spec.comm.link_failure <= 1.0)) {
    fail("comm.link_failure must be a probability in [0,1], got " +
         std::to_string(spec.comm.link_failure));
  }
  if (!(spec.comm.message_loss >= 0.0 && spec.comm.message_loss <= 1.0)) {
    fail("comm.message_loss must be a probability in [0,1], got " +
         std::to_string(spec.comm.message_loss));
  }
  if (spec.sweep.points.empty()) {
    fail("sweep.points must hold at least one point (use sweep axis 'none' "
         "with a single seed_point for unswept runs)");
  }
  if (spec.sweep.axis == SweepAxis::kNone && spec.sweep.points.size() != 1) {
    fail("sweep axis 'none' requires exactly one point, got " +
         std::to_string(spec.sweep.points.size()));
  }
  // Sweep point values feed unsigned casts in at_point(); every axis
  // range-checks its points so a validated spec can never drive an
  // out-of-range cast (UB) or a silently-degenerate run.
  const auto check_points = [&](double lo, double hi, const char* what) {
    for (const SweepPoint& pt : spec.sweep.points) {
      if (!(pt.value >= lo && pt.value <= hi)) {
        fail(std::string("sweep axis '") + to_string(spec.sweep.axis) +
             "' points must be " + what + ", got " +
             std::to_string(pt.value));
      }
    }
  };
  constexpr double kMaxU32 = 4294967295.0;
  switch (spec.sweep.axis) {
    case SweepAxis::kNone:
      break;
    case SweepAxis::kNodes:
      check_points(2.0, kMaxU32, "network sizes >= 2");
      break;
    case SweepAxis::kCacheSize:
      check_points(2.0, kMaxU32, "cache sizes >= 2");
      break;
    case SweepAxis::kDeathCycle:
      check_points(0.0, kMaxU32, "cycle indices >= 0");
      break;
    case SweepAxis::kInstances:
      check_points(1.0, kMaxU32, "instance counts >= 1");
      if (spec.aggregate != AggregateKind::kCount) {
        fail("sweep axis 'instances' requires aggregate 'count'");
      }
      // Each point becomes the instances field at at_point(): the same
      // lane-index overflow and leader-count guards as the top-level
      // field, checked here so a sweep can't smuggle in a degenerate
      // point.
      for (const SweepPoint& pt : spec.sweep.points) {
        const auto t = static_cast<std::uint64_t>(pt.value);
        if (static_cast<std::uint64_t>(spec.nodes) * t > 4294967295ULL) {
          fail("nodes * instances must fit the packed 32-bit lane index "
               "(<= 4294967295), got " +
               std::to_string(static_cast<std::uint64_t>(spec.nodes) * t) +
               " at sweep point " + std::to_string(pt.value));
        }
        if (t > spec.nodes) {
          fail("instances must be <= nodes (each COUNT instance needs a "
               "distinct leader), got " +
               std::to_string(t) + " instances over " +
               std::to_string(spec.nodes) + " nodes at sweep point " +
               std::to_string(pt.value));
        }
      }
      break;
    case SweepAxis::kCycles:
      check_points(1.0, kMaxU32, "cycle counts >= 1");
      break;
    case SweepAxis::kBeta:
    case SweepAxis::kCrashP:
    case SweepAxis::kChurnFraction:
    case SweepAxis::kLinkP:
    case SweepAxis::kLossP:
      check_points(0.0, 1.0, "probabilities in [0,1]");
      break;
    case SweepAxis::kAtomicity:
      check_points(0.0, 1.0, "0 (off) or 1 (on)");
      break;
    case SweepAxis::kInit:
      check_points(0.0, static_cast<double>(InitKind::kExponential),
                   "0..3 (peak/uniform/bimodal/exponential)");
      if (spec.aggregate != AggregateKind::kAverage) {
        fail("sweep axis 'init' requires aggregate 'average' (COUNT fixes "
             "the initial distribution)");
      }
      break;
    case SweepAxis::kByzFraction:
      // Closed-interval helper, then reject the open end by hand.
      check_points(0.0, 1.0, "byzantine fractions in [0,1)");
      for (const SweepPoint& pt : spec.sweep.points) {
        if (pt.value >= 1.0) {
          fail("sweep axis 'byz_fraction' points must be byzantine "
               "fractions in [0,1), got " +
               std::to_string(pt.value));
        }
      }
      if (spec.adversary.behavior == AdversarySpec::Behavior::kNone) {
        fail("sweep axis 'byz_fraction' requires an adversary.behavior "
             "(sweeping the fraction of a 'none' adversary is a no-op)");
      }
      break;
    case SweepAxis::kPartitionComponents:
      check_points(2.0, kMaxU32, "component counts >= 2");
      if (spec.failure.kind != FailureSpec::Kind::kPartition) {
        fail("sweep axis 'partition_components' requires failure.kind "
             "'partition', got '" +
             to_string(spec.failure.kind) + "'");
      }
      break;
    case SweepAxis::kPartitionDuration:
      check_points(1.0, kMaxU32, "partitioned cycle counts >= 1");
      if (spec.failure.kind != FailureSpec::Kind::kPartition) {
        fail("sweep axis 'partition_duration' requires failure.kind "
             "'partition', got '" +
             to_string(spec.failure.kind) + "'");
      }
      break;
  }
  // Drivers must reject spec fields they would otherwise silently drop —
  // a churn plan on a driver that never executes it would produce a
  // clean no-failure series labeled as a churn run.
  if (spec.driver == DriverKind::kEvent) {
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("driver 'event' supports aggregate 'average' only");
    }
    // Event-engine descriptors are stamped with simulated microseconds
    // (cycle_length = 10⁶ µs, proto::NodeConfig), which must fit the
    // packed 32-bit logical clock of membership::CacheEntry.
    if (spec.cycles > 4294u) {
      fail("driver 'event' stamps simulated microseconds into the packed "
           "32-bit logical clock; cycles must be <= 4294, got " +
           std::to_string(spec.cycles));
    }
    if (spec.sweep.axis != SweepAxis::kNone &&
        spec.sweep.axis != SweepAxis::kAtomicity &&
        spec.sweep.axis != SweepAxis::kNodes) {
      fail("driver 'event' supports sweep axes none|atomicity|nodes, got '" +
           to_string(spec.sweep.axis) + "'");
    }
    if (spec.failure.kind != FailureSpec::Kind::kNone) {
      fail("driver 'event' does not execute a failure plan; failure.kind "
           "must be 'none' (got '" +
           to_string(spec.failure.kind) + "')");
    }
    if (spec.comm.link_failure != 0.0) {
      fail("driver 'event' models message loss only; comm.link_failure "
           "must be 0");
    }
    if (spec.init != InitKind::kPeak) {
      fail("driver 'event' supports init 'peak' only, got '" +
           to_string(spec.init) + "'");
    }
    if (!(spec.topology == TopologyConfig{})) {
      fail("driver 'event' uses its own bootstrap membership and ignores "
           "topology; leave topology at its default");
    }
  }
  if (spec.driver == DriverKind::kPushSum) {
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("driver 'push_sum' supports aggregate 'average' only");
    }
    if (spec.failure.kind != FailureSpec::Kind::kNone) {
      fail("driver 'push_sum' does not execute a failure plan; "
           "failure.kind must be 'none' (got '" +
           to_string(spec.failure.kind) + "')");
    }
    if (spec.comm.link_failure != 0.0) {
      fail("driver 'push_sum' models message loss only; "
           "comm.link_failure must be 0");
    }
  }
  if (spec.driver == DriverKind::kRuntime) {
    if (spec.aggregate != AggregateKind::kAverage) {
      fail("driver 'runtime' supports aggregate 'average' only");
    }
    if (!spec.atomic_exchanges) {
      fail("driver 'runtime' always runs atomic exchanges (the busy-NACK "
           "rule); atomic_exchanges must stay true");
    }
    if (spec.engine != EngineKind::kAuto &&
        spec.engine != EngineKind::kSerial) {
      fail("driver 'runtime' hosts its own worker threads; engine must be "
           "'auto' or 'serial', got '" +
           to_string(spec.engine) + "'");
    }
    if (spec.comm.link_failure != 0.0) {
      fail("driver 'runtime' models per-message loss only; "
           "comm.link_failure must be 0");
    }
    switch (spec.failure.kind) {
      case FailureSpec::Kind::kNone:
      case FailureSpec::Kind::kProportionalCrash:
      case FailureSpec::Kind::kSuddenDeath:
      case FailureSpec::Kind::kChurn:
      case FailureSpec::Kind::kChurnFraction:
      case FailureSpec::Kind::kConstantCrash:
      case FailureSpec::Kind::kCorrelatedWaves:
        break;
      default:
        fail("driver 'runtime' supports failure kinds "
             "none|proportional_crash|sudden_death|churn|churn_fraction|"
             "constant_crash|correlated_waves, got '" +
             to_string(spec.failure.kind) + "'");
    }
    if ((spec.failure.kind == FailureSpec::Kind::kChurn ||
         spec.failure.kind == FailureSpec::Kind::kChurnFraction) &&
        spec.topology.kind != TopologyKind::kNewscast) {
      fail("runtime churn joiners bootstrap through newscast caches; "
           "churn failure kinds require topology.kind 'newscast', got '" +
           to_string(spec.topology.kind) + "'");
    }
    if (spec.sweep.axis != SweepAxis::kNone &&
        spec.sweep.axis != SweepAxis::kNodes &&
        spec.sweep.axis != SweepAxis::kLossP) {
      fail("driver 'runtime' supports sweep axes none|nodes|loss_p, got '" +
           to_string(spec.sweep.axis) + "'");
    }
    const RuntimeSpec& r = spec.runtime;
    if (r.workers > 256) {
      fail("runtime.workers must be <= 256, got " +
           std::to_string(r.workers));
    }
    if (r.wheel_slots < 1 || r.wheel_slots > 1024) {
      fail("runtime.wheel_slots must be in [1,1024], got " +
           std::to_string(r.wheel_slots));
    }
    if (r.delta_us > 10000000u) {
      fail("runtime.delta_us must be <= 10000000 (10 s per cycle), got " +
           std::to_string(r.delta_us));
    }
    if (r.timeout_ms < 1 || r.timeout_ms > 600000u) {
      fail("runtime.timeout_ms must be in [1,600000], got " +
           std::to_string(r.timeout_ms));
    }
    switch (r.latency) {
      case RuntimeSpec::LatencyKind::kNone:
        if (r.delay_lo_us != 0 || r.delay_hi_us != 0) {
          fail("runtime.latency 'none' takes no delay parameters; leave "
               "delay_lo_us and delay_hi_us at 0");
        }
        break;
      case RuntimeSpec::LatencyKind::kFixed:
        if (r.delay_lo_us < 1 || r.delay_hi_us != 0) {
          fail("runtime.latency 'fixed' uses delay_lo_us (>= 1) as the "
               "delay and leaves delay_hi_us at 0");
        }
        break;
      case RuntimeSpec::LatencyKind::kUniform:
        if (r.delay_hi_us < 1 || r.delay_lo_us > r.delay_hi_us) {
          fail("runtime.latency 'uniform' needs delay_lo_us <= delay_hi_us "
               "with delay_hi_us >= 1");
        }
        break;
      case RuntimeSpec::LatencyKind::kExponential:
        if (r.delay_hi_us < 1) {
          fail("runtime.latency 'exponential' uses delay_lo_us as base and "
               "delay_hi_us (>= 1) as the tail mean");
        }
        break;
    }
    if (r.transport == RuntimeSpec::TransportKind::kLoopback) {
      if (r.processes != 1 || r.process_index != 0 || r.port_base != 0) {
        fail("runtime.transport 'loopback' is single-process; leave "
             "processes at 1, process_index and port_base at 0");
      }
    } else {  // socket
      if (r.processes < 2 || r.processes > 64) {
        fail("runtime.transport 'socket' needs processes in [2,64], got " +
             std::to_string(r.processes));
      }
      if (r.process_index >= r.processes) {
        fail("runtime.process_index must be < runtime.processes, got " +
             std::to_string(r.process_index) + " with " +
             std::to_string(r.processes) + " processes");
      }
      if (r.port_base < 1024 || r.port_base + r.processes - 1 > 65535u) {
        fail("runtime.port_base must leave ports base..base+processes-1 "
             "inside [1024,65535], got " +
             std::to_string(r.port_base));
      }
      if (spec.reps != 1) {
        fail("runtime.transport 'socket' runs cooperating processes and "
             "requires reps == 1, got " +
             std::to_string(spec.reps));
      }
      if (spec.sweep.axis != SweepAxis::kNone) {
        fail("runtime.transport 'socket' requires sweep axis 'none' "
             "(every process must execute the identical point)");
      }
      if (spec.failure.kind != FailureSpec::Kind::kNone) {
        fail("runtime.transport 'socket' does not coordinate a failure "
             "plan across processes; failure.kind must be 'none'");
      }
      if (spec.nodes < 2 * r.processes) {
        fail("runtime.transport 'socket' needs nodes >= 2 * processes so "
             "every process hosts at least two nodes, got " +
             std::to_string(spec.nodes) + " nodes over " +
             std::to_string(r.processes) + " processes");
      }
    }
  } else if (!(spec.runtime == RuntimeSpec{})) {
    fail("runtime.* fields require driver 'runtime', got driver '" +
         to_string(spec.driver) + "'");
  }
  if (spec.engine == EngineKind::kIntraRep &&
      spec.driver != DriverKind::kCycle) {
    fail("engine 'intra_rep' requires driver 'cycle', got driver '" +
         to_string(spec.driver) + "'");
  }
  if (spec.match_rounds < 1 || spec.match_rounds > 16) {
    fail("match_rounds must be in [1,16], got " +
         std::to_string(spec.match_rounds));
  }
  if (spec.match_rounds > 1 && spec.engine != EngineKind::kIntraRep) {
    // Only the intra-rep engine has a match phase; every other engine
    // would silently drop the field and mislabel the series.
    fail("match_rounds > 1 requires engine 'intra_rep' (other engines "
         "have no match phase), got engine '" +
         to_string(spec.engine) + "'");
  }
}

// ------------------------------------------------------------------ hash

std::uint64_t fnv1a64(std::uint64_t h, const std::string& text) {
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::uint64_t spec_hash(const ScenarioSpec& spec) {
  return fnv1a64(kFnvOffsetBasis, to_json(spec, /*indent=*/-1));
}

std::string spec_hash_hex(const ScenarioSpec& spec) {
  return hex64(spec_hash(spec));
}

// ------------------------------------------------------------- overrides

EngineKind engine_kind_from_string(const std::string& name) {
  return value_of(kEngineNames, name, "engine");
}

std::uint64_t parse_u64_field(const std::string& field,
                              const std::string& value) {
  // std::stoull would silently wrap a leading minus ("-1" -> 2^64-1);
  // anything that does not start with a digit is rejected up front.
  const bool starts_with_digit =
      !value.empty() && value.front() >= '0' && value.front() <= '9';
  try {
    if (!starts_with_digit) throw std::invalid_argument(value);
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (...) {
    throw SpecError("spec: --set " + field +
                    " expects an unsigned integer, got '" + value + "'");
  }
}

namespace {

/// Plain O(len²) Levenshtein distance — keys are a dozen characters.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t subst = diag + (a[i - 1] != b[j - 1] ? 1 : 0);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string nearest_key(const std::string& key,
                        std::initializer_list<const char*> valid) {
  std::string best;
  std::size_t best_distance = 0;
  for (const char* candidate : valid) {
    const std::size_t d = edit_distance(key, candidate);
    if (best.empty() || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  // Only suggest plausible typos: within 2 edits, or 1/3 of the key for
  // longer names ("agregate" -> aggregate, "match-rounds" ->
  // match_rounds) — never "warp" -> "reps".
  const std::size_t budget = std::max<std::size_t>(2, key.size() / 3);
  return best_distance <= budget ? best : std::string();
}

void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value) {
  const auto parse_u64 = [&](const char* field) -> std::uint64_t {
    return parse_u64_field(field, value);
  };
  const auto parse_double = [&](const char* field) -> double {
    try {
      std::size_t used = 0;
      const double d = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      return d;
    } catch (...) {
      throw SpecError(std::string("spec: --set ") + field +
                      " expects a number, got '" + value + "'");
    }
  };
  if (key == "name") {
    spec.name = value;
  } else if (key == "title") {
    spec.title = value;
  } else if (key == "nodes") {
    spec.nodes = static_cast<std::uint32_t>(parse_u64("nodes"));
  } else if (key == "cycles") {
    spec.cycles = static_cast<std::uint32_t>(parse_u64("cycles"));
  } else if (key == "reps") {
    spec.reps = static_cast<std::uint32_t>(parse_u64("reps"));
  } else if (key == "seed") {
    spec.seed = parse_u64("seed");
  } else if (key == "instances") {
    spec.instances = static_cast<std::uint32_t>(parse_u64("instances"));
  } else if (key == "match_rounds") {
    spec.match_rounds =
        static_cast<std::uint32_t>(parse_u64("match_rounds"));
  } else if (key == "threads") {
    spec.threads = static_cast<unsigned>(parse_u64("threads"));
  } else if (key == "shards") {
    spec.shards = static_cast<unsigned>(parse_u64("shards"));
  } else if (key == "engine") {
    spec.engine = value_of(kEngineNames, value, "engine");
  } else if (key == "driver") {
    spec.driver = value_of(kDriverNames, value, "driver");
  } else if (key == "aggregate") {
    spec.aggregate = value_of(kAggregateNames, value, "aggregate");
  } else if (key == "init") {
    spec.init = value_of(kInitNames, value, "init");
  } else if (key == "atomic_exchanges") {
    if (value == "true" || value == "1") {
      spec.atomic_exchanges = true;
    } else if (value == "false" || value == "0") {
      spec.atomic_exchanges = false;
    } else {
      throw SpecError(
          "spec: --set atomic_exchanges expects true/false, got '" + value +
          "'");
    }
  } else if (key == "adversary") {
    spec.adversary.behavior = value_of(kAdversaryNames, value, "adversary");
  } else if (key == "adversary_fraction") {
    spec.adversary.fraction = parse_double("adversary_fraction");
  } else if (key == "adversary_value") {
    spec.adversary.value = parse_double("adversary_value");
  } else if (key == "combine") {
    spec.combine.kind = value_of(kCombineNames, value, "combine");
  } else if (key == "combine_alpha") {
    spec.combine.alpha = parse_double("combine_alpha");
  } else if (key == "combine_groups") {
    spec.combine.groups =
        static_cast<std::uint32_t>(parse_u64("combine_groups"));
  } else if (key == "combine_window") {
    spec.combine.window =
        static_cast<std::uint32_t>(parse_u64("combine_window"));
  } else if (key == "drift") {
    spec.drift.kind = value_of(kDriftNames, value, "drift");
  } else if (key == "drift_rate") {
    spec.drift.rate = parse_double("drift_rate");
  } else if (key == "drift_magnitude") {
    spec.drift.magnitude = parse_double("drift_magnitude");
  } else if (key == "drift_start_cycle") {
    spec.drift.start_cycle =
        static_cast<std::uint32_t>(parse_u64("drift_start_cycle"));
  } else if (key == "service_pipeline") {
    if (value == "true" || value == "1") {
      spec.service.pipeline = true;
    } else if (value == "false" || value == "0") {
      spec.service.pipeline = false;
    } else {
      throw SpecError(
          "spec: --set service_pipeline expects true/false, got '" + value +
          "'");
    }
  } else if (key == "service_epoch_cycles") {
    spec.service.epoch_cycles =
        static_cast<std::uint32_t>(parse_u64("service_epoch_cycles"));
  } else if (key == "service_staleness_bound") {
    spec.service.staleness_bound =
        static_cast<std::uint32_t>(parse_u64("service_staleness_bound"));
  } else if (key == "runtime_workers") {
    spec.runtime.workers =
        static_cast<std::uint32_t>(parse_u64("runtime_workers"));
  } else if (key == "runtime_wheel_slots") {
    spec.runtime.wheel_slots =
        static_cast<std::uint32_t>(parse_u64("runtime_wheel_slots"));
  } else if (key == "runtime_delta_us") {
    spec.runtime.delta_us =
        static_cast<std::uint32_t>(parse_u64("runtime_delta_us"));
  } else if (key == "runtime_timeout_ms") {
    spec.runtime.timeout_ms =
        static_cast<std::uint32_t>(parse_u64("runtime_timeout_ms"));
  } else if (key == "runtime_transport") {
    spec.runtime.transport =
        value_of(kRuntimeTransportNames, value, "runtime_transport");
  } else if (key == "runtime_processes") {
    spec.runtime.processes =
        static_cast<std::uint32_t>(parse_u64("runtime_processes"));
  } else if (key == "runtime_process_index") {
    spec.runtime.process_index =
        static_cast<std::uint32_t>(parse_u64("runtime_process_index"));
  } else if (key == "runtime_port_base") {
    spec.runtime.port_base =
        static_cast<std::uint32_t>(parse_u64("runtime_port_base"));
  } else if (key == "runtime_latency") {
    spec.runtime.latency =
        value_of(kRuntimeLatencyNames, value, "runtime_latency");
  } else if (key == "runtime_delay_lo_us") {
    spec.runtime.delay_lo_us =
        static_cast<std::uint32_t>(parse_u64("runtime_delay_lo_us"));
  } else if (key == "runtime_delay_hi_us") {
    spec.runtime.delay_hi_us =
        static_cast<std::uint32_t>(parse_u64("runtime_delay_hi_us"));
  } else {
    const std::string suggestion = nearest_key(
        key, {"name", "title", "nodes", "cycles", "reps", "seed",
              "instances", "match_rounds", "threads", "shards", "engine",
              "driver", "aggregate", "init", "atomic_exchanges", "adversary",
              "adversary_fraction", "adversary_value", "combine",
              "combine_alpha", "combine_groups", "combine_window", "drift",
              "drift_rate", "drift_magnitude", "drift_start_cycle",
              "service_pipeline", "service_epoch_cycles",
              "service_staleness_bound", "runtime_workers",
              "runtime_wheel_slots", "runtime_delta_us", "runtime_timeout_ms",
              "runtime_transport", "runtime_processes",
              "runtime_process_index", "runtime_port_base", "runtime_latency",
              "runtime_delay_lo_us", "runtime_delay_hi_us"});
    throw SpecError(
        "spec: --set supports "
        "name|title|nodes|cycles|reps|seed|instances|match_rounds|threads|"
        "shards|engine|driver|aggregate|init|atomic_exchanges|adversary|"
        "adversary_fraction|adversary_value|combine|combine_alpha|"
        "combine_groups|combine_window|drift|drift_rate|drift_magnitude|"
        "drift_start_cycle|service_pipeline|service_epoch_cycles|"
        "service_staleness_bound|runtime_workers|runtime_wheel_slots|"
        "runtime_delta_us|runtime_timeout_ms|runtime_transport|"
        "runtime_processes|runtime_process_index|runtime_port_base|"
        "runtime_latency|runtime_delay_lo_us|runtime_delay_hi_us, got '" +
        key + "'" +
        (suggestion.empty() ? ""
                            : " (did you mean '" + suggestion + "'?)"));
  }
}

}  // namespace gossip::experiment
