#include "experiment/parallel_runner.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/rng.hpp"

namespace gossip::experiment {

unsigned runner_threads() {
  // Strict: GOSSIP_THREADS=0 or a typo must stop the run, not silently
  // fall back to the hardware default.
  const auto configured = env_u64_positive("GOSSIP_THREADS", 0);
  if (configured > 0) {
    return static_cast<unsigned>(std::min<std::uint64_t>(configured, 4096));
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned runner_shards() {
  const auto configured = env_u64_positive("GOSSIP_SHARDS", 0);
  if (configured > 0) {
    return static_cast<unsigned>(std::min<std::uint64_t>(configured, 4096));
  }
  return runner_threads();
}

std::vector<std::uint64_t> split_seeds(std::uint64_t base, std::size_t count) {
  Rng root(base);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Mirrors Rng::split(): the child generator is seeded with
    // splitmix64 of the parent's next draw.
    std::uint64_t s = root();
    seeds.push_back(splitmix64(s));
  }
  return seeds;
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads > 0 ? threads : runner_threads()) {
  workers_.reserve(threads_ - 1);
  for (unsigned w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  batch_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ParallelRunner::drain() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) break;
    try {
      (*job_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ParallelRunner::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_cv_.wait(lock, [this, seen] {
      return stop_ || (batch_id_ != 0 && batch_id_ != seen);
    });
    if (stop_) return;
    // Joining the batch and announcing it (active_) happen in the same
    // critical section as the gate, so run() can never observe the batch
    // finished while this worker is still inside drain().
    seen = batch_id_;
    ++active_;
    lock.unlock();
    drain();
    lock.lock();
    --active_;
    if (active_ == 0 &&
        completed_.load(std::memory_order_acquire) == count_) {
      done_cv_.notify_all();
    }
  }
}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Serial fast path: same job order a 1-thread pool would produce,
    // with exceptions propagating directly.
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &job;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  error_ = nullptr;
  batch_id_ = ++batch_serial_;
  batch_cv_.notify_all();
  lock.unlock();

  drain();  // the caller is a worker too

  lock.lock();
  done_cv_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) == count_ &&
           active_ == 0;
  });
  batch_id_ = 0;  // close the batch: late-waking workers go back to sleep
  job_ = nullptr;
  std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace gossip::experiment
