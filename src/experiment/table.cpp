#include "experiment/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/env.hpp"
#include "common/require.hpp"

namespace gossip::experiment {

namespace {

/// Stable non-finite cell tokens for every table/CSV surface: stream
/// formatting of inf/NaN is implementation- and sign-dependent ("-nan",
/// "1.#INF", locale variants), and a golden CSV must never depend on it.
const char* non_finite_token(double value) {
  if (std::isnan(value)) return "nan";
  return value > 0 ? "inf" : "-inf";
}

}  // namespace

std::string fmt(double value, int precision) {
  if (!std::isfinite(value)) return non_finite_token(value);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_sci(double value, int precision) {
  if (!std::isfinite(value)) return non_finite_token(value);
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GOSSIP_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GOSSIP_REQUIRE(cells.size() == headers_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

bool Table::maybe_write_csv_file(const std::string& name) const {
  const auto dir = env_string("GOSSIP_CSV_DIR");
  if (!dir) return false;
  std::ofstream out(*dir + "/" + name + ".csv");
  if (!out) return false;
  write_csv(out);
  return true;
}

void print_banner(std::ostream& os, const std::string& figure,
                  const std::string& description,
                  const std::string& scale_note) {
  os << "== " << figure << " — " << description << '\n'
     << "   " << scale_note << '\n'
     << "   (GOSSIP_FULL=1 for paper scale; GOSSIP_N / GOSSIP_REPS / "
        "GOSSIP_SEED override)\n\n";
}

}  // namespace gossip::experiment
