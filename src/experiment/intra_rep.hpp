// Domain-decomposed single-repetition simulator: one giant-N repetition
// whose *cycles* are executed by several threads at once — the mode for
// N=10⁶ runs where fanning repetitions across cores (parallel_runner's
// map) doesn't help because there is only one repetition.
//
// Execution model ("matched" bulk-synchronous cycles):
//   1. failure events apply at the cycle boundary; batched crashes retire
//      through ShardedPopulation::kill_many's stable parallel compaction;
//   2. PROPOSE (parallel over id-space shards, read-only): every live
//      node draws its exchange partner candidates — plus the exchange's
//      communication fate and its match priority key — from its own
//      derived RNG stream;
//   3. MATCH (parallel deterministic reservations): proposals resolve
//      into a set of *disjoint* exchange pairs exactly as a serial
//      greedy scan in priority order would, but via fixed-shape
//      reserve/commit rounds (Blelloch-style deterministic
//      reservations): each still-unmatched node atomically min-reserves
//      itself and its viable candidates with a priority packed from
//      (per-round pseudorandom key, node id, candidate index), and a
//      node commits its first-unmatched candidate only when it holds
//      both reservations. Min-reduction is commutative and every other
//      structure is keyed by node id, so the pair set is independent of
//      shards, threads and schedule; a node proposing a dead peer (the
//      §4.2 timeout) sits the round out;
//   4. APPLY (parallel over pair chunks, software-prefetched one pair
//      ahead like the serial driver's run_cycle pipeline): because pairs
//      are disjoint, cache merges and estimate updates touch disjoint
//      state — no locks, and the final state is independent of execution
//      order;
//   5. STATS (parallel over kStatsSegments fixed id-space segments,
//      folded through stats::merge_tree's fixed-shape reduction):
//      per-cycle mean/variance for *every* instance lane.
//
// Aggregation steps 2–4 repeat `match_rounds` times per cycle
// (independent matchings, each applied before the next round draws), so
// a node left unmatched in round 1 retries and a matched node keeps
// mixing. Matching quality comes from two ingredients: kCandidates
// fallback proposals per node (an alive-but-claimed first choice falls
// through to the next view entry) and the per-round pseudorandom
// priority keys (a fixed id-order priority starves the same late nodes
// every round — persistent stragglers whose deviation dominates
// late-cycle variance).
//
// Determinism: every random draw is keyed by (seed, cycle, node id,
// phase/round), never by shard or thread, and every cross-shard
// reduction (match reservations, statistics) is either a commutative
// atomic min or a fixed-shape tree — so the output is bit-identical for
// any GOSSIP_SHARDS × GOSSIP_THREADS combination (golden-tested for
// 1/2/8 shards in tests/determinism_test.cpp and
// tests/intra_rep_workloads_test.cpp), including degenerate geometries
// (shards > N, shards emptied by a mass crash). No phase of the cycle
// is serial O(N): the only serial residue is O(shards + segments) glue
// (prefix sums and the reduction-tree folds).
//
// The matched model restricts each node to at most one exchange per
// round (the serial driver additionally lets nodes answer several
// initiators), so per-cycle convergence factors differ by a constant
// from CycleSimulation — compare intra-rep results against intra-rep
// goldens, not against the serial driver's.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "common/stream_salt.hpp"
#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "membership/newscast.hpp"
#include "overlay/sharded_population.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"

namespace gossip::experiment {

class ParallelRunner;  // experiment/parallel_runner.hpp

/// Wall-clock decomposition of one intra-rep run: total time inside
/// run() vs time spent inside ParallelRunner batches. The difference is
/// the serial residue (phase glue, prefix sums, reduction-tree folds) —
/// the Amdahl term perf_report tracks as `serial_phase_fraction`.
struct IntraRepPhaseProfile {
  double total_seconds = 0.0;
  double parallel_seconds = 0.0;

  [[nodiscard]] double serial_fraction() const {
    if (total_seconds <= 0.0) return 0.0;
    const double f = 1.0 - parallel_seconds / total_seconds;
    return f < 0.0 ? 0.0 : f;
  }
};

/// One domain-decomposed repetition. Construct, initialize values, run
/// against a ParallelRunner, then read estimates/statistics — the same
/// lifecycle and workload vocabulary as CycleSimulation: scalar AVERAGE,
/// COUNT, and `instances`-wide multi-aggregate state.
class IntraRepSimulation {
public:
  /// `shards` is the domain-decomposition width (GOSSIP_SHARDS); the
  /// runner passed to run() supplies the worker threads. Degenerate
  /// geometries (shards > nodes) are legal — empty shards idle.
  IntraRepSimulation(const SimConfig& config, std::uint64_t seed,
                     unsigned shards);

  /// Scalar initialization (requires instances == 1).
  void init_scalar(const std::function<double(NodeId)>& value_of);
  void init_peak(double peak, std::uint32_t peak_holder = 0);

  /// The COUNT workload (§5): `instances` leaders drawn uniformly without
  /// replacement; leader i's slot i starts at 1, everything else 0. Same
  /// draw sequence as CycleSimulation::init_count_leaders.
  void init_count_leaders();

  /// Runs config.cycles matched cycles under `plan`, parallelizing each
  /// phase across `pool`. Call once.
  void run(const failure::FailurePlan& plan, ParallelRunner& pool);

  /// Optional wall-clock instrumentation: when set before run(), the
  /// profile accumulates total vs in-parallel-batch seconds (perf_report
  /// derives the serial-phase fraction from it). Must outlive run().
  void set_phase_profile(IntraRepPhaseProfile* profile) {
    profile_ = profile;
  }

  // ---- results ---------------------------------------------------------

  [[nodiscard]] const overlay::ShardedPopulation& population() const {
    return population_;
  }
  [[nodiscard]] unsigned shards() const { return population_.shards(); }

  [[nodiscard]] double estimate(NodeId node,
                                std::uint32_t instance = 0) const;

  /// Instance-0 estimates of all participating live nodes, live-list
  /// order.
  [[nodiscard]] std::vector<double> scalar_estimates() const;

  /// COUNT outputs: per participating node, 1/e per instance combined
  /// with the §7.3 trimmed mean (mirrors CycleSimulation::size_estimates;
  /// a non-positive instance estimate contributes +inf).
  [[nodiscard]] std::vector<double> size_estimates() const;

  [[nodiscard]] const std::vector<stats::RunningStats>& cycle_stats() const {
    return cycle_stats_;
  }

  /// Per-cycle statistics of *every* instance lane:
  /// instance_cycle_stats()[c][i] summarizes lane i at snapshot c
  /// (lane 0 is cycle_stats()[c]). Multi-instance runs (figs. 6/8)
  /// record the variance trajectory of each concurrent aggregate, not
  /// just slot 0 — mirrored by CycleSimulation::instance_cycle_stats().
  [[nodiscard]] const std::vector<std::vector<stats::RunningStats>>&
  instance_cycle_stats() const {
    return instance_stats_;
  }

  [[nodiscard]] stats::ConvergenceTracker tracker() const;

  /// The leaders chosen by init_count_leaders().
  [[nodiscard]] const std::vector<NodeId>& leaders() const {
    return leaders_;
  }

  // ---- continuous-service results (empty when drift/service are off) ---
  // Mirrors CycleSimulation's service surface so the parity tests can
  // compare the two engines field by field.

  /// The underlying local values (maintained when drift or the service
  /// pipeline is on; empty otherwise). values()[u] is node u's v_u.
  [[nodiscard]] const std::vector<double>& local_values() const {
    return values_;
  }

  /// |estimate mean − current true mean| at each stats snapshot, aligned
  /// with cycle_stats().
  [[nodiscard]] const std::vector<double>& tracking_error() const {
    return tracking_error_;
  }

  /// Age (in cycles) of the snapshot a query would be served, sampled
  /// once per cycle from the first publication on.
  [[nodiscard]] const std::vector<std::uint32_t>& staleness_samples() const {
    return staleness_;
  }

  /// |served snapshot value − current true mean| aligned with
  /// staleness_samples().
  [[nodiscard]] const std::vector<double>& served_error() const {
    return served_error_;
  }

  /// The published-report store backing the query API.
  [[nodiscard]] const SnapshotStore& snapshots() const { return store_; }

private:
  void build_topology();
  void apply_failures(const failure::CycleEvent& event, std::uint64_t now,
                      ParallelRunner& pool);
  void apply_restart();
  void apply_drift(std::uint32_t cycle, ParallelRunner& pool);
  void service_cycle(std::uint32_t cycle);
  void flush_combine_windows();
  void pin_injected_values();
  void newscast_round(std::uint32_t cycle, std::uint32_t round,
                      std::uint64_t now, ParallelRunner& pool);
  void aggregation_round(std::uint32_t cycle, std::uint32_t round,
                         ParallelRunner& pool);
  void apply_pairs(std::uint32_t cycle, ParallelRunner& pool);
  template <typename SampleFn>
  void propose(std::uint32_t cycle, std::uint64_t salt, bool draw_outcome,
               bool participants_only, ParallelRunner& pool,
               SampleFn&& sample);
  void match(bool participants_only, ParallelRunner& pool);
  void collect_pairs(ParallelRunner& pool);
  void record_stats(ParallelRunner& pool);

  /// pool.run with optional phase-profile accounting.
  void par_run(ParallelRunner& pool, std::size_t count,
               const std::function<void(std::size_t)>& job);

  [[nodiscard]] bool participating(NodeId id) const {
    return participant_[id.value()] != 0;
  }
  /// Mirrors CycleSimulation::counted(): byzantine nodes that corrupt
  /// the aggregate are excluded from estimate statistics.
  [[nodiscard]] bool counted(NodeId id) const {
    return participating(id) && !(exclude_byz_stats_ && byz_[id.value()]);
  }

  /// The derived generator for one node's draws in one phase (round) of
  /// one cycle. Keyed by node identity — never by shard — so
  /// partitioning is invisible to the random stream. The mix shape and
  /// every multiplier live in the stream-salt registry.
  [[nodiscard]] Rng node_stream(std::uint32_t cycle, std::uint32_t node,
                                std::uint64_t salt) const {
    std::uint64_t s = salt::node_stream_key(seed_, cycle, node, salt);
    return Rng(splitmix64(s));
  }

  /// Reservation priority of node u's candidate edge c: the per-round
  /// pseudorandom 31-bit key leads (the scan order), node id and
  /// candidate index break ties into a strict total order. Smaller wins;
  /// every packed value is < 2^63, so kFreeCell can never collide.
  [[nodiscard]] std::uint64_t edge_priority(std::uint32_t u,
                                            unsigned c) const {
    return (static_cast<std::uint64_t>(key_[u]) << 32) |
           (static_cast<std::uint64_t>(u) << 2) | c;
  }

  static constexpr std::uint64_t kFreeCell = ~std::uint64_t{0};
  /// Fixed statistics-segment count: the per-cycle stats pass is
  /// parallel over these id-space segments and folded through
  /// stats::merge_tree. The count is a constant — never the shard or
  /// thread count — so the float result is shard/thread-invariant.
  static constexpr std::uint32_t kStatsSegments = 64;

  SimConfig config_;
  std::uint64_t seed_;
  Rng rng_;  // serial boundary randomness: topology build, failures
  overlay::ShardedPopulation population_;
  std::vector<double> estimates_;      // flat [node * instances + i]
  std::vector<char> participant_;      // per node
  /// Proposal candidates per node per round; candidates past the first
  /// are claimed-peer fallbacks for the match resolution.
  static constexpr unsigned kCandidates = 4;
  std::vector<NodeId> proposals_;      // flat [node * kCandidates + c]
  std::vector<std::uint8_t> outcome_;  // per node: drawn ExchangeOutcome
  std::vector<std::uint32_t> key_;     // per node: per-round priority key
  std::vector<char> matched_;          // per node: claimed this phase
  std::vector<NodeId> partner_;        // per node: matched counterpart
  std::vector<std::uint8_t> initiator_;  // per node: owns the pair
  std::vector<std::uint8_t> ncand_;    // per node: viable-candidate count
  std::vector<std::uint8_t> cursor_;   // per node: first maybe-free cand
  std::unique_ptr<std::atomic<std::uint64_t>[]> reserve_;  // per node
  std::size_t reserve_size_ = 0;
  std::vector<std::vector<std::uint32_t>> active_;   // per shard
  std::vector<std::vector<std::uint32_t>> touched_;  // per shard
  std::vector<std::size_t> pair_offsets_;  // per-shard pair prefix sums
  std::vector<std::pair<NodeId, NodeId>> pairs_;
  std::vector<NodeId> victims_;        // kill batch staging
  std::vector<NodeId> leaders_;        // init_count_leaders picks

  // ---- adversarial extensions (all empty/off on the plain path) --------
  std::vector<char> byz_;           // adversary membership per node
  bool general_ = false;            // any aggregation-level deviation?
  bool exclude_byz_stats_ = false;  // drop byzantine estimates from stats
  std::vector<double> window_;       // robust combine: flat [node * W + k]
  std::vector<std::uint8_t> wfill_;  // filled window entries per node
  std::vector<std::uint8_t> wpos_;   // next ring slot per node
  /// Per-apply-chunk staging for robust_combine_receive (pairs are
  /// disjoint, so window/estimate writes are race-free; only the scratch
  /// needs to be per-job).
  std::vector<std::vector<double>> combine_scratch_;
  std::vector<std::vector<double>> combine_means_;
  std::vector<double> initial_;     // epoch-restart snapshot
  std::vector<stats::RunningStats> cycle_stats_;       // lane 0
  std::vector<std::vector<stats::RunningStats>> instance_stats_;
  std::vector<stats::RunningStats> seg_stats_;   // [segment * t + lane]
  std::vector<stats::RunningStats> lane_scratch_;  // merge_tree input

  // ---- continuous-service extensions (empty/off on the plain path) -----
  std::vector<double> values_;        // underlying local values v_u
  std::vector<double> tracking_error_;     // per snapshot
  std::vector<std::uint32_t> staleness_;   // per post-publish cycle
  std::vector<double> served_error_;       // aligned with staleness_
  double true_mean_ = 0.0;                 // last snapshot's value mean
  std::vector<stats::RunningStats> val_seg_stats_;  // [segment], values
  SnapshotStore store_;
  std::optional<core::EpochMachine> epoch_machine_;

  overlay::Graph graph_;  // static topologies
  std::unique_ptr<membership::NewscastNetwork> newscast_;
  std::vector<membership::NewscastNetwork::MergeBuffers> merge_buffers_;

  IntraRepPhaseProfile* profile_ = nullptr;

  bool initialized_ = false;
  bool ran_ = false;
};

}  // namespace gossip::experiment
