// Domain-decomposed single-repetition simulator: one giant-N repetition
// whose *cycles* are executed by several threads at once — the mode for
// N=10⁶ runs where fanning repetitions across cores (parallel_runner's
// map) doesn't help because there is only one repetition.
//
// Execution model ("matched" bulk-synchronous cycles):
//   1. failure events apply at the cycle boundary; batched crashes retire
//      through ShardedPopulation::kill_many's stable parallel compaction;
//   2. PROPOSE (parallel over id-space shards, read-only): every live
//      node draws its exchange partner — and the exchange's communication
//      fate — from its own derived RNG stream;
//   3. MATCH (serial, id order, O(N) scan): proposals resolve greedily
//      into a set of *disjoint* exchange pairs; a node already claimed,
//      or proposing a dead peer (the §4.2 timeout), sits the cycle out;
//   4. APPLY (parallel over pair chunks): because pairs are disjoint,
//      cache merges and estimate updates touch disjoint state — no locks,
//      and the final state is independent of execution order.
//
// Determinism: every random draw is keyed by (seed, cycle, node id,
// phase), never by shard or thread, and every cross-shard reduction
// (match scan, statistics) runs in a fixed order — so the output is
// bit-identical for any GOSSIP_SHARDS × GOSSIP_THREADS combination
// (golden-tested for 1/2/8 shards in tests/determinism_test.cpp).
//
// The matched model restricts each node to at most one exchange per
// cycle (the serial driver additionally lets nodes answer several
// initiators), so per-cycle convergence factors differ by a constant
// from CycleSimulation — compare intra-rep results against intra-rep
// goldens, not against the serial driver's.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "membership/newscast.hpp"
#include "overlay/sharded_population.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"

namespace gossip::experiment {

class ParallelRunner;  // experiment/parallel_runner.hpp

/// One domain-decomposed repetition. Construct, initialize, run against a
/// ParallelRunner, then read estimates/statistics — the same lifecycle as
/// CycleSimulation, restricted to scalar workloads (instances == 1).
class IntraRepSimulation {
public:
  /// `shards` is the domain-decomposition width (GOSSIP_SHARDS); the
  /// runner passed to run() supplies the worker threads.
  IntraRepSimulation(const SimConfig& config, std::uint64_t seed,
                     unsigned shards);

  void init_scalar(const std::function<double(NodeId)>& value_of);
  void init_peak(double peak, std::uint32_t peak_holder = 0);

  /// Runs config.cycles matched cycles under `plan`, parallelizing each
  /// phase across `pool`. Call once.
  void run(const failure::FailurePlan& plan, ParallelRunner& pool);

  // ---- results ---------------------------------------------------------

  [[nodiscard]] const overlay::ShardedPopulation& population() const {
    return population_;
  }
  [[nodiscard]] unsigned shards() const { return population_.shards(); }

  [[nodiscard]] double estimate(NodeId node) const;

  /// Estimates of all participating live nodes, live-list order.
  [[nodiscard]] std::vector<double> scalar_estimates() const;

  [[nodiscard]] const std::vector<stats::RunningStats>& cycle_stats() const {
    return cycle_stats_;
  }
  [[nodiscard]] stats::ConvergenceTracker tracker() const;

private:
  void build_topology();
  void apply_failures(const failure::CycleEvent& event, std::uint64_t now,
                      ParallelRunner& pool);
  void newscast_cycle(std::uint32_t cycle, std::uint64_t now,
                      ParallelRunner& pool);
  void aggregation_cycle(std::uint32_t cycle, ParallelRunner& pool);
  template <typename SampleFn>
  void propose(std::uint32_t cycle, std::uint64_t salt, bool draw_outcome,
               bool participants_only, ParallelRunner& pool,
               SampleFn&& sample);
  void match(bool participants_only);
  void record_stats();

  [[nodiscard]] bool participating(NodeId id) const {
    return participant_[id.value()] != 0;
  }

  /// The derived generator for one node's draws in one phase of one
  /// cycle. Keyed by node identity — never by shard — so partitioning is
  /// invisible to the random stream.
  [[nodiscard]] Rng node_stream(std::uint32_t cycle, std::uint32_t node,
                                std::uint64_t salt) const {
    std::uint64_t s = seed_ ^
                      (static_cast<std::uint64_t>(cycle) + 1) *
                          0x9e3779b97f4a7c15ULL ^
                      (static_cast<std::uint64_t>(node) + 1) *
                          0xd1342543de82ef95ULL ^
                      salt;
    return Rng(splitmix64(s));
  }

  SimConfig config_;
  std::uint64_t seed_;
  Rng rng_;  // serial boundary randomness: topology build, failures
  overlay::ShardedPopulation population_;
  std::vector<double> estimates_;      // per node (instances == 1)
  std::vector<char> participant_;      // per node
  std::vector<NodeId> proposal_;       // per node: proposed partner
  std::vector<std::uint8_t> outcome_;  // per node: drawn ExchangeOutcome
  std::vector<char> matched_;          // per node: claimed this phase
  std::vector<std::pair<NodeId, NodeId>> pairs_;
  std::vector<NodeId> victims_;        // kill batch staging
  std::vector<stats::RunningStats> cycle_stats_;

  overlay::Graph graph_;  // static topologies
  std::unique_ptr<membership::NewscastNetwork> newscast_;
  std::vector<membership::NewscastNetwork::MergeBuffers> merge_buffers_;

  bool initialized_ = false;
  bool ran_ = false;
};

}  // namespace gossip::experiment
