// Domain-decomposed single-repetition simulator: one giant-N repetition
// whose *cycles* are executed by several threads at once — the mode for
// N=10⁶ runs where fanning repetitions across cores (parallel_runner's
// map) doesn't help because there is only one repetition.
//
// Execution model ("matched" bulk-synchronous cycles):
//   1. failure events apply at the cycle boundary; batched crashes retire
//      through ShardedPopulation::kill_many's stable parallel compaction;
//   2. PROPOSE (parallel over id-space shards, read-only): every live
//      node draws its exchange partner — and the exchange's communication
//      fate — from its own derived RNG stream;
//   3. MATCH (serial, id order, O(N) scan): proposals resolve greedily
//      into a set of *disjoint* exchange pairs; a node already claimed,
//      or proposing a dead peer (the §4.2 timeout), sits the cycle out;
//   4. APPLY (parallel over pair chunks): because pairs are disjoint,
//      cache merges and estimate updates touch disjoint state — no locks,
//      and the final state is independent of execution order.
//
// Aggregation steps 2–4 repeat `match_rounds` times per cycle
// (independent matchings, each applied before the next round draws), so
// a node left unmatched in round 1 retries and a matched node keeps
// mixing. Matching quality comes from two ingredients: kCandidates
// fallback proposals per node (an alive-but-claimed first choice falls
// through to the next view entry) and a per-round pseudorandom match
// scan order (a fixed id-order scan starves the same late nodes every
// round — persistent stragglers whose deviation dominates late-cycle
// variance). One round yields a per-cycle convergence factor of ≈ 0.55
// on the AVERAGE-peak workload; the factor compounds per round, meeting
// the serial driver's ≈ 0.30 at R = 2 and beating it (≈ 0.16–0.19) at
// R = 3 (see EXPERIMENTS.md's factor-vs-rounds table).
//
// Determinism: every random draw is keyed by (seed, cycle, node id,
// phase/round), never by shard or thread, and every cross-shard
// reduction (match scan, statistics) runs in a fixed order — so the
// output is bit-identical for any GOSSIP_SHARDS × GOSSIP_THREADS
// combination (golden-tested for 1/2/8 shards in
// tests/determinism_test.cpp and tests/intra_rep_workloads_test.cpp),
// including degenerate geometries (shards > N, shards emptied by a mass
// crash).
//
// The matched model restricts each node to at most one exchange per
// round (the serial driver additionally lets nodes answer several
// initiators), so per-cycle convergence factors differ by a constant
// from CycleSimulation — compare intra-rep results against intra-rep
// goldens, not against the serial driver's.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "membership/newscast.hpp"
#include "overlay/sharded_population.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"

namespace gossip::experiment {

class ParallelRunner;  // experiment/parallel_runner.hpp

/// One domain-decomposed repetition. Construct, initialize values, run
/// against a ParallelRunner, then read estimates/statistics — the same
/// lifecycle and workload vocabulary as CycleSimulation: scalar AVERAGE,
/// COUNT, and `instances`-wide multi-aggregate state.
class IntraRepSimulation {
public:
  /// `shards` is the domain-decomposition width (GOSSIP_SHARDS); the
  /// runner passed to run() supplies the worker threads. Degenerate
  /// geometries (shards > nodes) are legal — empty shards idle.
  IntraRepSimulation(const SimConfig& config, std::uint64_t seed,
                     unsigned shards);

  /// Scalar initialization (requires instances == 1).
  void init_scalar(const std::function<double(NodeId)>& value_of);
  void init_peak(double peak, std::uint32_t peak_holder = 0);

  /// The COUNT workload (§5): `instances` leaders drawn uniformly without
  /// replacement; leader i's slot i starts at 1, everything else 0. Same
  /// draw sequence as CycleSimulation::init_count_leaders.
  void init_count_leaders();

  /// Runs config.cycles matched cycles under `plan`, parallelizing each
  /// phase across `pool`. Call once.
  void run(const failure::FailurePlan& plan, ParallelRunner& pool);

  // ---- results ---------------------------------------------------------

  [[nodiscard]] const overlay::ShardedPopulation& population() const {
    return population_;
  }
  [[nodiscard]] unsigned shards() const { return population_.shards(); }

  [[nodiscard]] double estimate(NodeId node,
                                std::uint32_t instance = 0) const;

  /// Instance-0 estimates of all participating live nodes, live-list
  /// order.
  [[nodiscard]] std::vector<double> scalar_estimates() const;

  /// COUNT outputs: per participating node, 1/e per instance combined
  /// with the §7.3 trimmed mean (mirrors CycleSimulation::size_estimates;
  /// a non-positive instance estimate contributes +inf).
  [[nodiscard]] std::vector<double> size_estimates() const;

  [[nodiscard]] const std::vector<stats::RunningStats>& cycle_stats() const {
    return cycle_stats_;
  }
  [[nodiscard]] stats::ConvergenceTracker tracker() const;

  /// The leaders chosen by init_count_leaders().
  [[nodiscard]] const std::vector<NodeId>& leaders() const {
    return leaders_;
  }

private:
  void build_topology();
  void apply_failures(const failure::CycleEvent& event, std::uint64_t now,
                      ParallelRunner& pool);
  void newscast_round(std::uint32_t cycle, std::uint32_t round,
                      std::uint64_t now, ParallelRunner& pool);
  void aggregation_round(std::uint32_t cycle, std::uint32_t round,
                         ParallelRunner& pool);
  void apply_pairs(ParallelRunner& pool);
  template <typename SampleFn>
  void propose(std::uint32_t cycle, std::uint64_t salt, bool draw_outcome,
               bool participants_only, ParallelRunner& pool,
               SampleFn&& sample);
  void match(std::uint32_t cycle, std::uint64_t salt,
             bool participants_only);
  void record_stats();

  [[nodiscard]] bool participating(NodeId id) const {
    return participant_[id.value()] != 0;
  }

  /// The derived generator for one node's draws in one phase (round) of
  /// one cycle. Keyed by node identity — never by shard — so
  /// partitioning is invisible to the random stream.
  [[nodiscard]] Rng node_stream(std::uint32_t cycle, std::uint32_t node,
                                std::uint64_t salt) const {
    std::uint64_t s = seed_ ^
                      (static_cast<std::uint64_t>(cycle) + 1) *
                          0x9e3779b97f4a7c15ULL ^
                      (static_cast<std::uint64_t>(node) + 1) *
                          0xd1342543de82ef95ULL ^
                      salt;
    return Rng(splitmix64(s));
  }

  SimConfig config_;
  std::uint64_t seed_;
  Rng rng_;  // serial boundary randomness: topology build, failures
  overlay::ShardedPopulation population_;
  std::vector<double> estimates_;      // flat [node * instances + i]
  std::vector<char> participant_;      // per node
  /// Proposal candidates per node per round; candidates past the first
  /// are claimed-peer fallbacks for the match scan.
  static constexpr unsigned kCandidates = 4;
  std::vector<NodeId> proposals_;      // flat [node * kCandidates + c]
  std::vector<std::uint8_t> outcome_;  // per node: drawn ExchangeOutcome
  std::vector<char> matched_;          // per node: claimed this phase
  std::vector<std::uint32_t> scan_order_;  // per-round match permutation
  std::vector<std::pair<NodeId, NodeId>> pairs_;
  std::vector<NodeId> victims_;        // kill batch staging
  std::vector<NodeId> leaders_;        // init_count_leaders picks
  std::vector<stats::RunningStats> cycle_stats_;

  overlay::Graph graph_;  // static topologies
  std::unique_ptr<membership::NewscastNetwork> newscast_;
  std::vector<membership::NewscastNetwork::MergeBuffers> merge_buffers_;

  bool initialized_ = false;
  bool ran_ = false;
};

}  // namespace gossip::experiment
