// The single source of truth for the ScenarioSpec field surface.
//
// Every field of the declarative spec vocabulary is ONE row in ONE of
// the X-macro tables below. From these rows spec.cpp generates, in one
// place each:
//
//   * canonical JSON serialization (key order == row order, including
//     the conditional-emission predicates that keep pre-existing specs'
//     canonical JSON and spec_hash bit-identical),
//   * JSON parsing, including the per-object unknown-key rejection
//     lists and the precise "spec: <path> must be ..." error contexts,
//   * the --set override dispatch, its supported-key list and the
//     nearest-key (Levenshtein) typo-suggestion candidate set,
//   * the runtime introspection table (spec_field_table()) that tests
//     and tools/spec_surface_lint.py audit.
//
// Adding a field is adding a row (plus its validation in validate()
// and, for enums, a name table); forgetting any other surface is no
// longer possible — the parser, serializer and --set table all expand
// from the row, and the spec-surface lint fails CI unless the field
// also has a golden SpecError test, an EXPERIMENTS.md mention and a
// --set round-trip where applicable.
//
// Row shape (every table):
//
//   X(member, json_key, tag, extra, default, emit, set_tok, set_key, sweep)
//
//   member   C++ member name within the owning struct
//   json_key canonical JSON key (string literal)
//   tag      field kind, selects parse/serialize codegen:
//              STR   std::string
//              U32   std::uint32_t
//              U64   std::uint64_t
//              UNS   unsigned
//              SIZE  std::size_t (serialized as u64)
//              DBL   double
//              PROB  double restricted to [0,1] at parse time
//              BOOL  bool
//              ENUM  enum via a NameTable (see `extra`)
//              OBJ   nested object (see `extra`)
//              PTS   the sweep-point array (dedicated helpers)
//   extra    ENUM: the NameTable identifier (spec.cpp); OBJ: the
//            <extra>_to_json / <extra>_from_json function prefix;
//            otherwise `_`
//   default  the default value, as documentation for introspection
//            (the authoritative defaults are the member initializers)
//   emit     serialization predicate:
//              ALWAYS        unconditional (the pre-redesign surface)
//              IF_NONZERO    emitted only when != 0 (late-added scalar
//                            fields of an always-emitted object)
//              IF_NONEMPTY   emitted only when non-empty (title/label)
//              IF_NONDEFAULT whole object emitted only when any field
//                            differs from the defaults (late-added
//                            vocabularies: adversary/combine/drift/
//                            service/runtime)
//   set_tok  SET when the field has a --set override key, else NOSET
//   set_key  the --set key (string literal; "" for NOSET rows)
//   sweep    the sweep axis that writes this field in at_point(), as a
//            string literal ("" when the field is not sweepable)
//
// tools/spec_surface_lint.py parses these rows textually — keep one
// row per X(...) invocation.
#pragma once

// ---- top level ---------------------------------------------------------
// Row order is the canonical JSON key order; the --set key list starts
// with these rows (SET rows only) in this order.
#define GOSSIP_SPEC_TOP_FIELDS(X)                                           \
  X(name, "name", STR, _, "\"\"", ALWAYS, SET, "name", "")                  \
  X(title, "title", STR, _, "\"\"", IF_NONEMPTY, SET, "title", "")          \
  X(driver, "driver", ENUM, kDriverNames, "cycle", ALWAYS, SET, "driver",   \
    "")                                                                     \
  X(aggregate, "aggregate", ENUM, kAggregateNames, "average", ALWAYS, SET,  \
    "aggregate", "")                                                        \
  X(instances, "instances", U32, _, "1", ALWAYS, SET, "instances",          \
    "instances")                                                            \
  X(init, "init", ENUM, kInitNames, "peak", ALWAYS, SET, "init", "init")    \
  X(nodes, "nodes", U32, _, "10000", ALWAYS, SET, "nodes", "nodes")         \
  X(cycles, "cycles", U32, _, "30", ALWAYS, SET, "cycles", "cycles")        \
  X(reps, "reps", U32, _, "1", ALWAYS, SET, "reps", "")                     \
  X(seed, "seed", U64, _, "0x5eed", ALWAYS, SET, "seed", "")                \
  X(topology, "topology", OBJ, topology, "newscast(c=30)", ALWAYS, NOSET,   \
    "", "")                                                                 \
  X(failure, "failure", OBJ, failure, "none", ALWAYS, NOSET, "", "")        \
  X(comm, "comm", OBJ, comm, "none", ALWAYS, NOSET, "", "")                 \
  X(adversary, "adversary", OBJ, adversary, "none", IF_NONDEFAULT, NOSET,   \
    "", "")                                                                 \
  X(combine, "combine", OBJ, combine, "mean", IF_NONDEFAULT, NOSET, "", "") \
  X(drift, "drift", OBJ, drift, "none", IF_NONDEFAULT, NOSET, "", "")       \
  X(service, "service", OBJ, service, "none", IF_NONDEFAULT, NOSET, "", "") \
  X(runtime, "runtime", OBJ, runtime, "loopback", IF_NONDEFAULT, NOSET,     \
    "", "")                                                                 \
  X(atomic_exchanges, "atomic_exchanges", BOOL, _, "true", ALWAYS, SET,     \
    "atomic_exchanges", "atomicity")                                        \
  X(engine, "engine", ENUM, kEngineNames, "auto", ALWAYS, SET, "engine",    \
    "")                                                                     \
  X(threads, "threads", UNS, _, "0", ALWAYS, SET, "threads", "")            \
  X(shards, "shards", UNS, _, "0", ALWAYS, SET, "shards", "")               \
  X(match_rounds, "match_rounds", U32, _, "1", ALWAYS, SET, "match_rounds", \
    "")                                                                     \
  X(sweep, "sweep", OBJ, sweep, "single(0)", ALWAYS, NOSET, "", "")

// ---- nested: topology (cycle_sim.hpp's TopologyConfig) -----------------
#define GOSSIP_SPEC_TOPOLOGY_FIELDS(X)                                      \
  X(kind, "kind", ENUM, kTopologyNames, "newscast", ALWAYS, NOSET, "", "")  \
  X(degree, "degree", U32, _, "20", ALWAYS, NOSET, "", "")                  \
  X(beta, "beta", DBL, _, "0.0", ALWAYS, NOSET, "", "beta")                 \
  X(cache_size, "cache_size", SIZE, _, "30", ALWAYS, NOSET, "",             \
    "cache_size")

// ---- nested: failure ---------------------------------------------------
// waves/duration/components joined after the original kinds' provenance
// hashes were pinned: IF_NONZERO keeps every pre-existing canonical
// JSON byte-identical.
#define GOSSIP_SPEC_FAILURE_FIELDS(X)                                       \
  X(kind, "kind", ENUM, kFailureNames, "none", ALWAYS, NOSET, "", "")       \
  X(p, "p", PROB, _, "0.0", ALWAYS, NOSET, "", "crash_p")                   \
  X(cycle, "cycle", U32, _, "0", ALWAYS, NOSET, "", "death_cycle")          \
  X(fraction, "fraction", PROB, _, "0.0", ALWAYS, NOSET, "",                \
    "churn_fraction")                                                       \
  X(rate, "rate", U32, _, "0", ALWAYS, NOSET, "", "")                       \
  X(waves, "waves", U32, _, "0", IF_NONZERO, NOSET, "", "")                 \
  X(duration, "duration", U32, _, "0", IF_NONZERO, NOSET, "",               \
    "partition_duration")                                                   \
  X(components, "components", U32, _, "0", IF_NONZERO, NOSET, "",           \
    "partition_components")

// ---- nested: comm ------------------------------------------------------
#define GOSSIP_SPEC_COMM_FIELDS(X)                                          \
  X(link_failure, "link_failure", PROB, _, "0.0", ALWAYS, NOSET, "",        \
    "link_p")                                                               \
  X(message_loss, "message_loss", PROB, _, "0.0", ALWAYS, NOSET, "",        \
    "loss_p")

// ---- nested: adversary -------------------------------------------------
#define GOSSIP_SPEC_ADVERSARY_FIELDS(X)                                     \
  X(behavior, "behavior", ENUM, kAdversaryNames, "none", ALWAYS, SET,       \
    "adversary", "")                                                        \
  X(fraction, "fraction", DBL, _, "0.0", ALWAYS, SET, "adversary_fraction", \
    "byz_fraction")                                                         \
  X(value, "value", DBL, _, "0.0", ALWAYS, SET, "adversary_value", "")

// ---- nested: combine ---------------------------------------------------
#define GOSSIP_SPEC_COMBINE_FIELDS(X)                                       \
  X(kind, "kind", ENUM, kCombineNames, "mean", ALWAYS, SET, "combine", "")  \
  X(alpha, "alpha", DBL, _, "0.0", ALWAYS, SET, "combine_alpha", "")        \
  X(groups, "groups", U32, _, "0", ALWAYS, SET, "combine_groups", "")       \
  X(window, "window", U32, _, "8", ALWAYS, SET, "combine_window", "")

// ---- nested: drift -----------------------------------------------------
#define GOSSIP_SPEC_DRIFT_FIELDS(X)                                         \
  X(kind, "kind", ENUM, kDriftNames, "none", ALWAYS, SET, "drift", "")      \
  X(rate, "rate", DBL, _, "0.0", ALWAYS, SET, "drift_rate", "")             \
  X(magnitude, "magnitude", DBL, _, "0.0", ALWAYS, SET, "drift_magnitude",  \
    "")                                                                     \
  X(start_cycle, "start_cycle", U32, _, "0", ALWAYS, SET,                   \
    "drift_start_cycle", "")

// ---- nested: service ---------------------------------------------------
#define GOSSIP_SPEC_SERVICE_FIELDS(X)                                       \
  X(pipeline, "pipeline", BOOL, _, "false", ALWAYS, SET,                    \
    "service_pipeline", "")                                                 \
  X(epoch_cycles, "epoch_cycles", U32, _, "0", ALWAYS, SET,                 \
    "service_epoch_cycles", "")                                             \
  X(staleness_bound, "staleness_bound", U32, _, "0", ALWAYS, SET,           \
    "service_staleness_bound", "")

// ---- nested: runtime ---------------------------------------------------
#define GOSSIP_SPEC_RUNTIME_FIELDS(X)                                       \
  X(workers, "workers", U32, _, "0", ALWAYS, SET, "runtime_workers", "")    \
  X(wheel_slots, "wheel_slots", U32, _, "8", ALWAYS, SET,                   \
    "runtime_wheel_slots", "")                                              \
  X(delta_us, "delta_us", U32, _, "0", ALWAYS, SET, "runtime_delta_us",     \
    "")                                                                     \
  X(timeout_ms, "timeout_ms", U32, _, "2000", ALWAYS, SET,                  \
    "runtime_timeout_ms", "")                                               \
  X(transport, "transport", ENUM, kRuntimeTransportNames, "loopback",       \
    ALWAYS, SET, "runtime_transport", "")                                   \
  X(processes, "processes", U32, _, "1", ALWAYS, SET, "runtime_processes",  \
    "")                                                                     \
  X(process_index, "process_index", U32, _, "0", ALWAYS, SET,               \
    "runtime_process_index", "")                                            \
  X(port_base, "port_base", U32, _, "0", ALWAYS, SET, "runtime_port_base",  \
    "")                                                                     \
  X(latency, "latency", ENUM, kRuntimeLatencyNames, "none", ALWAYS, SET,    \
    "runtime_latency", "")                                                  \
  X(delay_lo_us, "delay_lo_us", U32, _, "0", ALWAYS, SET,                   \
    "runtime_delay_lo_us", "")                                              \
  X(delay_hi_us, "delay_hi_us", U32, _, "0", ALWAYS, SET,                   \
    "runtime_delay_hi_us", "")

// ---- nested: sweep -----------------------------------------------------
#define GOSSIP_SPEC_SWEEP_FIELDS(X)                                         \
  X(axis, "axis", ENUM, kAxisNames, "none", ALWAYS, NOSET, "", "")          \
  X(points, "points", PTS, _, "[{0.0, 0}]", ALWAYS, NOSET, "", "")

// ---- nested: sweep.points entries --------------------------------------
#define GOSSIP_SPEC_SWEEP_POINT_FIELDS(X)                                   \
  X(value, "value", DBL, _, "0.0", ALWAYS, NOSET, "", "")                   \
  X(seed_point, "seed_point", U64, _, "0", ALWAYS, NOSET, "", "")           \
  X(label, "label", STR, _, "\"\"", IF_NONEMPTY, NOSET, "", "")

// Every (group macro, introspection group label, json path prefix)
// triple, for consumers that walk the whole surface at once.
#define GOSSIP_SPEC_ALL_GROUPS(G)                                           \
  G(GOSSIP_SPEC_TOP_FIELDS, "top", "")                                      \
  G(GOSSIP_SPEC_TOPOLOGY_FIELDS, "topology", "topology.")                   \
  G(GOSSIP_SPEC_FAILURE_FIELDS, "failure", "failure.")                      \
  G(GOSSIP_SPEC_COMM_FIELDS, "comm", "comm.")                               \
  G(GOSSIP_SPEC_ADVERSARY_FIELDS, "adversary", "adversary.")                \
  G(GOSSIP_SPEC_COMBINE_FIELDS, "combine", "combine.")                      \
  G(GOSSIP_SPEC_DRIFT_FIELDS, "drift", "drift.")                            \
  G(GOSSIP_SPEC_SERVICE_FIELDS, "service", "service.")                      \
  G(GOSSIP_SPEC_RUNTIME_FIELDS, "runtime", "runtime.")                      \
  G(GOSSIP_SPEC_SWEEP_FIELDS, "sweep", "sweep.")                            \
  G(GOSSIP_SPEC_SWEEP_POINT_FIELDS, "sweep.points", "sweep.points.")
