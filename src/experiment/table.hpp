// Aligned-column output for the benchmark harness: every fig* binary
// prints the series the paper plots as one table, optionally mirrored to
// CSV (GOSSIP_CSV_DIR) for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gossip::experiment {

/// Fixed-precision / scientific double formatting helpers.
std::string fmt(double value, int precision = 4);
std::string fmt_sci(double value, int precision = 3);

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& cells() const {
    return rows_;
  }

  /// Prints with aligned columns.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our cells).
  void write_csv(std::ostream& os) const;

  /// If GOSSIP_CSV_DIR is set, writes `<dir>/<name>.csv` and returns
  /// true; otherwise does nothing.
  bool maybe_write_csv_file(const std::string& name) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Standard bench banner: figure id, description, scale note.
void print_banner(std::ostream& os, const std::string& figure,
                  const std::string& description,
                  const std::string& scale_note);

}  // namespace gossip::experiment
