// Push-sum (Kempe, Dobra, Gehrke, FOCS'03) — the related-work baseline
// the paper positions itself against (§8): averaging by *push-only*
// gossip. Every node holds a (sum, weight) pair initialized to
// (value, 1); each cycle it halves the pair, keeps one half and pushes
// the other to a random peer; the estimate is sum/weight.
//
// Implemented on the same Population/PeerSampler substrate as the
// push–pull driver so the two protocols can be compared on identical
// overlays (bench/baseline_push_sum). The instructive contrasts:
//  * push-sum needs no replies (one-way UDP-style traffic), but
//  * any lost message destroys conserved mass (both sum and weight),
//    where push–pull only suffers from the response-loss asymmetry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "experiment/cycle_sim.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"

namespace gossip::experiment {

struct PushSumConfig {
  std::uint32_t nodes = 10000;
  std::uint32_t cycles = 30;
  TopologyConfig topology;
  double p_message_loss = 0.0;  ///< each pushed half is lost independently
};

class PushSumSimulation {
public:
  PushSumSimulation(const PushSumConfig& config, Rng rng);

  /// Sets the initial values (weights start at 1).
  void init_scalar(const std::function<double(NodeId)>& value_of);

  /// Runs all cycles; call once.
  void run();

  /// sum/weight per node (weight 0 — possible only after losses — yields
  /// an excluded node).
  [[nodiscard]] std::vector<double> estimates() const;

  /// Total conserved quantities (exact without loss).
  [[nodiscard]] double total_sum() const;
  [[nodiscard]] double total_weight() const;

  /// Estimate statistics per cycle (index 0 = initial).
  [[nodiscard]] const std::vector<stats::RunningStats>& cycle_stats() const {
    return cycle_stats_;
  }
  [[nodiscard]] stats::ConvergenceTracker tracker() const;

private:
  void record_stats();

  template <typename Sampler>
  void push_round(Sampler& sampler, std::vector<double>& next_sums,
                  std::vector<double>& next_weights);

  PushSumConfig config_;
  Rng rng_;
  overlay::Population population_;
  overlay::Graph graph_;
  std::unique_ptr<membership::NewscastNetwork> newscast_;
  SamplerVariant sampler_;  // same devirtualized dispatch as CycleSimulation
  std::vector<double> sums_;
  std::vector<double> weights_;
  std::vector<stats::RunningStats> cycle_stats_;
  bool initialized_ = false;
  bool ran_ = false;
};

}  // namespace gossip::experiment
