// The Engine facade: the single execution entry point for every
// experiment workload. It takes a declarative ScenarioSpec (spec.hpp),
// picks the execution path — serial, repetition-parallel fan-out, or the
// domain-decomposed intra-rep mode — resolves the GOSSIP_THREADS /
// GOSSIP_SHARDS knobs (strictly: malformed or zero values stop the run
// with a one-line error), and returns one unified RunResult shape for
// all drivers: the cycle simulator, the event-driven world and the
// push-sum baseline.
//
// Engine selection with `auto`:
//   reps > 1                 → rep_parallel (bit-identical to serial for
//                              any thread count; the historical default)
//   one giant cycle-driver   → intra_rep (N ≥ 500k, single-point specs
//   rep (AVERAGE or COUNT,     only so a sweep series never mixes
//   any instance count)        engines; its matched-cycle model is
//                              bit-deterministic but NOT bit-comparable
//                              with the serial driver — pin engine
//                              explicitly where that matters)
//   otherwise                → serial
//
// Determinism contract (unchanged from the pre-facade entry points):
// repetition r of sweep point p runs with rep_seed(spec.seed,
// p.seed_point, r), results merge in rep order, so every series is a
// pure function of the spec — never of threads, shards or core count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "experiment/parallel_runner.hpp"
#include "experiment/spec.hpp"
#include "failure/failure_plan.hpp"
#include "runtime/counters.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {

/// The unified result of one repetition, for every driver.
struct RunResult {
  /// Estimate statistics per cycle: index 0 the initial state, index
  /// i >= 1 after cycle i. Empty for the event driver.
  std::vector<stats::RunningStats> per_cycle;
  /// Convergence bookkeeping over the recorded variances.
  stats::ConvergenceTracker tracker;
  /// Distribution of the run's final per-node estimates: COUNT's robust
  /// size estimates, the event driver's estimate summary, push-sum's
  /// sum/weight ratios. Zero-count for scalar cycle-driver runs (their
  /// final distribution is per_cycle.back()).
  stats::Summary sizes;
  /// Participating live nodes at the end of the run.
  std::uint32_t participants = 0;

  // ---- continuous-service results (empty/zero when drift and the
  // ---- service pipeline are off — the old shape is unchanged) ---------

  /// |estimate mean − current true mean| per stats snapshot (aligned
  /// with per_cycle), recorded whenever the drivers track local values.
  std::vector<double> tracking_error;
  /// Per-cycle age of the served snapshot, from the first publication on.
  std::vector<std::uint32_t> staleness;
  /// |served snapshot value − current true mean| aligned with staleness.
  std::vector<double> served_error;
  /// Wall-clock seconds inside the simulation run (lane-throughput =
  /// instances * cycles / elapsed_seconds).
  double elapsed_seconds = 0.0;
  /// Epoch reports the service pipeline published.
  std::uint64_t epochs_published = 0;

  // ---- deployment-runtime results (zero/default off the runtime
  // ---- driver — the simulator result shape is unchanged) --------------

  /// True when the repetition executed on the deployment runtime.
  bool runtime_enabled = false;
  /// Message/exchange counters summed over the local workers.
  runtime::RuntimeCounters runtime_counters;
  /// Global-sum conservation pair over the local participants' estimates
  /// (exactly equal under zero loss and no failures).
  double runtime_sum_initial = 0.0;
  double runtime_sum_final = 0.0;
};

/// Derives the per-repetition seed for repetition `rep` of sweep point
/// `point` from the base seed (stable, collision-resistant; unchanged
/// from the pre-facade experiment layer).
std::uint64_t rep_seed(std::uint64_t base, std::uint64_t point,
                       std::uint64_t rep);

/// Optional overrides on top of the spec's engine fields (the CLI's
/// --set threads=… path); zero / kAuto defer to the spec, which defers
/// to GOSSIP_THREADS / GOSSIP_SHARDS, which defer to the hardware.
struct EngineOptions {
  EngineKind kind = EngineKind::kAuto;
  unsigned threads = 0;
  unsigned shards = 0;
};

/// The concrete execution configuration an Engine settled on.
struct ResolvedEngine {
  EngineKind kind = EngineKind::kSerial;  ///< never kAuto
  unsigned threads = 1;
  unsigned shards = 1;
};

/// Resolves spec + options + environment into a concrete engine choice.
/// Throws EnvError (via runner_threads/runner_shards) on malformed
/// GOSSIP_THREADS / GOSSIP_SHARDS.
ResolvedEngine resolve_engine(const ScenarioSpec& spec,
                              const EngineOptions& options = {});

/// One sweep point's executed repetitions (rep order).
struct PointResult {
  SweepPoint point;
  std::vector<RunResult> reps;
};

/// A fully executed scenario sweep.
struct ScenarioResult {
  ScenarioSpec spec;
  ResolvedEngine engine;
  std::vector<PointResult> points;
};

/// The facade. Construct once (optionally with overrides), run specs.
/// Not thread-safe: drive one Engine from one thread.
class Engine {
public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the full sweep: every point, every repetition.
  ScenarioResult run(const ScenarioSpec& spec);

  /// All `spec.reps` repetitions of sweep point `index`, in rep order —
  /// bit-identical for any thread count.
  std::vector<RunResult> run_point(const ScenarioSpec& spec,
                                   std::size_t index);

  /// One repetition with `raw_seed` used directly as the simulation seed
  /// (the historical single-run semantics; sweep-derived runs use
  /// rep_seed internally). `plan_override`, when non-null, replaces the
  /// spec's declarative failure plan — the hook for bespoke plans in
  /// tests and studies that the FailureSpec vocabulary cannot express.
  RunResult run_single(const ScenarioSpec& spec, std::uint64_t raw_seed,
                       const failure::FailurePlan* plan_override = nullptr);

private:
  /// Engine resolution for one sweep point: per-point fields, original
  /// sweep width (multi-point sweeps resolve uniformly — see .cpp).
  [[nodiscard]] ResolvedEngine resolve_point(const ScenarioSpec& spec,
                                             std::size_t index) const;
  ParallelRunner& pool_for(unsigned threads, std::size_t max_jobs);

  EngineOptions options_;
  std::unique_ptr<ParallelRunner> pool_;
  unsigned pool_threads_ = 0;
};

}  // namespace gossip::experiment
