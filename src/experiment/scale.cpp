#include "experiment/scale.hpp"

#include "common/env.hpp"

namespace gossip::experiment {

Scale bench_scale(std::uint32_t def_nodes, std::uint32_t def_reps,
                  std::uint32_t paper_nodes, std::uint32_t paper_reps) {
  const bool full = env_flag("GOSSIP_FULL");
  Scale s;
  s.full = full;
  s.nodes = static_cast<std::uint32_t>(
      env_u64("GOSSIP_N", full ? paper_nodes : def_nodes));
  s.reps = static_cast<std::uint32_t>(
      env_u64("GOSSIP_REPS", full ? paper_reps : def_reps));
  s.seed = env_u64("GOSSIP_SEED", 0x5eedULL);
  return s;
}

}  // namespace gossip::experiment
