#include "experiment/scale.hpp"

#include "common/env.hpp"

namespace gossip::experiment {

Scale bench_scale(std::uint32_t def_nodes, std::uint32_t def_reps,
                  std::uint32_t paper_nodes, std::uint32_t paper_reps,
                  std::optional<bool> full_override) {
  // Strict: GOSSIP_FULL=ture must error out, not silently enable (or
  // disable) a paper-scale run.
  const bool full =
      full_override.has_value() ? *full_override : env_flag_strict("GOSSIP_FULL");
  Scale s;
  s.full = full;
  // Same strictness as the engine knobs: GOSSIP_N=1O00 must stop the run
  // with one line, not quietly simulate a single node.
  s.nodes = static_cast<std::uint32_t>(
      env_u64_positive("GOSSIP_N", full ? paper_nodes : def_nodes));
  s.reps = static_cast<std::uint32_t>(
      env_u64_positive("GOSSIP_REPS", full ? paper_reps : def_reps));
  s.seed = env_u64_checked("GOSSIP_SEED", 0x5eedULL);  // 0 is a valid seed
  return s;
}

}  // namespace gossip::experiment
