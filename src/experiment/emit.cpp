#include "experiment/emit.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/json.hpp"
#include "experiment/table.hpp"
#include "stats/running_stats.hpp"

#ifndef GOSSIP_GIT_SHA
#define GOSSIP_GIT_SHA "unknown"
#endif

namespace gossip::experiment {

OutputFormat parse_format(const std::string& name) {
  if (name == "table") return OutputFormat::kTable;
  if (name == "csv") return OutputFormat::kCsv;
  if (name == "json") return OutputFormat::kJson;
  throw SpecError("spec: --format must be one of table|csv|json, got '" +
                  name + "'");
}

std::string build_git_sha() { return GOSSIP_GIT_SHA; }

namespace {

std::string fold_spec_hashes(const std::vector<ScenarioResult>& results) {
  // One FNV-1a fold over the concatenated canonical spec JSONs: for a
  // single spec this is exactly spec_hash_hex(), and it changes when any
  // spec of a multi-spec scenario changes.
  std::uint64_t h = kFnvOffsetBasis;
  for (const ScenarioResult& r : results) {
    h = fnv1a64(h, to_json(r.spec, /*indent=*/-1));
  }
  return hex64(h);
}

}  // namespace

Provenance make_provenance(const std::vector<ScenarioResult>& results,
                           bool full_scale) {
  Provenance p;
  p.git_sha = build_git_sha();
  p.scale_mode = full_scale ? "paper" : "scaled";
  if (!results.empty()) {
    const ScenarioResult& first = results.front();
    p.nodes = first.spec.nodes;
    p.reps = first.spec.reps;
    p.seed = first.spec.seed;
    p.threads = first.engine.threads;
    p.shards = first.engine.shards;
    p.engine = to_string(first.engine.kind);
  }
  p.spec_hash = fold_spec_hashes(results);
  return p;
}

Provenance make_provenance(const ScenarioResult& result, bool full_scale) {
  return make_provenance(std::vector<ScenarioResult>{result}, full_scale);
}

namespace {

json::Value provenance_value(const Provenance& p) {
  json::Value o = json::Object{};
  o.set("git_sha", p.git_sha);
  o.set("scale_mode", p.scale_mode);
  o.set("nodes", p.nodes);
  o.set("reps", p.reps);
  o.set("seed", p.seed);
  o.set("threads", static_cast<std::uint64_t>(p.threads));
  o.set("shards", static_cast<std::uint64_t>(p.shards));
  o.set("engine", p.engine);
  o.set("spec_hash", p.spec_hash);
  return o;
}

/// COUNT estimates can legitimately diverge ("the estimate can even
/// become infinite", §7.3); JSON has no inf/nan literals, so non-finite
/// values serialize as strings.
json::Value number_or_string(double v) {
  if (std::isfinite(v)) return json::Value(v);
  return json::Value(fmt_estimate(v));
}

json::Value summary_value(const stats::Summary& s) {
  json::Value o = json::Object{};
  o.set("count", static_cast<std::uint64_t>(s.count));
  o.set("mean", number_or_string(s.mean));
  o.set("variance", number_or_string(s.variance));
  o.set("min", number_or_string(s.min));
  o.set("max", number_or_string(s.max));
  o.set("median", number_or_string(s.median));
  return o;
}

json::Value rep_value(const RunResult& r) {
  json::Value o = json::Object{};
  o.set("participants", r.participants);
  if (!r.per_cycle.empty()) {
    o.set("final_mean", number_or_string(r.per_cycle.back().mean()));
    o.set("final_variance", number_or_string(r.per_cycle.back().variance()));
  }
  if (r.sizes.count > 0) o.set("sizes", summary_value(r.sizes));
  // Continuous-service surface: every field rides the same conditional
  // pattern as "sizes" so runs without drift / pipelining serialize
  // bit-identically to the pre-service JSON.
  if (!r.tracking_error.empty()) {
    o.set("tracking_error_final", number_or_string(r.tracking_error.back()));
    double worst = 0.0;
    for (double e : r.tracking_error) worst = std::max(worst, e);
    o.set("tracking_error_max", number_or_string(worst));
  }
  if (!r.staleness.empty()) {
    o.set("queries_served", static_cast<std::uint64_t>(r.staleness.size()));
    o.set("staleness_p99", static_cast<std::uint64_t>(
                               staleness_percentile(r.staleness, 99.0)));
  }
  if (!r.served_error.empty()) {
    o.set("served_error_final", number_or_string(r.served_error.back()));
  }
  if (r.epochs_published > 0) {
    o.set("epochs_published", r.epochs_published);
    o.set("elapsed_seconds", r.elapsed_seconds);
  }
  // Deployment-runtime surface: present only for runtime-driver reps, so
  // simulator output stays bit-identical.
  if (r.runtime_enabled) {
    const runtime::RuntimeCounters& c = r.runtime_counters;
    json::Value rt = json::Object{};
    rt.set("sum_initial", number_or_string(r.runtime_sum_initial));
    rt.set("sum_final", number_or_string(r.runtime_sum_final));
    rt.set("elapsed_seconds", r.elapsed_seconds);
    rt.set("exchanges_completed", c.exchanges_completed);
    rt.set("news_exchanges", c.news_exchanges);
    rt.set("pushes_sent", c.pushes_sent);
    rt.set("pushes_received", c.pushes_received);
    rt.set("replies_sent", c.replies_sent);
    rt.set("replies_received", c.replies_received);
    rt.set("busy_nacks", c.busy_nacks);
    rt.set("timeouts", c.timeouts);
    rt.set("late_replies", c.late_replies);
    rt.set("dropped_loss", c.dropped_loss);
    rt.set("dropped_dead", c.dropped_dead);
    rt.set("messages_sent", c.messages_sent);
    rt.set("messages_received", c.messages_received);
    rt.set("bytes_encoded", c.bytes_encoded);
    rt.set("bytes_decoded", c.bytes_decoded);
    if (c.exchanges_completed > 0) {
      rt.set("bytes_per_exchange",
             static_cast<double>(c.bytes_encoded) /
                 static_cast<double>(c.exchanges_completed));
    }
    o.set("runtime", std::move(rt));
  }
  return o;
}

json::Value table_value(const Table& table) {
  json::Value o = json::Object{};
  json::Array headers;
  for (const std::string& h : table.headers()) headers.emplace_back(h);
  o.set("headers", std::move(headers));
  json::Array rows;
  for (const auto& row : table.cells()) {
    json::Array cells;
    for (const std::string& c : row) cells.emplace_back(c);
    rows.emplace_back(std::move(cells));
  }
  o.set("rows", std::move(rows));
  return o;
}

}  // namespace

std::string provenance_json(const Provenance& p, int indent) {
  return provenance_value(p).dump(indent);
}

std::string fmt_estimate(double value, int precision) {
  // fmt() itself emits the stable nan/inf/-inf tokens now; kept as the
  // documented estimate-cell entry point.
  return fmt(value, precision);
}

Table generic_table(const ScenarioResult& result) {
  const bool count = result.spec.aggregate == AggregateKind::kCount ||
                     result.spec.driver != DriverKind::kCycle;
  const std::string axis = result.spec.sweep.axis == SweepAxis::kNone
                               ? std::string("point")
                               : to_string(result.spec.sweep.axis);
  Table table({axis, "est_mean", "est_min", "est_max", "mean_factor",
               "participants"});
  for (const PointResult& point : result.points) {
    stats::RunningStats means;
    stats::RunningStats factors;
    std::uint32_t participants = 0;
    for (const RunResult& rep : point.reps) {
      const double est = count || rep.per_cycle.empty()
                             ? rep.sizes.mean
                             : rep.per_cycle.back().mean();
      means.add(est);
      if (!rep.tracker.variances().empty()) {
        factors.add(rep.tracker.mean_factor(result.spec.cycles));
      }
      participants = rep.participants;
    }
    table.add_row({fmt(point.point.value, 4), fmt_estimate(means.mean()),
                   fmt_estimate(means.min()), fmt_estimate(means.max()),
                   factors.count() > 0 ? fmt(factors.mean()) : "-",
                   std::to_string(participants)});
  }
  return table;
}

std::uint32_t staleness_percentile(const std::vector<std::uint32_t>& samples,
                                   double pct) {
  if (samples.empty()) return 0;
  std::vector<std::uint32_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::ceil(pct / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
  return sorted[idx];
}

ServiceSummary summarize_service(const ScenarioSpec& spec,
                                 const PointResult& point) {
  ServiceSummary s;
  stats::RunningStats err;
  double elapsed = 0.0;
  for (const RunResult& rep : point.reps) {
    if (!rep.tracking_error.empty()) err.add(rep.tracking_error.back());
    s.p99_staleness =
        std::max(s.p99_staleness, staleness_percentile(rep.staleness, 99.0));
    s.epochs_published += rep.epochs_published;
    s.queries += rep.staleness.size();
    elapsed += rep.elapsed_seconds;
  }
  if (err.count() > 0) s.tracking_error = err.mean();
  if (spec.service.staleness_bound > 0) {
    s.stale_ok = s.p99_staleness <= spec.service.staleness_bound;
  }
  if (elapsed > 0.0) {
    s.queries_per_sec = static_cast<double>(s.queries) / elapsed;
  }
  return s;
}

void render_scenario(std::ostream& os, const std::string& name,
                     const Table& table, const std::string& trailer,
                     const std::vector<ScenarioResult>& results,
                     OutputFormat format, bool full_scale) {
  switch (format) {
    case OutputFormat::kTable:
      table.print(os);
      if (!trailer.empty()) os << '\n' << trailer << '\n';
      return;
    case OutputFormat::kCsv:
      table.write_csv(os);
      return;
    case OutputFormat::kJson:
      break;
  }
  json::Value o = json::Object{};
  o.set("scenario", name);
  o.set("provenance", provenance_value(make_provenance(results, full_scale)));
  o.set("table", table_value(table));
  if (!trailer.empty()) o.set("trailer", trailer);
  json::Array specs;
  for (const ScenarioResult& r : results) {
    json::Value entry = json::Object{};
    entry.set("spec", json::parse(to_json(r.spec, -1)));
    json::Value engine = json::Object{};
    engine.set("kind", to_string(r.engine.kind));
    engine.set("threads", static_cast<std::uint64_t>(r.engine.threads));
    engine.set("shards", static_cast<std::uint64_t>(r.engine.shards));
    entry.set("engine", std::move(engine));
    json::Array points;
    for (const PointResult& pt : r.points) {
      json::Value pv = json::Object{};
      pv.set("value", pt.point.value);
      pv.set("seed_point", pt.point.seed_point);
      if (!pt.point.label.empty()) pv.set("label", pt.point.label);
      json::Array reps;
      for (const RunResult& rep : pt.reps) reps.push_back(rep_value(rep));
      pv.set("reps", std::move(reps));
      points.push_back(std::move(pv));
    }
    entry.set("points", std::move(points));
    specs.push_back(std::move(entry));
  }
  o.set("results", std::move(specs));
  os << o.dump(2) << '\n';
}

}  // namespace gossip::experiment
