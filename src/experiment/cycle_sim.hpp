// The cycle-driven simulator — our C++ equivalent of PeerSim's
// cycle-based mode, which is what the paper ran every §7 experiment on.
//
// Execution model per cycle:
//   1. the failure plan's kills/joins are applied (crashes land *before*
//      the cycle, the paper's worst case);
//   2. if the overlay is NEWSCAST, every live node performs one cache
//      exchange (random permutation order);
//   3. every live participating node initiates one aggregation exchange
//      with a peer drawn from its view; the communication-failure model
//      decides whether the exchange completes, vanishes, or half-applies
//      (response loss);
//   4. estimate statistics are recorded.
//
// A node is *participating* if it was present when the epoch started;
// joiners sit out (paper §4.2) but still run NEWSCAST, and they refuse
// aggregation exchanges — which the paper notes acts like link failure.
//
// The simulation carries `instances` concurrent aggregation slots per
// node (the t of §7.3); every exchange averages all slots element-wise,
// matching the CountMap merge with absent-keys-as-zero (equivalence
// tested in core_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "common/stream_salt.hpp"
#include "core/epoch.hpp"
#include "core/update.hpp"
#include "experiment/snapshot_store.hpp"
#include "failure/comm_failure.hpp"
#include "failure/failure_plan.hpp"
#include "membership/newscast.hpp"
#include "overlay/graph.hpp"
#include "overlay/peer_sampler.hpp"
#include "overlay/population.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"

namespace gossip::experiment {

/// The concrete GETNEIGHBOR() strategies a simulation can run over. The
/// drivers visit the variant once per *cycle* (not per node), so each
/// aggregation loop is stamped out per sampler type and the RNG + table
/// lookups inline — there is no virtual call left on the hot path.
using SamplerVariant =
    std::variant<std::monostate, overlay::GraphPeerSampler,
                 overlay::CompletePeerSampler,
                 membership::NewscastPeerSampler>;

/// Which overlay the aggregation runs on (§4.4's topology study).
enum class TopologyKind {
  kComplete,       ///< live-set sampling, no materialized edges
  kRandomKOut,     ///< each node views k random peers
  kRingLattice,    ///< Watts–Strogatz β = 0
  kWattsStrogatz,  ///< rewired ring lattice
  kBarabasiAlbert, ///< preferential attachment, m = degree/2
  kNewscast,       ///< dynamic membership, cache size c
};

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kNewscast;
  std::uint32_t degree = 20;    ///< k (static topologies)
  double beta = 0.0;            ///< Watts–Strogatz rewiring probability
  std::size_t cache_size = 30;  ///< NEWSCAST c

  static TopologyConfig complete() { return {TopologyKind::kComplete}; }
  static TopologyConfig random_k_out(std::uint32_t k) {
    return {TopologyKind::kRandomKOut, k};
  }
  static TopologyConfig ring_lattice(std::uint32_t k) {
    return {TopologyKind::kRingLattice, k};
  }
  static TopologyConfig watts_strogatz(std::uint32_t k, double beta) {
    return {TopologyKind::kWattsStrogatz, k, beta};
  }
  static TopologyConfig barabasi_albert(std::uint32_t mean_degree) {
    return {TopologyKind::kBarabasiAlbert, mean_degree};
  }
  static TopologyConfig newscast(std::size_t c) {
    return {TopologyKind::kNewscast, 20, 0.0, c};
  }

  bool operator==(const TopologyConfig&) const = default;
};

/// Network partition with heal: for cycles [start, start + duration) the
/// population splits into `components` isolated components (node u belongs
/// to component u % components); an aggregation exchange whose endpoints
/// straddle components is dropped like link failure. Afterwards the
/// partition heals and exchanges flow freely again.
struct PartitionSpec {
  std::uint32_t start = 0;      ///< first partitioned cycle (0-based)
  std::uint32_t duration = 0;   ///< 0 = never partitioned
  std::uint32_t components = 1;

  [[nodiscard]] bool active(std::uint32_t cycle) const {
    return duration > 0 && components > 1 && cycle >= start &&
           cycle - start < duration;
  }
  [[nodiscard]] std::uint32_t component_of(std::uint32_t id) const {
    return id % components;
  }

  static PartitionSpec none() { return {}; }
  bool operator==(const PartitionSpec&) const = default;
};

/// Byzantine adversary: a fraction of nodes misbehaves. Membership is a
/// pure hash of the node id (seed-, engine-, shard- and thread-invariant),
/// so the honest half of a run is bit-identical across geometries and the
/// empty adversary perturbs nothing.
struct AdversarySpec {
  enum class Behavior {
    kNone,
    kValueInject,   ///< always reports the fixed outlier `value`
    kAlwaysMax,     ///< keeps the maximum of everything it hears
    kCachePollute,  ///< advertises only its own descriptor into newscast
  };

  Behavior behavior = Behavior::kNone;
  double fraction = 0.0;  ///< expected byzantine fraction, in [0,1)
  double value = 0.0;     ///< the outlier reported by value_inject

  static AdversarySpec none() { return {}; }
  static AdversarySpec value_inject(double fraction, double value) {
    return {Behavior::kValueInject, fraction, value};
  }
  static AdversarySpec always_max(double fraction) {
    return {Behavior::kAlwaysMax, fraction, 0.0};
  }
  static AdversarySpec cache_pollute(double fraction) {
    return {Behavior::kCachePollute, fraction, 0.0};
  }

  [[nodiscard]] bool enabled() const {
    return behavior != Behavior::kNone && fraction > 0.0;
  }
  /// Deterministic membership test: hash the id into [0,1) and compare
  /// against the fraction. Joined nodes are hashed the same way, so churn
  /// keeps recruiting adversaries at the configured rate.
  [[nodiscard]] bool is_byzantine(std::uint32_t id) const {
    if (!enabled()) return false;
    std::uint64_t h =
        (static_cast<std::uint64_t>(id) + 1) * salt::kMulAdversaryId ^
        salt::kAdversaryMembership;
    return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53 < fraction;
  }

  bool operator==(const AdversarySpec&) const = default;
};

/// How a node combines an incoming aggregation report with its own state.
/// `mean` is the paper's pairwise average; the robust kinds keep a sliding
/// window of the last `window` received reports and recompute the local
/// estimate as a robust statistic over {own estimate} ∪ window — bounding
/// the influence of injected outliers at the cost of slower mixing.
struct CombineSpec {
  enum class Kind { kMean, kTrimmedMean, kMedianOfMeans };

  Kind kind = Kind::kMean;
  double alpha = 0.0;        ///< trimmed_mean: trim fraction per side
  std::uint32_t groups = 0;  ///< median_of_means: number of groups
  std::uint32_t window = 8;  ///< sliding window of received reports

  static CombineSpec mean() { return {}; }
  static CombineSpec trimmed_mean(double alpha, std::uint32_t window = 8) {
    return {Kind::kTrimmedMean, alpha, 0, window};
  }
  static CombineSpec median_of_means(std::uint32_t groups,
                                     std::uint32_t window = 8) {
    return {Kind::kMedianOfMeans, 0.0, groups, window};
  }

  [[nodiscard]] bool robust() const { return kind != Kind::kMean; }

  bool operator==(const CombineSpec&) const = default;
};

/// Dynamic local values (the continuous-service regime): each node's
/// underlying value v_u moves every cycle and the node folds the change
/// into its running estimate — the LiMoSense-style mass-preserving
/// update — so the network *tracks* a moving mean instead of converging
/// to a static one. The per-(cycle,node) delta is a pure function of
/// (stream_seed, cycle, node) via drift_delta(): engine-, shard- and
/// thread-invariant, consuming nothing from any other RNG stream, and
/// the empty spec perturbs nothing.
struct DriftSpec {
  enum class Kind {
    kNone,
    kLinear,      ///< every value shifts by `rate` per cycle
    kRandomWalk,  ///< per-node step uniform in [-rate, rate) per cycle
    kStep,        ///< every value jumps by `magnitude` at `start_cycle`
  };

  Kind kind = Kind::kNone;
  double rate = 0.0;       ///< kLinear / kRandomWalk per-cycle scale
  double magnitude = 0.0;  ///< kStep jump height
  std::uint32_t start_cycle = 0;  ///< first drifting cycle (0-based)

  static DriftSpec none() { return {}; }
  static DriftSpec linear(double rate, std::uint32_t start_cycle = 0) {
    return {Kind::kLinear, rate, 0.0, start_cycle};
  }
  static DriftSpec random_walk(double rate, std::uint32_t start_cycle = 0) {
    return {Kind::kRandomWalk, rate, 0.0, start_cycle};
  }
  static DriftSpec step(double magnitude, std::uint32_t at_cycle) {
    return {Kind::kStep, 0.0, magnitude, at_cycle};
  }

  [[nodiscard]] bool enabled() const { return kind != Kind::kNone; }

  bool operator==(const DriftSpec&) const = default;
};

/// Continuous service (restart-free epoch pipelining, §4.1/§4.3): the
/// run is cut into epochs of `epoch_cycles` cycles; at each boundary the
/// converged report is published into the SnapshotStore and every live
/// node re-seeds its estimate from its *current* local value — the next
/// epoch converges while the previous one is being served. Queries read
/// the store at an explicit age; `staleness_bound` is the spec-level
/// bound the emit layer checks the measured p99 age against.
struct ServiceSpec {
  bool pipeline = false;
  std::uint32_t epoch_cycles = 0;     ///< γ cycles per published epoch
  std::uint32_t staleness_bound = 0;  ///< max acceptable age_cycles (≥ 1)

  static ServiceSpec none() { return {}; }
  static ServiceSpec pipelined(std::uint32_t epoch_cycles,
                               std::uint32_t staleness_bound) {
    return {true, epoch_cycles, staleness_bound};
  }

  [[nodiscard]] bool enabled() const { return pipeline; }

  bool operator==(const ServiceSpec&) const = default;
};

struct SimConfig {
  std::uint32_t nodes = 10000;   ///< initial network size
  std::uint32_t cycles = 30;     ///< epoch length γ
  std::uint32_t instances = 1;   ///< concurrent aggregation instances t
  TopologyConfig topology;
  failure::CommFailureModel comm = failure::CommFailureModel::none();
  /// UPDATE function applied to every instance slot (§3, §5). COUNT
  /// workloads (init_count_leaders / size_estimates) require kAverage.
  core::UpdateKind update = core::UpdateKind::kAverage;
  /// Matched propose/match/apply rounds per aggregation cycle —
  /// consumed by IntraRepSimulation only (the serial driver has no
  /// match phase; CycleSimulation ignores it).
  std::uint32_t match_rounds = 1;
  PartitionSpec partition;   ///< component-scoped exchange filter
  AdversarySpec adversary;   ///< byzantine behavior, none() by default
  CombineSpec combine;       ///< mean() reproduces the paper exactly
  /// True when the failure plan emits epoch-restart events: the driver
  /// snapshots initial estimates at run() start so a restart can re-seed.
  bool epoch_restarts = false;
  DriftSpec drift;     ///< dynamic local values, none() by default
  ServiceSpec service;  ///< epoch pipelining + snapshot query service
  /// Seed of the engine-invariant per-(cycle,node) streams (drift). The
  /// Engine sets it to the repetition seed; both drivers read it through
  /// the shared drift_delta(), so the drift a node experiences is
  /// bit-identical across CycleSimulation, IntraRepSimulation and every
  /// shard × thread geometry.
  std::uint64_t stream_seed = 0;
};

/// The drift applied to node `node`'s local value at cycle `cycle`: a
/// pure function of its arguments (same splitmix64 keying as
/// IntraRepSimulation::node_stream, under a dedicated drift salt), so
/// both engines and all geometries derive the identical stream and a
/// disabled drift costs nothing and perturbs nothing.
double drift_delta(const DriftSpec& drift, std::uint64_t stream_seed,
                   std::uint32_t cycle, std::uint32_t node);

/// Draws `instances` distinct COUNT leaders from `rng` and installs
/// leader i's slot i = 1.0 in the flat [node * instances + i] estimate
/// array (§5). Shared by CycleSimulation and IntraRepSimulation so both
/// engines elect bit-identical leader sets from the same boundary RNG.
std::vector<NodeId> elect_count_leaders(Rng& rng, std::uint32_t nodes,
                                        std::uint32_t instances,
                                        std::vector<double>& estimates);

/// One robust-combine receive step, shared by CycleSimulation and
/// IntraRepSimulation so the two engines combine bit-identically: pushes
/// `report` into node `u`'s ring window (flat [u * combine.window + k])
/// and returns the node's new estimate — trimmed mean or median-of-means
/// over {own} ∪ window, oldest → newest. `scratch`/`means` are reusable
/// staging buffers.
double robust_combine_receive(const CombineSpec& combine, std::uint32_t u,
                              double own, double report,
                              std::vector<double>& window,
                              std::uint8_t* wfill, std::uint8_t* wpos,
                              std::vector<double>& scratch,
                              std::vector<double>& means);

/// One node's robust COUNT output from its `instances` estimate slots:
/// N̂ = 1/e per instance (+inf for a non-positive estimate — "the
/// estimate can even become infinite", §7.3) combined with the trimmed
/// mean. `scratch` is resized to `instances` and reused across calls.
double robust_size_estimate(const double* slots, std::uint32_t instances,
                            std::vector<double>& scratch);

/// One single-epoch aggregation run. Construct, initialize values, run,
/// then read estimates/statistics.
class CycleSimulation {
public:
  CycleSimulation(const SimConfig& config, Rng rng);

  /// Scalar initialization (requires instances == 1).
  void init_scalar(const std::function<double(NodeId)>& value_of);

  /// The fig. 2 workload: `peak_holder`-th node holds `peak`, everyone
  /// else 0 (requires instances == 1).
  void init_peak(double peak, std::uint32_t peak_holder = 0);

  /// The COUNT workload (§5): `instances` leaders drawn uniformly without
  /// replacement; leader i's slot i starts at 1, everything else 0.
  void init_count_leaders();

  /// Runs `config.cycles` cycles under the given failure plan. Can only
  /// be called once per simulation.
  void run(const failure::FailurePlan& plan);

  // ---- results ---------------------------------------------------------

  [[nodiscard]] const overlay::Population& population() const {
    return population_;
  }

  /// Participating live nodes (the ones whose estimates the paper plots).
  [[nodiscard]] std::vector<NodeId> participants() const;

  [[nodiscard]] double estimate(NodeId node, std::uint32_t instance) const;

  /// Instance-0 estimates of all participating live nodes.
  [[nodiscard]] std::vector<double> scalar_estimates() const;

  /// COUNT outputs: per participating node, 1/e per instance combined
  /// with the §7.3 trimmed mean (an instance with non-positive estimate
  /// contributes +inf — "the estimate can even become infinite").
  [[nodiscard]] std::vector<double> size_estimates() const;

  /// Mean/variance/min/max of instance-0 estimates over participants,
  /// one snapshot before the first cycle and one after each cycle.
  [[nodiscard]] const std::vector<stats::RunningStats>& cycle_stats() const {
    return cycle_stats_;
  }

  /// Per-cycle statistics of *every* instance lane:
  /// instance_cycle_stats()[c][i] summarizes lane i at snapshot c
  /// (lane 0 is cycle_stats()[c]). Multi-instance runs (figs. 6/8)
  /// record one variance trajectory per concurrent aggregate — mirrored
  /// by IntraRepSimulation::instance_cycle_stats() so the two engines
  /// can be compared lane by lane.
  [[nodiscard]] const std::vector<std::vector<stats::RunningStats>>&
  instance_cycle_stats() const {
    return instance_stats_;
  }

  /// Convergence bookkeeping over the recorded variances.
  [[nodiscard]] stats::ConvergenceTracker tracker() const;

  /// The leaders chosen by init_count_leaders().
  [[nodiscard]] const std::vector<NodeId>& leaders() const {
    return leaders_;
  }

  // ---- continuous-service results (empty when drift/service are off) ---

  /// The underlying local values (maintained when drift or the service
  /// pipeline is on; empty otherwise). values()[u] is node u's v_u.
  [[nodiscard]] const std::vector<double>& local_values() const {
    return values_;
  }

  /// |estimate mean − current true mean| at each stats snapshot, aligned
  /// with cycle_stats(). Recorded alongside variance whenever the local
  /// values are being tracked.
  [[nodiscard]] const std::vector<double>& tracking_error() const {
    return tracking_error_;
  }

  /// Age (in cycles) of the snapshot a query would be served, sampled
  /// once per cycle from the first publication on.
  [[nodiscard]] const std::vector<std::uint32_t>& staleness_samples() const {
    return staleness_;
  }

  /// |served snapshot value − current true mean| aligned with
  /// staleness_samples(): the service-level error a query actually sees.
  [[nodiscard]] const std::vector<double>& served_error() const {
    return served_error_;
  }

  /// The published-report store backing the query API.
  [[nodiscard]] const SnapshotStore& snapshots() const { return store_; }

private:
  void build_topology();
  void apply_failures(const failure::CycleEvent& event, std::uint64_t now);
  void apply_restart();
  void apply_drift(std::uint32_t cycle);
  void service_cycle(std::uint32_t cycle);
  void flush_combine_windows();
  void pin_injected_values();
  void aggregation_cycle(std::uint32_t cycle);
  template <typename Sampler>
  void aggregation_cycle_with(Sampler& sampler, std::uint32_t cycle);
  /// Robust/byzantine-aware receive of one report into node u's slot
  /// (general path only; instances == 1 is enforced when it is active).
  void receive_report(std::uint32_t u, double* slot, double report);
  void record_stats();
  [[nodiscard]] bool participating(NodeId id) const {
    return participant_[id.value()] != 0;
  }
  /// Byzantine nodes that corrupt the aggregate are excluded from the
  /// estimate statistics (the paper's plots are about what honest nodes
  /// believe); cache polluters aggregate honestly and stay counted.
  [[nodiscard]] bool counted(NodeId id) const {
    return participating(id) && !(exclude_byz_stats_ && byz_[id.value()]);
  }

  SimConfig config_;
  Rng rng_;
  overlay::Population population_;
  std::vector<double> estimates_;   // flat [node * instances + i]
  std::vector<char> participant_;   // per node
  std::vector<NodeId> order_scratch_;  // aggregation_cycle() permutation
  std::vector<NodeId> leaders_;
  std::vector<stats::RunningStats> cycle_stats_;
  std::vector<std::vector<stats::RunningStats>> instance_stats_;

  // ---- adversarial extensions (all empty/off on the plain path) --------
  std::vector<char> byz_;           // adversary membership per node
  bool general_ = false;            // any aggregation-level deviation?
  bool exclude_byz_stats_ = false;  // drop byzantine estimates from stats
  std::vector<double> window_;      // robust combine: flat [node * W + k]
  std::vector<std::uint8_t> wfill_;  // filled window entries per node
  std::vector<std::uint8_t> wpos_;   // next ring slot per node
  std::vector<double> combine_scratch_;
  std::vector<double> combine_means_;  // median-of-means group means
  std::vector<double> initial_;     // epoch-restart snapshot

  // ---- continuous-service extensions (empty/off on the plain path) -----
  std::vector<double> values_;        // underlying local values v_u
  std::vector<double> tracking_error_;     // per snapshot
  std::vector<std::uint32_t> staleness_;   // per post-publish cycle
  std::vector<double> served_error_;       // aligned with staleness_
  double true_mean_ = 0.0;                 // last snapshot's value mean
  SnapshotStore store_;
  std::optional<core::EpochMachine> epoch_machine_;

  overlay::Graph graph_;  // static topologies
  std::unique_ptr<membership::NewscastNetwork> newscast_;
  SamplerVariant sampler_;

  bool initialized_ = false;
  bool ran_ = false;
};

}  // namespace gossip::experiment
