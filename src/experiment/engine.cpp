#include "experiment/engine.hpp"

#include <algorithm>
#include <chrono>

#include "common/stream_salt.hpp"
#include "experiment/cycle_sim.hpp"
#include "experiment/intra_rep.hpp"
#include "experiment/push_sum.hpp"
#include "overlay/generators.hpp"
#include "proto/world.hpp"
#include "runtime/executor.hpp"
#include "runtime/transport.hpp"

namespace gossip::experiment {

std::uint64_t rep_seed(std::uint64_t base, std::uint64_t point,
                       std::uint64_t rep) {
  // One splitmix64 walk keyed by (base, point, rep); avoids accidental
  // stream sharing between sweep points. Unchanged from the pre-facade
  // layer: every published series depends on these exact seeds.
  std::uint64_t s = base ^ (point * salt::kMulSweepPoint) ^
                    (rep * salt::kMulSweepRep);
  return splitmix64(s);
}

namespace {

/// Auto mode only considers the intra-rep engine for runs at least this
/// large — a single smaller repetition is faster serial than sharded.
constexpr std::uint32_t kIntraRepAutoThreshold = 500'000;

bool intra_rep_eligible(const ScenarioSpec& spec) {
  // The intra-rep engine now speaks the full cycle-driver workload
  // vocabulary (AVERAGE, COUNT, multi-instance); only the driver gates
  // eligibility.
  return spec.driver == DriverKind::kCycle;
}

SimConfig sim_config_of(const ScenarioSpec& spec) {
  SimConfig cfg;
  cfg.nodes = spec.nodes;
  cfg.cycles = spec.cycles;
  cfg.instances = spec.instances;
  cfg.topology = spec.topology;
  cfg.comm = failure::CommFailureModel(spec.comm.link_failure,
                                       spec.comm.message_loss);
  cfg.match_rounds = spec.match_rounds;
  cfg.adversary = spec.adversary;
  cfg.combine = spec.combine;
  if (spec.failure.kind == FailureSpec::Kind::kPartition) {
    // The partition failure kind builds as NoFailures; its semantics live
    // in the drivers' exchange filter.
    cfg.partition = {spec.failure.cycle, spec.failure.duration,
                     spec.failure.components};
  }
  cfg.epoch_restarts = spec.failure.kind == FailureSpec::Kind::kRestart;
  cfg.drift = spec.drift;
  cfg.service = spec.service;
  return cfg;
}

/// Scalar initialization for non-peak distributions. The value stream is
/// derived as seed ^ kEngineInitValues — the historical scheme of the
/// initial-distribution ablation — and consumed in node-id order.
template <typename Sim>
void init_nonpeak(Sim& sim, const ScenarioSpec& spec, std::uint64_t seed) {
  Rng values_rng(seed ^ salt::kEngineInitValues);
  sim.init_scalar([&](NodeId id) -> double {
    switch (spec.init) {
      case InitKind::kUniform: return values_rng.uniform(0.0, 2.0);
      case InitKind::kBimodal: return id.value() % 2 == 0 ? 0.0 : 2.0;
      case InitKind::kExponential: return values_rng.exponential(1.0);
      case InitKind::kPeak: break;  // handled by the callers
    }
    return 0.0;
  });
}

template <typename Sim>
void init_scalar_distribution(Sim& sim, const ScenarioSpec& spec,
                              std::uint64_t seed) {
  if (spec.init == InitKind::kPeak) {
    sim.init_peak(static_cast<double>(spec.nodes));
    return;
  }
  init_nonpeak(sim, spec, seed);
}

/// Workload init shared by the serial and intra-rep cycle drivers (both
/// expose the same init_count_leaders/init_peak/init_scalar surface).
template <typename Sim>
void init_workload(Sim& sim, const ScenarioSpec& spec, std::uint64_t seed) {
  if (spec.aggregate == AggregateKind::kCount) {
    sim.init_count_leaders();
  } else {
    init_scalar_distribution(sim, spec, seed);
  }
}

/// Result shaping shared by both cycle drivers: per-cycle stats +
/// tracker always; COUNT additionally summarizes the robust size
/// estimates and counts participants off them.
template <typename Sim>
RunResult finish_run(const Sim& sim, const ScenarioSpec& spec) {
  RunResult out;
  out.per_cycle = sim.cycle_stats();
  out.tracker = sim.tracker();
  if (spec.aggregate == AggregateKind::kCount) {
    const auto sizes = sim.size_estimates();
    out.sizes = stats::summarize(sizes);
    out.participants = static_cast<std::uint32_t>(sizes.size());
  } else {
    out.participants =
        static_cast<std::uint32_t>(out.per_cycle.back().count());
  }
  // The continuous-service surface is identical on both cycle drivers;
  // every field is empty/zero unless drift or the pipeline ran.
  out.tracking_error = sim.tracking_error();
  out.staleness = sim.staleness_samples();
  out.served_error = sim.served_error();
  out.epochs_published = sim.snapshots().published();
  return out;
}

RunResult exec_cycle(const ScenarioSpec& spec, std::uint64_t seed,
                     const failure::FailurePlan* plan_override) {
  SimConfig cfg = sim_config_of(spec);
  cfg.stream_seed = seed;  // the engine-invariant drift stream key
  CycleSimulation sim(cfg, Rng(seed));
  init_workload(sim, spec, seed);
  const auto plan = spec.failure.build(spec.nodes);
  const auto start = std::chrono::steady_clock::now();
  sim.run(plan_override != nullptr ? *plan_override : *plan);
  RunResult out = finish_run(sim, spec);
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

RunResult exec_intra(const ScenarioSpec& spec, std::uint64_t seed,
                     const failure::FailurePlan* plan_override,
                     unsigned shards, ParallelRunner& pool) {
  SimConfig cfg = sim_config_of(spec);
  cfg.stream_seed = seed;  // same key as exec_cycle — cross-engine parity
  IntraRepSimulation sim(cfg, seed, shards);
  init_workload(sim, spec, seed);
  const auto plan = spec.failure.build(spec.nodes);
  const auto start = std::chrono::steady_clock::now();
  sim.run(plan_override != nullptr ? *plan_override : *plan, pool);
  RunResult out = finish_run(sim, spec);
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

RunResult exec_event(const ScenarioSpec& spec, std::uint64_t seed) {
  proto::WorldConfig cfg;
  cfg.nodes = spec.nodes;
  cfg.seed = seed;
  cfg.p_loss = spec.comm.message_loss;
  cfg.protocol.atomic_exchanges = spec.atomic_exchanges;
  proto::World world(cfg);
  world.start();
  world.run_cycles(spec.cycles);

  RunResult out;
  const auto estimates = world.estimates();
  out.sizes = stats::summarize(estimates);
  out.participants = static_cast<std::uint32_t>(estimates.size());
  return out;
}

RunResult exec_push_sum(const ScenarioSpec& spec, std::uint64_t seed) {
  PushSumConfig cfg;
  cfg.nodes = spec.nodes;
  cfg.cycles = spec.cycles;
  cfg.topology = spec.topology;
  cfg.p_message_loss = spec.comm.message_loss;
  PushSumSimulation sim(cfg, Rng(seed));
  if (spec.init == InitKind::kPeak) {
    // Push-sum has no init_peak shortcut; the historical baseline seeds
    // the peak through init_scalar.
    const auto nodes = static_cast<double>(spec.nodes);
    sim.init_scalar(
        [nodes](NodeId id) { return id.value() == 0 ? nodes : 0.0; });
  } else {
    init_nonpeak(sim, spec, seed);
  }
  sim.run();

  RunResult out;
  out.per_cycle = sim.cycle_stats();
  out.tracker = sim.tracker();
  const auto estimates = sim.estimates();
  out.sizes = stats::summarize(estimates);
  out.participants = static_cast<std::uint32_t>(estimates.size());
  return out;
}

/// The global initial-value vector of a runtime repetition, in node-id
/// order from the same seed ^ kEngineInitValues stream as init_nonpeak —
/// so the runtime_vs_sim cross-check compares runs that start
/// bit-identically.
std::vector<double> runtime_initial_values(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  std::vector<double> initial(spec.nodes, 0.0);
  if (spec.init == InitKind::kPeak) {
    initial[0] = static_cast<double>(spec.nodes);
    return initial;
  }
  Rng values_rng(seed ^ salt::kEngineInitValues);
  for (std::uint32_t u = 0; u < spec.nodes; ++u) {
    switch (spec.init) {
      case InitKind::kUniform: initial[u] = values_rng.uniform(0.0, 2.0); break;
      case InitKind::kBimodal: initial[u] = u % 2 == 0 ? 0.0 : 2.0; break;
      case InitKind::kExponential:
        initial[u] = values_rng.exponential(1.0);
        break;
      case InitKind::kPeak: break;  // handled above
    }
  }
  return initial;
}

/// Upper bound on nodes the failure plan may join over the whole run —
/// preallocation headroom for the executor's churn path.
std::uint32_t runtime_join_headroom(const ScenarioSpec& spec) {
  std::uint32_t per_cycle = 0;
  if (spec.failure.kind == FailureSpec::Kind::kChurn) {
    per_cycle = spec.failure.rate;
  } else if (spec.failure.kind == FailureSpec::Kind::kChurnFraction) {
    per_cycle = static_cast<std::uint32_t>(
        static_cast<double>(spec.nodes) * spec.failure.fraction);
  }
  return per_cycle * spec.cycles;
}

RunResult exec_runtime(const ScenarioSpec& spec, std::uint64_t seed,
                       const failure::FailurePlan* plan_override,
                       unsigned threads) {
  const RuntimeSpec& rt = spec.runtime;
  runtime::ExecutorConfig cfg;
  cfg.nodes = spec.nodes;
  cfg.cycles = spec.cycles;
  cfg.workers = rt.workers != 0 ? rt.workers : threads;
  cfg.wheel_slots = rt.wheel_slots;
  cfg.delta_us = rt.delta_us;
  cfg.cycle_timeout = std::chrono::milliseconds(rt.timeout_ms);
  cfg.seed = seed;
  cfg.initial = runtime_initial_values(spec, seed);
  cfg.max_joins = runtime_join_headroom(spec);

  // The overlay must be identical in every cooperating process, so the
  // static graphs are a pure function of the repetition seed alone.
  overlay::Graph graph;
  switch (spec.topology.kind) {
    case TopologyKind::kComplete:
      cfg.overlay = runtime::OverlayMode::kComplete;
      break;
    case TopologyKind::kNewscast:
      cfg.overlay = runtime::OverlayMode::kNewscast;
      cfg.cache_size = static_cast<std::uint32_t>(spec.topology.cache_size);
      break;
    case TopologyKind::kRandomKOut:
    case TopologyKind::kRingLattice:
    case TopologyKind::kWattsStrogatz:
    case TopologyKind::kBarabasiAlbert: {
      Rng graph_rng(seed ^ salt::kEngineGraph);
      switch (spec.topology.kind) {
        case TopologyKind::kRandomKOut:
          graph = overlay::random_k_out(spec.nodes, spec.topology.degree,
                                        graph_rng);
          break;
        case TopologyKind::kRingLattice:
          graph = overlay::ring_lattice(spec.nodes, spec.topology.degree);
          break;
        case TopologyKind::kWattsStrogatz:
          graph = overlay::watts_strogatz(spec.nodes, spec.topology.degree,
                                          spec.topology.beta, graph_rng);
          break;
        case TopologyKind::kBarabasiAlbert:
          graph = overlay::barabasi_albert(spec.nodes,
                                           spec.topology.degree / 2, graph_rng);
          break;
        default: break;  // unreachable
      }
      cfg.overlay = runtime::OverlayMode::kStatic;
      cfg.graph = &graph;
      break;
    }
  }

  if (spec.drift.enabled()) {
    // Same engine-invariant (stream_seed, cycle, node) stream as both
    // simulators: the runtime's nodes drift bit-identically to theirs.
    const DriftSpec drift = spec.drift;
    cfg.drift = [drift, seed](std::uint32_t cycle, std::uint32_t node) {
      return drift_delta(drift, seed, cycle, node);
    };
  }

  runtime::FaultConfig faults;
  faults.p_loss = spec.comm.message_loss;
  faults.seed = splitmix64(seed) ^ salt::kEngineFaults;
  switch (rt.latency) {
    case RuntimeSpec::LatencyKind::kNone: break;
    case RuntimeSpec::LatencyKind::kFixed:
      faults.latency = std::make_shared<net::FixedLatency>(rt.delay_lo_us);
      break;
    case RuntimeSpec::LatencyKind::kUniform:
      faults.latency =
          std::make_shared<net::UniformLatency>(rt.delay_lo_us,
                                                rt.delay_hi_us);
      break;
    case RuntimeSpec::LatencyKind::kExponential:
      faults.latency = std::make_shared<net::ExponentialLatency>(
          rt.delay_lo_us, static_cast<double>(rt.delay_hi_us));
      break;
  }

  std::unique_ptr<runtime::Transport> transport;
  if (rt.transport == RuntimeSpec::TransportKind::kLoopback) {
    cfg.local_lo = 0;
    cfg.local_hi = spec.nodes;
    transport = std::make_unique<runtime::LoopbackTransport>(faults);
  } else {
    runtime::ProcessPartition partition{spec.nodes, rt.processes};
    cfg.local_lo = partition.lo(rt.process_index);
    cfg.local_hi = partition.hi(rt.process_index);
    runtime::SocketConfig sock;
    sock.nodes = spec.nodes;
    sock.processes = rt.processes;
    sock.process_index = rt.process_index;
    sock.port_base = static_cast<std::uint16_t>(rt.port_base);
    transport = std::make_unique<runtime::SocketTransport>(faults, sock);
  }

  runtime::Executor executor(std::move(cfg), *transport);
  const auto plan = spec.failure.build(spec.nodes);
  const runtime::ExecutorResult result =
      executor.run(plan_override != nullptr ? *plan_override : *plan);

  RunResult out;
  out.per_cycle = result.per_cycle;
  for (const auto& rs : out.per_cycle) out.tracker.record(rs.variance());
  out.sizes = stats::summarize(result.final_estimates);
  out.participants = result.participants;
  out.tracking_error = result.tracking_error;
  out.elapsed_seconds = result.elapsed_seconds;
  out.runtime_enabled = true;
  out.runtime_counters = result.counters;
  out.runtime_sum_initial = result.sum_initial;
  out.runtime_sum_final = result.sum_final;
  return out;
}

}  // namespace

ResolvedEngine resolve_engine(const ScenarioSpec& spec,
                              const EngineOptions& options) {
  ResolvedEngine r;
  const unsigned spec_threads =
      options.threads != 0 ? options.threads : spec.threads;
  const unsigned spec_shards =
      options.shards != 0 ? options.shards : spec.shards;
  // runner_threads()/runner_shards() apply the strict GOSSIP_THREADS /
  // GOSSIP_SHARDS resolution (EnvError on malformed or zero values).
  r.threads = spec_threads != 0 ? spec_threads : runner_threads();
  r.shards = spec_shards != 0 ? spec_shards : runner_shards();

  EngineKind kind =
      options.kind != EngineKind::kAuto ? options.kind : spec.engine;
  if (kind == EngineKind::kAuto) {
    if (spec.driver == DriverKind::kRuntime) {
      // The runtime's parallelism is the executor's own worker pool;
      // repetitions always run one after the other.
      kind = EngineKind::kSerial;
    } else if (spec.reps > 1) {
      kind = EngineKind::kRepParallel;
    } else if (intra_rep_eligible(spec) &&
               spec.sweep.points.size() <= 1 &&
               spec.nodes >= kIntraRepAutoThreshold) {
      // Only single-point specs: a sweep series must stay engine-uniform
      // (intra_rep's matched-cycle trajectory is not comparable with the
      // serial driver's, so auto must never mix them within one series).
      kind = EngineKind::kIntraRep;
    } else {
      kind = EngineKind::kSerial;
    }
  }
  if (spec.driver == DriverKind::kRuntime && kind != EngineKind::kSerial) {
    throw SpecError("spec: driver 'runtime' runs on engine 'serial' (the "
                    "executor owns its own worker pool), got engine '" +
                    to_string(kind) + "'");
  }
  if (kind == EngineKind::kIntraRep && !intra_rep_eligible(spec)) {
    throw SpecError("spec: engine 'intra_rep' requires driver 'cycle', "
                    "got driver '" +
                    to_string(spec.driver) + "'");
  }
  if (kind != EngineKind::kIntraRep && spec.match_rounds > 1) {
    // validate() checks spec.engine, but a CLI --set engine=… override
    // lands here with a different resolved kind — rejecting it keeps
    // match_rounds from being silently dropped and the series
    // mislabeled.
    throw SpecError("spec: match_rounds > 1 requires engine 'intra_rep', "
                    "but the resolved engine is '" +
                    to_string(kind) + "' (no match phase)");
  }
  r.kind = kind;
  return r;
}

Engine::Engine(EngineOptions options) : options_(options) {}
Engine::~Engine() = default;

ParallelRunner& Engine::pool_for(unsigned threads, std::size_t max_jobs) {
  const unsigned effective = static_cast<unsigned>(std::min<std::uint64_t>(
      threads, std::max<std::uint64_t>(max_jobs, 1)));
  if (!pool_ || pool_threads_ != effective) {
    pool_ = std::make_unique<ParallelRunner>(effective);
    pool_threads_ = effective;
  }
  return *pool_;
}

RunResult Engine::run_single(const ScenarioSpec& spec, std::uint64_t raw_seed,
                             const failure::FailurePlan* plan_override) {
  const ResolvedEngine re = resolve_engine(spec, options_);
  switch (spec.driver) {
    case DriverKind::kEvent:
      return exec_event(spec, raw_seed);
    case DriverKind::kPushSum:
      return exec_push_sum(spec, raw_seed);
    case DriverKind::kRuntime:
      return exec_runtime(spec, raw_seed, plan_override, re.threads);
    case DriverKind::kCycle:
      break;
  }
  if (re.kind == EngineKind::kIntraRep) {
    return exec_intra(spec, raw_seed, plan_override, re.shards,
                      pool_for(re.threads, re.shards));
  }
  return exec_cycle(spec, raw_seed, plan_override);
}

std::vector<RunResult> Engine::run_point(const ScenarioSpec& spec,
                                         std::size_t index) {
  validate(spec);
  const ScenarioSpec point_spec = spec.at_point(index);
  const ResolvedEngine re = resolve_point(spec, index);
  const std::uint64_t point_id = spec.sweep.points[index].seed_point;

  if (re.kind == EngineKind::kIntraRep && spec.driver == DriverKind::kCycle) {
    // The parallelism lives *inside* each repetition; reps run in order.
    ParallelRunner& pool =
        pool_for(std::min(re.threads, re.shards), re.shards);
    std::vector<RunResult> out;
    out.reserve(spec.reps);
    for (std::uint32_t rep = 0; rep < spec.reps; ++rep) {
      out.push_back(exec_intra(point_spec,
                               rep_seed(spec.seed, point_id, rep), nullptr,
                               re.shards, pool));
    }
    return out;
  }

  const unsigned threads = re.kind == EngineKind::kSerial ? 1 : re.threads;
  ParallelRunner& pool = pool_for(threads, spec.reps);
  return pool.map(spec.reps, [&](std::size_t rep) {
    const std::uint64_t seed = rep_seed(spec.seed, point_id, rep);
    switch (point_spec.driver) {
      case DriverKind::kEvent: return exec_event(point_spec, seed);
      case DriverKind::kPushSum: return exec_push_sum(point_spec, seed);
      case DriverKind::kRuntime:
        return exec_runtime(point_spec, seed, nullptr, re.threads);
      case DriverKind::kCycle: break;
    }
    return exec_cycle(point_spec, seed, nullptr);
  });
}

ResolvedEngine Engine::resolve_point(const ScenarioSpec& spec,
                                     std::size_t index) const {
  // Resolve from the per-point spec (a nodes-sweep point must be judged
  // at its own size) but with the original sweep width visible, so
  // auto's single-point-only intra_rep rule keeps a multi-point series
  // engine-uniform — every point of a sweep resolves identically, and
  // the provenance block's engine matches what actually executed.
  ScenarioSpec probe = spec.at_point(index);
  probe.sweep = spec.sweep;
  return resolve_engine(probe, options_);
}

ScenarioResult Engine::run(const ScenarioSpec& spec) {
  validate(spec);
  ScenarioResult out;
  out.spec = spec;
  out.engine = resolve_point(spec, 0);
  out.points.reserve(spec.sweep.points.size());
  for (std::size_t i = 0; i < spec.sweep.points.size(); ++i) {
    out.points.push_back({spec.sweep.points[i], run_point(spec, i)});
  }
  return out;
}

}  // namespace gossip::experiment
