// Parallel experiment engine: a reusable thread pool that fans the
// independent repetitions (and sweep points) of an experiment across
// cores.
//
// Gossip repetitions are embarrassingly parallel — every rep owns its
// whole simulation state and draws from its own seed-derived Rng stream —
// so the only thing the engine has to guarantee is *determinism*: results
// are produced into their job-index slot and returned in job order, which
// makes the merged output bit-identical no matter how many worker threads
// ran, including one (serial). Per-rep randomness comes from the caller
// deriving one seed per job (rep_seed() / split_seeds()), never from a
// shared generator.
//
// This generalizes the worker machinery of src/runtime/threaded.* (the
// protocol-on-real-threads runtime): same idea of long-lived joinable
// workers, but the unit of work is "one whole repetition", not "one
// message".
//
// Worker count resolution, in priority order:
//   explicit constructor argument > GOSSIP_THREADS env > hardware cores.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gossip::experiment {

/// Effective worker count for parallel experiments: GOSSIP_THREADS if
/// set, otherwise the hardware concurrency; always at least 1.
unsigned runner_threads();

/// Domain-decomposition width for the intra-rep mode (IntraRepSimulation):
/// GOSSIP_SHARDS if set, otherwise runner_threads(). Shards are the unit
/// nodes are partitioned by *within* one repetition; unlike
/// GOSSIP_THREADS, the shard count never changes any result — it only
/// bounds how much intra-rep parallelism the runner can exploit.
unsigned runner_shards();

/// `count` independent per-repetition seeds derived from `base` exactly
/// as Rng::split() derives child generators: child i's seed is
/// splitmix64 of the root stream's i-th draw. Correlation-free across
/// reps, stable across thread counts.
std::vector<std::uint64_t> split_seeds(std::uint64_t base, std::size_t count);

/// Reusable pool of `threads - 1` workers plus the calling thread. run()
/// and map() block until the batch completes and are deterministic in
/// output order. Not reentrant: don't call run() from inside a job, and
/// drive a runner from one thread at a time.
class ParallelRunner {
public:
  /// `threads` == 0 resolves via runner_threads(). With one thread the
  /// pool is empty and every batch runs inline on the caller.
  explicit ParallelRunner(unsigned threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Executes job(0) … job(count-1) across the pool; the caller drains
  /// work too. The first exception thrown by a job is rethrown here after
  /// the batch finishes.
  void run(std::size_t count, const std::function<void(std::size_t)>& job);

  /// Maps i -> fn(i) and returns the results in index order — the merged
  /// output is bit-identical for any thread count.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<std::optional<R>> slots(count);
    run(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(count);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Fans a 2-D sweep: fn(point, rep) for every point in [0, points) and
  /// rep in [0, reps), all in one batch. Results are indexed
  /// [point * reps + rep] — the layout every sweep bench folds over.
  template <typename Fn>
  auto map_grid(std::size_t points, std::size_t reps, Fn&& fn) {
    return map(points * reps, [&](std::size_t job) {
      return fn(job / reps, job % reps);
    });
  }

private:
  void worker_loop();
  void drain();

  unsigned threads_;

  std::mutex mutex_;
  std::condition_variable batch_cv_;  // workers wait for a batch
  std::condition_variable done_cv_;   // run() waits for completion
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::uint64_t batch_id_ = 0;      // nonzero while a batch is open
  std::uint64_t batch_serial_ = 0;  // monotone id generator
  unsigned active_ = 0;         // workers inside drain()
  bool stop_ = false;
  std::exception_ptr error_;

  std::vector<std::thread> workers_;
};

}  // namespace gossip::experiment
