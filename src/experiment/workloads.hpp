// High-level runners for the paper's two experimental workloads; every
// bench binary and several integration tests are thin loops over these.
//
//  * AVERAGE with the peak distribution (fig. 2–5): one node holds N,
//    the rest 0, true average = 1.
//  * COUNT with t concurrent leader instances (fig. 6–8): leader slots
//    start at 1, the size estimate is the §7.3 trimmed combination of
//    1/e over instances.
#pragma once

#include <cstdint>
#include <vector>

#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {

struct AverageRun {
  /// Instance-0 estimate statistics: index 0 is the initial state, index
  /// i >= 1 the state after cycle i.
  std::vector<stats::RunningStats> per_cycle;
  stats::ConvergenceTracker tracker;
};

/// Runs AVERAGE with the peak distribution (peak value = initial N) under
/// `plan`. Requires config.instances == 1.
AverageRun run_average_peak(const SimConfig& config,
                            const failure::FailurePlan& plan,
                            std::uint64_t seed);

struct CountRun {
  /// Distribution over participating nodes of the robust size estimate.
  stats::Summary sizes;
  stats::ConvergenceTracker tracker;
  std::uint32_t participants = 0;
};

/// Runs COUNT with config.instances concurrent leaders under `plan`.
CountRun run_count(const SimConfig& config, const failure::FailurePlan& plan,
                   std::uint64_t seed);

/// Derives the per-repetition seed for repetition `rep` of a sweep point
/// `point` from the base seed (stable, collision-resistant).
std::uint64_t rep_seed(std::uint64_t base, std::uint64_t point,
                       std::uint64_t rep);

}  // namespace gossip::experiment
