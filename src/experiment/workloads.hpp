// High-level runners for the paper's two experimental workloads; every
// bench binary and several integration tests are thin loops over these.
//
//  * AVERAGE with the peak distribution (fig. 2–5): one node holds N,
//    the rest 0, true average = 1.
//  * COUNT with t concurrent leader instances (fig. 6–8): leader slots
//    start at 1, the size estimate is the §7.3 trimmed combination of
//    1/e over instances.
#pragma once

#include <cstdint>
#include <vector>

#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"
#include "stats/convergence.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {

class ParallelRunner;  // experiment/parallel_runner.hpp

struct AverageRun {
  /// Instance-0 estimate statistics: index 0 is the initial state, index
  /// i >= 1 the state after cycle i.
  std::vector<stats::RunningStats> per_cycle;
  stats::ConvergenceTracker tracker;
};

/// Runs AVERAGE with the peak distribution (peak value = initial N) under
/// `plan`. Requires config.instances == 1.
AverageRun run_average_peak(const SimConfig& config,
                            const failure::FailurePlan& plan,
                            std::uint64_t seed);

struct CountRun {
  /// Distribution over participating nodes of the robust size estimate.
  stats::Summary sizes;
  stats::ConvergenceTracker tracker;
  std::uint32_t participants = 0;
};

/// Runs COUNT with config.instances concurrent leaders under `plan`.
CountRun run_count(const SimConfig& config, const failure::FailurePlan& plan,
                   std::uint64_t seed);

/// Derives the per-repetition seed for repetition `rep` of a sweep point
/// `point` from the base seed (stable, collision-resistant).
std::uint64_t rep_seed(std::uint64_t base, std::uint64_t point,
                       std::uint64_t rep);

// ---- parallel repetition fan-out ---------------------------------------
//
// Every §7 figure is a mean over dozens of independent repetitions; these
// helpers fan the reps of one sweep point across the runner's threads.
// Rep r uses rep_seed(base_seed, point, r) — exactly the seed the serial
// loops always used — and results come back in rep order, so the merged
// output is bit-identical to a serial run for any thread count.

/// `reps` repetitions of the AVERAGE peak workload, in rep order.
std::vector<AverageRun> run_average_peak_reps(ParallelRunner& runner,
                                              const SimConfig& config,
                                              const failure::FailurePlan& plan,
                                              std::uint64_t base_seed,
                                              std::uint64_t point,
                                              std::uint32_t reps);

/// `reps` repetitions of the COUNT workload, in rep order.
std::vector<CountRun> run_count_reps(ParallelRunner& runner,
                                     const SimConfig& config,
                                     const failure::FailurePlan& plan,
                                     std::uint64_t base_seed,
                                     std::uint64_t point,
                                     std::uint32_t reps);

// ---- intra-repetition fan-out ------------------------------------------

/// One AVERAGE peak repetition in the domain-decomposed intra-rep mode
/// (IntraRepSimulation): the single repetition's cycles are split over
/// `shards` node domains and executed across `runner`'s threads. The
/// result is bit-identical for any shard/thread combination, but — being
/// a matched-cycle model — not comparable bit-for-bit with
/// run_average_peak. For N=10⁶-scale runs where repetition fan-out
/// cannot help.
AverageRun run_average_peak_intra(const SimConfig& config,
                                  const failure::FailurePlan& plan,
                                  std::uint64_t seed, unsigned shards,
                                  ParallelRunner& runner);

}  // namespace gossip::experiment
