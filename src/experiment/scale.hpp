// Benchmark scaling knobs.
//
// The paper's experiments run at N = 10⁵–10⁶ with 50–100 repetitions;
// that is minutes-to-hours per figure. Every bench binary therefore has a
// scaled-down default (documented in EXPERIMENTS.md) and honors:
//
//   GOSSIP_FULL=1   run at the paper's scale
//   GOSSIP_N=…      override the network size
//   GOSSIP_REPS=…   override the repetition count
//   GOSSIP_SEED=…   override the base seed
#pragma once

#include <cstdint>
#include <optional>

namespace gossip::experiment {

struct Scale {
  std::uint32_t nodes;
  std::uint32_t reps;
  std::uint64_t seed;
  bool full;
};

/// Resolves the effective scale from the environment. `def_*` are the
/// scaled defaults, `paper_*` what the paper used. `full_override`,
/// when set, replaces the GOSSIP_FULL resolution (the CLI's
/// `--set full=…`) — it must win *before* nodes/reps resolve, so a
/// full-scale request actually selects the paper_* numbers.
Scale bench_scale(std::uint32_t def_nodes, std::uint32_t def_reps,
                  std::uint32_t paper_nodes, std::uint32_t paper_reps,
                  std::optional<bool> full_override = std::nullopt);

}  // namespace gossip::experiment
