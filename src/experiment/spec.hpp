// The declarative experiment API: one ScenarioSpec describes everything
// the paper's §7 evaluation matrix varies — workload (AVERAGE / COUNT /
// related-work baselines), topology, failure plan, communication-failure
// model, sweep axis with points, epoch length, repetitions, seed and
// execution engine — as *data*, not code.
//
// A spec round-trips through JSON bit-exactly (parse ∘ serialize ∘ parse
// is the identity; doubles are printed with max_digits10), validates with
// precise one-line errors, and is what the Engine facade (engine.hpp),
// the scenario registry (registry.hpp) and the `gossip_run` CLI all
// speak. Every fig*/ablation_*/baseline_* experiment is a registered
// named spec; a new workload is a new spec value, not a new binary.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/cycle_sim.hpp"
#include "failure/failure_plan.hpp"

namespace gossip::experiment {

/// Spec parse/validation error. The message is one line and names the
/// field precisely ("spec: failure.fraction must be in [0,1], got 1.5").
class SpecError : public std::runtime_error {
public:
  explicit SpecError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Which simulator executes the workload.
enum class DriverKind {
  kCycle,    ///< cycle-driven CycleSimulation / IntraRepSimulation (§7)
  kEvent,    ///< event-driven proto::World (atomicity ablation)
  kPushSum,  ///< push-sum baseline (Kempe et al., §8)
  kRuntime,  ///< deployment runtime: live nodes over a real Transport
};

/// The paper's two aggregate workloads.
enum class AggregateKind {
  kAverage,  ///< AVERAGE (fig. 2–5, 7): scalar estimates
  kCount,    ///< COUNT (fig. 6, 8): `instances` leader slots, size estimate
};

/// Initial value distribution for AVERAGE workloads.
enum class InitKind {
  kPeak,         ///< one node holds N, the rest 0 (the paper's worst case)
  kUniform,      ///< uniform in [0, 2)
  kBimodal,      ///< 0 / 2 by node-id parity
  kExponential,  ///< Exp(1)
};

/// Execution path selection; every kind is bit-deterministic in itself.
/// kSerial and kRepParallel are bit-identical to each other for any
/// thread count; kIntraRep is its own matched-cycle model (bit-identical
/// across any shards × threads, but not comparable with the serial
/// driver — see intra_rep.hpp).
enum class EngineKind {
  kAuto,         ///< reps > 1 → rep_parallel; one giant rep → intra_rep
  kSerial,       ///< one thread, the historical reference path
  kRepParallel,  ///< repetitions fan out across threads
  kIntraRep,     ///< one repetition, domain-decomposed across shards
};

/// Declarative node-failure plan (§6–§7), buildable into the concrete
/// failure::FailurePlan the drivers execute.
struct FailureSpec {
  enum class Kind {
    kNone,
    kProportionalCrash,  ///< P_f of current nodes per cycle (fig. 5)
    kSuddenDeath,        ///< `fraction` dies at once before `cycle` (fig. 6a)
    kChurn,              ///< `rate` crash + `rate` join per cycle (fig. 6b)
    kChurnFraction,      ///< churn with rate = ⌊nodes · fraction⌋
    kConstantCrash,      ///< `rate` crashes per cycle, no replacement
    kCorrelatedWaves,    ///< `waves` id-block kill waves from `cycle` on,
                         ///< each ⌊nodes · fraction⌋ ids wide
    kPartition,          ///< split into `components` for `duration` cycles
                         ///< starting at `cycle`, then heal
    kRestart,            ///< §4.2 epoch restart every `cycle` cycles
  };

  Kind kind = Kind::kNone;
  double p = 0.0;            ///< kProportionalCrash
  std::uint32_t cycle = 0;   ///< kSuddenDeath trigger / kCorrelatedWaves
                             ///< trigger / kPartition start / kRestart period
  double fraction = 0.0;     ///< kSuddenDeath / kChurnFraction /
                             ///< kCorrelatedWaves wave width
  std::uint32_t rate = 0;    ///< kChurn / kConstantCrash
  std::uint32_t waves = 0;       ///< kCorrelatedWaves: number of waves
  std::uint32_t duration = 0;    ///< kPartition: partitioned cycle count
  std::uint32_t components = 0;  ///< kPartition: isolated components

  static FailureSpec none() { return {}; }
  static FailureSpec proportional_crash(double p_fail);
  static FailureSpec sudden_death(std::uint32_t death_cycle, double fraction);
  static FailureSpec churn(std::uint32_t rate);
  static FailureSpec churn_fraction(double fraction);
  static FailureSpec constant_crash(std::uint32_t rate);
  static FailureSpec correlated_waves(std::uint32_t trigger,
                                      std::uint32_t waves, double fraction);
  static FailureSpec partition(std::uint32_t start, std::uint32_t duration,
                               std::uint32_t components);
  static FailureSpec restart(std::uint32_t period);

  /// Instantiates the concrete plan for a network of `nodes` nodes. A
  /// partition builds as NoFailures — its enforcement is the drivers'
  /// exchange filter (SimConfig::partition), not a node-failure plan.
  [[nodiscard]] std::unique_ptr<failure::FailurePlan> build(
      std::uint32_t nodes) const;

  bool operator==(const FailureSpec&) const = default;
};

/// Communication-failure probabilities (§6.2); mirrors CommFailureModel.
struct CommSpec {
  double link_failure = 0.0;   ///< P_d: whole exchange silently dropped
  double message_loss = 0.0;   ///< per-message loss (request and response)

  bool operator==(const CommSpec&) const = default;
};

/// Deployment-runtime knobs (driver 'runtime', runtime/executor.hpp):
/// executor shape, transport selection and injected link faults. Defaults
/// describe a single-process loopback run; like the adversarial failure
/// fields, the whole object is serialized only when non-default so every
/// pre-existing spec keeps its canonical JSON and spec_hash bit-identical.
struct RuntimeSpec {
  enum class TransportKind {
    kLoopback,  ///< in-process frames (N=10³–10⁴ nodes, one process)
    kSocket,    ///< TCP over loopback between `processes` cooperating runs
  };
  /// Injected one-way delay model (net/latency.hpp), in microseconds:
  /// fixed uses delay_lo_us; uniform draws [delay_lo_us, delay_hi_us];
  /// exponential uses delay_lo_us as base and delay_hi_us as tail mean.
  enum class LatencyKind { kNone, kFixed, kUniform, kExponential };

  std::uint32_t workers = 0;        ///< dispatcher threads; 0 = auto
  std::uint32_t wheel_slots = 8;    ///< timer-wheel wakeup ticks per cycle
  std::uint32_t delta_us = 0;       ///< δ wall pacing per cycle; 0 free-runs
  std::uint32_t timeout_ms = 2000;  ///< per-cycle pending wall guard
  TransportKind transport = TransportKind::kLoopback;
  std::uint32_t processes = 1;      ///< socket: cooperating process count
  std::uint32_t process_index = 0;  ///< socket: this process's shard
  std::uint32_t port_base = 0;      ///< socket: process p listens on base+p
  LatencyKind latency = LatencyKind::kNone;
  std::uint32_t delay_lo_us = 0;
  std::uint32_t delay_hi_us = 0;

  bool operator==(const RuntimeSpec&) const = default;
};

/// What a sweep varies from point to point.
enum class SweepAxis {
  kNone,           ///< single point (its value is ignored)
  kNodes,          ///< network size (fig. 3a)
  kBeta,           ///< Watts–Strogatz rewiring probability (fig. 4a)
  kCacheSize,      ///< NEWSCAST c (fig. 4b)
  kCrashP,         ///< per-cycle crash proportion P_f (fig. 5)
  kDeathCycle,     ///< sudden-death cycle (fig. 6a)
  kChurnFraction,  ///< churned fraction of N per cycle (fig. 6b)
  kLinkP,          ///< link-failure probability P_d (fig. 7a)
  kLossP,          ///< message-loss probability (fig. 7b)
  kInstances,      ///< concurrent COUNT instances t (fig. 8)
  kCycles,         ///< epoch length γ (epoch-length ablation)
  kInit,           ///< initial distribution (0..3 = InitKind)
  kAtomicity,      ///< exchange atomicity flag (event-driver ablation)
  kByzFraction,    ///< byzantine fraction (robustness_adversarial)
  kPartitionComponents,  ///< partition component count
  kPartitionDuration,    ///< partitioned cycle count before heal
};

/// One sweep point: the axis value plus the historical seed-point id
/// that rep_seed() mixes into every repetition's seed — pinned per
/// figure so registered scenarios reproduce the pre-redesign series
/// bit-identically.
struct SweepPoint {
  double value = 0.0;
  std::uint64_t seed_point = 0;
  std::string label;  ///< optional display label (e.g. "bimodal")

  bool operator==(const SweepPoint&) const = default;
};

struct SweepSpec {
  SweepAxis axis = SweepAxis::kNone;
  std::vector<SweepPoint> points;

  /// The no-sweep shape: one point carrying only a seed-point id.
  static SweepSpec single(std::uint64_t seed_point) {
    return {SweepAxis::kNone, {{0.0, seed_point, ""}}};
  }

  bool operator==(const SweepSpec&) const = default;
};

/// The declarative scenario. Defaults describe a plain AVERAGE peak run
/// on NEWSCAST(c=30) — every field is data and JSON-serializable.
struct ScenarioSpec {
  std::string name;
  std::string title;  ///< optional human-readable description

  DriverKind driver = DriverKind::kCycle;
  AggregateKind aggregate = AggregateKind::kAverage;
  std::uint32_t instances = 1;  ///< COUNT's t
  InitKind init = InitKind::kPeak;

  std::uint32_t nodes = 10000;
  std::uint32_t cycles = 30;
  std::uint32_t reps = 1;
  std::uint64_t seed = 0x5eed;

  TopologyConfig topology;  ///< cycle_sim.hpp's topology description
  FailureSpec failure;
  CommSpec comm;
  AdversarySpec adversary;  ///< byzantine behavior (cycle driver only)
  CombineSpec combine;      ///< exchange combine rule, mean() = paper
  DriftSpec drift;      ///< dynamic local values (cycle driver only)
  ServiceSpec service;  ///< epoch pipelining + query service
  bool atomic_exchanges = true;  ///< event driver only (§4.2 guard)
  RuntimeSpec runtime;  ///< deployment-runtime knobs (driver 'runtime')

  EngineKind engine = EngineKind::kAuto;
  unsigned threads = 0;  ///< 0 = resolve GOSSIP_THREADS / hardware
  unsigned shards = 0;   ///< 0 = resolve GOSSIP_SHARDS
  /// Matched propose/match/apply rounds per cycle in the intra-rep
  /// engine (1..16). One round leaves a per-cycle convergence factor of
  /// ≈ 0.55 on the AVERAGE-peak workload; the factor compounds per
  /// round, meeting the serial driver's ≈ 0.30 at 2 and beating it at
  /// 3. Values > 1 require engine 'intra_rep' — other engines have no
  /// match phase and would silently drop the field.
  std::uint32_t match_rounds = 1;

  SweepSpec sweep = SweepSpec::single(0);

  // ---- programmatic builders -------------------------------------------

  /// AVERAGE with the peak distribution (the fig. 2–5 workload).
  static ScenarioSpec average_peak(std::string name, std::uint32_t nodes,
                                   std::uint32_t cycles);
  /// COUNT with `instances` concurrent leaders (the fig. 6–8 workload).
  static ScenarioSpec count(std::string name, std::uint32_t nodes,
                            std::uint32_t cycles, std::uint32_t instances = 1);

  ScenarioSpec& with_title(std::string t);
  ScenarioSpec& with_topology(TopologyConfig t);
  ScenarioSpec& with_failure(FailureSpec f);
  ScenarioSpec& with_comm(CommSpec c);
  ScenarioSpec& with_adversary(AdversarySpec a);
  ScenarioSpec& with_combine(CombineSpec c);
  ScenarioSpec& with_drift(DriftSpec d);
  ScenarioSpec& with_service(ServiceSpec s);
  ScenarioSpec& with_runtime(RuntimeSpec r);
  ScenarioSpec& with_init(InitKind k);
  ScenarioSpec& with_reps(std::uint32_t r);
  ScenarioSpec& with_seed(std::uint64_t s);
  ScenarioSpec& with_engine(EngineKind k);
  ScenarioSpec& with_driver(DriverKind d);
  ScenarioSpec& with_instances(std::uint32_t t);
  ScenarioSpec& with_match_rounds(std::uint32_t r);
  ScenarioSpec& with_sweep(SweepAxis axis, std::vector<SweepPoint> points);
  ScenarioSpec& with_seed_point(std::uint64_t seed_point);  ///< no-sweep id

  /// The spec with sweep point `index` folded in: the axis value is
  /// applied to the corresponding field and the sweep collapsed to that
  /// single point. This is the per-point config the Engine executes.
  [[nodiscard]] ScenarioSpec at_point(std::size_t index) const;

  bool operator==(const ScenarioSpec&) const = default;
};

// ---- string/enum names (shared by JSON, CLI and error messages) --------

std::string to_string(DriverKind);
std::string to_string(AggregateKind);
std::string to_string(InitKind);
std::string to_string(EngineKind);
std::string to_string(TopologyKind);
std::string to_string(FailureSpec::Kind);
std::string to_string(SweepAxis);
std::string to_string(AdversarySpec::Behavior);
std::string to_string(CombineSpec::Kind);
std::string to_string(DriftSpec::Kind);
std::string to_string(RuntimeSpec::TransportKind);
std::string to_string(RuntimeSpec::LatencyKind);

// ---- JSON --------------------------------------------------------------

/// Canonical JSON form (all fields, fixed key order). `indent < 0` is
/// compact — the form spec_hash() hashes.
std::string to_json(const ScenarioSpec& spec, int indent = 2);

/// Parses and validates a spec; throws SpecError with a precise message
/// on malformed JSON, unknown fields, bad enum strings or invalid values.
ScenarioSpec spec_from_json(const std::string& text);

/// Semantic validation (ranges, cross-field constraints, engine
/// eligibility); throws SpecError on the first violation.
void validate(const ScenarioSpec& spec);

/// The FNV-1a 64 offset basis; fold strings in with fnv1a64().
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// The FNV-1a 64 prime (a hash constant, not an RNG stream salt — RNG
/// salts live in common/stream_salt.hpp).
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Folds `text` into the running FNV-1a 64 hash `h`. spec_hash() and the
/// multi-spec provenance hash both build on this, so they can never
/// diverge.
std::uint64_t fnv1a64(std::uint64_t h, const std::string& text);

/// 16-digit lowercase hex of a 64-bit hash.
std::string hex64(std::uint64_t h);

/// FNV-1a 64 over the compact canonical JSON: stable across processes,
/// changes whenever any field changes. Embedded in provenance blocks.
std::uint64_t spec_hash(const ScenarioSpec& spec);

/// Hex form of spec_hash ("a1b2c3d4e5f60718").
std::string spec_hash_hex(const ScenarioSpec& spec);

/// Parses an EngineKind name (auto|serial|rep_parallel|intra_rep);
/// throws SpecError listing the valid values.
EngineKind engine_kind_from_string(const std::string& name);

/// Parses a full-string unsigned integer (base prefix 0x accepted);
/// throws SpecError naming `field` on anything else.
std::uint64_t parse_u64_field(const std::string& field,
                              const std::string& value);

/// The closest entry of `valid` to `key` by edit distance, or "" when
/// nothing is close enough to be a plausible typo. Backs the
/// "did you mean 'aggregate'?" tail on unknown --set keys.
std::string nearest_key(const std::string& key,
                        std::initializer_list<const char*> valid);
std::string nearest_key(const std::string& key,
                        const std::vector<const char*>& valid);

// ---- spec-surface introspection ----------------------------------------

/// One row of the field-descriptor table (spec_fields.hpp) in runtime
/// form. The same rows generate parse, canonical serialization and the
/// --set dispatch, so this table IS the spec surface; spec_test's
/// table-driven coverage tests and tools/spec_surface_lint.py audit it.
struct SpecFieldDescriptor {
  const char* group;          ///< owning object ("top", "failure", ...)
  const char* member;         ///< C++ member name
  const char* json_path;      ///< dotted canonical-JSON path
  const char* type;           ///< field tag (STR/U32/U64/UNS/SIZE/DBL/
                              ///< PROB/BOOL/ENUM/OBJ/PTS)
  const char* default_value;  ///< default, as documentation text
  const char* emit;           ///< emission predicate (ALWAYS/IF_NONZERO/
                              ///< IF_NONEMPTY/IF_NONDEFAULT)
  const char* set_key;        ///< --set key ("" when not settable)
  const char* sweep_axis;     ///< sweep axis writing this field ("" if none)
};

/// Every descriptor row, in canonical JSON key order, group by group.
const std::vector<SpecFieldDescriptor>& spec_field_table();

/// Every --set key in dispatch order — the exact list the unknown-key
/// SpecError names and the typo suggestion draws candidates from.
const std::vector<const char*>& spec_set_keys();

/// Applies a `key=value` override (the CLI's --set): key is any
/// SET-marked row of the descriptor table (exactly spec_set_keys()).
/// Throws SpecError for unknown keys (naming the nearest valid key when
/// one is close) or unparsable values. Does NOT re-validate —
/// combinations of overrides are only valid/invalid as a whole, so
/// callers validate() once after the last override.
void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value);

}  // namespace gossip::experiment
