#include "experiment/registry.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

#include "common/env.hpp"
#include "stats/running_stats.hpp"
#include "stats/summary.hpp"
#include "theory/predictions.hpp"

namespace gossip::experiment {

namespace {

// ---- shared small helpers (formerly bench/bench_common.hpp) ------------

/// "inf"-safe formatting for size estimates that diverged. Labels every
/// non-finite value "inf" — historically so, and the pinned pre-redesign
/// CSV goldens depend on it; new surfaces use emit.hpp's fmt_estimate.
std::string fmt_size(double v) {
  if (!std::isfinite(v)) return "inf";
  return fmt(v, 1);
}

/// Median of a (copied) sample; 0 for empty.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  return stats::summarize(v).median;
}

/// The per-curve topology set of fig. 3 (a and b share it).
struct NamedTopology {
  const char* name;
  TopologyConfig cfg;
};

const std::vector<NamedTopology>& fig3_topologies() {
  static const std::vector<NamedTopology> topologies{
      {"W-S(0.00)", TopologyConfig::watts_strogatz(20, 0.00)},
      {"W-S(0.25)", TopologyConfig::watts_strogatz(20, 0.25)},
      {"W-S(0.50)", TopologyConfig::watts_strogatz(20, 0.50)},
      {"W-S(0.75)", TopologyConfig::watts_strogatz(20, 0.75)},
      {"newscast", TopologyConfig::newscast(30)},
      {"scalefree", TopologyConfig::barabasi_albert(20)},
      {"random", TopologyConfig::random_k_out(20)},
      {"complete", TopologyConfig::complete()},
  };
  return topologies;
}

ScenarioSpec base_spec(const char* name, AggregateKind aggregate,
                       const Scale& s, std::uint32_t cycles) {
  ScenarioSpec spec = aggregate == AggregateKind::kCount
                          ? ScenarioSpec::count(name, s.nodes, cycles)
                          : ScenarioSpec::average_peak(name, s.nodes, cycles);
  spec.reps = s.reps;
  spec.seed = s.seed;
  // Registered scenarios pin the repetition fan-out engine: bit-identical
  // to serial for every thread count and to the pre-redesign binaries.
  spec.engine = EngineKind::kRepParallel;
  return spec;
}

// ------------------------------------------------------------------ fig02

ScenarioDef make_fig02() {
  ScenarioDef def;
  def.info = {"fig02", "Figure 2",
              "AVERAGE min/max estimate vs cycle, peak distribution, "
              "random 20-out overlay",
              "N=1e5, 50 reps, 30 cycles", 10000, 20, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig02", AggregateKind::kAverage, s, 30);
    spec.topology = TopologyConfig::random_k_out(20);
    spec.with_seed_point(2);
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    const auto& reps = results.at(0).points.at(0).reps;
    const std::uint32_t cycles = results.at(0).spec.cycles;
    std::vector<stats::RunningStats> mins(cycles + 1), maxs(cycles + 1);
    for (const RunResult& run : reps) {
      for (std::size_t c = 0; c < run.per_cycle.size(); ++c) {
        mins[c].add(run.per_cycle[c].min());
        maxs[c].add(run.per_cycle[c].max());
      }
    }
    Table table({"cycle", "avg_min", "avg_max", "lo_min", "hi_max"});
    for (std::size_t c = 0; c <= cycles; ++c) {
      table.add_row({std::to_string(c), fmt_sci(mins[c].mean()),
                     fmt_sci(maxs[c].mean()), fmt_sci(mins[c].min()),
                     fmt_sci(maxs[c].max())});
    }
    const double final_spread = maxs[cycles].max() - mins[cycles].min();
    const std::string trailer =
        "paper-expects: min/max converge to 1 (+-~1%) by cycle 30; "
        "measured final spread = " +
        fmt_sci(final_spread) + " around mean 1";
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ----------------------------------------------------------------- fig03a

std::vector<std::uint32_t> fig3a_sizes(std::uint32_t nodes) {
  std::vector<std::uint32_t> sizes{100, 1000, 10000};
  while (sizes.back() < nodes) sizes.push_back(sizes.back() * 10);
  if (sizes.back() > nodes) sizes.back() = nodes;
  return sizes;
}

ScenarioDef make_fig03a() {
  ScenarioDef def;
  def.info = {"fig03a", "Figure 3a",
              "convergence factor vs network size for 8 topologies",
              "sizes 1e2..1e6, 50 reps, 20 cycles", 10000, 3, 100000, 50};
  def.build = [](const Scale& s) {
    const auto sizes = fig3a_sizes(s.nodes);
    std::vector<ScenarioSpec> specs;
    const auto& topologies = fig3_topologies();
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      ScenarioSpec spec =
          base_spec("fig03a", AggregateKind::kAverage, s, 20);
      spec.name = std::string("fig03a:") + topologies[ti].name;
      spec.topology = topologies[ti].cfg;
      std::vector<SweepPoint> points;
      for (const std::uint32_t n : sizes) {
        points.push_back({static_cast<double>(n),
                          31 * 1000 + ti * 100 + n % 97, ""});
      }
      spec.with_sweep(SweepAxis::kNodes, std::move(points));
      specs.push_back(std::move(spec));
    }
    return specs;
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    const auto& topologies = fig3_topologies();
    std::vector<std::string> headers{"size"};
    for (const auto& t : topologies) headers.emplace_back(t.name);
    Table table(std::move(headers));
    const auto sizes = fig3a_sizes(s.nodes);
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      std::vector<std::string> row{std::to_string(sizes[si])};
      for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
        stats::RunningStats factor;
        for (const RunResult& run : results.at(ti).points.at(si).reps) {
          factor.add(run.tracker.mean_factor(20));
        }
        row.push_back(fmt(factor.mean()));
      }
      table.add_row(std::move(row));
    }
    const std::string trailer =
        "paper-expects: flat in N; W-S(0)~0.8 down to random/complete ~ "
        "1/(2*sqrt(e)) = " +
        fmt(theory::push_pull_factor());
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ----------------------------------------------------------------- fig03b

ScenarioDef make_fig03b() {
  ScenarioDef def;
  def.info = {"fig03b", "Figure 3b",
              "normalized variance vs cycle for 8 topologies",
              "N=1e5, 50 reps, 50 cycles", 10000, 3, 100000, 50};
  def.build = [](const Scale& s) {
    std::vector<ScenarioSpec> specs;
    const auto& topologies = fig3_topologies();
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      ScenarioSpec spec =
          base_spec("fig03b", AggregateKind::kAverage, s, 50);
      spec.name = std::string("fig03b:") + topologies[ti].name;
      spec.topology = topologies[ti].cfg;
      spec.with_seed_point(32 + ti);
      specs.push_back(std::move(spec));
    }
    return specs;
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    constexpr std::uint32_t kCycles = 50;
    constexpr double kFloor = 1e-30;
    const auto& topologies = fig3_topologies();
    std::vector<std::vector<stats::RunningStats>> reduction(
        topologies.size(), std::vector<stats::RunningStats>(kCycles + 1));
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      for (const RunResult& run : results.at(ti).points.at(0).reps) {
        const auto norm = run.tracker.normalized(kFloor);
        for (std::size_t c = 0; c < norm.size(); ++c) {
          reduction[ti][c].add(norm[c]);
        }
      }
    }
    std::vector<std::string> headers{"cycle"};
    for (const auto& t : topologies) headers.emplace_back(t.name);
    Table table(std::move(headers));
    for (std::uint32_t c = 0; c <= kCycles; c += 2) {
      std::vector<std::string> row{std::to_string(c)};
      for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
        row.push_back(fmt_sci(reduction[ti][c].mean(), 2));
      }
      table.add_row(std::move(row));
    }
    return std::make_pair(
        std::move(table),
        std::string("paper-expects: straight log-lines; random-family "
                    "curves reach <=1e-16 by ~cycle 35, W-S(0) stays "
                    "within ~1e-2"));
  };
  return def;
}

// ----------------------------------------------------------------- fig04a

ScenarioDef make_fig04a() {
  ScenarioDef def;
  def.info = {"fig04a", "Figure 4a",
              "convergence factor vs Watts-Strogatz beta",
              "N=1e5, 50 reps, 20-cycle factor", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig04a", AggregateKind::kAverage, s, 20);
    spec.topology = TopologyConfig::watts_strogatz(20, 0.0);
    std::vector<SweepPoint> points;
    for (std::size_t bi = 0; bi < 21; ++bi) {
      points.push_back({bi / 20.0, 41 * 100 + bi, ""});
    }
    spec.with_sweep(SweepAxis::kBeta, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"beta", "factor_mean", "factor_min", "factor_max"});
    for (const PointResult& point : results.at(0).points) {
      stats::RunningStats factor;
      for (const RunResult& run : point.reps) {
        factor.add(run.tracker.mean_factor(20));
      }
      table.add_row({fmt(point.point.value, 2), fmt(factor.mean()),
                     fmt(factor.min()), fmt(factor.max())});
    }
    return std::make_pair(
        std::move(table),
        std::string("paper-expects: smooth monotone drop from ~0.8 "
                    "(beta=0) toward ~0.3 (beta=1), no sharp transition"));
  };
  return def;
}

// ----------------------------------------------------------------- fig04b

ScenarioDef make_fig04b() {
  ScenarioDef def;
  def.info = {"fig04b", "Figure 4b",
              "convergence factor vs newscast cache size c",
              "N=1e5, 50 reps, c in [2,50]", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    const std::vector<std::size_t> cs{2,  3,  4,  5,  6,  8, 10, 12,
                                      15, 20, 25, 30, 40, 50};
    ScenarioSpec spec = base_spec("fig04b", AggregateKind::kAverage, s, 20);
    spec.topology = TopologyConfig::newscast(30);
    std::vector<SweepPoint> points;
    for (const std::size_t c : cs) {
      points.push_back({static_cast<double>(c), 42 * 100 + c, ""});
    }
    spec.with_sweep(SweepAxis::kCacheSize, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"c", "factor_mean", "factor_min", "factor_max"});
    for (const PointResult& point : results.at(0).points) {
      stats::RunningStats factor;
      for (const RunResult& run : point.reps) {
        factor.add(run.tracker.mean_factor(20));
      }
      table.add_row(
          {std::to_string(static_cast<std::size_t>(point.point.value)),
           fmt(factor.mean()), fmt(factor.min()), fmt(factor.max())});
    }
    const std::string trailer =
        "paper-expects: steep improvement from c=2, flat near " +
        fmt(theory::push_pull_factor()) + " by c~20-30";
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ------------------------------------------------------------------ fig05

ScenarioDef make_fig05() {
  ScenarioDef def;
  def.info = {"fig05", "Figure 5",
              "Var(mu_20)/E(sigma0^2) vs crash rate P_f, with Theorem 1",
              "N=1e5, 100 reps, Pf in [0,0.3]", 10000, 40, 100000, 100};
  def.build = [](const Scale& s) {
    std::vector<ScenarioSpec> specs;
    const TopologyConfig topologies[] = {TopologyConfig::complete(),
                                         TopologyConfig::newscast(30)};
    std::uint64_t topo_index = 0;
    for (const auto& topo : topologies) {
      ++topo_index;
      ScenarioSpec spec = base_spec("fig05", AggregateKind::kAverage, s, 20);
      spec.name = topo_index == 1 ? "fig05:complete" : "fig05:newscast";
      spec.topology = topo;
      std::vector<SweepPoint> points;
      for (int pi = 0; pi <= 6; ++pi) {
        points.push_back(
            {pi * 0.05, 51 * 100 + static_cast<std::uint64_t>(pi) * 10 +
                            topo_index,
             ""});
      }
      spec.with_sweep(SweepAxis::kCrashP, std::move(points));
      specs.push_back(std::move(spec));
    }
    return specs;
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    constexpr std::uint32_t kCycles = 20;
    Table table({"Pf", "complete", "newscast", "predicted"});
    for (std::size_t pi = 0; pi < results.at(0).points.size(); ++pi) {
      const double pf = results.at(0).points.at(pi).point.value;
      std::vector<std::string> row{fmt(pf, 2)};
      double sigma0_sq = theory::peak_distribution_variance(
          s.nodes, static_cast<double>(s.nodes));
      for (const ScenarioResult& topo_result : results) {
        stats::RunningStats mu_final;
        for (const RunResult& run : topo_result.points.at(pi).reps) {
          mu_final.add(run.per_cycle.back().mean());
          sigma0_sq = run.per_cycle.front().variance();
        }
        row.push_back(fmt_sci(mu_final.variance() / sigma0_sq, 3));
      }
      const double predicted =
          pf == 0.0
              ? 0.0
              : theory::mu_variance(pf, s.nodes, sigma0_sq,
                                    theory::push_pull_factor(), kCycles) /
                    sigma0_sq;
      row.push_back(fmt_sci(predicted, 3));
      table.add_row(std::move(row));
    }
    return std::make_pair(
        std::move(table),
        std::string("paper-expects: empirical ~= predicted (within "
                    "Monte-Carlo noise of reps), growing superlinearly "
                    "with Pf; at paper scale Pf=0.3 gives ~1.6e-5"));
  };
  return def;
}

// ----------------------------------------------------------------- fig06a

ScenarioDef make_fig06a() {
  ScenarioDef def;
  def.info = {"fig06a", "Figure 6a",
              "COUNT estimate vs cycle of 50% sudden death",
              "N=1e5, 50 reps, newscast c=30", 10000, 10, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig06a", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    spec.failure = FailureSpec::sudden_death(0, 0.5);
    std::vector<SweepPoint> points;
    for (std::uint32_t x = 0; x <= 20; x += 2) {
      points.push_back({static_cast<double>(x), 61 * 100 + x, ""});
    }
    spec.with_sweep(SweepAxis::kDeathCycle, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    Table table({"death_cycle", "est_median", "est_lo", "est_hi",
                 "inf_runs"});
    for (const PointResult& point : results.at(0).points) {
      std::vector<double> means;
      int infinite = 0;
      for (const RunResult& run : point.reps) {
        if (std::isfinite(run.sizes.mean)) {
          means.push_back(run.sizes.mean);
        } else {
          ++infinite;
        }
      }
      const auto sm = stats::summarize(means);
      table.add_row(
          {std::to_string(static_cast<std::uint32_t>(point.point.value)),
           fmt_size(sm.median), fmt_size(sm.min), fmt_size(sm.max),
           std::to_string(infinite)});
    }
    const std::string trailer =
        "paper-expects: wide scatter (up to several x N, possibly "
        "infinite) for death at cycles 0-6, tight at N from ~cycle 10 on; "
        "true epoch-start size = " +
        std::to_string(s.nodes);
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ----------------------------------------------------------------- fig06b

ScenarioDef make_fig06b() {
  ScenarioDef def;
  def.info = {"fig06b", "Figure 6b",
              "COUNT estimate vs churn rate (crash+join per cycle)",
              "N=1e5, r in [0,2500] (2.5%/cycle)", 10000, 10, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig06b", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    spec.failure = FailureSpec::churn_fraction(0.0);
    std::vector<SweepPoint> points;
    for (int fi = 0; fi <= 5; ++fi) {
      points.push_back({fi * 0.005, 62 * 100 + static_cast<std::uint64_t>(fi),
                        ""});
    }
    spec.with_sweep(SweepAxis::kChurnFraction, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    Table table({"churn_per_cycle", "est_median", "est_lo", "est_hi",
                 "participants_left"});
    for (const PointResult& point : results.at(0).points) {
      // The historical rate arithmetic: truncation of N x fraction.
      const auto rate =
          static_cast<std::uint32_t>(s.nodes * point.point.value);
      std::vector<double> means;
      std::uint32_t participants = 0;
      for (const RunResult& run : point.reps) {
        means.push_back(run.sizes.mean);
        participants = run.participants;
      }
      const auto sm = stats::summarize(means);
      table.add_row({std::to_string(rate), fmt_size(sm.median),
                     fmt_size(sm.min), fmt_size(sm.max),
                     std::to_string(participants)});
    }
    const std::string trailer =
        "paper-expects: estimates centered near the epoch-start size " +
        std::to_string(s.nodes) +
        " with spread growing with churn (paper band at 2500/cycle: "
        "~0.8x-2.6x N)";
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ----------------------------------------------------------------- fig07a

ScenarioDef make_fig07a() {
  ScenarioDef def;
  def.info = {"fig07a", "Figure 7a",
              "COUNT convergence factor vs link failure P_d, with bound",
              "N=1e5, 50 reps, Pd in [0,0.9]", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig07a", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    std::vector<SweepPoint> points;
    for (int pi = 0; pi <= 9; ++pi) {
      points.push_back({pi * 0.1, 71 * 100 + static_cast<std::uint64_t>(pi),
                        ""});
    }
    spec.with_sweep(SweepAxis::kLinkP, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"Pd", "factor_mean", "factor_min", "factor_max", "bound"});
    for (const PointResult& point : results.at(0).points) {
      const double pd = point.point.value;
      stats::RunningStats factor;
      for (const RunResult& run : point.reps) {
        factor.add(run.tracker.mean_factor(30));
      }
      table.add_row({fmt(pd, 1), fmt(factor.mean()), fmt(factor.min()),
                     fmt(factor.max()), fmt(theory::link_failure_bound(pd))});
    }
    const std::string trailer =
        "paper-expects: factor_mean <= bound everywhere, factor(0) ~ " +
        fmt(theory::push_pull_factor()) +
        ", bound increasingly tight for larger Pd";
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ----------------------------------------------------------------- fig07b

ScenarioDef make_fig07b() {
  ScenarioDef def;
  def.info = {"fig07b", "Figure 7b",
              "COUNT min/max estimate vs message loss fraction",
              "N=1e5, 50 reps, loss in [0,0.5]", 10000, 10, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig07b", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    std::vector<SweepPoint> points;
    for (int li = 0; li <= 10; ++li) {
      points.push_back({li * 0.05, 72 * 100 + static_cast<std::uint64_t>(li),
                        ""});
    }
    spec.with_sweep(SweepAxis::kLossP, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"loss", "min_median", "max_median", "min_lo", "max_hi"});
    for (const PointResult& point : results.at(0).points) {
      std::vector<double> mins, maxs;
      for (const RunResult& run : point.reps) {
        mins.push_back(run.sizes.min);
        if (std::isfinite(run.sizes.max)) maxs.push_back(run.sizes.max);
      }
      table.add_row({fmt(point.point.value, 2), fmt_size(median_of(mins)),
                     fmt_size(median_of(maxs)),
                     fmt_size(stats::summarize(mins).min),
                     maxs.empty()
                         ? "inf"
                         : fmt_size(stats::summarize(maxs).max)});
    }
    return std::make_pair(
        std::move(table),
        std::string("paper-expects: near-exact at loss<=0.1, spread "
                    "exploding by orders of magnitude as loss -> 0.4-0.5"));
  };
  return def;
}

// ----------------------------------------------------------------- fig08*

const std::vector<std::uint32_t>& fig8_instance_counts() {
  static const std::vector<std::uint32_t> ts{1, 2, 3, 5, 10, 20, 30, 50};
  return ts;
}

std::pair<Table, std::string> emit_fig8(
    const Scale& s, const std::vector<ScenarioResult>& results,
    const std::string& trailer) {
  Table table({"t", "lo", "median", "hi", "band/N"});
  for (const PointResult& point : results.at(0).points) {
    std::vector<double> mins, means, maxs;
    for (const RunResult& run : point.reps) {
      mins.push_back(run.sizes.min);
      means.push_back(run.sizes.mean);
      maxs.push_back(run.sizes.max);
    }
    const double lo = stats::summarize(mins).min;
    const double hi = stats::summarize(maxs).max;
    table.add_row(
        {std::to_string(static_cast<std::uint32_t>(point.point.value)),
         fmt_size(lo), fmt_size(median_of(means)), fmt_size(hi),
         fmt((hi - lo) / s.nodes, 4)});
  }
  return std::make_pair(std::move(table), trailer);
}

ScenarioDef make_fig08a() {
  ScenarioDef def;
  def.info = {"fig08a", "Figure 8a",
              "COUNT min/max vs instance count t, churn 1%/cycle",
              "N=1e5, 1000 subst/cycle, t in [1,50]", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig08a", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    spec.failure = FailureSpec::churn_fraction(0.01);  // = N/100 subst/cycle
    std::vector<SweepPoint> points;
    for (const std::uint32_t t : fig8_instance_counts()) {
      points.push_back({static_cast<double>(t), 81 * 100 + t, ""});
    }
    spec.with_sweep(SweepAxis::kInstances, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    return emit_fig8(
        s, results,
        "paper-expects: cross-experiment band shrinking with t (paper: "
        "~0.9x-1.3x N at t=1, tight around N by t~20-50)");
  };
  return def;
}

ScenarioDef make_fig08b() {
  ScenarioDef def;
  def.info = {"fig08b", "Figure 8b",
              "COUNT min/max vs instance count t, 20% message loss",
              "N=1e5, loss=0.2, t in [1,50]", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("fig08b", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    spec.comm.message_loss = 0.2;
    std::vector<SweepPoint> points;
    for (const std::uint32_t t : fig8_instance_counts()) {
      points.push_back({static_cast<double>(t), 82 * 100 + t, ""});
    }
    spec.with_sweep(SweepAxis::kInstances, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    return emit_fig8(
        s, results,
        "paper-expects: wide band at t=1 (roughly 0.5x-3x N), collapsing "
        "with t; tight around N from t~20");
  };
  return def;
}

// ---------------------------------------------------------- fig08*_giant
//
// The fig. 8 robustness workloads at one giant repetition: COUNT with t
// concurrent instances under churn / message loss, executed by the
// domain-decomposed intra-rep engine (N=10⁶ at paper scale — the run no
// repetition fan-out can parallelize). Two match rounds per cycle keep
// the matched-cycle convergence factor near the serial driver's without
// tripling the sweep cost. The series is an intra-rep trajectory: pin it
// against intra-rep goldens, not against fig08a/fig08b.

std::vector<ScenarioSpec> build_fig08_giant(const char* name, const Scale& s,
                                            FailureSpec failure,
                                            CommSpec comm,
                                            std::uint64_t seed_base) {
  ScenarioSpec spec = base_spec(name, AggregateKind::kCount, s, 30);
  spec.topology = TopologyConfig::newscast(30);
  spec.failure = failure;
  spec.comm = comm;
  spec.reps = 1;  // one giant repetition; parallelism lives inside it
  spec.engine = EngineKind::kIntraRep;
  spec.match_rounds = 2;
  std::vector<SweepPoint> points;
  for (const std::uint32_t t : {1u, 5u, 20u, 50u}) {
    points.push_back({static_cast<double>(t), seed_base + t, ""});
  }
  spec.with_sweep(SweepAxis::kInstances, std::move(points));
  return {spec};
}

ScenarioDef make_fig08a_giant() {
  ScenarioDef def;
  def.info = {"fig08a_giant", "Figure 8a (giant-N)",
              "COUNT min/max vs instance count t, churn 1%/cycle, one "
              "intra-rep repetition",
              "N=1e6, 1 rep, intra-rep engine, 2 match rounds", 20000, 1,
              1000000, 1};
  def.build = [](const Scale& s) {
    return build_fig08_giant("fig08a_giant", s,
                             FailureSpec::churn_fraction(0.01), CommSpec{},
                             83 * 100);
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    return emit_fig8(
        s, results,
        "paper-expects: the fig. 8a band at scale — shrinking with t, "
        "tight around N by t~20-50 (intra-rep trajectory; compare against "
        "intra-rep goldens)");
  };
  return def;
}

ScenarioDef make_fig08b_giant() {
  ScenarioDef def;
  def.info = {"fig08b_giant", "Figure 8b (giant-N)",
              "COUNT min/max vs instance count t, 20% message loss, one "
              "intra-rep repetition",
              "N=1e6, 1 rep, intra-rep engine, 2 match rounds", 20000, 1,
              1000000, 1};
  def.build = [](const Scale& s) {
    return build_fig08_giant("fig08b_giant", s, FailureSpec::none(),
                             CommSpec{0.0, 0.2}, 84 * 100);
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    return emit_fig8(
        s, results,
        "paper-expects: wide band at t=1 collapsing with t; tight around "
        "N from t~20 (intra-rep trajectory; compare against intra-rep "
        "goldens)");
  };
  return def;
}

// ------------------------------------------------------------- ablations

ScenarioDef make_ablation_atomicity() {
  ScenarioDef def;
  def.info = {"ablation_atomicity", "Ablation",
              "exchange atomicity on/off in the event-driven stack",
              "not a paper figure; design ablation", 1000, 5, 1000, 20};
  def.build = [](const Scale& s) {
    ScenarioSpec spec =
        base_spec("ablation_atomicity", AggregateKind::kAverage, s, 25);
    spec.driver = DriverKind::kEvent;
    // Historical point ids: seed_point 90 + (atomic ? 1 : 0), "on" first.
    spec.with_sweep(SweepAxis::kAtomicity,
                    {{1.0, 91, "on"}, {0.0, 90, "off"}});
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"atomic", "mean_final", "mean_err", "worst_rep_err"});
    for (const PointResult& point : results.at(0).points) {
      stats::RunningStats err;
      for (const RunResult& run : point.reps) {
        err.add(std::abs(run.sizes.mean - 1.0));
      }
      table.add_row({point.point.label, fmt(1.0 + err.mean(), 5),
                     fmt_sci(err.mean(), 2), fmt_sci(err.max(), 2)});
    }
    return std::make_pair(
        std::move(table),
        std::string("expected: 'on' conserves the mean to ~1e-7 (residual "
                    "= exchanges in flight at snapshot time); 'off' "
                    "drifts by percents."));
  };
  return def;
}

ScenarioDef make_ablation_epoch_length() {
  ScenarioDef def;
  def.info = {"ablation_epoch_length", "Ablation",
              "COUNT accuracy vs epoch length gamma (rule: gamma >= "
              "log_rho epsilon)",
              "not a paper figure; design ablation", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec =
        base_spec("ablation_epoch_length", AggregateKind::kCount, s, 30);
    spec.topology = TopologyConfig::newscast(30);
    std::vector<SweepPoint> points;
    for (const std::uint32_t gamma : {4u, 8u, 12u, 16u, 20u, 24u, 30u, 40u}) {
      points.push_back({static_cast<double>(gamma), 95 + gamma, ""});
    }
    spec.with_sweep(SweepAxis::kCycles, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    const double rho = theory::push_pull_factor();
    Table table({"gamma", "rho^gamma", "worst_node_err%", "mean_err%"});
    for (const PointResult& point : results.at(0).points) {
      const auto gamma = static_cast<std::uint32_t>(point.point.value);
      double worst = 0.0;
      stats::RunningStats mean_err;
      int divergent = 0;
      for (const RunResult& run : point.reps) {
        const double n = static_cast<double>(s.nodes);
        if (std::isfinite(run.sizes.max)) {
          worst = std::max(worst, std::abs(run.sizes.max - n) / n);
        } else {
          ++divergent;  // some node saw no instance: estimate = inf
        }
        worst = std::max(worst, std::abs(run.sizes.min - n) / n);
        if (std::isfinite(run.sizes.mean)) {
          mean_err.add(std::abs(run.sizes.mean - n) / n);
        }
      }
      table.add_row({std::to_string(gamma),
                     fmt_sci(std::pow(rho, gamma), 2),
                     divergent > 0 ? "inf" : fmt(100.0 * worst, 3),
                     mean_err.count() == 0 ? "inf"
                                           : fmt(100.0 * mean_err.mean(), 4)});
    }
    const std::string trailer =
        "expected: worst-node error tracks rho^gamma; the paper's "
        "gamma=30 is comfortably past convergence (ratio ~" +
        fmt_sci(std::pow(rho, 30), 1) + ")";
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

ScenarioDef make_ablation_initial_distribution() {
  ScenarioDef def;
  def.info = {"ablation_initial_distribution", "Ablation",
              "convergence factor vs initial value distribution",
              "not a paper figure; design ablation", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    ScenarioSpec spec = base_spec("ablation_initial_distribution",
                                  AggregateKind::kAverage, s, 20);
    spec.topology = TopologyConfig::random_k_out(20);
    std::vector<SweepPoint> points;
    const char* labels[] = {"peak", "uniform", "bimodal", "exponential"};
    for (std::size_t di = 0; di < 4; ++di) {
      points.push_back({static_cast<double>(di), 97 + di, labels[di]});
    }
    spec.with_sweep(SweepAxis::kInit, std::move(points));
    return std::vector<ScenarioSpec>{spec};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"distribution", "factor_mean", "factor_min", "factor_max"});
    for (const PointResult& point : results.at(0).points) {
      stats::RunningStats factor;
      for (const RunResult& run : point.reps) {
        factor.add(run.tracker.mean_factor(15));
      }
      table.add_row({point.point.label, fmt(factor.mean()),
                     fmt(factor.min()), fmt(factor.max())});
    }
    const std::string trailer =
        "expected: all distributions near 1/(2*sqrt(e)) = " +
        fmt(theory::push_pull_factor()) +
        " — the factor is workload-independent, so the paper's peak-only "
        "experiments generalize.";
    return std::make_pair(std::move(table), trailer);
  };
  return def;
}

// ------------------------------------------------ robustness_adversarial
//
// The adversarial vocabulary exercised end to end: a byzantine fraction
// injecting a fixed outlier into the AVERAGE workload under the paper's
// pairwise mean vs the robust combine rules (§7.3-style trimming), plus
// network partitions of varying width and heal time. Honest-node bias is
// |final honest mean − initial honest mean| — per-cycle stats exclude
// byzantine nodes, so the bias measures exactly how far the adversary
// dragged the honest population.

ScenarioDef make_robustness_adversarial() {
  ScenarioDef def;
  def.info = {"robustness_adversarial", "Robustness",
              "honest-node bias and convergence factor under byzantine "
              "value injection (mean vs robust combine) and partitions "
              "with heal",
              "not a paper figure; adversarial robustness series", 1000, 4,
              10000, 20};
  def.build = [](const Scale& s) {
    std::vector<ScenarioSpec> specs;
    const struct {
      const char* tag;
      CombineSpec combine;
      std::uint64_t seed_base;
    } combines[] = {
        {"mean", CombineSpec::mean(), 910},
        {"trimmed_mean", CombineSpec::trimmed_mean(0.25), 920},
        // groups = window + 1 is the pure-median limiting case — the
        // highest-breakdown rule the vocabulary expresses. Fewer groups
        // (e.g. 3) break down at ~2 polluted window slots and let the
        // injected outlier compound through honest relays.
        {"median_of_means", CombineSpec::median_of_means(9), 930},
    };
    for (const auto& c : combines) {
      ScenarioSpec spec = base_spec("robustness_adversarial",
                                    AggregateKind::kAverage, s, 30);
      spec.name = std::string("robustness_adversarial:") + c.tag;
      spec.topology = TopologyConfig::newscast(30);
      // A peak start would drown the injected outlier; uniform values
      // around mean 1 make a pinned 100 a measurable pull.
      spec.init = InitKind::kUniform;
      spec.adversary = AdversarySpec::value_inject(0.0, 100.0);
      spec.combine = c.combine;
      std::vector<SweepPoint> points;
      const double fractions[] = {0.0, 0.05, 0.1, 0.2};
      for (std::uint64_t fi = 0; fi < 4; ++fi) {
        points.push_back({fractions[fi], c.seed_base + fi, ""});
      }
      spec.with_sweep(SweepAxis::kByzFraction, std::move(points));
      specs.push_back(std::move(spec));
    }

    const struct {
      const char* tag;
      SweepAxis axis;
      std::vector<double> values;
      std::uint64_t seed_base;
    } partitions[] = {
        {"partition_width", SweepAxis::kPartitionComponents,
         {2.0, 4.0, 8.0}, 940},
        {"partition_heal", SweepAxis::kPartitionDuration,
         {5.0, 10.0, 20.0}, 950},
    };
    for (const auto& p : partitions) {
      ScenarioSpec spec = base_spec("robustness_adversarial",
                                    AggregateKind::kAverage, s, 30);
      spec.name = std::string("robustness_adversarial:") + p.tag;
      spec.topology = TopologyConfig::newscast(30);
      spec.init = InitKind::kUniform;
      spec.failure = FailureSpec::partition(5, 10, 2);
      std::vector<SweepPoint> points;
      for (std::uint64_t vi = 0; vi < p.values.size(); ++vi) {
        points.push_back({p.values[vi], p.seed_base + vi, ""});
      }
      spec.with_sweep(p.axis, std::move(points));
      specs.push_back(std::move(spec));
    }
    return specs;
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"series", "x", "factor", "honest_bias"});
    for (const ScenarioResult& series : results) {
      const std::string label =
          series.spec.name.substr(series.spec.name.find(':') + 1);
      for (const PointResult& point : series.points) {
        stats::RunningStats factor, bias;
        for (const RunResult& run : point.reps) {
          factor.add(run.tracker.mean_factor(30));
          bias.add(std::abs(run.per_cycle.back().mean() -
                            run.per_cycle.front().mean()));
        }
        table.add_row({label, fmt(point.point.value, 2),
                       fmt(factor.mean()), fmt_sci(bias.mean(), 2)});
      }
    }
    return std::make_pair(
        std::move(table),
        std::string(
            "expected: under value injection the plain mean's honest bias "
            "grows toward the injected outlier with the byzantine "
            "fraction, while trimmed_mean/median_of_means keep it orders "
            "of magnitude smaller (at a convergence-factor cost); wider "
            "partitions and longer heal times slow convergence while "
            "active but recover after the heal."));
  };
  return def;
}

// ---------------------------------------------------- service_continuous
//
// Continuous aggregation as a service: the §4.2 restart model replaced
// by epoch pipelining — each epoch's report is published into a snapshot
// store while the next epoch converges, and every cycle serves a query
// against the freshest published snapshot. Three drift models move the
// true mean under the protocol's feet across a churn sweep (tracking
// error + staleness vs drift rate × churn), and a separate COUNT leg
// drives the flat [node × instance] lane path at service traffic width
// (10³–10⁴ concurrent instances). Deterministic columns (tracking error,
// p99 staleness, the bound verdict, estimate error) are pinned by the
// CSV golden; wall-clock rates live in the trailer only.

ScenarioDef make_service_continuous() {
  ScenarioDef def;
  def.info = {"service_continuous", "Service",
              "tracking error and snapshot staleness under dynamic values "
              "x churn with epoch pipelining, plus COUNT query lanes at "
              "1e3-1e4 concurrent instances",
              "not a paper figure; continuous-service series", 2000, 3,
              100000, 10};
  def.build = [](const Scale& s) {
    std::vector<ScenarioSpec> specs;
    constexpr std::uint32_t kCycles = 40;
    constexpr std::uint32_t kEpoch = 10;
    constexpr std::uint32_t kStaleBound = 12;
    const struct {
      const char* tag;
      DriftSpec drift;
      std::uint64_t seed_base;
    } drifts[] = {
        {"linear", DriftSpec::linear(0.01), 960},
        {"random_walk", DriftSpec::random_walk(0.05), 970},
        {"step", DriftSpec::step(0.5, kCycles / 2), 980},
    };
    for (const auto& d : drifts) {
      ScenarioSpec spec = base_spec("service_continuous",
                                    AggregateKind::kAverage, s, kCycles);
      spec.name = std::string("service_continuous:") + d.tag;
      spec.topology = TopologyConfig::newscast(30);
      // Uniform values around mean 1: a drifting mean is measurable
      // against a spread, where the peak start's lone spike is not.
      spec.init = InitKind::kUniform;
      spec.drift = d.drift;
      spec.service = ServiceSpec::pipelined(kEpoch, kStaleBound);
      spec.failure = FailureSpec::churn_fraction(0.0);
      std::vector<SweepPoint> points;
      const double churns[] = {0.0, 0.01, 0.05};
      for (std::uint64_t ci = 0; ci < 3; ++ci) {
        points.push_back({churns[ci], d.seed_base + ci, ""});
      }
      spec.with_sweep(SweepAxis::kChurnFraction, std::move(points));
      specs.push_back(std::move(spec));
    }

    // The query-lane leg: COUNT at 10^3-10^4 concurrent instances under
    // churn, scaled with N so instances never outnumber leaders.
    ScenarioSpec lanes = base_spec("service_continuous",
                                   AggregateKind::kCount, s, 30);
    lanes.name = "service_continuous:lanes";
    lanes.topology = TopologyConfig::newscast(30);
    lanes.failure = FailureSpec::churn_fraction(0.01);
    std::vector<SweepPoint> lane_points;
    std::uint64_t li = 0;
    for (const std::uint32_t t : {std::min(s.nodes / 2, 5000u),
                                  std::min(s.nodes, 10000u)}) {
      lane_points.push_back(
          {static_cast<double>(std::max(t, 1u)), 990 + li++, ""});
    }
    lanes.with_sweep(SweepAxis::kInstances, std::move(lane_points));
    specs.push_back(std::move(lanes));
    return specs;
  };
  def.emit = [](const Scale& s, const std::vector<ScenarioResult>& results) {
    Table table({"series", "x", "tracking_err", "p99_stale", "stale_ok",
                 "est_err"});
    std::uint64_t queries = 0, epochs = 0;
    double service_elapsed = 0.0, lane_rate = 0.0;
    std::uint32_t worst_p99 = 0, widest_lanes = 0;
    bool all_ok = true;
    for (const ScenarioResult& series : results) {
      const std::string label =
          series.spec.name.substr(series.spec.name.find(':') + 1);
      for (const PointResult& point : series.points) {
        if (series.spec.service.enabled()) {
          const ServiceSummary sum = summarize_service(series.spec, point);
          stats::RunningStats served;
          for (const RunResult& run : point.reps) {
            // Mean over every served query, not just the final one: the
            // served answer lags the live estimate by the snapshot age,
            // so this is the error a client actually observes.
            for (const double e : run.served_error) served.add(e);
            service_elapsed += run.elapsed_seconds;
          }
          queries += sum.queries;
          epochs += sum.epochs_published;
          worst_p99 = std::max(worst_p99, sum.p99_staleness);
          all_ok = all_ok && sum.stale_ok;
          table.add_row({label, fmt(point.point.value, 2),
                         fmt_sci(sum.tracking_error, 2),
                         std::to_string(sum.p99_staleness),
                         sum.stale_ok ? "yes" : "NO",
                         fmt_sci(served.mean(), 2)});
        } else {
          const auto t = static_cast<std::uint32_t>(point.point.value);
          widest_lanes = std::max(widest_lanes, t);
          std::vector<double> means;
          double elapsed = 0.0;
          for (const RunResult& run : point.reps) {
            if (std::isfinite(run.sizes.mean)) means.push_back(run.sizes.mean);
            elapsed += run.elapsed_seconds;
          }
          const double n = static_cast<double>(s.nodes);
          if (elapsed > 0.0) {
            lane_rate = std::max(
                lane_rate,
                static_cast<double>(t) * series.spec.cycles *
                    static_cast<double>(point.reps.size()) / elapsed);
          }
          table.add_row({label, std::to_string(t), "-", "-", "-",
                         fmt_sci(std::abs(median_of(means) - n) / n, 2)});
        }
      }
    }
    std::ostringstream tr;
    tr << "service: " << queries << " queries over " << epochs
       << " published epochs";
    if (service_elapsed > 0.0) {
      tr << " at " << fmt(static_cast<double>(queries) / service_elapsed, 0)
         << " queries/s wall";
    }
    tr << ", p99 staleness " << worst_p99
       << (all_ok ? " within" : " EXCEEDING") << " the spec bound"
       << "; lanes: " << widest_lanes << " concurrent instances";
    if (lane_rate > 0.0) {
      tr << " at " << fmt(lane_rate, 0) << " lane-cycles/s wall";
    }
    tr << " | expected: tracking error grows with drift rate x churn; the "
          "mid-run step is re-acquired within one epoch; p99 staleness "
          "stays under epoch length + 2";
    return std::make_pair(std::move(table), tr.str());
  };
  return def;
}

// ----------------------------------------------------------- baseline

ScenarioDef make_baseline_push_sum() {
  ScenarioDef def;
  def.info = {"baseline_push_sum", "Baseline",
              "push-pull (this paper) vs push-sum (Kempe et al.)",
              "related-work baseline, not a figure", 10000, 5, 100000, 50};
  def.build = [](const Scale& s) {
    const double losses[] = {0.0, 0.1, 0.2, 0.4};
    ScenarioSpec pp =
        base_spec("baseline_push_sum:push_pull", AggregateKind::kAverage, s,
                  30);
    pp.topology = TopologyConfig::random_k_out(20);
    std::vector<SweepPoint> pp_points, ps_points;
    for (const double loss : losses) {
      pp_points.push_back(
          {loss, 200 + static_cast<std::uint64_t>(loss * 10), ""});
      ps_points.push_back(
          {loss, 300 + static_cast<std::uint64_t>(loss * 10), ""});
    }
    pp.with_sweep(SweepAxis::kLossP, std::move(pp_points));

    ScenarioSpec ps = pp;
    ps.name = "baseline_push_sum:push_sum";
    ps.driver = DriverKind::kPushSum;
    ps.sweep.points = std::move(ps_points);
    return std::vector<ScenarioSpec>{pp, ps};
  };
  def.emit = [](const Scale&, const std::vector<ScenarioResult>& results) {
    Table table({"loss", "pp_factor", "ps_factor", "pp_mean_drift",
                 "ps_mean_drift"});
    const ScenarioResult& pp = results.at(0);
    const ScenarioResult& ps = results.at(1);
    for (std::size_t li = 0; li < pp.points.size(); ++li) {
      stats::RunningStats pp_factor, ps_factor, pp_drift, ps_drift;
      const auto& pp_reps = pp.points.at(li).reps;
      const auto& ps_reps = ps.points.at(li).reps;
      for (std::size_t rep = 0; rep < pp_reps.size(); ++rep) {
        pp_factor.add(pp_reps[rep].tracker.mean_factor(20));
        pp_drift.add(std::abs(pp_reps[rep].per_cycle.back().mean() - 1.0));
        ps_factor.add(ps_reps[rep].tracker.mean_factor(20));
        ps_drift.add(std::abs(ps_reps[rep].sizes.mean - 1.0));
      }
      table.add_row({fmt(pp.points.at(li).point.value, 1),
                     fmt(pp_factor.mean()), fmt(ps_factor.mean()),
                     fmt_sci(pp_drift.mean(), 2),
                     fmt_sci(ps_drift.mean(), 2)});
    }
    return std::make_pair(
        std::move(table),
        std::string(
            "expected: pp_factor ~0.30 < ps_factor ~0.55 (push-pull "
            "converges ~2x faster per cycle);\nboth drift under loss on "
            "the peak workload, push-sum more (lost pushes carry\nextreme "
            "s:w ratios early on) — and push-sum also destroys the "
            "conserved totals."));
  };
  return def;
}

}  // namespace

// --------------------------------------------------------------- registry

ScenarioRegistry::ScenarioRegistry() {
  defs_.push_back(make_fig02());
  defs_.push_back(make_fig03a());
  defs_.push_back(make_fig03b());
  defs_.push_back(make_fig04a());
  defs_.push_back(make_fig04b());
  defs_.push_back(make_fig05());
  defs_.push_back(make_fig06a());
  defs_.push_back(make_fig06b());
  defs_.push_back(make_fig07a());
  defs_.push_back(make_fig07b());
  defs_.push_back(make_fig08a());
  defs_.push_back(make_fig08b());
  defs_.push_back(make_fig08a_giant());
  defs_.push_back(make_fig08b_giant());
  defs_.push_back(make_ablation_atomicity());
  defs_.push_back(make_ablation_epoch_length());
  defs_.push_back(make_ablation_initial_distribution());
  defs_.push_back(make_robustness_adversarial());
  defs_.push_back(make_service_continuous());
  defs_.push_back(make_baseline_push_sum());
}

const ScenarioRegistry& ScenarioRegistry::instance() {
  static const ScenarioRegistry registry;
  return registry;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const ScenarioDef& def : defs_) out.push_back(def.info.name);
  return out;
}

const ScenarioDef* ScenarioRegistry::find(const std::string& name) const {
  for (const ScenarioDef& def : defs_) {
    if (def.info.name == name) return &def;
  }
  return nullptr;
}

Scale scenario_scale(const ScenarioInfo& info) {
  return bench_scale(info.def_nodes, info.def_reps, info.paper_nodes,
                     info.paper_reps);
}

ScenarioOutput run_scenario(const ScenarioDef& def, const Scale& scale,
                            const EngineOptions& options) {
  const std::vector<ScenarioSpec> specs = def.build(scale);
  Engine engine(options);
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) results.push_back(engine.run(spec));
  auto [table, trailer] = def.emit(scale, results);
  return ScenarioOutput{std::move(table), std::move(trailer),
                        std::move(results)};
}

std::string scale_note(const Scale& s, const std::string& paper_setup) {
  std::ostringstream os;
  os << "N=" << s.nodes << ", reps=" << s.reps << ", seed=" << s.seed
     << ", threads<=" << runner_threads()
     << (s.full ? " [paper scale]" : " [scaled default]")
     << " | paper: " << paper_setup;
  return os.str();
}

int scenario_main(const std::string& name) {
  try {
    const ScenarioDef* def = ScenarioRegistry::instance().find(name);
    if (def == nullptr) {
      std::cerr << "gossip: unknown scenario '" << name << "'\n";
      return 2;
    }
    const Scale s = scenario_scale(def->info);
    print_banner(std::cout, def->info.figure, def->info.description,
                 scale_note(s, def->info.paper_setup));
    ScenarioOutput out = run_scenario(*def, s);
    out.table.print(std::cout);
    out.table.maybe_write_csv_file(name);
    std::cout << '\n' << out.trailer << '\n';
    return 0;
  } catch (const EnvError& e) {
    std::cerr << "gossip: " << e.what() << '\n';
    return 2;
  } catch (const SpecError& e) {
    std::cerr << "gossip: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace gossip::experiment
