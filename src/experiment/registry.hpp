// The scenario registry: every figure, ablation and baseline of the
// paper's evaluation is a *named scenario* — a builder producing
// declarative ScenarioSpecs (spec.hpp) plus a fold that turns the
// Engine's results into exactly the series the paper plots. The
// `gossip_run` CLI and the thin per-figure wrapper binaries are both
// driven from here; goldens in tests/scenario_registry_test.cpp pin the
// emitted series to the pre-redesign binaries bit-for-bit.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "experiment/emit.hpp"
#include "experiment/engine.hpp"
#include "experiment/scale.hpp"
#include "experiment/spec.hpp"
#include "experiment/table.hpp"

namespace gossip::experiment {

/// Registry metadata: what the scenario reproduces and the scaling the
/// paper used vs the default scaled-down run.
struct ScenarioInfo {
  std::string name;         ///< registry key ("fig06b")
  std::string figure;       ///< banner heading ("Figure 6b")
  std::string description;  ///< one-line series description
  std::string paper_setup;  ///< the paper's configuration, for the banner
  std::uint32_t def_nodes = 10000;
  std::uint32_t def_reps = 5;
  std::uint32_t paper_nodes = 100000;
  std::uint32_t paper_reps = 50;
};

/// A fully rendered scenario: the published series plus everything the
/// JSON emitter needs (specs, per-rep results, provenance inputs).
struct ScenarioOutput {
  Table table;
  std::string trailer;  ///< the "paper-expects" shape note
  std::vector<ScenarioResult> results;
};

struct ScenarioDef {
  ScenarioInfo info;
  /// Instantiates the scenario's spec(s) at a concrete scale. Most
  /// scenarios are one spec; per-topology figures build one per curve.
  std::function<std::vector<ScenarioSpec>(const Scale&)> build;
  /// Folds Engine results (same order as build()'s specs) into the
  /// published table + trailer.
  std::function<std::pair<Table, std::string>(
      const Scale&, const std::vector<ScenarioResult>&)>
      emit;
};

class ScenarioRegistry {
public:
  static const ScenarioRegistry& instance();

  [[nodiscard]] const std::vector<ScenarioDef>& all() const { return defs_; }
  [[nodiscard]] std::vector<std::string> names() const;
  /// nullptr when `name` is not registered.
  [[nodiscard]] const ScenarioDef* find(const std::string& name) const;

private:
  ScenarioRegistry();
  std::vector<ScenarioDef> defs_;
};

/// Env-resolved scale for a scenario (strict GOSSIP_FULL/N/REPS/SEED).
Scale scenario_scale(const ScenarioInfo& info);

/// Builds, runs (through one Engine) and folds a scenario.
ScenarioOutput run_scenario(const ScenarioDef& def, const Scale& scale,
                            const EngineOptions& options = {});

/// The banner scale string ("N=…, reps=…, seed=…, threads<=…").
std::string scale_note(const Scale& s, const std::string& paper_setup);

/// Whole main() body for the per-figure wrapper binaries: resolve scale
/// from the environment, run, print banner + table + trailer, mirror to
/// GOSSIP_CSV_DIR. Returns the process exit code (2 on EnvError /
/// SpecError, with the one-line message on stderr).
int scenario_main(const std::string& name);

}  // namespace gossip::experiment
