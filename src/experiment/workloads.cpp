#include "experiment/workloads.hpp"

#include "experiment/intra_rep.hpp"
#include "experiment/parallel_runner.hpp"

namespace gossip::experiment {

AverageRun run_average_peak(const SimConfig& config,
                            const failure::FailurePlan& plan,
                            std::uint64_t seed) {
  CycleSimulation sim(config, Rng(seed));
  sim.init_peak(static_cast<double>(config.nodes));
  sim.run(plan);
  return AverageRun{sim.cycle_stats(), sim.tracker()};
}

CountRun run_count(const SimConfig& config, const failure::FailurePlan& plan,
                   std::uint64_t seed) {
  CycleSimulation sim(config, Rng(seed));
  sim.init_count_leaders();
  sim.run(plan);
  const auto sizes = sim.size_estimates();
  CountRun out;
  out.sizes = stats::summarize(sizes);
  out.tracker = sim.tracker();
  out.participants = static_cast<std::uint32_t>(sizes.size());
  return out;
}

std::vector<AverageRun> run_average_peak_reps(ParallelRunner& runner,
                                              const SimConfig& config,
                                              const failure::FailurePlan& plan,
                                              std::uint64_t base_seed,
                                              std::uint64_t point,
                                              std::uint32_t reps) {
  return runner.map(reps, [&](std::size_t rep) {
    return run_average_peak(config, plan, rep_seed(base_seed, point, rep));
  });
}

std::vector<CountRun> run_count_reps(ParallelRunner& runner,
                                     const SimConfig& config,
                                     const failure::FailurePlan& plan,
                                     std::uint64_t base_seed,
                                     std::uint64_t point,
                                     std::uint32_t reps) {
  return runner.map(reps, [&](std::size_t rep) {
    return run_count(config, plan, rep_seed(base_seed, point, rep));
  });
}

AverageRun run_average_peak_intra(const SimConfig& config,
                                  const failure::FailurePlan& plan,
                                  std::uint64_t seed, unsigned shards,
                                  ParallelRunner& runner) {
  IntraRepSimulation sim(config, seed, shards);
  sim.init_peak(static_cast<double>(config.nodes));
  sim.run(plan, runner);
  return AverageRun{sim.cycle_stats(), sim.tracker()};
}

std::uint64_t rep_seed(std::uint64_t base, std::uint64_t point,
                       std::uint64_t rep) {
  // One splitmix64 walk keyed by (base, point, rep); avoids accidental
  // stream sharing between sweep points.
  std::uint64_t s = base ^ (point * 0x9e3779b97f4a7c15ULL) ^
                    (rep * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(s);
}

}  // namespace gossip::experiment
