// The continuous-service query surface: epoch pipelining publishes each
// finished epoch's converged report here while the next epoch is already
// converging, and queries are answered from the last published snapshot
// together with exactly how stale it is — the ISSUE's
// `query(instance) -> {value, epoch, age_cycles}` API.
//
// The store is deliberately dumb: it never interpolates, never blends
// epochs, and keeps exactly one snapshot per instance (the newest). All
// staleness accounting is in cycles of the publishing simulation, so the
// emit layer can check a spec-level staleness bound against it directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace gossip::experiment {

/// One published epoch report for one aggregate instance.
struct Snapshot {
  double value = 0.0;
  std::uint64_t epoch = 0;          ///< the epoch that produced the value
  std::uint32_t publish_cycle = 0;  ///< global cycle the report landed
};

class SnapshotStore {
public:
  /// What a query returns: the served value plus its provenance.
  struct Answer {
    double value = 0.0;
    std::uint64_t epoch = 0;       ///< epoch the served value summarizes
    std::uint32_t age_cycles = 0;  ///< now - publish_cycle
  };

  /// Installs `instance`'s snapshot, replacing any previous epoch's.
  void publish(std::uint32_t instance, double value, std::uint64_t epoch,
               std::uint32_t cycle) {
    if (instance >= slots_.size()) slots_.resize(instance + 1);
    slots_[instance] = Snapshot{value, epoch, cycle};
    ++published_;
  }

  /// The answer a query for `instance` issued at global cycle `now` would
  /// be served, or std::nullopt before the first epoch publishes.
  [[nodiscard]] std::optional<Answer> query(std::uint32_t instance,
                                            std::uint32_t now) const {
    if (instance >= slots_.size() || !slots_[instance].has_value()) {
      return std::nullopt;
    }
    const Snapshot& s = *slots_[instance];
    const std::uint32_t age = now >= s.publish_cycle ? now - s.publish_cycle
                                                     : 0;
    return Answer{s.value, s.epoch, age};
  }

  /// Instance slots ever published into (dense up to the largest id).
  [[nodiscard]] std::size_t instances() const { return slots_.size(); }

  /// Total publish() calls — the epochs the service completed.
  [[nodiscard]] std::uint64_t published() const { return published_; }

private:
  std::vector<std::optional<Snapshot>> slots_;
  std::uint64_t published_ = 0;
};

}  // namespace gossip::experiment
