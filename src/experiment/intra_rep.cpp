#include "experiment/intra_rep.hpp"

#include <algorithm>

#include "core/update.hpp"
#include "experiment/parallel_runner.hpp"
#include "overlay/generators.hpp"

namespace gossip::experiment {

namespace {
// Phase salts keeping the newscast and aggregation draws of one (cycle,
// node) on independent streams. Aggregation round r mixes the round
// index in (round 0 stays on kAggSalt).
constexpr std::uint64_t kNewscastSalt = 0x6e65777363617374ULL;  // "newscast"
constexpr std::uint64_t kAggSalt = 0x6167677265676174ULL;        // "aggregat"

constexpr std::uint64_t round_salt(std::uint32_t round) {
  return kAggSalt ^
         (static_cast<std::uint64_t>(round) * 0x94d049bb133111ebULL);
}
}  // namespace

IntraRepSimulation::IntraRepSimulation(const SimConfig& config,
                                       std::uint64_t seed, unsigned shards)
    : config_(config),
      seed_(seed),
      rng_(seed),
      // Degenerate-geometry guard: more shards than nodes would only
      // schedule empty per-shard jobs every phase (GOSSIP_SHARDS can be
      // 4096 against N=8 in scaled-down CI runs). Shard count is
      // semantically invisible — output is bit-identical for any value —
      // so clamping to N never changes a result.
      population_(config.nodes,
                  std::max(1u, std::min(shards, config.nodes))) {
  GOSSIP_REQUIRE(config.nodes >= 2, "simulation needs at least two nodes");
  GOSSIP_REQUIRE(config.instances >= 1, "need at least one instance");
  GOSSIP_REQUIRE(config.match_rounds >= 1,
                 "need at least one match round per cycle");
  estimates_.assign(static_cast<std::size_t>(config.nodes) *
                        config.instances,
                    0.0);
  participant_.assign(config.nodes, 1);
  build_topology();
}

void IntraRepSimulation::build_topology() {
  const auto& topo = config_.topology;
  switch (topo.kind) {
    case TopologyKind::kComplete:
      break;  // sampled straight off the live set
    case TopologyKind::kRandomKOut:
      graph_ = overlay::random_k_out(config_.nodes, topo.degree, rng_);
      break;
    case TopologyKind::kRingLattice:
      graph_ = overlay::ring_lattice(config_.nodes, topo.degree);
      break;
    case TopologyKind::kWattsStrogatz:
      graph_ = overlay::watts_strogatz(config_.nodes, topo.degree, topo.beta,
                                       rng_);
      break;
    case TopologyKind::kBarabasiAlbert:
      graph_ = overlay::barabasi_albert(config_.nodes, topo.degree / 2, rng_);
      break;
    case TopologyKind::kNewscast:
      newscast_ =
          std::make_unique<membership::NewscastNetwork>(topo.cache_size);
      newscast_->bootstrap_random(config_.nodes, 0, rng_);
      break;
  }
}

void IntraRepSimulation::init_scalar(
    const std::function<double(NodeId)>& value_of) {
  GOSSIP_REQUIRE(config_.instances == 1,
                 "scalar initialization needs instances == 1");
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    estimates_[u] = value_of(NodeId(u));
  }
  initialized_ = true;
}

void IntraRepSimulation::init_peak(double peak, std::uint32_t peak_holder) {
  GOSSIP_REQUIRE(peak_holder < config_.nodes, "peak holder out of range");
  init_scalar([peak, peak_holder](NodeId id) {
    return id.value() == peak_holder ? peak : 0.0;
  });
}

void IntraRepSimulation::init_count_leaders() {
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  GOSSIP_REQUIRE(config_.update == core::UpdateKind::kAverage,
                 "COUNT is built on averaging (§5)");
  GOSSIP_REQUIRE(config_.instances <= config_.nodes,
                 "more instances than nodes");
  leaders_ = elect_count_leaders(rng_, config_.nodes, config_.instances,
                                 estimates_);
  initialized_ = true;
}

void IntraRepSimulation::apply_failures(const failure::CycleEvent& event,
                                        std::uint64_t now,
                                        ParallelRunner& pool) {
  GOSSIP_REQUIRE(event.kills < population_.live_count(),
                 "failure plan would kill the whole network");
  if (event.kills > 0) {
    // One distinct-position draw replaces the serial driver's
    // draw-kill-draw interleaving, so the whole batch can retire through
    // the stable parallel compaction in one step.
    victims_.clear();
    for (std::uint64_t pos :
         rng_.sample_distinct(population_.live_count(), event.kills)) {
      victims_.push_back(population_.live()[pos]);
    }
    const overlay::ParallelFor par =
        [&pool](std::size_t count,
                const std::function<void(std::size_t)>& job) {
          pool.run(count, job);
        };
    population_.kill_many(victims_, &par);
  }
  if (event.joins == 0) return;
  GOSSIP_REQUIRE(config_.topology.kind == TopologyKind::kNewscast ||
                     config_.topology.kind == TopologyKind::kComplete,
                 "joins need a dynamic overlay (newscast or complete)");
  estimates_.reserve(estimates_.size() +
                     static_cast<std::size_t>(event.joins) *
                         config_.instances);
  participant_.reserve(participant_.size() + event.joins);
  if (newscast_) newscast_->reserve_joins(event.joins);
  for (std::uint32_t j = 0; j < event.joins; ++j) {
    const NodeId contact = population_.sample_live(rng_);
    const NodeId fresh = population_.add();
    estimates_.insert(estimates_.end(), config_.instances, 0.0);
    participant_.push_back(0);  // §4.2: joiners sit out the epoch
    if (newscast_) newscast_->add_node(fresh, contact, now);
  }
}

template <typename SampleFn>
void IntraRepSimulation::propose(std::uint32_t cycle, std::uint64_t salt,
                                 bool draw_outcome, bool participants_only,
                                 ParallelRunner& pool, SampleFn&& sample) {
  const unsigned shards = population_.shards();
  pool.run(shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    for (std::uint32_t u = lo; u < hi; ++u) {
      const NodeId p(u);
      if (!population_.alive_unchecked(p)) continue;
      if (participants_only && !participating(p)) continue;
      Rng stream = node_stream(cycle, u, salt);
      // kCandidates proposals per node: the trailing ones are fallbacks
      // the match scan turns to when an earlier choice is alive but
      // already claimed. Extra candidates sharply cut the nodes a round
      // leaves unmatched, and the matched fraction is what the
      // per-round convergence factor hinges on.
      NodeId* cand = &proposals_[static_cast<std::size_t>(u) * kCandidates];
      for (unsigned c = 0; c < kCandidates; ++c) {
        cand[c] = sample(p, stream);
      }
      if (draw_outcome && cand[0].is_valid()) {
        outcome_[u] = static_cast<std::uint8_t>(config_.comm.sample(stream));
      }
    }
  });
}

void IntraRepSimulation::match(std::uint32_t cycle, std::uint64_t salt,
                               bool participants_only) {
  // Serial greedy scan: cheap (a few array reads per id), and the one
  // place where a deterministic global order is required — the pair set
  // must not depend on shard boundaries. Shards emptied by a mass crash
  // are invisible here: the scan walks the id space, not the shard
  // decomposition, and dead ids are skipped.
  //
  // The walk follows a per-round pseudorandom permutation, not id
  // order: a fixed order hands early ids first pick every round, and
  // the *same* late nodes then find every candidate already claimed
  // round after round — persistent stragglers whose deviation dominates
  // the late-cycle variance (the serial driver's per-cycle permutation
  // avoids exactly this). The permutation depends only on (seed, cycle,
  // phase salt) — never on shards or threads.
  std::fill(matched_.begin(), matched_.end(), 0);
  pairs_.clear();
  const std::uint32_t total = population_.total();
  scan_order_.resize(total);
  for (std::uint32_t i = 0; i < total; ++i) scan_order_[i] = i;
  // The shuffle stream is keyed by the invalid-id sentinel, which no
  // real node can occupy — a mid-range constant would collide with that
  // node's proposal stream once N grows past it.
  Rng order_rng = node_stream(cycle, 0xffffffffu, salt);
  order_rng.shuffle(scan_order_);
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint32_t u = scan_order_[i];
    const NodeId p(u);
    if (!population_.alive_unchecked(p)) continue;
    if (participants_only && !participating(p)) continue;
    if (matched_[u]) continue;
    const NodeId* cand =
        &proposals_[static_cast<std::size_t>(u) * kCandidates];
    for (unsigned c = 0; c < kCandidates; ++c) {
      const NodeId q = cand[c];
      // An invalid, self, crashed or refusing (non-participating)
      // candidate ends the attempt: the timeout / refusal already cost p
      // its round, exactly as in the serial driver's §4.2 semantics.
      // Only an alive-but-claimed peer falls through to the next view
      // entry.
      if (!q.is_valid() || q == p || q.value() >= total) break;
      if (!population_.alive_unchecked(q)) break;
      if (participants_only && !participating(q)) break;
      if (matched_[q.value()]) continue;
      matched_[u] = 1;
      matched_[q.value()] = 1;
      pairs_.emplace_back(p, q);
      break;
    }
  }
}

void IntraRepSimulation::newscast_round(std::uint32_t cycle,
                                        std::uint32_t round,
                                        std::uint64_t now,
                                        ParallelRunner& pool) {
  // One matched membership sub-round (all rounds of a cycle share the
  // same logical time, so descriptor aging stays per-cycle). A single
  // matching gives every node at most one cache merge per cycle — far
  // less view mixing than the serial run_cycle, where a node serves
  // several initiators — and under-mixed caches leave the aggregation
  // rounds drawing correlated partners: without a membership round per
  // aggregation round, extra aggregation rounds stop paying on NEWSCAST
  // (the factor stalls near 0.48 instead of compounding).
  // The round multiplier must differ from node_stream's cycle and node
  // multipliers: reusing one would let (cycle, round) pairs collide to
  // the same per-node stream (e.g. cycle 0 round 3 vs cycle 2 round 1).
  const std::uint64_t salt =
      kNewscastSalt ^
      (static_cast<std::uint64_t>(round) * 0xbf58476d1ce4e5b9ULL);
  propose(cycle, salt, /*draw_outcome=*/false,
          /*participants_only=*/false, pool,
          [this](NodeId p, Rng& rng) {
            return newscast_->sample_view(p, rng);
          });
  match(cycle, salt, /*participants_only=*/false);
  // Pairs are disjoint, so chunked application with per-chunk merge
  // buffers writes disjoint cache slots — race-free without locks, and
  // chunk boundaries cannot influence any merge result. Because of that
  // invariance the chunk count follows the *worker* count, not the shard
  // count: each MergeBuffers carries two O(total-ids) mark arrays, and
  // sizing them by GOSSIP_SHARDS (up to 4096) would be pure memory waste
  // when only pool.threads() jobs ever run at once.
  const std::size_t chunks =
      std::min<std::size_t>(population_.shards(),
                            std::max(1u, pool.threads()));
  if (merge_buffers_.size() < chunks) merge_buffers_.resize(chunks);
  const std::size_t count = pairs_.size();
  pool.run(chunks, [&](std::size_t s) {
    auto& buffers = merge_buffers_[s];
    const std::size_t lo = count * s / chunks;
    const std::size_t hi = count * (s + 1) / chunks;
    for (std::size_t k = lo; k < hi; ++k) {
      newscast_->exchange(buffers, pairs_[k].first, pairs_[k].second, now);
    }
  });
}

void IntraRepSimulation::apply_pairs(ParallelRunner& pool) {
  const unsigned shards = population_.shards();
  const std::size_t count = pairs_.size();
  const core::UpdateKind kind = config_.update;
  const std::uint32_t t = config_.instances;
  pool.run(shards, [&](std::size_t s) {
    const std::size_t lo = count * s / shards;
    const std::size_t hi = count * (s + 1) / shards;
    for (std::size_t k = lo; k < hi; ++k) {
      const auto [p, q] = pairs_[k];
      double* ep = &estimates_[static_cast<std::size_t>(p.value()) * t];
      double* eq = &estimates_[static_cast<std::size_t>(q.value()) * t];
      const auto outcome =
          static_cast<failure::ExchangeOutcome>(outcome_[p.value()]);
      if (outcome == failure::ExchangeOutcome::kLinkDown ||
          outcome == failure::ExchangeOutcome::kRequestLost) {
        continue;  // the pair's exchange silently never happened
      }
      if (outcome == failure::ExchangeOutcome::kCompleted) {
        for (std::uint32_t i = 0; i < t; ++i) {
          const double u = core::apply_update(kind, ep[i], eq[i]);
          ep[i] = u;
          eq[i] = u;
        }
      } else {  // kResponseLost: passive peer updated, initiator not
        for (std::uint32_t i = 0; i < t; ++i) {
          eq[i] = core::apply_update(kind, ep[i], eq[i]);
        }
      }
    }
  });
}

void IntraRepSimulation::aggregation_round(std::uint32_t cycle,
                                           std::uint32_t round,
                                           ParallelRunner& pool) {
  // One independent propose/match/apply round: fresh proposals
  // (round-salted streams) resolve into a disjoint matching, applied
  // before the next round samples — so round r+1 mixes the values round
  // r produced.
  const std::uint64_t salt = round_salt(round);
  switch (config_.topology.kind) {
    case TopologyKind::kComplete:
      propose(cycle, salt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                return population_.sample_live_other(p, rng);
              });
      break;
    case TopologyKind::kNewscast:
      propose(cycle, salt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                return newscast_->sample_view(p, rng);
              });
      break;
    default:
      propose(cycle, salt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                const auto ns = graph_.neighbors(p);
                if (ns.empty()) return NodeId::invalid();
                return ns[rng.below(ns.size())];
              });
      break;
  }
  match(cycle, salt, /*participants_only=*/true);
  apply_pairs(pool);
}

void IntraRepSimulation::record_stats() {
  const std::uint32_t t = config_.instances;
  stats::RunningStats rs;
  for (NodeId u : population_.live()) {
    if (participating(u)) {
      rs.add(estimates_[static_cast<std::size_t>(u.value()) * t]);
    }
  }
  cycle_stats_.push_back(rs);
}

void IntraRepSimulation::run(const failure::FailurePlan& plan,
                             ParallelRunner& pool) {
  GOSSIP_REQUIRE(initialized_, "initialize values before running");
  GOSSIP_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  record_stats();  // σ²_0
  for (std::uint32_t cycle = 0; cycle < config_.cycles; ++cycle) {
    apply_failures(plan.before_cycle(cycle, population_.live_count()),
                   cycle + 1, pool);
    const std::uint32_t total = population_.total();
    proposals_.resize(static_cast<std::size_t>(total) * kCandidates,
                      NodeId::invalid());
    outcome_.resize(total, 0);
    matched_.resize(total, 0);
    // Matched sub-rounds: `match_rounds` membership rounds (NEWSCAST
    // needs the extra view mixing — a single matching merges each cache
    // at most once per cycle, and under-mixed views leave aggregation
    // partners correlated across rounds), then `match_rounds`
    // aggregation rounds, each applied before the next draws.
    for (std::uint32_t round = 0; round < config_.match_rounds; ++round) {
      if (newscast_) newscast_round(cycle, round, cycle + 1, pool);
    }
    for (std::uint32_t round = 0; round < config_.match_rounds; ++round) {
      aggregation_round(cycle, round, pool);
    }
    record_stats();
  }
}

double IntraRepSimulation::estimate(NodeId node,
                                    std::uint32_t instance) const {
  GOSSIP_REQUIRE(node.is_valid() && node.value() < population_.total(),
                 "estimate() node out of range");
  GOSSIP_REQUIRE(instance < config_.instances,
                 "estimate() instance out of range");
  return estimates_[static_cast<std::size_t>(node.value()) *
                        config_.instances +
                    instance];
}

std::vector<double> IntraRepSimulation::scalar_estimates() const {
  std::vector<double> out;
  out.reserve(population_.live_count());
  for (NodeId u : population_.live()) {
    if (participating(u)) out.push_back(estimate(u, 0));
  }
  return out;
}

std::vector<double> IntraRepSimulation::size_estimates() const {
  const std::uint32_t t = config_.instances;
  std::vector<double> out;
  std::vector<double> scratch;
  for (NodeId u : population_.live()) {
    if (!participating(u)) continue;
    out.push_back(robust_size_estimate(
        &estimates_[static_cast<std::size_t>(u.value()) * t], t, scratch));
  }
  return out;
}

stats::ConvergenceTracker IntraRepSimulation::tracker() const {
  stats::ConvergenceTracker t;
  for (const auto& rs : cycle_stats_) t.record(rs.variance());
  return t;
}

}  // namespace gossip::experiment
