#include "experiment/intra_rep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/stream_salt.hpp"
#include "core/update.hpp"
#include "experiment/parallel_runner.hpp"
#include "overlay/generators.hpp"
#include "stats/reduction.hpp"

namespace gossip::experiment {

namespace {
// Phase salts keeping the newscast and aggregation draws of one (cycle,
// node) on independent streams live in the compile-time registry
// (common/stream_salt.hpp): salt::kIntraRepNewscast / salt::kIntraRepAgg
// plus the round-mixing helpers, distinctness static_assert-checked.

/// Commutative CAS-min: the cell converges to the minimum of every value
/// offered during the pass regardless of thread interleaving, which is
/// what makes the reservation outcome schedule-independent.
inline void atomic_min(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (v < cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Node ids must leave two bits for the candidate index inside the
/// packed 64-bit reservation priority.
constexpr std::uint32_t kMaxNodes = 1u << 30;
}  // namespace

IntraRepSimulation::IntraRepSimulation(const SimConfig& config,
                                       std::uint64_t seed, unsigned shards)
    : config_(config),
      seed_(seed),
      rng_(seed),
      // Degenerate-geometry guard: more shards than nodes would only
      // schedule empty per-shard jobs every phase (GOSSIP_SHARDS can be
      // 4096 against N=8 in scaled-down CI runs). Shard count is
      // semantically invisible — output is bit-identical for any value —
      // so clamping to N never changes a result.
      population_(config.nodes,
                  std::max(1u, std::min(shards, config.nodes))) {
  GOSSIP_REQUIRE(config.nodes >= 2, "simulation needs at least two nodes");
  GOSSIP_REQUIRE(config.instances >= 1, "need at least one instance");
  GOSSIP_REQUIRE(config.match_rounds >= 1,
                 "need at least one match round per cycle");
  GOSSIP_REQUIRE(config.nodes < kMaxNodes,
                 "intra-rep match priorities pack node ids into 30 bits");
  estimates_.assign(static_cast<std::size_t>(config.nodes) *
                        config.instances,
                    0.0);
  participant_.assign(config.nodes, 1);
  // Same adversary wiring as CycleSimulation: cache pollution stays off
  // the aggregation path; byzantine reports / robust combine switch the
  // pair application to the general path.
  const bool agg_adversary =
      config.adversary.enabled() &&
      config.adversary.behavior != AdversarySpec::Behavior::kCachePollute;
  general_ = agg_adversary || config.combine.robust();
  exclude_byz_stats_ = agg_adversary;
  GOSSIP_REQUIRE(!general_ || config.instances == 1,
                 "adversary/robust combine need instances == 1");
  GOSSIP_REQUIRE(!(config.drift.enabled() || config.service.enabled()) ||
                     config.instances == 1,
                 "drift/service need instances == 1");
  GOSSIP_REQUIRE(!(config.service.enabled() && config.epoch_restarts),
                 "service pipelining replaces epoch restarts");
  if (config.service.enabled()) {
    epoch_machine_.emplace(config.service.epoch_cycles);
  }
  byz_.assign(config.nodes, 0);
  if (config.adversary.enabled()) {
    for (std::uint32_t u = 0; u < config.nodes; ++u) {
      byz_[u] = config.adversary.is_byzantine(u) ? 1 : 0;
    }
  }
  build_topology();
}

void IntraRepSimulation::build_topology() {
  const auto& topo = config_.topology;
  switch (topo.kind) {
    case TopologyKind::kComplete:
      break;  // sampled straight off the live set
    case TopologyKind::kRandomKOut:
      graph_ = overlay::random_k_out(config_.nodes, topo.degree, rng_);
      break;
    case TopologyKind::kRingLattice:
      graph_ = overlay::ring_lattice(config_.nodes, topo.degree);
      break;
    case TopologyKind::kWattsStrogatz:
      graph_ = overlay::watts_strogatz(config_.nodes, topo.degree, topo.beta,
                                       rng_);
      break;
    case TopologyKind::kBarabasiAlbert:
      graph_ = overlay::barabasi_albert(config_.nodes, topo.degree / 2, rng_);
      break;
    case TopologyKind::kNewscast:
      newscast_ =
          std::make_unique<membership::NewscastNetwork>(topo.cache_size);
      newscast_->bootstrap_random(config_.nodes, 0, rng_);
      break;
  }
}

void IntraRepSimulation::par_run(
    ParallelRunner& pool, std::size_t count,
    const std::function<void(std::size_t)>& job) {
  if (profile_ == nullptr) {
    pool.run(count, job);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  pool.run(count, job);
  profile_->parallel_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

void IntraRepSimulation::init_scalar(
    const std::function<double(NodeId)>& value_of) {
  GOSSIP_REQUIRE(config_.instances == 1,
                 "scalar initialization needs instances == 1");
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    estimates_[u] = value_of(NodeId(u));
  }
  initialized_ = true;
}

void IntraRepSimulation::init_peak(double peak, std::uint32_t peak_holder) {
  GOSSIP_REQUIRE(peak_holder < config_.nodes, "peak holder out of range");
  init_scalar([peak, peak_holder](NodeId id) {
    return id.value() == peak_holder ? peak : 0.0;
  });
}

void IntraRepSimulation::init_count_leaders() {
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  GOSSIP_REQUIRE(config_.update == core::UpdateKind::kAverage,
                 "COUNT is built on averaging (§5)");
  GOSSIP_REQUIRE(config_.instances <= config_.nodes,
                 "more instances than nodes");
  leaders_ = elect_count_leaders(rng_, config_.nodes, config_.instances,
                                 estimates_);
  initialized_ = true;
}

void IntraRepSimulation::apply_failures(const failure::CycleEvent& event,
                                        std::uint64_t now,
                                        ParallelRunner& pool) {
  // Same survivor clamp as CycleSimulation::apply_failures: targeted
  // range kills spend the keep-one-alive budget first, then the uniform
  // kills take what remains.
  const overlay::ParallelFor par =
      [this, &pool](std::size_t count,
                    const std::function<void(std::size_t)>& job) {
        par_run(pool, count, job);
      };
  const std::uint32_t live0 = population_.live_count();
  std::uint32_t budget = live0 > 0 ? live0 - 1 : 0;
  if (event.kill_hi > event.kill_lo) {
    budget -= population_.kill_range(event.kill_lo, event.kill_hi, budget,
                                     &par);
  }
  const std::uint32_t kills = std::min(event.kills, budget);
  if (kills > 0) {
    // One distinct-position draw replaces the serial driver's
    // draw-kill-draw interleaving, so the whole batch can retire through
    // the stable parallel compaction in one step.
    victims_.clear();
    for (std::uint64_t pos :
         rng_.sample_distinct(population_.live_count(), kills)) {
      victims_.push_back(population_.live()[pos]);
    }
    population_.kill_many(victims_, &par);
  }
  if (event.joins == 0) return;
  GOSSIP_REQUIRE(config_.topology.kind == TopologyKind::kNewscast ||
                     config_.topology.kind == TopologyKind::kComplete,
                 "joins need a dynamic overlay (newscast or complete)");
  estimates_.reserve(estimates_.size() +
                     static_cast<std::size_t>(event.joins) *
                         config_.instances);
  participant_.reserve(participant_.size() + event.joins);
  if (newscast_) newscast_->reserve_joins(event.joins);
  for (std::uint32_t j = 0; j < event.joins; ++j) {
    const NodeId contact = population_.sample_live(rng_);
    const NodeId fresh = population_.add();
    estimates_.insert(estimates_.end(), config_.instances, 0.0);
    participant_.push_back(0);  // §4.2: joiners sit out the epoch
    if (!values_.empty()) values_.push_back(0.0);
    byz_.push_back(config_.adversary.is_byzantine(fresh.value()) ? 1 : 0);
    if (newscast_) newscast_->add_node(fresh, contact, now);
  }
}

void IntraRepSimulation::pin_injected_values() {
  if (config_.adversary.behavior != AdversarySpec::Behavior::kValueInject) {
    return;
  }
  for (std::uint32_t u = 0; u < population_.total(); ++u) {
    if (byz_[u]) estimates_[u] = config_.adversary.value;
  }
}

void IntraRepSimulation::apply_restart() {
  // Mirrors CycleSimulation::apply_restart(): every node re-seeds from
  // its local value — the current one when drift maintains values_, the
  // run-start snapshot otherwise (joiners from their join default of 0) —
  // and every live node participates in the new epoch. Serial O(total) —
  // restarts are rare cycle-boundary events.
  GOSSIP_REQUIRE(!initial_.empty() || !values_.empty(),
                 "restart without a seed snapshot would zero every "
                 "estimate — the plan emitted a restart the driver never "
                 "prepared for");
  if (!values_.empty()) {
    std::copy(values_.begin(), values_.end(), estimates_.begin());
  } else {
    std::copy(initial_.begin(), initial_.end(), estimates_.begin());
    std::fill(
        estimates_.begin() + static_cast<std::ptrdiff_t>(initial_.size()),
        estimates_.end(), 0.0);
  }
  for (NodeId u : population_.live()) participant_[u.value()] = 1;
  pin_injected_values();
  flush_combine_windows();
}

void IntraRepSimulation::flush_combine_windows() {
  // Same boundary rule as CycleSimulation::flush_combine_windows():
  // robust-combine reports received before a restart or pipelined epoch
  // roll summarize dead-epoch estimates; drop contents and counters so
  // no stale report biases the first post-boundary estimates.
  if (wfill_.empty()) return;
  std::fill(window_.begin(), window_.end(), 0.0);
  std::fill(wfill_.begin(), wfill_.end(), 0);
  std::fill(wpos_.begin(), wpos_.end(), 0);
}

void IntraRepSimulation::apply_drift(std::uint32_t cycle,
                                     ParallelRunner& pool) {
  // Mass-preserving dynamic values, parallel over id-space shards. Each
  // node's delta comes from the shared drift_delta() — a pure function of
  // (stream_seed, cycle, node), so the result is bit-identical to the
  // serial driver's and to any shard × thread geometry.
  const unsigned shards = population_.shards();
  par_run(pool, shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    for (std::uint32_t u = lo; u < hi; ++u) {
      const NodeId p(u);
      if (!population_.alive_unchecked(p) || byz_[u]) continue;
      const double d =
          drift_delta(config_.drift, config_.stream_seed, cycle, u);
      if (d == 0.0) continue;
      values_[u] += d;
      if (participant_[u]) estimates_[u] += d;
    }
  });
}

void IntraRepSimulation::service_cycle(std::uint32_t cycle) {
  // Mirrors CycleSimulation::service_cycle(): publish the ending epoch's
  // converged mean at the boundary, re-seed the next epoch from the
  // current local values, keep serving queries from the store. Serial
  // O(total) only at epoch boundaries.
  const std::uint64_t ending = epoch_machine_->epoch();
  if (epoch_machine_->advance_cycle()) {
    store_.publish(0, cycle_stats_.back().mean(), ending, cycle + 1);
    std::copy(values_.begin(), values_.end(), estimates_.begin());
    for (NodeId u : population_.live()) participant_[u.value()] = 1;
    pin_injected_values();
    flush_combine_windows();
  }
  if (const auto ans = store_.query(0, cycle + 1)) {
    staleness_.push_back(ans->age_cycles);
    served_error_.push_back(std::abs(ans->value - true_mean_));
  }
}

template <typename SampleFn>
void IntraRepSimulation::propose(std::uint32_t cycle, std::uint64_t salt,
                                 bool draw_outcome, bool participants_only,
                                 ParallelRunner& pool, SampleFn&& sample) {
  const unsigned shards = population_.shards();
  par_run(pool, shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    for (std::uint32_t u = lo; u < hi; ++u) {
      const NodeId p(u);
      if (!population_.alive_unchecked(p)) continue;
      if (participants_only && !participating(p)) continue;
      Rng stream = node_stream(cycle, u, salt);
      // kCandidates proposals per node: the trailing ones are fallbacks
      // the match resolution turns to when an earlier choice is alive
      // but already claimed. Extra candidates sharply cut the nodes a
      // round leaves unmatched, and the matched fraction is what the
      // per-round convergence factor hinges on.
      NodeId* cand = &proposals_[static_cast<std::size_t>(u) * kCandidates];
      for (unsigned c = 0; c < kCandidates; ++c) {
        cand[c] = sample(p, stream);
      }
      if (draw_outcome && cand[0].is_valid()) {
        outcome_[u] = static_cast<std::uint8_t>(config_.comm.sample(stream));
      }
      // The reservation priority key (31 bits so packed priorities stay
      // clear of the free-cell sentinel). A fresh pseudorandom order per
      // (cycle, round) plays the role the serial driver's per-cycle
      // permutation plays: without it the same low-priority nodes find
      // every candidate claimed round after round — persistent
      // stragglers whose deviation dominates late-cycle variance.
      key_[u] = static_cast<std::uint32_t>(stream() >> 33);
    }
  });
}

void IntraRepSimulation::match(bool participants_only,
                               ParallelRunner& pool) {
  // Deterministic parallel matching via reservations: the committed pair
  // set equals what a serial greedy scan over nodes ordered by
  // (key, id) — taking each node's first candidate that is unmatched at
  // its turn, with the §4.2 break-on-dead rule — would produce, but no
  // phase is serial O(N). Each fixed-shape round is three barriers:
  //
  //   A (reserve): every still-active node drops out if it was claimed,
  //     advances its cursor past matched candidates (retiring when
  //     starved), then atomically min-reserves its own cell and every
  //     still-unmatched candidate cell with edge_priority(u, c). The
  //     reservation array therefore ends the pass holding, per cell, the
  //     globally smallest interested priority — a pure min-reduction,
  //     independent of shard boundaries and scheduling.
  //   B (commit): a node whose first-unmatched edge holds *both* its own
  //     cell and the candidate's cell commits the pair; the embedded
  //     node id makes priorities unique, so each cell has at most one
  //     winner and all commit writes are disjoint.
  //   C (reset): every touched cell returns to kFreeCell for the next
  //     round (its own barrier — resetting during commit would let a
  //     loser erase a winner's reservation mid-check).
  //
  // The globally smallest reserved edge always wins both its cells, so
  // every round resolves nodes and the loop terminates (in practice a
  // handful of rounds). Shards emptied by a mass crash are invisible:
  // state is keyed by node id, never by the decomposition.
  const unsigned shards = population_.shards();
  const std::uint32_t total = population_.total();

  if (reserve_size_ < total) {
    reserve_ = std::make_unique<std::atomic<std::uint64_t>[]>(total);
    reserve_size_ = total;
  }
  active_.resize(shards);
  touched_.resize(shards);

  // Init pass: per-node match state, candidate-list truncation (the
  // break conditions — invalid/self/dead/refusing — depend only on
  // state frozen for the whole match), and the per-shard active lists.
  par_run(pool, shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    auto& active = active_[s];
    active.clear();
    for (std::uint32_t u = lo; u < hi; ++u) {
      matched_[u] = 0;
      partner_[u] = NodeId::invalid();
      initiator_[u] = 0;
      cursor_[u] = 0;
      reserve_[u].store(kFreeCell, std::memory_order_relaxed);
      const NodeId p(u);
      if (!population_.alive_unchecked(p)) {
        ncand_[u] = 0;
        continue;
      }
      const bool proposer =
          !participants_only || participating(p);
      const NodeId* cand =
          &proposals_[static_cast<std::size_t>(u) * kCandidates];
      std::uint8_t n = 0;
      if (proposer) {
        for (; n < kCandidates; ++n) {
          const NodeId q = cand[n];
          // An invalid, self, crashed or refusing (non-participating)
          // candidate ends the attempt: the timeout / refusal already
          // cost p its round, exactly as in the serial driver's §4.2
          // semantics. Only an alive-but-claimed peer falls through to
          // the next view entry.
          if (!q.is_valid() || q == p || q.value() >= total) break;
          if (!population_.alive_unchecked(q)) break;
          if (participants_only && !participating(q)) break;
        }
      }
      ncand_[u] = n;
      if (n > 0) active.push_back(u);
    }
  });

  std::size_t remaining = 0;
  for (const auto& active : active_) remaining += active.size();

  while (remaining > 0) {
    // Pass A: advance cursors, compact the active lists, reserve.
    par_run(pool, shards, [&](std::size_t s) {
      auto& active = active_[s];
      auto& touched = touched_[s];
      std::size_t w = 0;
      for (const std::uint32_t u : active) {
        if (matched_[u]) continue;  // claimed in an earlier round
        const NodeId* cand =
            &proposals_[static_cast<std::size_t>(u) * kCandidates];
        std::uint8_t c = cursor_[u];
        while (c < ncand_[u] && matched_[cand[c].value()]) ++c;
        cursor_[u] = c;
        if (c == ncand_[u]) continue;  // starved — every candidate taken
        active[w++] = u;
        touched.push_back(u);
        atomic_min(reserve_[u], edge_priority(u, c));
        for (std::uint8_t k = c; k < ncand_[u]; ++k) {
          const std::uint32_t q = cand[k].value();
          if (matched_[q]) continue;
          atomic_min(reserve_[q], edge_priority(u, k));
          touched.push_back(q);
        }
      }
      active.resize(w);
    });

    // Pass B: commit edges that hold both reservations.
    par_run(pool, shards, [&](std::size_t s) {
      auto& active = active_[s];
      std::size_t w = 0;
      for (const std::uint32_t u : active) {
        const std::uint8_t c = cursor_[u];
        const std::uint32_t q =
            proposals_[static_cast<std::size_t>(u) * kCandidates + c]
                .value();
        const std::uint64_t pri = edge_priority(u, c);
        if (reserve_[u].load(std::memory_order_relaxed) == pri &&
            reserve_[q].load(std::memory_order_relaxed) == pri) {
          matched_[u] = 1;
          matched_[q] = 1;
          partner_[u] = NodeId(q);
          partner_[q] = NodeId(u);
          initiator_[u] = 1;
        } else {
          active[w++] = u;  // retry next round
        }
      }
      active.resize(w);
    });

    // Pass C: clear every reservation this round touched.
    par_run(pool, shards, [&](std::size_t s) {
      for (const std::uint32_t idx : touched_[s]) {
        reserve_[idx].store(kFreeCell, std::memory_order_relaxed);
      }
      touched_[s].clear();
    });

    remaining = 0;
    for (const auto& active : active_) remaining += active.size();
  }

  collect_pairs(pool);
}

void IntraRepSimulation::collect_pairs(ParallelRunner& pool) {
  // Gather the committed pairs in global initiator-id order: per-shard
  // counts, an O(shards) exclusive prefix, then a parallel scatter — the
  // resulting pairs_ content (and order) is a pure function of the
  // matching, not of the decomposition.
  const unsigned shards = population_.shards();
  pair_offsets_.assign(shards + 1, 0);
  par_run(pool, shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    std::size_t count = 0;
    for (std::uint32_t u = lo; u < hi; ++u) count += initiator_[u];
    pair_offsets_[s + 1] = count;
  });
  for (unsigned s = 0; s < shards; ++s) {
    pair_offsets_[s + 1] += pair_offsets_[s];
  }
  pairs_.resize(pair_offsets_[shards]);
  par_run(pool, shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    std::size_t w = pair_offsets_[s];
    for (std::uint32_t u = lo; u < hi; ++u) {
      if (initiator_[u]) pairs_[w++] = {NodeId(u), partner_[u]};
    }
  });
}

void IntraRepSimulation::newscast_round(std::uint32_t cycle,
                                        std::uint32_t round,
                                        std::uint64_t now,
                                        ParallelRunner& pool) {
  // One matched membership sub-round (all rounds of a cycle share the
  // same logical time, so descriptor aging stays per-cycle). A single
  // matching gives every node at most one cache merge per cycle — far
  // less view mixing than the serial run_cycle, where a node serves
  // several initiators — and under-mixed caches leave the aggregation
  // rounds drawing correlated partners: without a membership round per
  // aggregation round, extra aggregation rounds stop paying on NEWSCAST
  // (the factor stalls near 0.48 instead of compounding).
  // The round multiplier must differ from node_stream's cycle and node
  // multipliers — reusing one would let (cycle, round) pairs collide to
  // the same per-node stream (e.g. cycle 0 round 3 vs cycle 2 round 1);
  // the stream-salt registry static_asserts that distinctness.
  const std::uint64_t salt = salt::newscast_round_salt(round);
  propose(cycle, salt, /*draw_outcome=*/false,
          /*participants_only=*/false, pool,
          [this](NodeId p, Rng& rng) {
            return newscast_->sample_view(p, rng);
          });
  match(/*participants_only=*/false, pool);
  // Pairs are disjoint, so chunked application with per-chunk merge
  // buffers writes disjoint cache slots — race-free without locks, and
  // chunk boundaries cannot influence any merge result. Because of that
  // invariance the chunk count follows the *worker* count, not the shard
  // count: each MergeBuffers carries two O(total-ids) mark arrays, and
  // sizing them by GOSSIP_SHARDS (up to 4096) would be pure memory waste
  // when only pool.threads() jobs ever run at once.
  const std::size_t chunks =
      std::min<std::size_t>(population_.shards(),
                            std::max(1u, pool.threads()));
  if (merge_buffers_.size() < chunks) merge_buffers_.resize(chunks);
  const std::size_t count = pairs_.size();
  const bool pollute =
      config_.adversary.enabled() &&
      config_.adversary.behavior == AdversarySpec::Behavior::kCachePollute;
  par_run(pool, chunks, [&](std::size_t s) {
    auto& buffers = merge_buffers_[s];
    const std::size_t lo = count * s / chunks;
    const std::size_t hi = count * (s + 1) / chunks;
    // Same software pipeline as the serial driver's run_cycle: the
    // N≥10⁴ entry pool misses cache on both slots of every exchange, so
    // the next pair's slots are prefetched while the current pair
    // merges. Purely a latency hint — merge order is unchanged.
    if (lo < hi) {
      newscast_->prefetch_slots(pairs_[lo].first, pairs_[lo].second);
    }
    for (std::size_t k = lo; k < hi; ++k) {
      if (k + 1 < hi) {
        newscast_->prefetch_slots(pairs_[k + 1].first, pairs_[k + 1].second);
      }
      const auto [a, b] = pairs_[k];
      if (pollute && (byz_[a.value()] || byz_[b.value()])) {
        // A polluting side advertises only itself (exchange_partial
        // touches just this pair's slots, so chunking stays race-free).
        newscast_->exchange_partial(buffers, a, b, now, byz_[a.value()] == 0,
                                    byz_[b.value()] == 0);
      } else {
        newscast_->exchange(buffers, a, b, now);
      }
    }
  });
}

void IntraRepSimulation::apply_pairs(std::uint32_t cycle,
                                     ParallelRunner& pool) {
  const unsigned shards = population_.shards();
  const std::size_t count = pairs_.size();
  const core::UpdateKind kind = config_.update;
  const std::uint32_t t = config_.instances;
  const bool partitioned = config_.partition.active(cycle);
  if (general_ && config_.combine.robust()) {
    const std::uint32_t total = population_.total();
    window_.resize(static_cast<std::size_t>(total) * config_.combine.window,
                   0.0);
    wfill_.resize(total, 0);
    wpos_.resize(total, 0);
  }
  if (general_) {
    combine_scratch_.resize(shards);
    combine_means_.resize(shards);
  }
  par_run(pool, shards, [&](std::size_t s) {
    const std::size_t lo = count * s / shards;
    const std::size_t hi = count * (s + 1) / shards;
    // One-pair-ahead prefetch of both estimate rows (and the outcome
    // byte), mirroring the apply pipeline of the serial driver: the
    // updates themselves are two dependent random rows per pair, which
    // is exactly the latency-bound pattern at N ≥ 10⁴.
    const auto prefetch_pair = [&](std::size_t k) {
      const auto [p, q] = pairs_[k];
      __builtin_prefetch(&estimates_[static_cast<std::size_t>(p.value()) * t],
                         /*rw=*/1, /*locality=*/1);
      __builtin_prefetch(&estimates_[static_cast<std::size_t>(q.value()) * t],
                         /*rw=*/1, /*locality=*/1);
      __builtin_prefetch(&outcome_[p.value()], /*rw=*/0, /*locality=*/1);
    };
    if (lo < hi) prefetch_pair(lo);
    for (std::size_t k = lo; k < hi; ++k) {
      if (k + 1 < hi) prefetch_pair(k + 1);
      const auto [p, q] = pairs_[k];
      // Component-scoped drop: a matched pair straddling the partition
      // dies like link failure (outcomes are pre-drawn, so this pure
      // filter perturbs no random stream).
      if (partitioned && config_.partition.component_of(p.value()) !=
                             config_.partition.component_of(q.value())) {
        continue;
      }
      double* ep = &estimates_[static_cast<std::size_t>(p.value()) * t];
      double* eq = &estimates_[static_cast<std::size_t>(q.value()) * t];
      const auto outcome =
          static_cast<failure::ExchangeOutcome>(outcome_[p.value()]);
      if (outcome == failure::ExchangeOutcome::kLinkDown ||
          outcome == failure::ExchangeOutcome::kRequestLost) {
        continue;  // the pair's exchange silently never happened
      }
      if (!general_) {  // the exact paper path, untouched
        if (outcome == failure::ExchangeOutcome::kCompleted) {
          for (std::uint32_t i = 0; i < t; ++i) {
            const double u = core::apply_update(kind, ep[i], eq[i]);
            ep[i] = u;
            eq[i] = u;
          }
        } else {  // kResponseLost: passive peer updated, initiator not
          for (std::uint32_t i = 0; i < t; ++i) {
            eq[i] = core::apply_update(kind, ep[i], eq[i]);
          }
        }
        continue;
      }
      // General path (instances == 1): capture both reports, then each
      // side combines what it received. Pairs are disjoint, so the
      // window/estimate writes are race-free; the per-node result depends
      // only on the pair itself — shard/thread-invariant.
      const double rp = ep[0];
      const double rq = eq[0];
      const auto receive = [&](std::uint32_t u, double* slot,
                               double report) {
        if (byz_[u]) {
          if (config_.adversary.behavior ==
              AdversarySpec::Behavior::kAlwaysMax) {
            slot[0] = core::apply_update(core::UpdateKind::kMax, slot[0],
                                         report);
          }
          return;  // value_inject keeps its pinned outlier
        }
        if (!config_.combine.robust()) {
          slot[0] = core::apply_update(kind, slot[0], report);
          return;
        }
        slot[0] = robust_combine_receive(config_.combine, u, slot[0],
                                         report, window_, wfill_.data(),
                                         wpos_.data(), combine_scratch_[s],
                                         combine_means_[s]);
      };
      if (outcome == failure::ExchangeOutcome::kCompleted) {
        receive(p.value(), ep, rq);
        receive(q.value(), eq, rp);
      } else {  // kResponseLost
        receive(q.value(), eq, rp);
      }
    }
  });
}

void IntraRepSimulation::aggregation_round(std::uint32_t cycle,
                                           std::uint32_t round,
                                           ParallelRunner& pool) {
  // One independent propose/match/apply round: fresh proposals
  // (round-salted streams) resolve into a disjoint matching, applied
  // before the next round samples — so round r+1 mixes the values round
  // r produced.
  const std::uint64_t salt = salt::agg_round_salt(round);
  switch (config_.topology.kind) {
    case TopologyKind::kComplete:
      propose(cycle, salt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                return population_.sample_live_other(p, rng);
              });
      break;
    case TopologyKind::kNewscast:
      propose(cycle, salt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                return newscast_->sample_view(p, rng);
              });
      break;
    default:
      propose(cycle, salt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                const auto ns = graph_.neighbors(p);
                if (ns.empty()) return NodeId::invalid();
                return ns[rng.below(ns.size())];
              });
      break;
  }
  match(/*participants_only=*/true, pool);
  apply_pairs(cycle, pool);
}

void IntraRepSimulation::record_stats(ParallelRunner& pool) {
  // Parallel per-segment pass over the *fixed* kStatsSegments id-space
  // decomposition (never the shard count — Chan merges are not
  // associative in floating point, so the partial shapes must be
  // constant), folded per lane through stats::merge_tree's fixed-shape
  // reduction. Every instance lane is recorded: multi-instance runs
  // (figs. 6/8) carry one variance trajectory per concurrent aggregate.
  const std::uint32_t t = config_.instances;
  const std::uint32_t total = population_.total();
  const bool track_values = !values_.empty();
  // Allocate once, clear inside the parallel pass: the old per-cycle
  // `assign` serially re-zeroed kStatsSegments × t entries — at t = 10⁴
  // lanes that is ~25 MB of single-threaded memset per cycle, which
  // dominated the whole stats phase.
  const std::size_t want = static_cast<std::size_t>(kStatsSegments) * t;
  if (seg_stats_.size() != want) seg_stats_.resize(want);
  if (track_values && val_seg_stats_.size() != kStatsSegments) {
    val_seg_stats_.resize(kStatsSegments);
  }
  par_run(pool, kStatsSegments, [&](std::size_t s) {
    const std::uint32_t lo = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(total) * s / kStatsSegments);
    const std::uint32_t hi = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(total) * (s + 1) / kStatsSegments);
    stats::RunningStats* seg = &seg_stats_[s * t];
    std::fill_n(seg, t, stats::RunningStats{});
    for (std::uint32_t u = lo; u < hi; ++u) {
      const NodeId p(u);
      if (!population_.alive_unchecked(p) || !counted(p)) continue;
      const double* e = &estimates_[static_cast<std::size_t>(u) * t];
      for (std::uint32_t i = 0; i < t; ++i) seg[i].add(e[i]);
    }
    if (track_values) {
      // Second fold input: the underlying values over the same counted
      // population — same fixed segments, same merge_tree shape, so the
      // true mean is shard/thread-invariant like every other statistic.
      stats::RunningStats vs;
      for (std::uint32_t u = lo; u < hi; ++u) {
        const NodeId p(u);
        if (!population_.alive_unchecked(p) || !counted(p)) continue;
        vs.add(values_[u]);
      }
      val_seg_stats_[s] = vs;
    }
  });
  lane_scratch_.resize(kStatsSegments);
  std::vector<stats::RunningStats> lanes(t);
  for (std::uint32_t i = 0; i < t; ++i) {
    for (std::uint32_t s = 0; s < kStatsSegments; ++s) {
      lane_scratch_[s] = seg_stats_[static_cast<std::size_t>(s) * t + i];
    }
    lanes[i] = stats::merge_tree(lane_scratch_);
  }
  cycle_stats_.push_back(lanes[0]);
  if (track_values) {
    true_mean_ = stats::merge_tree(val_seg_stats_).mean();
    tracking_error_.push_back(std::abs(lanes[0].mean() - true_mean_));
  }
  instance_stats_.push_back(std::move(lanes));
}

void IntraRepSimulation::run(const failure::FailurePlan& plan,
                             ParallelRunner& pool) {
  GOSSIP_REQUIRE(initialized_, "initialize values before running");
  GOSSIP_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  const auto run_start = std::chrono::steady_clock::now();
  pin_injected_values();
  if (config_.epoch_restarts) initial_ = estimates_;
  if (config_.drift.enabled() || config_.service.enabled()) {
    values_ = estimates_;  // v_u starts where the estimate starts
  }
  record_stats(pool);  // σ²_0
  for (std::uint32_t cycle = 0; cycle < config_.cycles; ++cycle) {
    const auto event =
        plan.before_cycle(cycle, population_.live_count());
    apply_failures(event, cycle + 1, pool);
    if (event.restart) apply_restart();
    if (config_.drift.enabled()) apply_drift(cycle, pool);
    const std::uint32_t total = population_.total();
    GOSSIP_REQUIRE(total < kMaxNodes,
                   "intra-rep match priorities pack node ids into 30 bits");
    proposals_.resize(static_cast<std::size_t>(total) * kCandidates,
                      NodeId::invalid());
    outcome_.resize(total, 0);
    key_.resize(total, 0);
    matched_.resize(total, 0);
    partner_.resize(total, NodeId::invalid());
    initiator_.resize(total, 0);
    ncand_.resize(total, 0);
    cursor_.resize(total, 0);
    // Matched sub-rounds: `match_rounds` membership rounds (NEWSCAST
    // needs the extra view mixing — a single matching merges each cache
    // at most once per cycle, and under-mixed views leave aggregation
    // partners correlated across rounds), then `match_rounds`
    // aggregation rounds, each applied before the next draws.
    for (std::uint32_t round = 0; round < config_.match_rounds; ++round) {
      if (newscast_) newscast_round(cycle, round, cycle + 1, pool);
    }
    for (std::uint32_t round = 0; round < config_.match_rounds; ++round) {
      aggregation_round(cycle, round, pool);
    }
    record_stats(pool);
    if (config_.service.enabled()) service_cycle(cycle);
  }
  if (profile_ != nullptr) {
    profile_->total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
  }
}

double IntraRepSimulation::estimate(NodeId node,
                                    std::uint32_t instance) const {
  GOSSIP_REQUIRE(node.is_valid() && node.value() < population_.total(),
                 "estimate() node out of range");
  GOSSIP_REQUIRE(instance < config_.instances,
                 "estimate() instance out of range");
  return estimates_[static_cast<std::size_t>(node.value()) *
                        config_.instances +
                    instance];
}

std::vector<double> IntraRepSimulation::scalar_estimates() const {
  std::vector<double> out;
  out.reserve(population_.live_count());
  for (NodeId u : population_.live()) {
    if (counted(u)) out.push_back(estimate(u, 0));
  }
  return out;
}

std::vector<double> IntraRepSimulation::size_estimates() const {
  const std::uint32_t t = config_.instances;
  std::vector<double> out;
  std::vector<double> scratch;
  for (NodeId u : population_.live()) {
    if (!participating(u)) continue;
    out.push_back(robust_size_estimate(
        &estimates_[static_cast<std::size_t>(u.value()) * t], t, scratch));
  }
  return out;
}

stats::ConvergenceTracker IntraRepSimulation::tracker() const {
  stats::ConvergenceTracker t;
  for (const auto& rs : cycle_stats_) t.record(rs.variance());
  return t;
}

}  // namespace gossip::experiment
