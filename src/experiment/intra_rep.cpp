#include "experiment/intra_rep.hpp"

#include <algorithm>

#include "core/update.hpp"
#include "experiment/parallel_runner.hpp"
#include "overlay/generators.hpp"

namespace gossip::experiment {

namespace {
// Phase salts keeping the newscast and aggregation draws of one (cycle,
// node) on independent streams.
constexpr std::uint64_t kNewscastSalt = 0x6e65777363617374ULL;  // "newscast"
constexpr std::uint64_t kAggSalt = 0x6167677265676174ULL;        // "aggregat"
}  // namespace

IntraRepSimulation::IntraRepSimulation(const SimConfig& config,
                                       std::uint64_t seed, unsigned shards)
    : config_(config),
      seed_(seed),
      rng_(seed),
      population_(config.nodes, shards) {
  GOSSIP_REQUIRE(config.nodes >= 2, "simulation needs at least two nodes");
  GOSSIP_REQUIRE(config.instances == 1,
                 "intra-rep mode supports scalar workloads only");
  estimates_.assign(config.nodes, 0.0);
  participant_.assign(config.nodes, 1);
  build_topology();
}

void IntraRepSimulation::build_topology() {
  const auto& topo = config_.topology;
  switch (topo.kind) {
    case TopologyKind::kComplete:
      break;  // sampled straight off the live set
    case TopologyKind::kRandomKOut:
      graph_ = overlay::random_k_out(config_.nodes, topo.degree, rng_);
      break;
    case TopologyKind::kRingLattice:
      graph_ = overlay::ring_lattice(config_.nodes, topo.degree);
      break;
    case TopologyKind::kWattsStrogatz:
      graph_ = overlay::watts_strogatz(config_.nodes, topo.degree, topo.beta,
                                       rng_);
      break;
    case TopologyKind::kBarabasiAlbert:
      graph_ = overlay::barabasi_albert(config_.nodes, topo.degree / 2, rng_);
      break;
    case TopologyKind::kNewscast:
      newscast_ =
          std::make_unique<membership::NewscastNetwork>(topo.cache_size);
      newscast_->bootstrap_random(config_.nodes, 0, rng_);
      break;
  }
}

void IntraRepSimulation::init_scalar(
    const std::function<double(NodeId)>& value_of) {
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    estimates_[u] = value_of(NodeId(u));
  }
  initialized_ = true;
}

void IntraRepSimulation::init_peak(double peak, std::uint32_t peak_holder) {
  GOSSIP_REQUIRE(peak_holder < config_.nodes, "peak holder out of range");
  init_scalar([peak, peak_holder](NodeId id) {
    return id.value() == peak_holder ? peak : 0.0;
  });
}

void IntraRepSimulation::apply_failures(const failure::CycleEvent& event,
                                        std::uint64_t now,
                                        ParallelRunner& pool) {
  GOSSIP_REQUIRE(event.kills < population_.live_count(),
                 "failure plan would kill the whole network");
  if (event.kills > 0) {
    // One distinct-position draw replaces the serial driver's
    // draw-kill-draw interleaving, so the whole batch can retire through
    // the stable parallel compaction in one step.
    victims_.clear();
    for (std::uint64_t pos :
         rng_.sample_distinct(population_.live_count(), event.kills)) {
      victims_.push_back(population_.live()[pos]);
    }
    const overlay::ParallelFor par =
        [&pool](std::size_t count,
                const std::function<void(std::size_t)>& job) {
          pool.run(count, job);
        };
    population_.kill_many(victims_, &par);
  }
  if (event.joins == 0) return;
  GOSSIP_REQUIRE(config_.topology.kind == TopologyKind::kNewscast ||
                     config_.topology.kind == TopologyKind::kComplete,
                 "joins need a dynamic overlay (newscast or complete)");
  estimates_.reserve(estimates_.size() + event.joins);
  participant_.reserve(participant_.size() + event.joins);
  if (newscast_) newscast_->reserve_joins(event.joins);
  for (std::uint32_t j = 0; j < event.joins; ++j) {
    const NodeId contact = population_.sample_live(rng_);
    const NodeId fresh = population_.add();
    estimates_.push_back(0.0);
    participant_.push_back(0);  // §4.2: joiners sit out the epoch
    if (newscast_) newscast_->add_node(fresh, contact, now);
  }
}

template <typename SampleFn>
void IntraRepSimulation::propose(std::uint32_t cycle, std::uint64_t salt,
                                 bool draw_outcome, bool participants_only,
                                 ParallelRunner& pool, SampleFn&& sample) {
  const unsigned shards = population_.shards();
  pool.run(shards, [&](std::size_t s) {
    const auto [lo, hi] = population_.id_range(static_cast<unsigned>(s));
    for (std::uint32_t u = lo; u < hi; ++u) {
      const NodeId p(u);
      if (!population_.alive_unchecked(p)) continue;
      if (participants_only && !participating(p)) continue;
      Rng stream = node_stream(cycle, u, salt);
      const NodeId q = sample(p, stream);
      proposal_[u] = q;
      if (draw_outcome && q.is_valid()) {
        outcome_[u] = static_cast<std::uint8_t>(config_.comm.sample(stream));
      }
    }
  });
}

void IntraRepSimulation::match(bool participants_only) {
  // Serial greedy scan in id order: cheap (two array reads per id), and
  // the one place where a deterministic global order is required — the
  // pair set must not depend on shard boundaries.
  std::fill(matched_.begin(), matched_.end(), 0);
  pairs_.clear();
  const std::uint32_t total = population_.total();
  for (std::uint32_t u = 0; u < total; ++u) {
    const NodeId p(u);
    if (!population_.alive_unchecked(p)) continue;
    if (participants_only && !participating(p)) continue;
    const NodeId q = proposal_[u];
    if (!q.is_valid() || q == p) continue;
    if (q.value() >= total || !population_.alive_unchecked(q)) {
      continue;  // timeout: crashed peer never answers (§4.2)
    }
    if (participants_only && !participating(q)) continue;
    if (matched_[u] || matched_[q.value()]) continue;
    matched_[u] = 1;
    matched_[q.value()] = 1;
    pairs_.emplace_back(p, q);
  }
}

void IntraRepSimulation::newscast_cycle(std::uint32_t cycle,
                                        std::uint64_t now,
                                        ParallelRunner& pool) {
  propose(cycle, kNewscastSalt, /*draw_outcome=*/false,
          /*participants_only=*/false, pool,
          [this](NodeId p, Rng& rng) {
            return newscast_->sample_view(p, rng);
          });
  match(/*participants_only=*/false);
  // Pairs are disjoint, so chunked application with per-chunk merge
  // buffers writes disjoint cache slots — race-free without locks, and
  // chunk boundaries cannot influence any merge result. Because of that
  // invariance the chunk count follows the *worker* count, not the shard
  // count: each MergeBuffers carries two O(total-ids) mark arrays, and
  // sizing them by GOSSIP_SHARDS (up to 4096) would be pure memory waste
  // when only pool.threads() jobs ever run at once.
  const std::size_t chunks =
      std::min<std::size_t>(population_.shards(),
                            std::max(1u, pool.threads()));
  if (merge_buffers_.size() < chunks) merge_buffers_.resize(chunks);
  const std::size_t count = pairs_.size();
  pool.run(chunks, [&](std::size_t s) {
    auto& buffers = merge_buffers_[s];
    const std::size_t lo = count * s / chunks;
    const std::size_t hi = count * (s + 1) / chunks;
    for (std::size_t k = lo; k < hi; ++k) {
      newscast_->exchange(buffers, pairs_[k].first, pairs_[k].second, now);
    }
  });
}

void IntraRepSimulation::aggregation_cycle(std::uint32_t cycle,
                                           ParallelRunner& pool) {
  switch (config_.topology.kind) {
    case TopologyKind::kComplete:
      propose(cycle, kAggSalt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                return population_.sample_live_other(p, rng);
              });
      break;
    case TopologyKind::kNewscast:
      propose(cycle, kAggSalt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                return newscast_->sample_view(p, rng);
              });
      break;
    default:
      propose(cycle, kAggSalt, /*draw_outcome=*/true,
              /*participants_only=*/true, pool, [this](NodeId p, Rng& rng) {
                const auto ns = graph_.neighbors(p);
                if (ns.empty()) return NodeId::invalid();
                return ns[rng.below(ns.size())];
              });
      break;
  }
  match(/*participants_only=*/true);
  const unsigned shards = population_.shards();
  const std::size_t count = pairs_.size();
  const core::UpdateKind kind = config_.update;
  pool.run(shards, [&](std::size_t s) {
    const std::size_t lo = count * s / shards;
    const std::size_t hi = count * (s + 1) / shards;
    for (std::size_t k = lo; k < hi; ++k) {
      const auto [p, q] = pairs_[k];
      double& ep = estimates_[p.value()];
      double& eq = estimates_[q.value()];
      const auto outcome =
          static_cast<failure::ExchangeOutcome>(outcome_[p.value()]);
      if (outcome == failure::ExchangeOutcome::kLinkDown ||
          outcome == failure::ExchangeOutcome::kRequestLost) {
        continue;  // the pair's exchange silently never happened
      }
      if (outcome == failure::ExchangeOutcome::kCompleted) {
        const double u = core::apply_update(kind, ep, eq);
        ep = u;
        eq = u;
      } else {  // kResponseLost: passive peer updated, initiator not
        eq = core::apply_update(kind, ep, eq);
      }
    }
  });
}

void IntraRepSimulation::record_stats() {
  stats::RunningStats rs;
  for (NodeId u : population_.live()) {
    if (participating(u)) rs.add(estimates_[u.value()]);
  }
  cycle_stats_.push_back(rs);
}

void IntraRepSimulation::run(const failure::FailurePlan& plan,
                             ParallelRunner& pool) {
  GOSSIP_REQUIRE(initialized_, "initialize values before running");
  GOSSIP_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  record_stats();  // σ²_0
  for (std::uint32_t cycle = 0; cycle < config_.cycles; ++cycle) {
    apply_failures(plan.before_cycle(cycle, population_.live_count()),
                   cycle + 1, pool);
    const std::uint32_t total = population_.total();
    proposal_.resize(total, NodeId::invalid());
    outcome_.resize(total, 0);
    matched_.resize(total, 0);
    if (newscast_) newscast_cycle(cycle, cycle + 1, pool);
    aggregation_cycle(cycle, pool);
    record_stats();
  }
}

double IntraRepSimulation::estimate(NodeId node) const {
  GOSSIP_REQUIRE(node.is_valid() && node.value() < population_.total(),
                 "estimate() node out of range");
  return estimates_[node.value()];
}

std::vector<double> IntraRepSimulation::scalar_estimates() const {
  std::vector<double> out;
  out.reserve(population_.live_count());
  for (NodeId u : population_.live()) {
    if (participating(u)) out.push_back(estimates_[u.value()]);
  }
  return out;
}

stats::ConvergenceTracker IntraRepSimulation::tracker() const {
  stats::ConvergenceTracker t;
  for (const auto& rs : cycle_stats_) t.record(rs.variance());
  return t;
}

}  // namespace gossip::experiment
