#include "experiment/push_sum.hpp"

#include <type_traits>

#include "overlay/generators.hpp"

namespace gossip::experiment {

PushSumSimulation::PushSumSimulation(const PushSumConfig& config, Rng rng)
    : config_(config), rng_(rng), population_(config.nodes) {
  GOSSIP_REQUIRE(config.nodes >= 2, "push-sum needs at least two nodes");
  GOSSIP_REQUIRE(
      config.p_message_loss >= 0.0 && config.p_message_loss <= 1.0,
      "loss must be a probability");
  sums_.assign(config.nodes, 0.0);
  weights_.assign(config.nodes, 1.0);
  const auto& topo = config_.topology;
  switch (topo.kind) {
    case TopologyKind::kComplete:
      sampler_.emplace<overlay::CompletePeerSampler>(population_);
      break;
    case TopologyKind::kRandomKOut:
      graph_ = overlay::random_k_out(config_.nodes, topo.degree, rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kRingLattice:
      graph_ = overlay::ring_lattice(config_.nodes, topo.degree);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kWattsStrogatz:
      graph_ = overlay::watts_strogatz(config_.nodes, topo.degree, topo.beta,
                                       rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kBarabasiAlbert:
      graph_ = overlay::barabasi_albert(config_.nodes, topo.degree / 2, rng_);
      sampler_.emplace<overlay::GraphPeerSampler>(graph_);
      break;
    case TopologyKind::kNewscast:
      newscast_ =
          std::make_unique<membership::NewscastNetwork>(topo.cache_size);
      newscast_->bootstrap_random(config_.nodes, 0, rng_);
      sampler_.emplace<membership::NewscastPeerSampler>(*newscast_);
      break;
  }
}

void PushSumSimulation::init_scalar(
    const std::function<double(NodeId)>& value_of) {
  GOSSIP_REQUIRE(!ran_, "cannot re-initialize a finished run");
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    sums_[u] = value_of(NodeId(u));
    weights_[u] = 1.0;
  }
  initialized_ = true;
}

void PushSumSimulation::run() {
  GOSSIP_REQUIRE(initialized_, "initialize values before running");
  GOSSIP_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  record_stats();
  std::vector<double> next_sums(sums_.size());
  std::vector<double> next_weights(weights_.size());
  for (std::uint32_t cycle = 0; cycle < config_.cycles; ++cycle) {
    if (newscast_) newscast_->run_cycle(population_, cycle + 1, rng_);
    std::fill(next_sums.begin(), next_sums.end(), 0.0);
    std::fill(next_weights.begin(), next_weights.end(), 0.0);
    // One variant visit per round, same devirtualized dispatch as the
    // push–pull driver.
    std::visit(
        [&](auto& sampler) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(sampler)>,
                                        std::monostate>) {
            push_round(sampler, next_sums, next_weights);
          }
        },
        sampler_);
    sums_.swap(next_sums);
    weights_.swap(next_weights);
    record_stats();
  }
}

template <typename Sampler>
void PushSumSimulation::push_round(Sampler& sampler,
                                   std::vector<double>& next_sums,
                                   std::vector<double>& next_weights) {
  // Synchronous round (Kempe et al.): every node halves its pair,
  // keeps one half, pushes the other to a uniform peer.
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    const double half_s = sums_[u] / 2.0;
    const double half_w = weights_[u] / 2.0;
    next_sums[u] += half_s;
    next_weights[u] += half_w;
    const NodeId target = sampler.sample(NodeId(u), rng_);
    if (!target.is_valid()) continue;  // isolated: keeps only its half
    if (config_.p_message_loss > 0.0 &&
        rng_.chance(config_.p_message_loss)) {
      continue;  // the pushed half is simply gone — mass destroyed
    }
    next_sums[target.value()] += half_s;
    next_weights[target.value()] += half_w;
  }
}

std::vector<double> PushSumSimulation::estimates() const {
  std::vector<double> out;
  out.reserve(sums_.size());
  for (std::size_t u = 0; u < sums_.size(); ++u) {
    if (weights_[u] > 0.0) out.push_back(sums_[u] / weights_[u]);
  }
  return out;
}

double PushSumSimulation::total_sum() const {
  double total = 0.0;
  for (double s : sums_) total += s;
  return total;
}

double PushSumSimulation::total_weight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

void PushSumSimulation::record_stats() {
  stats::RunningStats rs;
  for (std::size_t u = 0; u < sums_.size(); ++u) {
    if (weights_[u] > 0.0) rs.add(sums_[u] / weights_[u]);
  }
  cycle_stats_.push_back(rs);
}

stats::ConvergenceTracker PushSumSimulation::tracker() const {
  stats::ConvergenceTracker t;
  for (const auto& rs : cycle_stats_) t.record(rs.variance());
  return t;
}

}  // namespace gossip::experiment
