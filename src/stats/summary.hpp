// Batch summaries of a finished sample: order statistics and the robust
// trimmed mean used by the paper's multi-instance COUNT (§7.3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gossip::stats {

/// Summary of a sample computed in one call (copies + sorts internally).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Summarizes `values`; an empty span yields an all-zero Summary.
Summary summarize(std::span<const double> values);

/// Linear-interpolation percentile, p in [0,1]. Requires non-empty input.
double percentile(std::span<const double> values, double p);

/// The paper's robust combiner (§7.3): sort the t estimates, drop the
/// ⌊t/3⌋ lowest and ⌊t/3⌋ highest, average the rest. With fewer than three
/// values nothing is dropped.
double trimmed_mean_third(std::span<const double> values);

/// General trimmed mean dropping `trim` values from each side.
double trimmed_mean(std::span<const double> values, std::size_t trim);

}  // namespace gossip::stats
