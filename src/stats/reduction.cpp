#include "stats/reduction.hpp"

namespace gossip::stats {

RunningStats merge_tree(std::span<RunningStats> parts) {
  if (parts.empty()) return {};
  for (std::size_t stride = 1; stride < parts.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < parts.size(); i += 2 * stride) {
      parts[i].merge(parts[i + stride]);
    }
  }
  return parts[0];
}

}  // namespace gossip::stats
