// Fixed-shape parallel-reduction helpers for summary statistics.
//
// A sharded statistics pass (one RunningStats per segment of the node id
// space) must fold its partials into one summary *without* letting the
// fold order depend on how many worker threads or shards executed the
// pass — Chan's merge is not associative in floating point, so "merge in
// whatever order partials arrive" would break the bit-identical
// determinism contract. merge_tree() therefore folds a partial array
// through a fixed-shape binary tree whose structure depends only on the
// partial COUNT (stride doubling: (0,1)(2,3)… then (0,2)(4,6)…), which
// callers keep constant (e.g. IntraRepSimulation's kStatsSegments) so
// the result is a pure function of the partials.
#pragma once

#include <span>

#include "stats/running_stats.hpp"

namespace gossip::stats {

/// Folds `parts` pairwise in place (stride doubling) and returns the
/// root of the reduction tree; an empty span yields empty stats. The
/// tree shape — and therefore the exact float result — depends only on
/// parts.size().
RunningStats merge_tree(std::span<RunningStats> parts);

}  // namespace gossip::stats
