#include "stats/running_stats.hpp"

#include <cmath>

namespace gossip::stats {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace gossip::stats
