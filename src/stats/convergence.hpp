// Convergence bookkeeping for aggregation runs.
//
// The paper measures the protocol through the empirical variance of the
// node estimates at the end of each cycle: the per-cycle convergence factor
// ρ_i = σ²_i / σ²_{i-1} (expected ≈ 1/(2√e) on random overlays), the
// geometric-mean factor over a window (fig. 3a, 4a, 4b, 7a), and the
// normalized variance-reduction series σ²_i/σ²_0 (fig. 3b).
#pragma once

#include <cstddef>
#include <vector>

namespace gossip::stats {

/// Records the estimate variance after every cycle and derives the paper's
/// convergence metrics. Cycle 0 is the initial (pre-exchange) variance.
class ConvergenceTracker {
public:
  /// Appends the variance observed at the end of the next cycle.
  void record(double variance) { variances_.push_back(variance); }

  [[nodiscard]] std::size_t cycles() const {
    return variances_.empty() ? 0 : variances_.size() - 1;
  }
  [[nodiscard]] const std::vector<double>& variances() const {
    return variances_;
  }

  /// σ²_i / σ²_{i-1}; returns 1 when the denominator has already hit zero
  /// (converged to machine precision).
  [[nodiscard]] double factor(std::size_t cycle) const;

  /// Geometric mean factor over cycles [1, window]:
  /// (σ²_window / σ²_0)^(1/window). This is the "average convergence
  /// factor computed over a period of `window` cycles" of fig. 3a.
  [[nodiscard]] double mean_factor(std::size_t window) const;

  /// σ²_i / σ²_0 series (fig. 3b), clamped below at `floor` so log-scale
  /// plots of fully converged runs stay finite.
  [[nodiscard]] std::vector<double> normalized(double floor = 0.0) const;

private:
  std::vector<double> variances_;
};

}  // namespace gossip::stats
