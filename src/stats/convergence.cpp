#include "stats/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace gossip::stats {

double ConvergenceTracker::factor(std::size_t cycle) const {
  GOSSIP_REQUIRE(cycle >= 1 && cycle < variances_.size(),
                 "factor() cycle out of range");
  const double prev = variances_[cycle - 1];
  if (prev <= 0.0) return 1.0;
  return variances_[cycle] / prev;
}

double ConvergenceTracker::mean_factor(std::size_t window) const {
  GOSSIP_REQUIRE(window >= 1 && window < variances_.size(),
                 "mean_factor() window out of range");
  const double initial = variances_.front();
  if (initial <= 0.0) return 1.0;
  const double ratio = variances_[window] / initial;
  if (ratio <= 0.0) return 0.0;
  return std::pow(ratio, 1.0 / static_cast<double>(window));
}

std::vector<double> ConvergenceTracker::normalized(double floor) const {
  std::vector<double> out;
  out.reserve(variances_.size());
  const double initial = variances_.empty() ? 0.0 : variances_.front();
  for (double v : variances_) {
    const double norm = initial > 0.0 ? v / initial : 0.0;
    out.push_back(std::max(norm, floor));
  }
  return out;
}

}  // namespace gossip::stats
