// Single-pass summary statistics (Welford / Chan parallel merge).
//
// Used everywhere the paper measures something: the empirical mean µ_i and
// (unbiased) variance σ²_i of the node estimates at each cycle (paper
// eq. 1), and distributions across repeated experiments.
#pragma once

#include <cstdint>
#include <limits>

namespace gossip::stats {

/// Numerically stable running mean/variance/min/max.
class RunningStats {
public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Chan et al. pairwise merge; allows sharding a pass over nodes.
  void merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (divides by n-1, as in paper eq. 1).
  [[nodiscard]] double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  /// Population variance (divides by n).
  [[nodiscard]] double population_variance() const {
    return count_ < 1 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  [[nodiscard]] double stddev() const;

  [[nodiscard]] double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  [[nodiscard]] double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gossip::stats
