#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "stats/running_stats.hpp"

namespace gossip::stats {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.count = values.size();
  s.mean = rs.mean();
  s.variance = rs.variance();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return s;
}

double percentile(std::span<const double> values, double p) {
  GOSSIP_REQUIRE(!values.empty(), "percentile of empty sample");
  GOSSIP_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double trimmed_mean(std::span<const double> values, std::size_t trim) {
  GOSSIP_REQUIRE(!values.empty(), "trimmed mean of empty sample");
  GOSSIP_REQUIRE(2 * trim < values.size(),
                 "trim would discard the whole sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  const std::size_t hi = sorted.size() - trim;
  for (std::size_t i = trim; i < hi; ++i) sum += sorted[i];
  return sum / static_cast<double>(hi - trim);
}

double trimmed_mean_third(std::span<const double> values) {
  GOSSIP_REQUIRE(!values.empty(), "trimmed mean of empty sample");
  return trimmed_mean(values, values.size() / 3);
}

}  // namespace gossip::stats
