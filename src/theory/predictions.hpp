// Closed-form results from the paper, used both by tests (the empirical
// runs must match these) and by the benchmark harness (the "predicted"
// curves in fig. 5 and fig. 7a).
#pragma once

#include <cstdint>

namespace gossip::theory {

/// Per-cycle variance convergence factor ρ of the push–pull averaging
/// protocol on a sufficiently random overlay (§3): ρ ≈ 1/(2√e).
double push_pull_factor();

/// Convergence factor under the fully random pairing model of [5] where a
/// node may sit out a cycle entirely: ρ = 1/e (§6.2).
double uniform_pairing_factor();

/// Upper bound on the convergence factor when each exchange independently
/// fails with probability `p_link_down` (paper eq. 5): ρ_d = e^(P_d − 1).
double link_failure_bound(double p_link_down);

/// Theorem 1 (paper eq. 2): variance of the surviving-node mean µ_i after
/// `cycles` cycles when a fraction `p_fail` of the current nodes crashes
/// before every cycle.
///
/// Var(µ_i) = P_f / (N(1−P_f)) · σ²_0 · Σ_{j=0}^{i−1} (ρ/(1−P_f))^j
///
/// `n` is the initial network size and `sigma0_sq` the expected initial
/// variance E(σ²_0). Returns 0 for p_fail == 0.
double mu_variance(double p_fail, std::uint64_t n, double sigma0_sq,
                   double rho, std::uint64_t cycles);

/// True when eq. 2 diverges with the cycle index: ρ > 1 − P_f (§6.1).
bool mu_variance_unbounded(double p_fail, double rho);

/// Minimum epoch length γ such that E(σ²_γ)/E(σ²_0) = ρ^γ ≤ ε (§4.5):
/// γ ≥ log_ρ ε.
std::uint64_t required_cycles(double rho, double epsilon);

/// Expected exchanges per node per cycle: 1 initiated + Poisson(1)
/// incoming = 2 (§4.5).
double expected_exchanges_per_cycle();

/// Initial variance of the peak distribution (one node holds `peak`,
/// the remaining n−1 hold 0) — the workload of fig. 2 and all COUNT
/// experiments; with peak = n this is ≈ n.
double peak_distribution_variance(std::uint64_t n, double peak);

}  // namespace gossip::theory
