#include "theory/predictions.hpp"

#include <cmath>

#include "common/require.hpp"

namespace gossip::theory {

double push_pull_factor() { return 1.0 / (2.0 * std::sqrt(std::exp(1.0))); }

double uniform_pairing_factor() { return 1.0 / std::exp(1.0); }

double link_failure_bound(double p_link_down) {
  GOSSIP_REQUIRE(p_link_down >= 0.0 && p_link_down <= 1.0,
                 "P_d must be a probability");
  return std::exp(p_link_down - 1.0);
}

double mu_variance(double p_fail, std::uint64_t n, double sigma0_sq,
                   double rho, std::uint64_t cycles) {
  GOSSIP_REQUIRE(p_fail >= 0.0 && p_fail < 1.0, "P_f must be in [0,1)");
  GOSSIP_REQUIRE(n > 0, "network size must be positive");
  GOSSIP_REQUIRE(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
  if (p_fail == 0.0 || cycles == 0) return 0.0;
  const double ratio = rho / (1.0 - p_fail);
  // Geometric series sum_{j=0}^{cycles-1} ratio^j, with the ratio==1
  // degenerate case handled explicitly.
  double series = 0.0;
  if (std::abs(ratio - 1.0) < 1e-12) {
    series = static_cast<double>(cycles);
  } else {
    series = (1.0 - std::pow(ratio, static_cast<double>(cycles))) /
             (1.0 - ratio);
  }
  const double prefix =
      p_fail / (static_cast<double>(n) * (1.0 - p_fail)) * sigma0_sq;
  return prefix * series;
}

bool mu_variance_unbounded(double p_fail, double rho) {
  return rho > 1.0 - p_fail;
}

std::uint64_t required_cycles(double rho, double epsilon) {
  GOSSIP_REQUIRE(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
  GOSSIP_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  // Small slack keeps exact cases (log ratio == integer) from rounding up
  // an extra cycle due to floating-point noise.
  const double gamma = std::log(epsilon) / std::log(rho);
  return static_cast<std::uint64_t>(std::ceil(gamma - 1e-9));
}

double expected_exchanges_per_cycle() { return 2.0; }

double peak_distribution_variance(std::uint64_t n, double peak) {
  GOSSIP_REQUIRE(n >= 2, "peak distribution needs at least two nodes");
  // Unbiased sample variance of {peak, 0, ..., 0} with n values:
  // mean = peak/n; sum of squared deviations = peak²(1 - 1/n);
  // divide by n-1.
  const double dn = static_cast<double>(n);
  return peak * peak * (1.0 - 1.0 / dn) / (dn - 1.0);
}

}  // namespace gossip::theory
