// Message delay models for the simulated transport (§2: "communication
// incurs unpredictable delays").
#pragma once

#include <memory>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "sim/event_loop.hpp"

namespace gossip::net {

/// Per-message one-way delay distribution.
class LatencyModel {
public:
  virtual ~LatencyModel() = default;
  LatencyModel() = default;
  LatencyModel(const LatencyModel&) = delete;
  LatencyModel& operator=(const LatencyModel&) = delete;

  [[nodiscard]] virtual sim::SimTime sample(Rng& rng) = 0;
};

/// Constant delay.
class FixedLatency final : public LatencyModel {
public:
  explicit FixedLatency(sim::SimTime delay) : delay_(delay) {}
  sim::SimTime sample(Rng&) override { return delay_; }

private:
  sim::SimTime delay_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
public:
  UniformLatency(sim::SimTime lo, sim::SimTime hi) : lo_(lo), hi_(hi) {
    GOSSIP_REQUIRE(lo <= hi, "uniform latency needs lo <= hi");
  }
  sim::SimTime sample(Rng& rng) override {
    return lo_ + rng.below(hi_ - lo_ + 1);
  }

private:
  sim::SimTime lo_;
  sim::SimTime hi_;
};

/// `base` plus an exponential tail with the given mean — a reasonable
/// stand-in for Internet round-trip behaviour.
class ExponentialLatency final : public LatencyModel {
public:
  ExponentialLatency(sim::SimTime base, double tail_mean)
      : base_(base), tail_mean_(tail_mean) {
    GOSSIP_REQUIRE(tail_mean > 0.0, "tail mean must be positive");
  }
  sim::SimTime sample(Rng& rng) override {
    return base_ + static_cast<sim::SimTime>(rng.exponential(tail_mean_));
  }

private:
  sim::SimTime base_;
  double tail_mean_;
};

}  // namespace gossip::net
