// Optional message trace for debugging and determinism tests: a flat log
// of (virtual time, from, to, outcome) tuples with a digest that two runs
// can compare.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/node_id.hpp"
#include "sim/event_loop.hpp"

namespace gossip::net {

struct TraceEvent {
  enum class Kind : std::uint8_t { kDelivered, kLost, kDroppedCrashed };

  sim::SimTime at = 0;
  NodeId from;
  NodeId to;
  Kind kind = Kind::kDelivered;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceLog {
public:
  void record(TraceEvent event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Order-sensitive FNV-1a digest of the whole trace; equal digests ⇔
  /// (practically) identical executions.
  [[nodiscard]] std::uint64_t digest() const;

  /// Human-readable dump of the first `limit` events.
  [[nodiscard]] std::string dump(std::size_t limit = 50) const;

private:
  std::vector<TraceEvent> events_;
};

}  // namespace gossip::net
