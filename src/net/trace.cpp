#include "net/trace.hpp"

#include <sstream>

namespace gossip::net {

std::uint64_t TraceLog::digest() const {
  // FNV-1a 64 hash constants (a content digest, not an RNG stream salt —
  // RNG salts live in common/stream_salt.hpp).
  constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  std::uint64_t h = kFnvOffsetBasis;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= kFnvPrime;
    }
  };
  for (const TraceEvent& e : events_) {
    mix(e.at);
    mix(e.from.value());
    mix(e.to.value());
    mix(static_cast<std::uint64_t>(e.kind));
  }
  return h;
}

std::string TraceLog::dump(std::size_t limit) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const TraceEvent& e : events_) {
    if (shown++ == limit) {
      os << "... (" << events_.size() - limit << " more)\n";
      break;
    }
    os << 't' << e.at << ' ' << e.from << " -> " << e.to << ' ';
    switch (e.kind) {
      case TraceEvent::Kind::kDelivered: os << "delivered"; break;
      case TraceEvent::Kind::kLost: os << "lost"; break;
      case TraceEvent::Kind::kDroppedCrashed: os << "dropped(crashed)"; break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace gossip::net
