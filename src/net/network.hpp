// Simulated point-to-point transport over the event loop.
//
// Models the paper's §2 network: every node can message every other node;
// delivery takes a sampled latency; messages are independently lost with
// a configurable probability; crashed nodes neither send nor receive
// (messages in flight to a node that crashes are dropped at delivery
// time, like a real kernel dropping for a dead process).
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "net/latency.hpp"
#include "net/trace.hpp"
#include "sim/event_loop.hpp"

namespace gossip::net {

/// Delivery counters, exposed for tests and experiment reporting.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;             ///< random message loss
  std::uint64_t dropped_crashed = 0;  ///< receiver (or sender) was dead
};

template <typename Payload>
class Network {
public:
  using Handler = std::function<void(NodeId from, const Payload&)>;

  /// The loop must outlive the network. `p_loss` is applied per message.
  Network(sim::EventLoop& loop, std::unique_ptr<LatencyModel> latency,
          double p_loss, Rng rng)
      : loop_(&loop),
        latency_(std::move(latency)),
        p_loss_(p_loss),
        rng_(rng) {
    GOSSIP_REQUIRE(latency_ != nullptr, "network needs a latency model");
    GOSSIP_REQUIRE(p_loss >= 0.0 && p_loss <= 1.0,
                   "loss must be a probability");
  }

  /// Registers the handler for a node; ids must be registered in order
  /// (dense). Newly registered nodes are alive.
  void register_node(NodeId id, Handler handler) {
    GOSSIP_REQUIRE(id.value() == handlers_.size(),
                   "register nodes in dense id order");
    GOSSIP_REQUIRE(static_cast<bool>(handler), "handler must be callable");
    handlers_.push_back(std::move(handler));
    alive_.push_back(1);
  }

  [[nodiscard]] bool alive(NodeId id) const {
    return id.is_valid() && id.value() < alive_.size() &&
           alive_[id.value()] != 0;
  }

  /// Crashes a node: it stops receiving immediately; anything it "sent"
  /// earlier still in flight is delivered (it left the host already).
  void crash(NodeId id) {
    GOSSIP_REQUIRE(id.is_valid() && id.value() < alive_.size(),
                   "crash() id out of range");
    alive_[id.value()] = 0;
  }

  /// Sends `payload` from `from` to `to`. Silently refuses when the
  /// sender is dead (its threads are gone).
  void send(NodeId from, NodeId to, Payload payload) {
    GOSSIP_REQUIRE(to.is_valid() && to.value() < handlers_.size(),
                   "send() to unknown node");
    if (!alive(from)) return;
    ++stats_.sent;
    if (rng_.chance(p_loss_)) {
      ++stats_.lost;
      if (trace_ != nullptr) {
        trace_->record({loop_->now(), from, to, TraceEvent::Kind::kLost});
      }
      return;
    }
    const sim::SimTime delay = latency_->sample(rng_);
    loop_->schedule_after(
        delay, [this, from, to, payload = std::move(payload)]() {
          deliver(from, to, payload);
        });
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Attaches an optional message trace (must outlive the network).
  void attach_trace(TraceLog* trace) { trace_ = trace; }

private:
  void deliver(NodeId from, NodeId to, const Payload& payload) {
    if (!alive(to)) {
      ++stats_.dropped_crashed;
      if (trace_ != nullptr) {
        trace_->record(
            {loop_->now(), from, to, TraceEvent::Kind::kDroppedCrashed});
      }
      return;
    }
    ++stats_.delivered;
    if (trace_ != nullptr) {
      trace_->record({loop_->now(), from, to, TraceEvent::Kind::kDelivered});
    }
    handlers_[to.value()](from, payload);
  }

  sim::EventLoop* loop_;
  std::unique_ptr<LatencyModel> latency_;
  double p_loss_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<char> alive_;
  NetworkStats stats_;
  TraceLog* trace_ = nullptr;
};

}  // namespace gossip::net
