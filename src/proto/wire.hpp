// Binary wire format for the protocol messages.
//
// The simulators pass Message values in-process, but a deployable node
// needs bytes on a socket. The format is little-endian, tag-prefixed and
// length-checked; decode() rejects malformed input instead of trusting
// the network. The paper's cost arguments depend on message size (§7.3:
// "messages of still only a few hundred bytes" for ~20 values and a c=30
// cache) — encoded_size() lets tests pin those claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "proto/messages.hpp"

namespace gossip::proto {

/// Serializes a message. Layout: [u8 tag][fixed fields][entries...].
std::vector<std::byte> encode(const Message& message);

/// Parses a message; throws gossip::require_error on truncated input,
/// unknown tags, oversized entry counts or trailing bytes.
Message decode(std::span<const std::byte> bytes);

/// Exact size encode() would produce, without allocating.
std::size_t encoded_size(const Message& message);

}  // namespace gossip::proto
