#include "proto/wire.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "common/require.hpp"

namespace gossip::proto {

namespace {

enum class Tag : std::uint8_t {
  kAggPush = 1,
  kAggReply = 2,
  kNewsPush = 3,
  kNewsReply = 4,
};

// Entry counts are bounded far above any sane cache size; this is a
// malformed-input guard, not a protocol limit.
constexpr std::size_t kMaxEntries = 1 << 16;

class Writer {
public:
  explicit Writer(std::size_t reserve) { bytes_.reserve(reserve); }

  void u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  std::vector<std::byte> take() { return std::move(bytes_); }

private:
  std::vector<std::byte> bytes_;
};

class Reader {
public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    GOSSIP_REQUIRE(pos_ + 1 <= bytes_.size(), "truncated message");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint32_t u32() {
    GOSSIP_REQUIRE(pos_ + 4 <= bytes_.size(), "truncated message");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    GOSSIP_REQUIRE(pos_ + 8 <= bytes_.size(), "truncated message");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  void expect_end() const {
    GOSSIP_REQUIRE(pos_ == bytes_.size(), "trailing bytes after message");
  }

private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

void write_entries(Writer& w,
                   const std::vector<membership::CacheEntry>& entries,
                   const membership::CacheEntry& fresh) {
  w.u32(fresh.id.is_valid() ? fresh.id.value()
                            : std::numeric_limits<std::uint32_t>::max());
  w.u64(fresh.timestamp);
  GOSSIP_REQUIRE(entries.size() < kMaxEntries, "cache too large to encode");
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u32(e.id.value());
    w.u64(e.timestamp);
  }
}

void read_entries(Reader& r, std::vector<membership::CacheEntry>& entries,
                  membership::CacheEntry& fresh) {
  // The wire keeps the historical 64-bit timestamp field; the packed
  // in-memory descriptor narrows it through the guarded CacheEntry
  // constructor (a timestamp past the 32-bit logical clock is a
  // malformed message, same class as a bad entry count).
  const NodeId fresh_id(r.u32());
  fresh = membership::CacheEntry{fresh_id, r.u64()};
  const std::uint32_t count = r.u32();
  GOSSIP_REQUIRE(count < kMaxEntries, "malformed entry count");
  entries.clear();
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint64_t ts = r.u64();
    entries.push_back(membership::CacheEntry{NodeId(id), ts});
  }
}

}  // namespace

std::size_t encoded_size(const Message& message) {
  struct Sizer {
    std::size_t operator()(const AggPush&) const { return 1 + 8 + 8 + 8; }
    std::size_t operator()(const AggReply&) const {
      return 1 + 8 + 8 + 8 + 1;
    }
    std::size_t operator()(const NewsPush& m) const {
      return 1 + 12 + 4 + 12 * m.entries.size();
    }
    std::size_t operator()(const NewsReply& m) const {
      return 1 + 12 + 4 + 12 * m.entries.size();
    }
  };
  return std::visit(Sizer{}, message);
}

std::vector<std::byte> encode(const Message& message) {
  Writer w(encoded_size(message));
  if (const auto* push = std::get_if<AggPush>(&message)) {
    w.u8(static_cast<std::uint8_t>(Tag::kAggPush));
    w.u64(push->epoch);
    w.u64(push->request_id);
    w.f64(push->value);
  } else if (const auto* reply = std::get_if<AggReply>(&message)) {
    w.u8(static_cast<std::uint8_t>(Tag::kAggReply));
    w.u64(reply->epoch);
    w.u64(reply->request_id);
    w.f64(reply->value);
    w.u8(reply->refused ? 1 : 0);
  } else if (const auto* news = std::get_if<NewsPush>(&message)) {
    w.u8(static_cast<std::uint8_t>(Tag::kNewsPush));
    write_entries(w, news->entries, news->fresh);
  } else {
    const auto& reply = std::get<NewsReply>(message);
    w.u8(static_cast<std::uint8_t>(Tag::kNewsReply));
    write_entries(w, reply.entries, reply.fresh);
  }
  return w.take();
}

Message decode(std::span<const std::byte> bytes) {
  Reader r(bytes);
  const auto tag = r.u8();
  switch (static_cast<Tag>(tag)) {
    case Tag::kAggPush: {
      AggPush m;
      m.epoch = r.u64();
      m.request_id = r.u64();
      m.value = r.f64();
      r.expect_end();
      return m;
    }
    case Tag::kAggReply: {
      AggReply m;
      m.epoch = r.u64();
      m.request_id = r.u64();
      m.value = r.f64();
      m.refused = r.u8() != 0;
      r.expect_end();
      return m;
    }
    case Tag::kNewsPush: {
      NewsPush m;
      read_entries(r, m.entries, m.fresh);
      r.expect_end();
      return m;
    }
    case Tag::kNewsReply: {
      NewsReply m;
      read_entries(r, m.entries, m.fresh);
      r.expect_end();
      return m;
    }
  }
  GOSSIP_REQUIRE(false, "unknown message tag");
}

}  // namespace gossip::proto
