#include "proto/world.hpp"

#include <utility>

namespace gossip::proto {

World::World(WorldConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  GOSSIP_REQUIRE(config_.nodes >= 2, "world needs at least two nodes");
  GOSSIP_REQUIRE(config_.latency_lo <= config_.latency_hi,
                 "latency bounds inverted");
  if (!config_.initial_value) {
    const double peak = static_cast<double>(config_.nodes);
    config_.initial_value = [peak](NodeId id) {
      return id.value() == 0 ? peak : 0.0;
    };
  }
  network_ = std::make_unique<net::Network<Message>>(
      loop_,
      std::make_unique<net::UniformLatency>(config_.latency_lo,
                                            config_.latency_hi),
      config_.p_loss, rng_.split());
  network_->attach_trace(&trace_);

  nodes_.reserve(config_.nodes);
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    const NodeId id(u);
    auto node = std::make_unique<Node>(id, config_.initial_value(id),
                                       config_.protocol, loop_, *network_,
                                       rng_.split());
    network_->register_node(
        id, [raw = node.get()](NodeId from, const Message& m) {
          raw->on_message(from, m);
        });
    nodes_.push_back(std::move(node));
  }
  // Random bootstrap views, as in the cycle driver.
  const std::size_t fill =
      std::min<std::size_t>(config_.protocol.cache_size, config_.nodes - 1);
  for (std::uint32_t u = 0; u < config_.nodes; ++u) {
    std::vector<membership::CacheEntry> view;
    view.reserve(fill);
    for (std::uint64_t raw : rng_.sample_distinct(config_.nodes - 1, fill)) {
      const auto v = static_cast<std::uint32_t>(raw >= u ? raw + 1 : raw);
      view.push_back(membership::CacheEntry{NodeId(v), 0});
    }
    nodes_[u]->bootstrap_view(view);
  }
}

void World::start() {
  for (const auto& node : nodes_) node->start();
}

void World::run_cycles(double cycles) {
  GOSSIP_REQUIRE(cycles >= 0.0, "cannot run negative cycles");
  const auto span = static_cast<sim::SimTime>(
      cycles * static_cast<double>(config_.protocol.cycle_length));
  loop_.run_until(loop_.now() + span);
}

Node& World::node(NodeId id) {
  GOSSIP_REQUIRE(id.is_valid() && id.value() < nodes_.size(),
                 "node() id out of range");
  return *nodes_[id.value()];
}

void World::crash(NodeId id) {
  network_->crash(id);
  node(id).stop();
}

NodeId World::join(NodeId contact, double local_value) {
  GOSSIP_REQUIRE(alive(contact), "join contact must be alive");
  const NodeId id(static_cast<std::uint32_t>(nodes_.size()));
  Node& contact_node = node(contact);
  auto fresh = std::make_unique<Node>(id, local_value, config_.protocol,
                                      loop_, *network_, rng_.split(),
                                      contact_node.epoch());
  network_->register_node(
      id, [raw = fresh.get()](NodeId from, const Message& m) {
        raw->on_message(from, m);
      });
  // §4.2 join: the contact hands over its view (plus itself), and learns
  // about the newcomer.
  std::vector<membership::CacheEntry> view(
      contact_node.view().entries().begin(),
      contact_node.view().entries().end());
  view.push_back(membership::CacheEntry{contact, loop_.now()});
  fresh->bootstrap_view(view);
  fresh->start();
  nodes_.push_back(std::move(fresh));
  return id;
}

std::vector<double> World::estimates() const {
  std::vector<double> out;
  out.reserve(nodes_.size());
  for (std::uint32_t u = 0; u < nodes_.size(); ++u) {
    const auto& node = *nodes_[u];
    if (network_->alive(NodeId(u)) && node.participating()) {
      out.push_back(node.estimate());
    }
  }
  return out;
}

std::vector<double> World::reports() const {
  std::vector<double> out;
  for (std::uint32_t u = 0; u < nodes_.size(); ++u) {
    const auto& node = *nodes_[u];
    if (network_->alive(NodeId(u)) && node.participating() &&
        node.last_report()) {
      out.push_back(*node.last_report());
    }
  }
  return out;
}

}  // namespace gossip::proto
