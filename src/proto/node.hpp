// One protocol node of the §4 "practical protocol": a δ-cycle timer with
// random phase, push–pull aggregation with exchange timeouts, epoch
// restart/synchronization, join gating, and a NEWSCAST view maintained
// over the same transport.
//
// The node is engine-passive: it owns no thread; the event loop invokes
// its timer callbacks and the network its message handler.
#pragma once

#include <cstdint>
#include <optional>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "core/epoch.hpp"
#include "core/update.hpp"
#include "membership/newscast_cache.hpp"
#include "net/network.hpp"
#include "proto/messages.hpp"
#include "sim/event_loop.hpp"

namespace gossip::proto {

/// Which aggregate the swarm computes (§3, §5).
using UpdateKind = core::UpdateKind;

struct ProtocolConfig {
  sim::SimTime cycle_length = 1'000'000;  ///< δ (µs of virtual time)
  std::uint32_t cycles_per_epoch = 30;    ///< γ
  sim::SimTime timeout = 400'000;         ///< exchange timeout (§4.2)
  std::size_t cache_size = 30;            ///< NEWSCAST c
  UpdateKind update = UpdateKind::kAverage;
  /// Refuse incoming pushes while our own exchange is in flight. This is
  /// required for mass conservation (fig. 1 is implicitly atomic per
  /// exchange); turning it off reproduces the naive concurrent reading
  /// and its systematic estimate drift — see the ablation_atomicity
  /// bench. Leave on outside of ablations.
  bool atomic_exchanges = true;
};

class Node {
public:
  /// Counters exposed for tests and monitoring.
  struct Stats {
    std::uint64_t exchanges_initiated = 0;
    std::uint64_t exchanges_completed = 0;  ///< active side, reply applied
    std::uint64_t pushes_received = 0;      ///< all pushes that arrived
    std::uint64_t pushes_served = 0;        ///< passive side updates
    std::uint64_t pushes_refused_busy = 0;  ///< dropped while locked
    std::uint64_t timeouts = 0;
    std::uint64_t refusals_sent = 0;  ///< stale-epoch pushes rejected
    std::uint64_t epochs_adopted = 0; ///< §4.3 jumps
  };

  /// A founding member. `loop` and `network` must outlive the node.
  Node(NodeId id, double local_value, const ProtocolConfig& config,
       sim::EventLoop& loop, net::Network<Message>& network, Rng rng);

  /// A node joining while `contact_epoch` is running: it adopts that
  /// epoch's clock but participates only from the next one (§4.2).
  Node(NodeId id, double local_value, const ProtocolConfig& config,
       sim::EventLoop& loop, net::Network<Message>& network, Rng rng,
       std::uint64_t contact_epoch);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Seeds the NEWSCAST view (bootstrap or join copy).
  void bootstrap_view(std::span<const membership::CacheEntry> view);

  /// Schedules the first cycle at a random phase within δ.
  void start();

  /// Stops all timers (crash or shutdown). The network-side crash is the
  /// caller's job (net::Network::crash).
  void stop();

  /// Transport entry point.
  void on_message(NodeId from, const Message& message);

  // ---- observers -------------------------------------------------------

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] double estimate() const { return estimate_; }
  [[nodiscard]] double local_value() const { return local_value_; }
  [[nodiscard]] std::uint64_t epoch() const { return epochs_.epoch(); }
  [[nodiscard]] bool participating() const {
    return gate_.participates_in(epochs_.epoch());
  }
  /// Output of the last completed epoch, if any (§4.1: the estimate is
  /// returned as aggregation output at epoch end).
  [[nodiscard]] std::optional<double> last_report() const {
    return last_report_;
  }
  [[nodiscard]] const membership::NewscastCache& view() const {
    return cache_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Updates the underlying local value; the next epoch re-initializes
  /// from it (this is what makes the protocol adaptive).
  void set_local_value(double value) { local_value_ = value; }

private:
  void on_cycle();
  void on_exchange_timeout(std::uint64_t request_id);
  void handle(NodeId from, const AggPush& push);
  void handle(NodeId from, const AggReply& reply);
  void handle(NodeId from, const NewsPush& push);
  void handle(NodeId from, const NewsReply& reply);
  void adopt_epoch(std::uint64_t remote_epoch);
  void complete_epoch();
  void cancel_pending();
  [[nodiscard]] double apply_update(double a, double b) const;
  [[nodiscard]] membership::CacheEntry fresh_self() const;

  NodeId id_;
  double local_value_;
  double estimate_;
  ProtocolConfig config_;
  sim::EventLoop* loop_;
  net::Network<Message>* network_;
  Rng rng_;
  core::EpochMachine epochs_;
  core::JoinGate gate_;
  membership::NewscastCache cache_;

  bool running_ = false;
  sim::TaskId cycle_task_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::optional<std::uint64_t> pending_request_;
  sim::TaskId timeout_task_ = 0;
  std::optional<double> last_report_;
  Stats stats_;
};

}  // namespace gossip::proto
