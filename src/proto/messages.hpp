// Wire messages of the event-driven protocol stack. Two sub-protocols
// share the transport, exactly as deployed:
//  * the aggregation push–pull pair (fig. 1), tagged with the sender's
//    epoch id (§4.1) and a request id for timeout matching;
//  * the NEWSCAST cache exchange pair (§4.4).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "membership/newscast_cache.hpp"

namespace gossip::proto {

struct AggPush {
  std::uint64_t epoch = 0;
  std::uint64_t request_id = 0;
  double value = 0.0;
};

struct AggReply {
  std::uint64_t epoch = 0;
  std::uint64_t request_id = 0;
  double value = 0.0;
  /// Set when the passive side refused a stale-epoch push; the value is
  /// then meaningless and `epoch` carries the newer epoch id.
  bool refused = false;
};

struct NewsPush {
  std::vector<membership::CacheEntry> entries;
  membership::CacheEntry fresh;  ///< sender's own descriptor
};

struct NewsReply {
  std::vector<membership::CacheEntry> entries;
  membership::CacheEntry fresh;
};

using Message = std::variant<AggPush, AggReply, NewsPush, NewsReply>;

}  // namespace gossip::proto
