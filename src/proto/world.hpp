// Assembles a whole event-driven deployment: loop + lossy/latent network
// + N protocol nodes with bootstrap views. This is the harness the
// integration tests and the monitoring example drive; it plays the role
// PeerSim's event-based mode played for the authors.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/trace.hpp"
#include "proto/node.hpp"
#include "sim/event_loop.hpp"
#include "stats/summary.hpp"

namespace gossip::proto {

struct WorldConfig {
  std::uint32_t nodes = 100;
  ProtocolConfig protocol;
  /// Per-message loss probability (fig. 7b's model at the transport).
  double p_loss = 0.0;
  /// One-way latency bounds (uniform). Must stay well under the timeout
  /// for the no-failure regime.
  sim::SimTime latency_lo = 5'000;
  sim::SimTime latency_hi = 50'000;
  std::uint64_t seed = 1;
  /// Initial local value per node; defaults to the peak distribution
  /// (node 0 holds `nodes`, rest 0) whose true average is 1.
  std::function<double(NodeId)> initial_value;
};

class World {
public:
  explicit World(WorldConfig config);

  /// Starts every node at a random phase.
  void start();

  /// Advances virtual time by `cycles` × δ.
  void run_cycles(double cycles);

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] net::Network<Message>& network() { return *network_; }
  [[nodiscard]] net::TraceLog& trace() { return trace_; }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] bool alive(NodeId id) const {
    return network_->alive(id);
  }

  /// Crashes a node: silences its transport and stops its timers.
  void crash(NodeId id);

  /// Joins a brand-new node through `contact` (§4.2): it copies the
  /// contact's view, learns the current epoch, and participates from the
  /// next one. Returns the new node's id.
  NodeId join(NodeId contact, double local_value);

  /// Estimates of live, epoch-participating nodes.
  [[nodiscard]] std::vector<double> estimates() const;
  [[nodiscard]] stats::Summary estimate_summary() const {
    return stats::summarize(estimates());
  }

  /// Last-epoch reports of live participating nodes (empty until the
  /// first epoch completes).
  [[nodiscard]] std::vector<double> reports() const;

private:
  WorldConfig config_;
  Rng rng_;
  sim::EventLoop loop_;
  net::TraceLog trace_;
  std::unique_ptr<net::Network<Message>> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace gossip::proto
