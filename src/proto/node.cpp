#include "proto/node.hpp"

#include <algorithm>
#include <cmath>

namespace gossip::proto {

Node::Node(NodeId id, double local_value, const ProtocolConfig& config,
           sim::EventLoop& loop, net::Network<Message>& network, Rng rng)
    : id_(id),
      local_value_(local_value),
      estimate_(local_value),
      config_(config),
      loop_(&loop),
      network_(&network),
      rng_(rng),
      epochs_(config.cycles_per_epoch),
      cache_(config.cache_size) {}

Node::Node(NodeId id, double local_value, const ProtocolConfig& config,
           sim::EventLoop& loop, net::Network<Message>& network, Rng rng,
           std::uint64_t contact_epoch)
    : Node(id, local_value, config, loop, network, rng) {
  if (contact_epoch > 0) epochs_.adopt(contact_epoch);
  gate_ = core::JoinGate::joined_during(contact_epoch);
}

void Node::bootstrap_view(std::span<const membership::CacheEntry> view) {
  cache_.merge(view, membership::CacheEntry{NodeId::invalid(), 0}, id_);
}

void Node::start() {
  GOSSIP_REQUIRE(!running_, "node already started");
  running_ = true;
  const sim::SimTime phase = rng_.below(config_.cycle_length);
  cycle_task_ = loop_->schedule_after(phase, [this] { on_cycle(); });
}

void Node::stop() {
  if (!running_) return;
  running_ = false;
  loop_->cancel(cycle_task_);
  cancel_pending();
}

void Node::cancel_pending() {
  if (pending_request_) {
    loop_->cancel(timeout_task_);
    pending_request_.reset();
  }
}

double Node::apply_update(double a, double b) const {
  return core::apply_update(config_.update, a, b);
}

membership::CacheEntry Node::fresh_self() const {
  return membership::CacheEntry{id_, loop_->now()};
}

void Node::on_cycle() {
  if (!running_) return;
  cycle_task_ = loop_->schedule_after(config_.cycle_length,
                                      [this] { on_cycle(); });

  // NEWSCAST exchange: runs in every cycle regardless of epoch gating —
  // membership is what keeps the overlay repaired (§4.4).
  const NodeId news_peer = cache_.sample(rng_);
  if (news_peer.is_valid()) {
    network_->send(
        id_, news_peer,
        NewsPush{{cache_.entries().begin(), cache_.entries().end()},
                 fresh_self()});
  }

  // Aggregation exchange (fig. 1 active thread), only while this node
  // participates in the running epoch.
  if (gate_.participates_in(epochs_.epoch())) {
    const NodeId peer = cache_.sample(rng_);
    if (peer.is_valid() && !pending_request_) {
      const std::uint64_t request_id = next_request_id_++;
      pending_request_ = request_id;
      ++stats_.exchanges_initiated;
      network_->send(id_, peer,
                     AggPush{epochs_.epoch(), request_id, estimate_});
      timeout_task_ = loop_->schedule_after(
          config_.timeout,
          [this, request_id] { on_exchange_timeout(request_id); });
    }
  }

  if (epochs_.advance_cycle()) complete_epoch();
}

void Node::on_exchange_timeout(std::uint64_t request_id) {
  // §4.2: "If the timeout expires before the message is received, the
  // exchange step is skipped."
  if (pending_request_ && *pending_request_ == request_id) {
    pending_request_.reset();
    ++stats_.timeouts;
  }
}

void Node::complete_epoch() {
  // §4.1: report the estimate as output, re-initialize from the current
  // local value. A still-pending exchange belongs to the finished epoch;
  // its reply will be ignored (stale epoch tag).
  last_report_ = estimate_;
  estimate_ = local_value_;
  cancel_pending();
}

void Node::adopt_epoch(std::uint64_t remote_epoch) {
  // §4.3: jump to the newer epoch. Preemption *terminates* the epoch we
  // were running, and §4.1 says a terminated epoch returns the current
  // estimate as output — without this, a node that adopted epoch e some
  // cycles late would always be preempted by e+1 before its own γ-count
  // completes, and would never report at all.
  if (gate_.participates_in(epochs_.epoch()) &&
      epochs_.cycle_in_epoch() > 0) {
    last_report_ = estimate_;
  }
  epochs_.adopt(remote_epoch);
  estimate_ = local_value_;
  cancel_pending();
  ++stats_.epochs_adopted;
}

void Node::on_message(NodeId from, const Message& message) {
  if (!running_) return;
  std::visit([this, from](const auto& m) { handle(from, m); }, message);
}

void Node::handle(NodeId from, const AggPush& push) {
  ++stats_.pushes_received;
  // A joiner refuses exchanges of the epoch it sits out (§4.2); the
  // initiator's timeout handles the silence, like a link failure.
  if (!gate_.participates_in(push.epoch)) return;
  // Exchange atomicity: while our own push is in flight, the estimate is
  // committed to that exchange — serving another exchange against it
  // would double-count mass and break sum conservation (the fig. 1
  // pseudocode is implicitly atomic per exchange). The initiator's
  // timeout treats this like a momentary link failure: pure slowdown.
  if (config_.atomic_exchanges && pending_request_) {
    ++stats_.pushes_refused_busy;
    return;
  }
  switch (epochs_.classify(push.epoch)) {
    case core::EpochMachine::TagAction::kStale:
      // Push from an older epoch: tell the sender about ours.
      ++stats_.refusals_sent;
      network_->send(id_, from,
                     AggReply{epochs_.epoch(), push.request_id, 0.0,
                              /*refused=*/true});
      return;
    case core::EpochMachine::TagAction::kAdopt:
      adopt_epoch(push.epoch);
      break;
    case core::EpochMachine::TagAction::kAccept:
      break;
  }
  // Fig. 1 passive thread: reply with the pre-update state, then update.
  network_->send(id_, from,
                 AggReply{epochs_.epoch(), push.request_id, estimate_,
                          /*refused=*/false});
  estimate_ = apply_update(estimate_, push.value);
  ++stats_.pushes_served;
}

void Node::handle(NodeId, const AggReply& reply) {
  const bool matches =
      pending_request_ && *pending_request_ == reply.request_id;
  if (reply.refused) {
    if (matches) cancel_pending();
    if (epochs_.classify(reply.epoch) ==
        core::EpochMachine::TagAction::kAdopt) {
      adopt_epoch(reply.epoch);
    }
    return;
  }
  if (!matches) return;  // late reply after timeout or epoch roll
  if (epochs_.classify(reply.epoch) !=
      core::EpochMachine::TagAction::kAccept) {
    // Reply from another epoch than ours: exchange is void. Adopt newer.
    cancel_pending();
    if (reply.epoch > epochs_.epoch()) adopt_epoch(reply.epoch);
    return;
  }
  cancel_pending();
  estimate_ = apply_update(estimate_, reply.value);
  ++stats_.exchanges_completed;
}

void Node::handle(NodeId from, const NewsPush& push) {
  network_->send(
      id_, from,
      NewsReply{{cache_.entries().begin(), cache_.entries().end()},
                fresh_self()});
  cache_.merge(push.entries, push.fresh, id_);
}

void Node::handle(NodeId, const NewsReply& reply) {
  cache_.merge(reply.entries, reply.fresh, id_);
}

}  // namespace gossip::proto
