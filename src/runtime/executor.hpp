// The deployment-runtime executor: the actual protocol (paper fig. 1) on
// real threads and a real transport, replacing the thread-per-node design
// of threaded.hpp with an event-driven dispatcher so N=10³–10⁴ nodes fit
// in one process (and K processes can host disjoint id ranges over the
// socket transport).
//
// Architecture: W worker threads each own a partition of the local nodes.
// A per-worker timer wheel staggers each node's δ-cycle wakeup across
// `wheel_slots` ticks; between ticks workers drain their ingress mailbox,
// serving pushes, matching replies to pendings and holding delay-injected
// frames until their deadline — all non-blocking. Exchange atomicity is
// the busy-NACK rule of the event stack: a node whose own push is in
// flight refuses incoming pushes.
//
// Cycle closure is quiescence-based, which makes timeouts loss-exact: a
// global in-flight frame counter follows the strict discipline "a reply
// is enqueued (counted) before the push that triggered it is released",
// so in_flight == 0 proves no local reply can ever arrive — any pending
// still open at that point corresponds to a genuinely lost message.
// Consequence: under zero injected loss the global sum is conserved
// exactly (both sides of every completed exchange compute (a+b)/2 from
// identical operands, and no pending is ever expired while its reply is
// alive). Replies to remote peers ride reliable TCP and expire only on
// the per-cycle wall deadline.
//
// The executor runs one cycle-stepped epoch: between cycles a driver
// thread applies the failure plan (kills/joins), the drift stream and
// records per-cycle estimate statistics, exactly like the simulators —
// which is what makes the runtime_vs_sim cross-check meaningful. Runs are
// wall-clock concurrent and NOT bit-deterministic; tests assert protocol
// invariants (conservation, convergence), never goldens.
#pragma once

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "failure/failure_plan.hpp"
#include "membership/newscast_cache.hpp"
#include "overlay/graph.hpp"
#include "proto/messages.hpp"
#include "runtime/counters.hpp"
#include "runtime/transport.hpp"
#include "stats/running_stats.hpp"

namespace gossip::runtime {

/// How GETNEIGHBOR() resolves.
enum class OverlayMode {
  kComplete,  ///< uniform over the global id space
  kStatic,    ///< a prebuilt overlay::Graph (identical in every process)
  kNewscast,  ///< live NEWSCAST caches exchanged over the wire (§4.4)
};

struct ExecutorConfig {
  std::uint32_t nodes = 0;     ///< global N across all processes
  std::uint32_t local_lo = 0;  ///< this process's id range [lo, hi)
  std::uint32_t local_hi = 0;  ///< == nodes when single-process
  std::uint32_t cycles = 30;
  std::uint32_t workers = 1;      ///< dispatcher threads W
  std::uint32_t wheel_slots = 8;  ///< timer-wheel wakeup ticks per δ cycle
  std::uint32_t delta_us = 0;     ///< δ wall pacing per cycle; 0 free-runs
  /// Per-cycle resolution wall guard: pendings that survive quiescence
  /// (remote peers, broken peers) expire this long after the cycle began.
  std::chrono::milliseconds cycle_timeout{2000};
  std::uint64_t seed = 1;
  OverlayMode overlay = OverlayMode::kNewscast;
  const overlay::Graph* graph = nullptr;  ///< kStatic; caller keeps it alive
  std::uint32_t cache_size = 30;          ///< kNewscast capacity c
  /// Global initial values, size `nodes`; every process slices its range.
  std::vector<double> initial;
  /// Mass-preserving drift applied between cycles (value and estimate
  /// move together); null = static values. Must be a pure function of
  /// (cycle, node) so cooperating processes agree.
  std::function<double(std::uint32_t cycle, std::uint32_t node)> drift;
  std::uint32_t max_joins = 0;  ///< churn headroom for preallocation
};

struct ExecutorResult {
  /// Estimate stats over local live participants: [0] initial, [i >= 1]
  /// after cycle i.
  std::vector<stats::RunningStats> per_cycle;
  /// |estimate mean − true local-value mean| per recorded cycle; empty
  /// unless a drift stream ran.
  std::vector<double> tracking_error;
  std::vector<double> final_estimates;  ///< local live participants
  /// Global-sum conservation pair over local participants' estimates
  /// (accumulated in long double). Equal under zero loss and no failures.
  double sum_initial = 0.0;
  double sum_final = 0.0;
  std::uint32_t participants = 0;  ///< local live participants at the end
  RuntimeCounters counters;
  double elapsed_seconds = 0.0;
};

class Executor {
public:
  /// Wires itself as `transport`'s sink; the transport must outlive the
  /// executor and must not be started yet.
  Executor(ExecutorConfig config, Transport& transport);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs the full epoch. Throws require_error if a worker or the
  /// transport failed. One run per Executor.
  ExecutorResult run(const failure::FailurePlan& plan);

private:
  struct Worker {
    std::mutex mutex;
    std::vector<Frame> ingress;       ///< MPSC mailbox (sink pushes here)
    std::vector<Frame> grab;          ///< drain swap buffer
    std::vector<Frame> held;          ///< delay-injected min-heap
    std::vector<std::uint32_t> own;   ///< local slots this worker owns
    std::vector<std::vector<std::uint32_t>> wheel;  ///< slot buckets
    Rng rng;
    RuntimeCounters counters;
  };

  [[nodiscard]] std::uint32_t slot_of(NodeId id) const;
  [[nodiscard]] std::uint32_t global_of(std::uint32_t slot) const;
  [[nodiscard]] bool single_process() const {
    return config_.local_hi - config_.local_lo == config_.nodes;
  }

  void sink(Frame&& frame);
  void worker_main(std::uint32_t index);
  void run_cycle(Worker& w, std::uint32_t cycle);
  bool drain(Worker& w);
  void process(Worker& w, Frame&& frame);
  void send_message(Worker& w, std::uint32_t from_slot, NodeId to,
                    const proto::Message& message);
  void initiate_aggregation(Worker& w, std::uint32_t slot);
  void initiate_newscast(Worker& w, std::uint32_t slot);
  [[nodiscard]] NodeId pick_peer(Worker& w, std::uint32_t slot);
  void expire_pendings(Worker& w, bool local_only);
  [[nodiscard]] bool has_pending(const Worker& w, bool local_only) const;
  void fail(const std::string& message);

  // Driver-side (single-threaded between cycle barriers).
  void apply_failures(std::uint32_t cycle, const failure::FailurePlan& plan);
  void apply_drift(std::uint32_t cycle);
  void record_stats();
  void add_node(double value, bool participant, std::uint32_t bootstrap_ts);

  ExecutorConfig config_;
  Transport& transport_;

  // Node state, indexed by local slot. Mutated by the owning worker
  // during a cycle and by the driver between barriers only.
  std::vector<double> estimates_;
  std::vector<double> values_;
  std::vector<char> alive_;
  std::vector<char> participant_;
  std::vector<std::uint64_t> pending_req_;
  std::vector<std::uint32_t> pending_peer_;
  std::vector<membership::NewscastCache> caches_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint32_t> resolved_{0};
  std::barrier<> sync_;
  std::uint32_t cycle_ = 0;  ///< written by the driver between barriers
  std::chrono::steady_clock::time_point cycle_start_;

  std::atomic<bool> failed_{false};
  std::mutex fail_mutex_;
  std::string fail_message_;

  Rng driver_rng_;
  std::vector<stats::RunningStats> per_cycle_;
  std::vector<double> tracking_error_;
};

}  // namespace gossip::runtime
